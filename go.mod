module unbiasedfl

go 1.22
