package unbiasedfl

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/game"
)

// Session is the context-aware entry point to the library: one prepared
// experimental world (data, calibration, game, timing) plus the streaming
// and pricing configuration shared by every run launched from it. Build one
// with NewSession, then drive it with RunScheme, CompareSchemes, RunSweep,
// and the validation probes — every method takes a context.Context and
// returns promptly with ctx.Err() when cancelled.
//
// A Session is safe for sequential reuse: the environment is read-only
// during runs, so many experiments can be launched from the same Session
// one after another (or concurrently, if the configured Observer is
// concurrency-tolerant — each concurrent call gets its own serial event
// stream).
type Session struct {
	id          string
	env         *Environment
	observer    Observer
	sweepScheme string
	closed      atomic.Bool
}

// ErrSessionClosed is returned by every Session method after Close.
var ErrSessionClosed = errors.New("unbiasedfl: session closed")

// sessionCounter numbers sessions process-wide; IDs are unique within a
// process and stable in creation order, which is what registries (the
// serving daemon's session table, logs, tests) need.
var sessionCounter atomic.Uint64

func newSessionID() string {
	return fmt.Sprintf("session-%d", sessionCounter.Add(1))
}

// sessionConfig collects functional options before the environment is
// built.
type sessionConfig struct {
	opts             Options
	observer         Observer
	sweepScheme      string
	backend          Backend
	checkpoint       string
	checkpointResume bool
	roundTimeout     time.Duration
	membership       *engine.MembershipPlan
	groupSize        int
}

// Option configures a Session at construction time.
type Option func(*sessionConfig)

// WithBaseOptions replaces the whole experiment Options struct (laptop
// defaults otherwise). Field-level options applied after it override its
// fields.
func WithBaseOptions(o Options) Option { return func(c *sessionConfig) { c.opts = o } }

// WithPaperScale starts from the paper's full scale (40 devices, R=1000,
// E=100, 20 runs) instead of the laptop defaults.
func WithPaperScale() Option { return func(c *sessionConfig) { c.opts = PaperOptions() } }

// WithClients sets the number of federated clients.
func WithClients(n int) Option { return func(c *sessionConfig) { c.opts.NumClients = n } }

// WithTotalSamples sets the total training-sample count (0 = the setup's
// default scaled by the fleet size).
func WithTotalSamples(n int) Option { return func(c *sessionConfig) { c.opts.TotalSamples = n } }

// WithFleetShards synthesizes the fleet from n distinct data shards shared
// across clients by pointer — the scale knob that makes 10^5–10^6-client
// fleets fit in memory. Clients sharing a shard keep distinct minibatch
// trajectories (each owns a private RNG cursor) and are priced individually.
// 0 (the default) materializes every client's shard.
func WithFleetShards(n int) Option { return func(c *sessionConfig) { c.opts.FleetShards = n } }

// WithGroupSize makes every training run launched from the session aggregate
// hierarchically: clients fold their weighted deltas in groups of k and only
// group partials reach the coordinator, whose memory stays
// O(model + fleet/k); on the cluster backend each group multiplexes onto a
// single socket node. Purely an execution knob — results are bit-identical
// to flat aggregation at any k. 0 or 1 aggregates flat.
func WithGroupSize(k int) Option { return func(c *sessionConfig) { c.groupSize = k } }

// WithRounds sets the training horizon R.
func WithRounds(n int) Option { return func(c *sessionConfig) { c.opts.Rounds = n } }

// WithLocalSteps sets E, the local SGD steps per round.
func WithLocalSteps(n int) Option { return func(c *sessionConfig) { c.opts.LocalSteps = n } }

// WithBatchSize sets the SGD mini-batch size.
func WithBatchSize(n int) Option { return func(c *sessionConfig) { c.opts.BatchSize = n } }

// WithEvalEvery sets the evaluation throttle (rounds between full
// loss/accuracy evaluations).
func WithEvalEvery(n int) Option { return func(c *sessionConfig) { c.opts.EvalEvery = n } }

// WithCalibrationRounds sets the calibration length for the G_n estimates.
func WithCalibrationRounds(n int) Option { return func(c *sessionConfig) { c.opts.Calibration = n } }

// WithRuns sets the number of independent training repetitions averaged per
// scheme.
func WithRuns(n int) Option { return func(c *sessionConfig) { c.opts.Runs = n } }

// WithSeed sets the root random seed.
func WithSeed(seed uint64) Option { return func(c *sessionConfig) { c.opts.Seed = seed } }

// WithObserver streams typed progress events (RoundStart, RoundEnd,
// SchemeSolved, SchemeDone, SweepPointDone) from every run launched by the
// session. Events arrive serially and in deterministic order; see Event.
func WithObserver(obs Observer) Option { return func(c *sessionConfig) { c.observer = obs } }

// WithSweepScheme selects the pricing scheme RunSweep retrains under, by
// registry name (default: the paper's proposed mechanism). Any scheme
// registered via RegisterScheme is valid.
func WithSweepScheme(name string) Option { return func(c *sessionConfig) { c.sweepScheme = name } }

// WithBackend selects the execution backend every training run launched
// from the session uses: BackendLocal (the default in-process worker pool)
// or BackendCluster (one real TCP socket node per client on loopback).
// Results are bit-identical across backends — the unified federation
// engine runs the same orchestrated round protocol on both.
func WithBackend(b Backend) Option { return func(c *sessionConfig) { c.backend = b } }

// WithCheckpoint makes every training run launched from the session durable:
// each (scheme, run) leg commits a checkpoint under the given path prefix at
// every round boundary, discarding any prior checkpoints there. A killed
// process rerun with WithCheckpointResume finishes each leg from its last
// committed round with bit-identical results. See internal/checkpoint for
// the invariant and the file format.
func WithCheckpoint(prefix string) Option {
	return func(c *sessionConfig) { c.checkpoint = prefix; c.checkpointResume = false }
}

// WithCheckpointResume is WithCheckpoint resuming from whatever checkpoints
// already exist under the prefix (legs without one start fresh).
func WithCheckpointResume(prefix string) Option {
	return func(c *sessionConfig) { c.checkpoint = prefix; c.checkpointResume = true }
}

// WithMembership makes every training run launched from the session elastic:
// clients join and leave the federation at the plan's round boundaries. At
// each epoch the market is re-priced over the active fleet (through a
// warm-started solver whose results are bit-identical to cold solves), the
// sampler's participation thresholds are updated, and aggregation weights are
// renormalized over the members present. Joins and permanent leaves happen
// only at round commits, so durable runs replay the epoch sequence
// byte-identically on resume. The plan is validated against the session's
// fleet size and horizon at construction time.
func WithMembership(plan *MembershipPlan) Option {
	return func(c *sessionConfig) { c.membership = plan }
}

// WithRoundTimeout puts every cluster-backend round under a deadline with
// self-healing degradation: a node that crashes, disconnects, or misses the
// deadline is recorded as unavailable for that round (which the unbiased
// estimator already prices) and revived in the background, instead of
// failing or hanging the run. Zero (the default) keeps strict behaviour. It
// has no effect on the local backend.
func WithRoundTimeout(d time.Duration) Option {
	return func(c *sessionConfig) { c.roundTimeout = d }
}

// NewSession generates data, calibrates the convergence-bound constants,
// and assembles the CPL game for one of the paper's setups, returning a
// Session ready to launch experiments. The (training-heavy) calibration
// phase honors ctx cancellation.
func NewSession(ctx context.Context, id SetupID, options ...Option) (*Session, error) {
	cfg := sessionConfig{opts: DefaultOptions(), sweepScheme: SchemeNameProposed}
	for _, o := range options {
		if o != nil {
			o(&cfg)
		}
	}
	if _, err := game.SchemeByName(cfg.sweepScheme); err != nil {
		return nil, err
	}
	if cfg.membership != nil {
		if err := cfg.membership.Validate(cfg.opts.NumClients, cfg.opts.Rounds); err != nil {
			return nil, err
		}
	}
	env, err := experiment.BuildSetup(ctx, id, cfg.opts)
	if err != nil {
		return nil, err
	}
	env.Exec = cfg.backend
	env.GroupSize = cfg.groupSize
	env.Checkpoint = cfg.checkpoint
	env.CheckpointResume = cfg.checkpointResume
	env.RoundTimeout = cfg.roundTimeout
	env.Membership = cfg.membership
	return &Session{id: newSessionID(), env: env, observer: cfg.observer, sweepScheme: cfg.sweepScheme}, nil
}

// ID returns the session's process-unique identifier, assigned at
// construction — the handle multi-tenant hosts (the flserve daemon, logs)
// key their registries on.
func (s *Session) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Close retires the session: subsequent experiment launches return
// ErrSessionClosed. It is idempotent — closing twice (or concurrently, as a
// serving registry's cancel and cleanup paths may) is safe and returns nil
// both times. Runs already in flight are not interrupted; cancel their
// contexts for that.
func (s *Session) Close() error {
	if s != nil {
		s.closed.Store(true)
	}
	return nil
}

// guard validates the receiver before launching work.
func (s *Session) guard() error {
	if s == nil || s.env == nil {
		return errors.New("unbiasedfl: nil session")
	}
	if s.closed.Load() {
		return ErrSessionClosed
	}
	return nil
}

// Environment exposes the session's prepared world (game parameters,
// federated data, timing model) for direct inspection and custom
// pipelines.
func (s *Session) Environment() *Environment { return s.env }

// Options returns the experiment options the session was built with.
func (s *Session) Options() Options { return s.env.Opts }

// Equilibrium solves the paper's Stackelberg equilibrium (Theorem 2 prices
// and best responses) on the session's game. The result is memoized in the
// session environment's equilibrium cache: repeated calls (and any scheme
// run that prices the same game) solve once. Treat it as read-only.
func (s *Session) Equilibrium() (*Equilibrium, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return s.env.Equilibrium()
}

// RunScheme prices the market with the named registered scheme and trains
// the model under the induced participation levels, streaming progress to
// the session observer.
func (s *Session) RunScheme(ctx context.Context, scheme string) (*SchemeRun, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return experiment.RunScheme(ctx, s.env, scheme, s.observer)
}

// CompareSchemes runs every registered pricing scheme on the session's
// environment — the paper's Fig. 4 comparison, extended to any scheme
// added via RegisterScheme.
func (s *Session) CompareSchemes(ctx context.Context) (*Comparison, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return experiment.Compare(ctx, s.env, s.observer)
}

// RunSweep reruns the session's sweep scheme (with retraining) across
// values of one parameter — the paper's Figs. 5–7. Points run concurrently;
// SweepPointDone events still arrive in ascending index order.
func (s *Session) RunSweep(ctx context.Context, kind SweepKind, values []float64) ([]SweepPoint, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return experiment.SweepScheme(ctx, s.env, s.sweepScheme, kind, values, s.observer)
}

// EquilibriumSweep is RunSweep without retraining: equilibrium economics
// only (Table V).
func (s *Session) EquilibriumSweep(ctx context.Context, kind SweepKind, values []float64) ([]SweepPoint, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return experiment.EquilibriumSweep(ctx, s.env, kind, values, s.observer)
}

// BoundFidelity measures how faithfully the Theorem-1 surrogate ranks real
// training outcomes across random participation profiles (DESIGN.md X6).
func (s *Session) BoundFidelity(ctx context.Context, profiles int) (*FidelityResult, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return experiment.BoundFidelity(ctx, s.env, profiles, s.env.Opts.Seed+99)
}

// ConvergenceRate measures the empirical optimality gap across training
// horizons, validating Theorem 1's O(1/R) shape (DESIGN.md X9).
func (s *Session) ConvergenceRate(ctx context.Context, horizons []int) ([]GapPoint, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return experiment.ConvergenceRate(ctx, s.env, horizons, s.env.Opts.Seed)
}
