package unbiasedfl

import (
	"unbiasedfl/internal/experiment"
)

// Streaming-observer types: typed progress events delivered serially and in
// deterministic order while a Session method is in flight. Attach an
// observer with WithObserver (or pass one to the package-level functions'
// variadic observer parameter where available).
type (
	// Event is any typed progress notification; switch on the concrete
	// types below.
	Event = experiment.Event
	// Observer receives events; ObserverFunc adapts a plain function.
	Observer = experiment.Observer
	// ObserverFunc adapts a func(Event) to the Observer interface.
	ObserverFunc = experiment.ObserverFunc
	// RoundStart fires before a training round's local updates begin.
	RoundStart = experiment.RoundStart
	// RoundEnd fires after a round; Loss/Accuracy are set when Evaluated.
	RoundEnd = experiment.RoundEnd
	// SchemeSolved fires when a scheme's Stage-I pricing is solved, before
	// training under it starts.
	SchemeSolved = experiment.SchemeSolved
	// SchemeDone fires when a scheme's averaged training run completes.
	SchemeDone = experiment.SchemeDone
	// SweepPointDone fires per finished sweep point, in ascending index
	// order even when points execute concurrently.
	SweepPointDone = experiment.SweepPointDone
)
