package unbiasedfl

import (
	"context"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/scenario"
)

// Scenario-engine façade: declarative experimental worlds with fault
// schedules, a deterministic driver, and the named library backing the
// golden-trace regression suite. See the internal/scenario package doc for
// the full model.
type (
	// Scenario declaratively describes one experimental world: fleet and
	// training scale, economics skew, data skew, and a per-client fault
	// schedule. Build one by hand or fetch a library entry via
	// ScenarioByName.
	Scenario = scenario.Scenario
	// ClientFault is one entry of a scenario's fault schedule.
	ClientFault = scenario.ClientFault
	// FaultKind discriminates the fault behaviours: exogenous (straggler,
	// dropout, flaky), membership (join, leave), and adversarial (misreport,
	// deviate, poison).
	FaultKind = scenario.FaultKind
	// Trace is the canonical, byte-reproducible record of a scenario run.
	// It is identical whichever execution backend produced it.
	Trace = scenario.Trace
	// TraceRound is one training round within a Trace.
	TraceRound = scenario.TraceRound
	// TraceEquilibrium is the priced market state a trace ran under.
	TraceEquilibrium = scenario.TraceEquilibrium
	// TraceEpoch is one membership epoch of an elastic trace: who joined or
	// left at the boundary and the re-priced sub-game's economics.
	TraceEpoch = scenario.TraceEpoch
	// TraceAdversary records a scenario's adversarial roster and the
	// equilibrium/accuracy degradation against truthful counterfactuals.
	TraceAdversary = scenario.TraceAdversary
	// GenOptions bounds the worlds GenerateScenario draws.
	GenOptions = scenario.GenOptions
	// Replay is the evidence ReplayScenarioAggregate collects for the
	// metamorphic unbiasedness check.
	Replay = scenario.Replay
	// ReplayConfig tunes the metamorphic unbiasedness replay.
	ReplayConfig = scenario.ReplayConfig
	// MembershipPlan schedules mid-run membership churn for a session: an
	// initial roster plus join/leave events at round boundaries. Pass it to
	// WithMembership. Scenario runs express churn as FaultJoin/FaultLeave
	// entries instead.
	MembershipPlan = engine.MembershipPlan
	// MembershipEvent is one epoch boundary of a MembershipPlan.
	MembershipEvent = engine.MembershipEvent
	// ScenarioRunConfig selects the execution backend (and its knobs) for
	// RunScenarioWith.
	ScenarioRunConfig = scenario.RunConfig
	// ClusterConfig tunes the multi-node loopback harness, including the
	// self-healing RoundTimeout.
	ClusterConfig = scenario.ClusterConfig
	// CheckpointConfig makes a scenario run durable: commit a checkpoint at
	// every round boundary and resume a killed run to a byte-identical
	// trace. See internal/checkpoint for the invariant.
	CheckpointConfig = scenario.CheckpointConfig
)

// The fault kinds a schedule can inject.
const (
	// FaultStraggler multiplies a client's latency by its DelayFactor.
	FaultStraggler = scenario.FaultStraggler
	// FaultDropout removes a client permanently from round Round onward.
	FaultDropout = scenario.FaultDropout
	// FaultFlaky makes a client reachable only with probability
	// Availability each round.
	FaultFlaky = scenario.FaultFlaky
	// FaultJoin admits a client at the Round epoch boundary; it is absent
	// from the initial roster.
	FaultJoin = scenario.FaultJoin
	// FaultLeave retires a client permanently and gracefully at the Round
	// epoch boundary.
	FaultLeave = scenario.FaultLeave
	// FaultMisreport makes a client report Factor× its true cost at Stage-I,
	// so the market is priced against a lie.
	FaultMisreport = scenario.FaultMisreport
	// FaultDeviate makes a client participate with Factor·q instead of its
	// priced q at Stage-II.
	FaultDeviate = scenario.FaultDeviate
	// FaultPoison scales a client's model delta by Factor from round Round
	// onward.
	FaultPoison = scenario.FaultPoison
)

// RunScenario compiles and executes the scenario through the full data →
// calibration → game → pricing → training pipeline on the in-process
// backend and returns its canonical trace. Replays of the same scenario are
// bit-identical for any GOMAXPROCS; cancelling ctx aborts promptly with
// ctx.Err().
func RunScenario(ctx context.Context, sc Scenario) (*Trace, error) {
	return scenario.Run(ctx, sc)
}

// RunScenarioWith is the single scenario entry point behind RunScenario and
// RunScenarioCluster: the same orchestrated run, pointed at the execution
// backend the config selects. The trace is byte-identical across backends.
func RunScenarioWith(ctx context.Context, sc Scenario, cfg ScenarioRunConfig) (*Trace, error) {
	return scenario.RunWith(ctx, sc, cfg)
}

// RunScenarioCluster executes the scenario as a real multi-node federation —
// a TCP coordinator plus one socket node per device on loopback — and
// returns the same canonical *Trace as RunScenario, byte-identical to the
// in-process result. (Before the unified engine it returned a separate
// ClusterResult shape; the trace now is the cross-backend contract.)
func RunScenarioCluster(ctx context.Context, sc Scenario, cfg ClusterConfig) (*Trace, error) {
	return scenario.RunCluster(ctx, sc, cfg)
}

// ScenarioNames lists the named scenario library in canonical order.
func ScenarioNames() []string { return scenario.Names() }

// Scenarios returns a fresh copy of every library scenario.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioByName fetches a library scenario, e.g. "baseline" or
// "straggler-heavy".
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// GenerateScenario derives a valid scenario from an arbitrary byte seed with
// the default bounds — the property-based generation entry point. The same
// seed always yields the same world; see GenerateScenarioWith for bounds.
func GenerateScenario(seed []byte) Scenario { return scenario.Generate(seed) }

// GenerateScenarioWith is GenerateScenario under explicit bounds.
func GenerateScenarioWith(seed []byte, opts GenOptions) Scenario {
	return scenario.GenerateWith(seed, opts)
}

// ReplayScenarioAggregate replays one round's participation sampling many
// times on fresh coin streams and returns the evidence for the metamorphic
// unbiasedness check: sampled aggregate projections next to Lemma 1's
// analytic expectation.
func ReplayScenarioAggregate(ctx context.Context, sc Scenario, cfg ReplayConfig) (*Replay, error) {
	return scenario.ReplayAggregate(ctx, sc, cfg)
}
