package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"unbiasedfl/internal/experiment"
)

// fleetReport is the JSON shape the fleet experiment persists (BENCH_PR10.json).
type fleetReport struct {
	Experiment string                         `json:"experiment"`
	GroupSize  int                            `json:"group_size"`
	Points     []*experiment.FleetBenchResult `json:"points"`
}

// fleet benchmarks priced rounds at synthesized fleet scale. Points run in
// ascending fleet order inside one process, so each point's peak-RSS
// high-water mark is dominated by its own fleet; the coordinator-memory claim
// (O(model + fleet/K), not O(fleet·model)) is read off the largest point.
func (h *harness) fleet(fleets string, group int, backends string, rounds int, seed uint64, out string) error {
	sizes, err := parseFleetSizes(fleets)
	if err != nil {
		return err
	}
	var bks []experiment.Backend
	for _, name := range strings.Split(backends, ",") {
		b, err := experiment.ParseBackend(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		bks = append(bks, b)
	}

	fmt.Fprintln(h.out, experiment.Banner("Fleet scale — priced rounds with hierarchical aggregation"))
	fmt.Fprintln(h.out, "|   fleet | group | backend | participants | build (s) | price (s) | round (s) | sockets | peak RSS (MB) |")
	fmt.Fprintln(h.out, "|--------:|------:|---------|-------------:|----------:|----------:|----------:|--------:|--------------:|")
	report := &fleetReport{Experiment: "fleet", GroupSize: group}
	for _, fleet := range sizes {
		for _, bk := range bks {
			res, err := experiment.FleetBench(h.ctx, experiment.FleetBenchConfig{
				Fleet:     fleet,
				GroupSize: group,
				Backend:   bk,
				Rounds:    rounds,
				Seed:      seed,
			})
			if err != nil {
				return fmt.Errorf("fleet %d on %v: %w", fleet, bk, err)
			}
			if res.Participants == 0 {
				return fmt.Errorf("fleet %d on %v: priced round carried no participants", fleet, bk)
			}
			fmt.Fprintf(h.out, "| %7d | %5d | %-7s | %12d | %9.2f | %9.2f | %9.2f | %7d | %13.0f |\n",
				res.Fleet, res.GroupSize, res.Backend, res.Participants,
				res.BuildS, res.PriceS, res.RoundS, res.Sockets, res.PeakRSSMB)
			report.Points = append(report.Points, res)
		}
	}
	fmt.Fprintln(h.out)
	if out == "" {
		return nil
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(blob, '\n'), 0o644)
}

// parseFleetSizes parses the comma-separated -fleet list and sorts it
// ascending so peak-RSS readings stay per-point meaningful.
func parseFleetSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("-fleet: %q is not a fleet size", part)
		}
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	return sizes, nil
}
