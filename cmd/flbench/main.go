// Command flbench regenerates the paper's tables and figures. Each
// experiment id maps to one artifact of the evaluation section (see
// README.md for the artifact mapping):
//
//	fig4   — loss/accuracy vs time for all three pricing schemes
//	table2 — time to target loss per scheme
//	table3 — time to target accuracy per scheme
//	table4 — total client-utility gains of the proposed scheme
//	table5 — negative-payment counts vs mean intrinsic value
//	fig5   — impact of mean intrinsic value v (Setup 1)
//	fig6   — impact of mean local cost c (Setup 2)
//	fig7   — impact of budget B (Setup 3)
//	rate   — empirical O(1/R) convergence-rate validation (DESIGN.md X9)
//	fidelity — Theorem-1 bound vs training rank agreement (DESIGN.md X6)
//	bayes  — Bayesian incomplete-information pricing (DESIGN.md X1)
//	fleet  — priced rounds at synthesized fleet scale (10^4–10^6 clients)
//	all    — everything above (paper artifacts only)
//
// Usage:
//
//	flbench -experiment all [-setup 1] [-clients 12] [-rounds 120] [-runs 3]
//	flbench -experiment fig4 -setup 2 -paper   # full paper scale (slow)
//	flbench -experiment fig4 -cpuprofile cpu.pprof -memprofile mem.pprof
//	flbench -experiment fleet -fleet 10000,100000 -group 100 -fleet-backends local,cluster -bench-out BENCH_PR10.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"unbiasedfl/internal/cli"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		exp     = flag.String("experiment", "all", "experiment id (fig4..fig7, table2..table5, all)")
		setup   = flag.Int("setup", 0, "restrict to one setup (0 = the paper's setup for that artifact)")
		clients = flag.Int("clients", 12, "number of clients")
		rounds  = flag.Int("rounds", 120, "training rounds R")
		steps   = flag.Int("steps", 10, "local SGD steps E")
		runs    = flag.Int("runs", 3, "independent runs to average")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "directory to persist CSV/markdown artifacts (optional)")
		paper   = flag.Bool("paper", false, "use the paper's full scale (40 clients, R=1000, E=100, 20 runs)")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")

		fleets    = flag.String("fleet", "10000", "fleet experiment: comma-separated synthesized fleet sizes, benchmarked in ascending order")
		group     = flag.Int("group", 100, "fleet experiment: hierarchical aggregation group size K (⌈fleet/K⌉ partials and, on cluster, sockets)")
		fleetBk   = flag.String("fleet-backends", "local,cluster", "fleet experiment: comma-separated backends to benchmark")
		fleetRnds = flag.Int("fleet-rounds", 1, "fleet experiment: priced training rounds per point")
		benchOut  = flag.String("bench-out", "", "fleet experiment: write the measured points as JSON to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "flbench: memprofile:", err)
			}
		}()
	}

	opts := experiment.DefaultOptions()
	if *paper {
		opts = experiment.PaperOptions()
	} else {
		opts.NumClients = *clients
		opts.Rounds = *rounds
		opts.LocalSteps = *steps
		opts.Runs = *runs
	}
	opts.Seed = *seed

	h := &harness{ctx: ctx, opts: opts, out: os.Stdout, onlySetup: experiment.SetupID(*setup)}
	if *out != "" {
		artifacts, err := experiment.NewArtifacts(*out)
		if err != nil {
			return err
		}
		h.artifacts = artifacts
		defer func() {
			if err := artifacts.Finalize(); err != nil {
				fmt.Fprintln(os.Stderr, "flbench: finalize artifacts:", err)
			}
		}()
	}
	switch *exp {
	case "fig4", "table2", "table3", "table4":
		return h.comparisons()
	case "table5":
		return h.table5()
	case "fig5":
		return h.sweep(experiment.Setup1, experiment.SweepV, []float64{0, 1000, 4000, 16000, 80000})
	case "fig6":
		return h.sweep(experiment.Setup2, experiment.SweepC, []float64{5, 10, 20, 40, 80})
	case "fig7":
		return h.sweep(experiment.Setup3, experiment.SweepB, []float64{100, 250, 500, 1000, 2000})
	case "rate":
		return h.rate()
	case "fidelity":
		return h.fidelity()
	case "bayes":
		return h.bayes()
	case "fleet":
		return h.fleet(*fleets, *group, *fleetBk, *fleetRnds, *seed, *benchOut)
	case "all":
		if err := h.comparisons(); err != nil {
			return err
		}
		if err := h.table5(); err != nil {
			return err
		}
		if err := h.sweep(experiment.Setup1, experiment.SweepV, []float64{0, 1000, 4000, 16000, 80000}); err != nil {
			return err
		}
		if err := h.sweep(experiment.Setup2, experiment.SweepC, []float64{5, 10, 20, 40, 80}); err != nil {
			return err
		}
		return h.sweep(experiment.Setup3, experiment.SweepB, []float64{100, 250, 500, 1000, 2000})
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

type harness struct {
	ctx       context.Context
	opts      experiment.Options
	out       *os.File
	onlySetup experiment.SetupID
	artifacts *experiment.Artifacts
}

func (h *harness) setups() []experiment.SetupID {
	if h.onlySetup != 0 {
		return []experiment.SetupID{h.onlySetup}
	}
	return []experiment.SetupID{experiment.Setup1, experiment.Setup2, experiment.Setup3}
}

// comparisons produces Fig. 4 plus Tables II, III, and IV for each setup.
func (h *harness) comparisons() error {
	for _, id := range h.setups() {
		fmt.Fprintln(h.out, experiment.Banner(id.String()))
		env, err := experiment.BuildSetup(h.ctx, id, h.opts)
		if err != nil {
			return err
		}
		cmp, err := experiment.Compare(h.ctx, env)
		if err != nil {
			return err
		}
		if err := experiment.WriteComparisonReport(h.out, cmp); err != nil {
			return err
		}
		if h.artifacts != nil {
			name := fmt.Sprintf("setup%d_fig4", int(id))
			if err := h.artifacts.SaveComparison(name, cmp); err != nil {
				return err
			}
		}
	}
	return nil
}

// table5 reproduces the negative-payment counts of Table V on Setup 1.
func (h *harness) table5() error {
	fmt.Fprintln(h.out, experiment.Banner("Table V — negative payments vs v (Setup 1)"))
	env, err := experiment.BuildSetup(h.ctx, experiment.Setup1, h.opts)
	if err != nil {
		return err
	}
	points, err := experiment.EquilibriumSweep(h.ctx, env, experiment.SweepV, []float64{0, 4000, 80000})
	if err != nil {
		return err
	}
	fmt.Fprintln(h.out, "| mean v | clients with P_n < 0 |")
	fmt.Fprintln(h.out, "|---:|---:|")
	for _, p := range points {
		fmt.Fprintf(h.out, "| %.0f | %d |\n", p.Value, p.NegativePayments)
	}
	fmt.Fprintln(h.out)
	if h.artifacts != nil {
		return h.artifacts.SaveSweep("setup1_table5", experiment.Setup1, experiment.SweepV, points, false)
	}
	return nil
}

// sweep produces one of Figs. 5–7 with full retraining at each point.
func (h *harness) sweep(id experiment.SetupID, kind experiment.SweepKind, values []float64) error {
	fmt.Fprintf(h.out, "%s\n", experiment.Banner(fmt.Sprintf("%v — %v", id, kind)))
	env, err := experiment.BuildSetup(h.ctx, id, h.opts)
	if err != nil {
		return err
	}
	points, err := experiment.Sweep(h.ctx, env, kind, values)
	if err != nil {
		return err
	}
	if err := experiment.WriteSweepReport(h.out, kind, points, true); err != nil {
		return err
	}
	if h.artifacts != nil {
		name := fmt.Sprintf("setup%d_%d_sweep", int(id), int(kind))
		return h.artifacts.SaveSweep(name, id, kind, points, true)
	}
	return nil
}

// rate validates the O(1/R) decay of Theorem 1 empirically.
func (h *harness) rate() error {
	fmt.Fprintln(h.out, experiment.Banner("Convergence rate — empirical O(1/R) check"))
	env, err := experiment.BuildSetup(h.ctx, experiment.Setup2, h.opts)
	if err != nil {
		return err
	}
	horizons := []int{h.opts.Rounds / 4, h.opts.Rounds, h.opts.Rounds * 4}
	points, err := experiment.ConvergenceRate(h.ctx, env, horizons, h.opts.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(h.out, "| rounds R | optimality gap |")
	fmt.Fprintln(h.out, "|---:|---:|")
	for _, p := range points {
		fmt.Fprintf(h.out, "| %d | %.6f |\n", p.Rounds, p.Gap)
	}
	if p, err := experiment.FitRateExponent(points); err == nil {
		fmt.Fprintf(h.out, "\nfitted decay exponent: %.3f (Theorem 1 predicts about -1)\n\n", p)
	}
	return nil
}

// fidelity reports the rank agreement between the bound and training.
func (h *harness) fidelity() error {
	fmt.Fprintln(h.out, experiment.Banner("Bound fidelity — surrogate vs training"))
	env, err := experiment.BuildSetup(h.ctx, experiment.Setup2, h.opts)
	if err != nil {
		return err
	}
	res, err := experiment.BoundFidelity(h.ctx, env, 6, h.opts.Seed+99)
	if err != nil {
		return err
	}
	fmt.Fprintln(h.out, "| profile | Theorem-1 bound | final training loss |")
	fmt.Fprintln(h.out, "|---:|---:|---:|")
	for i := range res.Bounds {
		fmt.Fprintf(h.out, "| %d | %.6g | %.6f |\n", i, res.Bounds[i], res.Losses[i])
	}
	fmt.Fprintf(h.out, "\nKendall tau: %.3f (1 = the bound ranks profiles exactly like training)\n\n",
		res.KendallTau)
	return nil
}

// bayes contrasts complete-information pricing with the Bayesian design.
func (h *harness) bayes() error {
	fmt.Fprintln(h.out, experiment.Banner("Bayesian incomplete information"))
	env, err := experiment.BuildSetup(h.ctx, experiment.Setup1, h.opts)
	if err != nil {
		return err
	}
	complete, err := env.Params.SolveKKT()
	if err != nil {
		return err
	}
	prior := game.Prior{MeanC: env.MeanC, MeanV: env.MeanV}
	bayes, err := env.Params.SolveBayesian(prior, 800, stats.NewRNG(h.opts.Seed+7))
	if err != nil {
		return err
	}
	_, spend, obj, err := env.Params.EvaluateRealized(bayes.P)
	if err != nil {
		return err
	}
	uni, err := env.Params.SolveScheme(game.SchemeUniform)
	if err != nil {
		return err
	}
	fmt.Fprintln(h.out, "| design | realized bound | realized spend |")
	fmt.Fprintln(h.out, "|---|---:|---:|")
	fmt.Fprintf(h.out, "| complete information | %.6g | %.2f |\n", complete.ServerObj, complete.Spent)
	fmt.Fprintf(h.out, "| bayesian posted prices | %.6g | %.2f |\n", obj, spend)
	fmt.Fprintf(h.out, "| uniform posted price | %.6g | %.2f |\n\n", uni.ServerObj, uni.Spent)
	return nil
}
