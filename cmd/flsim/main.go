// Command flsim runs one federated training simulation for a setup under a
// chosen pricing scheme and prints the timed loss/accuracy trajectory — one
// curve of the paper's Fig. 4. Any scheme registered in the pricing
// registry is accepted; Ctrl-C cancels mid-round.
//
// With -scenario it instead replays a named scenario from the library —
// fleet, faults, economics and all — and prints its canonical trace
// (-scenario list enumerates the library).
//
// With -generate it derives a scenario from an arbitrary byte seed through
// the property-based generator — the same worlds the fuzz harness explores —
// and runs it. The seed is taken literally, as hex after a "hex:" prefix, or
// from a Go fuzz corpus file with "@path".
//
// Durability: -checkpoint commits the run state every round; a process
// killed mid-run (even with SIGKILL — try -kill-after) rerun with -resume
// finishes from the last committed round and prints a trace byte-identical
// to an uninterrupted run. -round-timeout puts cluster rounds under a
// self-healing deadline.
//
// Usage:
//
//	flsim -setup 2 -scheme proposed [-rounds 120] [-clients 12] [-runs 3] [-backend local|cluster] [-json] [-progress]
//	flsim -scenario straggler-heavy [-backend local|cluster] [-json]
//	flsim -generate hex:deadbeef [-json]
//	flsim -generate @internal/scenario/testdata/fuzz/FuzzScenario/seed-ascii
//	flsim -scenario baseline -checkpoint run.ckpt [-kill-after 5]
//	flsim -scenario baseline -checkpoint run.ckpt -resume -json
//	flsim -scenario list
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"unbiasedfl"
	"unbiasedfl/internal/cli"
	"unbiasedfl/internal/experiment"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(1)
	}
}

// schemeRunJSON is flsim's machine-readable result shape.
type schemeRunJSON struct {
	Setup              string      `json:"setup"`
	Scheme             string      `json:"scheme"`
	Budget             float64     `json:"budget"`
	Spend              float64     `json:"spend"`
	ServerBound        float64     `json:"server_bound"`
	FinalLoss          float64     `json:"final_loss"`
	FinalAccuracy      float64     `json:"final_accuracy"`
	TotalClientUtility float64     `json:"total_client_utility"`
	NegativePayments   int         `json:"negative_payments"`
	Points             []pointJSON `json:"points"`
}

type pointJSON struct {
	TimeS    float64 `json:"time_s"`
	Loss     float64 `json:"loss"`
	Accuracy float64 `json:"accuracy"`
}

func run(ctx context.Context) error {
	var (
		setup    = flag.Int("setup", 1, "experimental setup (1, 2, or 3)")
		scheme   = flag.String("scheme", "proposed", "pricing scheme (any registered name; built-ins: proposed, uniform, weighted)")
		scenario = flag.String("scenario", "", "replay a named scenario instead of a plain run ('list' enumerates the library)")
		generate = flag.String("generate", "", "run a generated scenario derived from this byte seed (literal bytes, 'hex:<digits>', or '@path' to a Go fuzz corpus file)")
		clients  = flag.Int("clients", 12, "number of clients (with -fleet: the number of distinct data shards)")
		fleet    = flag.Int("fleet", 0, "synthesize a fleet of this many clients sharing the -clients distinct data shards by pointer (0 = every client gets its own shard); clients sharing a shard keep distinct minibatch trajectories and are priced individually")
		group    = flag.Int("group", 0, "hierarchical aggregation group size K: clients fold in groups of K and only group partials reach the coordinator; on the cluster backend each group shares one socket (0 = flat); results are bit-identical at any K")
		rounds   = flag.Int("rounds", 120, "training rounds R")
		steps    = flag.Int("steps", 10, "local SGD steps E")
		runs     = flag.Int("runs", 3, "independent runs to average")
		seed     = flag.Uint64("seed", 1, "random seed")
		backend  = flag.String("backend", "local", "execution backend: local (in-process pool) or cluster (one TCP socket node per client on loopback)")
		csv      = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonFlag = flag.Bool("json", false, "emit machine-readable JSON instead of a table")
		progress = flag.Bool("progress", false, "stream per-round progress to stderr while training")

		joinFlag  = flag.String("join", "", "membership churn: comma-separated client@round admissions (e.g. '5@3'); joined clients are absent until their epoch")
		leaveFlag = flag.String("leave", "", "membership churn: comma-separated client@round graceful departures (e.g. '2@6')")

		ckpt      = flag.String("checkpoint", "", "checkpoint path (scenario mode) or path prefix (scheme mode): commit run state every round so a killed run can resume")
		resume    = flag.Bool("resume", false, "resume from the checkpoint at -checkpoint instead of starting fresh; the finished trace is byte-identical to an uninterrupted run")
		roundTO   = flag.Duration("round-timeout", 0, "cluster backend: per-round deadline with self-healing degradation (0 = strict)")
		killAfter = flag.Int("kill-after", 0, "SIGKILL this process right after round N commits (crash/resume testing; requires -checkpoint)")
	)
	flag.Parse()

	if *resume && *ckpt == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	if *killAfter > 0 && *ckpt == "" {
		return fmt.Errorf("-kill-after needs -checkpoint (a kill without a committed state cannot be resumed)")
	}

	exec, err := unbiasedfl.ParseBackend(*backend)
	if err != nil {
		return err
	}
	joins, err := parseChurn(*joinFlag)
	if err != nil {
		return fmt.Errorf("-join: %w", err)
	}
	leaves, err := parseChurn(*leaveFlag)
	if err != nil {
		return fmt.Errorf("-leave: %w", err)
	}

	if *generate != "" {
		// A generated world is fully determined by its seed: like -scenario,
		// any plain-run override would be silently meaningless. Durability
		// flags stay off too — a generated world is for exploration, not for
		// long-lived resumable runs (name a scenario for those).
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "generate", "json", "backend", "round-timeout", "group":
			default:
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return fmt.Errorf("-generate derives a self-contained world from its seed; %s do(es) not apply (only -json, -backend, -group, and -round-timeout combine)",
				strings.Join(conflicting, ", "))
		}
		seedBytes, err := parseGenerateSeed(*generate)
		if err != nil {
			return fmt.Errorf("-generate: %w", err)
		}
		sc := unbiasedfl.GenerateScenario(seedBytes)
		cfg := unbiasedfl.ScenarioRunConfig{
			Backend:   exec,
			Cluster:   unbiasedfl.ClusterConfig{RoundTimeout: *roundTO},
			GroupSize: *group,
		}
		trace, err := unbiasedfl.RunScenarioWith(ctx, sc, cfg)
		if err != nil {
			return err
		}
		return printTrace(trace, *jsonFlag)
	}

	if *scenario != "" {
		// A scenario is a complete world: the plain-run flags don't apply,
		// and silently ignoring them would make the user believe their
		// overrides took effect.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenario", "json", "backend", "checkpoint", "resume", "round-timeout", "kill-after", "join", "leave", "group":
			default:
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return fmt.Errorf("-scenario replays a self-contained world; %s do(es) not apply (only -json, -backend, -group, and the durability flags combine)",
				strings.Join(conflicting, ", "))
		}
		cfg := unbiasedfl.ScenarioRunConfig{
			Backend:   exec,
			Cluster:   unbiasedfl.ClusterConfig{RoundTimeout: *roundTO},
			GroupSize: *group,
			Checkpoint: unbiasedfl.CheckpointConfig{
				Path:        *ckpt,
				Resume:      *resume,
				AfterCommit: killAfterHook(*killAfter),
			},
		}
		return runScenario(ctx, *scenario, cfg, joins, leaves, *jsonFlag)
	}

	name := *scheme
	if name == "optimal" { // historical alias for the proposed mechanism
		name = unbiasedfl.SchemeNameProposed
	}
	if _, err := unbiasedfl.SchemeByName(name); err != nil {
		return err
	}

	options := []unbiasedfl.Option{
		unbiasedfl.WithClients(*clients),
		unbiasedfl.WithRounds(*rounds),
		unbiasedfl.WithLocalSteps(*steps),
		unbiasedfl.WithRuns(*runs),
		unbiasedfl.WithSeed(*seed),
		unbiasedfl.WithBackend(exec),
		unbiasedfl.WithRoundTimeout(*roundTO),
		unbiasedfl.WithGroupSize(*group),
	}
	if *fleet > 0 {
		if *fleet < *clients {
			return fmt.Errorf("-fleet %d is smaller than its -clients %d data shards", *fleet, *clients)
		}
		// The fleet is synthesized from -clients distinct shards; every one
		// of the -fleet clients is still priced and sampled individually.
		options = append(options,
			unbiasedfl.WithClients(*fleet),
			unbiasedfl.WithFleetShards(*clients))
	}
	numClients := *clients
	if *fleet > 0 {
		numClients = *fleet
	}
	if plan := churnPlan(numClients, joins, leaves); plan != nil {
		options = append(options, unbiasedfl.WithMembership(plan))
	}
	if *ckpt != "" {
		if *resume {
			options = append(options, unbiasedfl.WithCheckpointResume(*ckpt))
		} else {
			options = append(options, unbiasedfl.WithCheckpoint(*ckpt))
		}
	}
	if *killAfter > 0 {
		return fmt.Errorf("-kill-after only applies to -scenario runs")
	}
	if *progress {
		options = append(options, unbiasedfl.WithObserver(
			unbiasedfl.ObserverFunc(func(e unbiasedfl.Event) {
				switch ev := e.(type) {
				case unbiasedfl.SchemeSolved:
					fmt.Fprintf(os.Stderr, "%s: priced (spend %.2f)\n", ev.Scheme, ev.Outcome.Spent)
				case unbiasedfl.RoundEnd:
					if ev.Evaluated {
						fmt.Fprintf(os.Stderr, "%s run %d round %d: loss %.4f acc %.4f\n",
							ev.Scheme, ev.Run, ev.Round, ev.Loss, ev.Accuracy)
					}
				}
			})))
	}
	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.SetupID(*setup), options...)
	if err != nil {
		return err
	}
	run, err := sess.RunScheme(ctx, name)
	if err != nil {
		return err
	}
	env := sess.Environment()

	switch {
	case *jsonFlag:
		out := schemeRunJSON{
			Setup:              env.ID.String(),
			Scheme:             run.Scheme,
			Budget:             env.Params.B,
			Spend:              run.Outcome.Spent,
			ServerBound:        run.Outcome.ServerObj,
			FinalLoss:          run.FinalLoss,
			FinalAccuracy:      run.FinalAccuracy,
			TotalClientUtility: run.TotalClientUtility,
			NegativePayments:   run.NegativePayments,
		}
		for _, pt := range run.Points {
			out.Points = append(out.Points, pointJSON{
				TimeS: pt.Elapsed.Seconds(), Loss: pt.Loss, Accuracy: pt.Accuracy,
			})
		}
		return cli.WriteJSON(os.Stdout, out)
	case *csv:
		return experiment.WriteSeriesCSV(os.Stdout, run)
	}
	fmt.Printf("%v under %v pricing (spent %.2f of B=%.2f)\n\n",
		env.ID, run.Scheme, run.Outcome.Spent, env.Params.B)
	fmt.Println("  time (s) |   loss | accuracy")
	fmt.Println("-----------+--------+---------")
	for _, pt := range run.Points {
		fmt.Printf("%10.1f | %.4f | %.4f\n", pt.Elapsed.Seconds(), pt.Loss, pt.Accuracy)
	}
	fmt.Printf("\nfinal: loss %.4f, accuracy %.4f; total client utility %.2f; negative payments %d\n",
		run.FinalLoss, run.FinalAccuracy, run.TotalClientUtility, run.NegativePayments)
	return nil
}

// killAfterHook compiles -kill-after into the checkpoint AfterCommit seam:
// the moment round n's commit is durable, the process delivers SIGKILL to
// itself — the hardest crash available, with no deferred cleanup or flushes
// — so the crash/resume suite exercises real process death.
func killAfterHook(n int) func(int) {
	if n <= 0 {
		return nil
	}
	return func(committed int) {
		if committed != n {
			return
		}
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			_ = p.Kill()
		}
		select {} // the signal is in flight; never run another round
	}
}

// churnEvent is one parsed client@round membership change.
type churnEvent struct {
	Client, Round int
}

// parseChurn parses a comma-separated list of client@round entries.
func parseChurn(s string) ([]churnEvent, error) {
	if s == "" {
		return nil, nil
	}
	var out []churnEvent
	for _, part := range strings.Split(s, ",") {
		var ev churnEvent
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d@%d", &ev.Client, &ev.Round); err != nil {
			return nil, fmt.Errorf("%q is not client@round", part)
		}
		out = append(out, ev)
	}
	return out, nil
}

// churnPlan compiles parsed -join/-leave events into a membership plan for a
// scheme-mode session (nil when there is no churn). The initial roster is
// every client that is not scheduled to join; the facade validates the rest.
func churnPlan(clients int, joins, leaves []churnEvent) *unbiasedfl.MembershipPlan {
	if len(joins) == 0 && len(leaves) == 0 {
		return nil
	}
	events := map[int]*unbiasedfl.MembershipEvent{}
	rounds := []int{}
	at := func(r int) *unbiasedfl.MembershipEvent {
		if ev, ok := events[r]; ok {
			return ev
		}
		ev := &unbiasedfl.MembershipEvent{Round: r}
		events[r] = ev
		rounds = append(rounds, r)
		return ev
	}
	joiner := map[int]bool{}
	for _, j := range joins {
		at(j.Round).Join = append(at(j.Round).Join, j.Client)
		joiner[j.Client] = true
	}
	for _, l := range leaves {
		at(l.Round).Leave = append(at(l.Round).Leave, l.Client)
	}
	sort.Ints(rounds)
	plan := &unbiasedfl.MembershipPlan{}
	for n := 0; n < clients; n++ {
		if !joiner[n] {
			plan.Initial = append(plan.Initial, n)
		}
	}
	for _, r := range rounds {
		ev := events[r]
		sort.Ints(ev.Join)
		sort.Ints(ev.Leave)
		plan.Events = append(plan.Events, *ev)
	}
	return plan
}

// churnFaults lowers parsed -join/-leave events onto a scenario's fault
// schedule, where membership churn is declared as FaultJoin/FaultLeave
// entries.
func churnFaults(joins, leaves []churnEvent) []unbiasedfl.ClientFault {
	var out []unbiasedfl.ClientFault
	for _, j := range joins {
		out = append(out, unbiasedfl.ClientFault{Client: j.Client, Kind: unbiasedfl.FaultJoin, Round: j.Round})
	}
	for _, l := range leaves {
		out = append(out, unbiasedfl.ClientFault{Client: l.Client, Kind: unbiasedfl.FaultLeave, Round: l.Round})
	}
	return out
}

// runScenario replays one named scenario under the given run configuration
// and prints its canonical trace (identical whichever backend carried it).
func runScenario(ctx context.Context, name string, cfg unbiasedfl.ScenarioRunConfig, joins, leaves []churnEvent, jsonOut bool) error {
	if name == "list" {
		if jsonOut {
			type entry struct {
				Name        string `json:"name"`
				Description string `json:"description"`
			}
			var out []entry
			for _, sc := range unbiasedfl.Scenarios() {
				out = append(out, entry{sc.Name, sc.Description})
			}
			return cli.WriteJSON(os.Stdout, out)
		}
		for _, sc := range unbiasedfl.Scenarios() {
			fmt.Printf("%-20s %s\n", sc.Name, sc.Description)
		}
		return nil
	}
	sc, err := unbiasedfl.ScenarioByName(name)
	if err != nil {
		return err
	}
	// -join/-leave overlay membership churn onto the named world; the
	// scenario validator checks coherence against its fleet and horizon.
	sc.Faults = append(sc.Faults, churnFaults(joins, leaves)...)
	trace, err := unbiasedfl.RunScenarioWith(ctx, sc, cfg)
	if err != nil {
		return err
	}
	return printTrace(trace, jsonOut)
}

// parseGenerateSeed decodes the -generate argument into the raw byte seed the
// scenario generator consumes: "@path" extracts the bytes from a Go fuzz
// corpus file (the "go test fuzz v1" format the native harness writes),
// "hex:" prefixes hex-decode, and anything else is taken as literal bytes —
// so a crash input the fuzzer minimized can be replayed as a full simulation
// without hand-decoding it.
func parseGenerateSeed(arg string) ([]byte, error) {
	switch {
	case strings.HasPrefix(arg, "@"):
		raw, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return nil, err
		}
		lines := strings.Split(string(raw), "\n")
		if len(lines) == 0 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
			return nil, fmt.Errorf("%s is not a Go fuzz corpus file (missing 'go test fuzz v1' header)", arg[1:])
		}
		for _, line := range lines[1:] {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			quoted := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			s, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("corpus entry %q: %w", line, err)
			}
			return []byte(s), nil
		}
		return nil, fmt.Errorf("%s has no []byte(...) entry", arg[1:])
	case strings.HasPrefix(arg, "hex:"):
		return hex.DecodeString(strings.TrimPrefix(arg, "hex:"))
	default:
		return []byte(arg), nil
	}
}

// printTrace renders a scenario trace — named or generated — as JSON or the
// human-readable table.
func printTrace(trace *unbiasedfl.Trace, jsonOut bool) error {
	if jsonOut {
		return cli.WriteJSON(os.Stdout, trace)
	}
	fmt.Printf("scenario %q (%s) under %s pricing: %d clients, %d rounds\n",
		trace.Scenario, trace.Setup, trace.Scheme, trace.Clients, trace.Rounds)
	fmt.Printf("spent %.2f; simulated wall clock %.1fs\n\n", trace.Equilibrium.Spent, trace.SimTimeS)
	fmt.Println("client |  priced q | empirical q | joined | dropped at")
	fmt.Println("-------+-----------+-------------+--------+-----------")
	for n := range trace.Participation {
		droppedAt := "-"
		if trace.DroppedAt[n] >= 0 {
			droppedAt = fmt.Sprintf("%d", trace.DroppedAt[n])
		}
		fmt.Printf("%6d | %9.4f | %11.4f | %6d | %s\n",
			n, trace.Equilibrium.Q[n], trace.EmpiricalQ[n], trace.Participation[n], droppedAt)
	}
	if len(trace.Membership) > 0 {
		fmt.Println("\nmembership epochs:")
		for _, ep := range trace.Membership {
			fmt.Printf("  epoch %d (round %d): %d active, spent %.2f",
				ep.Epoch, ep.Round, ep.Active, ep.Spent)
			if len(ep.Joined) > 0 {
				fmt.Printf(", joined %v", ep.Joined)
			}
			if len(ep.Left) > 0 {
				fmt.Printf(", left %v", ep.Left)
			}
			fmt.Println()
		}
	}
	if adv := trace.Adversary; adv != nil {
		fmt.Println("\nadversaries:")
		if len(adv.Misreporting) > 0 {
			fmt.Printf("  misreporting costs: clients %v\n", adv.Misreporting)
		}
		if len(adv.Deviating) > 0 {
			fmt.Printf("  deviating from priced q: clients %v\n", adv.Deviating)
		}
		if len(adv.Poisoning) > 0 {
			fmt.Printf("  poisoning updates: clients %v\n", adv.Poisoning)
		}
		fmt.Printf("  vs truthful pricing: server bound %+.6f, client utility %+.2f\n",
			adv.ServerObjInflation, adv.UtilityShift)
		fmt.Printf("  vs honest twin run: loss %+.4f, accuracy %+.4f\n",
			adv.LossInflation, -adv.AccuracyDrop)
	}
	fmt.Printf("\nfinal: loss %.4f, accuracy %.4f; total client utility %.2f; negative payments %d\n",
		trace.FinalLoss, trace.FinalAccuracy, trace.TotalClientUtility, trace.NegativePayments)
	return nil
}
