// Command flsim runs one federated training simulation for a setup under a
// chosen pricing scheme and prints the timed loss/accuracy trajectory — one
// curve of the paper's Fig. 4.
//
// Usage:
//
//	flsim -setup 2 -scheme proposed [-rounds 120] [-clients 12] [-runs 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/game"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		setup   = flag.Int("setup", 1, "experimental setup (1, 2, or 3)")
		scheme  = flag.String("scheme", "proposed", "pricing scheme: proposed, uniform, weighted")
		clients = flag.Int("clients", 12, "number of clients")
		rounds  = flag.Int("rounds", 120, "training rounds R")
		steps   = flag.Int("steps", 10, "local SGD steps E")
		runs    = flag.Int("runs", 3, "independent runs to average")
		seed    = flag.Uint64("seed", 1, "random seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of a table")
	)
	flag.Parse()

	var s game.Scheme
	switch *scheme {
	case "proposed", "optimal":
		s = game.SchemeOptimal
	case "uniform":
		s = game.SchemeUniform
	case "weighted":
		s = game.SchemeWeighted
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	opts := experiment.DefaultOptions()
	opts.NumClients = *clients
	opts.Rounds = *rounds
	opts.LocalSteps = *steps
	opts.Runs = *runs
	opts.Seed = *seed
	env, err := experiment.BuildSetup(experiment.SetupID(*setup), opts)
	if err != nil {
		return err
	}
	run, err := experiment.RunScheme(env, s)
	if err != nil {
		return err
	}

	if *csv {
		return experiment.WriteSeriesCSV(os.Stdout, run)
	}
	fmt.Printf("%v under %v pricing (spent %.2f of B=%.2f)\n\n",
		env.ID, s, run.Outcome.Spent, env.Params.B)
	fmt.Println("  time (s) |   loss | accuracy")
	fmt.Println("-----------+--------+---------")
	for _, pt := range run.Points {
		fmt.Printf("%10.1f | %.4f | %.4f\n", pt.Elapsed.Seconds(), pt.Loss, pt.Accuracy)
	}
	fmt.Printf("\nfinal: loss %.4f, accuracy %.4f; total client utility %.2f; negative payments %d\n",
		run.FinalLoss, run.FinalAccuracy, run.TotalClientUtility, run.NegativePayments)
	return nil
}
