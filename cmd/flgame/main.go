// Command flgame solves the CPL Stackelberg game for one of the paper's
// setups and prints the equilibrium: per-client participation levels,
// customized prices (including negative, bi-directional payments), the
// payment-direction threshold v_t, and the Theorem-2 invariant. Ctrl-C
// cancels a long setup build cleanly.
//
// Usage:
//
//	flgame -setup 1 [-clients 12] [-budget 200] [-meanv 4000] [-seed 1] [-json]
//	flgame -setup 1 -clients 1000 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"unbiasedfl"
	"unbiasedfl/internal/cli"
	"unbiasedfl/internal/game"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "flgame:", err)
		os.Exit(1)
	}
}

// equilibriumJSON is flgame's machine-readable result shape.
type equilibriumJSON struct {
	Setup            string       `json:"setup"`
	Clients          int          `json:"clients"`
	Budget           float64      `json:"budget"`
	Alpha            float64      `json:"alpha"`
	Rounds           float64      `json:"rounds"`
	Lambda           float64      `json:"lambda"`
	BudgetTight      bool         `json:"budget_tight"`
	PaymentThreshold float64      `json:"payment_threshold_vt"`
	Spend            float64      `json:"spend"`
	ServerBound      float64      `json:"server_bound"`
	NegativePayments int          `json:"negative_payments"`
	PerClient        []clientJSON `json:"per_client"`
}

type clientJSON struct {
	Client  int     `json:"client"`
	A       float64 `json:"a"`
	G       float64 `json:"g"`
	C       float64 `json:"c"`
	V       float64 `json:"v"`
	Q       float64 `json:"q"`
	P       float64 `json:"p"`
	Payment float64 `json:"payment"`
}

func run(ctx context.Context) error {
	var (
		setup    = flag.Int("setup", 1, "experimental setup (1=Synthetic, 2=MNIST-like, 3=EMNIST-like)")
		clients  = flag.Int("clients", 12, "number of clients")
		budget   = flag.Float64("budget", -1, "override server budget B (-1 = Table I value)")
		meanV    = flag.Float64("meanv", -1, "override mean intrinsic value (-1 = Table I value)")
		seed     = flag.Uint64("seed", 1, "random seed")
		jsonFlag = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flgame: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "flgame: memprofile:", err)
			}
		}()
	}

	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.SetupID(*setup),
		unbiasedfl.WithClients(*clients),
		unbiasedfl.WithSeed(*seed),
	)
	if err != nil {
		return err
	}
	env := sess.Environment()
	params := env.Params
	if *budget >= 0 {
		params = params.Clone()
		params.B = *budget
	}
	if *meanV >= 0 && env.MeanV > 0 {
		params = params.Clone()
		scale := *meanV / env.MeanV
		for i := range params.V {
			params.V[i] *= scale
		}
	}

	eq, err := params.SolveKKT()
	if err != nil {
		return err
	}

	if *jsonFlag {
		out := equilibriumJSON{
			Setup:            env.ID.String(),
			Clients:          params.N(),
			Budget:           params.B,
			Alpha:            params.Alpha,
			Rounds:           params.R,
			Lambda:           eq.Lambda,
			BudgetTight:      eq.BudgetTight,
			PaymentThreshold: eq.Vt(),
			Spend:            eq.Spent,
			ServerBound:      eq.ServerObj,
			NegativePayments: eq.NegativePayments(),
		}
		for n := 0; n < params.N(); n++ {
			out.PerClient = append(out.PerClient, clientJSON{
				Client: n, A: params.A[n], G: params.G[n], C: params.C[n],
				V: params.V[n], Q: eq.Q[n], P: eq.P[n], Payment: eq.P[n] * eq.Q[n],
			})
		}
		return cli.WriteJSON(os.Stdout, out)
	}

	fmt.Printf("%v — Stackelberg equilibrium (N=%d, B=%.2f, alpha=%.4g, R=%.0f)\n\n",
		env.ID, params.N(), params.B, params.Alpha, params.R)
	fmt.Printf("budget multiplier lambda* = %.6g  (tight: %v)\n", eq.Lambda, eq.BudgetTight)
	fmt.Printf("payment threshold v_t = %.4g — clients with v_n above this PAY the server\n", eq.Vt())
	fmt.Printf("total spend = %.4f of budget %.4f\n", eq.Spent, params.B)
	fmt.Printf("server bound term g(q*) = %.6g\n\n", eq.ServerObj)

	fmt.Println("client |     a_n |     G_n |     c_n |       v_n |    q*_n |     P*_n | payment")
	fmt.Println("-------+---------+---------+---------+-----------+---------+----------+---------")
	for n := 0; n < params.N(); n++ {
		fmt.Printf("%6d | %.5f | %7.3f | %7.2f | %9.1f | %.5f | %8.3f | %8.3f\n",
			n, params.A[n], params.G[n], params.C[n], params.V[n],
			eq.Q[n], eq.P[n], eq.P[n]*eq.Q[n])
	}
	fmt.Printf("\nnegative-payment clients: %d of %d\n", eq.NegativePayments(), params.N())

	if interior, err := params.VerifyTheorem2(eq, 1e-6); err != nil {
		fmt.Printf("Theorem 2 check: FAILED (%v)\n", err)
	} else {
		fmt.Printf("Theorem 2 invariant verified across %d interior clients\n", interior)
	}
	if err := params.VerifyTheorem3(eq); err != nil {
		fmt.Printf("Theorem 3 check: FAILED (%v)\n", err)
	} else {
		fmt.Println("Theorem 3 payment-direction threshold verified")
	}

	// Cross-check with the paper's M-search method.
	ms, err := params.SolveMSearch(game.DefaultMSearchOptions())
	if err != nil {
		return fmt.Errorf("m-search cross-check: %w", err)
	}
	fmt.Printf("M-search cross-check: bound %.6g (KKT %.6g, ratio %.4f)\n",
		ms.ServerObj, eq.ServerObj, ms.ServerObj/eq.ServerObj)

	// Marginal analysis: what one more unit of budget buys.
	sens, err := params.AnalyzeSensitivity(game.SensitivityOptions{})
	if err != nil {
		return fmt.Errorf("sensitivity: %w", err)
	}
	fmt.Printf("marginal value of budget: dBound/dB = %.4g (bound units per currency unit)\n",
		sens.DBoundDBudget)
	if err := params.CheckPredictedSigns(sens, 1e-3); err != nil {
		fmt.Printf("comparative-statics sign check: FAILED (%v)\n", err)
	} else {
		fmt.Println("comparative-statics signs match Proposition 1, Theorems 2-3, Corollary 1")
	}
	return nil
}
