// Command flnode runs one node of the TCP cross-device prototype — either
// the coordinating server (the laptop in the paper's Fig. 3) or a client
// device (a Raspberry Pi). All nodes generate the same federated dataset
// from a shared seed, so each client owns its own shard without any data
// exchange, exactly like physically-distributed devices.
//
// Usage:
//
//	flnode -role server -addr :9000 -clients 8 -rounds 30 [-round-timeout 30s]
//	flnode -role client -addr host:9000 -id 0 [-dial-attempts 10]
//	...
//	flnode -role client -addr host:9000 -id 7
//
// -round-timeout makes the server degrade gracefully around crashed or
// silent devices instead of stranding the fleet; -dial-attempts (with
// -dial-backoff/-dial-backoff-max) lets a device outwait a coordinator that
// is still booting or rebooting. -join introduces a device with the v4 join
// handshake; -leave-after N makes it depart gracefully mid-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"unbiasedfl/internal/cli"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/transport"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "flnode:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		role    = flag.String("role", "server", "node role: server or client")
		addr    = flag.String("addr", "127.0.0.1:9000", "listen (server) or dial (client) address")
		id      = flag.Int("id", 0, "client id (client role)")
		setup   = flag.Int("setup", 2, "experimental setup shaping the shared dataset")
		clients = flag.Int("clients", 8, "number of clients in the fleet")
		rounds  = flag.Int("rounds", 30, "training rounds")
		steps   = flag.Int("steps", 5, "local SGD steps per round")
		seed    = flag.Uint64("seed", 1, "shared data seed (must match across nodes)")
		timeout = flag.Duration("timeout", 2*time.Minute, "socket timeout")

		roundTO = flag.Duration("round-timeout", 0, "server: per-round reply deadline; a client that crashes or misses it is treated as unavailable instead of stranding the federation (0 = strict)")

		dialAttempts = flag.Int("dial-attempts", 1, "client: dial attempts before giving up (capped exponential backoff between attempts)")
		dialBackoff  = flag.Duration("dial-backoff", transport.DefaultRetryBase, "client: initial dial backoff; doubles per retry")
		dialMax      = flag.Duration("dial-backoff-max", transport.DefaultRetryMax, "client: dial backoff cap")

		join       = flag.Bool("join", false, "client: introduce this device with a join handshake (protocol v4) instead of a plain hello — a prospective member asking to be admitted")
		leaveAfter = flag.Int("leave-after", 0, "client: depart gracefully at the first round >= N — announce MsgLeave, await the coordinator's farewell, exit cleanly (0 = stay for the whole run)")
	)
	flag.Parse()

	opts := experiment.DefaultOptions()
	opts.NumClients = *clients
	opts.Rounds = *rounds
	opts.LocalSteps = *steps
	opts.Seed = *seed
	env, err := experiment.BuildSetup(ctx, experiment.SetupID(*setup), opts)
	if err != nil {
		return err
	}

	switch *role {
	case "server":
		eq, err := env.Params.SolveKKT()
		if err != nil {
			return err
		}
		q := make([]float64, len(eq.Q))
		for i, qi := range eq.Q {
			if qi < env.Params.QMin {
				qi = env.Params.QMin
			}
			q[i] = qi
		}
		cfg := transport.ServerConfig{
			Addr:       *addr,
			NumClients: *clients,
			Q:          q,
			Weights:    env.Fed.Weights,
			Rounds:     *rounds,
			LocalSteps: *steps,
			BatchSize:  opts.BatchSize,
			Schedule:   fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
			Timeout:    *timeout,
		}
		if *roundTO > 0 {
			// A round deadline implies graceful degradation: a device that
			// misses it is skipped (and stays skippable), never waited on.
			cfg.Timeout = *roundTO
			cfg.TolerateFaults = true
		}
		srv, err := transport.NewServer(cfg, env.Model)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("server listening on %s, waiting for %d clients\n", srv.Addr(), *clients)
		res, err := srv.Run(ctx)
		if err != nil {
			return err
		}
		loss, err := env.Model.Loss(res.FinalModel, env.Fed.Train)
		if err != nil {
			return err
		}
		acc, err := env.Model.Accuracy(res.FinalModel, env.Fed.Test)
		if err != nil {
			return err
		}
		fmt.Printf("training finished: global loss %.4f, test accuracy %.4f\n", loss, acc)
		for n, cnt := range res.ParticipationCounts {
			fmt.Printf("client %d: q=%.3f participated %d/%d rounds\n", n, q[n], cnt, *rounds)
		}
		return nil
	case "client":
		if *id < 0 || *id >= *clients {
			return fmt.Errorf("client id %d out of range [0,%d)", *id, *clients)
		}
		node, err := transport.NewClient(transport.ClientConfig{
			Addr: *addr, ID: *id, Seed: *seed + uint64(*id)*1009 + 17, Timeout: *timeout,
			Retry: transport.RetryPolicy{
				Attempts: *dialAttempts, Base: *dialBackoff, Max: *dialMax,
			},
			Join:       *join,
			LeaveAfter: *leaveAfter,
		}, env.Model, env.Fed.Clients[*id])
		if err != nil {
			return err
		}
		joined, err := node.Run(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("client %d finished, participated in %d rounds\n", *id, joined)
		return nil
	default:
		return fmt.Errorf("unknown role %q", *role)
	}
}
