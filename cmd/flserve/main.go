// Command flserve is the equilibrium-as-a-service daemon: a persistent,
// multi-tenant HTTP/JSON server over the pricing engine and the federation
// facade. It answers high-QPS quote/solve requests from a sharded memo
// cache, runs admission-controlled federation sessions whose typed event
// streams are exposed as Server-Sent Events, and exports Prometheus-style
// metrics. SIGTERM/SIGINT drain gracefully: in-flight quotes finish,
// running sessions are cancelled through their contexts, and the process
// exits 0.
//
// Usage:
//
//	flserve [-addr 127.0.0.1:8080] [-cache-size 4096] [-max-sessions 2]
//	        [-max-queued 8] [-max-body 1048576] [-quote-timeout 10s]
//	        [-drain-timeout 15s]
//
//	flserve -load [-url http://127.0.0.1:8080] [-conns 4] [-duration 5s]
//	        [-distinct 32] [-clients 12] [-scheme proposed]
//
// The -load mode is the closed-loop benchmark client used to produce
// BENCH_PR7.json: it primes the daemon's cache with every distinct game,
// then measures cached-quote throughput, latency percentiles, and the
// cache hit rate over the timed window, printing a JSON report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"unbiasedfl/internal/cli"
	"unbiasedfl/internal/serve"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "flserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		load = flag.Bool("load", false, "run the load-generator client instead of the daemon")

		addr         = flag.String("addr", "127.0.0.1:8080", "daemon listen address")
		cacheSize    = flag.Int("cache-size", 4096, "quote cache capacity (distinct games)")
		maxSessions  = flag.Int("max-sessions", 2, "concurrently running federation sessions")
		maxQueued    = flag.Int("max-queued", 8, "queued sessions before 429")
		maxBody      = flag.Int64("max-body", 1<<20, "request body limit in bytes")
		quoteTimeout = flag.Duration("quote-timeout", 10*time.Second, "per-request quote/solve deadline")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget")

		url      = flag.String("url", "http://127.0.0.1:8080", "load: daemon base URL")
		conns    = flag.Int("conns", 4, "load: concurrent connections")
		duration = flag.Duration("duration", 5*time.Second, "load: timed window")
		distinct = flag.Int("distinct", 32, "load: distinct games cycled through")
		clients  = flag.Int("clients", 12, "load: fleet size per quoted game")
		scheme   = flag.String("scheme", "proposed", "load: pricing scheme to quote")
		batch    = flag.Int("batch", 0, "load: games per request via /v1/quotes (0 = single-quote endpoint)")
	)
	flag.Parse()

	if *load {
		rep, err := serve.RunLoad(ctx, serve.LoadOptions{
			BaseURL:  *url,
			Conns:    *conns,
			Duration: *duration,
			Distinct: *distinct,
			Clients:  *clients,
			Scheme:   *scheme,
			Batch:    *batch,
		})
		if err != nil {
			return err
		}
		return cli.WriteJSON(os.Stdout, rep)
	}

	srv := serve.New(serve.Config{
		Addr:         *addr,
		CacheSize:    *cacheSize,
		MaxSessions:  *maxSessions,
		MaxQueued:    *maxQueued,
		MaxBody:      *maxBody,
		QuoteTimeout: *quoteTimeout,
		DrainTimeout: *drainTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	fmt.Fprintf(os.Stderr, "flserve: listening on %s\n", *addr)
	return srv.ListenAndServe(ctx)
}
