package unbiasedfl_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"unbiasedfl"
)

// tinyFacadeOptions keeps the façade smoke tests fast.
func tinyFacadeOptions() []unbiasedfl.Option {
	return []unbiasedfl.Option{
		unbiasedfl.WithClients(5),
		unbiasedfl.WithTotalSamples(600),
		unbiasedfl.WithRounds(25),
		unbiasedfl.WithLocalSteps(5),
		unbiasedfl.WithBatchSize(16),
		unbiasedfl.WithEvalEvery(5),
		unbiasedfl.WithCalibrationRounds(2),
		unbiasedfl.WithSeed(2),
		unbiasedfl.WithRuns(1),
	}
}

func TestSessionEndToEnd(t *testing.T) {
	ctx := context.Background()
	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1, tinyFacadeOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Options().NumClients; got != 5 {
		t.Fatalf("functional options not applied: clients %d", got)
	}
	eq, err := sess.Equilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if len(eq.Q) != 5 || len(eq.P) != 5 {
		t.Fatalf("equilibrium sizes %d/%d", len(eq.Q), len(eq.P))
	}
	run, err := sess.RunScheme(ctx, unbiasedfl.SchemeNameProposed)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Points) == 0 {
		t.Fatal("no trajectory points")
	}
	if run.FinalLoss <= 0 {
		t.Fatalf("final loss %v", run.FinalLoss)
	}
	if run.Scheme != unbiasedfl.SchemeNameProposed {
		t.Fatalf("scheme name %q", run.Scheme)
	}
}

func TestSessionCompareAndSweep(t *testing.T) {
	ctx := context.Background()
	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup2, tinyFacadeOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sess.CompareSchemes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Schemes) != 3 {
		t.Fatalf("schemes %d", len(cmp.Schemes))
	}
	if cmp.Scheme(unbiasedfl.SchemeNameProposed) == nil ||
		cmp.Scheme(unbiasedfl.SchemeNameUniform) == nil ||
		cmp.Scheme(unbiasedfl.SchemeNameWeighted) == nil {
		t.Fatal("missing built-in scheme in comparison")
	}
	points, err := sess.EquilibriumSweep(ctx, unbiasedfl.SweepB, []float64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("sweep points %d", len(points))
	}
	if points[1].MeanQ < points[0].MeanQ {
		t.Fatal("mean q should rise with budget")
	}
}

// TestDeprecatedFacade keeps the v0 entry points (ctx-threaded now, enum
// constants deprecated) working against the registry-backed internals.
func TestDeprecatedFacade(t *testing.T) {
	ctx := context.Background()
	opts := unbiasedfl.Options{
		NumClients:   5,
		TotalSamples: 600,
		Rounds:       25,
		LocalSteps:   5,
		BatchSize:    16,
		EvalEvery:    5,
		Calibration:  2,
		Seed:         2,
		Runs:         1,
	}
	env, err := unbiasedfl.NewSetup(ctx, unbiasedfl.Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The deprecated enum still prices through the registry shim.
	out, err := env.Params.SolveScheme(unbiasedfl.SchemeOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != unbiasedfl.SchemeNameProposed {
		t.Fatalf("enum mapped to %q", out.Name)
	}
	run, err := unbiasedfl.RunScheme(ctx, env, unbiasedfl.SchemeOptimal.String())
	if err != nil {
		t.Fatal(err)
	}
	if run.FinalLoss <= 0 {
		t.Fatalf("final loss %v", run.FinalLoss)
	}
}

func TestFacadeDefaults(t *testing.T) {
	d := unbiasedfl.DefaultOptions()
	p := unbiasedfl.PaperOptions()
	if d.NumClients <= 1 || p.NumClients != 40 || p.Rounds != 1000 {
		t.Fatalf("unexpected defaults: %+v %+v", d, p)
	}
	if unbiasedfl.Setup1.String() == "" || unbiasedfl.SchemeOptimal.String() != "proposed" {
		t.Fatal("stringers broken")
	}
	names := unbiasedfl.SchemeNames()
	if len(names) < 3 || names[0] != unbiasedfl.SchemeNameProposed {
		t.Fatalf("registry names %v", names)
	}
}

// TestSessionIdentityAndClose pins the serving seam: every session gets a
// unique stable ID, Close is idempotent, and a closed session refuses all
// work with ErrSessionClosed.
func TestSessionIdentityAndClose(t *testing.T) {
	ctx := context.Background()
	a, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1, tinyFacadeOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1, tinyFacadeOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == "" || b.ID() == "" {
		t.Fatalf("empty session IDs: %q, %q", a.ID(), b.ID())
	}
	if a.ID() == b.ID() {
		t.Fatalf("sessions share ID %q", a.ID())
	}
	if !strings.HasPrefix(a.ID(), "session-") {
		t.Fatalf("session ID %q, want session-N", a.ID())
	}

	if err := a.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if a.ID() == "" {
		t.Fatal("ID lost after Close")
	}

	if _, err := a.Equilibrium(); !errors.Is(err, unbiasedfl.ErrSessionClosed) {
		t.Fatalf("Equilibrium after Close: %v, want ErrSessionClosed", err)
	}
	if _, err := a.RunScheme(ctx, "proposed"); !errors.Is(err, unbiasedfl.ErrSessionClosed) {
		t.Fatalf("RunScheme after Close: %v, want ErrSessionClosed", err)
	}

	// The sibling session is unaffected.
	if _, err := b.Equilibrium(); err != nil {
		t.Fatalf("open session Equilibrium: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
