package unbiasedfl_test

import (
	"testing"

	"unbiasedfl"
)

// tinyFacadeOptions keeps the façade smoke tests fast.
func tinyFacadeOptions() unbiasedfl.Options {
	return unbiasedfl.Options{
		NumClients:   5,
		TotalSamples: 600,
		Rounds:       25,
		LocalSteps:   5,
		BatchSize:    16,
		EvalEvery:    5,
		Calibration:  2,
		Seed:         2,
		Runs:         1,
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	env, err := unbiasedfl.NewSetup(unbiasedfl.Setup1, tinyFacadeOptions())
	if err != nil {
		t.Fatal(err)
	}
	eq, err := env.Params.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if len(eq.Q) != 5 || len(eq.P) != 5 {
		t.Fatalf("equilibrium sizes %d/%d", len(eq.Q), len(eq.P))
	}
	run, err := unbiasedfl.RunScheme(env, unbiasedfl.SchemeOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Points) == 0 {
		t.Fatal("no trajectory points")
	}
	if run.FinalLoss <= 0 {
		t.Fatalf("final loss %v", run.FinalLoss)
	}
}

func TestFacadeCompareAndSweep(t *testing.T) {
	env, err := unbiasedfl.NewSetup(unbiasedfl.Setup2, tinyFacadeOptions())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := unbiasedfl.CompareSchemes(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Schemes) != 3 {
		t.Fatalf("schemes %d", len(cmp.Schemes))
	}
	points, err := unbiasedfl.EquilibriumSweep(env, unbiasedfl.SweepB, []float64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("sweep points %d", len(points))
	}
	if points[1].MeanQ < points[0].MeanQ {
		t.Fatal("mean q should rise with budget")
	}
}

func TestFacadeDefaults(t *testing.T) {
	d := unbiasedfl.DefaultOptions()
	p := unbiasedfl.PaperOptions()
	if d.NumClients <= 1 || p.NumClients != 40 || p.Rounds != 1000 {
		t.Fatalf("unexpected defaults: %+v %+v", d, p)
	}
	if unbiasedfl.Setup1.String() == "" || unbiasedfl.SchemeOptimal.String() != "proposed" {
		t.Fatal("stringers broken")
	}
}
