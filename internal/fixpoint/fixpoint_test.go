package fixpoint

import (
	"math"
	"testing"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// TestFixQuantizeRoundTrips: quantize → dequantize is exact for values on
// the grid and within half a grid step otherwise.
func TestFixQuantizeRoundTrips(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, -0.5, 1e-10, -1e-10, 3.141592653589793,
		-2.718281828459045, 1 << 22, -(1 << 22), 5e-25, -5e-25,
		math.Ldexp(1, -80), -math.Ldexp(1, -80),
	}
	step := math.Ldexp(1, -fixShift)
	for _, x := range cases {
		lo, hi, ok := fixQuantize(x)
		if !ok {
			t.Fatalf("fixQuantize(%v) saturated", x)
		}
		got := fixToFloat(lo, hi)
		if math.Abs(got-x) > step {
			t.Fatalf("fixQuantize(%v) round-trips to %v (off by %v > grid step)", x, got, got-x)
		}
	}
}

// TestFixQuantizeSaturates: non-finite and over-cap addends must saturate,
// never wrap.
func TestFixQuantizeSaturates(t *testing.T) {
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 2 * fixMaxAddend, -2 * fixMaxAddend} {
		if _, _, ok := fixQuantize(x); ok {
			t.Fatalf("fixQuantize(%v) did not saturate", x)
		}
	}
	a := New(2)
	if err := a.AddScaled(1, tensor.Vec{1, math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if !a.Saturated() {
		t.Fatal("accumulator did not latch saturation")
	}
	v := tensor.Vec{0, 0}
	if err := a.AddTo(v); err != nil {
		t.Fatal(err)
	}
	if v.IsFinite() {
		t.Fatalf("saturated accumulator folded to finite %v", v)
	}
}

// TestAccGroupingInvariance is the heart of the hierarchical-aggregation
// guarantee: summing N random addends flat, in contiguous groups of every
// size, and in reversed order must produce bit-identical limbs and a
// bit-identical float fold.
func TestAccGroupingInvariance(t *testing.T) {
	const n, p = 137, 9
	rng := stats.NewRNG(42)
	scales := make([]float64, n)
	deltas := make([]tensor.Vec, n)
	for i := range deltas {
		scales[i] = math.Exp(4 * (rng.Float64() - 0.5))
		deltas[i] = tensor.NewVec(p)
		for j := range deltas[i] {
			deltas[i][j] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40)-30)
		}
	}

	flat := New(p)
	for i := range deltas {
		if err := flat.AddScaled(scales[i], deltas[i]); err != nil {
			t.Fatal(err)
		}
	}
	flatLo, flatHi, _ := flat.Limbs()

	for _, k := range []int{1, 2, 3, 7, 16, n} {
		top := New(p)
		part := New(p)
		for g := 0; g < n; g += k {
			part.Reset()
			hi := g + k
			if hi > n {
				hi = n
			}
			for i := g; i < hi; i++ {
				if err := part.AddScaled(scales[i], deltas[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := top.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		lo, hi2, _ := top.Limbs()
		for j := 0; j < p; j++ {
			if lo[j] != flatLo[j] || hi2[j] != flatHi[j] {
				t.Fatalf("group size %d: limb %d differs from flat fold", k, j)
			}
		}
	}

	rev := New(p)
	for i := n - 1; i >= 0; i-- {
		if err := rev.AddScaled(scales[i], deltas[i]); err != nil {
			t.Fatal(err)
		}
	}
	revLo, revHi, _ := rev.Limbs()
	for j := 0; j < p; j++ {
		if revLo[j] != flatLo[j] || revHi[j] != flatHi[j] {
			t.Fatalf("reversed fold: limb %d differs from flat fold", j)
		}
	}
}

// TestAccNegativeSums: mixed-sign accumulation stays exact through the
// two's-complement representation.
func TestAccNegativeSums(t *testing.T) {
	a := New(1)
	if err := a.AddScaled(1, tensor.Vec{2.5}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddScaled(1, tensor.Vec{-4.25}); err != nil {
		t.Fatal(err)
	}
	v := tensor.Vec{10}
	if err := a.AddTo(v); err != nil {
		t.Fatal(err)
	}
	if v[0] != 10+(2.5-4.25) {
		t.Fatalf("mixed-sign sum = %v, want %v", v[0], 10+(2.5-4.25))
	}
}
