// Package fixpoint is the canonical aggregation arithmetic of the
// federation: a 128-bit signed fixed-point accumulator shared by the engine's
// aggregators and the wire-level prototype server (which cannot import the
// engine). Lemma 1's weighted sum
//
//	Σ_{n∈S_r} (a_n/q_n)(w_n^{r+1} − w^r)
//
// is mathematically associative, but IEEE-754 float addition is not — a
// chained float fold depends on the fold tree, so hierarchical (grouped)
// aggregation could never be bit-identical to the flat fold. The fix is to
// move the summation into exact integer arithmetic: each addend
// x = fl(scale·delta[j]) is computed in float exactly once per client
// (grouping-independent), quantized exactly onto a 2^-fixShift grid, and
// summed as a 128-bit two's-complement integer. Integer addition IS
// associative and commutative, so any grouping, any merge order, any worker
// count, and any backend produce the same limbs — and therefore, after one
// deterministic conversion back to float64, the same global model bit for
// bit. This is what lets a sub-aggregator group fold K members node-side and
// ship only its partial (two uint64 limbs per parameter) while the
// coordinator's merge of group partials stays provably identical to the flat
// per-client fold.
//
// Precision and range: the grid step is 2^-80 ≈ 8.3e-25 — far below the
// float64 ulp of any parameter the models here produce — and a single addend
// may carry magnitude up to 2^23. A saturating addend (non-finite, or above
// the cap) poisons the accumulator: the final fold yields NaN, so the
// orchestrator's divergence guard fires exactly as it would had the float
// fold overflowed. With |addend| < 2^23 the integer magnitude per addend is
// below 2^103, leaving headroom for 2^24 (≈16.7M) addends before the signed
// 128-bit range could overflow — comfortably above the 1e6-client fleets
// this engine targets.
package fixpoint

import (
	"errors"
	"math"
	"math/bits"

	"unbiasedfl/internal/tensor"
)

// fixShift is the binary point of the accumulator: addends are quantized to
// integer multiples of 2^-fixShift before summation.
const fixShift = 80

// fixMaxAddend bounds the magnitude one addend may contribute; anything
// larger (or non-finite) saturates the accumulator.
const fixMaxAddend = 1 << 23

var errFixLen = errors.New("fixpoint: accumulator length mismatch")

// Acc is a vector of 128-bit signed fixed-point accumulators — one per
// model parameter — plus a sticky saturation flag. The zero value is not
// usable; construct with New.
type Acc struct {
	lo, hi []uint64
	sat    bool
}

// New returns a zeroed accumulator for n parameters.
func New(n int) *Acc {
	return &Acc{lo: make([]uint64, n), hi: make([]uint64, n)}
}

// Len returns the number of parameters the accumulator covers.
func (a *Acc) Len() int { return len(a.lo) }

// Reset zeroes the accumulator for reuse.
func (a *Acc) Reset() {
	for j := range a.lo {
		a.lo[j] = 0
		a.hi[j] = 0
	}
	a.sat = false
}

// AddScaled folds one client's weighted delta into the accumulator:
// for each parameter j it quantizes fl(scale·delta[j]) and adds the exact
// integer. The float product is the only rounding step and depends solely on
// (scale, delta[j]) — never on what is already accumulated — which is the
// key grouping-invariance property.
func (a *Acc) AddScaled(scale float64, delta tensor.Vec) error {
	if len(delta) != len(a.lo) {
		return errFixLen
	}
	for j, d := range delta {
		x := scale * d
		lo, hi, ok := fixQuantize(x)
		if !ok {
			a.sat = true
			continue
		}
		var c uint64
		a.lo[j], c = bits.Add64(a.lo[j], lo, 0)
		a.hi[j], _ = bits.Add64(a.hi[j], hi, c)
	}
	return nil
}

// Merge folds another accumulator into a (exact integer addition; the
// saturation flag is sticky across merges).
func (a *Acc) Merge(b *Acc) error {
	return a.MergeLimbs(b.lo, b.hi, b.sat)
}

// MergeLimbs folds raw limb vectors — the wire form a group partial ships —
// into a. lo and hi must be the same length as the accumulator.
func (a *Acc) MergeLimbs(lo, hi []uint64, sat bool) error {
	if len(lo) != len(a.lo) || len(hi) != len(a.hi) {
		return errFixLen
	}
	a.sat = a.sat || sat
	for j := range lo {
		var c uint64
		a.lo[j], c = bits.Add64(a.lo[j], lo[j], 0)
		a.hi[j], _ = bits.Add64(a.hi[j], hi[j], c)
	}
	return nil
}

// Limbs exposes the accumulator's raw state for shipping as a group partial.
// The slices alias the accumulator; callers must not retain them across a
// Reset or further accumulation.
func (a *Acc) Limbs() (lo, hi []uint64, sat bool) { return a.lo, a.hi, a.sat }

// Saturated reports whether any addend overflowed the fixed-point range.
func (a *Acc) Saturated() bool { return a.sat }

// AddTo converts each accumulated sum back to float64 — one deterministic
// conversion per parameter, a pure function of the integer limbs — and adds
// it to v. A saturated accumulator writes NaN into every element so the
// caller's divergence guard trips.
func (a *Acc) AddTo(v tensor.Vec) error {
	if len(v) != len(a.lo) {
		return errFixLen
	}
	if a.sat {
		for j := range v {
			v[j] = math.NaN()
		}
		return nil
	}
	for j := range v {
		// An exactly-zero sum leaves the parameter untouched — the same
		// "no participants, no change" semantics as the historical fold,
		// preserved down to the sign of a -0.0 parameter.
		if a.lo[j] == 0 && a.hi[j] == 0 {
			continue
		}
		v[j] += fixToFloat(a.lo[j], a.hi[j])
	}
	return nil
}

// fixQuantize maps x onto the 2^-fixShift grid, returning the two's
// complement 128-bit limbs of round-to-nearest-even(x·2^fixShift).
// ok is false when x is non-finite or exceeds the addend cap.
func fixQuantize(x float64) (lo, hi uint64, ok bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > fixMaxAddend {
		return 0, 0, false
	}
	// Scaling by a power of two is exact; the single rounding step is the
	// round-to-even snap onto the integer grid.
	v := math.RoundToEven(math.Ldexp(x, fixShift))
	if v == 0 {
		return 0, 0, true
	}
	neg := v < 0
	av := math.Abs(v)
	// Split the (exactly representable) integer av into 64-bit limbs. Both
	// the power-of-two divide and the subtraction are exact: av < 2^103 has
	// a 53-bit mantissa, so av mod 2^64 spans at most 53 significant bits.
	hf := math.Floor(math.Ldexp(av, -64))
	lf := av - math.Ldexp(hf, 64)
	lo, hi = uint64(lf), uint64(hf)
	if neg {
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return lo, hi, true
}

// fixToFloat converts one 128-bit two's-complement fixed-point sum to
// float64. The result is a pure function of the limbs, so every fold tree
// that reaches the same integer sum reaches the same float.
func fixToFloat(lo, hi uint64) float64 {
	neg := hi>>63 != 0
	if neg {
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	f := math.Ldexp(float64(hi), 64-fixShift) + math.Ldexp(float64(lo), -fixShift)
	if neg {
		f = -f
	}
	return f
}
