// Package fl implements the federated-learning engine of the reproduction:
// FedAvg-style local SGD with E local steps per round, randomized
// independent client participation (each client joins round r with its own
// probability q_n), and the paper's unbiased aggregation rule (Lemma 1)
// alongside biased baselines. It also estimates the per-client gradient-norm
// bounds G_n that the convergence bound and the pricing mechanism consume.
package fl

import (
	"errors"

	"unbiasedfl/internal/engine"
)

// Schedule produces the learning rate for a given round. It is the engine's
// schedule seam re-exported for compatibility, as are the two concrete
// schedules below.
type Schedule = engine.Schedule

// ExpDecay is the experimental schedule from Section VI: η_r = Eta0·Decay^r.
type ExpDecay = engine.ExpDecay

// TheoremDecay is the analytical schedule from Theorem 1:
// η_r = 2 / (max{8L, μE} + μr).
type TheoremDecay = engine.TheoremDecay

// Config holds the training-loop hyperparameters shared by all setups.
type Config struct {
	Rounds     int      // R
	LocalSteps int      // E local SGD iterations per round
	BatchSize  int      // SGD mini-batch size (paper: 24)
	Schedule   Schedule // learning-rate schedule
	EvalEvery  int      // evaluate global loss/accuracy every this many rounds
	Seed       uint64   // run seed; every client derives a private stream
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rounds <= 0:
		return errors.New("fl: rounds must be positive")
	case c.LocalSteps <= 0:
		return errors.New("fl: local steps must be positive")
	case c.BatchSize <= 0:
		return errors.New("fl: batch size must be positive")
	case c.Schedule == nil:
		return errors.New("fl: nil schedule")
	case c.EvalEvery <= 0:
		return errors.New("fl: eval interval must be positive")
	}
	return nil
}

// DefaultConfig mirrors the paper's hyperparameters at reduced scale (R and
// E are dialled down for laptop runs; cmd/flbench exposes flags to restore
// the paper's R = 1000, E = 100).
func DefaultConfig() Config {
	return Config{
		Rounds:     150,
		LocalSteps: 10,
		BatchSize:  24,
		Schedule:   ExpDecay{Eta0: 0.1, Decay: 0.996},
		EvalEvery:  5,
		Seed:       1,
	}
}
