package fl

import (
	"reflect"
	"testing"

	"unbiasedfl/internal/stats"
)

// TestBernoulliSetQ covers the membership-epoch re-pricing seam: SetQ moves
// the participation thresholds without touching the coin stream, validates
// its input, and copies it.
func TestBernoulliSetQ(t *testing.T) {
	q := []float64{0.3, 0.7, 0.5}
	a, err := NewBernoulliSampler(q, stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBernoulliSampler(q, stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}

	// Setting the same levels is a no-op on the draw sequence: only
	// thresholds move, never the stream.
	if err := b.SetQ([]float64{0.3, 0.7, 0.5}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		if got, want := b.Sample(round), a.Sample(round); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: SetQ(same) perturbed the stream: %v vs %v", round, got, want)
		}
	}

	// Degenerate levels pin behavior: q=1 always participates, q=0 never.
	if err := a.SetQ([]float64{1, 0, 0.5}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		saw0, saw1 := false, false
		for _, n := range a.Sample(round) {
			saw0 = saw0 || n == 0
			saw1 = saw1 || n == 1
		}
		if !saw0 || saw1 {
			t.Fatalf("round %d: q=[1,0,·] drew saw0=%v saw1=%v", round, saw0, saw1)
		}
	}

	// The argument is copied, not aliased.
	levels := []float64{0.2, 0.2, 0.2}
	if err := a.SetQ(levels); err != nil {
		t.Fatal(err)
	}
	levels[0] = 0.9
	if got := a.Q(); got[0] != 0.2 {
		t.Fatalf("SetQ aliased its argument: q[0] = %v", got[0])
	}

	if err := a.SetQ([]float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := a.SetQ([]float64{0.5, 1.5, 0.5}); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	// Failed calls must not partially apply.
	if got := a.Q(); !reflect.DeepEqual(got, []float64{0.2, 0.2, 0.2}) {
		t.Fatalf("failed SetQ mutated levels: %v", got)
	}
}
