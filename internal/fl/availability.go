package fl

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/stats"
)

// AvailabilitySampler composes the paper's randomized participation with
// exogenous device availability: "clients may be only intermittently
// available due to their usage patterns" (Section I). Client n joins a
// round only if it is both willing (Bernoulli q_n, its strategic choice)
// and available (Bernoulli av_n, its usage pattern). The effective
// participation level is q_n·av_n, and passing EffectiveQ to the unbiased
// aggregator keeps Lemma 1's guarantee intact because the two coins are
// independent.
type AvailabilitySampler struct {
	q   []float64
	av  []float64
	rng *stats.RNG
}

// NewAvailabilitySampler validates both probability vectors.
func NewAvailabilitySampler(q, availability []float64, rng *stats.RNG) (*AvailabilitySampler, error) {
	if len(q) == 0 {
		return nil, errors.New("fl: empty participation vector")
	}
	if len(availability) != len(q) {
		return nil, errors.New("fl: availability length mismatch")
	}
	if rng == nil {
		return nil, errors.New("fl: nil rng")
	}
	for n := range q {
		if q[n] < 0 || q[n] > 1 {
			return nil, fmt.Errorf("fl: q[%d] = %v outside [0,1]", n, q[n])
		}
		if availability[n] < 0 || availability[n] > 1 {
			return nil, fmt.Errorf("fl: availability[%d] = %v outside [0,1]", n, availability[n])
		}
	}
	s := &AvailabilitySampler{
		q:   append([]float64(nil), q...),
		av:  append([]float64(nil), availability...),
		rng: rng,
	}
	return s, nil
}

// Sample implements Sampler: the willing-AND-available intersection.
func (s *AvailabilitySampler) Sample(int) []int {
	var out []int
	for n := range s.q {
		if s.rng.Bernoulli(s.q[n]) && s.rng.Bernoulli(s.av[n]) {
			out = append(out, n)
		}
	}
	return out
}

// NumClients implements Sampler.
func (s *AvailabilitySampler) NumClients() int { return len(s.q) }

// EffectiveQ returns the per-client effective participation levels
// q_n·av_n, the values the unbiased aggregator must divide by.
func (s *AvailabilitySampler) EffectiveQ() []float64 {
	out := make([]float64, len(s.q))
	for n := range out {
		out[n] = s.q[n] * s.av[n]
	}
	return out
}

var _ Sampler = (*AvailabilitySampler)(nil)
