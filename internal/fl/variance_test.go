package fl

import (
	"math"
	"testing"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// TestLemma2VarianceFormula validates the variance analysis behind Lemma 2.
// For independent Bernoulli participation and fixed deltas, the variance of
// the unbiased aggregate has the exact closed form
//
//	Var[w̄] = Σ_n a_n² ‖Δ_n‖² (1−q_n)/q_n,
//
// which is what Lemma 2 upper-bounds via ‖Δ_n‖ ≤ η E G_n. The test checks
// the Monte-Carlo variance against the closed form, and the closed form
// against the Lemma-2 bound computed with the trajectory's gradient norms.
func TestLemma2VarianceFormula(t *testing.T) {
	rng := stats.NewRNG(71)
	weights := []float64{0.4, 0.35, 0.25}
	q := []float64{0.8, 0.5, 0.25}
	const dim = 4
	deltas := make([]tensor.Vec, len(weights))
	for n := range deltas {
		d := make(tensor.Vec, dim)
		for j := range d {
			d[j] = rng.NormFloat64()
		}
		deltas[n] = d
	}

	// Full-participation mean.
	mean := tensor.NewVec(dim)
	for n := range deltas {
		if err := mean.AddScaled(weights[n], deltas[n]); err != nil {
			t.Fatal(err)
		}
	}

	// Closed-form variance.
	var analytic float64
	for n := range deltas {
		analytic += weights[n] * weights[n] * deltas[n].SqNorm() * (1 - q[n]) / q[n]
	}

	// Monte-Carlo variance of the unbiased aggregate around the mean.
	const trials = 300000
	var mc float64
	agg := UnbiasedAggregator{}
	for trial := 0; trial < trials; trial++ {
		global := tensor.NewVec(dim)
		var updates []Update
		for n := range deltas {
			if rng.Bernoulli(q[n]) {
				updates = append(updates, Update{Client: n, Delta: deltas[n]})
			}
		}
		if err := agg.Aggregate(global, updates, weights, q); err != nil {
			t.Fatal(err)
		}
		diff, err := tensor.Sub(global, mean)
		if err != nil {
			t.Fatal(err)
		}
		mc += diff.SqNorm() / trials
	}
	if math.Abs(mc-analytic) > 0.02*analytic {
		t.Fatalf("Monte-Carlo variance %v vs closed form %v", mc, analytic)
	}

	// Lemma 2's bound with G_n := ‖Δ_n‖/(ηE) dominates the closed form
	// (here with equality up to the factor 4 in the lemma).
	const etaE = 1.0
	var lemma2 float64
	for n := range deltas {
		gn2 := deltas[n].SqNorm() / (etaE * etaE)
		lemma2 += 4 * (1 - q[n]) * weights[n] * weights[n] * gn2 / q[n] * etaE * etaE
	}
	if analytic > lemma2 {
		t.Fatalf("closed form %v exceeds Lemma-2 bound %v", analytic, lemma2)
	}
}
