package fl

import (
	"context"
	"errors"
	"testing"
	"time"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/testutil"
)

// cancelRunner builds a parallel runner big enough that a run takes long
// enough to be cancelled mid-flight.
func cancelRunner(t *testing.T) *Runner {
	t.Helper()
	fed := testFederation(t, 3, 8)
	m := testModel(t, fed)
	q := make([]float64, fed.NumClients())
	for i := range q {
		q[i] = 0.9
	}
	sampler, err := NewBernoulliSampler(q, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 100000 // far more than any test will let finish
	cfg.LocalSteps = 8
	return &Runner{
		Model: m, Fed: fed, Config: cfg,
		Sampler: sampler, Aggregator: UnbiasedAggregator{}, Parallel: true,
	}
}

// TestRunContextCancelMidRound cancels a run in flight and asserts that it
// returns ctx.Err() promptly and leaves no pool goroutines behind.
func TestRunContextCancelMidRound(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	runner := cancelRunner(t)

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		res *RunResult
		err error
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		res, err := runner.RunContext(ctx)
		done <- result{res, err}
	}()
	time.Sleep(30 * time.Millisecond) // let training get into its rounds
	cancel()
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", r.err)
		}
		if r.res != nil {
			t.Fatal("cancelled run returned a result")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	testutil.WaitNoLeaks(t, baseline, 5*time.Second)
}

// TestRunContextPreCancelled never starts training at all.
func TestRunContextPreCancelled(t *testing.T) {
	runner := cancelRunner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runner.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunContextDeadline exercises the deadline flavor of cancellation.
func TestRunContextDeadline(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	runner := cancelRunner(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := runner.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	testutil.WaitNoLeaks(t, baseline, 5*time.Second)
}

// TestRunBackwardCompatible keeps the context-free Run path identical to a
// background-context run.
func TestRunBackwardCompatible(t *testing.T) {
	fed := testFederation(t, 5, 4)
	m := testModel(t, fed)
	sampler, err := NewFullSampler(fed.NumClients())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 10
	cfg.LocalSteps = 3
	mk := func() *Runner {
		return &Runner{
			Model: m, Fed: fed, Config: cfg,
			Sampler: sampler, Aggregator: UnbiasedAggregator{}, Parallel: true,
		}
	}
	a, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss != b.FinalLoss {
		t.Fatalf("Run and RunContext diverge: %v vs %v", a.FinalLoss, b.FinalLoss)
	}
}

// TestOnRoundStartHook checks the streaming hook fires once per round, in
// order, before the matching OnRound callback.
func TestOnRoundStartHook(t *testing.T) {
	fed := testFederation(t, 6, 4)
	m := testModel(t, fed)
	sampler, err := NewFullSampler(fed.NumClients())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 7
	cfg.LocalSteps = 2
	var events []int // +round for starts, -(round+1) for ends
	runner := &Runner{
		Model: m, Fed: fed, Config: cfg,
		Sampler: sampler, Aggregator: UnbiasedAggregator{},
		OnRoundStart: func(round int) { events = append(events, round) },
		OnRound:      func(mtr RoundMetrics) { events = append(events, -(mtr.Round + 1)) },
	}
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*cfg.Rounds {
		t.Fatalf("event count %d", len(events))
	}
	for r := 0; r < cfg.Rounds; r++ {
		if events[2*r] != r || events[2*r+1] != -(r+1) {
			t.Fatalf("round %d events out of order: %v", r, events)
		}
	}
}
