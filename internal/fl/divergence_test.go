package fl

import (
	"strings"
	"testing"

	"unbiasedfl/internal/stats"
)

// TestRunnerDetectsDivergence injects an absurd learning rate and verifies
// the engine fails fast with a divergence error instead of silently
// producing NaN models.
func TestRunnerDetectsDivergence(t *testing.T) {
	fed := testFederation(t, 33, 4)
	m := testModel(t, fed)
	sampler, err := NewFullSampler(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 50
	cfg.LocalSteps = 10
	cfg.Schedule = ExpDecay{Eta0: 1e9, Decay: 1}
	runner := &Runner{
		Model: m, Fed: fed, Config: cfg,
		Sampler: sampler, Aggregator: UnbiasedAggregator{},
	}
	_, err = runner.Run()
	if err == nil {
		t.Fatal("expected divergence error")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRunnerZeroParticipationRounds verifies that rounds where nobody shows
// up are harmless: the model simply does not move.
func TestRunnerZeroParticipationRounds(t *testing.T) {
	fed := testFederation(t, 34, 3)
	m := testModel(t, fed)
	// Tiny q: most rounds are empty.
	q := []float64{0.01, 0.01, 0.01}
	sampler, err := NewBernoulliSampler(q, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 30
	cfg.LocalSteps = 2
	runner := &Runner{
		Model: m, Fed: fed, Config: cfg,
		Sampler: sampler, Aggregator: UnbiasedAggregator{},
	}
	res, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.FinalModel.IsFinite() {
		t.Fatal("model not finite after sparse run")
	}
	empty := 0
	for _, h := range res.History {
		if h.Participants == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("expected at least one empty round at q=0.01")
	}
}
