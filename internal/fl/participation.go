package fl

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/stats"
)

// Sampler decides which clients take part in a round. It is the engine's
// sampler seam re-exported for compatibility.
type Sampler = engine.Sampler

// BernoulliSampler implements the paper's randomized independent
// participation: client n joins each round independently with probability
// q_n. The sum Σ q_n can be anywhere in (0, N], unlike dependent sampling
// schemes that force Σ q = 1.
type BernoulliSampler struct {
	q   []float64
	rng *stats.RNG
}

// NewBernoulliSampler validates q and constructs the sampler.
func NewBernoulliSampler(q []float64, rng *stats.RNG) (*BernoulliSampler, error) {
	if len(q) == 0 {
		return nil, errors.New("fl: empty participation vector")
	}
	if rng == nil {
		return nil, errors.New("fl: nil rng")
	}
	for n, qn := range q {
		if qn < 0 || qn > 1 {
			return nil, fmt.Errorf("fl: q[%d] = %v outside [0,1]", n, qn)
		}
	}
	cp := make([]float64, len(q))
	copy(cp, q)
	return &BernoulliSampler{q: cp, rng: rng}, nil
}

// Sample implements Sampler.
func (s *BernoulliSampler) Sample(int) []int {
	var out []int
	for n, qn := range s.q {
		if s.rng.Bernoulli(qn) {
			out = append(out, n)
		}
	}
	return out
}

// NumClients implements Sampler.
func (s *BernoulliSampler) NumClients() int { return len(s.q) }

// Q returns a copy of the participation levels.
func (s *BernoulliSampler) Q() []float64 {
	cp := make([]float64, len(s.q))
	copy(cp, s.q)
	return cp
}

// EffectiveQ returns the marginal participation probabilities consumed by
// the unbiased aggregation rule; for plain Bernoulli sampling these are the
// levels themselves.
func (s *BernoulliSampler) EffectiveQ() []float64 { return s.Q() }

// SetQ replaces the participation levels in place — the membership-epoch
// re-pricing seam. The coin stream is untouched: only thresholds move, so
// the willingness pattern for unchanged levels is unperturbed.
func (s *BernoulliSampler) SetQ(q []float64) error {
	if len(q) != len(s.q) {
		return fmt.Errorf("fl: SetQ with %d levels for a %d-client fleet", len(q), len(s.q))
	}
	for n, qn := range q {
		if qn < 0 || qn > 1 {
			return fmt.Errorf("fl: q[%d] = %v outside [0,1]", n, qn)
		}
	}
	copy(s.q, q)
	return nil
}

// SamplerState implements engine.StatefulSampler: the coin stream's xoshiro
// cursor, so a checkpointed run resumes the exact participation sequence.
func (s *BernoulliSampler) SamplerState() []uint64 {
	st := s.rng.State()
	return []uint64{st[0], st[1], st[2], st[3]}
}

// RestoreSamplerState implements engine.StatefulSampler.
func (s *BernoulliSampler) RestoreSamplerState(state []uint64) error {
	if len(state) != 4 {
		return fmt.Errorf("fl: sampler state has %d words, want 4", len(state))
	}
	rng, err := stats.RestoreRNG([4]uint64{state[0], state[1], state[2], state[3]})
	if err != nil {
		return err
	}
	s.rng = rng
	return nil
}

// FullSampler includes every client in every round (full participation).
type FullSampler struct {
	n int
}

// NewFullSampler returns a sampler over n clients.
func NewFullSampler(n int) (*FullSampler, error) {
	if n <= 0 {
		return nil, errors.New("fl: need at least one client")
	}
	return &FullSampler{n: n}, nil
}

// Sample implements Sampler.
func (s *FullSampler) Sample(int) []int {
	out := make([]int, s.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// NumClients implements Sampler.
func (s *FullSampler) NumClients() int { return s.n }

// FixedSubsetSampler models the incentive mechanisms the paper argues
// against ([7]–[14]): a deterministic subset of "valuable" clients is
// selected once and used for the whole training process.
type FixedSubsetSampler struct {
	subset []int
	n      int
}

// NewFixedSubsetSampler selects the given client indices every round.
func NewFixedSubsetSampler(subset []int, numClients int) (*FixedSubsetSampler, error) {
	if len(subset) == 0 {
		return nil, errors.New("fl: empty fixed subset")
	}
	seen := make(map[int]bool, len(subset))
	for _, i := range subset {
		if i < 0 || i >= numClients {
			return nil, fmt.Errorf("fl: subset index %d out of range", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("fl: duplicate subset index %d", i)
		}
		seen[i] = true
	}
	cp := make([]int, len(subset))
	copy(cp, subset)
	return &FixedSubsetSampler{subset: cp, n: numClients}, nil
}

// Sample implements Sampler.
func (s *FixedSubsetSampler) Sample(int) []int {
	cp := make([]int, len(s.subset))
	copy(cp, s.subset)
	return cp
}

// NumClients implements Sampler.
func (s *FixedSubsetSampler) NumClients() int { return s.n }

var (
	_ Sampler                = (*BernoulliSampler)(nil)
	_ engine.StatefulSampler = (*BernoulliSampler)(nil)
	_ Sampler                = (*FullSampler)(nil)
	_ Sampler                = (*FixedSubsetSampler)(nil)
)
