package fl

import (
	"math"
	"testing"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

func TestAvailabilitySamplerValidation(t *testing.T) {
	r := stats.NewRNG(1)
	if _, err := NewAvailabilitySampler(nil, nil, r); err == nil {
		t.Fatal("expected empty q error")
	}
	if _, err := NewAvailabilitySampler([]float64{0.5}, []float64{0.5, 0.5}, r); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := NewAvailabilitySampler([]float64{0.5}, []float64{0.5}, nil); err == nil {
		t.Fatal("expected nil rng error")
	}
	if _, err := NewAvailabilitySampler([]float64{1.5}, []float64{0.5}, r); err == nil {
		t.Fatal("expected q range error")
	}
	if _, err := NewAvailabilitySampler([]float64{0.5}, []float64{-0.1}, r); err == nil {
		t.Fatal("expected availability range error")
	}
}

func TestAvailabilitySamplerRates(t *testing.T) {
	q := []float64{0.8, 1.0, 0.5}
	av := []float64{0.5, 0.25, 1.0}
	s, err := NewAvailabilitySampler(q, av, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClients() != 3 {
		t.Fatalf("clients %d", s.NumClients())
	}
	eff := s.EffectiveQ()
	want := []float64{0.4, 0.25, 0.5}
	for n := range want {
		if math.Abs(eff[n]-want[n]) > 1e-12 {
			t.Fatalf("effective q %v", eff)
		}
	}
	counts := make([]int, 3)
	const rounds = 40000
	for r := 0; r < rounds; r++ {
		for _, n := range s.Sample(r) {
			counts[n]++
		}
	}
	for n := range counts {
		rate := float64(counts[n]) / rounds
		if math.Abs(rate-want[n]) > 0.015 {
			t.Fatalf("client %d rate %v, want %v", n, rate, want[n])
		}
	}
}

// TestAvailabilityUnbiasedAggregation verifies that dividing by the
// effective q keeps Lemma 1's unbiasedness when availability throttles
// participation.
func TestAvailabilityUnbiasedAggregation(t *testing.T) {
	weights := []float64{0.6, 0.4}
	q := []float64{0.9, 0.7}
	av := []float64{0.5, 0.8}
	deltas := []tensor.Vec{{2}, {-1}}
	s, err := NewAvailabilitySampler(q, av, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	eff := s.EffectiveQ()

	target := tensor.NewVec(1)
	for n := range deltas {
		if err := target.AddScaled(weights[n], deltas[n]); err != nil {
			t.Fatal(err)
		}
	}
	const trials = 150000
	mean := tensor.NewVec(1)
	agg := UnbiasedAggregator{}
	for trial := 0; trial < trials; trial++ {
		global := tensor.NewVec(1)
		var updates []Update
		for _, n := range s.Sample(trial) {
			updates = append(updates, Update{Client: n, Delta: deltas[n]})
		}
		if err := agg.Aggregate(global, updates, weights, eff); err != nil {
			t.Fatal(err)
		}
		if err := mean.AddScaled(1.0/trials, global); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(mean[0]-target[0]) > 0.02 {
		t.Fatalf("availability-adjusted aggregation biased: %v vs %v", mean[0], target[0])
	}
}

// TestRunnerWithAvailabilitySampler runs end-to-end training with
// intermittent availability and checks the model still learns.
func TestRunnerWithAvailabilitySampler(t *testing.T) {
	fed := testFederation(t, 12, 5)
	m := testModel(t, fed)
	q := []float64{0.9, 0.9, 0.9, 0.9, 0.9}
	av := []float64{0.6, 0.9, 0.5, 0.8, 0.7}
	sampler, err := NewAvailabilitySampler(q, av, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 60
	cfg.LocalSteps = 8
	runner := &Runner{
		Model: m, Fed: fed, Config: cfg,
		Sampler: sampler, Aggregator: UnbiasedAggregator{}, Parallel: true,
	}
	res, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	zeroLoss, err := m.Loss(m.ZeroParams(), fed.Train)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= zeroLoss {
		t.Fatalf("availability-throttled training did not learn: %v >= %v",
			res.FinalLoss, zeroLoss)
	}
}
