package fl

import (
	"unbiasedfl/internal/engine"
)

// Update is one participant's contribution to a round: the model delta
// w_n^{r+1} − w^r produced by its local SGD steps. It is the engine's
// update type re-exported for compatibility.
type Update = engine.ClientUpdate

// Aggregator folds participant updates into the global model in place.
type Aggregator = engine.Aggregator

// UnbiasedAggregator implements Lemma 1's inverse-probability reweighting:
//
//	w^{r+1} = w^r + Σ_{n∈S_r} (a_n / q_n) (w_n^{r+1} − w^r).
//
// See engine.UnbiasedAggregator.
type UnbiasedAggregator = engine.UnbiasedAggregator

// ProportionalAggregator is the biased baseline that renormalizes a_n over
// the participant set only. See engine.ProportionalAggregator.
type ProportionalAggregator = engine.ProportionalAggregator

// NaiveInverseAggregator is the p_i/(K q_i) ablation baseline the paper's
// Lemma 1 remark warns about. See engine.NaiveInverseAggregator.
type NaiveInverseAggregator = engine.NaiveInverseAggregator
