package fl

import (
	"context"
	"errors"
	"fmt"
	"math"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
)

// Calibration captures the data- and task-dependent constants the game model
// needs before any pricing decision can be made (Section IV-A: "In practice,
// we can estimate G_n by letting the participated clients send back their
// actual local stochastic gradient norms computed along the trajectory of
// the model updates").
type Calibration struct {
	G     []float64 // per-client gradient-norm bound estimates G_n
	L     float64   // smoothness upper bound
	Mu    float64   // strong-convexity modulus (the model's L2 coefficient)
	Alpha float64   // α = 8LE/μ² from Theorem 1
}

// Calibrate runs a short full-participation training phase and distills the
// per-client gradient statistics into G_n estimates, plus the smoothness and
// α constants. rounds controls the calibration length. Cancelling ctx stops
// the calibration run promptly with ctx.Err().
func Calibrate(
	ctx context.Context, m model.Model, fed *data.Federated, cfg Config, rounds int,
) (*Calibration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rounds <= 0 {
		return nil, errors.New("fl: calibration needs at least one round")
	}
	if m == nil || fed == nil {
		return nil, errors.New("fl: nil model or federation")
	}
	if m.StrongConvexity() <= 0 {
		return nil, errors.New("fl: calibration requires mu > 0 (strong convexity)")
	}
	full, err := NewFullSampler(fed.NumClients())
	if err != nil {
		return nil, err
	}
	calCfg := cfg
	calCfg.Rounds = rounds
	calCfg.EvalEvery = rounds // single evaluation at the end
	runner := &Runner{
		Model:      m,
		Fed:        fed,
		Config:     calCfg,
		Sampler:    full,
		Aggregator: UnbiasedAggregator{},
		Parallel:   true,
	}
	res, err := runner.RunContext(ctx)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("calibration run: %w", err)
	}
	g := make([]float64, fed.NumClients())
	for n, sq := range res.GradSqNorm {
		if sq <= 0 {
			return nil, fmt.Errorf("fl: client %d produced no gradient statistics", n)
		}
		g[n] = math.Sqrt(sq)
	}
	l, err := m.EstimateSmoothness(fed.Train)
	if err != nil {
		return nil, err
	}
	return &Calibration{
		G:     g,
		L:     l,
		Mu:    m.StrongConvexity(),
		Alpha: 8 * l * float64(cfg.LocalSteps) / (m.StrongConvexity() * m.StrongConvexity()),
	}, nil
}
