package fl

import (
	"context"
	"testing"

	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
)

// TestRunnerModelAgnostic trains the same federation with both convex model
// families through the Model interface, proving the engine (and therefore
// the whole mechanism pipeline) is model-agnostic as the paper's
// Assumption-1 examples suggest.
func TestRunnerModelAgnostic(t *testing.T) {
	fed := testFederation(t, 20, 5)
	q := []float64{0.8, 0.8, 0.8, 0.8, 0.8}

	models := map[string]model.Model{}
	logit, err := model.NewLogisticRegression(fed.Train.Dim, fed.Train.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	models["logistic"] = logit
	ridge, err := model.NewRidgeRegression(fed.Train.Dim, fed.Train.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	models["ridge"] = ridge

	for name, m := range models {
		m := m
		t.Run(name, func(t *testing.T) {
			sampler, err := NewBernoulliSampler(q, stats.NewRNG(7))
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Rounds = 60
			cfg.LocalSteps = 8
			cfg.Schedule = ExpDecay{Eta0: 0.05, Decay: 0.996}
			runner := &Runner{
				Model: m, Fed: fed, Config: cfg,
				Sampler: sampler, Aggregator: UnbiasedAggregator{}, Parallel: true,
			}
			res, err := runner.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalAcc < 0.5 {
				t.Fatalf("%s final accuracy %v too low", name, res.FinalAcc)
			}
			// Calibration must also work through the interface.
			cal, err := Calibrate(context.Background(), m, fed, cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(cal.G) != fed.NumClients() || cal.Alpha <= 0 {
				t.Fatalf("%s calibration degenerate", name)
			}
		})
	}
}
