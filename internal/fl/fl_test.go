package fl

import (
	"context"
	"math"
	"testing"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

func testFederation(t testing.TB, seed uint64, clients int) *data.Federated {
	t.Helper()
	cfg := data.MNISTLikeConfig()
	cfg.NumClients = clients
	cfg.TotalSamples = clients * 120
	cfg.TestSamples = 200
	cfg.Dim = 8
	cfg.Classes = 4
	cfg.MaxClasses = 3
	fed, err := data.GenerateImageLike(stats.NewRNG(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func testModel(t testing.TB, fed *data.Federated) *model.LogisticRegression {
	t.Helper()
	m, err := model.NewLogisticRegression(fed.Train.Dim, fed.Train.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSchedules(t *testing.T) {
	exp := ExpDecay{Eta0: 0.1, Decay: 0.996}
	if exp.LR(0) != 0.1 {
		t.Fatalf("lr(0) = %v", exp.LR(0))
	}
	if exp.LR(10) >= exp.LR(0) {
		t.Fatal("exp decay not decreasing")
	}
	thm := TheoremDecay{L: 10, Mu: 0.1, E: 100}
	if thm.LR(100) >= thm.LR(0) {
		t.Fatal("theorem decay not decreasing")
	}
	want := 2 / (math.Max(80, 10) + 0.1*5)
	if math.Abs(thm.LR(5)-want) > 1e-12 {
		t.Fatalf("theorem lr %v want %v", thm.LR(5), want)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.LocalSteps = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.Schedule = nil },
		func(c *Config) { c.EvalEvery = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestBernoulliSampler(t *testing.T) {
	q := []float64{0, 0.5, 1}
	s, err := NewBernoulliSampler(q, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClients() != 3 {
		t.Fatalf("clients %d", s.NumClients())
	}
	counts := make([]int, 3)
	const rounds = 10000
	for r := 0; r < rounds; r++ {
		for _, n := range s.Sample(r) {
			counts[n]++
		}
	}
	if counts[0] != 0 {
		t.Fatalf("q=0 client participated %d times", counts[0])
	}
	if counts[2] != rounds {
		t.Fatalf("q=1 client participated %d/%d times", counts[2], rounds)
	}
	rate := float64(counts[1]) / rounds
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("q=0.5 client rate %v", rate)
	}
}

func TestBernoulliSamplerValidation(t *testing.T) {
	if _, err := NewBernoulliSampler(nil, stats.NewRNG(1)); err == nil {
		t.Fatal("expected error for empty q")
	}
	if _, err := NewBernoulliSampler([]float64{0.5}, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	if _, err := NewBernoulliSampler([]float64{1.5}, stats.NewRNG(1)); err == nil {
		t.Fatal("expected error for q > 1")
	}
	if _, err := NewBernoulliSampler([]float64{-0.1}, stats.NewRNG(1)); err == nil {
		t.Fatal("expected error for q < 0")
	}
}

func TestBernoulliSamplerQIsCopy(t *testing.T) {
	orig := []float64{0.25, 0.75}
	s, err := NewBernoulliSampler(orig, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	orig[0] = 0.99
	if got := s.Q(); got[0] != 0.25 {
		t.Fatal("sampler shares caller's slice")
	}
	q := s.Q()
	q[1] = 0
	if got := s.Q(); got[1] != 0.75 {
		t.Fatal("Q() exposes internal slice")
	}
}

func TestFullAndFixedSamplers(t *testing.T) {
	full, err := NewFullSampler(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := full.Sample(0); len(got) != 4 || got[3] != 3 {
		t.Fatalf("full sample %v", got)
	}
	if _, err := NewFullSampler(0); err == nil {
		t.Fatal("expected error for zero clients")
	}
	fixed, err := NewFixedSubsetSampler([]int{2, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := fixed.Sample(7); len(got) != 2 || got[0] != 2 {
		t.Fatalf("fixed sample %v", got)
	}
	if _, err := NewFixedSubsetSampler(nil, 4); err == nil {
		t.Fatal("expected error for empty subset")
	}
	if _, err := NewFixedSubsetSampler([]int{5}, 4); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
	if _, err := NewFixedSubsetSampler([]int{1, 1}, 4); err == nil {
		t.Fatal("expected error for duplicate index")
	}
}

// TestUnbiasedAggregationLemma1 is the core property test for Lemma 1: over
// many independent participation draws, the expected aggregated model equals
// the full-participation aggregate.
func TestUnbiasedAggregationLemma1(t *testing.T) {
	rng := stats.NewRNG(99)
	weights := []float64{0.5, 0.3, 0.2}
	q := []float64{0.9, 0.5, 0.2}
	deltas := []tensor.Vec{{1, 0}, {0, 1}, {2, 2}}

	// Full-participation target: Σ a_n Δ_n.
	target := tensor.NewVec(2)
	for n := range deltas {
		if err := target.AddScaled(weights[n], deltas[n]); err != nil {
			t.Fatal(err)
		}
	}

	const trials = 200000
	mean := tensor.NewVec(2)
	agg := UnbiasedAggregator{}
	for trial := 0; trial < trials; trial++ {
		global := tensor.NewVec(2)
		var updates []Update
		for n := range deltas {
			if rng.Bernoulli(q[n]) {
				updates = append(updates, Update{Client: n, Delta: deltas[n]})
			}
		}
		if err := agg.Aggregate(global, updates, weights, q); err != nil {
			t.Fatal(err)
		}
		if err := mean.AddScaled(1.0/trials, global); err != nil {
			t.Fatal(err)
		}
	}
	for i := range target {
		if math.Abs(mean[i]-target[i]) > 0.02 {
			t.Fatalf("coord %d: E[agg]=%v, full=%v", i, mean[i], target[i])
		}
	}
}

// TestProportionalAggregationBiased verifies that the baseline is biased
// under heterogeneous q, motivating Lemma 1.
func TestProportionalAggregationBiased(t *testing.T) {
	rng := stats.NewRNG(100)
	weights := []float64{0.5, 0.5}
	q := []float64{1.0, 0.1} // client 1 rarely participates
	deltas := []tensor.Vec{{1}, {-1}}

	target := tensor.NewVec(1) // full participation: 0.5*1 + 0.5*(-1) = 0

	const trials = 100000
	mean := tensor.NewVec(1)
	agg := ProportionalAggregator{}
	for trial := 0; trial < trials; trial++ {
		global := tensor.NewVec(1)
		var updates []Update
		for n := range deltas {
			if rng.Bernoulli(q[n]) {
				updates = append(updates, Update{Client: n, Delta: deltas[n]})
			}
		}
		if err := agg.Aggregate(global, updates, weights, q); err != nil {
			t.Fatal(err)
		}
		if err := mean.AddScaled(1.0/trials, global); err != nil {
			t.Fatal(err)
		}
	}
	// The biased mean must drift toward the always-participating client.
	if math.Abs(mean[0]-target[0]) < 0.3 {
		t.Fatalf("proportional aggregation unexpectedly unbiased: %v", mean[0])
	}
}

func TestAggregatorErrors(t *testing.T) {
	agg := UnbiasedAggregator{}
	global := tensor.NewVec(2)
	if err := agg.Aggregate(global, []Update{{Client: 5, Delta: tensor.NewVec(2)}},
		[]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected unknown-client error")
	}
	if err := agg.Aggregate(global, []Update{{Client: 0, Delta: tensor.NewVec(3)}},
		[]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
	if err := agg.Aggregate(global, []Update{{Client: 0, Delta: tensor.NewVec(2)}},
		[]float64{1}, []float64{0}); err == nil {
		t.Fatal("expected non-positive q error")
	}
	if err := agg.Aggregate(global, nil, []float64{1}, []float64{1, 1}); err == nil {
		t.Fatal("expected weights/q mismatch error")
	}
	prop := ProportionalAggregator{}
	if err := prop.Aggregate(global, nil, []float64{1}, []float64{1}); err != nil {
		t.Fatalf("empty round should be a no-op: %v", err)
	}
	naive := NaiveInverseAggregator{}
	if err := naive.Aggregate(global, []Update{{Client: 0, Delta: tensor.NewVec(2)}},
		[]float64{1}, []float64{0}); err == nil {
		t.Fatal("expected non-positive q error from naive aggregator")
	}
}

func TestRunnerTrainsToUsefulModel(t *testing.T) {
	fed := testFederation(t, 1, 6)
	m := testModel(t, fed)
	q := make([]float64, fed.NumClients())
	for i := range q {
		q[i] = 0.7
	}
	sampler, err := NewBernoulliSampler(q, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 60
	cfg.LocalSteps = 8
	runner := &Runner{
		Model: m, Fed: fed, Config: cfg,
		Sampler: sampler, Aggregator: UnbiasedAggregator{}, Parallel: true,
	}
	res, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.Rounds {
		t.Fatalf("history length %d", len(res.History))
	}
	zeroLoss, err := m.Loss(m.ZeroParams(), fed.Train)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= zeroLoss {
		t.Fatalf("training did not reduce loss: %v >= %v", res.FinalLoss, zeroLoss)
	}
	if res.FinalAcc < 0.5 {
		t.Fatalf("final accuracy %v too low", res.FinalAcc)
	}
	for n, g := range res.GradSqNorm {
		if g <= 0 {
			t.Fatalf("client %d recorded no gradient stats", n)
		}
	}
}

func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	fed := testFederation(t, 3, 5)
	cfg := DefaultConfig()
	cfg.Rounds = 12
	cfg.LocalSteps = 4

	run := func(parallel bool) tensor.Vec {
		m := testModel(t, fed)
		q := []float64{0.9, 0.6, 0.4, 0.8, 0.5}
		sampler, err := NewBernoulliSampler(q, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		runner := &Runner{
			Model: m, Fed: fed, Config: cfg,
			Sampler: sampler, Aggregator: UnbiasedAggregator{}, Parallel: parallel,
		}
		res, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalModel
	}
	seq := run(false)
	par := run(true)
	diff, err := tensor.Sub(seq, par)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Norm2() > 1e-12 {
		t.Fatalf("parallel and sequential runs differ by %v", diff.Norm2())
	}
}

func TestRunnerOnRoundHook(t *testing.T) {
	fed := testFederation(t, 40, 3)
	m := testModel(t, fed)
	sampler, err := NewFullSampler(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 10
	cfg.LocalSteps = 2
	var seen []int
	runner := &Runner{
		Model: m, Fed: fed, Config: cfg,
		Sampler: sampler, Aggregator: UnbiasedAggregator{},
		OnRound: func(rm RoundMetrics) { seen = append(seen, rm.Round) },
	}
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != cfg.Rounds {
		t.Fatalf("hook fired %d times, want %d", len(seen), cfg.Rounds)
	}
	for i, r := range seen {
		if r != i {
			t.Fatalf("hook rounds out of order: %v", seen)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	fed := testFederation(t, 4, 3)
	m := testModel(t, fed)
	sampler, err := NewFullSampler(3)
	if err != nil {
		t.Fatal(err)
	}
	good := &Runner{Model: m, Fed: fed, Config: DefaultConfig(),
		Sampler: sampler, Aggregator: UnbiasedAggregator{}}
	if err := good.Spec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Model = nil
	if _, err := bad.Run(); err == nil {
		t.Fatal("expected nil-model error")
	}
	bad = *good
	bad.Sampler = nil
	if _, err := bad.Run(); err == nil {
		t.Fatal("expected nil-sampler error")
	}
	bad = *good
	wrong, err := NewFullSampler(7)
	if err != nil {
		t.Fatal(err)
	}
	bad.Sampler = wrong
	if _, err := bad.Run(); err == nil {
		t.Fatal("expected client-count mismatch error")
	}
	bad = *good
	bad.Aggregator = nil
	if _, err := bad.Run(); err == nil {
		t.Fatal("expected nil-aggregator error")
	}
}

func TestCalibrate(t *testing.T) {
	fed := testFederation(t, 6, 5)
	m := testModel(t, fed)
	cfg := DefaultConfig()
	cfg.LocalSteps = 6
	cal, err := Calibrate(context.Background(), m, fed, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.G) != fed.NumClients() {
		t.Fatalf("G length %d", len(cal.G))
	}
	for n, g := range cal.G {
		if g <= 0 || math.IsNaN(g) {
			t.Fatalf("G[%d] = %v", n, g)
		}
	}
	if cal.L <= 0 || cal.Alpha <= 0 {
		t.Fatalf("L=%v alpha=%v", cal.L, cal.Alpha)
	}
	wantAlpha := 8 * cal.L * float64(cfg.LocalSteps) / (cal.Mu * cal.Mu)
	if math.Abs(cal.Alpha-wantAlpha) > 1e-9 {
		t.Fatalf("alpha %v want %v", cal.Alpha, wantAlpha)
	}
	if _, err := Calibrate(context.Background(), m, fed, cfg, 0); err == nil {
		t.Fatal("expected error for zero calibration rounds")
	}
	if _, err := Calibrate(context.Background(), nil, fed, cfg, 1); err == nil {
		t.Fatal("expected error for nil model")
	}
	noreg, err := model.NewLogisticRegression(fed.Train.Dim, fed.Train.Classes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(context.Background(), noreg, fed, cfg, 1); err == nil {
		t.Fatal("expected error for mu = 0")
	}
}

// TestUnbiasedBeatsBiasedUnderSkewedQ checks the paper's core training-side
// claim: with heterogeneous participation, the unbiased rule converges to a
// lower global loss than the proportional (biased) rule.
func TestUnbiasedBeatsBiasedUnderSkewedQ(t *testing.T) {
	fed := testFederation(t, 8, 6)
	// Highly skewed participation correlated with shard index.
	q := []float64{1.0, 0.9, 0.15, 0.1, 0.1, 0.1}

	finalLoss := func(agg Aggregator, seed uint64) float64 {
		m := testModel(t, fed)
		sampler, err := NewBernoulliSampler(q, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Rounds = 80
		cfg.LocalSteps = 8
		cfg.Seed = seed
		runner := &Runner{Model: m, Fed: fed, Config: cfg,
			Sampler: sampler, Aggregator: agg, Parallel: true}
		res, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalLoss
	}

	var unbiased, biased float64
	const reps = 3
	for s := uint64(0); s < reps; s++ {
		unbiased += finalLoss(UnbiasedAggregator{}, 10+s) / reps
		biased += finalLoss(ProportionalAggregator{}, 10+s) / reps
	}
	if unbiased >= biased {
		t.Fatalf("unbiased loss %v not better than biased %v", unbiased, biased)
	}
}
