package fl

import (
	"errors"
	"fmt"
	"sync"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// RoundMetrics records the state of one training round. Loss and accuracy
// are populated only when Evaluated is true (evaluation is throttled via
// Config.EvalEvery because a full-train-set evaluation dominates runtime).
type RoundMetrics struct {
	Round        int
	Participants int
	// ParticipantIDs lists the clients that joined this round; the timing
	// model consumes it to compute per-round wall-clock durations.
	ParticipantIDs []int
	Evaluated      bool
	GlobalLoss     float64
	TestAccuracy   float64
}

// RunResult bundles the full training trajectory with the final model and
// the per-client mean squared stochastic gradient norms observed along the
// way (the empirical basis for the G_n estimates of Section IV-A).
type RunResult struct {
	History    []RoundMetrics
	FinalModel tensor.Vec
	GradSqNorm []float64 // mean ||stochastic gradient||² per client
	FinalLoss  float64
	FinalAcc   float64
}

// Runner executes federated training for one configuration.
type Runner struct {
	Model      model.Model
	Fed        *data.Federated
	Config     Config
	Sampler    Sampler
	Aggregator Aggregator
	// Parallel enables concurrent local updates across participants. Results
	// are identical either way because every client owns a private RNG.
	Parallel bool
	// OnRound, when non-nil, is invoked after every round with that round's
	// metrics — a progress hook for long paper-scale runs. It runs on the
	// training goroutine; keep it fast.
	OnRound func(RoundMetrics)
}

// clientState holds per-client mutable state across rounds.
type clientState struct {
	rng     *stats.RNG
	sqNorms stats.Welford
}

// Run trains for Config.Rounds rounds and returns the trajectory.
func (r *Runner) Run() (*RunResult, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	nClients := r.Fed.NumClients()
	root := stats.NewRNG(r.Config.Seed)
	states := make([]*clientState, nClients)
	for n := range states {
		states[n] = &clientState{rng: root.Split()}
	}

	global := r.Model.ZeroParams()
	history := make([]RoundMetrics, 0, r.Config.Rounds)
	q := r.participationLevels()

	for round := 0; round < r.Config.Rounds; round++ {
		participants := r.Sampler.Sample(round)
		lr := r.Config.Schedule.LR(round)

		updates, err := r.localUpdates(global, participants, states, lr)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		if err := r.Aggregator.Aggregate(global, updates, r.Fed.Weights, q); err != nil {
			return nil, fmt.Errorf("round %d aggregate: %w", round, err)
		}
		if !global.IsFinite() {
			return nil, fmt.Errorf("round %d: model diverged", round)
		}

		m := RoundMetrics{
			Round:          round,
			Participants:   len(participants),
			ParticipantIDs: append([]int(nil), participants...),
		}
		if (round+1)%r.Config.EvalEvery == 0 || round == r.Config.Rounds-1 {
			loss, err := r.Model.Loss(global, r.Fed.Train)
			if err != nil {
				return nil, err
			}
			acc, err := r.Model.Accuracy(global, r.Fed.Test)
			if err != nil {
				return nil, err
			}
			m.Evaluated = true
			m.GlobalLoss = loss
			m.TestAccuracy = acc
		}
		history = append(history, m)
		if r.OnRound != nil {
			r.OnRound(m)
		}
	}

	res := &RunResult{
		History:    history,
		FinalModel: global,
		GradSqNorm: make([]float64, nClients),
	}
	for n, st := range states {
		res.GradSqNorm[n] = st.sqNorms.Mean()
	}
	if len(history) > 0 {
		last := history[len(history)-1]
		res.FinalLoss = last.GlobalLoss
		res.FinalAcc = last.TestAccuracy
	}
	return res, nil
}

func (r *Runner) validate() error {
	switch {
	case r.Model == nil:
		return errors.New("fl: nil model")
	case r.Fed == nil || r.Fed.NumClients() == 0:
		return errors.New("fl: nil or empty federation")
	case r.Sampler == nil:
		return errors.New("fl: nil sampler")
	case r.Aggregator == nil:
		return errors.New("fl: nil aggregator")
	case r.Sampler.NumClients() != r.Fed.NumClients():
		return fmt.Errorf("fl: sampler covers %d clients, federation has %d",
			r.Sampler.NumClients(), r.Fed.NumClients())
	}
	return r.Config.Validate()
}

// levelsSampler is implemented by samplers that expose per-client marginal
// participation probabilities for the unbiased aggregation rule.
type levelsSampler interface {
	EffectiveQ() []float64
}

// participationLevels exposes q to the aggregator. Samplers without explicit
// levels (full or fixed-subset participation) report q = 1 for every client,
// under which the unbiased rule reduces to plain weighted averaging.
func (r *Runner) participationLevels() []float64 {
	if ls, ok := r.Sampler.(levelsSampler); ok {
		return ls.EffectiveQ()
	}
	q := make([]float64, r.Fed.NumClients())
	for i := range q {
		q[i] = 1
	}
	return q
}

// localUpdates runs E steps of local SGD for each participant.
func (r *Runner) localUpdates(
	global tensor.Vec, participants []int, states []*clientState, lr float64,
) ([]Update, error) {
	updates := make([]Update, len(participants))
	if !r.Parallel || len(participants) < 2 {
		for i, n := range participants {
			u, err := r.localUpdate(global, n, states[n], lr)
			if err != nil {
				return nil, err
			}
			updates[i] = u
		}
		return updates, nil
	}

	var wg sync.WaitGroup
	errs := make([]error, len(participants))
	for i, n := range participants {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			u, err := r.localUpdate(global, n, states[n], lr)
			if err != nil {
				errs[i] = err
				return
			}
			updates[i] = u
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return updates, nil
}

// localUpdate clones the global model and performs E mini-batch SGD steps on
// the client's shard, recording squared gradient norms for G_n estimation.
func (r *Runner) localUpdate(global tensor.Vec, n int, st *clientState, lr float64) (Update, error) {
	shard := r.Fed.Clients[n]
	w := global.Clone()
	grad := r.Model.ZeroParams()
	for e := 0; e < r.Config.LocalSteps; e++ {
		if err := r.Model.StochasticGradient(w, shard, r.Config.BatchSize, st.rng, grad); err != nil {
			return Update{}, fmt.Errorf("client %d: %w", n, err)
		}
		st.sqNorms.Add(grad.SqNorm())
		if err := w.AddScaled(-lr, grad); err != nil {
			return Update{}, err
		}
	}
	delta, err := tensor.Sub(w, global)
	if err != nil {
		return Update{}, err
	}
	return Update{Client: n, Delta: delta}, nil
}
