package fl

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// RoundMetrics records the state of one training round. Loss and accuracy
// are populated only when Evaluated is true (evaluation is throttled via
// Config.EvalEvery because a full-train-set evaluation dominates runtime).
type RoundMetrics struct {
	Round        int
	Participants int
	// ParticipantIDs lists the clients that joined this round; the timing
	// model consumes it to compute per-round wall-clock durations.
	ParticipantIDs []int
	Evaluated      bool
	GlobalLoss     float64
	TestAccuracy   float64
}

// RunResult bundles the full training trajectory with the final model and
// the per-client mean squared stochastic gradient norms observed along the
// way (the empirical basis for the G_n estimates of Section IV-A).
type RunResult struct {
	History    []RoundMetrics
	FinalModel tensor.Vec
	GradSqNorm []float64 // mean ||stochastic gradient||² per client
	FinalLoss  float64
	FinalAcc   float64
}

// Runner executes federated training for one configuration.
type Runner struct {
	Model      model.Model
	Fed        *data.Federated
	Config     Config
	Sampler    Sampler
	Aggregator Aggregator
	// Parallel enables concurrent local updates across participants via a
	// persistent worker pool sized to GOMAXPROCS. Results are identical
	// either way: every client owns a private RNG and its own scratch arena,
	// and the summation order inside a client's update never depends on the
	// worker count.
	Parallel bool
	// OnRoundStart, when non-nil, is invoked before every round's local
	// updates begin — the streaming-observer entry hook. It runs on the
	// training goroutine; keep it fast.
	OnRoundStart func(round int)
	// OnRound, when non-nil, is invoked after every round with that round's
	// metrics — a progress hook for long paper-scale runs. It runs on the
	// training goroutine; keep it fast.
	OnRound func(RoundMetrics)

	// Per-round buffers, reused across rounds so the steady-state loop does
	// not allocate.
	updates []Update
	errs    []error
	seen    []bool
}

// clientState holds per-client mutable state across rounds: the private RNG,
// the gradient-norm statistics, and the scratch arena (parameter clone,
// gradient, delta, and the model's batch buffers) that makes the local-SGD
// hot path allocation-free in steady state.
type clientState struct {
	rng     *stats.RNG
	sqNorms stats.Welford
	w       tensor.Vec // working copy of the global model
	grad    tensor.Vec // gradient buffer
	delta   tensor.Vec // w − global, handed to the aggregator
	scratch model.Scratch
}

// ensure sizes the state's vectors for a model with p parameters.
func (st *clientState) ensure(p int) {
	if len(st.w) != p {
		st.w = tensor.NewVec(p)
		st.grad = tensor.NewVec(p)
		st.delta = tensor.NewVec(p)
	}
}

// Run trains for Config.Rounds rounds and returns the trajectory. It is
// RunContext with a background context.
func (r *Runner) Run() (*RunResult, error) {
	return r.RunContext(context.Background())
}

// RunContext trains for Config.Rounds rounds and returns the trajectory.
// Cancelling the context stops training promptly — the check granularity is
// one client-side local update, so a cancellation arriving mid-round
// returns before the round finishes — and the error is ctx.Err(). All
// worker-pool goroutines are shut down before RunContext returns.
func (r *Runner) RunContext(ctx context.Context) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	nClients := r.Fed.NumClients()
	root := stats.NewRNG(r.Config.Seed)
	states := make([]*clientState, nClients)
	for n := range states {
		states[n] = &clientState{rng: root.Split()}
	}

	var pool *updatePool
	if r.Parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > nClients {
			workers = nClients
		}
		pool = newUpdatePool(r, workers)
		defer pool.close()
	}

	global := r.Model.ZeroParams()
	history := make([]RoundMetrics, 0, r.Config.Rounds)
	q := r.participationLevels()

	for round := 0; round < r.Config.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if r.OnRoundStart != nil {
			r.OnRoundStart(round)
		}
		participants := r.Sampler.Sample(round)
		lr := r.Config.Schedule.LR(round)

		updates, err := r.localUpdates(ctx, global, participants, states, lr, pool)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		if err := r.Aggregator.Aggregate(global, updates, r.Fed.Weights, q); err != nil {
			return nil, fmt.Errorf("round %d aggregate: %w", round, err)
		}
		if !global.IsFinite() {
			return nil, fmt.Errorf("round %d: model diverged", round)
		}

		m := RoundMetrics{
			Round:          round,
			Participants:   len(participants),
			ParticipantIDs: append([]int(nil), participants...),
		}
		if (round+1)%r.Config.EvalEvery == 0 || round == r.Config.Rounds-1 {
			loss, err := r.Model.Loss(global, r.Fed.Train)
			if err != nil {
				return nil, err
			}
			acc, err := r.Model.Accuracy(global, r.Fed.Test)
			if err != nil {
				return nil, err
			}
			m.Evaluated = true
			m.GlobalLoss = loss
			m.TestAccuracy = acc
		}
		history = append(history, m)
		if r.OnRound != nil {
			r.OnRound(m)
		}
	}

	res := &RunResult{
		History:    history,
		FinalModel: global,
		GradSqNorm: make([]float64, nClients),
	}
	for n, st := range states {
		res.GradSqNorm[n] = st.sqNorms.Mean()
	}
	if len(history) > 0 {
		last := history[len(history)-1]
		res.FinalLoss = last.GlobalLoss
		res.FinalAcc = last.TestAccuracy
	}
	return res, nil
}

func (r *Runner) validate() error {
	switch {
	case r.Model == nil:
		return errors.New("fl: nil model")
	case r.Fed == nil || r.Fed.NumClients() == 0:
		return errors.New("fl: nil or empty federation")
	case r.Sampler == nil:
		return errors.New("fl: nil sampler")
	case r.Aggregator == nil:
		return errors.New("fl: nil aggregator")
	case r.Sampler.NumClients() != r.Fed.NumClients():
		return fmt.Errorf("fl: sampler covers %d clients, federation has %d",
			r.Sampler.NumClients(), r.Fed.NumClients())
	}
	return r.Config.Validate()
}

// levelsSampler is implemented by samplers that expose per-client marginal
// participation probabilities for the unbiased aggregation rule.
type levelsSampler interface {
	EffectiveQ() []float64
}

// participationLevels exposes q to the aggregator. Samplers without explicit
// levels (full or fixed-subset participation) report q = 1 for every client,
// under which the unbiased rule reduces to plain weighted averaging.
func (r *Runner) participationLevels() []float64 {
	if ls, ok := r.Sampler.(levelsSampler); ok {
		return ls.EffectiveQ()
	}
	q := make([]float64, r.Fed.NumClients())
	for i := range q {
		q[i] = 1
	}
	return q
}

// updatePool is the persistent worker pool behind parallel local updates.
// Its goroutines live for the whole Run — one per available CPU — instead of
// spawning a goroutine per participant per round. Round context is published
// before the task indices are sent on the channel (the send is the
// happens-before edge), and the WaitGroup barrier ends the round.
type updatePool struct {
	r     *Runner
	tasks chan int
	wg    sync.WaitGroup

	// Per-round context: written by the training goroutine before dispatch,
	// read-only while workers run.
	ctx          context.Context
	global       tensor.Vec
	lr           float64
	participants []int
	states       []*clientState
	updates      []Update
	errs         []error
}

func newUpdatePool(r *Runner, workers int) *updatePool {
	if workers < 1 {
		workers = 1
	}
	p := &updatePool{r: r, tasks: make(chan int, workers)}
	for k := 0; k < workers; k++ {
		go p.worker()
	}
	return p
}

func (p *updatePool) worker() {
	for i := range p.tasks {
		n := p.participants[i]
		u, err := p.r.localUpdate(p.ctx, p.global, n, p.states[n], p.lr)
		if err != nil {
			p.errs[i] = err
		} else {
			p.updates[i] = u
		}
		p.wg.Done()
	}
}

func (p *updatePool) close() { close(p.tasks) }

// round runs one round's updates through the pool, filling updates[i] for
// participant i (slot order is preserved, so aggregation order — and thus
// the aggregated model — is independent of worker scheduling).
func (p *updatePool) round(
	ctx context.Context, global tensor.Vec, participants []int, states []*clientState, lr float64,
	updates []Update, errs []error,
) error {
	p.ctx = ctx
	p.global, p.lr = global, lr
	p.participants, p.states = participants, states
	p.updates, p.errs = updates, errs
	p.wg.Add(len(participants))
	for i := range participants {
		p.tasks <- i
	}
	p.wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// localUpdates runs E steps of local SGD for each participant.
func (r *Runner) localUpdates(
	ctx context.Context, global tensor.Vec, participants []int, states []*clientState, lr float64, pool *updatePool,
) ([]Update, error) {
	if cap(r.updates) < len(participants) {
		r.updates = make([]Update, len(participants))
		r.errs = make([]error, len(participants))
	}
	updates := r.updates[:len(participants)]
	errs := r.errs[:len(participants)]
	for i := range errs {
		errs[i] = nil
	}

	// A client's RNG, scratch arena, and delta buffer are single-owner within
	// a round, so a sampler handing out the same client twice would corrupt
	// the aggregate (and race under the pool). Reject it explicitly.
	if len(r.seen) != r.Fed.NumClients() {
		r.seen = make([]bool, r.Fed.NumClients())
	}
	dup := -1
	for _, n := range participants {
		if r.seen[n] {
			dup = n
			break
		}
		r.seen[n] = true
	}
	for _, n := range participants {
		r.seen[n] = false
	}
	if dup >= 0 {
		return nil, fmt.Errorf("fl: sampler returned client %d twice in one round", dup)
	}

	if pool == nil || len(participants) < 2 {
		for i, n := range participants {
			u, err := r.localUpdate(ctx, global, n, states[n], lr)
			if err != nil {
				return nil, err
			}
			updates[i] = u
		}
		return updates, nil
	}
	if err := pool.round(ctx, global, participants, states, lr, updates, errs); err != nil {
		return nil, err
	}
	return updates, nil
}

// localUpdate copies the global model into the client's scratch arena and
// performs E mini-batch SGD steps on the client's shard, recording squared
// gradient norms for G_n estimation. Models implementing model.LocalStepper
// run the fused step; otherwise the generic StochasticGradient + axpy path
// applies. In steady state (buffers warm) the step performs no heap
// allocations.
func (r *Runner) localUpdate(ctx context.Context, global tensor.Vec, n int, st *clientState, lr float64) (Update, error) {
	if err := ctx.Err(); err != nil {
		return Update{}, err
	}
	shard := r.Fed.Clients[n]
	st.ensure(len(global))
	w := st.w
	copy(w, global)
	stepper, hasStep := r.Model.(model.LocalStepper)
	for e := 0; e < r.Config.LocalSteps; e++ {
		// Re-check cancellation every few steps so paper-scale E (100 local
		// steps) still cancels mid-update, without putting the ctx mutex on
		// every step of the hot path.
		if e&7 == 7 {
			if err := ctx.Err(); err != nil {
				return Update{}, err
			}
		}
		if hasStep {
			sq, err := stepper.SGDStep(w, shard, r.Config.BatchSize, lr, st.rng, &st.scratch)
			if err != nil {
				return Update{}, fmt.Errorf("client %d: %w", n, err)
			}
			st.sqNorms.Add(sq)
			continue
		}
		grad := st.grad
		if err := r.Model.StochasticGradient(w, shard, r.Config.BatchSize, st.rng, grad); err != nil {
			return Update{}, fmt.Errorf("client %d: %w", n, err)
		}
		st.sqNorms.Add(grad.SqNorm())
		if err := w.AddScaled(-lr, grad); err != nil {
			return Update{}, err
		}
	}
	delta := st.delta
	for j := range delta {
		delta[j] = w[j] - global[j]
	}
	return Update{Client: n, Delta: delta}, nil
}
