package fl

import (
	"context"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/model"
)

// RoundMetrics records the state of one training round. It is the engine's
// metrics type re-exported for compatibility.
type RoundMetrics = engine.RoundMetrics

// RunResult bundles the full training trajectory with the final model and
// the per-client mean squared stochastic gradient norms observed along the
// way (the empirical basis for the G_n estimates of Section IV-A).
type RunResult = engine.RunResult

// Runner executes federated training for one configuration.
//
// Deprecated-ish: Runner is now a thin compatibility shim over
// engine.Orchestrator with an in-process engine.LocalBackend — the canonical
// round protocol lives in internal/engine, behind pluggable execution
// backends. Existing call sites keep working unchanged; new code that wants
// backend choice (local vs cluster) should compile an engine.Spec directly.
type Runner struct {
	Model      model.Model
	Fed        *data.Federated
	Config     Config
	Sampler    Sampler
	Aggregator Aggregator
	// Parallel enables concurrent local updates across participants via a
	// persistent worker pool sized to GOMAXPROCS. Results are identical
	// either way: every client owns a private RNG and its own scratch arena,
	// and the summation order inside a client's update never depends on the
	// worker count.
	Parallel bool
	// OnRoundStart, when non-nil, is invoked before every round's local
	// updates begin — the streaming-observer entry hook. It runs on the
	// training goroutine; keep it fast.
	OnRoundStart func(round int)
	// OnRound, when non-nil, is invoked after every round with that round's
	// metrics — a progress hook for long paper-scale runs. It runs on the
	// training goroutine; keep it fast.
	OnRound func(RoundMetrics)
}

// Spec compiles the runner's configuration into the engine's canonical run
// description. The spec seed, sampler, and aggregator are taken verbatim,
// so an Orchestrator run of the spec is bit-identical to Runner.RunContext.
func (r *Runner) Spec() engine.Spec {
	return engine.Spec{
		Model:        r.Model,
		Fed:          r.Fed,
		Rounds:       r.Config.Rounds,
		LocalSteps:   r.Config.LocalSteps,
		BatchSize:    r.Config.BatchSize,
		Schedule:     r.Config.Schedule,
		EvalEvery:    r.Config.EvalEvery,
		Seed:         r.Config.Seed,
		Sampler:      r.Sampler,
		Aggregator:   r.Aggregator,
		OnRoundStart: r.OnRoundStart,
		OnRound:      r.OnRound,
	}
}

// Run trains for Config.Rounds rounds and returns the trajectory. It is
// RunContext with a background context.
func (r *Runner) Run() (*RunResult, error) {
	return r.RunContext(context.Background())
}

// RunContext trains for Config.Rounds rounds and returns the trajectory.
// Cancelling the context stops training promptly — the check granularity is
// one client-side local update, so a cancellation arriving mid-round
// returns before the round finishes — and the error is ctx.Err(). All
// worker-pool goroutines are shut down before RunContext returns.
func (r *Runner) RunContext(ctx context.Context) (*RunResult, error) {
	return engine.Run(ctx, r.Spec(), engine.NewLocalBackend(engine.LocalOptions{Parallel: r.Parallel}))
}
