package fl

import (
	"runtime"
	"testing"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// The localUpdate-level hot-path gates (zero allocations in steady state,
// BenchmarkLocalUpdate) moved to internal/engine with the execution code;
// this file keeps the Runner-level guarantees that the compatibility shim
// must preserve.

// TestRunnerDeterministicAcrossWorkerCounts complements
// TestRunnerDeterministicAcrossParallelism: the pooled runner must produce a
// bit-identical model whether the pool has one worker or several.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(procs int) tensor.Vec {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		fed := testFederation(t, 3, 5)
		m := testModel(t, fed)
		q := []float64{0.9, 0.6, 0.4, 0.8, 0.5}
		sampler, err := NewBernoulliSampler(q, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Rounds = 12
		cfg.LocalSteps = 4
		runner := &Runner{
			Model: m, Fed: fed, Config: cfg,
			Sampler: sampler, Aggregator: UnbiasedAggregator{}, Parallel: true,
		}
		res, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalModel
	}
	one := run(1)
	four := run(4)
	for j := range one {
		if one[j] != four[j] {
			t.Fatalf("param %d differs across worker counts: %v vs %v", j, one[j], four[j])
		}
	}
}

// dupSampler returns the same client twice in a round — illegal, because a
// client's RNG, scratch, and delta buffer are single-owner within a round.
type dupSampler struct{ n int }

func (d dupSampler) Sample(int) []int { return []int{0, 1, 0} }
func (d dupSampler) NumClients() int  { return d.n }

// TestRunnerRejectsDuplicateParticipants pins the guard that protects the
// reused per-client buffers from samplers that draw with replacement.
func TestRunnerRejectsDuplicateParticipants(t *testing.T) {
	fed := testFederation(t, 30, 3)
	m := testModel(t, fed)
	cfg := DefaultConfig()
	cfg.Rounds = 2
	runner := &Runner{
		Model: m, Fed: fed, Config: cfg,
		Sampler: dupSampler{n: 3}, Aggregator: UnbiasedAggregator{},
	}
	if _, err := runner.Run(); err == nil {
		t.Fatal("expected duplicate-participant error")
	}
}

// BenchmarkRunnerRound measures whole training rounds through the pooled
// runner shim, aggregation included — the baseline the engine's
// BenchmarkOrchestratorRound is compared against.
func BenchmarkRunnerRound(b *testing.B) {
	fed := testFederation(b, 21, 8)
	m := testModel(b, fed)
	sampler, err := NewFullSampler(fed.NumClients())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LocalSteps = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Rounds = 1
		cfg.EvalEvery = 2 // skip evaluation; this measures the update path
		runner := &Runner{
			Model: m, Fed: fed, Config: cfg,
			Sampler: sampler, Aggregator: UnbiasedAggregator{}, Parallel: true,
		}
		if _, err := runner.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
