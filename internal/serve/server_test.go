package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unbiasedfl/internal/cli"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/scenario"
)

// testParams is a small valid wire game shared across handler tests.
func testParams() ParamsJSON {
	return ParamsJSON{
		A:     []float64{0.25, 0.25, 0.25, 0.25},
		G:     []float64{0.5, 0.6, 0.7, 0.8},
		C:     []float64{40, 45, 50, 55},
		V:     []float64{3000, 3100, 3200, 3300},
		Alpha: 1,
		Beta:  1,
		R:     100,
		B:     200,
	}
}

// tinyScenario is a seconds-scale custom scenario for session tests.
func tinyScenario() scenario.Scenario {
	return scenario.Scenario{
		Name:        "serve-tiny",
		Description: "fast fixture for serving tests",
		Setup:       1,
		Clients:     4,
		Rounds:      6,
		LocalSteps:  2,
		BatchSize:   8,
		EvalEvery:   2,
		Calibration: 1,
		Seed:        7,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeResp[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func TestQuoteMatchesDirectPrice(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, scheme := range []string{"proposed", "weighted", "uniform"} {
		resp := postJSON(t, ts.URL+"/v1/quote", QuoteRequest{Scheme: scheme, Params: testParams()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", scheme, resp.StatusCode)
		}
		got := decodeResp[QuoteResponse](t, resp)

		ps, err := game.SchemeByName(scheme)
		if err != nil {
			t.Fatal(err)
		}
		pj := testParams()
		p, err := pj.ToGame()
		if err != nil {
			t.Fatal(err)
		}
		want, err := ps.Price(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Scheme != want.Name || got.Spent != want.Spent || got.ServerObj != want.ServerObj {
			t.Fatalf("%s: quote %+v, direct price name=%s spent=%v obj=%v",
				scheme, got, want.Name, want.Spent, want.ServerObj)
		}
		for i := range want.P {
			if got.P[i] != want.P[i] || got.Q[i] != want.Q[i] {
				t.Fatalf("%s: client %d (p,q)=(%v,%v), want (%v,%v)",
					scheme, i, got.P[i], got.Q[i], want.P[i], want.Q[i])
			}
		}
	}
}

func TestSolveMatchesDirectKKT(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Params: testParams()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decodeResp[SolveResponse](t, resp)

	pj := testParams()
	p, err := pj.ToGame()
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if got.Lambda != want.Lambda || got.Spent != want.Spent || got.BudgetTight != want.BudgetTight {
		t.Fatalf("solve %+v, want lambda=%v spent=%v tight=%v", got, want.Lambda, want.Spent, want.BudgetTight)
	}
	for i := range want.Q {
		if got.Q[i] != want.Q[i] || math.Abs(got.P[i]-want.P[i]) != 0 {
			t.Fatalf("client %d (q,p)=(%v,%v), want (%v,%v)", i, got.Q[i], got.P[i], want.Q[i], want.P[i])
		}
	}
}

func TestQuoteCaching(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts.URL+"/v1/quote", QuoteRequest{Params: testParams()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	cs := s.cache.Snapshot()
	if cs.Misses != 1 || cs.Hits != 4 {
		t.Fatalf("cache hits=%d misses=%d after 5 identical quotes, want 4/1", cs.Hits, cs.Misses)
	}
}

// TestHandlerErrorEnvelope pins the typed error envelope for every
// rejection class the API can produce.
func TestHandlerErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 2048})

	bigA := make([]float64, 4096)
	bigBody, _ := json.Marshal(QuoteRequest{Params: ParamsJSON{A: bigA}})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", "POST", "/v1/quote", `{"scheme": proposed}`, http.StatusBadRequest, "bad_json"},
		{"unknown field", "POST", "/v1/quote", `{"schme":"proposed"}`, http.StatusBadRequest, "bad_json"},
		{"unknown scheme", "POST", "/v1/quote", `{"scheme":"nope","params":{"a":[1],"g":[1],"c":[1],"v":[1],"alpha":1,"r":10,"b":10}}`, http.StatusNotFound, "unknown_scheme"},
		{"invalid params", "POST", "/v1/quote", `{"params":{"a":[2],"g":[1],"c":[1],"v":[1],"alpha":1,"r":10,"b":10}}`, http.StatusBadRequest, "invalid_params"},
		{"oversized body", "POST", "/v1/quote", string(bigBody), http.StatusRequestEntityTooLarge, "body_too_large"},
		{"invalid solve params", "POST", "/v1/solve", `{"params":{"a":[1],"g":[1],"c":[-1],"v":[1],"alpha":1,"r":10,"b":10}}`, http.StatusBadRequest, "invalid_params"},
		{"no workload", "POST", "/v1/sessions", `{}`, http.StatusBadRequest, "invalid_session"},
		{"two workloads", "POST", "/v1/sessions", `{"scenario":"baseline","run":{"setup":1}}`, http.StatusBadRequest, "invalid_session"},
		{"unknown scenario", "POST", "/v1/sessions", `{"scenario":"nope"}`, http.StatusBadRequest, "invalid_session"},
		{"bad backend", "POST", "/v1/sessions", `{"scenario":"baseline","backend":"warp"}`, http.StatusBadRequest, "invalid_session"},
		{"bad timeout", "POST", "/v1/sessions", `{"scenario":"baseline","round_timeout":"soon"}`, http.StatusBadRequest, "invalid_session"},
		{"bad setup", "POST", "/v1/sessions", `{"run":{"setup":9}}`, http.StatusBadRequest, "invalid_session"},
		{"unknown session", "GET", "/v1/sessions/s-999", "", http.StatusNotFound, "unknown_session"},
		{"unknown session events", "GET", "/v1/sessions/s-999/events", "", http.StatusNotFound, "unknown_session"},
		{"unknown session result", "GET", "/v1/sessions/s-999/result", "", http.StatusNotFound, "unknown_session"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			env := decodeResp[cli.ErrorEnvelope](t, resp)
			if env.Error.Code != tc.wantCode {
				t.Fatalf("error code %q, want %q (message %q)", env.Error.Code, tc.wantCode, env.Error.Message)
			}
			if env.Error.Message == "" {
				t.Fatal("error envelope has no message")
			}
		})
	}
}

func TestSchemeAndScenarioListings(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/schemes")
	if err != nil {
		t.Fatal(err)
	}
	schemes := decodeResp[struct {
		Schemes []string `json:"schemes"`
	}](t, resp)
	want := game.SchemeNames()
	if fmt.Sprint(schemes.Schemes) != fmt.Sprint(want) {
		t.Fatalf("schemes %v, want %v", schemes.Schemes, want)
	}

	resp, err = http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	scs := decodeResp[struct {
		Scenarios []string `json:"scenarios"`
	}](t, resp)
	if fmt.Sprint(scs.Scenarios) != fmt.Sprint(scenario.Names()) {
		t.Fatalf("scenarios %v, want %v", scs.Scenarios, scenario.Names())
	}
}

func TestHealthzFlipsWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy healthz status %d", resp.StatusCode)
	}

	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}

	// New sessions are refused while draining.
	resp = postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Scenario: "baseline"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining session create status %d, want 503", resp.StatusCode)
	}
	env := decodeResp[cli.ErrorEnvelope](t, resp)
	if env.Error.Code != "draining" {
		t.Fatalf("error code %q, want draining", env.Error.Code)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/quote", QuoteRequest{Params: testParams()})
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"flserve_quote_latency_seconds_bucket{le=\"+Inf\"} 3",
		"flserve_quote_requests_total 3",
		"flserve_cache_hits_total 2",
		"flserve_cache_misses_total 1",
		"flserve_sessions_active 0",
		"flserve_sessions_queued 0",
		"flserve_rounds_committed_total 0",
		"flserve_sse_subscribers 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestBatchQuoteMatchesSingle pins that the batch endpoint prices each game
// exactly as the single-quote endpoint would, in order, through the same
// cache.
func TestBatchQuoteMatchesSingle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	games := make([]ParamsJSON, 3)
	for i := range games {
		pj := testParams()
		pj.B = 150 + 50*float64(i)
		games[i] = pj
	}
	resp := postJSON(t, ts.URL+"/v1/quotes", BatchQuoteRequest{Scheme: "weighted", Params: games})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	batch := decodeResp[BatchQuoteResponse](t, resp)
	if len(batch.Quotes) != len(games) {
		t.Fatalf("batch returned %d quotes, want %d", len(batch.Quotes), len(games))
	}
	for i, pj := range games {
		single := postJSON(t, ts.URL+"/v1/quote", QuoteRequest{Scheme: "weighted", Params: pj})
		want := decodeResp[QuoteResponse](t, single)
		got := batch.Quotes[i]
		if got.Spent != want.Spent || got.ServerObj != want.ServerObj || len(got.P) != len(want.P) {
			t.Fatalf("game %d: batch %+v, single %+v", i, got, want)
		}
		for j := range want.P {
			if got.P[j] != want.P[j] || got.Q[j] != want.Q[j] {
				t.Fatalf("game %d client %d differs", i, j)
			}
		}
	}
	// The three games were cached by the batch; each single was a hit.
	if cs := s.cache.Snapshot(); cs.Hits != 3 || cs.Misses != 3 {
		t.Fatalf("cache hits=%d misses=%d, want 3/3", cs.Hits, cs.Misses)
	}

	// Empty batch and unknown scheme reject with the envelope.
	for _, tc := range []struct {
		body string
		code string
	}{
		{`{"params":[]}`, "invalid_params"},
		{`{"scheme":"nope","params":[{"a":[1],"g":[1],"c":[1],"v":[1],"alpha":1,"r":10,"b":10}]}`, "unknown_scheme"},
	} {
		resp, err := http.Post(ts.URL+"/v1/quotes", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		env := decodeResp[cli.ErrorEnvelope](t, resp)
		if env.Error.Code != tc.code {
			t.Fatalf("batch error code %q, want %q", env.Error.Code, tc.code)
		}
	}
}

// TestReadyzLifecycle: /readyz is distinct from /healthz — it stays 503
// until Serve has bound the listener (the ready latch), flips to 200, and
// returns to 503 the moment a drain starts, while /healthz keeps answering
// for the process-liveness probe.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	readyz := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body := decodeResp[struct {
			Status string `json:"status"`
		}](t, resp)
		return resp.StatusCode, body.Status
	}

	// Handler wired but Serve not running yet: alive, not ready.
	if code, status := readyz(); code != http.StatusServiceUnavailable || status != "starting" {
		t.Fatalf("pre-serve readyz = %d %q, want 503 starting", code, status)
	}

	s.ready.Store(true) // what Serve does once the listener is bound
	if code, status := readyz(); code != http.StatusOK || status != "ready" {
		t.Fatalf("ready readyz = %d %q, want 200 ready", code, status)
	}

	s.draining.Store(true)
	if code, status := readyz(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("draining readyz = %d %q, want 503 draining", code, status)
	}
}
