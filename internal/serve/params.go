package serve

import (
	"errors"

	"unbiasedfl/internal/game"
)

// ParamsJSON is the wire shape of a CPL game for the quote endpoints.
// Slices are indexed by client; q_max defaults to 1 and q_min to the
// library-wide participation floor when omitted.
type ParamsJSON struct {
	A     []float64 `json:"a"`
	G     []float64 `json:"g"`
	C     []float64 `json:"c"`
	V     []float64 `json:"v"`
	Alpha float64   `json:"alpha"`
	Beta  float64   `json:"beta"`
	R     float64   `json:"r"`
	B     float64   `json:"b"`
	QMax  float64   `json:"q_max"`
	QMin  float64   `json:"q_min"`
}

// ToGame converts the wire shape into validated game parameters.
func (pj *ParamsJSON) ToGame() (*game.Params, error) {
	if pj == nil {
		return nil, errors.New("serve: missing params")
	}
	p := &game.Params{
		A:     pj.A,
		G:     pj.G,
		C:     pj.C,
		V:     pj.V,
		Alpha: pj.Alpha,
		Beta:  pj.Beta,
		R:     pj.R,
		B:     pj.B,
		QMax:  pj.QMax,
		QMin:  pj.QMin,
	}
	if p.QMax == 0 {
		p.QMax = 1
	}
	if p.QMin == 0 {
		p.QMin = game.DefaultQMin
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// QuoteRequest asks for a priced market under one registered scheme.
type QuoteRequest struct {
	// Scheme is a pricing-registry name; empty selects the paper's proposed
	// mechanism.
	Scheme string     `json:"scheme,omitempty"`
	Params ParamsJSON `json:"params"`
}

// QuoteResponse is the priced outcome.
type QuoteResponse struct {
	Scheme    string    `json:"scheme"`
	P         []float64 `json:"p"`
	Q         []float64 `json:"q"`
	Spent     float64   `json:"spent"`
	ServerObj float64   `json:"server_obj"`
}

// BatchQuoteRequest prices many games under one scheme in a single
// round-trip — the shape sweep clients use, and the high-throughput path
// when per-request HTTP overhead would dominate (each game still hits the
// shared cache individually).
type BatchQuoteRequest struct {
	Scheme string       `json:"scheme,omitempty"`
	Params []ParamsJSON `json:"params"`
}

// BatchQuoteResponse carries one quote per requested game, in order.
type BatchQuoteResponse struct {
	Quotes []QuoteResponse `json:"quotes"`
}

// SolveRequest asks for the raw Stackelberg equilibrium of a game.
type SolveRequest struct {
	Params ParamsJSON `json:"params"`
}

// SolveResponse is the solved equilibrium (Theorem 2).
type SolveResponse struct {
	Q           []float64 `json:"q"`
	P           []float64 `json:"p"`
	Lambda      float64   `json:"lambda"`
	Spent       float64   `json:"spent"`
	ServerObj   float64   `json:"server_obj"`
	BudgetTight bool      `json:"budget_tight"`
}
