package serve

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"unbiasedfl/internal/cli"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/scenario"
)

// waitState polls a session until it reaches want (or any terminal state),
// failing the test on timeout.
func waitState(t *testing.T, base, id, want string, timeout time.Duration) SessionStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeResp[SessionStatus](t, resp)
		if st.State == want {
			return st
		}
		if terminalState(st.State) {
			t.Fatalf("session %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func createSession(t *testing.T, base string, req SessionRequest) SessionStatus {
	t.Helper()
	resp := postJSON(t, base+"/v1/sessions", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	return decodeResp[SessionStatus](t, resp)
}

// TestScenarioSessionTraceMatchesFacade pins the issue's core equivalence:
// a session driven through the HTTP API yields a canonical trace
// byte-identical to the same scenario run directly.
func TestScenarioSessionTraceMatchesFacade(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := tinyScenario()

	st := createSession(t, ts.URL, SessionRequest{Spec: &sc})
	waitState(t, ts.URL, st.ID, StateDone, 60*time.Second)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	trace, err := scenario.RunWith(context.Background(), sc, scenario.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("API trace differs from direct run:\nAPI  %d bytes\ndirect %d bytes", got.Len(), len(want))
	}
}

type sseFrame struct {
	id   int
	typ  string
	data string
}

// readSSE consumes an SSE stream until a terminal event arrives.
func readSSE(t *testing.T, r *http.Response) []sseFrame {
	t.Helper()
	defer r.Body.Close()
	var (
		frames []sseFrame
		cur    sseFrame
	)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			frames = append(frames, cur)
			if cur.typ == eventDone || cur.typ == eventError || cur.typ == eventCancelled {
				return frames
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(line[len("id: "):])
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.typ = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("SSE stream ended without a terminal event (%d frames, scan err %v)", len(frames), sc.Err())
	return nil
}

// TestSSEMatchesDirectObserver pins SSE determinism: the observer-derived
// events streamed over the API — subscribed live, before the run finishes —
// are byte-identical, in order, to a direct scenario run's encoded
// Observer stream.
func TestSSEMatchesDirectObserver(t *testing.T) {
	sc := tinyScenario()

	// Direct run, encoding each observer event exactly as the SSE layer does.
	var want []sseFrame
	obs := experiment.ObserverFunc(func(e experiment.Event) {
		typ, data, err := EncodeEvent(e)
		if err != nil {
			t.Errorf("encode direct event: %v", err)
			return
		}
		want = append(want, sseFrame{typ: typ, data: string(data)})
	})
	if _, err := scenario.RunWith(context.Background(), sc, scenario.RunConfig{Events: obs}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("direct run produced no observer events")
	}

	_, ts := newTestServer(t, Config{})
	st := createSession(t, ts.URL, SessionRequest{Spec: &sc})
	resp, err := http.Get(ts.URL + "/v1/sessions/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, resp)

	// IDs must be the contiguous event-log sequence.
	for i, f := range frames {
		if f.id != i+1 {
			t.Fatalf("frame %d has id %d, want %d", i, f.id, i+1)
		}
	}
	// Lifecycle bookends wrap the observer-derived events.
	if frames[0].typ != eventQueued || frames[1].typ != eventStarted {
		t.Fatalf("stream starts %s,%s, want queued,started", frames[0].typ, frames[1].typ)
	}
	if last := frames[len(frames)-1]; last.typ != eventDone {
		t.Fatalf("stream ends with %s, want done", last.typ)
	}
	got := frames[2 : len(frames)-1]
	if len(got) != len(want) {
		t.Fatalf("API stream has %d observer events, direct run %d", len(got), len(want))
	}
	for i := range want {
		if got[i].typ != want[i].typ || got[i].data != want[i].data {
			t.Fatalf("event %d differs:\nAPI    %s %s\ndirect %s %s",
				i, got[i].typ, got[i].data, want[i].typ, want[i].data)
		}
	}
}

// TestSchemeRunSession drives the Session-facade workload end to end.
func TestSchemeRunSession(t *testing.T) {
	if testing.Short() {
		t.Skip("training run in -short mode")
	}
	_, ts := newTestServer(t, Config{})
	st := createSession(t, ts.URL, SessionRequest{Run: &SchemeRunRequest{
		Setup: 1, Scheme: "proposed", Clients: 5, Samples: 600, Rounds: 10, Runs: 1, Seed: 3,
	}})
	if st.Kind != "run" || st.Label != "setup1/proposed" {
		t.Fatalf("session %+v, want kind=run label=setup1/proposed", st)
	}
	waitState(t, ts.URL, st.ID, StateDone, 120*time.Second)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	res := decodeResp[map[string]any](t, resp)
	if res["scheme"] != "proposed" {
		t.Fatalf("result scheme %v, want proposed", res["scheme"])
	}
	if id, _ := res["session"].(string); !strings.HasPrefix(id, "session-") {
		t.Fatalf("result session id %v, want a facade session-N id", res["session"])
	}
	if done, _ := waitStatus(t, ts.URL, st.ID); done.Rounds == 0 {
		t.Fatal("scheme-run session committed no rounds")
	}
}

func waitStatus(t *testing.T, base, id string) (SessionStatus, error) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		return SessionStatus{}, err
	}
	return decodeResp[SessionStatus](t, resp), nil
}

// blockingOverride makes every admitted session block until its context is
// cancelled — the deterministic stand-in for a long-running federation run
// in admission-control tests.
func blockingOverride(s *Server) {
	s.runOverride = func(sess *serveSession) {
		<-sess.ctx.Done()
		sess.finish(StateCancelled, eventCancelled, []byte(`{"reason":"test"}`), nil, "cancelled")
	}
}

// TestAdmissionControl pins the 429 contract: MaxSessions running,
// MaxQueued waiting, reject beyond, and a freed slot admits the queue head.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 1, MaxQueued: 1})
	blockingOverride(s)

	first := createSession(t, ts.URL, SessionRequest{Scenario: "baseline"})
	if first.State != StateRunning {
		t.Fatalf("first session state %s, want running", first.State)
	}
	second := createSession(t, ts.URL, SessionRequest{Scenario: "baseline"})
	if second.State != StateQueued {
		t.Fatalf("second session state %s, want queued", second.State)
	}

	resp := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Scenario: "baseline"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third session status %d, want 429", resp.StatusCode)
	}
	env := decodeResp[cli.ErrorEnvelope](t, resp)
	if env.Error.Code != "sessions_full" {
		t.Fatalf("error code %q, want sessions_full", env.Error.Code)
	}

	// Cancelling the running session frees its slot for the queued one.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+first.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitState(t, ts.URL, first.ID, StateCancelled, 5*time.Second)
	waitState(t, ts.URL, second.ID, StateRunning, 5*time.Second)

	// Clean up the now-running second session.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+second.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitState(t, ts.URL, second.ID, StateCancelled, 5*time.Second)
}

// TestDeleteQueuedSession pins that DELETE on a queued session cancels it
// in place without it ever starting.
func TestDeleteQueuedSession(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 1, MaxQueued: 2})
	blockingOverride(s)

	running := createSession(t, ts.URL, SessionRequest{Scenario: "baseline"})
	queued := createSession(t, ts.URL, SessionRequest{Scenario: "baseline"})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	st := decodeResp[SessionStatus](t, resp)
	if st.State != StateCancelled {
		t.Fatalf("deleted queued session state %s, want cancelled", st.State)
	}

	// Its event log must show it never started.
	eresp, err := http.Get(ts.URL + "/v1/sessions/" + queued.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, eresp)
	for _, f := range frames {
		if f.typ == eventStarted {
			t.Fatal("queued-then-deleted session emitted a started event")
		}
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+running.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitState(t, ts.URL, running.ID, StateCancelled, 5*time.Second)
}

// TestResultBeforeFinish pins the 409 for early result fetches.
func TestResultBeforeFinish(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	blockingOverride(s)
	st := createSession(t, ts.URL, SessionRequest{Scenario: "baseline"})

	resp, err := http.Get(ts.URL + "/v1/sessions/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result status %d, want 409", resp.StatusCode)
	}
	env := decodeResp[cli.ErrorEnvelope](t, resp)
	if env.Error.Code != "not_finished" {
		t.Fatalf("error code %q, want not_finished", env.Error.Code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitState(t, ts.URL, st.ID, StateCancelled, 5*time.Second)
}
