package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	neturl "net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LoadOptions configures RunLoad, the closed-loop quote load generator
// behind `flserve -load` and the CI serving-benchmark job.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080". With the
	// form "unix:/path/to.sock" the client dials the daemon's Unix domain
	// socket instead (see Config.Addr).
	BaseURL string
	// Conns is the number of concurrent keep-alive connections (default 4).
	Conns int
	// Duration is the timed window (default 5s); the cache is primed with
	// every distinct game before the window opens.
	Duration time.Duration
	// Distinct is how many distinct games the workload cycles through
	// (default 32). After priming, every quote is a cache hit, so the
	// steady-state hit rate is ~1 and throughput measures the cached path.
	Distinct int
	// Clients is the fleet size per game (default 12).
	Clients int
	// Scheme is the pricing scheme quoted (default "proposed").
	Scheme string
	// Batch, when > 1, drives POST /v1/quotes with Batch games per request
	// instead of the single-quote endpoint; the report still counts
	// individual quotes.
	Batch int
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Distinct <= 0 {
		o.Distinct = 32
	}
	if o.Clients <= 0 {
		o.Clients = 12
	}
	if o.Scheme == "" {
		o.Scheme = "proposed"
	}
	return o
}

// LoadReport is the measured result of one RunLoad window. Latencies are
// client-observed (request write to response read) in microseconds.
type LoadReport struct {
	DurationS    float64 `json:"duration_s"`
	Conns        int     `json:"conns"`
	Distinct     int     `json:"distinct_games"`
	Clients      int     `json:"clients_per_game"`
	Scheme       string  `json:"scheme"`
	Batch        int     `json:"batch,omitempty"`
	Quotes       uint64  `json:"quotes"`
	Errors       uint64  `json:"errors"`
	QPS          float64 `json:"qps"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P50Micros    float64 `json:"p50_us"`
	P90Micros    float64 `json:"p90_us"`
	P99Micros    float64 `json:"p99_us"`
}

// loadBodies builds the deterministic request bodies the workload cycles
// through — one single-quote body per distinct game, or batch bodies of up
// to o.Batch games each — plus the number of quotes each body asks for.
func loadBodies(o LoadOptions) (bodies [][]byte, quotesPer []int, err error) {
	games := make([]ParamsJSON, o.Distinct)
	for i := range games {
		n := o.Clients
		pj := ParamsJSON{
			A:     make([]float64, n),
			G:     make([]float64, n),
			C:     make([]float64, n),
			V:     make([]float64, n),
			Alpha: 1,
			Beta:  1,
			R:     100,
			B:     200 + float64(i),
			QMax:  1,
		}
		var asum float64
		for j := 0; j < n; j++ {
			pj.A[j] = 1 + 0.05*float64(j) + 0.01*float64(i%7)
			asum += pj.A[j]
			pj.G[j] = 0.5 + 0.02*float64(j)
			pj.C[j] = 40 + float64((i+j)%17)
			pj.V[j] = 3000 + 50*float64(j)
		}
		for j := range pj.A { // data weights a_n must sum to 1
			pj.A[j] /= asum
		}
		games[i] = pj
	}
	if o.Batch > 1 {
		for at := 0; at < len(games); at += o.Batch {
			chunk := games[at:min(at+o.Batch, len(games))]
			b, err := json.Marshal(BatchQuoteRequest{Scheme: o.Scheme, Params: chunk})
			if err != nil {
				return nil, nil, err
			}
			bodies = append(bodies, b)
			quotesPer = append(quotesPer, len(chunk))
		}
		return bodies, quotesPer, nil
	}
	for i := range games {
		b, err := json.Marshal(QuoteRequest{Scheme: o.Scheme, Params: games[i]})
		if err != nil {
			return nil, nil, err
		}
		bodies = append(bodies, b)
		quotesPer = append(quotesPer, 1)
	}
	return bodies, quotesPer, nil
}

// scrapeCacheCounters pulls the cache hit/miss counters from /metrics.
func scrapeCacheCounters(ctx context.Context, client *http.Client, baseURL string) (hits, misses uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, want := range []struct {
			prefix string
			dst    *uint64
		}{
			{"flserve_cache_hits_total ", &hits},
			{"flserve_cache_misses_total ", &misses},
		} {
			if v, ok := strings.CutPrefix(line, want.prefix); ok {
				n, perr := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
				if perr != nil {
					return 0, 0, fmt.Errorf("serve: bad metric line %q: %v", line, perr)
				}
				*want.dst = n
			}
		}
	}
	return hits, misses, sc.Err()
}

// RunLoad drives the quote endpoint with Conns closed-loop workers for
// Duration, after priming the cache with every distinct game, and reports
// throughput, error count, cache hit rate over the window (from /metrics
// counter deltas), and latency percentiles.
func RunLoad(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	o = o.withDefaults()
	if o.BaseURL == "" {
		return nil, fmt.Errorf("serve: load needs a base URL")
	}
	bodies, quotesPer, err := loadBodies(o)
	if err != nil {
		return nil, err
	}
	// One keep-alive connection per worker: the default transport caps idle
	// connections per host at 2, which would silently turn the extra
	// workers into TCP-handshake benchmarks.
	transport := &http.Transport{
		MaxIdleConns:        o.Conns,
		MaxIdleConnsPerHost: o.Conns,
	}
	if sock, ok := strings.CutPrefix(o.BaseURL, "unix:"); ok {
		transport.DialContext = func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", sock)
		}
		o.BaseURL = "http://flserve" // dummy host; routing happens on the socket
	}
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}
	url := o.BaseURL + "/v1/quote"
	if o.Batch > 1 {
		url = o.BaseURL + "/v1/quotes"
	}

	post := func(body []byte) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("serve: quote returned %d", resp.StatusCode)
		}
		return nil
	}

	// Prime: solve every distinct game once so the timed window measures
	// the cached path.
	for _, b := range bodies {
		if err := post(b); err != nil {
			return nil, fmt.Errorf("serve: priming failed: %w", err)
		}
	}

	hits0, misses0, err := scrapeCacheCounters(ctx, client, o.BaseURL)
	if err != nil {
		return nil, err
	}

	type workerResult struct {
		quotes    uint64
		errors    uint64
		latencies []int64 // nanoseconds
	}
	parsed, err := neturl.Parse(url)
	if err != nil {
		return nil, err
	}
	results := make([]workerResult, o.Conns)
	deadline := time.Now().Add(o.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < o.Conns; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			res := &results[wi]
			// Each worker reuses one request shell, body reader, and read
			// buffer: on a single-core host the client competes with the
			// daemon for cycles, so per-request allocations directly tax the
			// measured throughput.
			rd := bytes.NewReader(nil)
			req := (&http.Request{
				Method:     http.MethodPost,
				URL:        parsed,
				Proto:      "HTTP/1.1",
				ProtoMajor: 1,
				ProtoMinor: 1,
				Header:     http.Header{"Content-Type": []string{"application/json"}},
				Host:       parsed.Host,
			}).WithContext(ctx)
			buf := make([]byte, 64<<10)
			i := wi
			for time.Now().Before(deadline) && ctx.Err() == nil {
				idx := i % len(bodies)
				body := bodies[idx]
				i++
				t0 := time.Now()
				rd.Reset(body)
				req.Body = io.NopCloser(rd)
				req.ContentLength = int64(len(body))
				resp, err := client.Do(req)
				if err == nil {
					for {
						if _, rerr := resp.Body.Read(buf); rerr != nil {
							break
						}
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("serve: quote returned %d", resp.StatusCode)
					}
				}
				lat := time.Since(t0)
				if err != nil {
					res.errors++
					continue
				}
				res.quotes += uint64(quotesPer[idx])
				res.latencies = append(res.latencies, int64(lat))
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hits1, misses1, err := scrapeCacheCounters(ctx, client, o.BaseURL)
	if err != nil {
		return nil, err
	}

	rep := &LoadReport{
		DurationS: elapsed.Seconds(),
		Conns:     o.Conns,
		Distinct:  o.Distinct,
		Clients:   o.Clients,
		Scheme:    o.Scheme,
		Batch:     o.Batch,
	}
	var all []int64
	for i := range results {
		rep.Quotes += results[i].quotes
		rep.Errors += results[i].errors
		all = append(all, results[i].latencies...)
	}
	rep.QPS = float64(rep.Quotes) / elapsed.Seconds()
	rep.CacheHits = hits1 - hits0
	rep.CacheMisses = misses1 - misses0
	if total := rep.CacheHits + rep.CacheMisses; total > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(total)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / 1e3
	}
	rep.P50Micros = pct(0.50)
	rep.P90Micros = pct(0.90)
	rep.P99Micros = pct(0.99)
	return rep, nil
}
