package serve

import (
	"context"
	"fmt"
	"sync"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/scenario"
)

// Session lifecycle states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SessionRequest creates one federation session. Exactly one of Scenario,
// Spec, or Run selects the workload.
type SessionRequest struct {
	// Scenario names a library scenario ("baseline", "straggler-heavy", ...).
	Scenario string `json:"scenario,omitempty"`
	// Spec is a full custom scenario (Go field names, as in the facade's
	// Scenario type).
	Spec *scenario.Scenario `json:"spec,omitempty"`
	// Run is a setup + scheme training run through the Session facade.
	Run *SchemeRunRequest `json:"run,omitempty"`

	// Backend selects the execution substrate: "local" (default) or
	// "cluster" (one TCP socket node per client on loopback).
	Backend string `json:"backend,omitempty"`
	// RoundTimeout is a Go duration string; positive values put cluster
	// rounds under the self-healing deadline.
	RoundTimeout string `json:"round_timeout,omitempty"`
	// Checkpoint makes the run durable (scenario sessions only); paths are
	// local to the daemon's filesystem.
	Checkpoint *CheckpointRequest `json:"checkpoint,omitempty"`
}

// SchemeRunRequest is the scheme-run session workload: price one of the
// paper's setups under a registered scheme and train under the induced
// participation, exactly as Session.RunScheme does.
type SchemeRunRequest struct {
	Setup      int    `json:"setup"`
	Scheme     string `json:"scheme,omitempty"`
	Clients    int    `json:"clients,omitempty"`
	Samples    int    `json:"samples,omitempty"`
	Rounds     int    `json:"rounds,omitempty"`
	LocalSteps int    `json:"local_steps,omitempty"`
	BatchSize  int    `json:"batch_size,omitempty"`
	EvalEvery  int    `json:"eval_every,omitempty"`
	Runs       int    `json:"runs,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
}

// CheckpointRequest mirrors the facade's CheckpointConfig on the wire.
type CheckpointRequest struct {
	Path     string `json:"path"`
	Resume   bool   `json:"resume,omitempty"`
	Sync     bool   `json:"sync,omitempty"`
	Interval int    `json:"interval,omitempty"`
}

// SessionStatus is the wire status of one session.
type SessionStatus struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"` // "scenario" or "run"
	Label    string `json:"label"`
	State    string `json:"state"`
	Backend  string `json:"backend"`
	Rounds   int    `json:"rounds"`
	Events   int    `json:"events"`
	Error    string `json:"error,omitempty"`
	Location string `json:"location,omitempty"`
}

// sessionEvent is one entry of a session's append-only event log. Seq is
// 1-based and doubles as the SSE id field.
type sessionEvent struct {
	seq  int
	typ  string
	data []byte
}

// serveSession is one admitted federation run: an append-only event log
// that every SSE subscriber replays from the start, the run's cancellable
// context, and its final artifact (canonical trace or scheme-run summary).
type serveSession struct {
	id    string
	kind  string
	label string
	req   SessionRequest

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	state  string
	events []sessionEvent
	subs   map[chan struct{}]struct{}
	rounds int
	errMsg string
	result []byte // canonical trace (scenario) or summary JSON (run)
}

// publish appends an event and wakes every subscriber. Events are appended
// from the run's orchestration goroutine (observer contract: serial) and
// from the registry's lifecycle transitions; the log is append-only, so
// subscribers can read released slices without copying.
func (s *serveSession) publish(typ string, data []byte) {
	s.mu.Lock()
	s.events = append(s.events, sessionEvent{seq: len(s.events) + 1, typ: typ, data: data})
	s.wakeLocked()
	s.mu.Unlock()
}

// finish moves the session to a terminal state, storing the artifact or
// error, appending the terminal event, and waking subscribers one last
// time.
func (s *serveSession) finish(state, typ string, data []byte, result []byte, errMsg string) {
	s.mu.Lock()
	s.state = state
	s.result = result
	s.errMsg = errMsg
	s.events = append(s.events, sessionEvent{seq: len(s.events) + 1, typ: typ, data: data})
	s.wakeLocked()
	s.mu.Unlock()
}

func (s *serveSession) wakeLocked() {
	for ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (s *serveSession) setState(state string) {
	s.mu.Lock()
	s.state = state
	s.mu.Unlock()
}

// subscribe registers an SSE subscriber wake channel; the returned cancel
// must run when the subscriber leaves (it is what makes abandoned streams
// leak-free — the subscriber's only resource is this map entry).
func (s *serveSession) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	s.mu.Lock()
	if s.subs == nil {
		s.subs = make(map[chan struct{}]struct{})
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}
}

// eventsSince returns the events after index from (which the caller may
// write without copying — the log is append-only and payloads immutable),
// the new cursor, and whether the session has terminated.
func (s *serveSession) eventsSince(from int) ([]sessionEvent, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := s.events[from:]
	return evs, len(s.events), terminalState(s.state)
}

func (s *serveSession) status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStatus{
		ID:      s.id,
		Kind:    s.kind,
		Label:   s.label,
		State:   s.state,
		Backend: s.req.Backend,
		Rounds:  s.rounds,
		Events:  len(s.events),
		Error:   s.errMsg,
	}
}

// observer adapts the typed experiment event stream onto the session's
// event log, counting committed rounds as they stream by.
func (s *serveSession) observer(m *metrics) experiment.Observer {
	return experiment.ObserverFunc(func(e experiment.Event) {
		typ, data, err := EncodeEvent(e)
		if err != nil {
			return // unknown future event type: skip rather than poison the stream
		}
		if typ == eventRoundEnd {
			m.roundsCommitted.Add(1)
			s.mu.Lock()
			s.rounds++
			s.mu.Unlock()
		}
		s.publish(typ, data)
	})
}

// sessionRegistry owns admission control and the session table. Admission
// is a counting semaphore under the registry lock: at most maxActive
// sessions run concurrently, at most maxQueued wait in FIFO order, and
// anything beyond that is rejected (HTTP 429). Finished sessions stay
// resident (for result/event retrieval) up to maxFinished, evicted oldest
// first.
type sessionRegistry struct {
	mu          sync.Mutex
	maxActive   int
	maxQueued   int
	maxFinished int
	active      int
	queue       []*serveSession
	sessions    map[string]*serveSession
	order       []string
	nextID      int

	// launch is set by the server; it is called synchronously (so the
	// server can register the run with its WaitGroup before spawning) and
	// must itself hand the work to a new goroutine.
	launch func(*serveSession)
}

func newSessionRegistry(maxActive, maxQueued, maxFinished int) *sessionRegistry {
	if maxActive <= 0 {
		maxActive = 2
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	if maxFinished <= 0 {
		maxFinished = 64
	}
	return &sessionRegistry{
		maxActive:   maxActive,
		maxQueued:   maxQueued,
		maxFinished: maxFinished,
		sessions:    make(map[string]*serveSession),
	}
}

// errSessionsFull reports an admission rejection.
var errSessionsFull = fmt.Errorf("serve: session slots and queue are full")

// admit registers the session and either starts it immediately or queues
// it; with both the running slots and the queue full it rejects without
// registering.
func (r *sessionRegistry) admit(s *serveSession) error {
	r.mu.Lock()
	switch {
	case r.active < r.maxActive:
		s.state = StateRunning
		r.active++
	case len(r.queue) < r.maxQueued:
		s.state = StateQueued
		r.queue = append(r.queue, s)
	default:
		r.mu.Unlock()
		return errSessionsFull
	}
	r.nextID++
	s.id = fmt.Sprintf("s-%d", r.nextID)
	r.sessions[s.id] = s
	r.order = append(r.order, s.id)
	start := s.state == StateRunning
	r.mu.Unlock()

	s.publish(eventQueued, []byte(fmt.Sprintf(`{"id":%q,"kind":%q}`, s.id, s.kind)))
	if start {
		r.launch(s)
	}
	return nil
}

// release returns a finished session's slot and starts the next queued
// session, if any. It also trims the finished backlog.
func (r *sessionRegistry) release() {
	r.mu.Lock()
	r.active--
	var next *serveSession
	// Skip queue entries that were cancelled while waiting.
	for len(r.queue) > 0 {
		cand := r.queue[0]
		r.queue = r.queue[1:]
		cand.mu.Lock()
		waiting := cand.state == StateQueued
		if waiting {
			cand.state = StateRunning
		}
		cand.mu.Unlock()
		if waiting {
			next = cand
			break
		}
	}
	if next != nil {
		r.active++
	}
	r.trimFinishedLocked()
	r.mu.Unlock()
	if next != nil {
		r.launch(next)
	}
}

// trimFinishedLocked evicts the oldest terminal sessions beyond the
// retention bound. Callers hold r.mu.
func (r *sessionRegistry) trimFinishedLocked() {
	finished := 0
	for _, id := range r.order {
		if s := r.sessions[id]; s != nil {
			s.mu.Lock()
			if terminalState(s.state) {
				finished++
			}
			s.mu.Unlock()
		}
	}
	if finished <= r.maxFinished {
		return
	}
	keep := r.order[:0]
	for _, id := range r.order {
		s := r.sessions[id]
		if s == nil {
			continue
		}
		s.mu.Lock()
		evict := finished > r.maxFinished && terminalState(s.state)
		s.mu.Unlock()
		if evict {
			delete(r.sessions, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	r.order = keep
}

// cancelQueued handles DELETE on a still-queued session: it flips it to
// cancelled without consuming a running slot. Returns false when the
// session was not in the queued state (the caller then cancels the context
// of the running session instead).
func (r *sessionRegistry) cancelQueued(s *serveSession) bool {
	s.mu.Lock()
	if s.state != StateQueued {
		s.mu.Unlock()
		return false
	}
	s.mu.Unlock()
	// finish re-locks; the small race window (release promoting the session
	// between the check and here) is handled by re-checking inside finish
	// via the launch path, which skips sessions already terminal.
	s.finish(StateCancelled, eventCancelled, []byte(`{"reason":"deleted while queued"}`), nil, "cancelled while queued")
	return true
}

func (r *sessionRegistry) get(id string) *serveSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions[id]
}

func (r *sessionRegistry) list() []SessionStatus {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	byID := make(map[string]*serveSession, len(ids))
	for _, id := range ids {
		byID[id] = r.sessions[id]
	}
	r.mu.Unlock()
	out := make([]SessionStatus, 0, len(ids))
	for _, id := range ids {
		if s := byID[id]; s != nil {
			out = append(out, s.status())
		}
	}
	return out
}

// gauges reports the active/queued occupancy for /metrics.
func (r *sessionRegistry) gauges() (active, queued int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active, len(r.queue)
}
