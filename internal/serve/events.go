package serve

import (
	"encoding/json"
	"fmt"

	"unbiasedfl/internal/experiment"
)

// SSE event types. Observer-derived types mirror the experiment event names;
// lifecycle types are emitted by the session registry itself.
const (
	eventQueued      = "queued"
	eventStarted     = "started"
	eventSchemeSolve = "scheme_solved"
	eventRoundStart  = "round_start"
	eventRoundEnd    = "round_end"
	eventSchemeDone  = "scheme_done"
	eventSweepPoint  = "sweep_point"
	eventDone        = "done"
	eventError       = "error"
	eventCancelled   = "cancelled"
)

// EncodeEvent renders a typed experiment event as its SSE (type, payload)
// pair. The payload is json.Marshal over fixed-order structs, so for a
// deterministic run the encoded stream is byte-deterministic too — the
// property the SSE-vs-direct-Observer equivalence test pins.
func EncodeEvent(e experiment.Event) (string, []byte, error) {
	var (
		typ string
		v   any
	)
	switch ev := e.(type) {
	case experiment.SchemeSolved:
		typ = eventSchemeSolve
		v = struct {
			Scheme    string    `json:"scheme"`
			Spent     float64   `json:"spent"`
			ServerObj float64   `json:"server_obj"`
			P         []float64 `json:"p"`
			Q         []float64 `json:"q"`
		}{ev.Scheme, ev.Outcome.Spent, ev.Outcome.ServerObj, ev.Outcome.P, ev.Outcome.Q}
	case experiment.RoundStart:
		typ = eventRoundStart
		v = struct {
			Scheme string `json:"scheme"`
			Run    int    `json:"run"`
			Round  int    `json:"round"`
		}{ev.Scheme, ev.Run, ev.Round}
	case experiment.RoundEnd:
		typ = eventRoundEnd
		v = struct {
			Scheme       string  `json:"scheme"`
			Run          int     `json:"run"`
			Round        int     `json:"round"`
			Participants int     `json:"participants"`
			Evaluated    bool    `json:"evaluated"`
			Loss         float64 `json:"loss"`
			Accuracy     float64 `json:"accuracy"`
		}{ev.Scheme, ev.Run, ev.Round, ev.Participants, ev.Evaluated, ev.Loss, ev.Accuracy}
	case experiment.SchemeDone:
		typ = eventSchemeDone
		v = struct {
			Scheme             string  `json:"scheme"`
			FinalLoss          float64 `json:"final_loss"`
			FinalAccuracy      float64 `json:"final_accuracy"`
			TotalClientUtility float64 `json:"total_client_utility"`
			NegativePayments   int     `json:"negative_payments"`
		}{ev.Scheme, ev.Run.FinalLoss, ev.Run.FinalAccuracy, ev.Run.TotalClientUtility, ev.Run.NegativePayments}
	case experiment.SweepPointDone:
		typ = eventSweepPoint
		v = struct {
			Index int     `json:"index"`
			Value float64 `json:"value"`
		}{ev.Index, ev.Value}
	default:
		return "", nil, fmt.Errorf("serve: unknown event %T", e)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return "", nil, fmt.Errorf("serve: encode %s event: %w", typ, err)
	}
	return typ, b, nil
}
