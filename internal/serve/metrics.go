package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// quoteBuckets are the latency histogram bounds in seconds, spanning the
// cached fast path (tens of microseconds) through cold large-fleet solves.
var quoteBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation: per-bucket atomic counters plus an atomic nanosecond sum.
type histogram struct {
	counts []atomic.Uint64 // one per bucket bound; +Inf is implicit
	count  atomic.Uint64
	sumNs  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(quoteBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, bound := range quoteBuckets {
		if s <= bound {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// writeProm emits the histogram in Prometheus exposition format with
// cumulative buckets.
func (h *histogram) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, bound := range quoteBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// metrics aggregates the daemon's operational counters. Everything is
// atomic; the /metrics handler assembles the exposition text on demand,
// pulling cache and session-registry gauges from their owners.
type metrics struct {
	quoteLatency  *histogram
	quoteRequests atomic.Uint64
	quoteErrors   atomic.Uint64
	solveRequests atomic.Uint64
	batchRequests atomic.Uint64
	batchQuotes   atomic.Uint64

	sessionsStarted   atomic.Uint64
	sessionsCompleted atomic.Uint64
	sessionsFailed    atomic.Uint64
	sessionsCancelled atomic.Uint64
	sessionsRejected  atomic.Uint64
	roundsCommitted   atomic.Uint64

	sseSubscribers atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{quoteLatency: newHistogram()}
}
