package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unbiasedfl"
	"unbiasedfl/internal/cli"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/scenario"
)

// Config tunes the serving daemon. The zero value is usable: every field
// has a default applied by New.
type Config struct {
	// Addr is the listen address for ListenAndServe (default "127.0.0.1:8080").
	Addr string
	// CacheSize bounds the quote memo-cache in resident games (default 4096).
	CacheSize int
	// MaxSessions bounds concurrently running federation sessions (default 2).
	MaxSessions int
	// MaxQueued bounds sessions waiting for a slot; beyond it POST
	// /v1/sessions answers 429 (default 8).
	MaxQueued int
	// MaxFinished bounds retained terminal sessions, evicted oldest first
	// (default 64).
	MaxFinished int
	// MaxBody bounds request bodies in bytes; beyond it the daemon answers
	// 413 (default 1 MiB).
	MaxBody int64
	// QuoteTimeout is the per-request deadline on the quote/solve endpoints
	// (default 10s).
	QuoteTimeout time.Duration
	// DrainTimeout bounds the graceful shutdown: in-flight requests and
	// cancelled sessions get this long to finish (default 15s).
	DrainTimeout time.Duration
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 2
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 8
	}
	if c.MaxFinished <= 0 {
		c.MaxFinished = 64
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.QuoteTimeout <= 0 {
		c.QuoteTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the multi-tenant serving daemon: sharded quote cache, session
// registry with admission control, SSE event streams, and Prometheus-style
// metrics, all behind one http.Handler.
type Server struct {
	cfg      Config
	cache    *game.Cache
	metrics  *metrics
	registry *sessionRegistry
	mux      *http.ServeMux

	draining   atomic.Bool
	ready      atomic.Bool
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// runOverride replaces the session body in tests (admission-control and
	// lifecycle tests need runs that block or finish on command).
	runOverride func(s *serveSession)
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      game.NewCache(cfg.CacheSize),
		metrics:    newMetrics(),
		registry:   newSessionRegistry(cfg.MaxSessions, cfg.MaxQueued, cfg.MaxFinished),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.registry.launch = func(sess *serveSession) {
		s.wg.Add(1)
		go s.runSession(sess)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/quote", s.handleQuote)
	s.mux.HandleFunc("POST /v1/quotes", s.handleBatchQuote)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleSessionResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler exposes the daemon's full route table (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled, then
// drains gracefully. A clean drain returns nil. An address of the form
// "unix:/path/to.sock" binds a Unix domain socket instead of TCP — the
// cheap transport for same-host tenants (and the serving benchmark, where
// loopback TCP's per-request cost is pure overhead).
func (s *Server) ListenAndServe(ctx context.Context) error {
	network, addr := "tcp", s.cfg.Addr
	if path, ok := strings.CutPrefix(s.cfg.Addr, "unix:"); ok {
		network, addr = "unix", path
		_ = os.Remove(path) // stale socket from a previous run
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve runs the daemon on an existing listener until ctx is cancelled,
// then drains: health flips to 503, new sessions are refused, running
// sessions are cancelled through their contexts, and in-flight requests
// (including SSE streams) get DrainTimeout to finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	srv := &http.Server{
		Handler:     s.mux,
		ReadTimeout: 30 * time.Second,
	}
	// The listener is bound and the route table is wired: the daemon can
	// accept traffic, so readiness (distinct from liveness) flips here.
	s.ready.Store(true)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		s.baseCancel()
		return err
	case <-ctx.Done():
	}

	s.cfg.Logf("flserve: draining (timeout %s)", s.cfg.DrainTimeout)
	s.draining.Store(true)
	s.baseCancel() // cancels every running session and wakes SSE streams

	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)

	sessionsDone := make(chan struct{})
	go func() { s.wg.Wait(); close(sessionsDone) }()
	select {
	case <-sessionsDone:
	case <-drainCtx.Done():
		err = errors.Join(err, fmt.Errorf("serve: sessions still running after drain timeout"))
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	if err == nil {
		s.cfg.Logf("flserve: drained cleanly")
	}
	return err
}

// decodeBody parses a size-capped, strict JSON request body into v. On
// failure it writes the typed error envelope and returns false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			cli.WriteHTTPError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBody))
			return false
		}
		cli.WriteHTTPError(w, http.StatusBadRequest, "bad_json", err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = cli.WriteJSON(w, v)
}

func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	s.metrics.quoteRequests.Add(1)
	var req QuoteRequest
	if !s.decodeBody(w, r, &req) {
		s.metrics.quoteErrors.Add(1)
		return
	}
	name := req.Scheme
	if name == "" {
		name = "proposed"
	}
	ps, err := game.SchemeByName(name)
	if err != nil {
		s.metrics.quoteErrors.Add(1)
		cli.WriteHTTPError(w, http.StatusNotFound, "unknown_scheme", err.Error())
		return
	}
	p, err := req.Params.ToGame()
	if err != nil {
		s.metrics.quoteErrors.Add(1)
		cli.WriteHTTPError(w, http.StatusBadRequest, "invalid_params", err.Error())
		return
	}
	// The solve is a bounded closed-form KKT computation (no I/O, no
	// unbounded loops), so the per-request deadline is enforced by checking
	// elapsed time after the compute instead of racing a goroutine against
	// the context — keeping the cached fast path free of per-request spawns.
	start := time.Now()
	out, err := s.cache.Price(ps, p)
	elapsed := time.Since(start)
	s.metrics.quoteLatency.observe(elapsed)
	if err == nil && (elapsed > s.cfg.QuoteTimeout || r.Context().Err() != nil) {
		err = context.DeadlineExceeded
	}
	if err != nil {
		s.metrics.quoteErrors.Add(1)
		status, code := http.StatusInternalServerError, "solve_failed"
		if errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusGatewayTimeout, "deadline_exceeded"
		}
		cli.WriteHTTPError(w, status, code, err.Error())
		return
	}
	writeFastJSON(w, QuoteResponse{
		Scheme:    out.Name,
		P:         out.P,
		Q:         out.Q,
		Spent:     out.Spent,
		ServerObj: out.ServerObj,
	})
}

// writeFastJSON is the hot-path response writer: compact marshal, no
// indentation — the quote loop's throughput lives here.
func writeFastJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		cli.WriteHTTPError(w, http.StatusInternalServerError, "encode_failed", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	_, _ = w.Write([]byte("\n"))
}

// handleBatchQuote prices a batch of games under one scheme, each through
// the shared cache. The whole batch either succeeds or reports the first
// failing game's error, so clients never have to merge partial results.
func (s *Server) handleBatchQuote(w http.ResponseWriter, r *http.Request) {
	s.metrics.batchRequests.Add(1)
	var req BatchQuoteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Params) == 0 {
		cli.WriteHTTPError(w, http.StatusBadRequest, "invalid_params", "empty batch")
		return
	}
	name := req.Scheme
	if name == "" {
		name = "proposed"
	}
	ps, err := game.SchemeByName(name)
	if err != nil {
		cli.WriteHTTPError(w, http.StatusNotFound, "unknown_scheme", err.Error())
		return
	}
	start := time.Now()
	resp := BatchQuoteResponse{Quotes: make([]QuoteResponse, len(req.Params))}
	for i := range req.Params {
		p, err := req.Params[i].ToGame()
		if err != nil {
			cli.WriteHTTPError(w, http.StatusBadRequest, "invalid_params",
				fmt.Sprintf("game %d: %v", i, err))
			return
		}
		out, err := s.cache.Price(ps, p)
		if err != nil {
			cli.WriteHTTPError(w, http.StatusInternalServerError, "solve_failed",
				fmt.Sprintf("game %d: %v", i, err))
			return
		}
		resp.Quotes[i] = QuoteResponse{
			Scheme:    out.Name,
			P:         out.P,
			Q:         out.Q,
			Spent:     out.Spent,
			ServerObj: out.ServerObj,
		}
	}
	s.metrics.batchQuotes.Add(uint64(len(req.Params)))
	if elapsed := time.Since(start); elapsed > s.cfg.QuoteTimeout {
		s.metrics.quoteErrors.Add(1)
		cli.WriteHTTPError(w, http.StatusGatewayTimeout, "deadline_exceeded",
			fmt.Sprintf("batch took %s, limit %s", elapsed, s.cfg.QuoteTimeout))
		return
	}
	writeFastJSON(w, resp)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.metrics.solveRequests.Add(1)
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	p, err := req.Params.ToGame()
	if err != nil {
		cli.WriteHTTPError(w, http.StatusBadRequest, "invalid_params", err.Error())
		return
	}
	eq, err := s.cache.Solve(p)
	if err != nil {
		cli.WriteHTTPError(w, http.StatusInternalServerError, "solve_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		Q:           eq.Q,
		P:           eq.P,
		Lambda:      eq.Lambda,
		Spent:       eq.Spent,
		ServerObj:   eq.ServerObj,
		BudgetTight: eq.BudgetTight,
	})
}

func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Schemes []string `json:"schemes"`
	}{game.SchemeNames()})
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Scenarios []string `json:"scenarios"`
	}{scenario.Names()})
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		cli.WriteHTTPError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req SessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	sess, err := s.buildSession(req)
	if err != nil {
		cli.WriteHTTPError(w, http.StatusBadRequest, "invalid_session", err.Error())
		return
	}
	if err := s.registry.admit(sess); err != nil {
		sess.cancel()
		s.metrics.sessionsRejected.Add(1)
		cli.WriteHTTPError(w, http.StatusTooManyRequests, "sessions_full", err.Error())
		return
	}
	st := sess.status()
	st.Location = "/v1/sessions/" + st.ID
	w.Header().Set("Location", st.Location)
	writeJSON(w, http.StatusAccepted, st)
}

// buildSession validates the request and assembles the (not yet admitted)
// session with its cancellable run context.
func (s *Server) buildSession(req SessionRequest) (*serveSession, error) {
	workloads := 0
	for _, set := range []bool{req.Scenario != "", req.Spec != nil, req.Run != nil} {
		if set {
			workloads++
		}
	}
	if workloads != 1 {
		return nil, errors.New("exactly one of scenario, spec, or run must be set")
	}
	switch req.Backend {
	case "", "local", "cluster":
	default:
		return nil, fmt.Errorf("unknown backend %q (want local or cluster)", req.Backend)
	}
	if req.RoundTimeout != "" {
		if _, err := time.ParseDuration(req.RoundTimeout); err != nil {
			return nil, fmt.Errorf("bad round_timeout: %v", err)
		}
	}
	sess := &serveSession{req: req, state: StateQueued}
	switch {
	case req.Scenario != "":
		sc, err := scenario.ByName(req.Scenario)
		if err != nil {
			return nil, err
		}
		sess.kind = "scenario"
		sess.label = sc.Name
	case req.Spec != nil:
		if err := req.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("bad spec: %v", err)
		}
		sess.kind = "scenario"
		sess.label = req.Spec.Name
	case req.Run != nil:
		run := req.Run
		if run.Setup < 1 || run.Setup > 3 {
			return nil, fmt.Errorf("bad run.setup %d (want 1..3)", run.Setup)
		}
		scheme := run.Scheme
		if scheme == "" {
			scheme = "proposed"
		}
		if _, err := game.SchemeByName(scheme); err != nil {
			return nil, err
		}
		if req.Checkpoint != nil {
			return nil, errors.New("checkpointing applies to scenario sessions only")
		}
		sess.kind = "run"
		sess.label = fmt.Sprintf("setup%d/%s", run.Setup, scheme)
	}
	sess.ctx, sess.cancel = context.WithCancel(s.baseCtx)
	return sess, nil
}

// runSession executes one admitted session to a terminal state. It owns the
// slot: whatever happens, it releases it and flips a finished counter.
func (s *Server) runSession(sess *serveSession) {
	defer s.wg.Done()
	defer s.registry.release()
	defer sess.cancel()

	// A queued session can be cancelled (DELETE) before its slot frees up;
	// finish already ran, so only hand the slot back.
	sess.mu.Lock()
	already := terminalState(sess.state)
	sess.mu.Unlock()
	if already {
		return
	}

	s.metrics.sessionsStarted.Add(1)
	sess.publish(eventStarted, []byte(fmt.Sprintf(`{"id":%q,"label":%q}`, sess.id, sess.label)))
	s.cfg.Logf("flserve: session %s started (%s %s)", sess.id, sess.kind, sess.label)

	if s.runOverride != nil {
		s.runOverride(sess)
		return
	}

	var (
		result []byte
		err    error
	)
	switch sess.kind {
	case "scenario":
		result, err = s.runScenarioSession(sess)
	case "run":
		result, err = s.runSchemeSession(sess)
	default:
		err = fmt.Errorf("serve: unknown session kind %q", sess.kind)
	}

	switch {
	case err == nil:
		s.metrics.sessionsCompleted.Add(1)
		sess.finish(StateDone, eventDone,
			[]byte(fmt.Sprintf(`{"id":%q,"result_bytes":%d}`, sess.id, len(result))),
			result, "")
		s.cfg.Logf("flserve: session %s done", sess.id)
	case errors.Is(err, context.Canceled):
		s.metrics.sessionsCancelled.Add(1)
		sess.finish(StateCancelled, eventCancelled,
			[]byte(fmt.Sprintf(`{"id":%q}`, sess.id)), nil, err.Error())
		s.cfg.Logf("flserve: session %s cancelled", sess.id)
	default:
		s.metrics.sessionsFailed.Add(1)
		msg, _ := json.Marshal(err.Error())
		sess.finish(StateFailed, eventError,
			[]byte(fmt.Sprintf(`{"id":%q,"error":%s}`, sess.id, msg)), nil, err.Error())
		s.cfg.Logf("flserve: session %s failed: %v", sess.id, err)
	}
}

func (sess *serveSession) runConfigBackend() scenario.Backend {
	if sess.req.Backend == "cluster" {
		return scenario.BackendCluster
	}
	return scenario.BackendLocal
}

func (s *Server) runScenarioSession(sess *serveSession) ([]byte, error) {
	var sc scenario.Scenario
	if sess.req.Scenario != "" {
		var err error
		sc, err = scenario.ByName(sess.req.Scenario)
		if err != nil {
			return nil, err
		}
	} else {
		sc = *sess.req.Spec
	}
	cfg := scenario.RunConfig{
		Backend: sess.runConfigBackend(),
		Events:  sess.observer(s.metrics),
	}
	if sess.req.RoundTimeout != "" {
		d, _ := time.ParseDuration(sess.req.RoundTimeout) // validated at admission
		cfg.Cluster.RoundTimeout = d
	}
	if cp := sess.req.Checkpoint; cp != nil {
		cfg.Checkpoint = scenario.CheckpointConfig{
			Path:     cp.Path,
			Resume:   cp.Resume,
			Sync:     cp.Sync,
			Interval: cp.Interval,
		}
	}
	trace, err := scenario.RunWith(sess.ctx, sc, cfg)
	if err != nil {
		return nil, err
	}
	return trace.Canonical()
}

// runSchemeSession drives a setup+scheme training run through the public
// Session facade — the same path library callers take — so the daemon
// exercises the facade's ID/Close seam rather than bypassing it.
func (s *Server) runSchemeSession(sess *serveSession) ([]byte, error) {
	run := sess.req.Run
	scheme := run.Scheme
	if scheme == "" {
		scheme = "proposed"
	}
	opts := []unbiasedfl.Option{unbiasedfl.WithObserver(sess.observer(s.metrics))}
	if run.Clients > 0 {
		opts = append(opts, unbiasedfl.WithClients(run.Clients))
	}
	if run.Samples > 0 {
		opts = append(opts, unbiasedfl.WithTotalSamples(run.Samples))
	}
	if run.Rounds > 0 {
		opts = append(opts, unbiasedfl.WithRounds(run.Rounds))
	}
	if run.LocalSteps > 0 {
		opts = append(opts, unbiasedfl.WithLocalSteps(run.LocalSteps))
	}
	if run.BatchSize > 0 {
		opts = append(opts, unbiasedfl.WithBatchSize(run.BatchSize))
	}
	if run.EvalEvery > 0 {
		opts = append(opts, unbiasedfl.WithEvalEvery(run.EvalEvery))
	}
	if run.Runs > 0 {
		opts = append(opts, unbiasedfl.WithRuns(run.Runs))
	}
	if run.Seed != 0 {
		opts = append(opts, unbiasedfl.WithSeed(run.Seed))
	}
	if sess.req.Backend == "cluster" {
		opts = append(opts, unbiasedfl.WithBackend(unbiasedfl.BackendCluster))
	}
	if sess.req.RoundTimeout != "" {
		d, _ := time.ParseDuration(sess.req.RoundTimeout) // validated at admission
		opts = append(opts, unbiasedfl.WithRoundTimeout(d))
	}
	fs, err := unbiasedfl.NewSession(sess.ctx, unbiasedfl.SetupID(run.Setup), opts...)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	sr, err := fs.RunScheme(sess.ctx, scheme)
	if err != nil {
		return nil, err
	}
	summary := struct {
		Session            string  `json:"session"`
		Scheme             string  `json:"scheme"`
		FinalLoss          float64 `json:"final_loss"`
		FinalAccuracy      float64 `json:"final_accuracy"`
		TotalClientUtility float64 `json:"total_client_utility"`
		NegativePayments   int     `json:"negative_payments"`
		Spent              float64 `json:"spent"`
		ServerObj          float64 `json:"server_obj"`
	}{
		Session:            fs.ID(),
		Scheme:             sr.Scheme,
		FinalLoss:          sr.FinalLoss,
		FinalAccuracy:      sr.FinalAccuracy,
		TotalClientUtility: sr.TotalClientUtility,
		NegativePayments:   sr.NegativePayments,
		Spent:              sr.Outcome.Spent,
		ServerObj:          sr.Outcome.ServerObj,
	}
	return json.Marshal(summary)
}

func (s *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Sessions []SessionStatus `json:"sessions"`
	}{s.registry.list()})
}

func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) *serveSession {
	sess := s.registry.get(r.PathValue("id"))
	if sess == nil {
		cli.WriteHTTPError(w, http.StatusNotFound, "unknown_session",
			fmt.Sprintf("no session %q", r.PathValue("id")))
	}
	return sess
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookupSession(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.status())
	}
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	if !s.registry.cancelQueued(sess) {
		sess.cancel() // running (or already terminal — then this is a no-op)
	} else {
		s.metrics.sessionsCancelled.Add(1)
	}
	writeJSON(w, http.StatusOK, sess.status())
}

func (s *Server) handleSessionResult(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	state, result, errMsg := sess.state, sess.result, sess.errMsg
	sess.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(result)
		// Scenario results are the canonical trace, which already ends in a
		// newline; scheme-run summaries need one for clean curl output.
		if len(result) > 0 && result[len(result)-1] != '\n' {
			_, _ = w.Write([]byte("\n"))
		}
	case StateFailed:
		cli.WriteHTTPError(w, http.StatusConflict, "session_failed", errMsg)
	case StateCancelled:
		cli.WriteHTTPError(w, http.StatusConflict, "session_cancelled", errMsg)
	default:
		cli.WriteHTTPError(w, http.StatusConflict, "not_finished",
			fmt.Sprintf("session is %s", state))
	}
}

// handleSessionEvents streams the session's event log as Server-Sent
// Events: a full replay from event 1, then live follow until the session
// reaches a terminal state or the client disconnects. The subscriber is
// the request goroutine itself — no per-subscriber goroutine exists, so an
// abandoned stream cannot leak one (the leak test pins this).
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		cli.WriteHTTPError(w, http.StatusInternalServerError, "no_stream",
			"response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	s.metrics.sseSubscribers.Add(1)
	defer s.metrics.sseSubscribers.Add(-1)
	notify, unsubscribe := sess.subscribe()
	defer unsubscribe()

	cursor := 0
	for {
		evs, next, done := sess.eventsSince(cursor)
		cursor = next
		for _, ev := range evs {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.seq, ev.typ, ev.data); err != nil {
				return
			}
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			// Draining: the session will publish its terminal (cancelled)
			// event; loop once more to deliver it, then the done flag ends
			// the stream.
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{"draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// handleReadyz is the readiness probe, distinct from /healthz liveness: it
// reports 200 only once Serve has the listener accepting traffic AND the
// pricing-scheme and scenario registries are populated — the two tables
// every serving request resolves through. Boot-wait loops (CI, orchestrator
// readiness gates) should poll this, not /healthz, which answers "ok" for a
// handler that is wired but not yet serving.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	status := func(code int, st string) {
		writeJSON(w, code, struct {
			Status string `json:"status"`
		}{st})
	}
	switch {
	case s.draining.Load():
		status(http.StatusServiceUnavailable, "draining")
	case !s.ready.Load():
		status(http.StatusServiceUnavailable, "starting")
	case len(game.SchemeNames()) == 0:
		status(http.StatusServiceUnavailable, "no pricing schemes registered")
	case len(scenario.Names()) == 0:
		status(http.StatusServiceUnavailable, "no scenarios registered")
	default:
		status(http.StatusOK, "ready")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := s.metrics
	m.quoteLatency.writeProm(w, "flserve_quote_latency_seconds")

	counter := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	counter("flserve_quote_requests_total", m.quoteRequests.Load())
	counter("flserve_quote_errors_total", m.quoteErrors.Load())
	counter("flserve_solve_requests_total", m.solveRequests.Load())
	counter("flserve_batch_requests_total", m.batchRequests.Load())
	counter("flserve_batch_quotes_total", m.batchQuotes.Load())

	cs := s.cache.Snapshot()
	counter("flserve_cache_hits_total", cs.Hits)
	counter("flserve_cache_misses_total", cs.Misses)
	counter("flserve_cache_evictions_total", cs.Evictions)
	gauge("flserve_cache_entries", int64(cs.Entries))
	fmt.Fprintf(w, "# TYPE flserve_cache_hit_rate gauge\nflserve_cache_hit_rate %s\n",
		formatFloat(cs.HitRate()))

	counter("flserve_sessions_started_total", m.sessionsStarted.Load())
	counter("flserve_sessions_completed_total", m.sessionsCompleted.Load())
	counter("flserve_sessions_failed_total", m.sessionsFailed.Load())
	counter("flserve_sessions_cancelled_total", m.sessionsCancelled.Load())
	counter("flserve_sessions_rejected_total", m.sessionsRejected.Load())
	counter("flserve_rounds_committed_total", m.roundsCommitted.Load())

	active, queued := s.registry.gauges()
	gauge("flserve_sessions_active", int64(active))
	gauge("flserve_sessions_queued", int64(queued))
	gauge("flserve_sse_subscribers", m.sseSubscribers.Load())
}

// ensure the facade's Observer and the experiment Observer stay one type;
// the session adapter relies on it.
var _ unbiasedfl.Observer = experiment.ObserverFunc(nil)
