package serve

import (
	"context"
	"net/http"
	"testing"
	"time"

	"unbiasedfl/internal/testutil"
)

// TestAbandonedSSESubscribersDoNotLeak pins the SSE design invariant: a
// subscriber is the request goroutine itself (no per-subscriber goroutine
// is spawned), so clients that vanish mid-stream leave nothing behind once
// their connections close.
func TestAbandonedSSESubscribersDoNotLeak(t *testing.T) {
	baseline := testutil.GoroutineBaseline()

	s, ts := newTestServer(t, Config{MaxSessions: 1})
	blockingOverride(s)
	st := createSession(t, ts.URL, SessionRequest{Scenario: "baseline"})

	// Open several SSE streams and abandon them all mid-stream.
	client := &http.Client{}
	const subscribers = 8
	cancels := make([]context.CancelFunc, 0, subscribers)
	for i := 0; i < subscribers; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/sessions/"+st.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read the first frame so the handler is demonstrably mid-stream,
		// then walk away without closing the body properly.
		buf := make([]byte, 64)
		if _, err := resp.Body.Read(buf); err != nil {
			t.Fatalf("first SSE read: %v", err)
		}
	}

	// Every subscriber must be registered before we abandon them.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.sseSubscribers.Load() != subscribers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d SSE subscribers registered", s.metrics.sseSubscribers.Load(), subscribers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, cancel := range cancels {
		cancel()
	}
	client.CloseIdleConnections()

	// The handlers must unwind and deregister...
	deadline = time.Now().Add(5 * time.Second)
	for s.metrics.sseSubscribers.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d SSE subscribers still registered after abandonment", s.metrics.sseSubscribers.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ...and the session's subscriber table must be empty again.
	sess := s.registry.get(st.ID)
	sess.mu.Lock()
	stale := len(sess.subs)
	sess.mu.Unlock()
	if stale != 0 {
		t.Fatalf("%d stale subscriber channels after abandonment", stale)
	}

	// Tear the session and test server down, then require the goroutine
	// count to return to the pre-test baseline.
	sess.cancel()
	waitState(t, ts.URL, st.ID, StateCancelled, 5*time.Second)
	ts.Close()
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}
