package serve

import (
	"context"
	"testing"
	"time"
)

// TestRunLoadSmoke drives the load generator against an in-process server:
// the priming pass must leave the timed window fully cache-hit.
func TestRunLoadSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Conns:    2,
		Duration: 300 * time.Millisecond,
		Distinct: 4,
		Clients:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quotes == 0 {
		t.Fatal("load window produced no quotes")
	}
	if rep.Errors != 0 {
		t.Fatalf("load window saw %d errors", rep.Errors)
	}
	if rep.CacheHitRate < 0.99 {
		t.Fatalf("cache hit rate %.4f after priming, want ~1 (hits %d, misses %d)",
			rep.CacheHitRate, rep.CacheHits, rep.CacheMisses)
	}
	if rep.QPS <= 0 || rep.P50Micros <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
}
