// Package serve is the equilibrium-as-a-service layer: a persistent,
// multi-tenant HTTP/JSON daemon (cmd/flserve) over the library's pricing
// engine and federation facade.
//
// Three surfaces share one Server:
//
//   - Quotes: POST /v1/quote prices an arbitrary CPL game under any
//     registered pricing scheme, and POST /v1/solve returns the raw
//     Stackelberg equilibrium. Both are backed by the sharded game.Cache,
//     so repeated questions are answered from memory at tens of thousands
//     of quotes per second on one core (see BENCH_PR7.json); the solver
//     runs only on first sight of a game.
//
//   - Sessions: POST /v1/sessions starts a federation run — a library or
//     custom scenario through the facade's RunScenarioWith, or a setup +
//     scheme training run through the Session facade — under an
//     admission-control semaphore (MaxSessions running, MaxQueued waiting,
//     429 beyond that). GET /v1/sessions/{id}/events streams the run's
//     deterministic typed Observer events as Server-Sent Events: every
//     subscriber replays the full event log from the start and then
//     follows live, so the stream's order is identical to a direct
//     Observer run's no matter when the client attaches. DELETE cancels
//     through the run's context; GET .../result returns the canonical
//     Trace (byte-identical to a facade run of the same scenario) or the
//     scheme-run summary.
//
//   - Operability: GET /metrics exports Prometheus-style text (quote
//     latency histogram, cache hit/miss/eviction counters, session
//     gauges, rounds committed, SSE subscriber count), GET /healthz flips
//     to 503 while draining, and Serve drains gracefully when its context
//     is cancelled (SIGTERM in cmd/flserve): new work is refused,
//     in-flight quotes finish, running sessions are cancelled through
//     their contexts, and every SSE stream terminates cleanly.
//
// Every error response uses the shared typed envelope from internal/cli
// (ErrorEnvelope), so clients can switch on stable codes.
package serve
