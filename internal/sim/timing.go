// Package sim models the wall-clock behaviour of the paper's hardware
// prototype (40 Raspberry Pis and a laptop server on enterprise Wi-Fi). Per
// DESIGN.md §4, the prototype is substituted by a parametric timing model:
// every client has a compute time per local SGD iteration and a
// communication time per round, both drawn from heterogeneous lognormal
// distributions; a round lasts as long as its slowest participant plus the
// server-side aggregation overhead. The paper's headline results (Fig. 4,
// Tables II–III) are time-to-target measurements, which depend on exactly
// this structure.
package sim

import (
	"errors"
	"fmt"
	"time"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/stats"
)

// ClientTiming is one device's latency profile.
type ClientTiming struct {
	// ComputePerStep is the duration of one local SGD iteration.
	ComputePerStep time.Duration
	// CommPerRound is the up+down model transfer duration for one round.
	CommPerRound time.Duration
}

// TimingModel holds all devices' profiles plus the server overhead.
type TimingModel struct {
	Clients        []ClientTiming
	ServerOverhead time.Duration
}

// TimingConfig parameterizes HeterogeneousTimings. Medians are for the
// lognormal draws; Sigma controls device heterogeneity.
type TimingConfig struct {
	NumClients     int
	ComputeMedian  time.Duration // median per-iteration compute time
	CommMedian     time.Duration // median per-round communication time
	Sigma          float64       // lognormal sigma (0 = homogeneous fleet)
	ServerOverhead time.Duration
}

// DefaultTimingConfig approximates Raspberry-Pi-class devices: ~10 ms per
// logistic-regression SGD step and ~300 ms per model exchange over Wi-Fi.
func DefaultTimingConfig(numClients int) TimingConfig {
	return TimingConfig{
		NumClients:     numClients,
		ComputeMedian:  10 * time.Millisecond,
		CommMedian:     300 * time.Millisecond,
		Sigma:          0.35,
		ServerOverhead: 20 * time.Millisecond,
	}
}

// HeterogeneousTimings draws a device fleet from cfg.
func HeterogeneousTimings(r *stats.RNG, cfg TimingConfig) (*TimingModel, error) {
	switch {
	case cfg.NumClients <= 0:
		return nil, errors.New("sim: need at least one client")
	case cfg.ComputeMedian <= 0 || cfg.CommMedian <= 0:
		return nil, errors.New("sim: medians must be positive")
	case cfg.Sigma < 0:
		return nil, errors.New("sim: negative sigma")
	case cfg.ServerOverhead < 0:
		return nil, errors.New("sim: negative server overhead")
	}
	comp, err := stats.LogNormal(r, cfg.NumClients, cfg.ComputeMedian.Seconds(), cfg.Sigma)
	if err != nil {
		return nil, err
	}
	comm, err := stats.LogNormal(r, cfg.NumClients, cfg.CommMedian.Seconds(), cfg.Sigma)
	if err != nil {
		return nil, err
	}
	tm := &TimingModel{
		Clients:        make([]ClientTiming, cfg.NumClients),
		ServerOverhead: cfg.ServerOverhead,
	}
	for i := range tm.Clients {
		tm.Clients[i] = ClientTiming{
			ComputePerStep: time.Duration(comp[i] * float64(time.Second)),
			CommPerRound:   time.Duration(comm[i] * float64(time.Second)),
		}
	}
	return tm, nil
}

// Scale multiplies client n's compute and communication times by factor —
// the seam fault schedules use to turn a device into a straggler (factor > 1)
// or a fast node (factor < 1) without redrawing the fleet.
func (t *TimingModel) Scale(n int, factor float64) error {
	if n < 0 || n >= len(t.Clients) {
		return fmt.Errorf("sim: client %d out of range", n)
	}
	if factor <= 0 {
		return errors.New("sim: scale factor must be positive")
	}
	ct := &t.Clients[n]
	ct.ComputePerStep = time.Duration(float64(ct.ComputePerStep) * factor)
	ct.CommPerRound = time.Duration(float64(ct.CommPerRound) * factor)
	return nil
}

// RoundDuration returns the wall-clock length of a round with the given
// participants, each running localSteps SGD iterations: the slowest
// participant's compute+comm time plus the server overhead. An empty round
// still costs the server overhead (it must notice nobody joined).
func (t *TimingModel) RoundDuration(participants []int, localSteps int) (time.Duration, error) {
	if localSteps <= 0 {
		return 0, errors.New("sim: local steps must be positive")
	}
	var slowest time.Duration
	for _, n := range participants {
		if n < 0 || n >= len(t.Clients) {
			return 0, fmt.Errorf("sim: participant %d out of range", n)
		}
		ct := t.Clients[n]
		d := time.Duration(localSteps)*ct.ComputePerStep + ct.CommPerRound
		if d > slowest {
			slowest = d
		}
	}
	return slowest + t.ServerOverhead, nil
}

// TimedPoint is a loss/accuracy sample stamped with simulated wall-clock
// time since training start.
type TimedPoint struct {
	Elapsed  time.Duration
	Round    int
	Loss     float64
	Accuracy float64
}

// Timeline converts an fl training history into wall-clock-stamped points
// using the timing model. participantsPerRound must align with the history.
func (t *TimingModel) Timeline(history []engine.RoundMetrics, participants [][]int, localSteps int) ([]TimedPoint, error) {
	if len(history) != len(participants) {
		return nil, errors.New("sim: history and participants lengths differ")
	}
	var clock time.Duration
	var out []TimedPoint
	for i, m := range history {
		d, err := t.RoundDuration(participants[i], localSteps)
		if err != nil {
			return nil, err
		}
		clock += d
		if m.Evaluated {
			out = append(out, TimedPoint{
				Elapsed:  clock,
				Round:    m.Round,
				Loss:     m.GlobalLoss,
				Accuracy: m.TestAccuracy,
			})
		}
	}
	return out, nil
}

// TimeToLoss returns the earliest elapsed time at which the loss reaches
// target (first point with Loss <= target), or ok=false if never reached.
func TimeToLoss(points []TimedPoint, target float64) (time.Duration, bool) {
	for _, p := range points {
		if p.Loss <= target {
			return p.Elapsed, true
		}
	}
	return 0, false
}

// TimeToAccuracy returns the earliest elapsed time at which accuracy reaches
// target, or ok=false if never reached.
func TimeToAccuracy(points []TimedPoint, target float64) (time.Duration, bool) {
	for _, p := range points {
		if p.Accuracy >= target {
			return p.Elapsed, true
		}
	}
	return 0, false
}
