package sim

import (
	"context"
	"errors"
	"time"

	"unbiasedfl/internal/engine"
)

// TimedResult is a training run paired with its simulated wall clock.
type TimedResult struct {
	Run    *engine.RunResult
	Points []TimedPoint
	Total  time.Duration
}

// TimedRun executes the spec on the backend through the engine's
// orchestrator and stamps its trajectory with simulated wall-clock time
// from the timing model. Cancelling ctx stops the underlying training
// promptly with ctx.Err().
func TimedRun(
	ctx context.Context, spec engine.Spec, backend engine.ExecutionBackend, tm *TimingModel,
) (*TimedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if backend == nil || tm == nil {
		return nil, errors.New("sim: nil backend or timing model")
	}
	if spec.Fed == nil || len(tm.Clients) != spec.Fed.NumClients() {
		return nil, errors.New("sim: timing model covers a different fleet size")
	}
	res, err := engine.Run(ctx, spec, backend)
	if err != nil {
		return nil, err
	}
	return Timestamp(res, tm, spec.LocalSteps)
}

// Timestamp folds an already-finished run into the timed shape: per-round
// wall-clock stamps from the timing model plus the total simulated duration.
func Timestamp(res *engine.RunResult, tm *TimingModel, localSteps int) (*TimedResult, error) {
	if res == nil || tm == nil {
		return nil, errors.New("sim: nil run or timing model")
	}
	participants := make([][]int, len(res.History))
	for i, m := range res.History {
		participants[i] = m.ParticipantIDs
	}
	points, err := tm.Timeline(res.History, participants, localSteps)
	if err != nil {
		return nil, err
	}
	var total time.Duration
	for _, ids := range participants {
		d, err := tm.RoundDuration(ids, localSteps)
		if err != nil {
			return nil, err
		}
		total += d
	}
	return &TimedResult{Run: res, Points: points, Total: total}, nil
}
