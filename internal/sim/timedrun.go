package sim

import (
	"context"
	"errors"
	"time"

	"unbiasedfl/internal/fl"
)

// TimedResult is a training run paired with its simulated wall clock.
type TimedResult struct {
	Run    *fl.RunResult
	Points []TimedPoint
	Total  time.Duration
}

// TimedRun executes the runner and stamps its trajectory with simulated
// wall-clock time from the timing model. Cancelling ctx stops the
// underlying training promptly with ctx.Err().
func TimedRun(ctx context.Context, runner *fl.Runner, tm *TimingModel) (*TimedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if runner == nil || tm == nil {
		return nil, errors.New("sim: nil runner or timing model")
	}
	if len(tm.Clients) != runner.Fed.NumClients() {
		return nil, errors.New("sim: timing model covers a different fleet size")
	}
	res, err := runner.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	participants := make([][]int, len(res.History))
	for i, m := range res.History {
		participants[i] = m.ParticipantIDs
	}
	points, err := tm.Timeline(res.History, participants, runner.Config.LocalSteps)
	if err != nil {
		return nil, err
	}
	var total time.Duration
	for _, ids := range participants {
		d, err := tm.RoundDuration(ids, runner.Config.LocalSteps)
		if err != nil {
			return nil, err
		}
		total += d
	}
	return &TimedResult{Run: res, Points: points, Total: total}, nil
}
