package sim

import (
	"context"
	"testing"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
)

func TestHeterogeneousTimings(t *testing.T) {
	r := stats.NewRNG(1)
	cfg := DefaultTimingConfig(40)
	tm, err := HeterogeneousTimings(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tm.Clients) != 40 {
		t.Fatalf("fleet size %d", len(tm.Clients))
	}
	var distinct bool
	for _, ct := range tm.Clients {
		if ct.ComputePerStep <= 0 || ct.CommPerRound <= 0 {
			t.Fatalf("non-positive timing %+v", ct)
		}
		if ct.ComputePerStep != tm.Clients[0].ComputePerStep {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("fleet is homogeneous despite sigma > 0")
	}
}

func TestHeterogeneousTimingsValidation(t *testing.T) {
	r := stats.NewRNG(1)
	bad := DefaultTimingConfig(0)
	if _, err := HeterogeneousTimings(r, bad); err == nil {
		t.Fatal("expected error for zero clients")
	}
	bad = DefaultTimingConfig(2)
	bad.ComputeMedian = 0
	if _, err := HeterogeneousTimings(r, bad); err == nil {
		t.Fatal("expected error for zero compute median")
	}
	bad = DefaultTimingConfig(2)
	bad.Sigma = -1
	if _, err := HeterogeneousTimings(r, bad); err == nil {
		t.Fatal("expected error for negative sigma")
	}
	bad = DefaultTimingConfig(2)
	bad.ServerOverhead = -time.Second
	if _, err := HeterogeneousTimings(r, bad); err == nil {
		t.Fatal("expected error for negative overhead")
	}
}

func TestRoundDuration(t *testing.T) {
	tm := &TimingModel{
		Clients: []ClientTiming{
			{ComputePerStep: 10 * time.Millisecond, CommPerRound: 100 * time.Millisecond},
			{ComputePerStep: 20 * time.Millisecond, CommPerRound: 50 * time.Millisecond},
		},
		ServerOverhead: 5 * time.Millisecond,
	}
	d, err := tm.RoundDuration([]int{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Client 0: 100+100=200ms; client 1: 200+50=250ms; +5ms overhead.
	if d != 255*time.Millisecond {
		t.Fatalf("round duration %v", d)
	}
	empty, err := tm.RoundDuration(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if empty != 5*time.Millisecond {
		t.Fatalf("empty round duration %v", empty)
	}
	if _, err := tm.RoundDuration([]int{7}, 10); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := tm.RoundDuration([]int{0}, 0); err == nil {
		t.Fatal("expected local-steps error")
	}
}

func TestTimeToTargets(t *testing.T) {
	points := []TimedPoint{
		{Elapsed: 1 * time.Second, Loss: 0.9, Accuracy: 0.3},
		{Elapsed: 2 * time.Second, Loss: 0.5, Accuracy: 0.6},
		{Elapsed: 3 * time.Second, Loss: 0.4, Accuracy: 0.8},
	}
	if d, ok := TimeToLoss(points, 0.5); !ok || d != 2*time.Second {
		t.Fatalf("time to loss %v %v", d, ok)
	}
	if _, ok := TimeToLoss(points, 0.1); ok {
		t.Fatal("unreachable loss reported reached")
	}
	if d, ok := TimeToAccuracy(points, 0.75); !ok || d != 3*time.Second {
		t.Fatalf("time to accuracy %v %v", d, ok)
	}
	if _, ok := TimeToAccuracy(points, 0.99); ok {
		t.Fatal("unreachable accuracy reported reached")
	}
}

func TestTimelineAlignment(t *testing.T) {
	tm := &TimingModel{
		Clients:        []ClientTiming{{ComputePerStep: time.Millisecond, CommPerRound: 10 * time.Millisecond}},
		ServerOverhead: time.Millisecond,
	}
	history := []fl.RoundMetrics{
		{Round: 0, Evaluated: false},
		{Round: 1, Evaluated: true, GlobalLoss: 0.7, TestAccuracy: 0.5},
	}
	parts := [][]int{{0}, {0}}
	points, err := tm.Timeline(history, parts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points %d", len(points))
	}
	// Each round: 5ms compute + 10ms comm + 1ms overhead = 16ms; two rounds.
	if points[0].Elapsed != 32*time.Millisecond {
		t.Fatalf("elapsed %v", points[0].Elapsed)
	}
	if _, err := tm.Timeline(history, parts[:1], 5); err == nil {
		t.Fatal("expected alignment error")
	}
}

func TestTimedRunEndToEnd(t *testing.T) {
	cfg := data.MNISTLikeConfig()
	cfg.NumClients = 4
	cfg.TotalSamples = 400
	cfg.TestSamples = 100
	cfg.Dim = 6
	cfg.Classes = 3
	cfg.MaxClasses = 2
	fed, err := data.GenerateImageLike(stats.NewRNG(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(cfg.Dim, cfg.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := fl.NewBernoulliSampler([]float64{0.8, 0.8, 0.8, 0.8}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	runCfg := fl.DefaultConfig()
	runCfg.Rounds = 20
	runCfg.LocalSteps = 5
	runner := &fl.Runner{
		Model: m, Fed: fed, Config: runCfg,
		Sampler: sampler, Aggregator: fl.UnbiasedAggregator{},
	}
	tm, err := HeterogeneousTimings(stats.NewRNG(4), DefaultTimingConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TimedRun(context.Background(), runner.Spec(), engine.NewLocalBackend(engine.LocalOptions{}), tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no timed points")
	}
	if res.Total <= 0 {
		t.Fatalf("total %v", res.Total)
	}
	prev := time.Duration(0)
	for _, pt := range res.Points {
		if pt.Elapsed <= prev {
			t.Fatal("timeline not strictly increasing")
		}
		prev = pt.Elapsed
	}
	if res.Points[len(res.Points)-1].Elapsed > res.Total {
		t.Fatal("last point beyond total duration")
	}
	if _, err := TimedRun(context.Background(), runner.Spec(), nil, tm); err == nil {
		t.Fatal("expected nil backend error")
	}
	wrong, err := HeterogeneousTimings(stats.NewRNG(5), DefaultTimingConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TimedRun(context.Background(), runner.Spec(), engine.NewLocalBackend(engine.LocalOptions{}), wrong); err == nil {
		t.Fatal("expected fleet-size mismatch error")
	}
}
