package experiment

import (
	"context"
	"errors"
	"fmt"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/stats"
)

// FidelityResult quantifies how well the Theorem-1 convergence bound — the
// server's training-free surrogate — predicts actual training outcomes
// across participation profiles. This validates the paper's central design
// decision: "a common surrogate used for this purpose is the convergence
// upper bound" (Section IV).
type FidelityResult struct {
	// Bounds[i] is the Theorem-1 objective of profile i; Losses[i] the
	// empirical final loss after training under profile i.
	Bounds []float64
	Losses []float64
	// KendallTau is the rank correlation between the two (+1 = the bound
	// orders profiles exactly as training does).
	KendallTau float64
}

// BoundFidelity draws random participation profiles, evaluates the bound
// and trains the model under each, and reports the rank agreement.
// Cancelling ctx aborts promptly with ctx.Err().
func BoundFidelity(ctx context.Context, env *Environment, profiles int, seed uint64) (*FidelityResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	if profiles < 2 {
		return nil, errors.New("experiment: need at least two profiles")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	n := env.Fed.NumClients()
	res := &FidelityResult{
		Bounds: make([]float64, 0, profiles),
		Losses: make([]float64, 0, profiles),
	}
	for i := 0; i < profiles; i++ {
		q := make([]float64, n)
		// Spread profiles across low/medium/high regimes so the ranking
		// problem is non-trivial.
		base := 0.1 + 0.8*float64(i)/float64(profiles-1)
		for j := range q {
			q[j] = clampQ(base*(0.5+rng.Float64()), env.Params.QMin, env.Params.QMax)
		}
		bound, err := env.Params.ServerObjective(q)
		if err != nil {
			return nil, err
		}

		var finalLoss float64
		for run := 0; run < env.Opts.Runs; run++ {
			sampler, err := fl.NewBernoulliSampler(q, stats.NewRNG(seed+uint64(1000*i+run+1)))
			if err != nil {
				return nil, err
			}
			cfg := fl.Config{
				Rounds:     env.Opts.Rounds,
				LocalSteps: env.Opts.LocalSteps,
				BatchSize:  env.Opts.BatchSize,
				Schedule:   fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
				EvalEvery:  env.Opts.Rounds, // final evaluation only
				Seed:       seed + uint64(7000*i+run),
			}
			runner := &fl.Runner{
				Model: env.Model, Fed: env.Fed, Config: cfg,
				Sampler: sampler, Aggregator: fl.UnbiasedAggregator{},
			}
			out, err := engine.Run(ctx, runner.Spec(), env.newBackend(true))
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				return nil, fmt.Errorf("profile %d run %d: %w", i, run, err)
			}
			finalLoss += out.FinalLoss / float64(env.Opts.Runs)
		}
		res.Bounds = append(res.Bounds, bound)
		res.Losses = append(res.Losses, finalLoss)
	}
	tau, err := stats.KendallTau(res.Bounds, res.Losses)
	if err != nil {
		return nil, err
	}
	res.KendallTau = tau
	return res, nil
}

func clampQ(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
