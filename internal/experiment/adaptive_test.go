package experiment

import (
	"context"
	"math"
	"testing"
)

func TestRunAdaptive(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 40
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup2, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAdaptive(context.Background(), env, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 4 {
		t.Fatalf("epochs %d", res.Epochs)
	}
	for name, v := range map[string]float64{
		"static loss":    res.StaticLoss,
		"adaptive loss":  res.AdaptiveLoss,
		"static bound":   res.StaticBound,
		"adaptive bound": res.AdaptiveBound,
	} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v", name, v)
		}
	}
	// The adaptive arm re-prices within budget every epoch, so its final
	// informed equilibrium must respect the budget.
	if res.AdaptiveSpend > env.Params.B*(1+1e-6) {
		t.Fatalf("adaptive spend %v exceeds budget %v", res.AdaptiveSpend, env.Params.B)
	}
	// The static arm's realized spend drifts away from the budget as G_n
	// estimates drift — the miscalibration adaptive repricing removes.
	drift := math.Abs(res.StaticSpend-env.Params.B) / env.Params.B
	if drift < 1e-6 {
		t.Fatalf("static spend %v suspiciously still exactly on budget %v",
			res.StaticSpend, env.Params.B)
	}
}

func TestRunAdaptiveErrors(t *testing.T) {
	if _, err := RunAdaptive(context.Background(), nil, 2, 1); err == nil {
		t.Fatal("expected nil env error")
	}
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAdaptive(context.Background(), env, 1, 1); err == nil {
		t.Fatal("expected epochs error")
	}
	small := *env
	smallOpts := env.Opts
	smallOpts.Rounds = 2
	small.Opts = smallOpts
	if _, err := RunAdaptive(context.Background(), &small, 5, 1); err == nil {
		t.Fatal("expected too-many-epochs error")
	}
}
