package experiment

import (
	"context"
	"testing"
)

// TestConvergenceRateDecreasing validates Theorem 1's qualitative shape:
// under full participation and the theorem's step size, the optimality gap
// shrinks as the horizon grows.
func TestConvergenceRateDecreasing(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 40
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup2, opts)
	if err != nil {
		t.Fatal(err)
	}
	points, err := ConvergenceRate(context.Background(), env, []int{10, 40, 160}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points %d", len(points))
	}
	if points[2].Gap >= points[0].Gap {
		t.Fatalf("gap did not shrink: %v -> %v", points[0].Gap, points[2].Gap)
	}
	// The fitted rate exponent should be negative (gap decays with R).
	p, err := FitRateExponent(points)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 0 {
		t.Fatalf("fitted rate exponent %v not negative", p)
	}
}

func TestConvergenceRateErrors(t *testing.T) {
	if _, err := ConvergenceRate(context.Background(), nil, []int{1}, 1); err == nil {
		t.Fatal("expected nil env error")
	}
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConvergenceRate(context.Background(), env, nil, 1); err == nil {
		t.Fatal("expected empty horizons error")
	}
	if _, err := ConvergenceRate(context.Background(), env, []int{0, 5}, 1); err == nil {
		t.Fatal("expected non-positive horizon error")
	}
}

func TestFitRateExponent(t *testing.T) {
	// Exact 1/R decay fits p = -1.
	points := []GapPoint{{10, 1.0}, {100, 0.1}, {1000, 0.01}}
	p, err := FitRateExponent(points)
	if err != nil {
		t.Fatal(err)
	}
	if p < -1.0001 || p > -0.9999 {
		t.Fatalf("exponent %v, want -1", p)
	}
	if _, err := FitRateExponent([]GapPoint{{10, 0}}); err == nil {
		t.Fatal("expected insufficient-points error")
	}
	if _, err := FitRateExponent([]GapPoint{{10, 1}, {10, 1}}); err == nil {
		t.Fatal("expected degenerate-horizons error")
	}
}
