package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Artifacts persists experiment outputs in a layout suitable for external
// plotting and archival: one CSV per trajectory, one markdown report per
// comparison or sweep, and a manifest.json describing everything written.
type Artifacts struct {
	dir      string
	manifest manifest
}

type manifest struct {
	CreatedUnix int64          `json:"createdUnix"`
	Entries     []manifestItem `json:"entries"`
}

type manifestItem struct {
	Kind  string `json:"kind"`  // "comparison", "sweep", "series"
	Setup string `json:"setup"` // human-readable setup name
	Path  string `json:"path"`  // file path relative to the artifact root
	Note  string `json:"note,omitempty"`
}

// NewArtifacts creates (or reuses) the output directory.
func NewArtifacts(dir string) (*Artifacts, error) {
	if dir == "" {
		return nil, errors.New("experiment: empty artifact directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: create artifact dir: %w", err)
	}
	return &Artifacts{
		dir:      dir,
		manifest: manifest{CreatedUnix: time.Now().Unix()},
	}, nil
}

// Dir returns the artifact root.
func (a *Artifacts) Dir() string { return a.dir }

// SaveComparison writes a full pricing-scheme comparison: the markdown
// report plus one CSV per scheme trajectory.
func (a *Artifacts) SaveComparison(name string, c *Comparison) error {
	if c == nil {
		return errors.New("experiment: nil comparison")
	}
	reportPath := name + "_report.md"
	f, err := os.Create(filepath.Join(a.dir, reportPath))
	if err != nil {
		return fmt.Errorf("experiment: create report: %w", err)
	}
	if err := WriteComparisonReport(f, c); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	a.manifest.Entries = append(a.manifest.Entries, manifestItem{
		Kind: "comparison", Setup: c.Env.ID.String(), Path: reportPath,
	})
	for _, s := range c.Schemes {
		csvPath := fmt.Sprintf("%s_%v.csv", name, s.Scheme)
		cf, err := os.Create(filepath.Join(a.dir, csvPath))
		if err != nil {
			return fmt.Errorf("experiment: create series: %w", err)
		}
		if err := WriteSeriesCSV(cf, s); err != nil {
			_ = cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		a.manifest.Entries = append(a.manifest.Entries, manifestItem{
			Kind: "series", Setup: c.Env.ID.String(), Path: csvPath,
			Note: fmt.Sprintf("%v pricing trajectory", s.Scheme),
		})
	}
	return nil
}

// SaveSweep writes a parameter-sweep report (Figs. 5–7 or Table V).
func (a *Artifacts) SaveSweep(name string, setup SetupID, kind SweepKind, points []SweepPoint, trained bool) error {
	if len(points) == 0 {
		return errors.New("experiment: empty sweep")
	}
	path := name + "_sweep.md"
	f, err := os.Create(filepath.Join(a.dir, path))
	if err != nil {
		return fmt.Errorf("experiment: create sweep: %w", err)
	}
	if err := WriteSweepReport(f, kind, points, trained); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	a.manifest.Entries = append(a.manifest.Entries, manifestItem{
		Kind: "sweep", Setup: setup.String(), Path: path,
		Note: kind.String(),
	})
	return nil
}

// createArtifactFile opens a file inside the artifact root.
func createArtifactFile(a *Artifacts, rel string) (*os.File, error) {
	f, err := os.Create(filepath.Join(a.dir, rel))
	if err != nil {
		return nil, fmt.Errorf("experiment: create %s: %w", rel, err)
	}
	return f, nil
}

// Finalize writes the manifest; call it once after all saves.
func (a *Artifacts) Finalize() error {
	raw, err := json.MarshalIndent(a.manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(a.dir, "manifest.json"), raw, 0o644)
}
