package experiment

import (
	"context"
	"errors"
	"testing"
	"time"

	"unbiasedfl/internal/testutil"
)

// slowOptions builds an environment whose training runs long enough to be
// cancelled mid-flight.
func slowOptions() Options {
	o := tinyOptions()
	o.Rounds = 100000
	o.Runs = 1
	return o
}

// cancelDuring runs fn in a goroutine, cancels after a short head start,
// and asserts fn returned context.Canceled promptly with no leaked
// goroutines.
func cancelDuring(t *testing.T, headStart time.Duration, fn func(ctx context.Context) error) {
	t.Helper()
	baseline := testutil.GoroutineBaseline()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fn(ctx) }()
	time.Sleep(headStart)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("work did not stop after cancellation")
	}
	testutil.WaitNoLeaks(t, baseline, 5*time.Second)
}

// TestCancelMidScheme cancels RunScheme while the training loop is hot.
func TestCancelMidScheme(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	cancelDuring(t, 50*time.Millisecond, func(ctx context.Context) error {
		_, err := RunScheme(ctx, env, "proposed")
		return err
	})
}

// TestCancelMidCompare cancels the scheme comparison mid-run.
func TestCancelMidCompare(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	cancelDuring(t, 50*time.Millisecond, func(ctx context.Context) error {
		_, err := Compare(ctx, env)
		return err
	})
}

// TestCancelMidSweep cancels a parallel sweep across its worker pool.
func TestCancelMidSweep(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	cancelDuring(t, 50*time.Millisecond, func(ctx context.Context) error {
		_, err := Sweep(ctx, env, SweepV, []float64{1000, 2000, 4000, 8000, 16000, 32000})
		return err
	})
}

// TestCancelMidBuildSetup cancels the calibration phase of environment
// construction.
func TestCancelMidBuildSetup(t *testing.T) {
	opts := tinyOptions()
	opts.Calibration = 100000
	cancelDuring(t, 30*time.Millisecond, func(ctx context.Context) error {
		_, err := BuildSetup(ctx, Setup1, opts)
		return err
	})
}

// TestPreCancelledEverywhere asserts every context-threaded entry point
// fails fast on an already-cancelled context.
func TestPreCancelledEverywhere(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScheme(ctx, env, "proposed"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunScheme: %v", err)
	}
	if _, err := Compare(ctx, env); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compare: %v", err)
	}
	if _, err := Sweep(ctx, env, SweepV, []float64{1000, 2000}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep: %v", err)
	}
	if _, err := EquilibriumSweep(ctx, env, SweepV, []float64{1000}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EquilibriumSweep: %v", err)
	}
	if _, err := BoundFidelity(ctx, env, 3, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("BoundFidelity: %v", err)
	}
	if _, err := ConvergenceRate(ctx, env, []int{4, 8}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("ConvergenceRate: %v", err)
	}
}
