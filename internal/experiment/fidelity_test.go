package experiment

import (
	"context"
	"testing"

	"unbiasedfl/internal/stats"
)

func TestKendallTauHelper(t *testing.T) {
	tau, err := stats.KendallTau([]float64{1, 2, 3}, []float64{10, 20, 30})
	if err != nil || tau != 1 {
		t.Fatalf("perfect agreement tau %v err %v", tau, err)
	}
	tau, err = stats.KendallTau([]float64{1, 2, 3}, []float64{30, 20, 10})
	if err != nil || tau != -1 {
		t.Fatalf("perfect disagreement tau %v err %v", tau, err)
	}
	if _, err := stats.KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for single pair")
	}
	if _, err := stats.KendallTau([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

// TestBoundFidelity verifies the paper's surrogate design decision: the
// Theorem-1 bound must rank participation profiles consistently with actual
// training losses (positive rank correlation).
func TestBoundFidelity(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 25
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup2, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BoundFidelity(context.Background(), env, 6, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bounds) != 6 || len(res.Losses) != 6 {
		t.Fatalf("profile count %d/%d", len(res.Bounds), len(res.Losses))
	}
	if res.KendallTau <= 0 {
		t.Fatalf("bound does not rank training outcomes: tau = %v", res.KendallTau)
	}
}

func TestBoundFidelityErrors(t *testing.T) {
	if _, err := BoundFidelity(context.Background(), nil, 4, 1); err == nil {
		t.Fatal("expected nil env error")
	}
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BoundFidelity(context.Background(), env, 1, 1); err == nil {
		t.Fatal("expected profile-count error")
	}
}
