package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
)

func logf(x float64) float64 { return math.Log(x) }

// GapPoint is the measured optimality gap E[F(w^R)] − F* after R rounds.
type GapPoint struct {
	Rounds int
	Gap    float64
}

// ConvergenceRate measures the empirical optimality gap across training
// horizons under full participation and the theorem's decaying step size,
// validating the O(1/R) shape of Theorem 1. F* is computed by the
// deterministic solver on the pooled data. Cancelling ctx aborts promptly
// with ctx.Err().
func ConvergenceRate(ctx context.Context, env *Environment, horizons []int, seed uint64) ([]GapPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	if len(horizons) == 0 {
		return nil, errors.New("experiment: no horizons")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sorted := append([]int(nil), horizons...)
	sort.Ints(sorted)
	if sorted[0] <= 0 {
		return nil, errors.New("experiment: horizons must be positive")
	}

	opt, err := model.Solve(env.Model, env.Fed.Train, nil, model.SolveOptions{
		MaxIters: 4000, Tolerance: 1e-8,
	})
	if err != nil {
		return nil, fmt.Errorf("reference optimum: %w", err)
	}
	fstar, err := env.Model.Loss(opt, env.Fed.Train)
	if err != nil {
		return nil, err
	}

	out := make([]GapPoint, 0, len(sorted))
	for _, r := range sorted {
		sampler, err := fl.NewFullSampler(env.Fed.NumClients())
		if err != nil {
			return nil, err
		}
		cfg := fl.Config{
			Rounds:     r,
			LocalSteps: env.Opts.LocalSteps,
			BatchSize:  env.Opts.BatchSize,
			Schedule: fl.TheoremDecay{
				L: env.Cal.L, Mu: env.Cal.Mu, E: env.Opts.LocalSteps,
			},
			EvalEvery: r, // final evaluation only
			Seed:      seed,
		}
		runner := &fl.Runner{
			Model: env.Model, Fed: env.Fed, Config: cfg,
			Sampler: sampler, Aggregator: fl.UnbiasedAggregator{},
		}
		res, err := engine.Run(ctx, runner.Spec(), env.newBackend(true))
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("horizon %d: %w", r, err)
		}
		gap := res.FinalLoss - fstar
		if gap < 0 {
			gap = 0 // stochastic evaluation can dip below the numeric F*
		}
		out = append(out, GapPoint{Rounds: r, Gap: gap})
	}
	return out, nil
}

// FitRateExponent least-squares fits gap ≈ C·R^p on log scales and returns
// p (Theorem 1 predicts p ≈ −1 in the variance-dominated regime). Points
// with zero gap are skipped; at least two positive points are required.
func FitRateExponent(points []GapPoint) (float64, error) {
	var xs, ys []float64
	for _, pt := range points {
		if pt.Gap > 0 {
			xs = append(xs, logf(float64(pt.Rounds)))
			ys = append(ys, logf(pt.Gap))
		}
	}
	if len(xs) < 2 {
		return 0, errors.New("experiment: need two positive-gap points to fit a rate")
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, errors.New("experiment: degenerate horizons")
	}
	return num / den, nil
}
