package experiment

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestArtifactsRoundTrip(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 15
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	points, err := EquilibriumSweep(context.Background(), env, SweepV, []float64{0, 4000})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	a, err := NewArtifacts(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SaveComparison("setup1_fig4", cmp); err != nil {
		t.Fatal(err)
	}
	if err := a.SaveSweep("setup1_table5", Setup1, SweepV, points, false); err != nil {
		t.Fatal(err)
	}
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}

	// Report exists and contains the expected sections.
	report, err := os.ReadFile(filepath.Join(a.Dir(), "setup1_fig4_report.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "Table II") {
		t.Fatal("report missing table section")
	}
	// One CSV per scheme.
	for _, scheme := range []string{"proposed", "weighted", "uniform"} {
		csv, err := os.ReadFile(filepath.Join(a.Dir(), "setup1_fig4_"+scheme+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(csv), "time_s,loss,accuracy") {
			t.Fatalf("%s CSV malformed", scheme)
		}
	}
	// Manifest parses and indexes everything.
	raw, err := os.ReadFile(filepath.Join(a.Dir(), "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Entries []struct {
			Kind string `json:"kind"`
			Path string `json:"path"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 5 { // 1 report + 3 series + 1 sweep
		t.Fatalf("manifest entries %d", len(m.Entries))
	}
	for _, e := range m.Entries {
		if _, err := os.Stat(filepath.Join(a.Dir(), e.Path)); err != nil {
			t.Fatalf("manifest references missing file %s", e.Path)
		}
	}
}

func TestArtifactsErrors(t *testing.T) {
	if _, err := NewArtifacts(""); err == nil {
		t.Fatal("expected empty-dir error")
	}
	a, err := NewArtifacts(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SaveComparison("x", nil); err == nil {
		t.Fatal("expected nil comparison error")
	}
	if err := a.SaveSweep("x", Setup1, SweepV, nil, false); err == nil {
		t.Fatal("expected empty sweep error")
	}
}
