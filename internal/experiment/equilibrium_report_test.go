package experiment

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteEquilibriumReport(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	eq, err := env.Params.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteEquilibriumReport(&sb, env.Params, eq); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Stackelberg equilibrium", "v_t", "direction", "q*_n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if err := WriteEquilibriumReport(&sb, nil, eq); err == nil {
		t.Fatal("expected nil params error")
	}

	a, err := NewArtifacts(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SaveEquilibrium("setup1", Setup1, env.Params, eq); err != nil {
		t.Fatal(err)
	}
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(a.Dir(), "setup1_equilibrium.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "Stackelberg") {
		t.Fatal("persisted equilibrium report malformed")
	}
}
