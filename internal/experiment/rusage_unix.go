//go:build unix

package experiment

import (
	"runtime"
	"syscall"
)

// peakRSSMB reports the process's peak resident set size in MiB — the
// coordinator-memory signal the fleet benchmark records. Maxrss is KiB on
// Linux and bytes on Darwin.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	kib := float64(ru.Maxrss)
	if runtime.GOOS == "darwin" {
		kib /= 1024
	}
	return kib / 1024
}
