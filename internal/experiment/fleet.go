package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/stats"
)

// FleetBenchConfig sizes one priced fleet-scale benchmark: a full
// data → calibration → pricing → training-round pipeline at a synthesized
// fleet size, the measurement behind BENCH_PR10.json and the CI bench job.
type FleetBenchConfig struct {
	// Setup selects the paper setup (Setup1 by default — the synthetic data
	// keeps generation O(shards) at any fleet size).
	Setup SetupID
	// Fleet is the total number of synthesized clients.
	Fleet int
	// Shards is the number of distinct data shards shared across the fleet
	// (Options.FleetShards; default 40 — the paper's device count).
	Shards int
	// GroupSize is the hierarchical aggregation group size K: clients fold
	// in groups of K and only ⌈Fleet/K⌉ partials reach the coordinator. On
	// the cluster backend the fleet multiplexes onto ⌈Fleet/K⌉ sockets.
	// 0/1 aggregates flat.
	GroupSize int
	// Backend selects the execution substrate.
	Backend Backend
	// Rounds, LocalSteps, and BatchSize size the training work per client
	// (defaults 1, 1, 8 — the benchmark measures orchestration and
	// aggregation scale, not SGD throughput).
	Rounds     int
	LocalSteps int
	BatchSize  int
	Seed       uint64
}

func (c *FleetBenchConfig) defaults() error {
	if c.Setup == 0 {
		c.Setup = Setup1
	}
	if c.Shards == 0 {
		c.Shards = 40
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.LocalSteps == 0 {
		c.LocalSteps = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Fleet < 2 {
		return errors.New("experiment: fleet bench needs at least two clients")
	}
	if c.Shards > c.Fleet {
		c.Shards = c.Fleet
	}
	return nil
}

// FleetBenchResult is one measured point: where the wall-clock went
// (environment build, pricing, training), how much of the fleet a priced
// round actually carried, and the process-level scale signals — peak RSS and,
// on the cluster backend, the peak concurrent socket count, which hierarchical
// multiplexing must hold at ⌈Fleet/GroupSize⌉ instead of Fleet.
type FleetBenchResult struct {
	Setup        int     `json:"setup"`
	Fleet        int     `json:"fleet"`
	Shards       int     `json:"shards"`
	GroupSize    int     `json:"group_size"`
	Backend      string  `json:"backend"`
	Rounds       int     `json:"rounds"`
	Participants int     `json:"participants"` // summed over rounds
	BuildS       float64 `json:"build_s"`
	PriceS       float64 `json:"price_s"`
	TrainS       float64 `json:"train_s"`
	RoundS       float64 `json:"round_s"` // TrainS / Rounds
	Sockets      int     `json:"sockets"` // peak concurrent sockets (0 on local)
	PeakRSSMB    float64 `json:"peak_rss_mb"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
}

// FleetBench runs one priced round benchmark at fleet scale: it builds the
// environment with FleetShards sharing, solves the Stackelberg equilibrium
// over the full fleet, trains cfg.Rounds rounds on the selected backend with
// hierarchical aggregation, and reports the timing split. Peak RSS is the
// process high-water mark, so when several benchmarks share a process, run
// them in ascending fleet order for per-point numbers to be meaningful.
func FleetBench(ctx context.Context, cfg FleetBenchConfig) (*FleetBenchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	opts := Options{
		NumClients:  cfg.Fleet,
		Rounds:      cfg.Rounds,
		LocalSteps:  cfg.LocalSteps,
		BatchSize:   cfg.BatchSize,
		EvalEvery:   cfg.Rounds,
		Calibration: 1,
		Seed:        cfg.Seed,
		Runs:        1,
	}
	if cfg.Shards < cfg.Fleet {
		opts.FleetShards = cfg.Shards
	}

	start := time.Now()
	env, err := BuildSetup(ctx, cfg.Setup, opts)
	if err != nil {
		return nil, fmt.Errorf("fleet bench build: %w", err)
	}
	buildS := time.Since(start).Seconds()

	start = time.Now()
	eq, err := env.Equilibrium()
	if err != nil {
		return nil, fmt.Errorf("fleet bench pricing: %w", err)
	}
	priceS := time.Since(start).Seconds()

	q := env.Params.ClampQ(eq.Q)
	sampler, err := fl.NewBernoulliSampler(q, stats.NewRNG(cfg.Seed^0xF1EE7))
	if err != nil {
		return nil, err
	}
	runner := &fl.Runner{
		Model: env.Model,
		Fed:   env.Fed,
		Config: fl.Config{
			Rounds:     cfg.Rounds,
			LocalSteps: cfg.LocalSteps,
			BatchSize:  cfg.BatchSize,
			Schedule:   fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
			EvalEvery:  cfg.Rounds,
			Seed:       cfg.Seed ^ 0xDEADBEEF,
		},
		Sampler:    sampler,
		Aggregator: fl.UnbiasedAggregator{},
	}
	spec := runner.Spec()
	spec.GroupSize = cfg.GroupSize

	var backend engine.ExecutionBackend
	if cfg.Backend == BackendCluster {
		backend = engine.NewClusterBackend(engine.ClusterOptions{})
	} else {
		backend = engine.NewLocalBackend(engine.LocalOptions{Parallel: true})
	}
	participants, sockets := 0, 0
	spec.OnRound = func(m engine.RoundMetrics) {
		participants += m.Participants
		if counter, ok := backend.(interface{ Sockets() int }); ok {
			if s := counter.Sockets(); s > sockets {
				sockets = s
			}
		}
	}
	start = time.Now()
	if _, err := engine.Run(ctx, spec, backend); err != nil {
		return nil, fmt.Errorf("fleet bench train: %w", err)
	}
	trainS := time.Since(start).Seconds()

	return &FleetBenchResult{
		Setup:        int(cfg.Setup),
		Fleet:        cfg.Fleet,
		Shards:       cfg.Shards,
		GroupSize:    cfg.GroupSize,
		Backend:      cfg.Backend.String(),
		Rounds:       cfg.Rounds,
		Participants: participants,
		BuildS:       buildS,
		PriceS:       priceS,
		TrainS:       trainS,
		RoundS:       trainS / float64(cfg.Rounds),
		Sockets:      sockets,
		PeakRSSMB:    peakRSSMB(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
	}, nil
}
