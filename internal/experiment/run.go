package experiment

import (
	"errors"
	"fmt"
	"time"

	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/sim"
	"unbiasedfl/internal/stats"
)

// SchemeRun is one pricing scheme's full outcome on an environment: the
// priced market, the induced training trajectories averaged over runs, and
// the client-side economics.
type SchemeRun struct {
	Scheme  game.Scheme
	Outcome *game.Outcome
	// Points holds the run-averaged (time, loss, accuracy) trajectory.
	Points []sim.TimedPoint
	// FinalLoss and FinalAccuracy are averages of the last evaluation.
	FinalLoss     float64
	FinalAccuracy float64
	// TotalClientUtility is Σ_n U_n at the priced outcome (improvement
	// terms omitted — they cancel in cross-scheme gains; see Table IV).
	TotalClientUtility float64
	// NegativePayments counts clients with P_n < 0.
	NegativePayments int
}

// RunScheme prices the environment's market with the scheme, trains the
// model Opts.Runs times with the induced participation levels, and averages
// the trajectories.
func RunScheme(env *Environment, scheme game.Scheme) (*SchemeRun, error) {
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	outcome, err := env.Params.SolveScheme(scheme)
	if err != nil {
		return nil, fmt.Errorf("%v pricing: %w", scheme, err)
	}
	return runPriced(env, scheme, outcome)
}

// runPriced trains under a fixed priced outcome with parallel local updates.
func runPriced(env *Environment, scheme game.Scheme, outcome *game.Outcome) (*SchemeRun, error) {
	return runPricedParallel(env, scheme, outcome, true)
}

// runPricedParallel is runPriced with the runner's parallelism explicit;
// callers that already saturate the CPU at a coarser grain (parallel sweep
// points) pass false to avoid oversubscribing GOMAXPROCS with nested pools.
// Results are identical either way.
func runPricedParallel(env *Environment, scheme game.Scheme, outcome *game.Outcome, parallel bool) (*SchemeRun, error) {
	// The unbiased estimator needs q > 0; clamp priced-out clients to the
	// game's floor (they almost never participate but remain reachable).
	q := make([]float64, len(outcome.Q))
	for i, qi := range outcome.Q {
		if qi < env.Params.QMin {
			qi = env.Params.QMin
		}
		if qi > env.Params.QMax {
			qi = env.Params.QMax
		}
		q[i] = qi
	}

	var (
		times  [][]float64
		losses [][]float64
		accs   [][]float64
	)
	for run := 0; run < env.Opts.Runs; run++ {
		seed := env.Opts.Seed + 7919*uint64(run+1) + uint64(scheme)<<24
		sampler, err := fl.NewBernoulliSampler(q, stats.NewRNG(seed))
		if err != nil {
			return nil, err
		}
		cfg := fl.Config{
			Rounds:     env.Opts.Rounds,
			LocalSteps: env.Opts.LocalSteps,
			BatchSize:  env.Opts.BatchSize,
			Schedule:   fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
			EvalEvery:  env.Opts.EvalEvery,
			Seed:       seed ^ 0xDEADBEEF,
		}
		runner := &fl.Runner{
			Model:      env.Model,
			Fed:        env.Fed,
			Config:     cfg,
			Sampler:    sampler,
			Aggregator: fl.UnbiasedAggregator{},
			Parallel:   parallel,
		}
		timed, err := sim.TimedRun(runner, env.Timing)
		if err != nil {
			return nil, fmt.Errorf("%v run %d: %w", scheme, run, err)
		}
		ts := make([]float64, len(timed.Points))
		ls := make([]float64, len(timed.Points))
		as := make([]float64, len(timed.Points))
		for i, pt := range timed.Points {
			ts[i] = pt.Elapsed.Seconds()
			ls[i] = pt.Loss
			as[i] = pt.Accuracy
		}
		times = append(times, ts)
		losses = append(losses, ls)
		accs = append(accs, as)
	}

	meanT, err := stats.SeriesMean(times)
	if err != nil {
		return nil, err
	}
	meanL, err := stats.SeriesMean(losses)
	if err != nil {
		return nil, err
	}
	meanA, err := stats.SeriesMean(accs)
	if err != nil {
		return nil, err
	}
	points := make([]sim.TimedPoint, len(meanT))
	for i := range points {
		points[i] = sim.TimedPoint{
			Elapsed:  time.Duration(meanT[i] * float64(time.Second)),
			Loss:     meanL[i],
			Accuracy: meanA[i],
		}
	}

	utility, err := env.Params.TotalClientUtility(outcome.P, q, nil)
	if err != nil {
		return nil, err
	}
	sr := &SchemeRun{
		Scheme:             scheme,
		Outcome:            outcome,
		Points:             points,
		TotalClientUtility: utility,
		NegativePayments:   countNegative(outcome.P),
	}
	if len(points) > 0 {
		last := points[len(points)-1]
		sr.FinalLoss = last.Loss
		sr.FinalAccuracy = last.Accuracy
	}
	return sr, nil
}

func countNegative(prices []float64) int {
	c := 0
	for _, p := range prices {
		if p < 0 {
			c++
		}
	}
	return c
}

// Comparison holds the three schemes' runs on one environment, the raw
// material for Fig. 4 and Tables II–IV.
type Comparison struct {
	Env     *Environment
	Schemes []*SchemeRun // ordered: proposed, weighted, uniform
}

// Compare runs all three pricing schemes on env.
func Compare(env *Environment) (*Comparison, error) {
	order := []game.Scheme{game.SchemeOptimal, game.SchemeWeighted, game.SchemeUniform}
	out := &Comparison{Env: env, Schemes: make([]*SchemeRun, 0, len(order))}
	for _, s := range order {
		run, err := RunScheme(env, s)
		if err != nil {
			return nil, err
		}
		out.Schemes = append(out.Schemes, run)
	}
	return out, nil
}

// TimeToLossRow extracts each scheme's time to reach the target loss.
// Schemes that never reach it report ok=false.
type TimeToTarget struct {
	Scheme  game.Scheme
	Elapsed time.Duration
	OK      bool
}

// TimesToLoss computes per-scheme time-to-target-loss (Table II).
func (c *Comparison) TimesToLoss(target float64) []TimeToTarget {
	out := make([]TimeToTarget, len(c.Schemes))
	for i, s := range c.Schemes {
		d, ok := sim.TimeToLoss(s.Points, target)
		out[i] = TimeToTarget{Scheme: s.Scheme, Elapsed: d, OK: ok}
	}
	return out
}

// TimesToAccuracy computes per-scheme time-to-target-accuracy (Table III).
func (c *Comparison) TimesToAccuracy(target float64) []TimeToTarget {
	out := make([]TimeToTarget, len(c.Schemes))
	for i, s := range c.Schemes {
		d, ok := sim.TimeToAccuracy(s.Points, target)
		out[i] = TimeToTarget{Scheme: s.Scheme, Elapsed: d, OK: ok}
	}
	return out
}

// AdaptiveLossTarget picks a target loss every scheme eventually reaches:
// the worst scheme's final loss, nudged upward slightly. The paper uses
// fixed per-setup targets tuned to its hardware; an adaptive target keeps
// the comparison meaningful at any scale.
func (c *Comparison) AdaptiveLossTarget() float64 {
	worst := 0.0
	for _, s := range c.Schemes {
		if s.FinalLoss > worst {
			worst = s.FinalLoss
		}
	}
	return worst * 1.02
}

// AdaptiveAccuracyTarget picks an accuracy target every scheme reaches: the
// worst scheme's final accuracy. Using the worst final keeps the target
// reachable by all while still separating the schemes' arrival times.
func (c *Comparison) AdaptiveAccuracyTarget() float64 {
	worst := 1.0
	for _, s := range c.Schemes {
		if s.FinalAccuracy < worst {
			worst = s.FinalAccuracy
		}
	}
	return worst
}

// UtilityGains returns Table IV's two columns: total client utility of the
// proposed scheme minus uniform, and minus weighted.
func (c *Comparison) UtilityGains() (overUniform, overWeighted float64, err error) {
	var opt, uni, wtd *SchemeRun
	for _, s := range c.Schemes {
		switch s.Scheme {
		case game.SchemeOptimal:
			opt = s
		case game.SchemeUniform:
			uni = s
		case game.SchemeWeighted:
			wtd = s
		}
	}
	if opt == nil || uni == nil || wtd == nil {
		return 0, 0, errors.New("experiment: comparison missing a scheme")
	}
	return opt.TotalClientUtility - uni.TotalClientUtility,
		opt.TotalClientUtility - wtd.TotalClientUtility, nil
}
