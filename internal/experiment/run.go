package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"unbiasedfl/internal/checkpoint"
	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/sim"
	"unbiasedfl/internal/stats"
)

// SchemeRun is one pricing scheme's full outcome on an environment: the
// priced market, the induced training trajectories averaged over runs, and
// the client-side economics.
type SchemeRun struct {
	// Scheme is the registry name of the pricing scheme ("proposed",
	// "uniform", "weighted", or any name registered via
	// game.RegisterScheme).
	Scheme  string
	Outcome *game.Outcome
	// Points holds the run-averaged (time, loss, accuracy) trajectory.
	Points []sim.TimedPoint
	// FinalLoss and FinalAccuracy are averages of the last evaluation.
	FinalLoss     float64
	FinalAccuracy float64
	// TotalClientUtility is Σ_n U_n at the priced outcome (improvement
	// terms omitted — they cancel in cross-scheme gains; see Table IV).
	TotalClientUtility float64
	// NegativePayments counts clients with P_n < 0.
	NegativePayments int
}

// RunScheme prices the environment's market with the named scheme (resolved
// through the pricing registry), trains the model Opts.Runs times with the
// induced participation levels, and averages the trajectories. Cancelling
// ctx aborts promptly with ctx.Err(). Observers receive SchemeSolved, then
// per-round RoundStart/RoundEnd streams, then SchemeDone.
func RunScheme(ctx context.Context, env *Environment, scheme string, obs ...Observer) (*SchemeRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	ps, err := game.SchemeByName(scheme)
	if err != nil {
		return nil, err
	}
	return runRegistered(ctx, env, ps, combineObservers(obs))
}

// runRegistered solves and trains one resolved scheme. Pricing flows
// through the environment's equilibrium memo-cache, so re-running a scheme
// on the same environment (repeated Compare calls, RunScheme after
// Compare) prices once.
func runRegistered(ctx context.Context, env *Environment, ps game.PricingScheme, obs Observer) (*SchemeRun, error) {
	outcome, err := env.priceScheme(ps, env.Params)
	if err != nil {
		return nil, fmt.Errorf("%v pricing: %w", ps.Name(), err)
	}
	emit(obs, SchemeSolved{Scheme: ps.Name(), Outcome: outcome})
	run, err := runPricedParallel(ctx, env, ps.Name(), outcome, true, obs)
	if err != nil {
		return nil, err
	}
	emit(obs, SchemeDone{Scheme: ps.Name(), Run: run})
	return run, nil
}

// runPricedParallel trains under a fixed priced outcome on the
// environment's selected execution backend. The parallel flag makes the
// local backend's worker pool explicit; callers that already saturate the
// CPU at a coarser grain (parallel sweep points) pass false to avoid
// oversubscribing GOMAXPROCS with nested pools. Results are identical
// either way.
func runPricedParallel(
	ctx context.Context, env *Environment, scheme string, outcome *game.Outcome,
	parallel bool, obs Observer,
) (*SchemeRun, error) {
	// The unbiased estimator needs q > 0; clamp priced-out clients to the
	// game's floor (they almost never participate but remain reachable).
	q := env.Params.ClampQ(outcome.Q)

	// Elastic runs re-price the sub-game over each epoch's active fleet. The
	// scheme is resolved once here; each run gets its own warm repricer so
	// run legs stay independent.
	var epochScheme game.PricingScheme
	if env.Membership != nil {
		ps, err := game.SchemeByName(scheme)
		if err != nil {
			return nil, err
		}
		epochScheme = ps
	}

	var (
		times  [][]float64
		losses [][]float64
		accs   [][]float64
	)
	for run := 0; run < env.Opts.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := env.Opts.Seed + 7919*uint64(run+1) + schemeSeedSalt(scheme)
		sampler, err := fl.NewBernoulliSampler(q, stats.NewRNG(seed))
		if err != nil {
			return nil, err
		}
		cfg := fl.Config{
			Rounds:     env.Opts.Rounds,
			LocalSteps: env.Opts.LocalSteps,
			BatchSize:  env.Opts.BatchSize,
			Schedule:   fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
			EvalEvery:  env.Opts.EvalEvery,
			Seed:       seed ^ 0xDEADBEEF,
		}
		runner := &fl.Runner{
			Model:      env.Model,
			Fed:        env.Fed,
			Config:     cfg,
			Sampler:    sampler,
			Aggregator: fl.UnbiasedAggregator{},
		}
		if obs != nil {
			run := run
			runner.OnRoundStart = func(round int) {
				obs.OnEvent(RoundStart{Scheme: scheme, Run: run, Round: round})
			}
			runner.OnRound = func(m fl.RoundMetrics) {
				obs.OnEvent(RoundEnd{
					Scheme:       scheme,
					Run:          run,
					Round:        m.Round,
					Participants: m.Participants,
					Evaluated:    m.Evaluated,
					Loss:         m.GlobalLoss,
					Accuracy:     m.TestAccuracy,
				})
			}
		}
		spec := runner.Spec()
		spec.GroupSize = env.GroupSize
		if env.Membership != nil {
			rp, err := game.NewRepricer(env.Params, epochScheme)
			if err != nil {
				return nil, err
			}
			liveQ := append([]float64(nil), q...)
			spec.Membership = env.Membership
			spec.OnEpoch = func(r engine.Roster) error {
				if _, err := rp.Reprice(r.Active, liveQ, nil); err != nil {
					return fmt.Errorf("epoch %d re-pricing: %w", r.Epoch, err)
				}
				return sampler.SetQ(liveQ)
			}
		}
		mgr, err := env.openRunCheckpoint(&spec, scheme, run, seed)
		if err != nil {
			return nil, err
		}
		timed, err := sim.TimedRun(ctx, spec, env.newBackend(parallel), env.Timing)
		if mgr != nil {
			if cerr := mgr.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("%v run %d: %w", scheme, run, err)
		}
		ts := make([]float64, len(timed.Points))
		ls := make([]float64, len(timed.Points))
		as := make([]float64, len(timed.Points))
		for i, pt := range timed.Points {
			ts[i] = pt.Elapsed.Seconds()
			ls[i] = pt.Loss
			as[i] = pt.Accuracy
		}
		times = append(times, ts)
		losses = append(losses, ls)
		accs = append(accs, as)
	}

	meanT, err := stats.SeriesMean(times)
	if err != nil {
		return nil, err
	}
	meanL, err := stats.SeriesMean(losses)
	if err != nil {
		return nil, err
	}
	meanA, err := stats.SeriesMean(accs)
	if err != nil {
		return nil, err
	}
	points := make([]sim.TimedPoint, len(meanT))
	for i := range points {
		points[i] = sim.TimedPoint{
			Elapsed:  time.Duration(meanT[i] * float64(time.Second)),
			Loss:     meanL[i],
			Accuracy: meanA[i],
		}
	}

	utility, err := env.Params.TotalClientUtility(outcome.P, q, nil)
	if err != nil {
		return nil, err
	}
	sr := &SchemeRun{
		Scheme:             scheme,
		Outcome:            outcome,
		Points:             points,
		TotalClientUtility: utility,
		NegativePayments:   countNegative(outcome.P),
	}
	if len(points) > 0 {
		last := points[len(points)-1]
		sr.FinalLoss = last.Loss
		sr.FinalAccuracy = last.Accuracy
	}
	return sr, nil
}

// openRunCheckpoint wires durability into one (scheme, run) training leg
// when the environment carries a checkpoint prefix: the spec commits every
// round boundary to "<prefix>-<scheme>-run<i>.ckpt", and — in resume mode —
// picks up from whatever that file already holds. Returns nil with no error
// when checkpointing is off.
func (e *Environment) openRunCheckpoint(spec *engine.Spec, scheme string, run int, seed uint64) (*checkpoint.Manager, error) {
	if e.Checkpoint == "" {
		return nil, nil
	}
	path := fmt.Sprintf("%s-%s-run%d.ckpt", e.Checkpoint, scheme, run)
	meta := checkpoint.Meta{
		Label:   fmt.Sprintf("%s/run%d", scheme, run),
		Seed:    seed,
		Clients: e.Opts.NumClients,
		Rounds:  e.Opts.Rounds,
	}
	var (
		mgr *checkpoint.Manager
		st  *engine.RunState
		err error
	)
	if e.CheckpointResume {
		mgr, st, err = checkpoint.Attach(path, meta, checkpoint.Options{})
	} else {
		mgr, err = checkpoint.Create(path, meta, checkpoint.Options{})
	}
	if err != nil {
		return nil, err
	}
	spec.Resume = st
	spec.OnRoundCommit = mgr.Commit
	return mgr, nil
}

// schemeSeedSalt keeps per-scheme training seeds distinct, matching the
// historical enum-based salt for the built-ins so trajectories are
// bit-identical with the pre-registry code, and hashing names for
// third-party schemes.
func schemeSeedSalt(scheme string) uint64 {
	switch scheme {
	case game.SchemeNameProposed:
		return uint64(game.SchemeOptimal) << 24
	case game.SchemeNameUniform:
		return uint64(game.SchemeUniform) << 24
	case game.SchemeNameWeighted:
		return uint64(game.SchemeWeighted) << 24
	}
	// FNV-1a over the name, shifted onto the same byte as the enum salt.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(scheme); i++ {
		h ^= uint64(scheme[i])
		h *= 1099511628211
	}
	return (h | 0x04) << 24 // | 0x04 keeps clear of the builtin enum values
}

func countNegative(prices []float64) int {
	c := 0
	for _, p := range prices {
		if p < 0 {
			c++
		}
	}
	return c
}

// Comparison holds every registered scheme's run on one environment, the
// raw material for Fig. 4 and Tables II–IV.
type Comparison struct {
	Env *Environment
	// Schemes is ordered by the pricing registry: the paper's trio first
	// (proposed, weighted, uniform), then third-party registrations in
	// registration order.
	Schemes []*SchemeRun
}

// Compare runs every pricing scheme in the registry on env — the paper's
// built-in trio plus any scheme added via game.RegisterScheme. Cancelling
// ctx aborts promptly with ctx.Err().
func Compare(ctx context.Context, env *Environment, obs ...Observer) (*Comparison, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	o := combineObservers(obs)
	names := game.SchemeNames()
	out := &Comparison{Env: env, Schemes: make([]*SchemeRun, 0, len(names))}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ps, err := game.SchemeByName(name)
		if err != nil {
			// Unregistered between listing and lookup; skip rather than fail.
			continue
		}
		run, err := runRegistered(ctx, env, ps, o)
		if err != nil {
			return nil, err
		}
		out.Schemes = append(out.Schemes, run)
	}
	if len(out.Schemes) == 0 {
		return nil, errors.New("experiment: no pricing schemes registered")
	}
	return out, nil
}

// TimeToTarget is one scheme's time to reach a target metric. Schemes that
// never reach it report OK=false.
type TimeToTarget struct {
	Scheme  string
	Elapsed time.Duration
	OK      bool
}

// TimesToLoss computes per-scheme time-to-target-loss (Table II).
func (c *Comparison) TimesToLoss(target float64) []TimeToTarget {
	out := make([]TimeToTarget, len(c.Schemes))
	for i, s := range c.Schemes {
		d, ok := sim.TimeToLoss(s.Points, target)
		out[i] = TimeToTarget{Scheme: s.Scheme, Elapsed: d, OK: ok}
	}
	return out
}

// TimesToAccuracy computes per-scheme time-to-target-accuracy (Table III).
func (c *Comparison) TimesToAccuracy(target float64) []TimeToTarget {
	out := make([]TimeToTarget, len(c.Schemes))
	for i, s := range c.Schemes {
		d, ok := sim.TimeToAccuracy(s.Points, target)
		out[i] = TimeToTarget{Scheme: s.Scheme, Elapsed: d, OK: ok}
	}
	return out
}

// Scheme returns the named scheme's run, or nil when the comparison does
// not include it.
func (c *Comparison) Scheme(name string) *SchemeRun {
	for _, s := range c.Schemes {
		if s.Scheme == name {
			return s
		}
	}
	return nil
}

// AdaptiveLossTarget picks a target loss every scheme eventually reaches:
// the worst scheme's final loss, nudged upward slightly. The paper uses
// fixed per-setup targets tuned to its hardware; an adaptive target keeps
// the comparison meaningful at any scale.
func (c *Comparison) AdaptiveLossTarget() float64 {
	worst := 0.0
	for _, s := range c.Schemes {
		if s.FinalLoss > worst {
			worst = s.FinalLoss
		}
	}
	return worst * 1.02
}

// AdaptiveAccuracyTarget picks an accuracy target every scheme reaches: the
// worst scheme's final accuracy. Using the worst final keeps the target
// reachable by all while still separating the schemes' arrival times.
func (c *Comparison) AdaptiveAccuracyTarget() float64 {
	worst := 1.0
	for _, s := range c.Schemes {
		if s.FinalAccuracy < worst {
			worst = s.FinalAccuracy
		}
	}
	return worst
}

// UtilityGains returns Table IV's two columns: total client utility of the
// proposed scheme minus uniform, and minus weighted.
func (c *Comparison) UtilityGains() (overUniform, overWeighted float64, err error) {
	opt := c.Scheme(game.SchemeNameProposed)
	uni := c.Scheme(game.SchemeNameUniform)
	wtd := c.Scheme(game.SchemeNameWeighted)
	if opt == nil || uni == nil || wtd == nil {
		return 0, 0, errors.New("experiment: comparison missing a built-in scheme")
	}
	return opt.TotalClientUtility - uni.TotalClientUtility,
		opt.TotalClientUtility - wtd.TotalClientUtility, nil
}
