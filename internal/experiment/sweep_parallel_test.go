package experiment

import (
	"reflect"
	"runtime"
	"testing"
)

// TestSweepDeterministicAcrossParallelism pins parallel sweep execution to
// the sequential reference: every point owns its seeds and perturbed game,
// so the worker count must not change a single bit of the results.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 10
	opts.Runs = 1
	env, err := BuildSetup(Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1000, 4000, 8000}

	seq, err := sweepParallel(env, SweepV, values, 1)
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(4)
	par, err := sweepParallel(env, SweepV, values, 4)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep results differ across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}

	// The public entry point must agree with both.
	pub, err := Sweep(env, SweepV, values)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, pub) {
		t.Fatalf("Sweep differs from sequential reference:\nseq: %+v\npub: %+v", seq, pub)
	}
}

// TestSweepParallelPropagatesError ensures a failing point surfaces from the
// concurrent path too.
func TestSweepParallelPropagatesError(t *testing.T) {
	env, err := BuildSetup(Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	if _, err := sweepParallel(env, SweepC, []float64{10, -5, 20}, 4); err == nil {
		t.Fatal("expected error from invalid sweep value")
	}
}
