package experiment

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"unbiasedfl/internal/game"
)

// TestSweepDeterministicAcrossParallelism pins parallel sweep execution to
// the sequential reference: every point owns its seeds and perturbed game,
// so the worker count must not change a single bit of the results.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 10
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1000, 4000, 8000}

	seq, err := sweepParallel(context.Background(), env, game.SchemeNameProposed, SweepV, values, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(4)
	par, err := sweepParallel(context.Background(), env, game.SchemeNameProposed, SweepV, values, 4, nil)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep results differ across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}

	// The public entry point must agree with both.
	pub, err := Sweep(context.Background(), env, SweepV, values)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, pub) {
		t.Fatalf("Sweep differs from sequential reference:\nseq: %+v\npub: %+v", seq, pub)
	}
}

// TestEquilibriumSweepMatchesColdSolves pins the batched, warm-started
// equilibrium sweep to the per-point cold reference: game.SolveMany's
// engine must not change a single bit of the reported economics, and the
// SweepPointDone events must arrive in ascending index order.
func TestEquilibriumSweepMatchesColdSolves(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{0, 500, 2000, 4000, 16000, 80000}
	var got []int
	obs := ObserverFunc(func(e Event) {
		if d, ok := e.(SweepPointDone); ok {
			got = append(got, d.Index)
		}
	})
	points, err := EquilibriumSweep(context.Background(), env, SweepV, values, obs)
	if err != nil {
		t.Fatal(err)
	}
	for i, val := range values {
		params, err := perturbedParams(env, SweepV, val)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := params.SolveKKT()
		if err != nil {
			t.Fatal(err)
		}
		var meanQ float64
		for _, q := range eq.Q {
			meanQ += q / float64(len(eq.Q))
		}
		want := SweepPoint{
			Value:            val,
			ServerObj:        eq.ServerObj,
			MeanQ:            meanQ,
			NegativePayments: eq.NegativePayments(),
		}
		if points[i] != want {
			t.Fatalf("point %d drifted from cold solve:\nbatch: %+v\ncold:  %+v", i, points[i], want)
		}
		if i >= len(got) || got[i] != i {
			t.Fatalf("SweepPointDone order broken: %v", got)
		}
	}

	// A failing point reports its sweep value, as the sequential code did.
	_, err = EquilibriumSweep(context.Background(), env, SweepC, []float64{10, -5}, nil)
	if err == nil || !strings.Contains(err.Error(), "non-positive mean cost") {
		t.Fatalf("expected the originating point error, got: %v", err)
	}
}

// TestSweepParallelPropagatesError ensures a failing point surfaces from the
// concurrent path too, and that the originating error wins over the
// context.Canceled artifacts the internal fail-fast abort induces in points
// still in flight.
func TestSweepParallelPropagatesError(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	_, err = sweepParallel(context.Background(), env, game.SchemeNameProposed, SweepC, []float64{10, -5, 20}, 4, nil)
	if err == nil {
		t.Fatal("expected error from invalid sweep value")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("fail-fast abort leaked as the sweep error: %v", err)
	}
	if !strings.Contains(err.Error(), "non-positive mean cost") {
		t.Fatalf("expected the originating point error, got: %v", err)
	}
}
