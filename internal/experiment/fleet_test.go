package experiment

import (
	"context"
	"math"
	"testing"
)

// TestFleetShardsBuild pins the fleet-synthesis invariants: data and
// calibration stay at shard scale (shared by pointer, G replicated with the
// shard), while the economics — weights, costs, valuations, pricing — cover
// every synthesized client individually.
func TestFleetShardsBuild(t *testing.T) {
	opts := tinyOptions()
	opts.NumClients = 57 // deliberately not a multiple of the shard count
	opts.FleetShards = 6
	opts.Rounds = 4
	env, err := BuildSetup(context.Background(), Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}
	fed := env.Fed
	if fed.NumClients() != 57 {
		t.Fatalf("fleet has %d clients, want 57", fed.NumClients())
	}
	distinct := map[any]bool{}
	for n := 0; n < fed.NumClients(); n++ {
		if fed.Clients[n] != fed.Clients[n%6] {
			t.Fatalf("client %d does not share shard %d by pointer", n, n%6)
		}
		if env.Cal.G[n] != env.Cal.G[n%6] {
			t.Fatalf("client %d has G=%v, shard %d has %v", n, env.Cal.G[n], n%6, env.Cal.G[n%6])
		}
		distinct[fed.Clients[n]] = true
	}
	if len(distinct) != 6 {
		t.Fatalf("fleet holds %d distinct shards, want 6", len(distinct))
	}
	var wsum float64
	for _, w := range fed.Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("replicated weights sum to %v, want 1", wsum)
	}
	// The pooled eval sets are de-duplicated: one copy of each shard.
	total := 0
	for n := 0; n < 6; n++ {
		total += fed.Clients[n].Len()
	}
	if fed.Train.Len() != total {
		t.Fatalf("pooled train set has %d samples, want the %d of the 6 distinct shards", fed.Train.Len(), total)
	}
	// Economics are per-client: 57 costs, 57 prices.
	if env.Params.N() != 57 {
		t.Fatalf("game covers %d clients, want 57", env.Params.N())
	}
	if _, err := env.Equilibrium(); err != nil {
		t.Fatalf("pricing the synthesized fleet: %v", err)
	}
}

// TestFleetShardsValidate rejects incoherent shard counts.
func TestFleetShardsValidate(t *testing.T) {
	for _, tc := range []struct {
		shards int
		ok     bool
	}{{-1, false}, {1, false}, {7, false}, {0, true}, {2, true}, {6, true}} {
		opts := tinyOptions()
		opts.FleetShards = tc.shards
		if err := opts.validate(); (err == nil) != tc.ok {
			t.Fatalf("FleetShards=%d: err=%v, want ok=%v", tc.shards, err, tc.ok)
		}
	}
}

// TestFleetBenchSmoke runs the fleet benchmark end to end at toy scale on
// both backends, checking the scale signals it exists to record: a priced
// round completes, participants flow, and the cluster multiplexes the fleet
// onto at most ⌈fleet/K⌉ sockets.
func TestFleetBenchSmoke(t *testing.T) {
	res, err := FleetBench(context.Background(), FleetBenchConfig{
		Fleet: 96, Shards: 8, GroupSize: 12, Backend: BackendLocal, Rounds: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants == 0 {
		t.Fatal("local fleet round carried no participants")
	}
	if res.Sockets != 0 {
		t.Fatalf("local backend reported %d sockets", res.Sockets)
	}
	if res.PeakRSSMB <= 0 {
		t.Fatalf("peak RSS %v not recorded", res.PeakRSSMB)
	}

	cres, err := FleetBench(context.Background(), FleetBenchConfig{
		Fleet: 96, Shards: 8, GroupSize: 12, Backend: BackendCluster, Rounds: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Participants != res.Participants {
		t.Fatalf("cluster carried %d participants, local %d — the backends diverged",
			cres.Participants, res.Participants)
	}
	if cres.Sockets == 0 || cres.Sockets > 8 {
		t.Fatalf("cluster used %d sockets for a 96-client fleet at K=12, want 1..8", cres.Sockets)
	}
}
