package experiment

import (
	"fmt"

	"unbiasedfl/internal/engine"
)

// Backend selects the execution substrate every training run launched from
// an Environment uses. The orchestrated round protocol is identical either
// way, so results are bit-identical across backends.
type Backend int

const (
	// BackendLocal executes local updates in-process through the engine's
	// zero-alloc worker-pool backend (the default).
	BackendLocal Backend = iota
	// BackendCluster executes each client as a real TCP socket node on
	// loopback behind the engine's cluster backend.
	BackendCluster
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendLocal:
		return "local"
	case BackendCluster:
		return "cluster"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend maps a command-line name ("local", "cluster") to a Backend.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "local":
		return BackendLocal, nil
	case "cluster":
		return BackendCluster, nil
	default:
		return 0, fmt.Errorf("experiment: unknown backend %q (want local or cluster)", name)
	}
}

// newBackend builds a fresh execution backend for one run. parallel applies
// to the local backend only: callers that already saturate the CPU at a
// coarser grain (parallel sweep points) pass false to avoid oversubscribing
// GOMAXPROCS with nested pools. Results are identical either way.
func (e *Environment) newBackend(parallel bool) engine.ExecutionBackend {
	if e.Exec == BackendCluster {
		return engine.NewClusterBackend(engine.ClusterOptions{RoundTimeout: e.RoundTimeout})
	}
	return engine.NewLocalBackend(engine.LocalOptions{Parallel: parallel})
}
