package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteComparisonReport renders a Fig.-4-style report for one setup: the
// averaged (time, loss, accuracy) series per scheme plus the Table-II/III/IV
// rows, as markdown.
func WriteComparisonReport(w io.Writer, c *Comparison) error {
	if _, err := fmt.Fprintf(w, "## %v — pricing-scheme comparison (Fig. 4)\n\n", c.Env.ID); err != nil {
		return err
	}
	for _, s := range c.Schemes {
		if _, err := fmt.Fprintf(w, "### %v (spent %.2f of budget %.2f)\n\n",
			s.Scheme, s.Outcome.Spent, c.Env.Params.B); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, "| time (s) | global loss | test accuracy |"); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, "|---:|---:|---:|"); err != nil {
			return err
		}
		for _, pt := range s.Points {
			if _, err := fmt.Fprintf(w, "| %.1f | %.4f | %.4f |\n",
				pt.Elapsed.Seconds(), pt.Loss, pt.Accuracy); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	lossTarget := c.AdaptiveLossTarget()
	accTarget := c.AdaptiveAccuracyTarget()
	if _, err := fmt.Fprintf(w,
		"### Time to target loss %.4f (Table II) and accuracy %.4f (Table III)\n\n",
		lossTarget, accTarget); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| scheme | time to loss | time to accuracy |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---:|---:|"); err != nil {
		return err
	}
	tl := c.TimesToLoss(lossTarget)
	ta := c.TimesToAccuracy(accTarget)
	for i := range tl {
		if _, err := fmt.Fprintf(w, "| %v | %s | %s |\n",
			tl[i].Scheme, fmtTarget(tl[i]), fmtTarget(ta[i])); err != nil {
			return err
		}
	}
	overU, overW, err := c.UtilityGains()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"\n### Total client utility gain (Table IV)\n\n"+
			"proposed − uniform: %.2f; proposed − weighted: %.2f\n\n", overU, overW)
	return err
}

func fmtTarget(t TimeToTarget) string {
	if !t.OK {
		return "not reached"
	}
	return fmt.Sprintf("%.1f s", t.Elapsed.Seconds())
}

// WriteSweepReport renders a Figs.-5/6/7-style parameter sweep as markdown.
func WriteSweepReport(w io.Writer, kind SweepKind, points []SweepPoint, trained bool) error {
	if _, err := fmt.Fprintf(w, "## Impact of %v\n\n", kind); err != nil {
		return err
	}
	header := "| value | server bound | mean q | negative payments |"
	rule := "|---:|---:|---:|---:|"
	if trained {
		header = "| value | final loss | final accuracy | server bound | mean q | negative payments |"
		rule = "|---:|---:|---:|---:|---:|---:|"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, rule); err != nil {
		return err
	}
	for _, p := range points {
		var err error
		if trained {
			_, err = fmt.Fprintf(w, "| %.4g | %.4f | %.4f | %.4g | %.3f | %d |\n",
				p.Value, p.FinalLoss, p.FinalAccuracy, p.ServerObj, p.MeanQ, p.NegativePayments)
		} else {
			_, err = fmt.Fprintf(w, "| %.4g | %.4g | %.3f | %d |\n",
				p.Value, p.ServerObj, p.MeanQ, p.NegativePayments)
		}
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteSeriesCSV emits a scheme's trajectory as CSV (time,loss,accuracy),
// convenient for external plotting of the Fig. 4 curves.
func WriteSeriesCSV(w io.Writer, s *SchemeRun) error {
	if _, err := fmt.Fprintln(w, "time_s,loss,accuracy"); err != nil {
		return err
	}
	for _, pt := range s.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%.6f,%.6f\n",
			pt.Elapsed.Seconds(), pt.Loss, pt.Accuracy); err != nil {
			return err
		}
	}
	return nil
}

// FormatDuration renders a duration in the paper's style (whole seconds).
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.0f s", d.Seconds())
}

// Banner renders a section separator for CLI output.
func Banner(title string) string {
	line := strings.Repeat("=", len(title)+8)
	return fmt.Sprintf("%s\n=== %s ===\n%s", line, title, line)
}
