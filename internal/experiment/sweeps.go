package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
)

// SweepPoint is one sweep value's result: the equilibrium economics and the
// induced model quality under the swept pricing scheme.
type SweepPoint struct {
	Value            float64 // the swept parameter's value (v̄, c̄, or B)
	FinalLoss        float64
	FinalAccuracy    float64
	ServerObj        float64
	MeanQ            float64
	NegativePayments int
}

// SweepKind selects the swept parameter.
type SweepKind int

// Swept parameters for Figs. 5–7.
const (
	// SweepV varies the mean intrinsic value v̄ (Fig. 5, Setup 1).
	SweepV SweepKind = iota + 1
	// SweepC varies the mean local cost c̄ (Fig. 6, Setup 2).
	SweepC
	// SweepB varies the server budget B (Fig. 7, Setup 3).
	SweepB
)

// String implements fmt.Stringer.
func (k SweepKind) String() string {
	switch k {
	case SweepV:
		return "mean intrinsic value v"
	case SweepC:
		return "mean local cost c"
	case SweepB:
		return "budget B"
	default:
		return fmt.Sprintf("sweep(%d)", int(k))
	}
}

// Sweep reruns the proposed mechanism across values of one parameter on a
// prepared environment, retraining the model at each point — the paper's
// Figs. 5–7 configuration. See SweepScheme for the general registry-driven
// form.
func Sweep(ctx context.Context, env *Environment, kind SweepKind, values []float64, obs ...Observer) ([]SweepPoint, error) {
	return SweepScheme(ctx, env, game.SchemeNameProposed, kind, values, obs...)
}

// SweepScheme is Sweep under any registered pricing scheme: it reruns the
// named mechanism (with retraining) at each value. α stays at the
// environment's calibrated value throughout, as in the paper. Points are
// independent — each owns its perturbed game, seeds, and runners over the
// shared read-only environment — so they execute concurrently across
// GOMAXPROCS workers; the returned order and values match a sequential run
// exactly, and observers see SweepPointDone events in ascending index
// order. Cancelling ctx aborts promptly with ctx.Err() and no leaked
// workers.
func SweepScheme(
	ctx context.Context, env *Environment, scheme string, kind SweepKind,
	values []float64, obs ...Observer,
) ([]SweepPoint, error) {
	return sweepParallel(ctx, env, scheme, kind, values, runtime.GOMAXPROCS(0), combineObservers(obs))
}

// sweepParallel is SweepScheme with an explicit worker count (1 = sequential).
func sweepParallel(
	ctx context.Context, env *Environment, scheme string, kind SweepKind,
	values []float64, workers int, obs Observer,
) ([]SweepPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	if len(values) == 0 {
		return nil, errors.New("experiment: empty sweep")
	}
	ps, err := game.SchemeByName(scheme)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(values))
	if workers > len(values) {
		workers = len(values)
	}
	if workers <= 1 {
		for i, val := range values {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := sweepPoint(ctx, env, ps, kind, val, true)
			if err != nil {
				return nil, err
			}
			out[i] = p
			emit(obs, SweepPointDone{Kind: kind, Index: i, Value: val, Point: p})
		}
		return out, nil
	}

	// A failed point aborts the whole sweep: the result would be discarded
	// anyway, so remaining points must not burn a full retraining each.
	// sweepCtx cancels in-flight and unstarted points on the first error.
	sweepCtx, stopSweep := context.WithCancel(ctx)
	defer stopSweep()

	seq := newSweepSequencer(obs)
	errs := make([]error, len(values))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(values) || sweepCtx.Err() != nil {
					return
				}
				// Sweep workers already saturate the CPU; keep each point's
				// inner training sequential to avoid nested pools.
				p, err := sweepPoint(sweepCtx, env, ps, kind, values[i], false)
				if err != nil {
					errs[i] = err
					stopSweep()
					continue
				}
				out[i] = p
				seq.done(i, SweepPointDone{Kind: kind, Index: i, Value: values[i], Point: p})
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Prefer the originating failure over the context.Canceled artifacts
	// the internal abort induced in points that were still in flight.
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
		aborted = err
	}
	if aborted != nil {
		return nil, aborted
	}
	return out, nil
}

// sweepPoint prices and retrains one sweep value.
func sweepPoint(
	ctx context.Context, env *Environment, ps game.PricingScheme, kind SweepKind,
	val float64, innerParallel bool,
) (SweepPoint, error) {
	params, err := perturbedParams(env, kind, val)
	if err != nil {
		return SweepPoint{}, err
	}
	outcome, err := env.priceScheme(ps, params)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("%v=%v: %w", kind, val, err)
	}
	// Train under the perturbed priced market, reusing the environment's
	// data, model, and timing. Per-round events are deliberately not
	// forwarded here: concurrent points would interleave them
	// non-deterministically, so sweeps stream SweepPointDone only.
	sub := *env
	sub.Params = params
	run, err := runPricedParallel(ctx, &sub, ps.Name(), outcome, innerParallel, nil)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return SweepPoint{}, ctxErr
		}
		return SweepPoint{}, fmt.Errorf("%v=%v: %w", kind, val, err)
	}
	var meanQ float64
	for _, q := range outcome.Q {
		meanQ += q / float64(len(outcome.Q))
	}
	return SweepPoint{
		Value:            val,
		FinalLoss:        run.FinalLoss,
		FinalAccuracy:    run.FinalAccuracy,
		ServerObj:        outcome.ServerObj,
		MeanQ:            meanQ,
		NegativePayments: run.NegativePayments,
	}, nil
}

// EquilibriumSweep is Sweep without the training step: it reports the
// economics (server bound, mean q, negative payments) only, which is what
// Table V needs and is orders of magnitude faster. The points are
// batch-solved through the equilibrium engine (game.SolveMany): a
// fixed-order worker pool with per-worker scratch and warm-started
// multiplier brackets, bit-identical to solving each point cold. Observers
// receive SweepPointDone events in ascending index order.
func EquilibriumSweep(
	ctx context.Context, env *Environment, kind SweepKind, values []float64, obs ...Observer,
) ([]SweepPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	if len(values) == 0 {
		return nil, errors.New("experiment: empty sweep")
	}
	o := combineObservers(obs)
	games := make([]*game.Params, len(values))
	for i, val := range values {
		params, err := perturbedParams(env, kind, val)
		if err != nil {
			return nil, err
		}
		games[i] = params
	}
	// Solve in bounded chunks rather than one monolithic batch, so
	// observers keep receiving incremental SweepPointDone progress on
	// fleet-scale sweeps instead of one burst at the end. Chunks are solved
	// in index order, so events stay in ascending index order.
	chunk := 4 * runtime.GOMAXPROCS(0)
	if chunk < 16 {
		chunk = 16
	}
	out := make([]SweepPoint, 0, len(values))
	for start := 0; start < len(values); start += chunk {
		end := start + chunk
		if end > len(values) {
			end = len(values)
		}
		eqs, err := game.SolveManyContext(ctx, games[start:end], 0)
		if err != nil {
			var be *game.BatchError
			if errors.As(err, &be) {
				return nil, fmt.Errorf("%v=%v: %w", kind, values[start+be.Index], be.Err)
			}
			return nil, err
		}
		for j, eq := range eqs {
			i := start + j
			var meanQ float64
			for _, q := range eq.Q {
				meanQ += q / float64(len(eq.Q))
			}
			p := SweepPoint{
				Value:            values[i],
				ServerObj:        eq.ServerObj,
				MeanQ:            meanQ,
				NegativePayments: eq.NegativePayments(),
			}
			out = append(out, p)
			emit(o, SweepPointDone{Kind: kind, Index: i, Value: values[i], Point: p})
		}
	}
	return out, nil
}

// perturbedParams rebuilds the game with one Table-I parameter replaced.
// The per-client heterogeneity (the exponential draws) is re-scaled rather
// than re-drawn so sweeps isolate the parameter's effect.
func perturbedParams(env *Environment, kind SweepKind, val float64) (*game.Params, error) {
	p := env.Params.Clone()
	switch kind {
	case SweepV:
		if val < 0 {
			return nil, errors.New("experiment: negative mean intrinsic value")
		}
		if env.MeanV > 0 {
			scale := val / env.MeanV
			for i := range p.V {
				p.V[i] *= scale
			}
		} else {
			r := stats.NewRNG(env.Opts.Seed ^ 0x5EED)
			v, err := stats.Exponential(r, p.N(), val)
			if err != nil {
				return nil, err
			}
			p.V = v
		}
	case SweepC:
		if val <= 0 {
			return nil, errors.New("experiment: non-positive mean cost")
		}
		scale := val / env.MeanC
		for i := range p.C {
			p.C[i] *= scale
		}
	case SweepB:
		p.B = val
	default:
		return nil, fmt.Errorf("experiment: unknown sweep kind %d", int(kind))
	}
	return p, nil
}
