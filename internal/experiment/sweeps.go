package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
)

// SweepPoint is one sweep value's result: the equilibrium economics and the
// induced model quality under the proposed (optimal) pricing.
type SweepPoint struct {
	Value            float64 // the swept parameter's value (v̄, c̄, or B)
	FinalLoss        float64
	FinalAccuracy    float64
	ServerObj        float64
	MeanQ            float64
	NegativePayments int
}

// SweepKind selects the swept parameter.
type SweepKind int

// Swept parameters for Figs. 5–7.
const (
	// SweepV varies the mean intrinsic value v̄ (Fig. 5, Setup 1).
	SweepV SweepKind = iota + 1
	// SweepC varies the mean local cost c̄ (Fig. 6, Setup 2).
	SweepC
	// SweepB varies the server budget B (Fig. 7, Setup 3).
	SweepB
)

// String implements fmt.Stringer.
func (k SweepKind) String() string {
	switch k {
	case SweepV:
		return "mean intrinsic value v"
	case SweepC:
		return "mean local cost c"
	case SweepB:
		return "budget B"
	default:
		return fmt.Sprintf("sweep(%d)", int(k))
	}
}

// Sweep reruns the proposed mechanism across values of one parameter on a
// prepared environment, retraining the model at each point. α stays at the
// environment's calibrated value throughout, as in the paper. Points are
// independent — each owns its perturbed game, seeds, and runners over the
// shared read-only environment — so they execute concurrently across
// GOMAXPROCS workers; the returned order and values match a sequential run
// exactly.
func Sweep(env *Environment, kind SweepKind, values []float64) ([]SweepPoint, error) {
	return sweepParallel(env, kind, values, runtime.GOMAXPROCS(0))
}

// sweepParallel is Sweep with an explicit worker count (1 = sequential).
func sweepParallel(env *Environment, kind SweepKind, values []float64, workers int) ([]SweepPoint, error) {
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	if len(values) == 0 {
		return nil, errors.New("experiment: empty sweep")
	}
	out := make([]SweepPoint, len(values))
	if workers > len(values) {
		workers = len(values)
	}
	if workers <= 1 {
		for i, val := range values {
			p, err := sweepPoint(env, kind, val, true)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}

	errs := make([]error, len(values))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(values) {
					return
				}
				// Sweep workers already saturate the CPU; keep each point's
				// inner training sequential to avoid nested pools.
				p, err := sweepPoint(env, kind, values[i], false)
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = p
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepPoint prices and retrains one sweep value.
func sweepPoint(env *Environment, kind SweepKind, val float64, innerParallel bool) (SweepPoint, error) {
	params, err := perturbedParams(env, kind, val)
	if err != nil {
		return SweepPoint{}, err
	}
	outcome, err := params.SolveScheme(game.SchemeOptimal)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("%v=%v: %w", kind, val, err)
	}
	// Train under the perturbed equilibrium, reusing the environment's
	// data, model, and timing.
	sub := *env
	sub.Params = params
	run, err := runPricedParallel(&sub, game.SchemeOptimal, outcome, innerParallel)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("%v=%v: %w", kind, val, err)
	}
	var meanQ float64
	for _, q := range outcome.Q {
		meanQ += q / float64(len(outcome.Q))
	}
	return SweepPoint{
		Value:            val,
		FinalLoss:        run.FinalLoss,
		FinalAccuracy:    run.FinalAccuracy,
		ServerObj:        outcome.ServerObj,
		MeanQ:            meanQ,
		NegativePayments: run.NegativePayments,
	}, nil
}

// EquilibriumSweep is Sweep without the training step: it reports the
// economics (server bound, mean q, negative payments) only, which is what
// Table V needs and is orders of magnitude faster.
func EquilibriumSweep(env *Environment, kind SweepKind, values []float64) ([]SweepPoint, error) {
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	if len(values) == 0 {
		return nil, errors.New("experiment: empty sweep")
	}
	out := make([]SweepPoint, 0, len(values))
	for _, val := range values {
		params, err := perturbedParams(env, kind, val)
		if err != nil {
			return nil, err
		}
		eq, err := params.SolveKKT()
		if err != nil {
			return nil, fmt.Errorf("%v=%v: %w", kind, val, err)
		}
		var meanQ float64
		for _, q := range eq.Q {
			meanQ += q / float64(len(eq.Q))
		}
		out = append(out, SweepPoint{
			Value:            val,
			ServerObj:        eq.ServerObj,
			MeanQ:            meanQ,
			NegativePayments: eq.NegativePayments(),
		})
	}
	return out, nil
}

// perturbedParams rebuilds the game with one Table-I parameter replaced.
// The per-client heterogeneity (the exponential draws) is re-scaled rather
// than re-drawn so sweeps isolate the parameter's effect.
func perturbedParams(env *Environment, kind SweepKind, val float64) (*game.Params, error) {
	p := env.Params.Clone()
	switch kind {
	case SweepV:
		if val < 0 {
			return nil, errors.New("experiment: negative mean intrinsic value")
		}
		if env.MeanV > 0 {
			scale := val / env.MeanV
			for i := range p.V {
				p.V[i] *= scale
			}
		} else {
			r := stats.NewRNG(env.Opts.Seed ^ 0x5EED)
			v, err := stats.Exponential(r, p.N(), val)
			if err != nil {
				return nil, err
			}
			p.V = v
		}
	case SweepC:
		if val <= 0 {
			return nil, errors.New("experiment: non-positive mean cost")
		}
		scale := val / env.MeanC
		for i := range p.C {
			p.C[i] *= scale
		}
	case SweepB:
		p.B = val
	default:
		return nil, fmt.Errorf("experiment: unknown sweep kind %d", int(kind))
	}
	return p, nil
}
