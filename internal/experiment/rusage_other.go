//go:build !unix

package experiment

// peakRSSMB is unavailable off unix; the fleet benchmark records 0.
func peakRSSMB() float64 { return 0 }
