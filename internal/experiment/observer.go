package experiment

import (
	"sync"

	"unbiasedfl/internal/game"
)

// Event is a typed progress notification streamed to an Observer while an
// experiment is in flight. Concrete events: SchemeSolved, RoundStart,
// RoundEnd, SchemeDone, SweepPointDone.
//
// Delivery contract: events are delivered one at a time, never concurrently,
// and in a deterministic order for a fixed environment — even when the
// underlying work (parallel sweep points, pooled local updates) executes
// concurrently. Observers run on the experiment's goroutines; keep them
// fast or hand off to a channel.
type Event interface{ isEvent() }

// SchemeSolved reports that a pricing scheme's Stage-I decision is solved,
// before any training under it begins.
type SchemeSolved struct {
	Scheme  string // registry name
	Outcome *game.Outcome
}

// RoundStart reports that a training round is about to run its local
// updates.
type RoundStart struct {
	Scheme string
	Run    int // repetition index in [0, Options.Runs)
	Round  int
}

// RoundEnd reports a finished training round. Loss and Accuracy are only
// meaningful when Evaluated is true (evaluation is throttled by
// Options.EvalEvery).
type RoundEnd struct {
	Scheme       string
	Run          int
	Round        int
	Participants int
	Evaluated    bool
	Loss         float64
	Accuracy     float64
}

// SchemeDone reports a scheme's fully-averaged run, as it completes inside
// Compare or RunScheme.
type SchemeDone struct {
	Scheme string
	Run    *SchemeRun
}

// SweepPointDone reports one finished sweep point. Points are delivered in
// ascending Index order regardless of which parallel worker finished first.
type SweepPointDone struct {
	Kind  SweepKind
	Index int
	Value float64
	Point SweepPoint
}

func (SchemeSolved) isEvent()   {}
func (RoundStart) isEvent()     {}
func (RoundEnd) isEvent()       {}
func (SchemeDone) isEvent()     {}
func (SweepPointDone) isEvent() {}

// Observer receives experiment events. Implementations must tolerate being
// called from whichever goroutine drives the experiment (but never from two
// at once — see Event's delivery contract).
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// combineObservers flattens a variadic observer list into one observer (nil
// when empty, the sole element when singular), dropping nil entries.
func combineObservers(obs []Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return ObserverFunc(func(e Event) {
		for _, o := range live {
			o.OnEvent(e)
		}
	})
}

// emit delivers e to obs when obs is non-nil.
func emit(obs Observer, e Event) {
	if obs != nil {
		obs.OnEvent(e)
	}
}

// sweepSequencer re-orders SweepPointDone events from concurrent workers
// into ascending index order, so observers see the same deterministic
// stream a sequential sweep would produce. Workers call done() as points
// complete; the sequencer buffers out-of-order arrivals and flushes the
// contiguous prefix.
type sweepSequencer struct {
	mu      sync.Mutex
	obs     Observer
	next    int
	pending map[int]Event
}

func newSweepSequencer(obs Observer) *sweepSequencer {
	if obs == nil {
		return nil
	}
	return &sweepSequencer{obs: obs, pending: make(map[int]Event)}
}

func (s *sweepSequencer) done(index int, e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[index] = e
	for {
		ev, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		// Deliver under the lock: observers are promised serial delivery.
		s.obs.OnEvent(ev)
	}
}
