package experiment

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"unbiasedfl/internal/game"
)

// recordingObserver flattens events into comparable strings.
type recordingObserver struct {
	events []string
}

func (r *recordingObserver) OnEvent(e Event) {
	switch ev := e.(type) {
	case SchemeSolved:
		r.events = append(r.events, fmt.Sprintf("solved:%s spend=%.6f", ev.Scheme, ev.Outcome.Spent))
	case RoundStart:
		r.events = append(r.events, fmt.Sprintf("start:%s r%d round%d", ev.Scheme, ev.Run, ev.Round))
	case RoundEnd:
		r.events = append(r.events, fmt.Sprintf("end:%s r%d round%d eval=%v loss=%.9f",
			ev.Scheme, ev.Run, ev.Round, ev.Evaluated, ev.Loss))
	case SchemeDone:
		r.events = append(r.events, fmt.Sprintf("done:%s final=%.9f", ev.Scheme, ev.Run.FinalLoss))
	case SweepPointDone:
		r.events = append(r.events, fmt.Sprintf("sweep:%v i%d v=%.1f loss=%.9f",
			ev.Kind, ev.Index, ev.Value, ev.Point.FinalLoss))
	default:
		r.events = append(r.events, fmt.Sprintf("unknown:%T", e))
	}
}

func fastObserverOptions() Options {
	o := tinyOptions()
	o.Rounds = 12
	o.EvalEvery = 4
	o.Runs = 2
	return o
}

// TestRunSchemeEventStream checks shape and internal consistency of the
// per-run event stream: solved first, then strictly alternating
// start/end per round per run, then done.
func TestRunSchemeEventStream(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, fastObserverOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingObserver{}
	if _, err := RunScheme(context.Background(), env, "proposed", rec); err != nil {
		t.Fatal(err)
	}
	wantLen := 1 + env.Opts.Runs*env.Opts.Rounds*2 + 1
	if len(rec.events) != wantLen {
		t.Fatalf("event count %d, want %d", len(rec.events), wantLen)
	}
	if rec.events[0][:7] != "solved:" {
		t.Fatalf("first event %q", rec.events[0])
	}
	if rec.events[len(rec.events)-1][:5] != "done:" {
		t.Fatalf("last event %q", rec.events[len(rec.events)-1])
	}
	i := 1
	for run := 0; run < env.Opts.Runs; run++ {
		for round := 0; round < env.Opts.Rounds; round++ {
			wantStart := fmt.Sprintf("start:proposed r%d round%d", run, round)
			if rec.events[i] != wantStart {
				t.Fatalf("event %d = %q, want %q", i, rec.events[i], wantStart)
			}
			i += 2 // the matching end: prefix-checked below
		}
	}
}

// TestObserverDeterministicOrder is the acceptance-criterion test: two
// identical comparisons and two identical parallel sweeps deliver exactly
// the same event sequence, event for event.
func TestObserverDeterministicOrder(t *testing.T) {
	opts := fastObserverOptions()
	stream := func() []string {
		env, err := BuildSetup(context.Background(), Setup1, opts)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recordingObserver{}
		if _, err := Compare(context.Background(), env, rec); err != nil {
			t.Fatal(err)
		}
		if _, err := Sweep(context.Background(), env, SweepV,
			[]float64{1000, 2000, 4000, 8000}, rec); err != nil {
			t.Fatal(err)
		}
		return rec.events
	}
	a := stream()
	b := stream()
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("event %d differs:\n  a: %q\n  b: %q", i, a[i], b[i])
			}
		}
		t.Fatalf("event streams differ in length: %d vs %d", len(a), len(b))
	}
}

// TestSweepEventsInOrder checks SweepPointDone indices arrive ascending
// even with many parallel workers racing to finish.
func TestSweepEventsInOrder(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 8
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{500, 1000, 2000, 4000, 8000, 16000, 32000, 64000}
	rec := &recordingObserver{}
	if _, err := sweepParallel(context.Background(), env, game.SchemeNameProposed,
		SweepV, values, 8, rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != len(values) {
		t.Fatalf("event count %d", len(rec.events))
	}
	for i, e := range rec.events {
		want := fmt.Sprintf("i%d ", i)
		if !containsAt(e, want) {
			t.Fatalf("event %d out of order: %q", i, e)
		}
	}
}

func containsAt(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// constScheme is a minimal third-party pricing scheme for registry tests:
// it posts a constant price to everyone.
type constScheme struct {
	name  string
	price float64
}

func (c constScheme) Name() string { return c.name }

func (c constScheme) Price(p *game.Params) (*game.Outcome, error) {
	prices := make([]float64, p.N())
	for i := range prices {
		prices[i] = c.price
	}
	return p.OutcomeFor(c.name, prices)
}

// TestThirdPartySchemeParticipates is the acceptance-criterion test: a
// scheme registered from outside internal/game joins Compare and the
// scheme sweep with no game-layer changes.
func TestThirdPartySchemeParticipates(t *testing.T) {
	if err := game.RegisterScheme(constScheme{name: "const-test", price: 2}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if !game.UnregisterScheme("const-test") {
			t.Error("unregister failed")
		}
	}()

	opts := tinyOptions()
	opts.Rounds = 10
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}

	cmp, err := Compare(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Schemes) != 4 {
		t.Fatalf("schemes %d, want 4 (trio + const-test)", len(cmp.Schemes))
	}
	custom := cmp.Scheme("const-test")
	if custom == nil {
		t.Fatal("const-test missing from comparison")
	}
	if custom.FinalLoss <= 0 || len(custom.Points) == 0 {
		t.Fatalf("custom scheme did not train: %+v", custom)
	}
	// The built-in analytics still work with the extra scheme present.
	if _, _, err := cmp.UtilityGains(); err != nil {
		t.Fatal(err)
	}

	// The custom scheme drives a retraining sweep too.
	points, err := SweepScheme(context.Background(), env, "const-test",
		SweepB, []float64{20, 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("sweep points %d", len(points))
	}
	for _, p := range points {
		if p.FinalLoss <= 0 {
			t.Fatalf("sweep under custom scheme did not train: %+v", p)
		}
	}

	// Unknown names fail cleanly.
	if _, err := RunScheme(context.Background(), env, "no-such-scheme"); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
	if _, err := SweepScheme(context.Background(), env, "no-such-scheme",
		SweepB, []float64{20}); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
}
