// Package experiment reproduces the paper's evaluation (Section VI): the
// three Table-I setups over Synthetic, MNIST-like, and EMNIST-like data, the
// pricing-scheme comparison of Fig. 4 and Tables II–IV, the negative-payment
// counts of Table V, and the parameter-impact studies of Figs. 5–7.
//
// Every experiment flows through an Environment: generated federated data, a
// calibrated convergence-bound model (the G_n and α estimates of Section
// IV-A), the game parameters of Table I, and a hardware timing model that
// substitutes the paper's Raspberry-Pi prototype (DESIGN.md §4).
package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/sim"
	"unbiasedfl/internal/stats"
)

// SetupID selects one of the paper's three experimental setups.
type SetupID int

// The paper's setups (Table I).
const (
	// Setup1 is the Synthetic(1,1) dataset: B=200, mean c=50, mean v=4000.
	Setup1 SetupID = iota + 1
	// Setup2 is the MNIST-like dataset: B=40, mean c=20, mean v=30000.
	Setup2
	// Setup3 is the EMNIST-like dataset: B=500, mean c=80, mean v=10000.
	Setup3
)

// String implements fmt.Stringer.
func (s SetupID) String() string {
	switch s {
	case Setup1:
		return "Setup 1 (Synthetic)"
	case Setup2:
		return "Setup 2 (MNIST-like)"
	case Setup3:
		return "Setup 3 (EMNIST-like)"
	default:
		return fmt.Sprintf("Setup %d", int(s))
	}
}

// TableI returns the paper's Table-I economic parameters for a setup.
func TableI(id SetupID) (budget, meanC, meanV float64, err error) {
	switch id {
	case Setup1:
		return 200, 50, 4000, nil
	case Setup2:
		return 40, 20, 30000, nil
	case Setup3:
		return 500, 80, 10000, nil
	default:
		return 0, 0, 0, fmt.Errorf("experiment: unknown setup %d", int(id))
	}
}

// Options scales an experiment. The zero value is invalid; use
// DefaultOptions (laptop-scale) or PaperOptions (the paper's full scale).
type Options struct {
	NumClients   int
	TotalSamples int // 0 = per-setup default scaled by NumClients/40
	Rounds       int // training horizon R
	LocalSteps   int // E
	BatchSize    int
	EvalEvery    int
	Calibration  int // calibration rounds for G_n estimation
	Seed         uint64
	Runs         int // independent repetitions to average
	// MaxClientClasses caps the number of distinct labels a client shard may
	// hold in the image-like setups (2 and 3), sharpening the non-IID label
	// skew beyond the setup defaults. 0 keeps the setup's default range;
	// Setup 1's synthetic generator has its own structural skew and ignores
	// the cap.
	MaxClientClasses int
	// FleetShards, when positive, is the fleet-scale knob: data generation
	// and bound calibration run at this many distinct client shards, and the
	// fleet is then synthesized to NumClients by sharing each shard across
	// NumClients/FleetShards devices by pointer (data.ReplicateClients).
	// Clients sharing a shard keep distinct minibatch trajectories — each
	// owns a private RNG cursor in the engine — and the economics (costs,
	// valuations, budget, pricing) are still drawn and solved per client, so
	// a 10^6-client market prices 10^6 individual devices while the data
	// footprint stays O(FleetShards·samples). 0 materializes every client's
	// shard individually (the historical behaviour).
	FleetShards int
}

// DefaultOptions is the laptop-scale configuration used by tests, examples,
// and the benchmark harness.
func DefaultOptions() Options {
	return Options{
		NumClients:  12,
		Rounds:      120,
		LocalSteps:  10,
		BatchSize:   24,
		EvalEvery:   5,
		Calibration: 3,
		Seed:        1,
		Runs:        3,
	}
}

// PaperOptions restores the paper's full scale (40 devices, R=1000, E=100,
// 20 runs); expect multi-hour wall times on a laptop.
func PaperOptions() Options {
	return Options{
		NumClients:  40,
		Rounds:      1000,
		LocalSteps:  100,
		BatchSize:   24,
		EvalEvery:   20,
		Calibration: 5,
		Seed:        1,
		Runs:        20,
	}
}

func (o Options) validate() error {
	switch {
	case o.NumClients <= 1:
		return errors.New("experiment: need at least two clients")
	case o.Rounds <= 0 || o.LocalSteps <= 0 || o.BatchSize <= 0:
		return errors.New("experiment: invalid training scale")
	case o.EvalEvery <= 0:
		return errors.New("experiment: invalid eval interval")
	case o.Calibration <= 0:
		return errors.New("experiment: need calibration rounds")
	case o.Runs <= 0:
		return errors.New("experiment: need at least one run")
	case o.MaxClientClasses < 0:
		return errors.New("experiment: negative class cap")
	case o.FleetShards < 0:
		return errors.New("experiment: negative fleet shard count")
	case o.FleetShards == 1:
		return errors.New("experiment: need at least two fleet shards")
	case o.FleetShards > o.NumClients:
		return errors.New("experiment: more fleet shards than clients")
	}
	return nil
}

// Environment is a fully-prepared experimental world for one setup.
type Environment struct {
	ID     SetupID
	Opts   Options
	Fed    *data.Federated
	Model  *model.LogisticRegression
	Cal    *fl.Calibration
	Params *game.Params
	Timing *sim.TimingModel
	// MeanC and MeanV are the Table-I means actually used (exposed so the
	// parameter sweeps of Figs. 5–7 can rescale them).
	MeanC, MeanV float64
	// Cache memoizes equilibrium solves and scheme pricings on this
	// environment's games, so repeated queries (the same scheme re-priced
	// inside Compare, repeated Session.Equilibrium calls, adaptive
	// repricing epochs with unchanged estimates) solve once. Nil disables
	// memoization.
	Cache *game.Cache
	// Exec selects the execution backend for every training run launched
	// from this environment (BackendLocal by default). Results are
	// bit-identical across backends; see internal/engine.
	Exec Backend
	// GroupSize, when above one, makes every training run launched from
	// this environment aggregate hierarchically: clients fold in groups of
	// this size and only group partials reach the coordinator, whose memory
	// stays O(model + fleet/GroupSize). On the cluster backend each group
	// additionally multiplexes onto a single socket node. Purely an
	// execution knob — results are bit-identical to flat aggregation (see
	// internal/fixpoint).
	GroupSize int
	// Checkpoint, when non-empty, is a path prefix under which every
	// training run launched from this environment persists a per-run
	// checkpoint ("<prefix>-<scheme>-run<i>.ckpt" plus its trace WAL); a
	// rerun with CheckpointResume picks each run up at its last committed
	// round and produces bit-identical results (see internal/checkpoint).
	Checkpoint string
	// CheckpointResume resumes runs from existing checkpoints under the
	// prefix instead of discarding them.
	CheckpointResume bool
	// RoundTimeout, when positive and Exec is BackendCluster, runs every
	// round under this deadline with self-healing degradation (see
	// engine.ClusterOptions.RoundTimeout).
	RoundTimeout time.Duration
	// Membership, when non-nil, makes every training run launched from this
	// environment elastic: clients join and leave at the plan's round
	// boundaries, the market is re-priced over each epoch's active fleet
	// (warm-started, bit-identical to cold solves), and aggregation weights
	// are renormalized over the members present. See engine.MembershipPlan.
	Membership *engine.MembershipPlan
}

// Equilibrium solves (or returns the memoized) Stackelberg equilibrium of
// the environment's game.
func (e *Environment) Equilibrium() (*game.Equilibrium, error) {
	if e.Cache == nil {
		return e.Params.SolveKKT()
	}
	return e.Cache.Solve(e.Params)
}

// priceScheme prices params under ps through the environment's memo-cache
// when one is attached.
func (e *Environment) priceScheme(ps game.PricingScheme, params *game.Params) (*game.Outcome, error) {
	if e.Cache == nil {
		return ps.Price(params)
	}
	return e.Cache.Price(ps, params)
}

// regularization used across all setups (the convex multinomial logistic
// regression of Section VI-A2).
const mu = 0.01

// BuildSetup generates data, calibrates the bound constants, and assembles
// the game for the given setup. Cancelling ctx aborts the (training-heavy)
// calibration phase promptly with ctx.Err().
func BuildSetup(ctx context.Context, id SetupID, opts Options) (*Environment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	budget, meanC, meanV, err := TableI(id)
	if err != nil {
		return nil, err
	}
	// Table I's budgets are calibrated for the paper's 40-device fleet.
	// Scale B with the fleet so per-client budget scarcity — the force that
	// separates the pricing schemes — is preserved at reduced scale.
	budget *= float64(opts.NumClients) / 40
	root := stats.NewRNG(opts.Seed ^ (uint64(id) << 32))

	// With FleetShards set, the data- and calibration-heavy phases run at
	// shard scale; the fleet is synthesized afterwards by pointer sharing.
	dataOpts := opts
	if opts.FleetShards > 0 {
		dataOpts.NumClients = opts.FleetShards
	}
	fed, err := generateData(id, dataOpts, root.Split())
	if err != nil {
		return nil, fmt.Errorf("%v data: %w", id, err)
	}
	m, err := model.NewLogisticRegression(fed.Train.Dim, fed.Train.Classes, mu)
	if err != nil {
		return nil, err
	}

	runCfg := fl.Config{
		Rounds:     opts.Rounds,
		LocalSteps: opts.LocalSteps,
		BatchSize:  opts.BatchSize,
		Schedule:   fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
		EvalEvery:  opts.EvalEvery,
		Seed:       root.Uint64(),
	}
	cal, err := fl.Calibrate(ctx, m, fed, runCfg, opts.Calibration)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("%v calibration: %w", id, err)
	}
	if dataOpts.NumClients != opts.NumClients {
		// Expand shard-scale data and calibration to the full fleet: clients
		// sharing a shard share its gradient-norm bound estimate G_n, exactly
		// as they share the shard the estimate was calibrated on.
		if fed, err = data.ReplicateClients(fed, opts.NumClients); err != nil {
			return nil, fmt.Errorf("%v fleet: %w", id, err)
		}
		g := make([]float64, opts.NumClients)
		for n := range g {
			g[n] = cal.G[n%dataOpts.NumClients]
		}
		expanded := *cal
		expanded.G = g
		cal = &expanded
	}

	params, err := buildGame(fed, cal, root.Split(), budget, meanC, meanV, float64(opts.Rounds))
	if err != nil {
		return nil, fmt.Errorf("%v game: %w", id, err)
	}

	timing, err := sim.HeterogeneousTimings(root.Split(), sim.DefaultTimingConfig(opts.NumClients))
	if err != nil {
		return nil, err
	}
	return &Environment{
		ID: id, Opts: opts, Fed: fed, Model: m, Cal: cal,
		Params: params, Timing: timing, MeanC: meanC, MeanV: meanV,
		Cache: game.NewCache(0),
	}, nil
}

func generateData(id SetupID, opts Options, r *stats.RNG) (*data.Federated, error) {
	scale := float64(opts.NumClients) / 40
	switch id {
	case Setup1:
		cfg := data.DefaultSyntheticConfig()
		cfg.NumClients = opts.NumClients
		cfg.TotalSamples = opts.TotalSamples
		if cfg.TotalSamples == 0 {
			cfg.TotalSamples = int(22377 * scale)
		}
		return data.GenerateSynthetic(r, cfg)
	case Setup2:
		cfg := data.MNISTLikeConfig()
		cfg.NumClients = opts.NumClients
		cfg.TotalSamples = opts.TotalSamples
		if cfg.TotalSamples == 0 {
			cfg.TotalSamples = int(14463 * scale)
		}
		cfg.TestSamples = 100 * opts.NumClients / 2
		applyClassCap(&cfg, opts.MaxClientClasses)
		return data.GenerateImageLike(r, cfg)
	case Setup3:
		cfg := data.EMNISTLikeConfig()
		cfg.NumClients = opts.NumClients
		cfg.TotalSamples = opts.TotalSamples
		if cfg.TotalSamples == 0 {
			cfg.TotalSamples = int(35155 * scale)
		}
		cfg.TestSamples = 100 * opts.NumClients / 2
		applyClassCap(&cfg, opts.MaxClientClasses)
		return data.GenerateImageLike(r, cfg)
	default:
		return nil, fmt.Errorf("experiment: unknown setup %d", int(id))
	}
}

// applyClassCap tightens an image-like config's per-client label range to at
// most cap classes (0 = leave the setup default alone). It only ever
// narrows: a cap above the setup default is a no-op, so the knob can
// sharpen skew but never accidentally relax it.
func applyClassCap(cfg *data.ImageLikeConfig, cap int) {
	if cap <= 0 || cap >= cfg.MaxClasses {
		return
	}
	cfg.MaxClasses = cap
	if cfg.MinClasses > cfg.MaxClasses {
		cfg.MinClasses = cfg.MaxClasses
	}
}

// buildGame assembles game.Params from Table-I economics and the calibrated
// data constants. The raw α = 8LE/μ² of Theorem 1 is a worst-case constant;
// following the paper ("we estimate the task-related parameter α ...
// following a similar approach as [22]") we rescale it so that the average
// intrinsic marginal value (α/R)·v̄·mean(a²G²) equals the average marginal
// cost c̄ at full participation. This keeps the Table-I budgets meaningful
// and is documented as a substitution in DESIGN.md §4. The rescaled α is
// fixed per setup; the sweeps of Figs. 5–7 and Table V hold it constant.
func buildGame(
	fed *data.Federated, cal *fl.Calibration, r *stats.RNG,
	budget, meanC, meanV, rounds float64,
) (*game.Params, error) {
	n := fed.NumClients()
	c, err := stats.Exponential(r, n, meanC)
	if err != nil {
		return nil, err
	}
	for i := range c {
		c[i] += meanC * 0.05 // keep costs strictly positive
	}
	v, err := stats.Exponential(r, n, meanV)
	if err != nil {
		return nil, err
	}

	var meanD float64
	for i := 0; i < n; i++ {
		d := fed.Weights[i] * fed.Weights[i] * cal.G[i] * cal.G[i]
		meanD += d / float64(n)
	}
	if meanD <= 0 {
		return nil, errors.New("experiment: degenerate data-quality estimates")
	}
	refV := meanV
	if refV <= 0 {
		refV = 4000 // Table V's v=0 column keeps Setup 1's calibrated α
	}
	alpha := rounds * meanC / (refV * meanD)

	p := &game.Params{
		A:     append([]float64(nil), fed.Weights...),
		G:     append([]float64(nil), cal.G...),
		C:     c,
		V:     v,
		Alpha: alpha,
		R:     rounds,
		B:     budget,
		QMax:  1,
		QMin:  game.DefaultQMin,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
