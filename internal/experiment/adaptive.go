package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
)

// AdaptiveResult compares static pricing (the paper's design: one
// calibration, one price vector posted for the whole horizon) against
// adaptive repricing, where the server re-estimates G_n from live gradient
// statistics every epoch and re-solves the game. This addresses the
// "chicken and egg" discussion of Section IV: G_n drifts as training
// converges (gradients shrink), so day-0 prices become miscalibrated.
//
// Bounds and spends are evaluated under the final, best-informed G_n:
//   - the static arm keeps its posted prices; its clients' best responses
//     drift with their true intrinsic terms, and so does the server's
//     realized spend (it may silently leave or exceed the budget);
//   - the adaptive arm re-prices within budget at every epoch, so its spend
//     tracks B by construction.
type AdaptiveResult struct {
	StaticLoss   float64
	AdaptiveLoss float64
	// StaticBound is the Theorem-1 term of the participation induced by the
	// day-0 prices under the final G_n estimates.
	StaticBound float64
	// StaticSpend is the realized payment of the static prices under the
	// drifted best responses; its distance from B quantifies miscalibration.
	StaticSpend float64
	// AdaptiveBound is the Theorem-1 term of the final informed equilibrium.
	AdaptiveBound float64
	// AdaptiveSpend is the informed equilibrium's spend (<= B).
	AdaptiveSpend float64
	// Epochs is the number of pricing epochs the adaptive run used.
	Epochs int
}

// RunAdaptive trains once with static pricing and once with per-epoch
// repricing, both under the same total round budget. Cancelling ctx aborts
// promptly with ctx.Err().
func RunAdaptive(ctx context.Context, env *Environment, epochs int, seed uint64) (*AdaptiveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env == nil {
		return nil, errors.New("experiment: nil environment")
	}
	if epochs < 2 {
		return nil, errors.New("experiment: adaptive repricing needs at least two epochs")
	}
	totalRounds := env.Opts.Rounds
	perEpoch := totalRounds / epochs
	if perEpoch < 1 {
		return nil, errors.New("experiment: too many epochs for the round budget")
	}

	proposed, err := game.SchemeByName(game.SchemeNameProposed)
	if err != nil {
		return nil, err
	}

	// Static arm: one equilibrium for the whole horizon. Pricing flows
	// through the environment's memo-cache: the static solve and the
	// adaptive arm's epoch-0 solve share one game fingerprint, so the
	// engine runs once for both.
	staticOutcome, err := env.priceScheme(proposed, env.Params)
	if err != nil {
		return nil, err
	}
	staticRun, err := trainWithQ(ctx, env, staticOutcome.Q, totalRounds, seed)
	if err != nil {
		return nil, fmt.Errorf("static arm: %w", err)
	}

	// Adaptive arm: re-estimate G_n and re-price each epoch.
	params := env.Params.Clone()
	var adaptiveLoss float64
	adaptiveSeed := seed + 101
	for e := 0; e < epochs; e++ {
		outcome, err := env.priceScheme(proposed, params)
		if err != nil {
			return nil, fmt.Errorf("adaptive epoch %d pricing: %w", e, err)
		}
		run, err := trainWithQ(ctx, env, outcome.Q, perEpoch, adaptiveSeed+uint64(e))
		if err != nil {
			return nil, fmt.Errorf("adaptive epoch %d: %w", e, err)
		}
		adaptiveLoss = run.FinalLoss
		// Refresh G_n from the epoch's observed gradient statistics; keep
		// the previous estimate for clients that never participated.
		for n, sq := range run.GradSqNorm {
			if sq > 0 {
				params.G[n] = math.Sqrt(sq)
			}
		}
	}

	// Evaluate both arms under the final G_n estimates.
	final := env.Params.Clone()
	final.G = append([]float64(nil), params.G...)

	// Static arm: the day-0 prices are posted; clients re-best-respond
	// under their drifted intrinsic terms.
	_, staticSpend, staticBound, err := final.EvaluateRealized(staticOutcome.P)
	if err != nil {
		return nil, err
	}

	informed, err := env.priceScheme(proposed, final)
	if err != nil {
		return nil, err
	}

	return &AdaptiveResult{
		StaticLoss:    staticRun.FinalLoss,
		AdaptiveLoss:  adaptiveLoss,
		StaticBound:   staticBound,
		StaticSpend:   staticSpend,
		AdaptiveBound: informed.ServerObj,
		AdaptiveSpend: informed.Spent,
		Epochs:        epochs,
	}, nil
}

// trainWithQ runs one training segment under fixed participation levels.
// Each segment restarts from w0; the comparison is between pricing policies
// over equal-length segments, the regime where the bound's variance term
// dominates.
func trainWithQ(ctx context.Context, env *Environment, q []float64, rounds int, seed uint64) (*fl.RunResult, error) {
	qc := env.Params.ClampQ(q)
	sampler, err := fl.NewBernoulliSampler(qc, stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	cfg := fl.Config{
		Rounds:     rounds,
		LocalSteps: env.Opts.LocalSteps,
		BatchSize:  env.Opts.BatchSize,
		Schedule:   fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
		EvalEvery:  rounds,
		Seed:       seed ^ 0xABCD,
	}
	runner := &fl.Runner{
		Model: env.Model, Fed: env.Fed, Config: cfg,
		Sampler: sampler, Aggregator: fl.UnbiasedAggregator{},
	}
	return engine.Run(ctx, runner.Spec(), env.newBackend(true))
}
