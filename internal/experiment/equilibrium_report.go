package experiment

import (
	"errors"
	"fmt"
	"io"

	"unbiasedfl/internal/game"
)

// WriteEquilibriumReport renders the full per-client equilibrium table the
// paper's mechanism produces: participation levels, customized prices,
// payment direction, and the threshold v_t, as markdown.
func WriteEquilibriumReport(w io.Writer, p *game.Params, eq *game.Equilibrium) error {
	if p == nil || eq == nil {
		return errors.New("experiment: nil params or equilibrium")
	}
	if _, err := fmt.Fprintf(w,
		"## Stackelberg equilibrium (N=%d, B=%.2f)\n\n"+
			"- budget multiplier λ* = %.6g (tight: %v)\n"+
			"- payment threshold v_t = %.4g\n"+
			"- total spend: %.4f\n"+
			"- server bound term g(q*): %.6g\n"+
			"- clients paying the server: %d\n\n",
		p.N(), p.B, eq.Lambda, eq.BudgetTight, eq.Vt(),
		eq.Spent, eq.ServerObj, eq.NegativePayments()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"| client | a_n | G_n | c_n | v_n | q*_n | P*_n | payment | direction |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"|---:|---:|---:|---:|---:|---:|---:|---:|---|"); err != nil {
		return err
	}
	for n := 0; n < p.N(); n++ {
		direction := "server pays client"
		if eq.P[n] < 0 {
			direction = "client pays server"
		}
		if _, err := fmt.Fprintf(w,
			"| %d | %.5f | %.3f | %.2f | %.1f | %.5f | %.3f | %.3f | %s |\n",
			n, p.A[n], p.G[n], p.C[n], p.V[n],
			eq.Q[n], eq.P[n], eq.P[n]*eq.Q[n], direction); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// SaveEquilibrium persists an equilibrium table into the artifact set.
func (a *Artifacts) SaveEquilibrium(name string, setup SetupID, p *game.Params, eq *game.Equilibrium) error {
	path := name + "_equilibrium.md"
	f, err := createArtifactFile(a, path)
	if err != nil {
		return err
	}
	if err := WriteEquilibriumReport(f, p, eq); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	a.manifest.Entries = append(a.manifest.Entries, manifestItem{
		Kind: "equilibrium", Setup: setup.String(), Path: path,
	})
	return nil
}
