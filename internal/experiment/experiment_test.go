package experiment

import (
	"context"
	"math"
	"strings"
	"testing"

	"unbiasedfl/internal/game"
)

// tinyOptions keeps integration tests fast.
func tinyOptions() Options {
	return Options{
		NumClients:   6,
		TotalSamples: 720,
		Rounds:       40,
		LocalSteps:   5,
		BatchSize:    16,
		EvalEvery:    5,
		Calibration:  2,
		Seed:         3,
		Runs:         2,
	}
}

func TestTableI(t *testing.T) {
	b, c, v, err := TableI(Setup1)
	if err != nil || b != 200 || c != 50 || v != 4000 {
		t.Fatalf("setup1: %v %v %v %v", b, c, v, err)
	}
	b, c, v, err = TableI(Setup2)
	if err != nil || b != 40 || c != 20 || v != 30000 {
		t.Fatalf("setup2: %v %v %v %v", b, c, v, err)
	}
	b, c, v, err = TableI(Setup3)
	if err != nil || b != 500 || c != 80 || v != 10000 {
		t.Fatalf("setup3: %v %v %v %v", b, c, v, err)
	}
	if _, _, _, err := TableI(SetupID(9)); err == nil {
		t.Fatal("expected error for unknown setup")
	}
}

func TestSetupString(t *testing.T) {
	for _, id := range []SetupID{Setup1, Setup2, Setup3, SetupID(9)} {
		if id.String() == "" {
			t.Fatal("empty setup name")
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperOptions().validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.NumClients = 1
	if err := bad.validate(); err == nil {
		t.Fatal("expected error for one client")
	}
	bad = DefaultOptions()
	bad.Runs = 0
	if err := bad.validate(); err == nil {
		t.Fatal("expected error for zero runs")
	}
	bad = DefaultOptions()
	bad.Calibration = 0
	if err := bad.validate(); err == nil {
		t.Fatal("expected error for zero calibration")
	}
}

func TestBuildSetupAllThree(t *testing.T) {
	for _, id := range []SetupID{Setup1, Setup2, Setup3} {
		env, err := BuildSetup(context.Background(), id, tinyOptions())
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if env.Fed.NumClients() != 6 {
			t.Fatalf("%v: clients %d", id, env.Fed.NumClients())
		}
		if err := env.Params.Validate(); err != nil {
			t.Fatalf("%v params: %v", id, err)
		}
		if env.Cal.Alpha <= 0 || env.Params.Alpha <= 0 {
			t.Fatalf("%v: non-positive alpha", id)
		}
		if len(env.Timing.Clients) != 6 {
			t.Fatalf("%v: timing fleet %d", id, len(env.Timing.Clients))
		}
		// The calibrated alpha must put intrinsic marginals on the cost
		// scale: (alpha/R)·v̄·meanD ≈ c̄.
		var meanD float64
		for i := 0; i < env.Params.N(); i++ {
			meanD += env.Params.DataQuality(i) / float64(env.Params.N())
		}
		got := env.Params.Alpha / env.Params.R * env.MeanV * meanD
		if got < env.MeanC*0.2 || got > env.MeanC*5 {
			t.Fatalf("%v: intrinsic scale %v far from mean cost %v", id, got, env.MeanC)
		}
	}
	if _, err := BuildSetup(context.Background(), SetupID(9), tinyOptions()); err == nil {
		t.Fatal("expected error for unknown setup")
	}
	bad := tinyOptions()
	bad.Rounds = 0
	if _, err := BuildSetup(context.Background(), Setup1, bad); err == nil {
		t.Fatal("expected options error")
	}
}

func TestBuildSetupDeterministic(t *testing.T) {
	a, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Params.C {
		if a.Params.C[i] != b.Params.C[i] || a.Params.V[i] != b.Params.V[i] {
			t.Fatal("economic draws differ across identical seeds")
		}
		if a.Params.G[i] != b.Params.G[i] {
			t.Fatal("calibrated G differs across identical seeds")
		}
	}
}

func TestRunSchemeAndCompare(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Schemes) != 3 {
		t.Fatalf("schemes %d", len(cmp.Schemes))
	}
	var opt, uni *SchemeRun
	for _, s := range cmp.Schemes {
		if len(s.Points) == 0 {
			t.Fatalf("%v: no points", s.Scheme)
		}
		if s.Outcome.Spent > env.Params.B*(1+1e-6) {
			t.Fatalf("%v overspent", s.Scheme)
		}
		switch s.Scheme {
		case game.SchemeNameProposed:
			opt = s
		case game.SchemeNameUniform:
			uni = s
		}
	}
	if opt == nil || uni == nil {
		t.Fatal("missing schemes")
	}
	// The proposed scheme must attain a no-worse convergence bound.
	if opt.Outcome.ServerObj > uni.Outcome.ServerObj+1e-9 {
		t.Fatalf("optimal bound %v worse than uniform %v",
			opt.Outcome.ServerObj, uni.Outcome.ServerObj)
	}

	// Adaptive targets are reached by every scheme.
	for _, tt := range cmp.TimesToLoss(cmp.AdaptiveLossTarget()) {
		if !tt.OK {
			t.Fatalf("%v never reached adaptive loss target", tt.Scheme)
		}
	}
	for _, tt := range cmp.TimesToAccuracy(cmp.AdaptiveAccuracyTarget()) {
		if !tt.OK {
			t.Fatalf("%v never reached adaptive accuracy target", tt.Scheme)
		}
	}
	overU, overW, err := cmp.UtilityGains()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(overU) || math.IsNaN(overW) {
		t.Fatal("NaN utility gains")
	}
	// Table IV's sign: the proposed pricing yields higher client utility.
	if overU <= 0 {
		t.Fatalf("utility gain over uniform %v not positive", overU)
	}
}

func TestEquilibriumSweepTableV(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	points, err := EquilibriumSweep(context.Background(), env, SweepV, []float64{0, 4000, 80000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points %d", len(points))
	}
	if points[0].NegativePayments != 0 {
		t.Fatalf("v=0 produced %d negative payments", points[0].NegativePayments)
	}
	if points[2].NegativePayments < points[1].NegativePayments {
		t.Fatalf("negative payments not increasing: %d then %d",
			points[1].NegativePayments, points[2].NegativePayments)
	}
}

func TestEquilibriumSweepBudget(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup3, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	points, err := EquilibriumSweep(context.Background(), env, SweepB, []float64{100, 500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].MeanQ < points[i-1].MeanQ-1e-9 {
			t.Fatal("mean q not increasing in budget (Proposition 1)")
		}
		if points[i].ServerObj > points[i-1].ServerObj+1e-9 {
			t.Fatal("server bound not improving in budget")
		}
	}
}

func TestEquilibriumSweepCost(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup2, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	points, err := EquilibriumSweep(context.Background(), env, SweepC, []float64{10, 20, 80})
	if err != nil {
		t.Fatal(err)
	}
	// Higher costs depress participation (Fig. 6's message).
	if points[len(points)-1].MeanQ > points[0].MeanQ+1e-9 {
		t.Fatalf("mean q did not fall with cost: %v vs %v",
			points[0].MeanQ, points[len(points)-1].MeanQ)
	}
}

func TestSweepWithTraining(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 20
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Sweep(context.Background(), env, SweepV, []float64{1000, 8000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.FinalLoss <= 0 || math.IsNaN(p.FinalLoss) {
			t.Fatalf("bad final loss %v", p.FinalLoss)
		}
		if p.FinalAccuracy < 0 || p.FinalAccuracy > 1 {
			t.Fatalf("bad accuracy %v", p.FinalAccuracy)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	env, err := BuildSetup(context.Background(), Setup1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EquilibriumSweep(context.Background(), nil, SweepV, []float64{1}); err == nil {
		t.Fatal("expected nil env error")
	}
	if _, err := EquilibriumSweep(context.Background(), env, SweepV, nil); err == nil {
		t.Fatal("expected empty sweep error")
	}
	if _, err := EquilibriumSweep(context.Background(), env, SweepKind(9), []float64{1}); err == nil {
		t.Fatal("expected unknown kind error")
	}
	if _, err := EquilibriumSweep(context.Background(), env, SweepC, []float64{0}); err == nil {
		t.Fatal("expected non-positive cost error")
	}
	if _, err := EquilibriumSweep(context.Background(), env, SweepV, []float64{-1}); err == nil {
		t.Fatal("expected negative value error")
	}
}

func TestReports(t *testing.T) {
	opts := tinyOptions()
	opts.Rounds = 20
	opts.Runs = 1
	env, err := BuildSetup(context.Background(), Setup1, opts)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteComparisonReport(&sb, cmp); err != nil {
		t.Fatal(err)
	}
	report := sb.String()
	for _, want := range []string{"Fig. 4", "Table II", "Table IV", "proposed", "uniform", "weighted"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q", want)
		}
	}

	points, err := EquilibriumSweep(context.Background(), env, SweepV, []float64{0, 4000})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteSweepReport(&sb, SweepV, points, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Impact of mean intrinsic value") {
		t.Fatal("sweep report missing title")
	}

	sb.Reset()
	if err := WriteSeriesCSV(&sb, cmp.Schemes[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "time_s,loss,accuracy") {
		t.Fatal("CSV header missing")
	}
}
