// Package data provides the dataset substrate for the reproduction: the
// Synthetic(α, β) generator used in the paper's Setup 1, and class-conditional
// Gaussian stand-ins for the MNIST (Setup 2) and EMNIST lowercase (Setup 3)
// datasets, all partitioned across clients in the unbalanced (power-law) and
// non-i.i.d. (restricted label set per client) fashion the paper describes.
//
// The real image datasets cannot be downloaded in this offline environment;
// DESIGN.md §4 documents why class-conditional Gaussians preserve the
// behaviours the mechanism depends on (per-client sizes a_n and gradient-norm
// heterogeneity G_n under a convex multinomial logistic regression model).
package data

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/stats"
)

// Dataset is a labelled design matrix: X[i] is the i-th feature vector and
// Y[i] its class in [0, Classes).
type Dataset struct {
	X       [][]float64
	Y       []int
	Dim     int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Validate checks internal consistency (shapes and label ranges).
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return errors.New("data: X/Y length mismatch")
	}
	for i, x := range d.X {
		if len(x) != d.Dim {
			return fmt.Errorf("data: sample %d has dim %d, want %d", i, len(x), d.Dim)
		}
		if d.Y[i] < 0 || d.Y[i] >= d.Classes {
			return fmt.Errorf("data: sample %d has label %d outside [0,%d)", i, d.Y[i], d.Classes)
		}
	}
	return nil
}

// Subset returns a view of d restricted to the given indices. The feature
// vectors are shared, not copied.
func (d *Dataset) Subset(idx []int) (*Dataset, error) {
	out := &Dataset{
		X:       make([][]float64, len(idx)),
		Y:       make([]int, len(idx)),
		Dim:     d.Dim,
		Classes: d.Classes,
	}
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			return nil, fmt.Errorf("data: subset index %d out of range", j)
		}
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out, nil
}

// Concat merges several datasets with identical shape metadata.
func Concat(parts []*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, errors.New("data: concat of zero datasets")
	}
	out := &Dataset{Dim: parts[0].Dim, Classes: parts[0].Classes}
	for _, p := range parts {
		if p.Dim != out.Dim || p.Classes != out.Classes {
			return nil, errors.New("data: concat shape mismatch")
		}
		out.X = append(out.X, p.X...)
		out.Y = append(out.Y, p.Y...)
	}
	return out, nil
}

// Federated bundles the per-client shards, the pooled train set, a held-out
// test set, and the normalized client weights a_n = d_n / Σ d_m from the
// paper's problem definition (Section III-A).
type Federated struct {
	Clients []*Dataset
	Train   *Dataset
	Test    *Dataset
	Weights []float64
}

// NumClients returns the number of client shards.
func (f *Federated) NumClients() int { return len(f.Clients) }

// ComputeWeights derives the a_n weights from the shard sizes.
func ComputeWeights(clients []*Dataset) ([]float64, error) {
	if len(clients) == 0 {
		return nil, errors.New("data: no clients")
	}
	total := 0
	for _, c := range clients {
		total += c.Len()
	}
	if total == 0 {
		return nil, errors.New("data: all client shards empty")
	}
	w := make([]float64, len(clients))
	for i, c := range clients {
		w[i] = float64(c.Len()) / float64(total)
	}
	return w, nil
}

// ReplicateClients synthesizes an n-client fleet from f's shards without
// materializing per-client training sets: client i of the result shares shard
// i mod S by pointer (S = f's client count), so the data footprint stays
// O(shards) however large the fleet. Clients sharing a shard are still
// distinct devices — the engine gives each its own RNG cursor, so their
// minibatch trajectories differ. Train and Test stay f's de-duplicated pooled
// sets (one copy of each shard), keeping evaluation O(samples), while the
// per-client weights a_n are recomputed over the replicated fleet so they sum
// to one.
func ReplicateClients(f *Federated, n int) (*Federated, error) {
	if f == nil || f.NumClients() == 0 {
		return nil, errors.New("data: replicate of empty federation")
	}
	if n < f.NumClients() {
		return nil, fmt.Errorf("data: cannot replicate %d shards down to %d clients", f.NumClients(), n)
	}
	if n == f.NumClients() {
		return f, nil
	}
	clients := make([]*Dataset, n)
	for i := range clients {
		clients[i] = f.Clients[i%f.NumClients()]
	}
	weights, err := ComputeWeights(clients)
	if err != nil {
		return nil, err
	}
	return &Federated{Clients: clients, Train: f.Train, Test: f.Test, Weights: weights}, nil
}

// assemble builds a Federated from finished shards plus a test set.
func assemble(clients []*Dataset, test *Dataset) (*Federated, error) {
	weights, err := ComputeWeights(clients)
	if err != nil {
		return nil, err
	}
	train, err := Concat(clients)
	if err != nil {
		return nil, err
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("train set: %w", err)
	}
	if err := test.Validate(); err != nil {
		return nil, fmt.Errorf("test set: %w", err)
	}
	return &Federated{Clients: clients, Train: train, Test: test, Weights: weights}, nil
}

// classesForClient picks how many and which classes a client holds, for the
// non-i.i.d. label-restriction schemes ("each device has 1–6 classes").
func classesForClient(r *stats.RNG, totalClasses, minClasses, maxClasses int) []int {
	k := minClasses
	if maxClasses > minClasses {
		k += r.Intn(maxClasses - minClasses + 1)
	}
	if k > totalClasses {
		k = totalClasses
	}
	perm := r.Perm(totalClasses)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}
