package data

import (
	"errors"
	"fmt"
	"io"
)

// ClientSummary is one shard's headline statistics.
type ClientSummary struct {
	Client  int
	Samples int
	Weight  float64 // a_n
	Classes int     // distinct labels present
	Skew    float64 // SkewIndex of the shard
}

// Summarize computes per-client statistics for a federation — the
// unbalanced (power-law sizes) and non-i.i.d. (restricted labels, high
// skew) structure the paper's Setups 1–3 rely on.
func Summarize(f *Federated) ([]ClientSummary, error) {
	if f == nil || f.NumClients() == 0 {
		return nil, errors.New("data: nil or empty federation")
	}
	out := make([]ClientSummary, f.NumClients())
	for n, shard := range f.Clients {
		classes := 0
		for _, c := range LabelHistogram(shard) {
			if c > 0 {
				classes++
			}
		}
		out[n] = ClientSummary{
			Client:  n,
			Samples: shard.Len(),
			Weight:  f.Weights[n],
			Classes: classes,
			Skew:    SkewIndex(shard),
		}
	}
	return out, nil
}

// WriteSummary renders the per-client statistics as a markdown table.
func WriteSummary(w io.Writer, f *Federated) error {
	rows, err := Summarize(f)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"federation: %d clients, %d train samples, %d test samples, %d classes\n\n",
		f.NumClients(), f.Train.Len(), f.Test.Len(), f.Train.Classes); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| client | samples | weight a_n | classes | skew |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---:|---:|---:|---:|---:|"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %d | %d | %.4f | %d | %.3f |\n",
			r.Client, r.Samples, r.Weight, r.Classes, r.Skew); err != nil {
			return err
		}
	}
	return nil
}
