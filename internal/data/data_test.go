package data

import (
	"math"
	"testing"
	"testing/quick"

	"unbiasedfl/internal/stats"
)

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{X: [][]float64{{1, 2}}, Y: []int{0}, Dim: 2, Classes: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	badLen := &Dataset{X: [][]float64{{1, 2}}, Y: []int{0, 1}, Dim: 2, Classes: 2}
	if err := badLen.Validate(); err == nil {
		t.Fatal("expected X/Y mismatch error")
	}
	badDim := &Dataset{X: [][]float64{{1}}, Y: []int{0}, Dim: 2, Classes: 2}
	if err := badDim.Validate(); err == nil {
		t.Fatal("expected dim error")
	}
	badLabel := &Dataset{X: [][]float64{{1, 2}}, Y: []int{5}, Dim: 2, Classes: 2}
	if err := badLabel.Validate(); err == nil {
		t.Fatal("expected label error")
	}
}

func TestSubsetAndConcat(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{0}, {1}, {2}, {3}}, Y: []int{0, 1, 0, 1},
		Dim: 1, Classes: 2,
	}
	s, err := d.Subset([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.X[0][0] != 3 || s.Y[1] != 1 {
		t.Fatalf("subset wrong: %+v", s)
	}
	if _, err := d.Subset([]int{9}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	c, err := Concat([]*Dataset{d, s})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 6 {
		t.Fatalf("concat length %d", c.Len())
	}
	if _, err := Concat(nil); err == nil {
		t.Fatal("expected empty concat error")
	}
	other := &Dataset{Dim: 2, Classes: 2}
	if _, err := Concat([]*Dataset{d, other}); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestComputeWeights(t *testing.T) {
	clients := []*Dataset{
		{X: make([][]float64, 30), Y: make([]int, 30), Dim: 1, Classes: 2},
		{X: make([][]float64, 10), Y: make([]int, 10), Dim: 1, Classes: 2},
	}
	w, err := ComputeWeights(clients)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.75) > 1e-12 || math.Abs(w[1]-0.25) > 1e-12 {
		t.Fatalf("weights %v", w)
	}
	if _, err := ComputeWeights(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := ComputeWeights([]*Dataset{{Dim: 1, Classes: 2}}); err == nil {
		t.Fatal("expected all-empty error")
	}
}

func TestGenerateSyntheticShape(t *testing.T) {
	r := stats.NewRNG(1)
	cfg := DefaultSyntheticConfig()
	cfg.NumClients = 8
	cfg.TotalSamples = 900
	fed, err := GenerateSynthetic(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fed.NumClients() != 8 {
		t.Fatalf("clients %d", fed.NumClients())
	}
	var wsum float64
	totalTrain := 0
	for n, c := range fed.Clients {
		if err := c.Validate(); err != nil {
			t.Fatalf("client %d: %v", n, err)
		}
		totalTrain += c.Len()
		wsum += fed.Weights[n]
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum %v", wsum)
	}
	if fed.Train.Len() != totalTrain {
		t.Fatalf("train %d vs shards %d", fed.Train.Len(), totalTrain)
	}
	if fed.Test.Len() == 0 {
		t.Fatal("empty test set")
	}
	if err := fed.Test.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.NumClients = 4
	cfg.TotalSamples = 400
	a, err := GenerateSynthetic(stats.NewRNG(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSynthetic(stats.NewRNG(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := range a.Clients {
		if a.Clients[n].Len() != b.Clients[n].Len() {
			t.Fatal("sizes differ across identical seeds")
		}
		for i := range a.Clients[n].X {
			if a.Clients[n].Y[i] != b.Clients[n].Y[i] {
				t.Fatal("labels differ across identical seeds")
			}
			for j := range a.Clients[n].X[i] {
				if a.Clients[n].X[i][j] != b.Clients[n].X[i][j] {
					t.Fatal("features differ across identical seeds")
				}
			}
		}
	}
}

func TestGenerateSyntheticValidation(t *testing.T) {
	r := stats.NewRNG(1)
	bad := DefaultSyntheticConfig()
	bad.NumClients = 0
	if _, err := GenerateSynthetic(r, bad); err == nil {
		t.Fatal("expected error for zero clients")
	}
	bad = DefaultSyntheticConfig()
	bad.TestFraction = 1.5
	if _, err := GenerateSynthetic(r, bad); err == nil {
		t.Fatal("expected error for invalid test fraction")
	}
	bad = DefaultSyntheticConfig()
	bad.Classes = 1
	if _, err := GenerateSynthetic(r, bad); err == nil {
		t.Fatal("expected error for single class")
	}
}

func TestGenerateImageLikeShapes(t *testing.T) {
	for name, cfg := range map[string]ImageLikeConfig{
		"mnist":  MNISTLikeConfig(),
		"emnist": EMNISTLikeConfig(),
	} {
		cfg.NumClients = 10
		cfg.TotalSamples = 1500
		cfg.TestSamples = 300
		fed, err := GenerateImageLike(stats.NewRNG(3), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fed.NumClients() != 10 {
			t.Fatalf("%s: clients %d", name, fed.NumClients())
		}
		total := 0
		for _, c := range fed.Clients {
			if err := c.Validate(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			total += c.Len()
		}
		if total != cfg.TotalSamples {
			t.Fatalf("%s: total %d want %d", name, total, cfg.TotalSamples)
		}
		if fed.Test.Len() != cfg.TestSamples {
			t.Fatalf("%s: test %d", name, fed.Test.Len())
		}
	}
}

func TestImageLikeClassRestriction(t *testing.T) {
	cfg := MNISTLikeConfig()
	cfg.NumClients = 12
	cfg.TotalSamples = 2400
	fed, err := GenerateImageLike(stats.NewRNG(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n, c := range fed.Clients {
		classes := 0
		for _, cnt := range LabelHistogram(c) {
			if cnt > 0 {
				classes++
			}
		}
		if classes < 1 || classes > cfg.MaxClasses {
			t.Fatalf("client %d holds %d classes, want 1..%d", n, classes, cfg.MaxClasses)
		}
	}
}

func TestImageLikeNonIID(t *testing.T) {
	cfg := MNISTLikeConfig()
	cfg.NumClients = 10
	cfg.TotalSamples = 2000
	fed, err := GenerateImageLike(stats.NewRNG(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var skews []float64
	for _, c := range fed.Clients {
		skews = append(skews, SkewIndex(c))
	}
	if stats.Mean(skews) < 0.3 {
		t.Fatalf("partition not skewed enough: mean skew %v", stats.Mean(skews))
	}
	// The pooled train set should be much less skewed than shards.
	if SkewIndex(fed.Train) > stats.Mean(skews) {
		t.Fatal("pooled train set more skewed than shards")
	}
}

func TestImageLikeValidation(t *testing.T) {
	r := stats.NewRNG(1)
	bad := MNISTLikeConfig()
	bad.MinClasses = 0
	if _, err := GenerateImageLike(r, bad); err == nil {
		t.Fatal("expected error for zero min classes")
	}
	bad = MNISTLikeConfig()
	bad.NoiseStd = 0
	if _, err := GenerateImageLike(r, bad); err == nil {
		t.Fatal("expected error for zero noise")
	}
	bad = MNISTLikeConfig()
	bad.TestSamples = -1
	if _, err := GenerateImageLike(r, bad); err == nil {
		t.Fatal("expected error for negative test samples")
	}
}

func TestSkewIndexBounds(t *testing.T) {
	uniform := &Dataset{Dim: 1, Classes: 2,
		X: [][]float64{{0}, {0}}, Y: []int{0, 1}}
	if s := SkewIndex(uniform); math.Abs(s) > 1e-12 {
		t.Fatalf("uniform skew %v", s)
	}
	single := &Dataset{Dim: 1, Classes: 2,
		X: [][]float64{{0}, {0}}, Y: []int{1, 1}}
	if s := SkewIndex(single); math.Abs(s-1) > 1e-12 {
		t.Fatalf("single-class skew %v", s)
	}
	if SkewIndex(&Dataset{Classes: 3}) != 0 {
		t.Fatal("empty dataset skew should be 0")
	}
}

func TestQuickWeightsAlwaysNormalized(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := MNISTLikeConfig()
		cfg.NumClients = 6
		cfg.TotalSamples = 600
		cfg.TestSamples = 50
		fed, err := GenerateImageLike(stats.NewRNG(seed), cfg)
		if err != nil {
			return false
		}
		var sum float64
		for _, w := range fed.Weights {
			if w <= 0 {
				return false
			}
			sum += w
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
