package data

import (
	"strings"
	"testing"

	"unbiasedfl/internal/stats"
)

func TestSummarize(t *testing.T) {
	cfg := MNISTLikeConfig()
	cfg.NumClients = 6
	cfg.TotalSamples = 900
	cfg.TestSamples = 100
	fed, err := GenerateImageLike(stats.NewRNG(13), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Summarize(fed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	totalSamples := 0
	var totalWeight float64
	for _, r := range rows {
		if r.Samples <= 0 || r.Weight <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Classes < 1 || r.Classes > cfg.MaxClasses {
			t.Fatalf("class count %d outside 1..%d", r.Classes, cfg.MaxClasses)
		}
		if r.Skew < 0 || r.Skew > 1 {
			t.Fatalf("skew %v outside [0,1]", r.Skew)
		}
		totalSamples += r.Samples
		totalWeight += r.Weight
	}
	if totalSamples != cfg.TotalSamples {
		t.Fatalf("samples %d want %d", totalSamples, cfg.TotalSamples)
	}
	if totalWeight < 0.999 || totalWeight > 1.001 {
		t.Fatalf("weights sum %v", totalWeight)
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("expected nil federation error")
	}
}

func TestWriteSummary(t *testing.T) {
	cfg := MNISTLikeConfig()
	cfg.NumClients = 4
	cfg.TotalSamples = 400
	cfg.TestSamples = 50
	fed, err := GenerateImageLike(stats.NewRNG(17), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSummary(&sb, fed); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"federation: 4 clients", "weight a_n", "skew"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q", want)
		}
	}
	if err := WriteSummary(&sb, nil); err == nil {
		t.Fatal("expected nil federation error")
	}
}
