package data

import (
	"errors"
	"fmt"
	"math"

	"unbiasedfl/internal/stats"
)

// ImageLikeConfig parameterizes the class-conditional Gaussian stand-ins for
// the paper's MNIST and EMNIST setups. Each class c has a fixed prototype
// mean μ_c in feature space; samples are μ_c + noise. Clients receive a
// restricted random label set (non-i.i.d.) and power-law sizes (unbalanced),
// exactly the partition statistics the paper reports.
type ImageLikeConfig struct {
	NumClients   int
	TotalSamples int
	Dim          int
	Classes      int
	MinClasses   int // fewest classes a client may hold
	MaxClasses   int // most classes a client may hold
	ClassSpread  float64
	NoiseStd     float64
	PowerLawExp  float64
	MinPerClient int
	TestFraction float64
	TestSamples  int // held-out i.i.d. test samples across all classes
}

// MNISTLikeConfig mirrors the paper's Setup 2: 14,463 samples, 10 classes,
// each device holding 1–6 classes, unbalanced power-law sizes. Feature
// dimension is 64 instead of 784 for laptop-scale runs (DESIGN.md §4).
func MNISTLikeConfig() ImageLikeConfig {
	return ImageLikeConfig{
		NumClients:   40,
		TotalSamples: 14463,
		Dim:          64,
		Classes:      10,
		MinClasses:   1,
		MaxClasses:   6,
		ClassSpread:  2.0,
		NoiseStd:     1.0,
		PowerLawExp:  1.2,
		MinPerClient: 20,
		TestSamples:  2000,
	}
}

// EMNISTLikeConfig mirrors the paper's Setup 3: 35,155 lowercase-letter
// samples, 26 classes, each device holding a random 1–10 classes.
func EMNISTLikeConfig() ImageLikeConfig {
	return ImageLikeConfig{
		NumClients:   40,
		TotalSamples: 35155,
		Dim:          64,
		Classes:      26,
		MinClasses:   1,
		MaxClasses:   10,
		ClassSpread:  2.0,
		NoiseStd:     1.2,
		PowerLawExp:  1.2,
		MinPerClient: 20,
		TestSamples:  3000,
	}
}

func (c ImageLikeConfig) validate() error {
	switch {
	case c.NumClients <= 0:
		return errors.New("data: image-like needs at least one client")
	case c.TotalSamples <= 0:
		return errors.New("data: image-like needs samples")
	case c.Dim <= 0 || c.Classes <= 1:
		return errors.New("data: image-like needs dim >= 1 and classes >= 2")
	case c.MinClasses < 1 || c.MaxClasses < c.MinClasses:
		return errors.New("data: invalid class range per client")
	case c.NoiseStd <= 0:
		return errors.New("data: noise std must be positive")
	case c.TestSamples < 0:
		return errors.New("data: negative test sample count")
	}
	return nil
}

// GenerateImageLike builds a federated class-conditional Gaussian dataset
// per cfg.
func GenerateImageLike(r *stats.RNG, cfg ImageLikeConfig) (*Federated, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sizes, err := stats.PowerLawSizes(r, cfg.NumClients, cfg.TotalSamples, cfg.MinPerClient, cfg.PowerLawExp)
	if err != nil {
		return nil, fmt.Errorf("image-like sizes: %w", err)
	}

	// Fixed class prototypes shared by every client.
	protos := make([][]float64, cfg.Classes)
	for c := range protos {
		p := make([]float64, cfg.Dim)
		for j := range p {
			p[j] = cfg.ClassSpread * r.NormFloat64()
		}
		protos[c] = p
	}

	sample := func(rr *stats.RNG, class int) []float64 {
		x := make([]float64, cfg.Dim)
		p := protos[class]
		for j := range x {
			x[j] = p[j] + cfg.NoiseStd*rr.NormFloat64()
		}
		return x
	}

	clients := make([]*Dataset, cfg.NumClients)
	for k := 0; k < cfg.NumClients; k++ {
		cr := r.Split()
		labels := classesForClient(cr, cfg.Classes, cfg.MinClasses, cfg.MaxClasses)
		ds := &Dataset{Dim: cfg.Dim, Classes: cfg.Classes}
		for i := 0; i < sizes[k]; i++ {
			class := labels[cr.Intn(len(labels))]
			ds.X = append(ds.X, sample(cr, class))
			ds.Y = append(ds.Y, class)
		}
		clients[k] = ds
	}

	// I.i.d. test set over all classes, as the server-side evaluation set.
	tr := r.Split()
	test := &Dataset{Dim: cfg.Dim, Classes: cfg.Classes}
	for i := 0; i < cfg.TestSamples; i++ {
		class := tr.Intn(cfg.Classes)
		test.X = append(test.X, sample(tr, class))
		test.Y = append(test.Y, class)
	}
	// Guard against a configured-but-empty test set downstream; generation
	// above always matches cfg.TestSamples but keep the invariant explicit.
	if test.Len() == 0 && cfg.TestSamples > 0 {
		return nil, errors.New("data: empty test set")
	}
	return assemble(clients, test)
}

// LabelHistogram counts samples per class; useful for verifying the
// non-i.i.d. partition in tests and examples.
func LabelHistogram(d *Dataset) []int {
	h := make([]int, d.Classes)
	for _, y := range d.Y {
		h[y]++
	}
	return h
}

// SkewIndex measures label skew of a shard against uniform: 0 means the
// shard covers all classes uniformly, 1 means it is concentrated on a single
// class. Defined as half the L1 distance between the shard's label
// distribution and the uniform distribution, normalized to [0, 1].
func SkewIndex(d *Dataset) float64 {
	if d.Len() == 0 || d.Classes == 0 {
		return 0
	}
	h := LabelHistogram(d)
	uniform := 1.0 / float64(d.Classes)
	var l1 float64
	for _, c := range h {
		l1 += math.Abs(float64(c)/float64(d.Len()) - uniform)
	}
	max := 2 * (1 - uniform)
	if max == 0 {
		return 0
	}
	return l1 / max
}
