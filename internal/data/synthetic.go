package data

import (
	"errors"
	"fmt"
	"math"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// SyntheticConfig parameterizes the Synthetic(α, β) generator from the FL
// literature (Li et al., "Federated Optimization in Heterogeneous Networks"),
// which the paper's Setup 1 uses with α = β = 1, 60-dimensional inputs,
// 22,377 samples, and power-law sizes across 40 devices.
type SyntheticConfig struct {
	NumClients   int
	TotalSamples int
	Dim          int
	Classes      int
	Alpha        float64 // controls how much local models differ across devices
	Beta         float64 // controls how much local data differs across devices
	PowerLawExp  float64 // exponent of the unbalanced size distribution
	MinPerClient int
	TestFraction float64 // share of each client's generated samples held out
}

// DefaultSyntheticConfig mirrors the paper's Setup 1 shape.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		NumClients:   40,
		TotalSamples: 22377,
		Dim:          60,
		Classes:      10,
		Alpha:        1,
		Beta:         1,
		PowerLawExp:  1.2,
		MinPerClient: 20,
		TestFraction: 0.2,
	}
}

func (c SyntheticConfig) validate() error {
	switch {
	case c.NumClients <= 0:
		return errors.New("data: synthetic needs at least one client")
	case c.TotalSamples <= 0:
		return errors.New("data: synthetic needs samples")
	case c.Dim <= 0 || c.Classes <= 1:
		return errors.New("data: synthetic needs dim >= 1 and classes >= 2")
	case c.TestFraction < 0 || c.TestFraction >= 1:
		return errors.New("data: test fraction must be in [0, 1)")
	}
	return nil
}

// GenerateSynthetic builds a federated Synthetic(α, β) dataset. Each client k
// draws a private softmax model W_k, b_k ~ N(u_k, 1) with u_k ~ N(0, α) and a
// private input mean v_k ~ N(B_k, 1) with B_k ~ N(0, β); inputs have
// coordinate variances j^{-1.2} and labels come from the client's own model,
// so both the features and the conditional label distribution are non-i.i.d.
// across clients.
func GenerateSynthetic(r *stats.RNG, cfg SyntheticConfig) (*Federated, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sizes, err := stats.PowerLawSizes(r, cfg.NumClients, cfg.TotalSamples, cfg.MinPerClient, cfg.PowerLawExp)
	if err != nil {
		return nil, fmt.Errorf("synthetic sizes: %w", err)
	}

	// Shared coordinate scales Σ_jj = j^{-1.2}.
	scales := make([]float64, cfg.Dim)
	for j := range scales {
		scales[j] = math.Pow(float64(j+1), -1.2)
	}

	clients := make([]*Dataset, cfg.NumClients)
	var testParts []*Dataset
	for k := 0; k < cfg.NumClients; k++ {
		cr := r.Split()
		uk := math.Sqrt(cfg.Alpha) * cr.NormFloat64()
		bk := math.Sqrt(cfg.Beta) * cr.NormFloat64()

		wk, err := tensor.NewMat(cfg.Classes, cfg.Dim)
		if err != nil {
			return nil, err
		}
		for i := range wk.Data {
			wk.Data[i] = uk + cr.NormFloat64()
		}
		bias := make(tensor.Vec, cfg.Classes)
		for i := range bias {
			bias[i] = uk + cr.NormFloat64()
		}
		vk := make([]float64, cfg.Dim)
		for j := range vk {
			vk[j] = bk + cr.NormFloat64()
		}

		nTest := int(float64(sizes[k]) * cfg.TestFraction)
		nTrain := sizes[k] - nTest
		gen := func(n int) (*Dataset, error) {
			ds := &Dataset{Dim: cfg.Dim, Classes: cfg.Classes}
			logits := make(tensor.Vec, cfg.Classes)
			for i := 0; i < n; i++ {
				x := make([]float64, cfg.Dim)
				for j := range x {
					x[j] = vk[j] + math.Sqrt(scales[j])*cr.NormFloat64()
				}
				if err := wk.MulVec(tensor.Vec(x), logits); err != nil {
					return nil, err
				}
				for c := range logits {
					logits[c] += bias[c]
				}
				y, err := tensor.ArgMax(logits)
				if err != nil {
					return nil, err
				}
				ds.X = append(ds.X, x)
				ds.Y = append(ds.Y, y)
			}
			return ds, nil
		}
		train, err := gen(nTrain)
		if err != nil {
			return nil, err
		}
		test, err := gen(nTest)
		if err != nil {
			return nil, err
		}
		clients[k] = train
		testParts = append(testParts, test)
	}
	test, err := Concat(testParts)
	if err != nil {
		return nil, err
	}
	return assemble(clients, test)
}
