package model

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// gradChunk caps how many samples the batched gradient kernels process at a
// time, bounding a Scratch's probability buffer at gradChunk×classes floats
// regardless of batch (or full-dataset) size while keeping the working set
// cache-resident.
const gradChunk = 256

// Scratch holds the reusable buffers of the batched gradient kernel so a
// steady-state training step allocates nothing. Each training goroutine owns
// one; the zero value is ready to use and grows on first use.
type Scratch struct {
	idx    []int
	labels []int
	rows   [][]float64
	probs  tensor.Vec
	grad   tensor.Vec
}

// ensureGrad returns the gradient buffer sized to p parameters.
func (s *Scratch) ensureGrad(p int) tensor.Vec {
	if cap(s.grad) < p {
		s.grad = tensor.NewVec(p)
	}
	s.grad = s.grad[:p]
	return s.grad
}

// ensureProbs returns just the score buffer, for evaluation paths that feed
// contiguous dataset rows straight to the kernels.
func (s *Scratch) ensureProbs(n int) tensor.Vec {
	if cap(s.probs) < n {
		s.probs = tensor.NewVec(n)
	}
	s.probs = s.probs[:n]
	return s.probs
}

// ensureIdx returns the batch-index buffer sized to n.
func (s *Scratch) ensureIdx(n int) []int {
	if cap(s.idx) < n {
		s.idx = make([]int, n)
	}
	s.idx = s.idx[:n]
	return s.idx
}

// ensureChunk sizes the row, label, and probability buffers for a chunk of n
// samples over the given class count.
func (s *Scratch) ensureChunk(n, classes int) {
	if cap(s.rows) < n {
		s.rows = make([][]float64, n)
	}
	s.rows = s.rows[:n]
	if cap(s.labels) < n {
		s.labels = make([]int, n)
	}
	s.labels = s.labels[:n]
	if cap(s.probs) < n*classes {
		s.probs = tensor.NewVec(n * classes)
	}
	s.probs = s.probs[:n*classes]
}

// BatchGradienter is the allocation-free fast path the FL engine uses when a
// model supports it: identical semantics to Model.StochasticGradient, but
// every buffer the step needs comes from the caller-owned Scratch.
type BatchGradienter interface {
	StochasticGradientScratch(w tensor.Vec, ds *data.Dataset, batchSize int,
		r *stats.RNG, grad tensor.Vec, s *Scratch) error
}

// LocalStepper is the fused local-SGD fast path: draw a mini-batch, take one
// in-place step w ← w − lr·∇F_B(w), and report ‖∇F_B(w)‖². Fusing the L2
// term, the squared-norm reduction, and the parameter update into a single
// pass over the parameters saves two full read-modify-write sweeps per step
// relative to composing StochasticGradient + SqNorm + AddScaled.
type LocalStepper interface {
	SGDStep(w tensor.Vec, ds *data.Dataset, batchSize int, lr float64,
		r *stats.RNG, s *Scratch) (gradSqNorm float64, err error)
}

// fusedStep applies gj = g[j] + mu·w[j]; w[j] -= lr·gj element-wise and
// returns Σ gj², in the same per-element operation order as the unfused
// AddScaled/SqNorm/AddScaled sequence.
func fusedStep(w, g tensor.Vec, mu, lr float64) float64 {
	g = g[:len(w)]
	var sq float64
	for j := range w {
		gj := g[j] + mu*w[j]
		sq += gj * gj
		w[j] -= lr * gj
	}
	return sq
}

// Both model families are linear score models sharing the flattened
// (weights row-major, then biases) layout, so the whole gradient path —
// batch draw, chunked batched kernels, fused step — is shared below and
// parameterized only by whether scores pass through a softmax (logistic
// regression) or are used raw as residuals (ridge).

// drawBatch validates the mini-batch arguments and fills the scratch index
// buffer with batchSize uniform draws (with replacement).
func drawBatch(ds *data.Dataset, batchSize int, r *stats.RNG, s *Scratch) ([]int, error) {
	if ds.Len() == 0 {
		return nil, errors.New("model: gradient on empty dataset")
	}
	if batchSize <= 0 {
		return nil, errors.New("model: non-positive batch size")
	}
	if batchSize > ds.Len() {
		batchSize = ds.Len()
	}
	idx := s.ensureIdx(batchSize)
	for i := range idx {
		idx[i] = r.Intn(ds.Len())
	}
	return idx, nil
}

// linearDataGradient accumulates the average data gradient (no L2 term)
// over n sample indices (the identity permutation when idx is nil). The
// mini-batch is processed through the batched kernels in gradChunk-sized
// blocks: one X·Wᵀ+b logits pass, an optional row-wise softmax, the onehot
// subtraction, and one Pᵀ·X accumulation per block, instead of per-sample
// dot products.
func linearDataGradient(
	w tensor.Vec, ds *data.Dataset, idx []int, n, dim, classes int,
	softmax bool, grad tensor.Vec, s *Scratch,
) error {
	params := classes*dim + classes
	if len(grad) != params {
		return errors.New("model: gradient buffer size mismatch")
	}
	if len(w) != params {
		return fmt.Errorf("model: params length %d, want %d", len(w), params)
	}
	grad.Zero()
	wRows := w[:classes*dim]
	bias := w[classes*dim:]
	gRows := grad[:classes*dim]
	gBias := grad[classes*dim:]
	inv := 1.0 / float64(n)
	s.ensureChunk(min(n, gradChunk), classes)
	for lo := 0; lo < n; lo += gradChunk {
		hi := min(lo+gradChunk, n)
		b := hi - lo
		rows := s.rows[:b]
		labels := s.labels[:b]
		for i := 0; i < b; i++ {
			j := lo + i
			if idx != nil {
				j = idx[lo+i]
			}
			rows[i] = ds.X[j]
			labels[i] = ds.Y[j]
		}
		probs := s.probs[:b*classes]
		if err := tensor.LogitsBatch(rows, wRows, bias, dim, classes, probs); err != nil {
			return err
		}
		if softmax {
			if err := tensor.SoftmaxRows(probs, b, classes); err != nil {
				return err
			}
		}
		for i := 0; i < b; i++ {
			probs[i*classes+labels[i]] -= 1 // scores (or softmax) - onehot
		}
		if err := tensor.AddScaledTMul(inv, rows, probs, classes, dim, gRows); err != nil {
			return err
		}
		for c := 0; c < classes; c++ {
			var sum float64
			for i := 0; i < b; i++ {
				sum += probs[i*classes+c]
			}
			gBias[c] += inv * sum
		}
	}
	return nil
}

// linearBatchGradient is linearDataGradient plus the L2 term.
func linearBatchGradient(
	w tensor.Vec, ds *data.Dataset, idx []int, n, dim, classes int,
	mu float64, softmax bool, grad tensor.Vec, s *Scratch,
) error {
	if err := linearDataGradient(w, ds, idx, n, dim, classes, softmax, grad, s); err != nil {
		return err
	}
	if mu > 0 {
		return grad.AddScaled(mu, w)
	}
	return nil
}

// linearStochasticGradient draws a batch and computes its full gradient.
func linearStochasticGradient(
	w tensor.Vec, ds *data.Dataset, batchSize int, r *stats.RNG,
	dim, classes int, mu float64, softmax bool, grad tensor.Vec, s *Scratch,
) error {
	if s == nil {
		s = new(Scratch)
	}
	idx, err := drawBatch(ds, batchSize, r, s)
	if err != nil {
		return err
	}
	return linearBatchGradient(w, ds, idx, len(idx), dim, classes, mu, softmax, grad, s)
}

// linearSGDStep draws a batch and takes one fused in-place SGD step,
// returning ‖∇F_B(w)‖².
func linearSGDStep(
	w tensor.Vec, ds *data.Dataset, batchSize int, lr float64, r *stats.RNG,
	dim, classes int, mu float64, softmax bool, s *Scratch,
) (float64, error) {
	if s == nil {
		s = new(Scratch)
	}
	idx, err := drawBatch(ds, batchSize, r, s)
	if err != nil {
		return 0, err
	}
	grad := s.ensureGrad(classes*dim + classes)
	if err := linearDataGradient(w, ds, idx, len(idx), dim, classes, softmax, grad, s); err != nil {
		return 0, err
	}
	return fusedStep(w, grad, mu, lr), nil
}

var (
	_ BatchGradienter = (*LogisticRegression)(nil)
	_ BatchGradienter = (*RidgeRegression)(nil)
	_ LocalStepper    = (*LogisticRegression)(nil)
	_ LocalStepper    = (*RidgeRegression)(nil)
)
