package model

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// RidgeRegression is the second convex model family of the paper's
// Assumption-1 examples: one-hot least-squares (multi-output ridge)
// classification. The objective on a shard is
//
//	F(w) = (1/2n) Σ_i ‖Wx_i + b − onehot(y_i)‖² + (μ/2)‖w‖²,
//
// which is μ-strongly convex and L-smooth with L ≤ max‖x̃‖² + μ. Parameters
// share the flattened layout of LogisticRegression (weights row-major, then
// biases), so the two families are drop-in interchangeable everywhere the
// Model interface is used.
type RidgeRegression struct {
	Dim     int
	Classes int
	Mu      float64
}

// NewRidgeRegression validates and constructs the model family.
func NewRidgeRegression(dim, classes int, mu float64) (*RidgeRegression, error) {
	switch {
	case dim <= 0:
		return nil, errors.New("model: dim must be positive")
	case classes <= 1:
		return nil, errors.New("model: need at least two classes")
	case mu < 0:
		return nil, errors.New("model: negative regularization")
	}
	return &RidgeRegression{Dim: dim, Classes: classes, Mu: mu}, nil
}

// NumParams implements Model.
func (m *RidgeRegression) NumParams() int { return m.Classes*m.Dim + m.Classes }

// ZeroParams implements Model.
func (m *RidgeRegression) ZeroParams() tensor.Vec { return tensor.NewVec(m.NumParams()) }

// StrongConvexity implements Model.
func (m *RidgeRegression) StrongConvexity() float64 { return m.Mu }

// scores computes the linear outputs Wx + b into out.
func (m *RidgeRegression) scores(w tensor.Vec, x []float64, out tensor.Vec) error {
	if len(w) != m.NumParams() {
		return fmt.Errorf("model: params length %d, want %d", len(w), m.NumParams())
	}
	if len(x) != m.Dim {
		return fmt.Errorf("model: input dim %d, want %d", len(x), m.Dim)
	}
	if len(out) != m.Classes {
		return errors.New("model: scores buffer size mismatch")
	}
	for c := 0; c < m.Classes; c++ {
		row := w[c*m.Dim : (c+1)*m.Dim]
		var s float64
		for j, rj := range row {
			s += rj * x[j]
		}
		out[c] = s + w[m.Classes*m.Dim+c]
	}
	return nil
}

// Loss implements Model.
func (m *RidgeRegression) Loss(w tensor.Vec, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: loss on empty dataset")
	}
	scores := make(tensor.Vec, m.Classes)
	var sum float64
	for i := range ds.X {
		if err := m.scores(w, ds.X[i], scores); err != nil {
			return 0, err
		}
		for c := 0; c < m.Classes; c++ {
			target := 0.0
			if c == ds.Y[i] {
				target = 1.0
			}
			d := scores[c] - target
			sum += 0.5 * d * d
		}
	}
	return sum/float64(ds.Len()) + 0.5*m.Mu*w.SqNorm(), nil
}

// Gradient implements Model.
func (m *RidgeRegression) Gradient(w tensor.Vec, ds *data.Dataset, grad tensor.Vec) error {
	if ds.Len() == 0 {
		return errors.New("model: gradient on empty dataset")
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	return m.batchGradient(w, ds, idx, grad)
}

// StochasticGradient implements Model.
func (m *RidgeRegression) StochasticGradient(
	w tensor.Vec, ds *data.Dataset, batchSize int, r *stats.RNG, grad tensor.Vec,
) error {
	if ds.Len() == 0 {
		return errors.New("model: gradient on empty dataset")
	}
	if batchSize <= 0 {
		return errors.New("model: non-positive batch size")
	}
	if batchSize > ds.Len() {
		batchSize = ds.Len()
	}
	idx := make([]int, batchSize)
	for i := range idx {
		idx[i] = r.Intn(ds.Len())
	}
	return m.batchGradient(w, ds, idx, grad)
}

func (m *RidgeRegression) batchGradient(w tensor.Vec, ds *data.Dataset, idx []int, grad tensor.Vec) error {
	if len(grad) != m.NumParams() {
		return errors.New("model: gradient buffer size mismatch")
	}
	grad.Zero()
	scores := make(tensor.Vec, m.Classes)
	inv := 1.0 / float64(len(idx))
	for _, i := range idx {
		x := ds.X[i]
		if err := m.scores(w, x, scores); err != nil {
			return err
		}
		for c := 0; c < m.Classes; c++ {
			target := 0.0
			if c == ds.Y[i] {
				target = 1.0
			}
			rc := inv * (scores[c] - target) // residual
			row := grad[c*m.Dim : (c+1)*m.Dim]
			for j := range row {
				row[j] += rc * x[j]
			}
			grad[m.Classes*m.Dim+c] += rc
		}
	}
	if m.Mu > 0 {
		if err := grad.AddScaled(m.Mu, w); err != nil {
			return err
		}
	}
	return nil
}

// Accuracy implements Model: argmax of the linear scores.
func (m *RidgeRegression) Accuracy(w tensor.Vec, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: accuracy on empty dataset")
	}
	scores := make(tensor.Vec, m.Classes)
	correct := 0
	for i := range ds.X {
		if err := m.scores(w, ds.X[i], scores); err != nil {
			return 0, err
		}
		pred, err := tensor.ArgMax(scores)
		if err != nil {
			return 0, err
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// EstimateSmoothness implements Model: for squared loss the per-output
// Hessian is (1/n) Σ x̃x̃ᵀ with x̃ = (x, 1), so L ≤ max‖x̃‖² + μ.
func (m *RidgeRegression) EstimateSmoothness(ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: smoothness on empty dataset")
	}
	var maxSq float64
	for _, x := range ds.X {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		if s > maxSq {
			maxSq = s
		}
	}
	return maxSq + 1 + m.Mu, nil
}
