package model

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// RidgeRegression is the second convex model family of the paper's
// Assumption-1 examples: one-hot least-squares (multi-output ridge)
// classification. The objective on a shard is
//
//	F(w) = (1/2n) Σ_i ‖Wx_i + b − onehot(y_i)‖² + (μ/2)‖w‖²,
//
// which is μ-strongly convex and L-smooth with L ≤ max‖x̃‖² + μ. Parameters
// share the flattened layout of LogisticRegression (weights row-major, then
// biases), so the two families are drop-in interchangeable everywhere the
// Model interface is used.
type RidgeRegression struct {
	Dim     int
	Classes int
	Mu      float64
}

// NewRidgeRegression validates and constructs the model family.
func NewRidgeRegression(dim, classes int, mu float64) (*RidgeRegression, error) {
	switch {
	case dim <= 0:
		return nil, errors.New("model: dim must be positive")
	case classes <= 1:
		return nil, errors.New("model: need at least two classes")
	case mu < 0:
		return nil, errors.New("model: negative regularization")
	}
	return &RidgeRegression{Dim: dim, Classes: classes, Mu: mu}, nil
}

// NumParams implements Model.
func (m *RidgeRegression) NumParams() int { return m.Classes*m.Dim + m.Classes }

// ZeroParams implements Model.
func (m *RidgeRegression) ZeroParams() tensor.Vec { return tensor.NewVec(m.NumParams()) }

// StrongConvexity implements Model.
func (m *RidgeRegression) StrongConvexity() float64 { return m.Mu }

// scores computes the linear outputs Wx + b into out.
func (m *RidgeRegression) scores(w tensor.Vec, x []float64, out tensor.Vec) error {
	if len(w) != m.NumParams() {
		return fmt.Errorf("model: params length %d, want %d", len(w), m.NumParams())
	}
	if len(x) != m.Dim {
		return fmt.Errorf("model: input dim %d, want %d", len(x), m.Dim)
	}
	if len(out) != m.Classes {
		return errors.New("model: scores buffer size mismatch")
	}
	wRows := w[:m.Classes*m.Dim]
	bias := w[m.Classes*m.Dim:]
	return tensor.LogitsBatch([][]float64{x}, wRows, bias, m.Dim, m.Classes, out)
}

// Loss implements Model, evaluating the dataset in parallel shards with a
// fixed reduction order (see chunkSum).
func (m *RidgeRegression) Loss(w tensor.Vec, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: loss on empty dataset")
	}
	if len(w) != m.NumParams() {
		return 0, fmt.Errorf("model: params length %d, want %d", len(w), m.NumParams())
	}
	classes, dim := m.Classes, m.Dim
	wRows := w[:classes*dim]
	bias := w[classes*dim:]
	sum, err := chunkSum(ds.Len(), func(lo, hi int, s *Scratch) (float64, error) {
		b := hi - lo
		scores := s.ensureProbs(b * classes)
		if err := tensor.LogitsBatch(ds.X[lo:hi], wRows, bias, dim, classes, scores); err != nil {
			return 0, err
		}
		var part float64
		for i := 0; i < b; i++ {
			row := scores[i*classes : (i+1)*classes]
			y := ds.Y[lo+i]
			for c, v := range row {
				if c == y {
					v -= 1
				}
				part += 0.5 * v * v
			}
		}
		return part, nil
	})
	if err != nil {
		return 0, err
	}
	return sum/float64(ds.Len()) + 0.5*m.Mu*w.SqNorm(), nil
}

// Gradient implements Model.
func (m *RidgeRegression) Gradient(w tensor.Vec, ds *data.Dataset, grad tensor.Vec) error {
	if ds.Len() == 0 {
		return errors.New("model: gradient on empty dataset")
	}
	return m.batchGradient(w, ds, nil, ds.Len(), grad, new(Scratch))
}

// StochasticGradient implements Model.
func (m *RidgeRegression) StochasticGradient(
	w tensor.Vec, ds *data.Dataset, batchSize int, r *stats.RNG, grad tensor.Vec,
) error {
	return m.StochasticGradientScratch(w, ds, batchSize, r, grad, new(Scratch))
}

// StochasticGradientScratch implements BatchGradienter.
func (m *RidgeRegression) StochasticGradientScratch(
	w tensor.Vec, ds *data.Dataset, batchSize int, r *stats.RNG, grad tensor.Vec, s *Scratch,
) error {
	return linearStochasticGradient(w, ds, batchSize, r, m.Dim, m.Classes, m.Mu, false, grad, s)
}

// SGDStep implements LocalStepper: one fused, allocation-free local SGD step.
func (m *RidgeRegression) SGDStep(
	w tensor.Vec, ds *data.Dataset, batchSize int, lr float64, r *stats.RNG, s *Scratch,
) (float64, error) {
	return linearSGDStep(w, ds, batchSize, lr, r, m.Dim, m.Classes, m.Mu, false, s)
}

// batchGradient runs the shared batched kernel path (see batch.go) with raw
// residuals (scores − onehot) in place of softmax probabilities.
func (m *RidgeRegression) batchGradient(
	w tensor.Vec, ds *data.Dataset, idx []int, n int, grad tensor.Vec, s *Scratch,
) error {
	return linearBatchGradient(w, ds, idx, n, m.Dim, m.Classes, m.Mu, false, grad, s)
}

// Accuracy implements Model: argmax of the linear scores, evaluated in
// parallel shards.
func (m *RidgeRegression) Accuracy(w tensor.Vec, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: accuracy on empty dataset")
	}
	if len(w) != m.NumParams() {
		return 0, fmt.Errorf("model: params length %d, want %d", len(w), m.NumParams())
	}
	correct, err := countCorrect(w, ds, m.Dim, m.Classes)
	if err != nil {
		return 0, err
	}
	return correct / float64(ds.Len()), nil
}

// EstimateSmoothness implements Model: for squared loss the per-output
// Hessian is (1/n) Σ x̃x̃ᵀ with x̃ = (x, 1), so L ≤ max‖x̃‖² + μ.
func (m *RidgeRegression) EstimateSmoothness(ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: smoothness on empty dataset")
	}
	var maxSq float64
	for _, x := range ds.X {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		if s > maxSq {
			maxSq = s
		}
	}
	return maxSq + 1 + m.Mu, nil
}
