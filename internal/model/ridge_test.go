package model

import (
	"math"
	"testing"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
)

func TestNewRidgeRegressionValidation(t *testing.T) {
	if _, err := NewRidgeRegression(0, 2, 0.1); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := NewRidgeRegression(2, 1, 0.1); err == nil {
		t.Fatal("expected error for one class")
	}
	if _, err := NewRidgeRegression(2, 2, -1); err == nil {
		t.Fatal("expected error for negative mu")
	}
	m, err := NewRidgeRegression(3, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() != 3*4+4 {
		t.Fatalf("numparams %d", m.NumParams())
	}
	if m.StrongConvexity() != 0.01 {
		t.Fatalf("mu %v", m.StrongConvexity())
	}
}

func TestRidgeLossAtZero(t *testing.T) {
	r := stats.NewRNG(1)
	ds := twoBlobs(r, 50)
	m, _ := NewRidgeRegression(2, 2, 0)
	loss, err := m.Loss(m.ZeroParams(), ds)
	if err != nil {
		t.Fatal(err)
	}
	// At w = 0 every score is 0; each sample contributes ½(0−1)² + ½·0² = ½.
	if math.Abs(loss-0.5) > 1e-12 {
		t.Fatalf("loss at zero %v, want 0.5", loss)
	}
}

func TestRidgeGradientMatchesFiniteDifference(t *testing.T) {
	r := stats.NewRNG(2)
	ds := twoBlobs(r, 30)
	m, _ := NewRidgeRegression(2, 2, 0.2)
	w := m.ZeroParams()
	for i := range w {
		w[i] = 0.3 * r.NormFloat64()
	}
	grad := m.ZeroParams()
	if err := m.Gradient(w, ds, grad); err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for i := 0; i < len(w); i++ {
		wp := w.Clone()
		wp[i] += h
		lp, err := m.Loss(wp, ds)
		if err != nil {
			t.Fatal(err)
		}
		wm := w.Clone()
		wm[i] -= h
		lm, err := m.Loss(wm, ds)
		if err != nil {
			t.Fatal(err)
		}
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-4 {
			t.Fatalf("coord %d: fd %v vs grad %v", i, fd, grad[i])
		}
	}
}

func TestRidgeSolveSeparable(t *testing.T) {
	r := stats.NewRNG(3)
	ds := twoBlobs(r, 120)
	m, _ := NewRidgeRegression(2, 2, 0.05)
	w, err := Solve(m, ds, nil, SolveOptions{MaxIters: 4000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("separable accuracy %v", acc)
	}
}

func TestRidgeStochasticGradientUnbiased(t *testing.T) {
	r := stats.NewRNG(4)
	ds := twoBlobs(r, 25)
	m, _ := NewRidgeRegression(2, 2, 0.05)
	w := m.ZeroParams()
	for i := range w {
		w[i] = 0.2 * r.NormFloat64()
	}
	full := m.ZeroParams()
	if err := m.Gradient(w, ds, full); err != nil {
		t.Fatal(err)
	}
	avg := m.ZeroParams()
	g := m.ZeroParams()
	const reps = 4000
	for i := 0; i < reps; i++ {
		if err := m.StochasticGradient(w, ds, 5, r, g); err != nil {
			t.Fatal(err)
		}
		if err := avg.AddScaled(1.0/reps, g); err != nil {
			t.Fatal(err)
		}
	}
	for i := range avg {
		if math.Abs(avg[i]-full[i]) > 0.05*math.Max(math.Abs(full[i]), 1) {
			t.Fatalf("coord %d: avg %v vs full %v", i, avg[i], full[i])
		}
	}
}

func TestRidgeErrorsAndSmoothness(t *testing.T) {
	m, _ := NewRidgeRegression(2, 2, 0.25)
	empty := &data.Dataset{Dim: 2, Classes: 2}
	if _, err := m.Loss(m.ZeroParams(), empty); err == nil {
		t.Fatal("expected empty loss error")
	}
	if _, err := m.Accuracy(m.ZeroParams(), empty); err == nil {
		t.Fatal("expected empty accuracy error")
	}
	if err := m.Gradient(m.ZeroParams(), empty, m.ZeroParams()); err == nil {
		t.Fatal("expected empty gradient error")
	}
	if _, err := m.EstimateSmoothness(empty); err == nil {
		t.Fatal("expected empty smoothness error")
	}
	ds := twoBlobs(stats.NewRNG(9), 10)
	if err := m.StochasticGradient(m.ZeroParams(), ds, 0, stats.NewRNG(1), m.ZeroParams()); err == nil {
		t.Fatal("expected zero-batch error")
	}
	l, err := m.EstimateSmoothness(ds)
	if err != nil {
		t.Fatal(err)
	}
	if l <= m.Mu {
		t.Fatalf("smoothness %v too small", l)
	}
}
