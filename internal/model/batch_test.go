package model

import (
	"math"
	"runtime"
	"testing"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// randomDataset builds a dataset with standard-normal features and uniform
// labels, the raw material for kernel equivalence checks.
func randomDataset(r *stats.RNG, n, dim, classes int) *data.Dataset {
	ds := &data.Dataset{Dim: dim, Classes: classes}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, r.Intn(classes))
	}
	return ds
}

func randomParams(r *stats.RNG, m Model) tensor.Vec {
	w := m.ZeroParams()
	for i := range w {
		w[i] = 0.3 * r.NormFloat64()
	}
	return w
}

// perSampleLogregGradient is the retired pre-batching gradient path, kept
// here as the reference implementation for equivalence tests: one logits
// dot-product pass and one outer-product accumulation per sample.
func perSampleLogregGradient(m *LogisticRegression, w tensor.Vec, ds *data.Dataset, idx []int, grad tensor.Vec) error {
	grad.Zero()
	probs := make(tensor.Vec, m.Classes)
	inv := 1.0 / float64(len(idx))
	for _, i := range idx {
		x := ds.X[i]
		if err := m.Logits(w, x, probs); err != nil {
			return err
		}
		if err := tensor.SoftmaxInPlace(probs); err != nil {
			return err
		}
		probs[ds.Y[i]] -= 1
		for c := 0; c < m.Classes; c++ {
			pc := inv * probs[c]
			row := grad[c*m.Dim : (c+1)*m.Dim]
			for j := range row {
				row[j] += pc * x[j]
			}
			grad[m.Classes*m.Dim+c] += pc
		}
	}
	if m.Mu > 0 {
		return grad.AddScaled(m.Mu, w)
	}
	return nil
}

// perSampleRidgeGradient is the ridge analogue of the retired path.
func perSampleRidgeGradient(m *RidgeRegression, w tensor.Vec, ds *data.Dataset, idx []int, grad tensor.Vec) error {
	grad.Zero()
	scores := make(tensor.Vec, m.Classes)
	inv := 1.0 / float64(len(idx))
	for _, i := range idx {
		x := ds.X[i]
		if err := m.scores(w, x, scores); err != nil {
			return err
		}
		for c := 0; c < m.Classes; c++ {
			target := 0.0
			if c == ds.Y[i] {
				target = 1.0
			}
			rc := inv * (scores[c] - target)
			row := grad[c*m.Dim : (c+1)*m.Dim]
			for j := range row {
				row[j] += rc * x[j]
			}
			grad[m.Classes*m.Dim+c] += rc
		}
	}
	if m.Mu > 0 {
		return grad.AddScaled(m.Mu, w)
	}
	return nil
}

const batchTol = 1e-12

// gradShapes covers the blocking tails: class counts off the 4/2 blocks,
// batches off the 2/4-sample blocks, and batches larger than one chunk.
var gradShapes = []struct{ n, dim, classes, batch int }{
	{40, 7, 2, 5},
	{60, 12, 3, 16},
	{80, 9, 5, 17},
	{50, 16, 10, 24},
	{gradChunk + 37, 11, 6, gradChunk + 37}, // full-batch spanning two chunks
}

func TestLogregBatchedGradientMatchesPerSample(t *testing.T) {
	r := stats.NewRNG(11)
	for _, shape := range gradShapes {
		ds := randomDataset(r, shape.n, shape.dim, shape.classes)
		m, err := NewLogisticRegression(shape.dim, shape.classes, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		w := randomParams(r, m)
		idx := make([]int, shape.batch)
		for i := range idx {
			idx[i] = r.Intn(ds.Len())
		}
		got := m.ZeroParams()
		if err := m.batchGradient(w, ds, idx, len(idx), got, new(Scratch)); err != nil {
			t.Fatal(err)
		}
		want := m.ZeroParams()
		if err := perSampleLogregGradient(m, w, ds, idx, want); err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if math.Abs(got[j]-want[j]) > batchTol {
				t.Fatalf("%v: grad[%d] = %v, want %v (diff %g)",
					shape, j, got[j], want[j], got[j]-want[j])
			}
		}
	}
}

func TestRidgeBatchedGradientMatchesPerSample(t *testing.T) {
	r := stats.NewRNG(12)
	for _, shape := range gradShapes {
		ds := randomDataset(r, shape.n, shape.dim, shape.classes)
		m, err := NewRidgeRegression(shape.dim, shape.classes, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		w := randomParams(r, m)
		idx := make([]int, shape.batch)
		for i := range idx {
			idx[i] = r.Intn(ds.Len())
		}
		got := m.ZeroParams()
		if err := m.batchGradient(w, ds, idx, len(idx), got, new(Scratch)); err != nil {
			t.Fatal(err)
		}
		want := m.ZeroParams()
		if err := perSampleRidgeGradient(m, w, ds, idx, want); err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if math.Abs(got[j]-want[j]) > batchTol {
				t.Fatalf("%v: grad[%d] = %v, want %v", shape, j, got[j], want[j])
			}
		}
	}
}

// TestSGDStepMatchesUnfusedStep pins the fused LocalStepper path to the
// generic StochasticGradient + SqNorm + AddScaled sequence: same RNG seed,
// same batch draw, same resulting parameters and gradient norm.
func TestSGDStepMatchesUnfusedStep(t *testing.T) {
	root := stats.NewRNG(13)
	ds := randomDataset(root, 120, 10, 4)
	for _, mdl := range []Model{
		mustLogreg(t, 10, 4, 0.02),
		mustRidge(t, 10, 4, 0.02),
	} {
		stepper := mdl.(LocalStepper)
		w := randomParams(root, mdl)
		const lr = 0.05

		wFused := w.Clone()
		sq, err := stepper.SGDStep(wFused, ds, 8, lr, stats.NewRNG(99), new(Scratch))
		if err != nil {
			t.Fatal(err)
		}

		wRef := w.Clone()
		grad := mdl.ZeroParams()
		if err := mdl.StochasticGradient(wRef, ds, 8, stats.NewRNG(99), grad); err != nil {
			t.Fatal(err)
		}
		if err := wRef.AddScaled(-lr, grad); err != nil {
			t.Fatal(err)
		}

		if math.Abs(sq-grad.SqNorm()) > batchTol*math.Max(1, grad.SqNorm()) {
			t.Fatalf("%T: fused ||g||² = %v, unfused %v", mdl, sq, grad.SqNorm())
		}
		for j := range wFused {
			if math.Abs(wFused[j]-wRef[j]) > batchTol {
				t.Fatalf("%T: w[%d] = %v, want %v", mdl, j, wFused[j], wRef[j])
			}
		}
	}
}

func mustLogreg(t *testing.T, dim, classes int, mu float64) *LogisticRegression {
	t.Helper()
	m, err := NewLogisticRegression(dim, classes, mu)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustRidge(t *testing.T, dim, classes int, mu float64) *RidgeRegression {
	t.Helper()
	m, err := NewRidgeRegression(dim, classes, mu)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEvalDeterministicAcrossWorkers pins Loss and Accuracy to the same
// result whatever GOMAXPROCS is: the chunked reduction order is fixed.
func TestEvalDeterministicAcrossWorkers(t *testing.T) {
	r := stats.NewRNG(14)
	ds := randomDataset(r, 3*evalChunk+57, 9, 5) // several chunks plus a tail
	m := mustLogreg(t, 9, 5, 0.01)
	w := randomParams(r, m)

	prev := runtime.GOMAXPROCS(1)
	seqLoss, err := m.Loss(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	seqAcc, err := m.Accuracy(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(4)
	parLoss, err := m.Loss(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	parAcc, err := m.Accuracy(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(prev)

	if seqLoss != parLoss {
		t.Fatalf("loss differs across worker counts: %v vs %v", seqLoss, parLoss)
	}
	if seqAcc != parAcc {
		t.Fatalf("accuracy differs across worker counts: %v vs %v", seqAcc, parAcc)
	}
}

// TestSGDStepZeroAllocs is the allocation regression gate for the training
// hot path: once the scratch arena is warm, a local SGD step must not touch
// the heap.
func TestSGDStepZeroAllocs(t *testing.T) {
	r := stats.NewRNG(15)
	ds := randomDataset(r, 200, 24, 10)
	for _, mdl := range []Model{
		mustLogreg(t, 24, 10, 0.01),
		mustRidge(t, 24, 10, 0.01),
	} {
		stepper := mdl.(LocalStepper)
		w := randomParams(r, mdl)
		scratch := new(Scratch)
		rng := stats.NewRNG(7)
		// Warm the arena.
		if _, err := stepper.SGDStep(w, ds, 16, 1e-3, rng, scratch); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := stepper.SGDStep(w, ds, 16, 1e-3, rng, scratch); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%T: steady-state SGD step allocates %v times per run", mdl, allocs)
		}
	}
}

// TestStochasticGradientScratchZeroAllocs covers the unfused scratch path.
func TestStochasticGradientScratchZeroAllocs(t *testing.T) {
	r := stats.NewRNG(16)
	ds := randomDataset(r, 200, 24, 10)
	m := mustLogreg(t, 24, 10, 0.01)
	w := randomParams(r, m)
	grad := m.ZeroParams()
	scratch := new(Scratch)
	rng := stats.NewRNG(7)
	if err := m.StochasticGradientScratch(w, ds, 16, rng, grad, scratch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.StochasticGradientScratch(w, ds, 16, rng, grad, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state scratch gradient allocates %v times per run", allocs)
	}
}

// benchTask is the MNIST-like shape of the paper's Setup 2.
func benchTask(b *testing.B) (*LogisticRegression, *data.Dataset, tensor.Vec) {
	b.Helper()
	r := stats.NewRNG(1)
	ds := randomDataset(r, 1600, 784, 10)
	m, err := NewLogisticRegression(784, 10, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	return m, ds, randomParams(r, m)
}

// BenchmarkBatchGradient measures the batched mini-batch gradient kernel at
// the paper's batch size (24) on the MNIST-like shape.
func BenchmarkBatchGradient(b *testing.B) {
	m, ds, w := benchTask(b)
	grad := m.ZeroParams()
	scratch := new(Scratch)
	rng := stats.NewRNG(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.StochasticGradientScratch(w, ds, 24, rng, grad, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSGDStep measures the fused step the FL hot loop actually runs.
func BenchmarkSGDStep(b *testing.B) {
	m, ds, w := benchTask(b)
	scratch := new(Scratch)
	rng := stats.NewRNG(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SGDStep(w, ds, 24, 1e-6, rng, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalLoss measures the sharded full-dataset evaluation.
func BenchmarkEvalLoss(b *testing.B) {
	m, ds, w := benchTask(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Loss(w, ds); err != nil {
			b.Fatal(err)
		}
	}
}
