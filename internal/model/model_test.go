package model

import (
	"math"
	"testing"
	"testing/quick"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// twoBlobs builds a linearly separable 2-class dataset.
func twoBlobs(r *stats.RNG, n int) *data.Dataset {
	ds := &data.Dataset{Dim: 2, Classes: 2}
	for i := 0; i < n; i++ {
		y := i % 2
		cx := -2.0
		if y == 1 {
			cx = 2.0
		}
		ds.X = append(ds.X, []float64{cx + 0.5*r.NormFloat64(), 0.5 * r.NormFloat64()})
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func TestNewLogisticRegressionValidation(t *testing.T) {
	if _, err := NewLogisticRegression(0, 2, 0.1); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := NewLogisticRegression(2, 1, 0.1); err == nil {
		t.Fatal("expected error for one class")
	}
	if _, err := NewLogisticRegression(2, 2, -1); err == nil {
		t.Fatal("expected error for negative mu")
	}
	m, err := NewLogisticRegression(3, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() != 3*4+4 {
		t.Fatalf("numparams %d", m.NumParams())
	}
}

func TestLossAtZeroIsLogK(t *testing.T) {
	r := stats.NewRNG(1)
	ds := twoBlobs(r, 50)
	m, _ := NewLogisticRegression(2, 2, 0)
	loss, err := m.Loss(m.ZeroParams(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(2)) > 1e-9 {
		t.Fatalf("loss at zero %v, want ln2", loss)
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	r := stats.NewRNG(2)
	ds := twoBlobs(r, 40)
	m, _ := NewLogisticRegression(2, 2, 0.1)
	w := m.ZeroParams()
	for i := range w {
		w[i] = 0.3 * r.NormFloat64()
	}
	grad := m.ZeroParams()
	if err := m.Gradient(w, ds, grad); err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for i := 0; i < len(w); i += 2 { // spot-check half the coordinates
		wp := w.Clone()
		wp[i] += h
		lp, err := m.Loss(wp, ds)
		if err != nil {
			t.Fatal(err)
		}
		wm := w.Clone()
		wm[i] -= h
		lm, err := m.Loss(wm, ds)
		if err != nil {
			t.Fatal(err)
		}
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-4 {
			t.Fatalf("coord %d: fd %v vs grad %v", i, fd, grad[i])
		}
	}
}

func TestStochasticGradientUnbiased(t *testing.T) {
	r := stats.NewRNG(3)
	ds := twoBlobs(r, 30)
	m, _ := NewLogisticRegression(2, 2, 0.05)
	w := m.ZeroParams()
	for i := range w {
		w[i] = 0.2 * r.NormFloat64()
	}
	full := m.ZeroParams()
	if err := m.Gradient(w, ds, full); err != nil {
		t.Fatal(err)
	}
	avg := m.ZeroParams()
	g := m.ZeroParams()
	const reps = 4000
	for i := 0; i < reps; i++ {
		if err := m.StochasticGradient(w, ds, 5, r, g); err != nil {
			t.Fatal(err)
		}
		if err := avg.AddScaled(1.0/reps, g); err != nil {
			t.Fatal(err)
		}
	}
	diff, err := tensor.Sub(avg, full)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Norm2() > 0.05*math.Max(full.Norm2(), 1) {
		t.Fatalf("stochastic gradient biased: |avg-full|=%v", diff.Norm2())
	}
}

func TestSolveReachesLowGradient(t *testing.T) {
	r := stats.NewRNG(4)
	ds := twoBlobs(r, 100)
	m, _ := NewLogisticRegression(2, 2, 0.1)
	w, err := Solve(m, ds, nil, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	grad := m.ZeroParams()
	if err := m.Gradient(w, ds, grad); err != nil {
		t.Fatal(err)
	}
	if grad.Norm2() > 1e-4 {
		t.Fatalf("solver gradient norm %v", grad.Norm2())
	}
	acc, err := m.Accuracy(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("separable accuracy %v", acc)
	}
	loss, err := m.Loss(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := m.Loss(m.ZeroParams(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if loss >= zero {
		t.Fatalf("solver did not improve: %v >= %v", loss, zero)
	}
}

func TestSolveStrongConvexUnique(t *testing.T) {
	// With mu > 0 the optimum is unique: two different inits must converge
	// to (almost) the same point.
	r := stats.NewRNG(5)
	ds := twoBlobs(r, 60)
	m, _ := NewLogisticRegression(2, 2, 0.5)
	opts := SolveOptions{MaxIters: 5000, Tolerance: 1e-9}
	w1, err := Solve(m, ds, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	init := m.ZeroParams()
	for i := range init {
		init[i] = r.NormFloat64()
	}
	w2, err := Solve(m, ds, init, opts)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := tensor.Sub(w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Norm2() > 1e-4 {
		t.Fatalf("strongly convex optima differ by %v", diff.Norm2())
	}
}

func TestPredictAccuracyErrors(t *testing.T) {
	m, _ := NewLogisticRegression(2, 2, 0)
	empty := &data.Dataset{Dim: 2, Classes: 2}
	if _, err := m.Loss(m.ZeroParams(), empty); err == nil {
		t.Fatal("expected error for empty loss")
	}
	if _, err := m.Accuracy(m.ZeroParams(), empty); err == nil {
		t.Fatal("expected error for empty accuracy")
	}
	if err := m.Gradient(m.ZeroParams(), empty, m.ZeroParams()); err == nil {
		t.Fatal("expected error for empty gradient")
	}
	ds := &data.Dataset{Dim: 2, Classes: 2, X: [][]float64{{1, 1}}, Y: []int{0}}
	if err := m.StochasticGradient(m.ZeroParams(), ds, 0, stats.NewRNG(1), m.ZeroParams()); err == nil {
		t.Fatal("expected error for zero batch")
	}
	if _, err := m.Predict(m.ZeroParams(), []float64{1}); err == nil {
		t.Fatal("expected error for wrong input dim")
	}
	if err := m.Logits(tensor.NewVec(3), []float64{1, 1}, tensor.NewVec(2)); err == nil {
		t.Fatal("expected error for wrong params length")
	}
}

func TestEstimateSmoothness(t *testing.T) {
	m, _ := NewLogisticRegression(2, 2, 0.25)
	ds := &data.Dataset{Dim: 2, Classes: 2, X: [][]float64{{3, 4}}, Y: []int{0}}
	l, err := m.EstimateSmoothness(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*(25+1) + 0.25
	if math.Abs(l-want) > 1e-12 {
		t.Fatalf("smoothness %v want %v", l, want)
	}
	if _, err := m.EstimateSmoothness(&data.Dataset{Dim: 2, Classes: 2}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestComputeReferenceOptima(t *testing.T) {
	r := stats.NewRNG(6)
	shard1 := twoBlobs(r.Split(), 40)
	shard2 := twoBlobs(r.Split(), 20)
	weights, err := data.ComputeWeights([]*data.Dataset{shard1, shard2})
	if err != nil {
		t.Fatal(err)
	}
	train, err := data.Concat([]*data.Dataset{shard1, shard2})
	if err != nil {
		t.Fatal(err)
	}
	fed := &data.Federated{
		Clients: []*data.Dataset{shard1, shard2},
		Train:   train,
		Test:    train,
		Weights: weights,
	}
	m, _ := NewLogisticRegression(2, 2, 0.2)
	ref, err := ComputeReferenceOptima(m, fed, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	for n := range fed.Clients {
		// F(w*_n) >= F* by optimality of the global solution.
		if ref.ImprovementOf[n] < -1e-6 {
			t.Fatalf("client %d: F(w*_n)-F* = %v < 0", n, ref.ImprovementOf[n])
		}
		// F*_n <= F evaluated at the global optimum restricted to the shard.
		lossAtGlobal, err := m.Loss(ref.GlobalOpt, fed.Clients[n])
		if err != nil {
			t.Fatal(err)
		}
		if ref.LocalOptLoss[n] > lossAtGlobal+1e-6 {
			t.Fatalf("client %d: local opt loss %v above global-at-shard %v",
				n, ref.LocalOptLoss[n], lossAtGlobal)
		}
	}
	// Γ = F* − Σ a_n F*_n >= 0 (heterogeneity gap is nonnegative).
	if ref.Gamma < -1e-9 {
		t.Fatalf("gamma %v < 0", ref.Gamma)
	}
	if _, err := ComputeReferenceOptima(m, nil, DefaultSolveOptions()); err == nil {
		t.Fatal("expected error for nil federation")
	}
}

func TestQuickLossNonNegativeUnregularized(t *testing.T) {
	r := stats.NewRNG(8)
	ds := twoBlobs(r, 20)
	m, _ := NewLogisticRegression(2, 2, 0)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 50 || math.Abs(b) > 50 {
			return true
		}
		w := m.ZeroParams()
		w[0], w[3] = a, b
		loss, err := m.Loss(w, ds)
		return err == nil && loss >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
