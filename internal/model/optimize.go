package model

import (
	"errors"
	"math"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/tensor"
)

// SolveOptions controls the deterministic gradient-descent solver used to
// compute reference optima: the global F* and each client's local optimum
// w*_n = argmin F_n (needed by the intrinsic-value model, eq. (7)).
type SolveOptions struct {
	MaxIters  int
	Tolerance float64 // stop when the gradient norm falls below this
	StepSize  float64 // 0 means use 1/L from EstimateSmoothness
}

// DefaultSolveOptions returns a conservative configuration that converges on
// every dataset in the repository.
func DefaultSolveOptions() SolveOptions {
	return SolveOptions{MaxIters: 2000, Tolerance: 1e-6}
}

// Solve runs full-batch gradient descent from init (or zero when nil) and
// returns an approximate minimizer of the regularized loss of any Model on
// ds.
func Solve(m Model, ds *data.Dataset, init tensor.Vec, opts SolveOptions) (tensor.Vec, error) {
	if ds.Len() == 0 {
		return nil, errors.New("model: solve on empty dataset")
	}
	if opts.MaxIters <= 0 {
		return nil, errors.New("model: solve needs positive iteration budget")
	}
	w := m.ZeroParams()
	if init != nil {
		if err := w.CopyFrom(init); err != nil {
			return nil, err
		}
	}
	step := opts.StepSize
	if step <= 0 {
		l, err := m.EstimateSmoothness(ds)
		if err != nil {
			return nil, err
		}
		step = 1 / l
	}
	grad := m.ZeroParams()
	for it := 0; it < opts.MaxIters; it++ {
		if err := m.Gradient(w, ds, grad); err != nil {
			return nil, err
		}
		gnorm := grad.Norm2()
		if gnorm <= opts.Tolerance {
			break
		}
		if math.IsNaN(gnorm) || math.IsInf(gnorm, 0) {
			return nil, errors.New("model: divergence in solver")
		}
		if err := w.AddScaled(-step, grad); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// ReferenceOptima bundles the quantities the game model needs from actual
// training data: the global optimal loss F*, the per-client local optima
// losses F(w*_n) evaluated on the *global* objective, and Γ = F* − Σ a_n F*_n
// from Theorem 1's β term.
type ReferenceOptima struct {
	GlobalOpt     tensor.Vec
	FStar         float64
	LocalGlobalF  []float64 // F(w*_n): global loss at client n's local optimum
	LocalOptLoss  []float64 // F*_n: client n's own minimal local loss
	Gamma         float64
	ImprovementOf []float64 // F(w*_n) − F*: the value headroom in eq. (7)
}

// ComputeReferenceOptima solves the global and all local problems.
func ComputeReferenceOptima(m Model, fed *data.Federated, opts SolveOptions) (*ReferenceOptima, error) {
	if fed == nil || fed.NumClients() == 0 {
		return nil, errors.New("model: nil or empty federation")
	}
	global, err := Solve(m, fed.Train, nil, opts)
	if err != nil {
		return nil, err
	}
	fstar, err := m.Loss(global, fed.Train)
	if err != nil {
		return nil, err
	}
	out := &ReferenceOptima{
		GlobalOpt:     global,
		FStar:         fstar,
		LocalGlobalF:  make([]float64, fed.NumClients()),
		LocalOptLoss:  make([]float64, fed.NumClients()),
		ImprovementOf: make([]float64, fed.NumClients()),
	}
	var gamma float64
	for n, shard := range fed.Clients {
		local, err := Solve(m, shard, nil, opts)
		if err != nil {
			return nil, err
		}
		fn, err := m.Loss(local, shard)
		if err != nil {
			return nil, err
		}
		fg, err := m.Loss(local, fed.Train)
		if err != nil {
			return nil, err
		}
		out.LocalOptLoss[n] = fn
		out.LocalGlobalF[n] = fg
		out.ImprovementOf[n] = fg - fstar
		gamma += fed.Weights[n] * fn
	}
	out.Gamma = fstar - gamma
	return out, nil
}
