// Package model implements the paper's learning model: multinomial logistic
// regression with L2 regularization. With regularization strength mu > 0 the
// local objectives F_n are mu-strongly convex and L-smooth, matching
// Assumption 1 of the paper, and the stochastic mini-batch gradients are
// unbiased with bounded variance and bounded expected squared norm
// (Assumptions 2 and 3).
package model

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// LogisticRegression describes the model family: Dim input features, Classes
// outputs, and an L2 regularization coefficient Mu (the strong-convexity
// modulus). Parameters are flattened into a single tensor.Vec of length
// Classes*Dim + Classes (weights row-major, then biases), which is the wire
// and aggregation format used by the FL engine.
type LogisticRegression struct {
	Dim     int
	Classes int
	Mu      float64
}

// NewLogisticRegression validates and constructs the model family.
func NewLogisticRegression(dim, classes int, mu float64) (*LogisticRegression, error) {
	switch {
	case dim <= 0:
		return nil, errors.New("model: dim must be positive")
	case classes <= 1:
		return nil, errors.New("model: need at least two classes")
	case mu < 0:
		return nil, errors.New("model: negative regularization")
	}
	return &LogisticRegression{Dim: dim, Classes: classes, Mu: mu}, nil
}

// NumParams returns the flattened parameter length.
func (m *LogisticRegression) NumParams() int { return m.Classes*m.Dim + m.Classes }

// ZeroParams returns the w0 = 0 initialization used by the paper.
func (m *LogisticRegression) ZeroParams() tensor.Vec { return tensor.NewVec(m.NumParams()) }

// weightAt returns the weight for class c, feature j from flattened params.
func (m *LogisticRegression) weightAt(w tensor.Vec, c, j int) float64 {
	return w[c*m.Dim+j]
}

// biasAt returns the bias for class c.
func (m *LogisticRegression) biasAt(w tensor.Vec, c int) float64 {
	return w[m.Classes*m.Dim+c]
}

// Logits computes the class scores for input x into out (length Classes).
func (m *LogisticRegression) Logits(w tensor.Vec, x []float64, out tensor.Vec) error {
	if len(w) != m.NumParams() {
		return fmt.Errorf("model: params length %d, want %d", len(w), m.NumParams())
	}
	if len(x) != m.Dim {
		return fmt.Errorf("model: input dim %d, want %d", len(x), m.Dim)
	}
	if len(out) != m.Classes {
		return errors.New("model: logits buffer size mismatch")
	}
	for c := 0; c < m.Classes; c++ {
		row := w[c*m.Dim : (c+1)*m.Dim]
		var s float64
		for j, rj := range row {
			s += rj * x[j]
		}
		out[c] = s + m.biasAt(w, c)
	}
	return nil
}

// Loss returns the regularized average cross-entropy of w on ds:
// F(w) = (1/n) Σ -log softmax(Wx+b)[y] + (mu/2)||w||².
func (m *LogisticRegression) Loss(w tensor.Vec, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: loss on empty dataset")
	}
	logits := make(tensor.Vec, m.Classes)
	var sum float64
	for i := range ds.X {
		if err := m.Logits(w, ds.X[i], logits); err != nil {
			return 0, err
		}
		lse, err := tensor.LogSumExp(logits)
		if err != nil {
			return 0, err
		}
		sum += lse - logits[ds.Y[i]]
	}
	return sum/float64(ds.Len()) + 0.5*m.Mu*w.SqNorm(), nil
}

// Gradient computes the full-batch gradient of Loss at w into grad.
func (m *LogisticRegression) Gradient(w tensor.Vec, ds *data.Dataset, grad tensor.Vec) error {
	if ds.Len() == 0 {
		return errors.New("model: gradient on empty dataset")
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	return m.batchGradient(w, ds, idx, grad)
}

// StochasticGradient computes an unbiased mini-batch gradient at w using
// batchSize samples drawn uniformly with replacement from ds.
func (m *LogisticRegression) StochasticGradient(
	w tensor.Vec, ds *data.Dataset, batchSize int, r *stats.RNG, grad tensor.Vec,
) error {
	if ds.Len() == 0 {
		return errors.New("model: gradient on empty dataset")
	}
	if batchSize <= 0 {
		return errors.New("model: non-positive batch size")
	}
	if batchSize > ds.Len() {
		batchSize = ds.Len()
	}
	idx := make([]int, batchSize)
	for i := range idx {
		idx[i] = r.Intn(ds.Len())
	}
	return m.batchGradient(w, ds, idx, grad)
}

// batchGradient accumulates the average gradient over the given sample
// indices plus the L2 term.
func (m *LogisticRegression) batchGradient(w tensor.Vec, ds *data.Dataset, idx []int, grad tensor.Vec) error {
	if len(grad) != m.NumParams() {
		return errors.New("model: gradient buffer size mismatch")
	}
	grad.Zero()
	probs := make(tensor.Vec, m.Classes)
	inv := 1.0 / float64(len(idx))
	for _, i := range idx {
		x := ds.X[i]
		if err := m.Logits(w, x, probs); err != nil {
			return err
		}
		if err := tensor.SoftmaxInPlace(probs); err != nil {
			return err
		}
		probs[ds.Y[i]] -= 1 // softmax - onehot
		for c := 0; c < m.Classes; c++ {
			pc := inv * probs[c]
			row := grad[c*m.Dim : (c+1)*m.Dim]
			for j := range row {
				row[j] += pc * x[j]
			}
			grad[m.Classes*m.Dim+c] += pc
		}
	}
	if m.Mu > 0 {
		if err := grad.AddScaled(m.Mu, w); err != nil {
			return err
		}
	}
	return nil
}

// Predict returns the argmax class for x.
func (m *LogisticRegression) Predict(w tensor.Vec, x []float64) (int, error) {
	logits := make(tensor.Vec, m.Classes)
	if err := m.Logits(w, x, logits); err != nil {
		return 0, err
	}
	return tensor.ArgMax(logits)
}

// Accuracy returns the fraction of ds classified correctly by w.
func (m *LogisticRegression) Accuracy(w tensor.Vec, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: accuracy on empty dataset")
	}
	correct := 0
	logits := make(tensor.Vec, m.Classes)
	for i := range ds.X {
		if err := m.Logits(w, ds.X[i], logits); err != nil {
			return 0, err
		}
		pred, err := tensor.ArgMax(logits)
		if err != nil {
			return 0, err
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// EstimateSmoothness returns an upper bound on the smoothness constant L of
// the regularized loss on ds. For softmax cross-entropy the Hessian spectral
// norm is at most (1/2)·max_i ||x_i||² (plus 1 for the bias coordinate) plus
// mu. This feeds α = 8LE/μ² in the convergence bound.
func (m *LogisticRegression) EstimateSmoothness(ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: smoothness on empty dataset")
	}
	var maxSq float64
	for _, x := range ds.X {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		if s > maxSq {
			maxSq = s
		}
	}
	return 0.5*(maxSq+1) + m.Mu, nil
}
