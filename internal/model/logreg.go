// Package model implements the paper's learning model: multinomial logistic
// regression with L2 regularization. With regularization strength mu > 0 the
// local objectives F_n are mu-strongly convex and L-smooth, matching
// Assumption 1 of the paper, and the stochastic mini-batch gradients are
// unbiased with bounded variance and bounded expected squared norm
// (Assumptions 2 and 3).
package model

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// LogisticRegression describes the model family: Dim input features, Classes
// outputs, and an L2 regularization coefficient Mu (the strong-convexity
// modulus). Parameters are flattened into a single tensor.Vec of length
// Classes*Dim + Classes (weights row-major, then biases), which is the wire
// and aggregation format used by the FL engine.
type LogisticRegression struct {
	Dim     int
	Classes int
	Mu      float64
}

// NewLogisticRegression validates and constructs the model family.
func NewLogisticRegression(dim, classes int, mu float64) (*LogisticRegression, error) {
	switch {
	case dim <= 0:
		return nil, errors.New("model: dim must be positive")
	case classes <= 1:
		return nil, errors.New("model: need at least two classes")
	case mu < 0:
		return nil, errors.New("model: negative regularization")
	}
	return &LogisticRegression{Dim: dim, Classes: classes, Mu: mu}, nil
}

// NumParams returns the flattened parameter length.
func (m *LogisticRegression) NumParams() int { return m.Classes*m.Dim + m.Classes }

// ZeroParams returns the w0 = 0 initialization used by the paper.
func (m *LogisticRegression) ZeroParams() tensor.Vec { return tensor.NewVec(m.NumParams()) }

// Logits computes the class scores for input x into out (length Classes).
func (m *LogisticRegression) Logits(w tensor.Vec, x []float64, out tensor.Vec) error {
	if len(w) != m.NumParams() {
		return fmt.Errorf("model: params length %d, want %d", len(w), m.NumParams())
	}
	if len(x) != m.Dim {
		return fmt.Errorf("model: input dim %d, want %d", len(x), m.Dim)
	}
	if len(out) != m.Classes {
		return errors.New("model: logits buffer size mismatch")
	}
	wRows := w[:m.Classes*m.Dim]
	bias := w[m.Classes*m.Dim:]
	return tensor.LogitsBatch([][]float64{x}, wRows, bias, m.Dim, m.Classes, out)
}

// Loss returns the regularized average cross-entropy of w on ds:
// F(w) = (1/n) Σ -log softmax(Wx+b)[y] + (mu/2)||w||². The dataset is
// evaluated in fixed-size shards, concurrently when CPUs allow; the shard
// reduction order is fixed, so the result does not depend on parallelism.
func (m *LogisticRegression) Loss(w tensor.Vec, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: loss on empty dataset")
	}
	if len(w) != m.NumParams() {
		return 0, fmt.Errorf("model: params length %d, want %d", len(w), m.NumParams())
	}
	classes, dim := m.Classes, m.Dim
	wRows := w[:classes*dim]
	bias := w[classes*dim:]
	sum, err := chunkSum(ds.Len(), func(lo, hi int, s *Scratch) (float64, error) {
		b := hi - lo
		logits := s.ensureProbs(b * classes)
		if err := tensor.LogitsBatch(ds.X[lo:hi], wRows, bias, dim, classes, logits); err != nil {
			return 0, err
		}
		var part float64
		for i := 0; i < b; i++ {
			row := logits[i*classes : (i+1)*classes]
			lse, err := tensor.LogSumExp(row)
			if err != nil {
				return 0, err
			}
			part += lse - row[ds.Y[lo+i]]
		}
		return part, nil
	})
	if err != nil {
		return 0, err
	}
	return sum/float64(ds.Len()) + 0.5*m.Mu*w.SqNorm(), nil
}

// Gradient computes the full-batch gradient of Loss at w into grad.
func (m *LogisticRegression) Gradient(w tensor.Vec, ds *data.Dataset, grad tensor.Vec) error {
	if ds.Len() == 0 {
		return errors.New("model: gradient on empty dataset")
	}
	return m.batchGradient(w, ds, nil, ds.Len(), grad, new(Scratch))
}

// StochasticGradient computes an unbiased mini-batch gradient at w using
// batchSize samples drawn uniformly with replacement from ds.
func (m *LogisticRegression) StochasticGradient(
	w tensor.Vec, ds *data.Dataset, batchSize int, r *stats.RNG, grad tensor.Vec,
) error {
	return m.StochasticGradientScratch(w, ds, batchSize, r, grad, new(Scratch))
}

// StochasticGradientScratch implements BatchGradienter: the same mini-batch
// gradient, with every buffer drawn from the caller-owned scratch so the
// steady-state training step performs no heap allocations.
func (m *LogisticRegression) StochasticGradientScratch(
	w tensor.Vec, ds *data.Dataset, batchSize int, r *stats.RNG, grad tensor.Vec, s *Scratch,
) error {
	return linearStochasticGradient(w, ds, batchSize, r, m.Dim, m.Classes, m.Mu, true, grad, s)
}

// SGDStep implements LocalStepper: one fused, allocation-free local SGD step.
func (m *LogisticRegression) SGDStep(
	w tensor.Vec, ds *data.Dataset, batchSize int, lr float64, r *stats.RNG, s *Scratch,
) (float64, error) {
	return linearSGDStep(w, ds, batchSize, lr, r, m.Dim, m.Classes, m.Mu, true, s)
}

// batchGradient runs the shared batched kernel path (see batch.go) with the
// cross-entropy softmax transform.
func (m *LogisticRegression) batchGradient(
	w tensor.Vec, ds *data.Dataset, idx []int, n int, grad tensor.Vec, s *Scratch,
) error {
	return linearBatchGradient(w, ds, idx, n, m.Dim, m.Classes, m.Mu, true, grad, s)
}

// Predict returns the argmax class for x.
func (m *LogisticRegression) Predict(w tensor.Vec, x []float64) (int, error) {
	logits := make(tensor.Vec, m.Classes)
	if err := m.Logits(w, x, logits); err != nil {
		return 0, err
	}
	return tensor.ArgMax(logits)
}

// Accuracy returns the fraction of ds classified correctly by w, evaluated
// in parallel shards like Loss.
func (m *LogisticRegression) Accuracy(w tensor.Vec, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: accuracy on empty dataset")
	}
	if len(w) != m.NumParams() {
		return 0, fmt.Errorf("model: params length %d, want %d", len(w), m.NumParams())
	}
	correct, err := countCorrect(w, ds, m.Dim, m.Classes)
	if err != nil {
		return 0, err
	}
	return correct / float64(ds.Len()), nil
}

// countCorrect is the shared sharded argmax-accuracy kernel: score each
// shard with one batched X·Wᵀ+b pass and count argmax hits. Both model
// families use linear scores, so they share it verbatim.
func countCorrect(w tensor.Vec, ds *data.Dataset, dim, classes int) (float64, error) {
	wRows := w[:classes*dim]
	bias := w[classes*dim:]
	return chunkSum(ds.Len(), func(lo, hi int, s *Scratch) (float64, error) {
		b := hi - lo
		scores := s.ensureProbs(b * classes)
		if err := tensor.LogitsBatch(ds.X[lo:hi], wRows, bias, dim, classes, scores); err != nil {
			return 0, err
		}
		var hits float64
		for i := 0; i < b; i++ {
			pred, err := tensor.ArgMax(scores[i*classes : (i+1)*classes])
			if err != nil {
				return 0, err
			}
			if pred == ds.Y[lo+i] {
				hits++
			}
		}
		return hits, nil
	})
}

// EstimateSmoothness returns an upper bound on the smoothness constant L of
// the regularized loss on ds. For softmax cross-entropy the Hessian spectral
// norm is at most (1/2)·max_i ||x_i||² (plus 1 for the bias coordinate) plus
// mu. This feeds α = 8LE/μ² in the convergence bound.
func (m *LogisticRegression) EstimateSmoothness(ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("model: smoothness on empty dataset")
	}
	var maxSq float64
	for _, x := range ds.X {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		if s > maxSq {
			maxSq = s
		}
	}
	return 0.5*(maxSq+1) + m.Mu, nil
}
