package model

import (
	"unbiasedfl/internal/data"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// Model is the contract the FL engine, the calibration pass, and the TCP
// prototype require of a learning model. Both model families in this
// package — multinomial logistic regression and ridge (one-hot least
// squares) regression — satisfy the paper's Assumption 1 (μ-strong
// convexity and L-smoothness) when their regularization is positive; these
// are exactly the examples the paper cites ("ℓ2-norm regularized linear
// regression, logistic regression").
type Model interface {
	// NumParams returns the flattened parameter length.
	NumParams() int
	// ZeroParams returns the w0 = 0 initialization.
	ZeroParams() tensor.Vec
	// Loss evaluates the regularized objective on ds.
	Loss(w tensor.Vec, ds *data.Dataset) (float64, error)
	// Gradient computes the full-batch gradient into grad.
	Gradient(w tensor.Vec, ds *data.Dataset, grad tensor.Vec) error
	// StochasticGradient computes an unbiased mini-batch gradient.
	StochasticGradient(w tensor.Vec, ds *data.Dataset, batchSize int, r *stats.RNG, grad tensor.Vec) error
	// Accuracy returns the classification accuracy of w on ds.
	Accuracy(w tensor.Vec, ds *data.Dataset) (float64, error)
	// EstimateSmoothness upper-bounds the smoothness constant L on ds.
	EstimateSmoothness(ds *data.Dataset) (float64, error)
	// StrongConvexity returns the strong-convexity modulus μ (the L2
	// regularization coefficient).
	StrongConvexity() float64
}

var (
	_ Model = (*LogisticRegression)(nil)
	_ Model = (*RidgeRegression)(nil)
)

// StrongConvexity implements Model.
func (m *LogisticRegression) StrongConvexity() float64 { return m.Mu }
