package model

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// evalChunk is the shard size for parallel full-dataset evaluation. It is a
// fixed constant (rather than derived from the worker count) so the partial
// sums always reduce in the same chunk order: Loss and Accuracy return
// bit-identical results on one core and on many.
const evalChunk = 512

// chunkSum splits [0, n) into evalChunk-sized shards, evaluates fn on each —
// concurrently when more than one CPU is available — and reduces the partial
// sums in ascending chunk order. fn receives a worker-private Scratch it may
// use for its buffers.
func chunkSum(n int, fn func(lo, hi int, s *Scratch) (float64, error)) (float64, error) {
	chunks := (n + evalChunk - 1) / evalChunk
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		var s Scratch
		var total float64
		for c := 0; c < chunks; c++ {
			lo := c * evalChunk
			hi := min(lo+evalChunk, n)
			part, err := fn(lo, hi, &s)
			if err != nil {
				return 0, err
			}
			total += part
		}
		return total, nil
	}

	partials := make([]float64, chunks)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			var s Scratch
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * evalChunk
				hi := min(lo+evalChunk, n)
				part, err := fn(lo, hi, &s)
				if err != nil {
					errs[wi] = err
					return
				}
				partials[c] = part
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var total float64
	for _, part := range partials {
		total += part
	}
	return total, nil
}
