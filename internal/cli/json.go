// Package cli holds helpers shared by the cmd/ binaries: machine-readable
// output encoding and signal-driven cancellation plumbing, so each binary
// does not grow its own divergent copy.
package cli

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON encodes v as indented JSON followed by a newline — the single
// encoding path behind every binary's -json flag, so all machine-readable
// output shares one shape discipline (two-space indent, trailing newline,
// stable field order from the struct definitions).
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("cli: encode json: %w", err)
	}
	return nil
}
