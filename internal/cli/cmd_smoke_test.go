package cli

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdFlagParsing builds every binary under cmd/ and exercises its flag
// parsing: -h must print a usage listing the binary's signature flags and
// exit 0, and an unknown flag must be rejected with a non-zero status. This
// is the smoke net that catches a cmd whose flag wiring silently breaks —
// the library tests never execute package main.
func TestCmdFlagParsing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	binDir := t.TempDir()
	build := exec.Command("go", "build", "-o", binDir,
		"unbiasedfl/cmd/flsim", "unbiasedfl/cmd/flgame", "unbiasedfl/cmd/flnode", "unbiasedfl/cmd/flbench")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/...: %v\n%s", err, out)
	}

	cases := []struct {
		bin   string
		flags []string // flags whose presence in the usage text is the contract
	}{
		{"flsim", []string{"-setup", "-scheme", "-scenario", "-clients", "-rounds", "-json", "-progress"}},
		{"flgame", []string{"-setup", "-budget", "-clients", "-json"}},
		{"flnode", []string{"-role", "-addr", "-id", "-clients", "-rounds"}},
		{"flbench", []string{"-setup"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bin, func(t *testing.T) {
			path := filepath.Join(binDir, tc.bin)

			// -h prints the flag set and exits 0.
			out, err := exec.Command(path, "-h").CombinedOutput()
			if err != nil {
				t.Fatalf("%s -h: %v\n%s", tc.bin, err, out)
			}
			usage := string(out)
			for _, f := range tc.flags {
				if !strings.Contains(usage, f+" ") && !strings.Contains(usage, f+"\n") &&
					!strings.Contains(usage, f+"\t") {
					t.Errorf("%s usage does not document %s:\n%s", tc.bin, f, usage)
				}
			}

			// An unknown flag must be rejected before any work starts.
			out, err = exec.Command(path, "-definitely-not-a-flag").CombinedOutput()
			if err == nil {
				t.Fatalf("%s accepted an unknown flag:\n%s", tc.bin, out)
			}
			if !strings.Contains(string(out), "flag provided but not defined") {
				t.Errorf("%s unknown-flag diagnostics drifted:\n%s", tc.bin, out)
			}
		})
	}
}
