package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONShape(t *testing.T) {
	type payload struct {
		Name   string    `json:"name"`
		Values []float64 `json:"values"`
		Count  int       `json:"count"`
	}
	var buf bytes.Buffer
	in := payload{Name: "run", Values: []float64{1.5, 0.25}, Count: 2}
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// The contract every binary's -json flag relies on: two-space indent,
	// struct field order, one trailing newline.
	want := "{\n  \"name\": \"run\",\n  \"values\": [\n    1.5,\n    0.25\n  ],\n  \"count\": 2\n}\n"
	if out != want {
		t.Fatalf("WriteJSON shape drifted:\ngot  %q\nwant %q", out, want)
	}
	if !strings.HasSuffix(out, "\n") || strings.HasSuffix(out, "\n\n") {
		t.Fatalf("output must end in exactly one newline: %q", out)
	}

	// And it must round-trip.
	var back payload
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.Name != in.Name || back.Count != in.Count || len(back.Values) != 2 {
		t.Fatalf("round-trip mangled payload: %+v", back)
	}
}

func TestWriteJSONError(t *testing.T) {
	err := WriteJSON(&bytes.Buffer{}, make(chan int))
	if err == nil {
		t.Fatal("unencodable value must error")
	}
	if !strings.Contains(err.Error(), "cli: encode json") {
		t.Fatalf("error must carry the package prefix, got %v", err)
	}
}

// failWriter errors on the first write, exercising the encoder's I/O error
// path.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errShort
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func TestWriteJSONWriterFailure(t *testing.T) {
	err := WriteJSON(failWriter{}, map[string]int{"a": 1})
	if err == nil {
		t.Fatal("writer failure must surface")
	}
	if !strings.Contains(err.Error(), "short write") {
		t.Fatalf("underlying write error lost: %v", err)
	}
}
