package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM, giving
// every binary the same Ctrl-C semantics: the first signal cancels the
// in-flight work (which unwinds promptly through the context-aware API),
// a second signal kills the process via the restored default handler —
// the AfterFunc unregisters the capture as soon as the context fires, so
// repeated signals are not swallowed while shutdown unwinds.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, stop)
	return ctx, stop
}
