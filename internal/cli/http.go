package cli

import (
	"encoding/json"
	"net/http"
)

// APIError is the typed error payload every flserve endpoint returns on
// failure: a stable machine-matchable code plus a human-readable message.
type APIError struct {
	// Code is a stable snake_case identifier ("bad_json", "unknown_scheme",
	// "body_too_large", "sessions_full", ...) clients can switch on.
	Code string `json:"code"`
	// Message describes the failure for humans; its wording is not part of
	// the API contract.
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON error envelope shared by every HTTP endpoint:
//
//	{"error": {"code": "unknown_scheme", "message": "..."}}
//
// Keeping it here (next to WriteJSON) gives the serving daemon and any
// future HTTP surface one error shape, the same way the binaries share one
// -json encoding path.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
}

// WriteHTTPError writes the typed error envelope with the given status. It
// mirrors WriteJSON's encoding discipline (two-space indent, trailing
// newline).
func WriteHTTPError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ErrorEnvelope{Error: APIError{Code: code, Message: message}})
}
