// Package stats provides the deterministic randomness and statistics
// substrate used throughout the reproduction: a seedable, splittable PRNG,
// the distributions the paper's experiments draw from (exponential local
// costs and intrinsic values, power-law data sizes), and streaming summary
// statistics for averaging repeated runs.
//
// Everything in this package is pure computation with no global state, so
// every experiment in the repository is reproducible bit-for-bit from a seed.
package stats

import (
	"errors"
	"math"
)

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** with a SplitMix64 seeding routine. It is self-contained so
// results do not depend on the Go runtime's math/rand implementation details
// across versions.
//
// RNG is not safe for concurrent use; use Split to derive independent
// generators for concurrent clients.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single 64-bit seed.
func NewRNG(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm = splitMix64Next(sm)
		r.s[i] = sm
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

func splitMix64Next(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator. The child's stream is
// decorrelated from the parent's continued stream, which lets concurrent
// clients own private generators while the whole run stays reproducible.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A55A5A5A5A)
}

// State exposes the generator's internal cursor — the full xoshiro256**
// word vector — so a checkpoint can persist a stream mid-flight and
// RestoreRNG can resume it bit-exactly.
func (r *RNG) State() [4]uint64 { return r.s }

// RestoreRNG reconstructs a generator at a cursor previously captured with
// State. The all-zero vector is not a reachable xoshiro state, so it is
// rejected rather than silently producing a degenerate stream.
func RestoreRNG(state [4]uint64) (*RNG, error) {
	if state[0]|state[1]|state[2]|state[3] == 0 {
		return nil, errors.New("stats: all-zero RNG state")
	}
	return &RNG{s: state}, nil
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers validate n at the boundary.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster; for
	// our workloads simple modulo with rejection is sufficient and unbiased.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	// Inverse CDF; guard against log(0).
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// SampleWithoutReplacement draws k distinct indices from [0, n).
func (r *RNG) SampleWithoutReplacement(n, k int) ([]int, error) {
	if k < 0 || k > n {
		return nil, errors.New("stats: sample size out of range")
	}
	p := r.Perm(n)
	out := make([]int, k)
	copy(out, p[:k])
	return out, nil
}
