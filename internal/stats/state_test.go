package stats

import "testing"

// TestRNGStateRoundtrip pins the checkpoint contract: a generator restored
// from a mid-stream cursor continues the exact sequence the original would
// have produced.
func TestRNGStateRoundtrip(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	clone, err := RestoreRNG(r.State())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("draw %d diverged after restore: %d vs %d", i, a, b)
		}
	}
}

func TestRestoreRNGRejectsZeroState(t *testing.T) {
	if _, err := RestoreRNG([4]uint64{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
}

// TestWelfordStateRoundtrip: a restored accumulator must continue with
// bit-identical mean/variance updates.
func TestWelfordStateRoundtrip(t *testing.T) {
	var w Welford
	r := NewRNG(7)
	for i := 0; i < 500; i++ {
		w.Add(r.NormFloat64())
	}
	clone, err := RestoreWelford(w.State())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		x := r.NormFloat64()
		w.Add(x)
		clone.Add(x)
	}
	if w.Mean() != clone.Mean() || w.Variance() != clone.Variance() || w.Count() != clone.Count() {
		t.Fatalf("restored Welford diverged: %+v vs %+v", w, clone)
	}
}

func TestRestoreWelfordRejectsNegativeCount(t *testing.T) {
	if _, err := RestoreWelford(-1, 0, 0); err == nil {
		t.Fatal("negative count accepted")
	}
}
