package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("mean %v", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Fatalf("variance %v", got)
	}
	if got := Sum(xs); !almostEqual(got, 40, 1e-12) {
		t.Fatalf("sum %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should yield zero")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("min=%v max=%v err=%v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("expected error for empty slice")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tc := range cases {
		got, err := Quantile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want, 1e-12) {
			t.Fatalf("q(%v)=%v want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("expected error for level out of range")
	}
	one, err := Quantile([]float64{42}, 0.9)
	if err != nil || one != 42 {
		t.Fatalf("single-element quantile %v err %v", one, err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRNG(55)
	xs := make([]float64, 5000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 2
		w.Add(xs[i])
	}
	if w.Count() != len(xs) {
		t.Fatalf("count %d", w.Count())
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-6) {
		t.Fatalf("welford var %v vs %v", w.Variance(), Variance(xs))
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Std() != 0 {
		t.Fatal("empty welford should have zero variance")
	}
	w.Add(5)
	if w.Variance() != 0 {
		t.Fatal("single-sample variance should be zero")
	}
}

func TestSeriesMean(t *testing.T) {
	got, err := SeriesMean([][]float64{{1, 2, 3}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("series mean %v", got)
		}
	}
	if _, err := SeriesMean(nil); err == nil {
		t.Fatal("expected error for no series")
	}
	if _, err := SeriesMean([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("expected error for ragged series")
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q, err := Quantile(xs, p)
			if err != nil || q < prev-1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
