package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponentialMean(t *testing.T) {
	r := NewRNG(5)
	for _, mean := range []float64{0.5, 4, 4000} {
		xs, err := Exponential(r, 100000, mean)
		if err != nil {
			t.Fatal(err)
		}
		got := Mean(xs)
		if math.Abs(got-mean)/mean > 0.03 {
			t.Fatalf("mean %v for target %v", got, mean)
		}
		for _, x := range xs {
			if x < 0 {
				t.Fatalf("negative exponential sample %v", x)
			}
		}
	}
}

func TestExponentialErrors(t *testing.T) {
	r := NewRNG(5)
	if _, err := Exponential(r, -1, 1); err == nil {
		t.Fatal("expected error for negative count")
	}
	if _, err := Exponential(r, 1, -1); err == nil {
		t.Fatal("expected error for negative mean")
	}
}

func TestPowerLawSizesConservation(t *testing.T) {
	r := NewRNG(9)
	cases := []struct {
		n, total, min int
		s             float64
	}{
		{40, 22377, 20, 1.2},
		{40, 14463, 20, 1.2},
		{10, 1000, 5, 0.8},
		{1, 100, 0, 2},
	}
	for _, tc := range cases {
		sizes, err := PowerLawSizes(r, tc.n, tc.total, tc.min, tc.s)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		sum := 0
		for _, s := range sizes {
			if s < tc.min {
				t.Fatalf("size %d below minimum %d", s, tc.min)
			}
			sum += s
		}
		if sum != tc.total {
			t.Fatalf("sizes sum %d, want %d", sum, tc.total)
		}
	}
}

func TestPowerLawSizesSkewed(t *testing.T) {
	r := NewRNG(15)
	sizes, err := PowerLawSizes(r, 40, 22377, 20, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi = sizes[0], sizes[0]
	for _, s := range sizes {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if float64(hi) < 5*float64(lo) {
		t.Fatalf("expected heavy imbalance, got min=%d max=%d", lo, hi)
	}
}

func TestPowerLawSizesErrors(t *testing.T) {
	r := NewRNG(9)
	if _, err := PowerLawSizes(r, 0, 100, 0, 1); err == nil {
		t.Fatal("expected error for zero parts")
	}
	if _, err := PowerLawSizes(r, 10, 5, 1, 1); err == nil {
		t.Fatal("expected error for total below minimums")
	}
	if _, err := PowerLawSizes(r, 10, 100, -1, 1); err == nil {
		t.Fatal("expected error for negative minimum")
	}
	if _, err := PowerLawSizes(r, 10, 100, 0, -1); err == nil {
		t.Fatal("expected error for negative exponent")
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(21)
	xs, err := LogNormal(r, 100001, 2.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-2)/2 > 0.05 {
		t.Fatalf("median %v, want ~2", med)
	}
}

func TestLogNormalErrors(t *testing.T) {
	r := NewRNG(21)
	if _, err := LogNormal(r, 10, 0, 1); err == nil {
		t.Fatal("expected error for non-positive median")
	}
	if _, err := LogNormal(r, -2, 1, 1); err == nil {
		t.Fatal("expected error for negative count")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(25)
	xs, err := UniformRange(r, 10000, -3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if x < -3 || x >= 5 {
			t.Fatalf("sample %v outside [-3,5)", x)
		}
	}
	if _, err := UniformRange(r, 2, 5, 1); err == nil {
		t.Fatal("expected error for inverted range")
	}
}

func TestQuickPowerLawAlwaysConserves(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		sizes, err := PowerLawSizes(r, 13, 997, 3, 1.5)
		if err != nil {
			return false
		}
		sum := 0
		for _, s := range sizes {
			if s < 3 {
				return false
			}
			sum += s
		}
		return sum == 997
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
