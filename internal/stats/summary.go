package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Std returns the sample standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, errors.New("stats: min/max of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: quantile of empty slice")
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: quantile level out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Welford accumulates streaming mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations so far.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// State exposes the accumulator's full internal state (count, mean, sum of
// squared deviations) so checkpoints can persist a stream of observations
// mid-flight.
func (w *Welford) State() (count int, mean, m2 float64) { return w.n, w.mean, w.m2 }

// RestoreWelford reconstructs an accumulator from a State triple.
func RestoreWelford(count int, mean, m2 float64) (Welford, error) {
	if count < 0 {
		return Welford{}, errors.New("stats: negative Welford count")
	}
	return Welford{n: count, mean: mean, m2: m2}, nil
}

// KendallTau returns the Kendall rank-correlation coefficient between two
// paired samples in [-1, 1]: +1 means the orderings agree perfectly. Ties
// count as discordant-neutral (tau-a). It is used to quantify how well the
// Theorem-1 bound ranks actual training outcomes.
func KendallTau(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: paired samples of different lengths")
	}
	n := len(x)
	if n < 2 {
		return 0, errors.New("stats: need at least two pairs")
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx*dy > 0:
				concordant++
			case dx*dy < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// SeriesMean averages several equally-long series point-wise; it is used to
// average loss/accuracy trajectories over independent runs as the paper does
// ("we average each experiment over 20 independent runs").
func SeriesMean(series [][]float64) ([]float64, error) {
	if len(series) == 0 {
		return nil, errors.New("stats: no series")
	}
	n := len(series[0])
	for _, s := range series {
		if len(s) != n {
			return nil, errors.New("stats: ragged series")
		}
	}
	out := make([]float64, n)
	for _, s := range series {
		for i, v := range s {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(series))
	}
	return out, nil
}
