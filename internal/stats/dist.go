package stats

import (
	"errors"
	"math"
)

// Exponential draws n samples from an exponential distribution with the
// given mean. The paper's Table I setups draw the per-client local cost
// parameter c_n and intrinsic value v_n this way ("c and v following
// exponential distribution among clients").
func Exponential(r *RNG, n int, mean float64) ([]float64, error) {
	if n < 0 {
		return nil, errors.New("stats: negative sample count")
	}
	if mean < 0 {
		return nil, errors.New("stats: negative mean")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = mean * r.ExpFloat64()
	}
	return out, nil
}

// PowerLawSizes partitions total items across n parts following a power-law
// (Zipf-like) profile with exponent s, matching the paper's "unbalanced
// power-law distribution" of per-client data sizes. Each part receives at
// least minPer items; the remainder is distributed proportionally to
// rank^(-s) with ranks shuffled so client index does not correlate with size.
func PowerLawSizes(r *RNG, n, total, minPer int, s float64) ([]int, error) {
	switch {
	case n <= 0:
		return nil, errors.New("stats: need at least one part")
	case minPer < 0:
		return nil, errors.New("stats: negative minimum size")
	case total < n*minPer:
		return nil, errors.New("stats: total too small for minimum sizes")
	case s < 0:
		return nil, errors.New("stats: negative power-law exponent")
	}
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
		sum += weights[i]
	}
	// Shuffle so the heavy clients are at random indices.
	r.Shuffle(n, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })

	rest := total - n*minPer
	sizes := make([]int, n)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(rest) * weights[i] / sum)
		assigned += sizes[i]
	}
	// Hand out rounding leftovers one at a time, largest-weight first.
	for i := 0; assigned < rest; i = (i + 1) % n {
		sizes[i]++
		assigned++
	}
	for i := range sizes {
		sizes[i] += minPer
	}
	return sizes, nil
}

// LogNormal draws n samples with the given median and sigma of the
// underlying normal. Used by the hardware-prototype timing model for
// heterogeneous per-client compute and communication times.
func LogNormal(r *RNG, n int, median, sigma float64) ([]float64, error) {
	if n < 0 {
		return nil, errors.New("stats: negative sample count")
	}
	if median <= 0 {
		return nil, errors.New("stats: non-positive median")
	}
	mu := math.Log(median)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(mu + sigma*r.NormFloat64())
	}
	return out, nil
}

// UniformRange draws n samples uniformly from [lo, hi).
func UniformRange(r *RNG, n int, lo, hi float64) ([]float64, error) {
	if n < 0 {
		return nil, errors.New("stats: negative sample count")
	}
	if hi < lo {
		return nil, errors.New("stats: inverted range")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*r.Float64()
	}
	return out, nil
}
