package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestNewRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Float64())
	}
	if math.Abs(w.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", w.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 7, 100, 12345} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(13)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 0.08*expected {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, expected)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", w.Mean())
	}
	if math.Abs(w.Std()-1) > 0.02 {
		t.Fatalf("normal std %v, want ~1", w.Std())
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := NewRNG(19)
	var w Welford
	for i := 0; i < 200000; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		w.Add(x)
	}
	if math.Abs(w.Mean()-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", w.Mean())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{0, 1, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(31)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate %v", p, rate)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(37)
	child := parent.Split()
	// Child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split child too correlated: %d/64 matches", same)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(41)
	got, err := r.SampleWithoutReplacement(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("length %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", got)
		}
		seen[v] = true
	}
	if _, err := r.SampleWithoutReplacement(3, 5); err == nil {
		t.Fatal("expected error for k > n")
	}
	if _, err := r.SampleWithoutReplacement(3, -1); err == nil {
		t.Fatal("expected error for negative k")
	}
}

func TestQuickFloat64AlwaysInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			x := r.Float64()
			if x < 0 || x >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
