package game

import (
	"errors"
	"fmt"
	"runtime"

	"unbiasedfl/internal/stats"
)

// This file implements the paper's first future-work item: "we will extend
// our incentive mechanism for incomplete information scenarios using
// Bayesian method". The server no longer observes each client's private
// cost c_n and intrinsic value v_n — only their prior distributions (the
// exponential families of Table I) plus the public data parameters a_n, G_n
// estimated from gradients. Pricing proceeds in two steps:
//
//  1. Certainty-equivalent design: solve the complete-information KKT
//     system with every private parameter replaced by its prior mean. This
//     yields the *shape* of the price vector (who gets paid more).
//  2. Monte-Carlo budget calibration: scale the whole price vector so the
//     *expected* spend over the prior meets the budget, since realized best
//     responses differ from the certainty-equivalent ones.

// Prior describes the server's belief over clients' private parameters:
// independent exponentials, matching the experimental setups.
type Prior struct {
	MeanC float64 // mean of the local-cost parameter c_n
	MeanV float64 // mean of the intrinsic-value preference v_n
}

// Validate checks the prior.
func (pr Prior) Validate() error {
	if pr.MeanC <= 0 {
		return errors.New("game: prior mean cost must be positive")
	}
	if pr.MeanV < 0 {
		return errors.New("game: prior mean value must be nonnegative")
	}
	return nil
}

// BayesianOutcome is a posted-price design under incomplete information,
// with Monte-Carlo estimates of its expected performance.
type BayesianOutcome struct {
	P []float64 // posted prices
	// ExpectedQ is the prior-mean best response per client.
	ExpectedQ []float64
	// ExpectedSpend is the prior-mean total payment (calibrated to <= B).
	ExpectedSpend float64
	// ExpectedObj is the server bound evaluated at ExpectedQ.
	ExpectedObj float64
	// Scenarios is the number of Monte-Carlo draws used.
	Scenarios int
}

// bestResponseScenario solves eq. 13 for arbitrary (c, v) instead of the
// stored parameters: the unique root of price + vαD/(R q²) − 2cq on
// (0, QMax], clamped to the box. It shares BestResponse's Newton solver.
func (p *Params) bestResponseScenario(n int, price, c, v float64) float64 {
	k := v * p.Alpha / p.R * p.DataQuality(n)
	if k == 0 {
		return clamp(price/(2*c), 0, p.QMax)
	}
	return positiveRoot(price, k, 2*c, p.QMax)
}

// expectedResponse estimates E[q_n(P_n)] and E[P_n q_n(P_n)] over the prior
// using common random numbers (the scenario draws are fixed per call).
func (p *Params) expectedResponse(n int, price float64, cs, vs []float64) (meanQ, meanPay float64) {
	k := float64(len(cs))
	for i := range cs {
		q := p.bestResponseScenario(n, price, cs[i], vs[i])
		meanQ += q / k
		meanPay += price * q / k
	}
	return meanQ, meanPay
}

// SolveBayesian designs posted prices knowing only the prior over (c, v).
// scenarios controls the Monte-Carlo resolution; rng provides the scenario
// draws (common across the calibration search for stability). The
// Monte-Carlo expectations are evaluated across GOMAXPROCS workers; see
// SolveBayesianParallel for the determinism guarantee.
func (p *Params) SolveBayesian(prior Prior, scenarios int, rng *stats.RNG) (*BayesianOutcome, error) {
	return p.SolveBayesianParallel(prior, scenarios, rng, 0)
}

// SolveBayesianParallel is SolveBayesian with an explicit worker count
// (<= 0 means GOMAXPROCS). The output is bit-identical for any worker
// count: all scenario draws are generated up front from rng in client order
// (common random numbers), each worker evaluates whole per-client
// expectations into index-addressed slots, and every reduction sums in
// client order.
func (p *Params) SolveBayesianParallel(prior Prior, scenarios int, rng *stats.RNG, workers int) (*BayesianOutcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := prior.Validate(); err != nil {
		return nil, err
	}
	if scenarios <= 0 {
		return nil, errors.New("game: need at least one scenario")
	}
	if rng == nil {
		return nil, errors.New("game: nil rng")
	}

	// Step 1: certainty-equivalent prices from the prior means.
	ce := p.Clone()
	for n := range ce.C {
		ce.C[n] = prior.MeanC
		ce.V[n] = prior.MeanV
	}
	ceEq, err := ce.SolveKKT()
	if err != nil {
		return nil, fmt.Errorf("certainty-equivalent design: %w", err)
	}

	// Shared scenario draws per client (common random numbers): generated
	// sequentially up front so the draw order never depends on scheduling.
	n := p.N()
	cs := make([][]float64, n)
	vs := make([][]float64, n)
	for i := 0; i < n; i++ {
		ci, err := stats.Exponential(rng, scenarios, prior.MeanC)
		if err != nil {
			return nil, err
		}
		for j := range ci {
			ci[j] += prior.MeanC * 0.05 // strictly positive costs
		}
		vi, err := stats.Exponential(rng, scenarios, prior.MeanV)
		if err != nil {
			return nil, err
		}
		cs[i], vs[i] = ci, vi
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Per-client expectation slots: each worker owns whole clients, so the
	// scenario loop inside expectedResponse keeps its sequential summation
	// order and the cross-client reduction below is in index order.
	qMeans := make([]float64, n)
	pays := make([]float64, n)
	evalAll := func(scale float64) {
		parallelFor(n, workers, func(i int) {
			qMeans[i], pays[i] = p.expectedResponse(i, scale*ceEq.P[i], cs[i], vs[i])
		})
	}
	expSpend := func(scale float64) float64 {
		evalAll(scale)
		var total float64
		for i := 0; i < n; i++ {
			total += pays[i]
		}
		return total
	}

	// Step 2: calibrate the scale so expected spend meets the budget.
	// Expected spend is nondecreasing in the scale (each client's expected
	// payment is nondecreasing in its own price), so bisection applies. The
	// bisections stop at floating-point resolution instead of burning their
	// full iteration budget: once mid collides with an endpoint the bracket
	// can never move again.
	scale := 1.0
	if expSpend(1) > p.B {
		lo, hi := 0.0, 1.0
		for i := 0; i < 100; i++ {
			mid := 0.5 * (lo + hi)
			if mid == lo || mid == hi {
				break
			}
			if expSpend(mid) > p.B {
				hi = mid
			} else {
				lo = mid
			}
		}
		scale = lo
	} else {
		// Budget slack at the certainty-equivalent prices: grow until the
		// budget binds or responses saturate.
		hi := 1.0
		for i := 0; i < 60 && expSpend(hi*2) <= p.B; i++ {
			hi *= 2
		}
		lo := hi
		hi *= 2
		if expSpend(hi) > p.B {
			for i := 0; i < 100; i++ {
				mid := 0.5 * (lo + hi)
				if mid == lo || mid == hi {
					break
				}
				if expSpend(mid) > p.B {
					hi = mid
				} else {
					lo = mid
				}
			}
		}
		scale = lo
	}

	out := &BayesianOutcome{
		P:         make([]float64, n),
		ExpectedQ: make([]float64, n),
		Scenarios: scenarios,
	}
	evalAll(scale)
	for i := 0; i < n; i++ {
		out.P[i] = scale * ceEq.P[i]
		q := qMeans[i]
		if q < p.QMin {
			q = p.QMin
		}
		out.ExpectedQ[i] = q
		out.ExpectedSpend += pays[i]
	}
	obj, err := p.ServerObjective(out.ExpectedQ)
	if err != nil {
		return nil, err
	}
	out.ExpectedObj = obj
	return out, nil
}

// EvaluateRealized scores posted prices against the *true* private
// parameters held in p: the realized best responses, spend, and bound. It
// is how tests and experiments measure the cost of incomplete information.
func (p *Params) EvaluateRealized(prices []float64) (q []float64, spend, obj float64, err error) {
	if len(prices) != p.N() {
		return nil, 0, 0, fmt.Errorf("game: %d prices for %d clients", len(prices), p.N())
	}
	q, err = p.BestResponseAll(prices)
	if err != nil {
		return nil, 0, 0, err
	}
	for i := range q {
		if q[i] < p.QMin {
			q[i] = p.QMin
		}
	}
	spend, err = TotalPayment(prices, q)
	if err != nil {
		return nil, 0, 0, err
	}
	obj, err = p.ServerObjective(q)
	if err != nil {
		return nil, 0, 0, err
	}
	return q, spend, obj, nil
}
