package game

import (
	"math"
	"sync"
	"sync/atomic"
)

// Fingerprint returns a 64-bit FNV-1a hash over every field of the game,
// position-sensitive and exact on the raw float bits. Two games with equal
// fingerprints are (up to hash collisions, which the Cache re-verifies with
// a full comparison) the same game and therefore have the same equilibrium.
func (p *Params) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xFF
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(p.N()))
	for _, s := range [][]float64{p.A, p.G, p.C, p.V} {
		for _, x := range s {
			mix(math.Float64bits(x))
		}
	}
	for _, x := range []float64{p.Alpha, p.Beta, p.R, p.B, p.QMax, p.QMin} {
		mix(math.Float64bits(x))
	}
	return h
}

// Equal reports whether two games are identical field-for-field (exact
// float equality).
func (p *Params) Equal(o *Params) bool {
	if p == nil || o == nil {
		return p == o
	}
	if p.N() != o.N() || p.Alpha != o.Alpha || p.Beta != o.Beta ||
		p.R != o.R || p.B != o.B || p.QMax != o.QMax || p.QMin != o.QMin {
		return false
	}
	for i := 0; i < p.N(); i++ {
		if p.A[i] != o.A[i] || p.G[i] != o.G[i] || p.C[i] != o.C[i] || p.V[i] != o.V[i] {
			return false
		}
	}
	return true
}

// cacheKey identifies one solved question: a pricing scheme (empty for the
// raw KKT equilibrium) on one game fingerprint.
type cacheKey struct {
	scheme string
	fp     uint64
}

type cacheEntry struct {
	params *Params // cloned at insert; guards against fingerprint collisions
	eq     *Equilibrium
	out    *Outcome
}

// cacheShardCount is the number of lock shards — a power of two so the
// fingerprint's low bits select a shard with a mask. Sixteen shards keep
// lock contention negligible at serving concurrency while the per-shard
// maps stay dense.
const cacheShardCount = 16

// cacheShard is one lock-striped slice of the entry map. The trailing pad
// keeps neighbouring shard locks on separate cache lines so a hot shard's
// lock traffic does not false-share with its neighbours.
type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	_       [40]byte
}

// Cache memoizes equilibrium solves and scheme pricings by game
// fingerprint, so repeated queries on the same world (the same scheme
// re-priced inside Compare, repeated Equilibrium calls, adaptive repricing
// epochs with unchanged estimates, high-QPS serving traffic) solve once.
//
// A Cache is safe for concurrent use at serving concurrency: entries are
// sharded by fingerprint across lock-striped shards, so the hit path takes
// only its shard's lock plus two atomic counter bumps, and concurrent
// readers of distinct games never contend. The miss path (which just paid
// for a full solve) additionally serializes on a store lock that owns the
// global FIFO eviction order, keeping the capacity bound exact.
//
// Cached values are shared between callers and must be treated as
// read-only, the same contract every solver result in this package already
// carries. Pricing schemes routed through Price must be deterministic —
// true of the built-ins and of anything derived from Params.OutcomeFor.
// Eviction is FIFO at the configured capacity.
type Cache struct {
	shards    [cacheShardCount]cacheShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// storeMu owns the insertion bookkeeping: the FIFO order, the live size,
	// and the capacity bound. Lock order is storeMu before any shard lock;
	// the read path never touches storeMu.
	storeMu sync.Mutex
	max     int
	size    int
	order   []cacheKey
}

// CacheStats is a point-in-time snapshot of the cache counters. Hits,
// Misses, and Evictions are monotone totals since construction; Entries is
// the current population.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache returns a cache holding at most max solved games (max <= 0
// selects a default of 256).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	c := &Cache{max: max}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
	}
	return c
}

// Solve returns the memoized Stackelberg equilibrium of p, solving it via
// SolveKKT on first sight. Hits return a value equal to a fresh solve —
// the solver is deterministic — without re-running the bisection.
func (c *Cache) Solve(p *Params) (*Equilibrium, error) {
	key := cacheKey{fp: p.Fingerprint()}
	if e := c.lookup(key, p); e != nil {
		return e.eq, nil
	}
	eq, err := p.SolveKKT()
	if err != nil {
		return nil, err
	}
	c.store(key, p, &cacheEntry{eq: eq})
	return eq, nil
}

// Price returns the memoized priced outcome of scheme ps on p.
func (c *Cache) Price(ps PricingScheme, p *Params) (*Outcome, error) {
	key := cacheKey{scheme: ps.Name(), fp: p.Fingerprint()}
	if e := c.lookup(key, p); e != nil {
		return e.out, nil
	}
	out, err := ps.Price(p)
	if err != nil {
		return nil, err
	}
	c.store(key, p, &cacheEntry{out: out})
	return out, nil
}

// Stats reports the hit/miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Snapshot reports all counters plus the current entry count, the shape the
// serving layer's /metrics endpoint exports.
func (c *Cache) Snapshot() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	c.storeMu.Lock()
	s.Entries = c.size
	c.storeMu.Unlock()
	return s
}

// Len reports the number of cached solves.
func (c *Cache) Len() int {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	return c.size
}

// shard selects the lock shard owning a fingerprint.
func (c *Cache) shard(fp uint64) *cacheShard {
	return &c.shards[fp&(cacheShardCount-1)]
}

func (c *Cache) lookup(key cacheKey, p *Params) *cacheEntry {
	sh := c.shard(key.fp)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	sh.mu.Unlock()
	// The entry (and its cloned Params) is immutable after store, so the
	// collision re-check can run outside the shard lock.
	if ok && e.params.Equal(p) {
		c.hits.Add(1)
		return e
	}
	c.misses.Add(1)
	return nil
}

func (c *Cache) store(key cacheKey, p *Params, e *cacheEntry) {
	e.params = p.Clone()
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	sh := c.shard(key.fp)
	sh.mu.Lock()
	_, existed := sh.entries[key]
	sh.entries[key] = e
	sh.mu.Unlock()
	if existed {
		// Two concurrent misses on the same game both solved; the second
		// overwrote the first's (equal) entry and the FIFO order already
		// lists the key once.
		return
	}
	c.order = append(c.order, key)
	c.size++
	for c.size > c.max {
		// Every present key appears exactly once in order (all mutations
		// happen under storeMu), so the victim is always still resident.
		victim := c.order[0]
		c.order = c.order[1:]
		vs := c.shard(victim.fp)
		vs.mu.Lock()
		delete(vs.entries, victim)
		vs.mu.Unlock()
		c.size--
		c.evictions.Add(1)
	}
}
