package game

import (
	"math"
	"sync"
)

// Fingerprint returns a 64-bit FNV-1a hash over every field of the game,
// position-sensitive and exact on the raw float bits. Two games with equal
// fingerprints are (up to hash collisions, which the Cache re-verifies with
// a full comparison) the same game and therefore have the same equilibrium.
func (p *Params) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xFF
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(p.N()))
	for _, s := range [][]float64{p.A, p.G, p.C, p.V} {
		for _, x := range s {
			mix(math.Float64bits(x))
		}
	}
	for _, x := range []float64{p.Alpha, p.Beta, p.R, p.B, p.QMax, p.QMin} {
		mix(math.Float64bits(x))
	}
	return h
}

// Equal reports whether two games are identical field-for-field (exact
// float equality).
func (p *Params) Equal(o *Params) bool {
	if p == nil || o == nil {
		return p == o
	}
	if p.N() != o.N() || p.Alpha != o.Alpha || p.Beta != o.Beta ||
		p.R != o.R || p.B != o.B || p.QMax != o.QMax || p.QMin != o.QMin {
		return false
	}
	for i := 0; i < p.N(); i++ {
		if p.A[i] != o.A[i] || p.G[i] != o.G[i] || p.C[i] != o.C[i] || p.V[i] != o.V[i] {
			return false
		}
	}
	return true
}

// cacheKey identifies one solved question: a pricing scheme (empty for the
// raw KKT equilibrium) on one game fingerprint.
type cacheKey struct {
	scheme string
	fp     uint64
}

type cacheEntry struct {
	params *Params // cloned at insert; guards against fingerprint collisions
	eq     *Equilibrium
	out    *Outcome
}

// Cache memoizes equilibrium solves and scheme pricings by game
// fingerprint, so repeated Session queries on the same world (the same
// scheme re-priced inside Compare, repeated Equilibrium calls, adaptive
// repricing epochs with unchanged estimates) solve once.
//
// Cached values are shared between callers and must be treated as
// read-only, the same contract every solver result in this package already
// carries. Pricing schemes routed through Price must be deterministic —
// true of the built-ins and of anything derived from Params.OutcomeFor.
// Eviction is FIFO at the configured capacity. A Cache is safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*cacheEntry
	order   []cacheKey
	hits    uint64
	misses  uint64
}

// NewCache returns a cache holding at most max solved games (max <= 0
// selects a default of 256).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	return &Cache{max: max, entries: make(map[cacheKey]*cacheEntry)}
}

// Solve returns the memoized Stackelberg equilibrium of p, solving it via
// SolveKKT on first sight. Hits return a value equal to a fresh solve —
// the solver is deterministic — without re-running the bisection.
func (c *Cache) Solve(p *Params) (*Equilibrium, error) {
	key := cacheKey{fp: p.Fingerprint()}
	if e := c.lookup(key, p); e != nil {
		return e.eq, nil
	}
	eq, err := p.SolveKKT()
	if err != nil {
		return nil, err
	}
	c.store(key, p, &cacheEntry{eq: eq})
	return eq, nil
}

// Price returns the memoized priced outcome of scheme ps on p.
func (c *Cache) Price(ps PricingScheme, p *Params) (*Outcome, error) {
	key := cacheKey{scheme: ps.Name(), fp: p.Fingerprint()}
	if e := c.lookup(key, p); e != nil {
		return e.out, nil
	}
	out, err := ps.Price(p)
	if err != nil {
		return nil, err
	}
	c.store(key, p, &cacheEntry{out: out})
	return out, nil
}

// Stats reports the hit/miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached solves.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) lookup(key cacheKey, p *Params) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok && e.params.Equal(p) {
		c.hits++
		return e
	}
	c.misses++
	return nil
}

func (c *Cache) store(key cacheKey, p *Params, e *cacheEntry) {
	e.params = p.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists {
		for len(c.entries) >= c.max && len(c.order) > 0 {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = e
}
