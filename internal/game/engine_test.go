package game

import (
	"errors"
	"math"
	"testing"

	"unbiasedfl/internal/stats"
)

// engineGame builds a random valid game with the heterogeneity shape of the
// Table-I setups.
func engineGame(tb testing.TB, seed uint64, n int) *Params {
	tb.Helper()
	r := stats.NewRNG(seed)
	a := make([]float64, n)
	var sum float64
	for i := range a {
		a[i] = 0.2 + r.Float64()
		sum += a[i]
	}
	for i := range a {
		a[i] /= sum
	}
	g, err := stats.UniformRange(r, n, 1, 25)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := stats.UniformRange(r, n, 5, 90)
	if err != nil {
		tb.Fatal(err)
	}
	v, err := stats.UniformRange(r, n, 0, 8000)
	if err != nil {
		tb.Fatal(err)
	}
	return &Params{
		A: a, G: g, C: c, V: v,
		Alpha: 0.3 + 2*r.Float64(), R: 1000,
		B:    10 + 400*r.Float64(),
		QMax: 1, QMin: DefaultQMin,
	}
}

func equalEquilibria(tb testing.TB, label string, a, b *Equilibrium) {
	tb.Helper()
	if a.Lambda != b.Lambda || a.Spent != b.Spent || a.ServerObj != b.ServerObj ||
		a.BudgetTight != b.BudgetTight {
		tb.Fatalf("%s: scalar drift: λ %v vs %v, spent %v vs %v, obj %v vs %v, tight %v vs %v",
			label, a.Lambda, b.Lambda, a.Spent, b.Spent, a.ServerObj, b.ServerObj,
			a.BudgetTight, b.BudgetTight)
	}
	for i := range a.Q {
		if a.Q[i] != b.Q[i] || a.P[i] != b.P[i] {
			tb.Fatalf("%s: client %d drift: q %v vs %v, P %v vs %v",
				label, i, a.Q[i], b.Q[i], a.P[i], b.P[i])
		}
	}
}

// TestWarmSolverBitIdenticalToCold is the engine's central determinism
// gate: one Solver reused across a stream of unrelated games — its warm
// brackets carrying over from game to game — must produce bit-identical
// results to a cold SolveKKT per game.
func TestWarmSolverBitIdenticalToCold(t *testing.T) {
	s := NewSolver()
	for seed := uint64(1); seed <= 40; seed++ {
		p := engineGame(t, seed, 3+int(seed%20))
		warm, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		cold, err := p.SolveKKT()
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		equalEquilibria(t, "warm vs cold", warm, cold)
	}
}

// TestWarmSweepBitIdenticalToCold mirrors the sweep shape: a fine budget
// grid solved by one warm Solver must match fresh solves point for point,
// and the slack (λ=0) regime must round-trip through warm state too.
func TestWarmSweepBitIdenticalToCold(t *testing.T) {
	base := engineGame(t, 99, 12)
	s := NewSolver()
	for i := 0; i < 120; i++ {
		p := base.Clone()
		// Spans binding budgets through to fully slack ones.
		p.B = base.B * (0.05 + 40*float64(i)/119)
		warm, err := s.Solve(p)
		if err != nil {
			t.Fatalf("point %d: warm: %v", i, err)
		}
		cold, err := p.SolveKKT()
		if err != nil {
			t.Fatalf("point %d: cold: %v", i, err)
		}
		equalEquilibria(t, "sweep point", warm, cold)
	}
}

// TestSolveManyMatchesSequential pins SolveMany ≡ sequential SolveKKT
// bit-identically for any worker count.
func TestSolveManyMatchesSequential(t *testing.T) {
	games := make([]*Params, 23)
	for i := range games {
		games[i] = engineGame(t, uint64(300+i), 4+i%9)
	}
	want := make([]*Equilibrium, len(games))
	for i, g := range games {
		eq, err := g.SolveKKT()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = eq
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := SolveMany(games, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			equalEquilibria(t, "solve-many", got[i], want[i])
		}
	}
}

// TestSolveManyErrors pins the deterministic lowest-index error contract.
func TestSolveManyErrors(t *testing.T) {
	if _, err := SolveMany(nil, 2); err == nil {
		t.Fatal("expected empty-batch error")
	}
	good := engineGame(t, 7, 5)
	bad := good.Clone()
	bad.Alpha = -1
	_, err := SolveMany([]*Params{good, bad, bad.Clone(), good}, 3)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("expected BatchError, got %v", err)
	}
	if be.Index != 1 {
		t.Fatalf("expected lowest failing index 1, got %d", be.Index)
	}
	if _, err := SolveMany([]*Params{good, nil}, 2); !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("expected nil-params BatchError at 1, got %v", err)
	}
}

// TestSolveKKTZeroAllocs is the solver-side allocation gate, mirroring PR
// 1's FL hot-path gates: with warm scratch and a reused output arena, a
// full equilibrium solve performs zero heap allocations.
func TestSolveKKTZeroAllocs(t *testing.T) {
	p := engineGame(t, 11, 64)
	s := NewSolver()
	var eq Equilibrium
	if err := s.SolveInto(p, &eq); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.SolveInto(p, &eq); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SolveInto allocates %v times per run", allocs)
	}
}

// TestMSearchEngineMatchesCold pins the warm-started M-search: a Solver
// reused across games (ψ/θ/λ brackets all carried over) must reproduce the
// cold Params.SolveMSearch bit for bit.
func TestMSearchEngineMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("m-search sweep is slow")
	}
	s := NewSolver()
	opts := DefaultMSearchOptions()
	for seed := uint64(50); seed < 56; seed++ {
		p := engineGame(t, seed, 3+int(seed%5))
		warm, err := s.SolveMSearch(p, opts)
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		cold, err := p.SolveMSearch(opts)
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		equalEquilibria(t, "m-search", warm, cold)
	}
}

// TestBayesianParallelMatchesSequential pins the parallel Monte-Carlo
// design: identical output for any worker count, scenario draws included.
func TestBayesianParallelMatchesSequential(t *testing.T) {
	p := engineGame(t, 21, 17)
	prior := Prior{MeanC: 50, MeanV: 4000}
	want, err := p.SolveBayesianParallel(prior, 150, stats.NewRNG(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		got, err := p.SolveBayesianParallel(prior, 150, stats.NewRNG(3), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.ExpectedSpend != want.ExpectedSpend || got.ExpectedObj != want.ExpectedObj ||
			got.Scenarios != want.Scenarios {
			t.Fatalf("workers=%d: scalar drift: spend %v vs %v, obj %v vs %v",
				workers, got.ExpectedSpend, want.ExpectedSpend, got.ExpectedObj, want.ExpectedObj)
		}
		for i := range want.P {
			if got.P[i] != want.P[i] || got.ExpectedQ[i] != want.ExpectedQ[i] {
				t.Fatalf("workers=%d: client %d drift: P %v vs %v, q %v vs %v",
					workers, i, got.P[i], want.P[i], got.ExpectedQ[i], want.ExpectedQ[i])
			}
		}
	}
}

// TestCacheHitEqualsFreshSolve pins the memo-cache contract: hits return
// values equal to fresh solves, and the hit counters move.
func TestCacheHitEqualsFreshSolve(t *testing.T) {
	c := NewCache(8)
	p := engineGame(t, 31, 9)
	first, err := c.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	equalEquilibria(t, "cache miss vs fresh", first, fresh)
	second, err := c.Solve(p.Clone()) // equal game, distinct backing arrays
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("expected the memoized equilibrium on the second solve")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("expected 1 hit / 1 miss, got %d / %d", hits, misses)
	}

	// A changed game is a different fingerprint, never a stale hit.
	bumped := p.Clone()
	bumped.B *= 1.5
	third, err := c.Solve(bumped)
	if err != nil {
		t.Fatal(err)
	}
	freshBumped, err := bumped.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	equalEquilibria(t, "bumped game", third, freshBumped)
}

// TestCachePriceSchemes pins Outcome memoization per scheme name.
func TestCachePriceSchemes(t *testing.T) {
	c := NewCache(8)
	p := engineGame(t, 37, 7)
	proposed, err := SchemeByName(SchemeNameProposed)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := SchemeByName(SchemeNameUniform)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Price(proposed, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Price(uniform, p)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct schemes must not share a cache entry")
	}
	a2, err := c.Price(proposed, p)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("expected the memoized outcome for the repeated scheme")
	}
	direct, err := proposed.Price(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.P {
		if a.P[i] != direct.P[i] || a.Q[i] != direct.Q[i] {
			t.Fatalf("client %d: cached pricing drifted from direct pricing", i)
		}
	}
}

// TestCacheEviction pins the FIFO capacity bound.
func TestCacheEviction(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 6; i++ {
		p := engineGame(t, uint64(500+i), 4)
		if _, err := c.Solve(p); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("expected capacity 3, got %d", c.Len())
	}
}

// TestFingerprintDiscriminates spot-checks that every Params field feeds
// the fingerprint.
func TestFingerprintDiscriminates(t *testing.T) {
	p := engineGame(t, 41, 6)
	base := p.Fingerprint()
	if p.Clone().Fingerprint() != base {
		t.Fatal("clone fingerprint differs from original")
	}
	mutate := []func(*Params){
		func(q *Params) { q.A[2] += 1e-12 },
		func(q *Params) { q.G[0] *= 1.0000001 },
		func(q *Params) { q.C[1] += 1 },
		func(q *Params) { q.V[3] += 1 },
		func(q *Params) { q.Alpha *= 2 },
		func(q *Params) { q.Beta += 1 },
		func(q *Params) { q.R += 1 },
		func(q *Params) { q.B += 1 },
		func(q *Params) { q.QMax -= 0.01 },
		func(q *Params) { q.QMin *= 2 },
	}
	for i, m := range mutate {
		q := p.Clone()
		m(q)
		if q.Fingerprint() == base {
			t.Fatalf("mutation %d left the fingerprint unchanged", i)
		}
		if q.Equal(p) {
			t.Fatalf("mutation %d left Equal true", i)
		}
	}
}

// TestPositiveRootMatchesFirstOrderCondition certifies the Newton best
// response against its defining equation across regimes, including
// negative prices (clients paying the server) and ceiling saturation.
func TestPositiveRootMatchesFirstOrderCondition(t *testing.T) {
	r := stats.NewRNG(61)
	for trial := 0; trial < 2000; trial++ {
		price := -200 + 400*r.Float64()
		k := math.Exp(-8 + 12*r.Float64())
		twoC := math.Exp(-2 + 8*r.Float64())
		qMax := 0.3 + 0.7*r.Float64()
		q := positiveRoot(price, k, twoC, qMax)
		if q <= 0 || q > qMax || math.IsNaN(q) {
			t.Fatalf("trial %d: root %v outside (0, %v]", trial, q, qMax)
		}
		g := price + k/(q*q) - twoC*q
		if q == qMax {
			if g < -1e-9*(math.Abs(price)+twoC) {
				t.Fatalf("trial %d: saturated root with negative margin %v", trial, g)
			}
			continue
		}
		// Interior root: the FOC must hold to near machine precision,
		// measured against the equation's own scale.
		scale := math.Abs(price) + k/(q*q) + twoC*q
		if math.Abs(g) > 1e-9*scale {
			t.Fatalf("trial %d: |g(q)| = %v vs scale %v (price=%v k=%v twoC=%v)",
				trial, math.Abs(g), scale, price, k, twoC)
		}
	}
}
