package game

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the fleet-scale equilibrium engine: a reusable Solver with
// caller-owned scratch arenas (zero heap allocations per solve in steady
// state), warm-started multiplier brackets for sequences of nearby games,
// and a fixed-order worker pool for batch solves.
//
// Determinism contract: every bisection in the engine runs on the IEEE-754
// bit lattice until it pins the unique adjacent-float boundary pair
// (lo, hi) with pred(lo) && !pred(hi). Because the pair is a property of
// the predicate alone — not of the starting bracket or the midpoint
// sequence — a warm-started solve is bit-identical to a cold one, and
// SolveMany is bit-identical to a sequential loop for any worker count.

// lambdaBracket is a saved boundary pair from a previous bisection, used to
// seed the next solve's bracket.
type lambdaBracket struct {
	lo, hi float64
	ok     bool
}

// Solver is a reusable equilibrium engine. It owns scratch buffers for the
// bisection iterations and remembers the multiplier brackets of the
// previous solve, so a sequence of nearby games (sweep points, sensitivity
// probes, repriced epochs) skips most of the bracket search. A Solver is
// not safe for concurrent use; SolveMany gives each worker its own.
//
// Results are bit-identical to Params.SolveKKT regardless of what the
// Solver solved before (see the determinism contract above).
type Solver struct {
	q    []float64 // participation scratch, written by every spend probe
	coef []float64 // per-client cbrt coefficient α a²G² / (4 R c)
	gain []float64 // per-client intrinsic gain K_n = v_n (α/R) a²G²

	warmLambda lambdaBracket // λ boundary pair from the previous solve

	// M-search state: inner-problem scratch and the ψ/θ multiplier pairs
	// carried across grid steps (see SolveMSearch).
	msQ       []float64
	msBest    []float64
	warmPsi   lambdaBracket
	warmTheta lambdaBracket
}

// NewSolver returns an engine with empty scratch; buffers grow on first use
// and are reused afterwards.
func NewSolver() *Solver { return &Solver{} }

// Solve computes the Stackelberg equilibrium of p into a freshly allocated,
// caller-owned Equilibrium. It is bit-identical to p.SolveKKT().
func (s *Solver) Solve(p *Params) (*Equilibrium, error) {
	eq := new(Equilibrium)
	if err := s.SolveInto(p, eq); err != nil {
		return nil, err
	}
	return eq, nil
}

// SolveInto solves into a caller-owned Equilibrium, reusing eq.Q and eq.P
// when their capacity allows. With warm buffers it performs zero heap
// allocations, which keeps fleet-scale sweeps out of the garbage collector
// entirely.
func (s *Solver) SolveInto(p *Params, eq *Equilibrium) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n := p.N()
	s.q = growFloats(s.q, n)
	s.coef = growFloats(s.coef, n)
	s.gain = growFloats(s.gain, n)
	for i := 0; i < n; i++ {
		d := p.DataQuality(i)
		s.coef[i] = p.Alpha * d / (4 * p.R * p.C[i])
		s.gain[i] = p.V[i] * p.Alpha / p.R * d
	}

	// Budget slack case: paying everyone to the ceiling is affordable.
	if spent := s.spendOfLambda(p, 0); spent <= p.B {
		return s.finishInto(p, eq, 0, false)
	}

	f := func(lambda float64) float64 { return s.spendOfLambda(p, lambda) - p.B }
	lo, hi, flo, fhi, ok := seekBracket(s.warmLambda, f, math.MaxFloat64)
	if !ok {
		return errors.New("game: failed to bracket budget multiplier")
	}
	lo, hi = crossingPair(lo, hi, flo, fhi, f)
	s.warmLambda = lambdaBracket{lo: lo, hi: hi, ok: true}
	// The multiplier is the feasible endpoint: the smallest representable λ
	// with spend(λ) <= B.
	s.spendOfLambda(p, hi)
	return s.finishInto(p, eq, hi, true)
}

// spendOfLambda writes the KKT stationarity solution q(λ) (eq. 22) into
// the scratch vector and returns the induced spend Σ P_n(q_n) q_n at the
// eq.-17 prices, in one allocation-free pass. Interior optima satisfy
// 1/λ = (4R/α)·c_n q³/(a_n²G_n²) + v_n, i.e.
// q_n(λ) = cbrt( (α a_n²G_n² / (4R c_n)) · (1/λ − v_n) ), clamped to the
// box; the precomputed coef/gain arrays hold the per-client constants.
func (s *Solver) spendOfLambda(p *Params, lambda float64) float64 {
	var spend float64
	q := s.q
	for i := range q {
		var qi float64
		switch {
		case lambda <= 0:
			qi = p.QMax
		default:
			slack := 1/lambda - p.V[i]
			if slack <= 0 {
				qi = p.QMin
			} else {
				qi = clamp(cbrt(s.coef[i]*slack), p.QMin, p.QMax)
			}
		}
		q[i] = qi
		spend += (2*p.C[i]*qi - s.gain[i]/(qi*qi)) * qi
	}
	return spend
}

// seekBracket establishes f(lo) > 0 >= f(hi) for a function that is
// positive below its crossing and nonpositive above it. A previous
// boundary pair seeds the search when available — still valid it is reused
// verbatim; invalidated it is galloped outward ×4 — and a cold start grows
// the bracket geometrically from [0, 1], like the historical solvers. hi
// is capped at limit: an f still positive there returns ok=false with
// hi=limit, letting each caller decide whether saturation is an error. An
// f that is nonpositive all the way down to 0 also reports ok=false.
func seekBracket(warm lambdaBracket, f func(float64) float64, limit float64) (lo, hi, flo, fhi float64, ok bool) {
	if warm.ok {
		lo, hi = warm.lo, warm.hi
		fhi = f(hi)
		switch {
		case fhi > 0: // the crossing moved above the pair
			lo, flo = hi, fhi
			for {
				hi *= 4
				if hi > limit || math.IsInf(hi, 1) {
					return lo, limit, flo, 0, false
				}
				if fhi = f(hi); fhi <= 0 {
					return lo, hi, flo, fhi, true
				}
				lo, flo = hi, fhi
			}
		default:
			if flo = f(lo); flo > 0 { // the pair still brackets the crossing
				return lo, hi, flo, fhi, true
			}
			// The crossing moved below the pair.
			hi, fhi = lo, flo
			for {
				lo /= 4
				if lo < math.SmallestNonzeroFloat64 {
					lo = 0
				}
				if flo = f(lo); flo > 0 {
					return lo, hi, flo, fhi, true
				}
				if lo == 0 {
					return 0, hi, 0, fhi, false
				}
				hi, fhi = lo, flo
			}
		}
	}
	lo, hi = 0, 1
	for {
		if fhi = f(hi); fhi <= 0 {
			return lo, hi, flo, fhi, true
		}
		lo, flo = hi, fhi
		hi *= 4
		if hi > limit || math.IsInf(hi, 1) {
			return lo, limit, flo, 0, false
		}
	}
}

// finishInto derives prices and diagnostics from the scratch q vector.
func (s *Solver) finishInto(p *Params, eq *Equilibrium, lambda float64, tight bool) error {
	n := p.N()
	eq.Q = growFloats(eq.Q, n)
	eq.P = growFloats(eq.P, n)
	copy(eq.Q, s.q)
	var spent float64
	for i := 0; i < n; i++ {
		qi := eq.Q[i]
		price := 2*p.C[i]*qi - s.gain[i]/(qi*qi)
		eq.P[i] = price
		spent += price * qi
	}
	obj, err := p.ServerObjective(eq.Q)
	if err != nil {
		return err
	}
	eq.Lambda = lambda
	eq.Spent = spent
	eq.ServerObj = obj
	eq.BudgetTight = tight
	return nil
}

// crossingPair narrows a valid bracket (f(lo) > 0 >= f(hi), flo/fhi the
// values at its ends) to the unique adjacent pair of nonnegative floats
// straddling f's sign crossing. Candidates come from linear interpolation
// (regula falsi), which converges superlinearly on the narrow brackets a
// warm start produces; every step that fails to halve the bracket's
// bit-lattice width forces the next candidate onto the lattice midpoint —
// a geometric probe that crosses hundreds of orders of magnitude in a few
// steps — so the search is never worse than twice a pure lattice
// bisection (~63 probes) and is typically an order of magnitude cheaper.
//
// The returned pair is a property of f alone, not of the starting bracket
// or the candidate sequence: as long as f crosses zero once, any valid
// bracket converges to the same two floats. That bracket-independence is
// what makes warm-started solves bit-identical to cold ones.
func crossingPair(lo, hi, flo, fhi float64, f func(float64) float64) (float64, float64) {
	blo, bhi := math.Float64bits(lo), math.Float64bits(hi)
	forceLattice := false
	for bhi-blo > 1 {
		width := bhi - blo
		var mid float64
		ok := false
		if !forceLattice {
			t := flo / (flo - fhi)
			mid = lo + t*(hi-lo)
			ok = mid > lo && mid < hi // also rejects NaN and degenerate t
		}
		if !ok {
			mid = math.Float64frombits(blo + width/2)
		}
		if fm := f(mid); fm > 0 {
			lo, flo, blo = mid, fm, math.Float64bits(mid)
		} else {
			hi, fhi, bhi = mid, fm, math.Float64bits(mid)
		}
		forceLattice = bhi-blo > width/2
	}
	return math.Float64frombits(blo), math.Float64frombits(bhi)
}

// growFloats returns s resized to n, reusing its backing array when the
// capacity allows.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// BatchError reports which game of a SolveMany batch failed.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("game: batch solve %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying solver error to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// SolveMany solves a batch of games across a fixed-order worker pool with
// per-worker scratch, warm-starting along each worker's index stream.
// results[i] is games[i]'s equilibrium, bit-identical to a sequential
// p.SolveKKT() loop for any worker count (workers <= 0 means GOMAXPROCS).
// On failure it returns the lowest-index error wrapped in a *BatchError.
func SolveMany(games []*Params, workers int) ([]*Equilibrium, error) {
	return SolveManyContext(context.Background(), games, workers)
}

// SolveManyContext is SolveMany with cancellation: games not yet started
// when ctx is cancelled are abandoned and ctx.Err() is returned.
func SolveManyContext(ctx context.Context, games []*Params, workers int) ([]*Equilibrium, error) {
	n := len(games)
	if n == 0 {
		return nil, errors.New("game: empty batch")
	}
	for i, g := range games {
		if g == nil {
			return nil, &BatchError{Index: i, Err: errors.New("game: nil params")}
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]*Equilibrium, n)
	errs := make([]error, n)
	if workers == 1 {
		s := NewSolver()
		for i, g := range games {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i], errs[i] = s.Solve(g)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := NewSolver()
				for {
					i := int(next.Add(1)) - 1
					if i >= n || ctx.Err() != nil {
						return
					}
					out[i], errs[i] = s.Solve(games[i])
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	return out, nil
}

// parallelFor runs fn(i) for every i in [0, n) across at most workers
// goroutines (1 means inline). fn must touch only index-i state; callers
// reduce results in index order to stay bit-identical for any worker count.
func parallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
