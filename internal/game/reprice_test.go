package game

import (
	"math"
	"testing"
)

// epochMasks is a roster walk over a 12-client fleet of the kind an elastic
// federation produces: a partial initial roster, a join wave, then two leave
// waves. Every mask keeps at least one client active.
func epochMasks() [][]bool {
	return [][]bool{
		{false, true, true, true, true, true, true, true, true, true, false, false},
		{true, true, true, true, true, true, true, true, true, true, true, false},
		{true, false, true, true, false, true, true, true, true, true, true, false},
		{true, false, true, true, false, true, false, true, true, false, true, true},
	}
}

// TestRepriceWarmEqualsCold pins the guarantee the elastic engine leans on
// (and reprice.go's doc comment promises): re-pricing epoch k through a
// Repricer that has already solved epochs 0..k-1 — so its persistent Solver
// carries the previous epoch's multiplier bracket — yields participation
// levels, prices, and economics bit-identical to a Repricer seeing that
// sub-game stone cold.
func TestRepriceWarmEqualsCold(t *testing.T) {
	base := testParams(t, 42, 12, 50, 4000, 200)
	proposed, err := SchemeByName(SchemeNameProposed)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewRepricer(base, proposed)
	if err != nil {
		t.Fatal(err)
	}

	q := make([]float64, base.N())
	p := make([]float64, base.N())
	for epoch, active := range epochMasks() {
		wp, err := warm.Reprice(active, q, p)
		if err != nil {
			t.Fatalf("epoch %d: warm reprice: %v", epoch, err)
		}

		cold, err := NewRepricer(base, proposed)
		if err != nil {
			t.Fatal(err)
		}
		cq := make([]float64, base.N())
		cp := make([]float64, base.N())
		ep, err := cold.Reprice(active, cq, cp)
		if err != nil {
			t.Fatalf("epoch %d: cold reprice: %v", epoch, err)
		}

		if math.Float64bits(wp.Spent) != math.Float64bits(ep.Spent) ||
			math.Float64bits(wp.ServerObj) != math.Float64bits(ep.ServerObj) {
			t.Fatalf("epoch %d: warm economics (%v, %v) != cold (%v, %v)",
				epoch, wp.Spent, wp.ServerObj, ep.Spent, ep.ServerObj)
		}
		for i, a := range active {
			if !a {
				continue
			}
			if math.Float64bits(q[i]) != math.Float64bits(cq[i]) {
				t.Fatalf("epoch %d: q[%d] warm %v != cold %v", epoch, i, q[i], cq[i])
			}
			if math.Float64bits(p[i]) != math.Float64bits(cp[i]) {
				t.Fatalf("epoch %d: price[%d] warm %v != cold %v", epoch, i, p[i], cp[i])
			}
			if q[i] < base.QMin || q[i] > base.QMax {
				t.Fatalf("epoch %d: q[%d] = %v outside [%v, %v]", epoch, i, q[i], base.QMin, base.QMax)
			}
		}
	}
}

// TestRepriceLeavesInactiveEntriesAlone: a departed client's last level and
// price must survive a re-price untouched — the scatter only writes active
// indices.
func TestRepriceLeavesInactiveEntriesAlone(t *testing.T) {
	base := testParams(t, 7, 6, 50, 4000, 200)
	proposed, err := SchemeByName(SchemeNameProposed)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRepricer(base, proposed)
	if err != nil {
		t.Fatal(err)
	}
	const sentinel = -123.5
	q := []float64{sentinel, 0, sentinel, 0, 0, sentinel}
	p := []float64{sentinel, 0, sentinel, 0, 0, sentinel}
	active := []bool{false, true, false, true, true, false}
	if _, err := rp.Reprice(active, q, p); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 5} {
		if q[i] != sentinel || p[i] != sentinel {
			t.Fatalf("inactive entry %d overwritten: q=%v p=%v", i, q[i], p[i])
		}
	}
	for _, i := range []int{1, 3, 4} {
		if q[i] < base.QMin || q[i] > base.QMax {
			t.Fatalf("active entry %d not re-priced: q=%v", i, q[i])
		}
	}
}

// TestRepriceBenchmarkScheme: non-proposed schemes re-price through their
// own Price method over the same renormalized sub-game; the scattered
// levels obey the box constraints and successive identical epochs agree
// bit-for-bit (the benchmark schemes are closed-form, so "warm" is trivially
// cold — this pins that the sub-game construction itself is deterministic).
func TestRepriceBenchmarkScheme(t *testing.T) {
	base := testParams(t, 11, 8, 50, 4000, 200)
	uniform, err := SchemeByName(SchemeNameUniform)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRepricer(base, uniform)
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true, true, false, true, true, false, true, true}
	q1 := make([]float64, 8)
	ep1, err := rp.Reprice(active, q1, nil)
	if err != nil {
		t.Fatal(err)
	}
	q2 := make([]float64, 8)
	ep2, err := rp.Reprice(active, q2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ep1.Spent) != math.Float64bits(ep2.Spent) {
		t.Fatalf("identical epochs disagree: %v vs %v", ep1.Spent, ep2.Spent)
	}
	for i := range q1 {
		if math.Float64bits(q1[i]) != math.Float64bits(q2[i]) {
			t.Fatalf("q[%d] drifts across identical epochs: %v vs %v", i, q1[i], q2[i])
		}
		if active[i] && (q1[i] < base.QMin || q1[i] > base.QMax) {
			t.Fatalf("q[%d] = %v outside box", i, q1[i])
		}
	}
}

func TestRepriceRejectsBadInput(t *testing.T) {
	base := testParams(t, 3, 5, 50, 4000, 200)
	proposed, err := SchemeByName(SchemeNameProposed)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRepricer(base, proposed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Reprice(make([]bool, 4), make([]float64, 5), nil); err == nil {
		t.Fatal("short active mask accepted")
	}
	if _, err := rp.Reprice(make([]bool, 5), make([]float64, 4), nil); err == nil {
		t.Fatal("short q slice accepted")
	}
	if _, err := rp.Reprice(make([]bool, 5), make([]float64, 5), nil); err == nil {
		t.Fatal("empty active set accepted")
	}
	if _, err := NewRepricer(nil, proposed); err == nil {
		t.Fatal("nil params accepted")
	}
	if _, err := NewRepricer(base, nil); err == nil {
		t.Fatal("nil scheme accepted")
	}
}
