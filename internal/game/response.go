package game

import (
	"fmt"
	"math"
)

// marginalUtility is the Stage-II first-order condition (eq. 13):
// f(q) = P_n + v_n (α/R) a_n²G_n²/q² − 2 c_n q. It is strictly decreasing in
// q on (0, ∞), so the client's utility is strictly concave in q and the best
// response is the unique root clamped to [0, q_max].
func (p *Params) marginalUtility(n int, price, q float64) float64 {
	return price + p.intrinsicGain(n)/(q*q) - 2*p.C[n]*q
}

// BestResponse returns client n's optimal participation level under price
// Pn: the unique maximizer of U_n(q) = P q − c q² + v·(const − bound(q)) on
// [0, QMax].
func (p *Params) BestResponse(n int, price float64) (float64, error) {
	if n < 0 || n >= p.N() {
		return 0, fmt.Errorf("game: client index %d out of range", n)
	}
	k := p.intrinsicGain(n)
	if k == 0 {
		// No intrinsic value: U = Pq − cq², maximized at P/(2c).
		q := price / (2 * p.C[n])
		return clamp(q, 0, p.QMax), nil
	}
	return positiveRoot(price, k, 2*p.C[n], p.QMax), nil
}

// positiveRoot solves the Stage-II first-order condition
// price + k/q² − 2cq = 0 (k > 0) on (0, qMax], i.e. the unique positive
// root of the cubic h(q) = 2c q³ − price q² − k. h is increasing and convex
// to the right of its inflection point and the root lies in that region, so
// Newton iteration from qMax decreases monotonically onto the root without
// ever crossing it — guaranteed quadratic convergence in a handful of
// evaluations, replacing the historical ~55-probe bisection on the FL
// pricing hot path (best responses run once per client per scale probe in
// every scaled-pricing and Monte-Carlo calibration loop).
func positiveRoot(price, k, twoC, qMax float64) float64 {
	// f(0+) = +∞ and f is strictly decreasing, so a unique positive root
	// exists. If f(qMax) >= 0 the client saturates at the ceiling.
	if price+k/(qMax*qMax)-twoC*qMax >= 0 {
		return qMax
	}
	q, prev := qMax, math.Inf(1)
	for i := 0; i < 80; i++ {
		h := (twoC*q-price)*q*q - k
		d := q * (3*twoC*q - 2*price)
		next := q - h/d
		// Monotone convergence means a repeated or cycling iterate is the
		// floating-point fixed point.
		if next == q || next == prev {
			break
		}
		prev, q = q, next
	}
	return q
}

// BestResponseAll evaluates every client's best response to a price vector.
func (p *Params) BestResponseAll(prices []float64) ([]float64, error) {
	if len(prices) != p.N() {
		return nil, fmt.Errorf("game: %d prices for %d clients", len(prices), p.N())
	}
	q := make([]float64, p.N())
	for n := range q {
		qn, err := p.BestResponse(n, prices[n])
		if err != nil {
			return nil, err
		}
		q[n] = qn
	}
	return q, nil
}

// PriceFor inverts the best response (eq. 17): the price that makes q the
// client's optimal interior choice, P_n(q) = 2 c_n q − v_n (α/R) a_n²G_n²/q².
func (p *Params) PriceFor(n int, q float64) (float64, error) {
	if n < 0 || n >= p.N() {
		return 0, fmt.Errorf("game: client index %d out of range", n)
	}
	if q <= 0 {
		return 0, fmt.Errorf("game: price undefined at q = %v", q)
	}
	return 2*p.C[n]*q - p.intrinsicGain(n)/(q*q), nil
}

// Payment returns client n's payment P_n q_n at (price, q); negative values
// mean the client pays the server (Theorem 3's bi-directional payment).
func Payment(price, q float64) float64 { return price * q }

// TotalPayment returns Σ P_n q_n.
func TotalPayment(prices, q []float64) (float64, error) {
	if len(prices) != len(q) {
		return 0, fmt.Errorf("game: %d prices for %d levels", len(prices), len(q))
	}
	var s float64
	for i := range prices {
		s += prices[i] * q[i]
	}
	return s, nil
}

// ClientUtility evaluates U_n at a full profile (prices, q). improvement is
// F(w*_n) − F* for client n (0 if unknown; it shifts utility by a
// scheme-independent constant). The bound term couples every client's
// utility to the whole q vector through the convergence bound.
func (p *Params) ClientUtility(n int, price float64, q []float64, improvement float64) (float64, error) {
	if n < 0 || n >= p.N() {
		return 0, fmt.Errorf("game: client index %d out of range", n)
	}
	bound, err := p.Bound(q)
	if err != nil {
		return 0, err
	}
	qn := q[n]
	return price*qn - p.C[n]*qn*qn + p.V[n]*(improvement-bound), nil
}

// TotalClientUtility sums ClientUtility over all clients with improvements
// (nil means zero for everyone).
func (p *Params) TotalClientUtility(prices, q, improvements []float64) (float64, error) {
	if improvements != nil && len(improvements) != p.N() {
		return 0, fmt.Errorf("game: %d improvements for %d clients", len(improvements), p.N())
	}
	var total float64
	for n := 0; n < p.N(); n++ {
		imp := 0.0
		if improvements != nil {
			imp = improvements[n]
		}
		u, err := p.ClientUtility(n, prices[n], q, imp)
		if err != nil {
			return 0, err
		}
		total += u
	}
	return total, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// cbrt is a sign-preserving cube root helper.
func cbrt(x float64) float64 { return math.Cbrt(x) }
