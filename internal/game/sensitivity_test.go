package game

import (
	"math"
	"testing"
)

func TestAnalyzeSensitivitySigns(t *testing.T) {
	p := testParams(t, 61, 15, 50, 4000, 200)
	s, err := p.AnalyzeSensitivity(SensitivityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance absorbs finite-difference noise near box boundaries.
	if err := p.CheckPredictedSigns(s, 1e-4); err != nil {
		t.Fatal(err)
	}
	// At least one client should respond to budget at a binding optimum.
	var anyPositive bool
	for _, d := range s.DQDBudget {
		if d > 1e-9 {
			anyPositive = true
			break
		}
	}
	if !anyPositive {
		t.Fatal("no client responds to budget despite a binding constraint")
	}
	if s.DBoundDBudget >= 0 {
		t.Fatalf("marginal value of budget %v should be negative", s.DBoundDBudget)
	}
}

func TestAnalyzeSensitivityMarginalBudgetValue(t *testing.T) {
	// The finite-difference marginal bound improvement must be consistent
	// with the actual improvement of a discrete budget increase.
	p := testParams(t, 62, 12, 50, 4000, 150)
	s, err := p.AnalyzeSensitivity(SensitivityOptions{RelStep: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	bumped := p.Clone()
	const db = 1.0
	bumped.B += db
	eq2, err := bumped.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	discrete := eq2.ServerObj - base.ServerObj
	predicted := s.DBoundDBudget * db
	// Same sign and same order of magnitude.
	if discrete > 0 {
		t.Fatalf("discrete budget increase worsened the bound: %v", discrete)
	}
	if predicted > 0 {
		t.Fatalf("predicted marginal value positive: %v", predicted)
	}
	if math.Abs(discrete) > 1e-12 && (math.Abs(predicted) < math.Abs(discrete)/10 ||
		math.Abs(predicted) > math.Abs(discrete)*10) {
		t.Fatalf("marginal value %v inconsistent with discrete change %v", predicted, discrete)
	}
}

func TestAnalyzeSensitivityValidation(t *testing.T) {
	p := testParams(t, 63, 4, 50, 4000, 200)
	bad := p.Clone()
	bad.A = nil
	if _, err := bad.AnalyzeSensitivity(SensitivityOptions{}); err == nil {
		t.Fatal("expected validation error")
	}
}
