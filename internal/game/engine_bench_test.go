package game

import (
	"fmt"
	"runtime"
	"testing"

	"unbiasedfl/internal/stats"
)

// This file is the solver-performance harness behind BENCH_PR3.json: run
//
//	go test -run '^$' -bench 'SolveKKT|WarmSweep|BayesianParallel|Sensitivity|MSearch' ./internal/game/
//
// and compare against the checked-in snapshot before landing solver
// changes. CI runs the same set at -benchtime 1x as a smoke gate.

// benchGame builds a synthetic fleet-scale game with the heterogeneity
// shape of the Table-I setups.
func benchGame(tb testing.TB, n int) *Params {
	tb.Helper()
	r := stats.NewRNG(uint64(n) ^ 0xBEEF)
	a := make([]float64, n)
	var sum float64
	for i := range a {
		a[i] = 0.5 + r.Float64()
		sum += a[i]
	}
	for i := range a {
		a[i] /= sum
	}
	g, err := stats.UniformRange(r, n, 1, 20)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := stats.UniformRange(r, n, 10, 100)
	if err != nil {
		tb.Fatal(err)
	}
	v, err := stats.UniformRange(r, n, 0, 8000)
	if err != nil {
		tb.Fatal(err)
	}
	return &Params{
		A: a, G: g, C: c, V: v,
		Alpha: 1, R: 1000, B: 10 * float64(n) / 40, QMax: 1, QMin: DefaultQMin,
	}
}

// BenchmarkSolveKKT measures a steady-state equilibrium solve across fleet
// sizes through a warm Solver arena (0 allocs/op).
func BenchmarkSolveKKT(b *testing.B) {
	for _, n := range []int{1000, 100000, 1000000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			p := benchGame(b, n)
			s := NewSolver()
			var eq Equilibrium
			if err := s.SolveInto(p, &eq); err != nil {
				b.Fatal(err)
			}
			s.warmLambda = lambdaBracket{} // keep the bisection cold; only arenas warm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.warmLambda = lambdaBracket{}
				if err := s.SolveInto(p, &eq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSweepGames builds 64 nearby games (the shape of EquilibriumSweep
// points and sensitivity probes).
func benchSweepGames(b *testing.B, n, points int) []*Params {
	b.Helper()
	base := benchGame(b, n)
	games := make([]*Params, points)
	for i := range games {
		g := base.Clone()
		g.B = base.B * (0.8 + 0.4*float64(i)/float64(points-1))
		games[i] = g
	}
	return games
}

// BenchmarkWarmSweep measures a fine-grained budget sweep: cold solves per
// point, one warm-started Solver, and the SolveMany worker pool.
func BenchmarkWarmSweep(b *testing.B) {
	games := benchSweepGames(b, 2000, 64)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, g := range games {
				if _, err := g.SolveKKT(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := NewSolver()
		var eq Equilibrium
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, g := range games {
				if err := s.SolveInto(g, &eq); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("many", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SolveMany(games, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBayesianParallel measures the Bayesian Monte-Carlo pricing
// design sequentially and across the worker pool.
func BenchmarkBayesianParallel(b *testing.B) {
	p := benchGame(b, 24)
	prior := Prior{MeanC: 55, MeanV: 4000}
	b.Run("seq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveBayesianParallel(prior, 200, stats.NewRNG(11), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveBayesianParallel(prior, 200, stats.NewRNG(11), runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSensitivity measures the comparative-statics probe batch
// (2 + 4N solves through SolveMany).
func BenchmarkSensitivity(b *testing.B) {
	p := benchGame(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.AnalyzeSensitivity(SensitivityOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSearch measures the paper's M-parameterized cross-check solver
// (scratch arenas + warm ψ/θ brackets across grid steps).
func BenchmarkMSearch(b *testing.B) {
	p := benchGame(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveMSearch(DefaultMSearchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures a memoized re-solve against the full engine
// solve it replaces.
func BenchmarkCacheHit(b *testing.B) {
	p := benchGame(b, 10000)
	c := NewCache(0)
	if _, err := c.Solve(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
