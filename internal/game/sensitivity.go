package game

import (
	"errors"
	"fmt"
)

// Sensitivity quantifies how the equilibrium reacts to marginal parameter
// changes, by central finite differences on the exact KKT solution. It
// turns the paper's qualitative comparative statics (Proposition 1,
// Theorems 2–3, Corollary 1) into numbers an operator can read: "one more
// unit of budget buys this much participation / this much bound reduction".
type Sensitivity struct {
	// DQDBudget[n] = ∂q*_n/∂B: Proposition 1 says every entry is >= 0.
	DQDBudget []float64
	// DBoundDBudget = ∂g(q*)/∂B: the marginal value of budget (<= 0).
	DBoundDBudget float64
	// DQDV[n] = ∂q*_n/∂v_n (own-value effect): Theorem 2 predicts <= 0 for
	// interior clients.
	DQDV []float64
	// DPDV[n] = ∂P*_n/∂v_n (own-value effect on price): Theorem 3 predicts
	// <= 0 for interior clients.
	DPDV []float64
	// DQDC[n] = ∂q*_n/∂c_n (own-cost effect): Theorem 2 predicts <= 0.
	DQDC []float64
	// DPDC[n] = ∂P*_n/∂c_n (own-cost effect): Corollary 1 predicts >= 0 for
	// interior clients receiving payment (v_n < v_t) and <= 0 for interior
	// clients paying the server (v_n > v_t) — eq. 18's bracket flips sign
	// at the threshold.
	DPDC []float64
}

// SensitivityOptions tunes the finite-difference probe.
type SensitivityOptions struct {
	// RelStep is the relative perturbation size (default 1e-4).
	RelStep float64
}

// AnalyzeSensitivity computes the equilibrium's comparative statics. The
// 2 + 4N finite-difference probes are batch-solved through the equilibrium
// engine (SolveMany): per-worker scratch, and warm-started brackets that
// collapse most of each ±h probe's multiplier search, with results
// bit-identical to sequential SolveKKT calls.
func (p *Params) AnalyzeSensitivity(opts SensitivityOptions) (*Sensitivity, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h := opts.RelStep
	if h <= 0 {
		h = 1e-4
	}
	n := p.N()
	out := &Sensitivity{
		DQDBudget: make([]float64, n),
		DQDV:      make([]float64, n),
		DPDV:      make([]float64, n),
		DQDC:      make([]float64, n),
		DPDC:      make([]float64, n),
	}

	// Budget pair.
	db := h * maxAbs(p.B, 1)
	bLo := p.Clone()
	bLo.B -= db
	bHi := p.Clone()
	bHi.B += db
	beqs, err := SolveMany([]*Params{bLo, bHi}, 0)
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) {
			err = be.Err
		}
		return nil, fmt.Errorf("budget probe: %w", err)
	}
	for i := 0; i < n; i++ {
		out.DQDBudget[i] = (beqs[1].Q[i] - beqs[0].Q[i]) / (2 * db)
	}
	out.DBoundDBudget = (beqs[1].ServerObj - beqs[0].ServerObj) / (2 * db)

	// Per-client (value-lo, value-hi, cost-lo, cost-hi) quadruples, batched
	// in client chunks so the probe clones stay O(chunk·N) rather than
	// O(N²) at fleet scale.
	const chunkClients = 128
	for start := 0; start < n; start += chunkClients {
		end := start + chunkClients
		if end > n {
			end = n
		}
		probes := make([]*Params, 0, 4*(end-start))
		dvs := make([]float64, 0, end-start)
		dcs := make([]float64, 0, end-start)
		for i := start; i < end; i++ {
			dv := h * maxAbs(p.V[i], 1)
			lo := p.Clone()
			lo.V[i] -= dv
			if lo.V[i] < 0 {
				lo.V[i] = 0
				dv = p.V[i] // forward-ish difference at the boundary
				if dv == 0 {
					dv = h
					lo = p.Clone()
				}
			}
			hi := p.Clone()
			hi.V[i] += dv

			dc := h * maxAbs(p.C[i], 1)
			loC := p.Clone()
			loC.C[i] -= dc
			if loC.C[i] <= 0 {
				return nil, errors.New("game: cost too small for sensitivity probe")
			}
			hiC := p.Clone()
			hiC.C[i] += dc

			probes = append(probes, lo, hi, loC, hiC)
			dvs = append(dvs, dv)
			dcs = append(dcs, dc)
		}
		eqs, err := SolveMany(probes, 0)
		if err != nil {
			var be *BatchError
			if errors.As(err, &be) {
				i := start + be.Index/4
				kind := "value"
				if be.Index%4 >= 2 {
					kind = "cost"
				}
				return nil, fmt.Errorf("%s probe %d: %w", kind, i, be.Err)
			}
			return nil, err
		}
		for j, i := 0, start; i < end; j, i = j+1, i+1 {
			vLo, vHi, cLo, cHi := eqs[4*j], eqs[4*j+1], eqs[4*j+2], eqs[4*j+3]
			out.DQDV[i] = (vHi.Q[i] - vLo.Q[i]) / (2 * dvs[j])
			out.DPDV[i] = (vHi.P[i] - vLo.P[i]) / (2 * dvs[j])
			out.DQDC[i] = (cHi.Q[i] - cLo.Q[i]) / (2 * dcs[j])
			out.DPDC[i] = (cHi.P[i] - cLo.P[i]) / (2 * dcs[j])
		}
	}
	return out, nil
}

// CheckPredictedSigns verifies the theory's sign predictions for the
// clients that are interior at the base equilibrium, within tolerance tol
// (finite differences near kinks can produce tiny violations).
func (p *Params) CheckPredictedSigns(s *Sensitivity, tol float64) error {
	eq, err := p.SolveKKT()
	if err != nil {
		return err
	}
	for n := 0; n < p.N(); n++ {
		if s.DQDBudget[n] < -tol {
			return fmt.Errorf("game: dq[%d]/dB = %v < 0 violates Proposition 1", n, s.DQDBudget[n])
		}
		if !p.Interior(eq, n, 1e-6) {
			continue
		}
		if s.DQDV[n] > tol {
			return fmt.Errorf("game: dq[%d]/dv = %v > 0 violates Theorem 2", n, s.DQDV[n])
		}
		if s.DQDC[n] > tol {
			return fmt.Errorf("game: dq[%d]/dc = %v > 0 violates Theorem 2", n, s.DQDC[n])
		}
		if s.DPDV[n] > tol {
			return fmt.Errorf("game: dP[%d]/dv = %v > 0 violates Theorem 3", n, s.DPDV[n])
		}
		// Corollary 1: the own-cost price effect carries the sign of the
		// payment direction.
		vt := eq.Vt()
		switch {
		case p.V[n] < vt && s.DPDC[n] < -tol:
			return fmt.Errorf("game: dP[%d]/dc = %v < 0 violates Corollary 1 (paid client)",
				n, s.DPDC[n])
		case p.V[n] > vt && s.DPDC[n] > tol:
			return fmt.Errorf("game: dP[%d]/dc = %v > 0 violates Corollary 1 (paying client)",
				n, s.DPDC[n])
		}
	}
	if s.DBoundDBudget > tol {
		return fmt.Errorf("game: dBound/dB = %v > 0; budget should never hurt", s.DBoundDBudget)
	}
	return nil
}

func maxAbs(x, floor float64) float64 {
	if x < 0 {
		x = -x
	}
	if x < floor {
		return floor
	}
	return x
}
