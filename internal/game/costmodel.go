package game

import "errors"

// This file implements the paper's second future-work item: "we will
// further refine our cost model by decoupling the local cost into
// computation and communication consumption". A client's quadratic cost
// coefficient c_n is derived from measurable device characteristics instead
// of being an opaque scalar.

// CostComponents prices a device's resources: seconds of computation and
// seconds of radio time, in the same monetary unit as prices P_n.
type CostComponents struct {
	// ComputeSecPrice is the monetary cost of one second of computation.
	ComputeSecPrice float64
	// CommSecPrice is the monetary cost of one second of communication.
	CommSecPrice float64
	// Opportunity is a device-specific additive cost per unit participation
	// (the "lost opportunity for joining other activities" of Section III).
	Opportunity float64
}

// DeviceProfile is the measurable per-round resource usage of one device.
type DeviceProfile struct {
	// ComputeSecPerRound is E local steps' worth of compute time.
	ComputeSecPerRound float64
	// CommSecPerRound is the model up+down transfer time.
	CommSecPerRound float64
}

// DecoupledCost maps a device profile to the quadratic cost coefficient
// c_n used by the CPL game: the per-round monetary burn rate of the device,
// so that cost = c_n q² preserves the paper's convexity in q.
func DecoupledCost(comp CostComponents, prof DeviceProfile) (float64, error) {
	switch {
	case comp.ComputeSecPrice < 0 || comp.CommSecPrice < 0 || comp.Opportunity < 0:
		return 0, errors.New("game: negative cost component")
	case prof.ComputeSecPerRound < 0 || prof.CommSecPerRound < 0:
		return 0, errors.New("game: negative device profile")
	}
	c := comp.ComputeSecPrice*prof.ComputeSecPerRound +
		comp.CommSecPrice*prof.CommSecPerRound +
		comp.Opportunity
	if c <= 0 {
		return 0, errors.New("game: decoupled cost must be positive; set a positive component")
	}
	return c, nil
}

// DecoupledCosts maps a whole fleet at once.
func DecoupledCosts(comp CostComponents, profiles []DeviceProfile) ([]float64, error) {
	if len(profiles) == 0 {
		return nil, errors.New("game: empty fleet")
	}
	out := make([]float64, len(profiles))
	for i, prof := range profiles {
		c, err := DecoupledCost(comp, prof)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// WithDecoupledCosts returns a copy of p whose cost vector is derived from
// device profiles, keeping everything else fixed. Experiments use it to
// re-price a fleet after measuring real compute/comm times (e.g. from
// internal/sim's timing model or the TCP prototype).
func (p *Params) WithDecoupledCosts(comp CostComponents, profiles []DeviceProfile) (*Params, error) {
	if len(profiles) != p.N() {
		return nil, errors.New("game: profile count mismatch")
	}
	costs, err := DecoupledCosts(comp, profiles)
	if err != nil {
		return nil, err
	}
	cp := p.Clone()
	cp.C = costs
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}
