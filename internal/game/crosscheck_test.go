package game

import (
	"testing"
	"testing/quick"

	"unbiasedfl/internal/stats"
)

// TestQuickMSearchNeverBeatsKKT cross-validates the two Stage-I solvers on
// random games: the paper's M-search method can never beat the exact KKT
// optimum and must come close to it.
func TestQuickMSearchNeverBeatsKKT(t *testing.T) {
	if testing.Short() {
		t.Skip("m-search cross-check is slow")
	}
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 3 + int(seed%5)
		a := make([]float64, n)
		var asum float64
		for i := range a {
			a[i] = 0.2 + r.Float64()
			asum += a[i]
		}
		for i := range a {
			a[i] /= asum
		}
		g, _ := stats.UniformRange(r, n, 2, 30)
		c, _ := stats.UniformRange(r, n, 5, 80)
		v, _ := stats.UniformRange(r, n, 0, 4000)
		p := &Params{
			A: a, G: g, C: c, V: v,
			Alpha: 0.5 + 2*r.Float64(), R: 1000,
			B:    20 + 300*r.Float64(),
			QMax: 1, QMin: DefaultQMin,
		}
		kkt, err := p.SolveKKT()
		if err != nil {
			return false
		}
		ms, err := p.SolveMSearch(DefaultMSearchOptions())
		if err != nil {
			return false
		}
		if ms.ServerObj < kkt.ServerObj*(1-1e-6) {
			return false // beat the exact optimum: impossible
		}
		return ms.ServerObj <= kkt.ServerObj*1.15+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBestResponseConcavityCertificate verifies on random instances
// that the returned best response is at least as good as nearby feasible
// alternatives (a direct optimality certificate for Stage II).
func TestQuickBestResponseConcavityCertificate(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		p := &Params{
			A:     []float64{1},
			G:     []float64{1 + 20*r.Float64()},
			C:     []float64{1 + 50*r.Float64()},
			V:     []float64{5000 * r.Float64()},
			Alpha: 0.1 + 2*r.Float64(),
			R:     1000,
			B:     100,
			QMax:  1,
			QMin:  DefaultQMin,
		}
		price := -20 + 140*r.Float64()
		q, err := p.BestResponse(0, price)
		if err != nil {
			return false
		}
		utility := func(qq float64) float64 {
			full := []float64{qq}
			if qq <= 0 {
				// Utility without the bound term's singular part: for q=0
				// the client forgoes price and cost; the bound term is a
				// constant shift common to all comparisons only when v=0,
				// so restrict the certificate to strictly positive probes.
				return 0
			}
			u, err := p.ClientUtility(0, price, full, 0)
			if err != nil {
				return 0
			}
			return u
		}
		if q <= 0 {
			return true // boundary case: nothing to certify
		}
		base := utility(q)
		for _, probe := range []float64{q * 0.9, q * 1.1, q * 0.5, q*1.5 + 1e-6} {
			if probe <= 0 || probe > p.QMax {
				continue
			}
			if utility(probe) > base+1e-7*(1+absf(base)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
