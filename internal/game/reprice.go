package game

import (
	"errors"
	"fmt"
)

// EpochPricing summarizes one re-priced membership epoch: the spend and the
// Theorem-1 server objective of the equilibrium over the epoch's active
// fleet.
type EpochPricing struct {
	Spent     float64
	ServerObj float64
}

// Repricer re-solves the Stage-I pricing decision for active subsets of a
// fleet — the economic half of an elastic federation. Each membership epoch
// plays the same CPL game restricted to the clients present: the data
// weights a_n are renormalized over the active set (they must sum to one —
// exactly the weights the unbiased aggregator now uses), the per-client
// G/c/v constants carry over, and the budget, horizon, and box constraints
// stay the server's.
//
// For the paper's proposed scheme the sub-games run through one persistent
// warm Solver: successive epochs differ by a few clients, so the saved
// multiplier bracket makes each re-solve nearly free — and, by the engine's
// bracket-independence guarantee, bit-identical to a cold solve (pinned by
// TestRepriceWarmEqualsCold). Other registered schemes re-price through
// their own Price method.
//
// A Repricer is not safe for concurrent use; drive it from the
// orchestration goroutine (the OnEpoch hook).
type Repricer struct {
	base   *Params
	scheme PricingScheme
	solver *Solver
	sub    *Params
	idx    []int
	eq     Equilibrium
}

// NewRepricer builds a repricer over the full-fleet game base for the given
// scheme. The base params are cloned; later mutation of the caller's copy
// does not affect re-pricing.
func NewRepricer(base *Params, scheme PricingScheme) (*Repricer, error) {
	if base == nil {
		return nil, errors.New("game: nil params")
	}
	if scheme == nil {
		return nil, errors.New("game: nil pricing scheme")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return &Repricer{
		base:   base.Clone(),
		scheme: scheme,
		solver: NewSolver(),
		sub:    &Params{},
	}, nil
}

// Reprice solves the sub-game over the active clients and scatters the
// clamped participation levels — and, when prices is non-nil, the posted
// prices — back into the full-fleet-indexed slices. Inactive entries are
// left untouched: a departed client's last q is simply never used again,
// and a not-yet-joined client keeps its pre-join level until its epoch.
func (r *Repricer) Reprice(active []bool, q, prices []float64) (EpochPricing, error) {
	n := r.base.N()
	if len(active) != n || len(q) != n {
		return EpochPricing{}, fmt.Errorf("game: reprice over %d/%d entries for a %d-client game",
			len(active), len(q), n)
	}
	r.idx = r.idx[:0]
	for i, a := range active {
		if a {
			r.idx = append(r.idx, i)
		}
	}
	if len(r.idx) == 0 {
		return EpochPricing{}, errors.New("game: reprice with no active clients")
	}

	// Build the sub-game: subset G/C/V, renormalize A to sum one over the
	// active set, keep every scalar of the server's problem.
	m := len(r.idx)
	sub := r.sub
	sub.A = growFloats(sub.A, m)
	sub.G = growFloats(sub.G, m)
	sub.C = growFloats(sub.C, m)
	sub.V = growFloats(sub.V, m)
	var asum float64
	for _, i := range r.idx {
		asum += r.base.A[i]
	}
	for k, i := range r.idx {
		sub.A[k] = r.base.A[i] / asum
		sub.G[k] = r.base.G[i]
		sub.C[k] = r.base.C[i]
		sub.V[k] = r.base.V[i]
	}
	sub.Alpha, sub.Beta = r.base.Alpha, r.base.Beta
	sub.R, sub.B = r.base.R, r.base.B
	sub.QMax, sub.QMin = r.base.QMax, r.base.QMin

	var subQ, subP []float64
	var out EpochPricing
	if r.scheme.Name() == SchemeNameProposed {
		// Warm path: the persistent solver reuses the previous epoch's
		// multiplier bracket; bit-identical to the scheme's cold Price.
		if err := r.solver.SolveInto(sub, &r.eq); err != nil {
			return EpochPricing{}, err
		}
		subQ, subP = r.eq.Q, r.eq.P
		out = EpochPricing{Spent: r.eq.Spent, ServerObj: r.eq.ServerObj}
	} else {
		res, err := r.scheme.Price(sub)
		if err != nil {
			return EpochPricing{}, err
		}
		subQ, subP = res.Q, res.P
		out = EpochPricing{Spent: res.Spent, ServerObj: res.ServerObj}
	}

	for k, i := range r.idx {
		qi := subQ[k]
		if qi < sub.QMin {
			qi = sub.QMin
		}
		if qi > sub.QMax {
			qi = sub.QMax
		}
		q[i] = qi
		if prices != nil {
			prices[i] = subP[k]
		}
	}
	return out, nil
}
