package game

import (
	"errors"
	"fmt"
	"math"
)

// Interior reports whether client n's equilibrium level is strictly inside
// (QMin, QMax); the paper's Theorems 2–3 characterize interior clients.
func (p *Params) Interior(e *Equilibrium, n int, tol float64) bool {
	q := e.Q[n]
	return q > p.QMin+tol && q < p.QMax-tol
}

// Theorem2Invariant returns c_n q_n³/(a_n²G_n²) + v_n for each client.
// Theorem 2 proves this quantity is identical (= α/(4R) · 1/λ*... up to the
// shared constant 1/λ* rescaled) across all interior clients at equilibrium.
func (p *Params) Theorem2Invariant(e *Equilibrium) []float64 {
	out := make([]float64, p.N())
	for n := range out {
		q := e.Q[n]
		out[n] = 4*p.R/p.Alpha*p.C[n]*q*q*q/p.DataQuality(n) + p.V[n]
	}
	return out
}

// PriceEq18 evaluates the closed-form interior price of Theorem 3 (eq. 18):
//
//	P*_n = (2α c_n² a_n²G_n² / R)^{1/3} · [ (1/λ − v_n)^{1/3}
//	        − 2 ( v_n^{3/2} / (1/λ − v_n) )^{2/3} ]
//
// valid for interior clients with 1/λ > v_n. (Substituting eq. 22 into
// eq. 17 confirms this form: the second term reduces to v_n·(1/λ−v_n)^{-2/3}
// times the shared front factor.)
func (p *Params) PriceEq18(n int, lambda float64) (float64, error) {
	if n < 0 || n >= p.N() {
		return 0, fmt.Errorf("game: client index %d out of range", n)
	}
	if lambda <= 0 {
		return 0, errors.New("game: eq. 18 needs a positive multiplier")
	}
	slack := 1/lambda - p.V[n]
	if slack <= 0 {
		return 0, errors.New("game: eq. 18 needs 1/lambda > v_n")
	}
	front := cbrt(2 * p.Alpha * p.C[n] * p.C[n] * p.DataQuality(n) / p.R)
	v := p.V[n]
	second := math.Pow(v, 1.5) / slack
	return front * (cbrt(slack) - 2*math.Pow(second, 2.0/3.0)), nil
}

// VerifyTheorem2 checks that the invariant agrees across interior clients
// within relative tolerance rel. It returns the interior client count.
func (p *Params) VerifyTheorem2(e *Equilibrium, rel float64) (int, error) {
	inv := p.Theorem2Invariant(e)
	first := -1.0
	count := 0
	for n := range inv {
		if !p.Interior(e, n, 1e-9) {
			continue
		}
		count++
		if first < 0 {
			first = inv[n]
			continue
		}
		if math.Abs(inv[n]-first) > rel*math.Max(math.Abs(first), 1e-12) {
			return count, fmt.Errorf(
				"game: theorem 2 invariant differs: client %d has %v, first interior has %v",
				n, inv[n], first)
		}
	}
	return count, nil
}

// VerifyTheorem3 checks the payment-direction threshold: interior clients
// with v_n below v_t = 1/(3λ) must have positive prices and those above
// must have negative prices.
func (p *Params) VerifyTheorem3(e *Equilibrium) error {
	if e.Lambda <= 0 {
		return nil // budget slack: no threshold to check
	}
	vt := e.Vt()
	for n := range e.P {
		if !p.Interior(e, n, 1e-9) {
			continue
		}
		switch {
		case p.V[n] < vt && e.P[n] <= 0:
			return fmt.Errorf("game: client %d has v=%v < vt=%v but P=%v <= 0",
				n, p.V[n], vt, e.P[n])
		case p.V[n] > vt && e.P[n] >= 0:
			return fmt.Errorf("game: client %d has v=%v > vt=%v but P=%v >= 0",
				n, p.V[n], vt, e.P[n])
		}
	}
	return nil
}

// VerifyLemma3 checks budget tightness for a binding equilibrium within
// relative tolerance rel.
func (p *Params) VerifyLemma3(e *Equilibrium, rel float64) error {
	if !e.BudgetTight {
		return nil
	}
	if math.Abs(e.Spent-p.B) > rel*math.Max(math.Abs(p.B), 1) {
		return fmt.Errorf("game: budget not tight: spent %v of %v", e.Spent, p.B)
	}
	return nil
}
