// Package game implements the paper's primary contribution: the Client
// Participation Level (CPL) Stackelberg game between an FL server and N
// rational clients.
//
// Stage I: the server chooses per-client prices P = {P_1..P_N} under budget
// B to minimize the Theorem-1 convergence bound of the resulting model.
// Stage II: each client n independently chooses its participation level
// q_n ∈ [0, q_max] to maximize its profit
//
//	U_n = P_n q_n − c_n q_n² + v_n (F(w*_n) − E[F(w^R(q))]),
//
// where the expected loss is approximated by the convergence bound. The
// package provides the client best response (eq. 13), the closed-form KKT /
// λ-bisection equilibrium solver (eqs. 17, 22), the paper's M-parameterized
// two-step solver for Problem P1” as a cross-check, the uniform and
// weighted (data-size proportional) pricing baselines of Section VI, and the
// equilibrium properties of Theorems 2–3 and Corollary 1.
//
// # The equilibrium engine
//
// Params.SolveKKT solves one game cold. Fleet-scale workloads — parameter
// sweeps, sensitivity probes, Monte-Carlo scenario batches, repeated
// Session queries — go through the engine layer instead:
//
//   - Solver owns scratch arenas and solves repeatedly with zero heap
//     allocations in steady state (Solver.SolveInto), warm-starting each
//     solve's multiplier bracket from the previous one.
//   - SolveMany batch-solves a slice of games across a fixed-order worker
//     pool with per-worker Solvers.
//   - SolveBayesianParallel evaluates the incomplete-information design's
//     Monte-Carlo expectations across a worker pool.
//   - Cache memoizes equilibria and priced outcomes by Params.Fingerprint,
//     so re-asking an unchanged question never re-runs the solver.
//
// # Determinism guarantees
//
// Every engine path is bit-identical to its cold sequential counterpart.
// The mechanism: each multiplier search terminates at the unique adjacent
// pair of floats straddling its monotone predicate's sign crossing — a
// property of the game alone, not of the search's starting bracket or
// probe sequence. Hence a warm-started Solver equals a cold SolveKKT no
// matter what it solved before, SolveMany equals a sequential loop for any
// worker count, and SolveBayesianParallel (common random numbers drawn up
// front, per-client slots, index-ordered reductions) equals its
// single-worker run for any GOMAXPROCS. Cache hits return values equal to
// fresh solves because the solver itself is deterministic.
package game

import (
	"errors"
	"fmt"
)

// Params collects every constant of the CPL game. Slices are indexed by
// client n = 0..N-1.
type Params struct {
	A     []float64 // data weights a_n = d_n / Σ d_m (sum to 1)
	G     []float64 // gradient-norm bounds G_n (Assumption 3)
	C     []float64 // local cost parameters c_n (cost = c_n q_n²)
	V     []float64 // intrinsic value preferences v_n ≥ 0
	Alpha float64   // α = 8LE/μ² from Theorem 1
	Beta  float64   // β constant from Theorem 1 (additive; 0 if unknown)
	R     float64   // number of training rounds
	B     float64   // server payment budget
	QMax  float64   // participation ceiling (paper: 1)
	QMin  float64   // positive floor keeping the estimator variance finite
}

// N returns the number of clients.
func (p *Params) N() int { return len(p.A) }

// Validate checks dimensions and ranges.
func (p *Params) Validate() error {
	n := p.N()
	if n == 0 {
		return errors.New("game: no clients")
	}
	if len(p.G) != n || len(p.C) != n || len(p.V) != n {
		return errors.New("game: parameter slice lengths differ")
	}
	var asum float64
	for i := 0; i < n; i++ {
		switch {
		case p.A[i] <= 0:
			return fmt.Errorf("game: a[%d] = %v must be positive", i, p.A[i])
		case p.G[i] <= 0:
			return fmt.Errorf("game: G[%d] = %v must be positive", i, p.G[i])
		case p.C[i] <= 0:
			return fmt.Errorf("game: c[%d] = %v must be positive", i, p.C[i])
		case p.V[i] < 0:
			return fmt.Errorf("game: v[%d] = %v must be nonnegative", i, p.V[i])
		}
		asum += p.A[i]
	}
	if asum < 0.999 || asum > 1.001 {
		return fmt.Errorf("game: data weights sum to %v, want 1", asum)
	}
	switch {
	case p.Alpha <= 0:
		return errors.New("game: alpha must be positive")
	case p.Beta < 0:
		return errors.New("game: beta must be nonnegative")
	case p.R <= 0:
		return errors.New("game: R must be positive")
	case p.QMax <= 0 || p.QMax > 1:
		return errors.New("game: qmax must be in (0, 1]")
	case p.QMin <= 0 || p.QMin >= p.QMax:
		return errors.New("game: qmin must be in (0, qmax)")
	}
	return nil
}

// DataQuality returns D_n = a_n² G_n², the combined data-quality term that
// drives both the convergence bound and the pricing formulas.
func (p *Params) DataQuality(n int) float64 {
	return p.A[n] * p.A[n] * p.G[n] * p.G[n]
}

// intrinsicGain returns K_n = v_n (α/R) a_n² G_n², the coefficient of the
// 1/q_n term in client n's utility derivative.
func (p *Params) intrinsicGain(n int) float64 {
	return p.V[n] * p.Alpha / p.R * p.DataQuality(n)
}

// ClampQ returns a copy of q with every level clamped into [QMin, QMax]:
// the unbiased estimator needs q > 0, so priced-out clients sit at the floor
// (almost never participating but remaining reachable). Every layer that
// turns a priced outcome into a participation vector goes through this one
// helper.
func (p *Params) ClampQ(q []float64) []float64 {
	out := make([]float64, len(q))
	for i, v := range q {
		if v < p.QMin {
			v = p.QMin
		}
		if v > p.QMax {
			v = p.QMax
		}
		out[i] = v
	}
	return out
}

// Clone returns a deep copy of p, useful for parameter sweeps.
func (p *Params) Clone() *Params {
	cp := *p
	cp.A = append([]float64(nil), p.A...)
	cp.G = append([]float64(nil), p.G...)
	cp.C = append([]float64(nil), p.C...)
	cp.V = append([]float64(nil), p.V...)
	return &cp
}

// DefaultQMin is the participation floor used throughout the repository.
// Theorem 1 requires q_n > 0 for every client (otherwise the bound — and the
// number of rounds to converge — diverges).
const DefaultQMin = 1e-3
