package game

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// PricingScheme is an open pricing mechanism for the Stage-I server
// decision. The paper's three schemes (proposed, weighted, uniform) are
// registered at init time; external packages can plug in new mechanisms via
// RegisterScheme without modifying this package — Params.OutcomeFor turns a
// posted price vector into a fully-evaluated Outcome (best responses,
// spend, Theorem-1 objective).
type PricingScheme interface {
	// Name identifies the scheme in registries, reports, and events. It
	// must be non-empty and unique among registered schemes.
	Name() string
	// Price solves the Stage-I decision on the given game and returns the
	// priced market state.
	Price(p *Params) (*Outcome, error)
}

// Canonical names of the paper's built-in schemes.
const (
	// SchemeNameProposed is the paper's customized equilibrium pricing.
	SchemeNameProposed = "proposed"
	// SchemeNameWeighted pays proportionally to data size.
	SchemeNameWeighted = "weighted"
	// SchemeNameUniform pays every client the same unit price.
	SchemeNameUniform = "uniform"
)

// schemeRegistry holds every registered pricing scheme in registration
// order (built-ins first), guarded for concurrent use.
var schemeRegistry = struct {
	mu     sync.RWMutex
	order  []string
	byName map[string]PricingScheme
}{byName: map[string]PricingScheme{}}

// RegisterScheme adds a pricing scheme to the global registry. Registered
// schemes participate in experiment.Compare and scheme sweeps alongside the
// paper's built-ins. It errors on a nil scheme, an empty name, or a name
// already taken.
func RegisterScheme(s PricingScheme) error {
	if s == nil {
		return errors.New("game: nil pricing scheme")
	}
	name := s.Name()
	if name == "" {
		return errors.New("game: pricing scheme with empty name")
	}
	schemeRegistry.mu.Lock()
	defer schemeRegistry.mu.Unlock()
	if _, dup := schemeRegistry.byName[name]; dup {
		return fmt.Errorf("game: pricing scheme %q already registered", name)
	}
	schemeRegistry.byName[name] = s
	schemeRegistry.order = append(schemeRegistry.order, name)
	return nil
}

// UnregisterScheme removes a scheme by name and reports whether it was
// present. The paper's built-ins can be removed too (e.g. to benchmark a
// reduced trio), though most callers never should.
func UnregisterScheme(name string) bool {
	schemeRegistry.mu.Lock()
	defer schemeRegistry.mu.Unlock()
	if _, ok := schemeRegistry.byName[name]; !ok {
		return false
	}
	delete(schemeRegistry.byName, name)
	for i, n := range schemeRegistry.order {
		if n == name {
			schemeRegistry.order = append(schemeRegistry.order[:i], schemeRegistry.order[i+1:]...)
			break
		}
	}
	return true
}

// SchemeByName looks up a registered pricing scheme.
func SchemeByName(name string) (PricingScheme, error) {
	schemeRegistry.mu.RLock()
	defer schemeRegistry.mu.RUnlock()
	s, ok := schemeRegistry.byName[name]
	if !ok {
		known := append([]string(nil), schemeRegistry.order...)
		sort.Strings(known)
		return nil, fmt.Errorf("game: unknown pricing scheme %q (registered: %v)", name, known)
	}
	return s, nil
}

// SchemeNames returns every registered scheme name in registration order,
// built-ins first. The order is the canonical iteration order of
// experiment.Compare, so it is deterministic for a fixed set of
// registrations.
func SchemeNames() []string {
	schemeRegistry.mu.RLock()
	defer schemeRegistry.mu.RUnlock()
	return append([]string(nil), schemeRegistry.order...)
}

// builtinScheme adapts the paper's enum-era solvers to the registry.
type builtinScheme struct {
	name  string
	enum  Scheme
	solve func(*Params) (*Outcome, error)
}

func (b builtinScheme) Name() string { return b.name }

func (b builtinScheme) Price(p *Params) (*Outcome, error) {
	out, err := b.solve(p)
	if err != nil {
		return nil, err
	}
	out.Scheme = b.enum
	out.Name = b.name
	return out, nil
}

func init() {
	// Registration order fixes the canonical comparison order used by the
	// paper's Fig. 4: proposed, weighted, uniform.
	for _, b := range []builtinScheme{
		{SchemeNameProposed, SchemeOptimal, (*Params).solveProposed},
		{SchemeNameWeighted, SchemeWeighted, (*Params).solveWeightedPricing},
		{SchemeNameUniform, SchemeUniform, (*Params).solveUniformPricing},
	} {
		if err := RegisterScheme(b); err != nil {
			panic(err)
		}
	}
}
