package game

import (
	"errors"
	"fmt"
	"math"
)

// Scheme identifies a pricing strategy for the Stage-I server decision.
type Scheme int

// Pricing schemes compared in Section VI.
const (
	// SchemeOptimal is the paper's mechanism: the Stackelberg-equilibrium
	// customized prices from SolveKKT.
	SchemeOptimal Scheme = iota + 1
	// SchemeUniform sets one common price for every client (benchmark P^u).
	SchemeUniform
	// SchemeWeighted sets prices proportional to client data size
	// (benchmark P^w).
	SchemeWeighted
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeOptimal:
		return "proposed"
	case SchemeUniform:
		return "uniform"
	case SchemeWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Outcome is a priced market state: the prices posted by the server and the
// clients' best-response participation levels, with spend diagnostics.
type Outcome struct {
	Scheme Scheme
	P      []float64
	Q      []float64
	Spent  float64
	// ServerObj is the Theorem-1 bound term attained by Q; lower is better.
	ServerObj float64
}

// SolveScheme prices the market under the given scheme and returns the
// resulting outcome. The benchmark schemes exhaust the same budget B the
// optimal mechanism uses (the paper compares all schemes "under the same
// budget").
func (p *Params) SolveScheme(s Scheme) (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch s {
	case SchemeOptimal:
		eq, err := p.SolveKKT()
		if err != nil {
			return nil, err
		}
		obj, err := p.ServerObjective(eq.Q)
		if err != nil {
			return nil, err
		}
		return &Outcome{Scheme: s, P: eq.P, Q: eq.Q, Spent: eq.Spent, ServerObj: obj}, nil
	case SchemeUniform:
		return p.solveScaled(s, func(scale float64) []float64 {
			prices := make([]float64, p.N())
			for i := range prices {
				prices[i] = scale
			}
			return prices
		})
	case SchemeWeighted:
		return p.solveScaled(s, func(scale float64) []float64 {
			prices := make([]float64, p.N())
			for i := range prices {
				prices[i] = scale * p.A[i] * float64(p.N())
			}
			return prices
		})
	default:
		return nil, fmt.Errorf("game: unknown scheme %v", s)
	}
}

// solveScaled finds the largest nonnegative price scale whose induced spend
// stays within budget, by bisection. Spend is nondecreasing in the scale:
// higher prices induce (weakly) higher best responses and higher payments.
func (p *Params) solveScaled(s Scheme, priceAt func(scale float64) []float64) (*Outcome, error) {
	spend := func(scale float64) (float64, []float64, []float64, error) {
		prices := priceAt(scale)
		q, err := p.BestResponseAll(prices)
		if err != nil {
			return 0, nil, nil, err
		}
		total, err := TotalPayment(prices, q)
		if err != nil {
			return 0, nil, nil, err
		}
		return total, prices, q, nil
	}

	// At scale 0 the spend is 0 <= B. Expand until over budget or saturated.
	hi := 1.0
	for i := 0; ; i++ {
		total, _, q, err := spend(hi)
		if err != nil {
			return nil, err
		}
		if total > p.B {
			break
		}
		saturated := true
		for n, qn := range q {
			if qn < p.QMax-1e-12 && p.A[n] > 0 {
				saturated = false
				break
			}
		}
		if saturated {
			// Everyone participates fully; no reason to raise prices more.
			return p.outcomeAt(s, priceAt(hi), q)
		}
		hi *= 4
		if i > 200 {
			return nil, errors.New("game: failed to bracket pricing scale")
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		total, _, _, err := spend(mid)
		if err != nil {
			return nil, err
		}
		if total > p.B {
			hi = mid
		} else {
			lo = mid
		}
	}
	total, prices, q, err := spend(lo)
	if err != nil {
		return nil, err
	}
	if total > p.B+1e-6*math.Max(1, p.B) {
		return nil, errors.New("game: scaled pricing exceeded budget")
	}
	return p.outcomeAt(s, prices, q)
}

func (p *Params) outcomeAt(s Scheme, prices, q []float64) (*Outcome, error) {
	total, err := TotalPayment(prices, q)
	if err != nil {
		return nil, err
	}
	// A client priced out entirely (q_n = 0) makes the Theorem-1 bound
	// diverge: the model can never become unbiased without its data.
	obj := math.Inf(1)
	positive := true
	for _, qn := range q {
		if qn <= 0 {
			positive = false
			break
		}
	}
	if positive {
		obj, err = p.ServerObjective(q)
		if err != nil {
			return nil, err
		}
	}
	return &Outcome{Scheme: s, P: prices, Q: q, Spent: total, ServerObj: obj}, nil
}
