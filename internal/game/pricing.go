package game

import (
	"errors"
	"fmt"
	"math"
)

// Scheme identifies a built-in pricing strategy for the Stage-I server
// decision.
//
// Deprecated: the closed enum only covers the paper's three benchmarks. New
// code should address schemes by registry name (PricingScheme, SchemeByName,
// RegisterScheme); the constants below remain as aliases for the built-ins.
type Scheme int

// Pricing schemes compared in Section VI.
const (
	// SchemeOptimal is the paper's mechanism: the Stackelberg-equilibrium
	// customized prices from SolveKKT.
	//
	// Deprecated: use SchemeNameProposed with the registry.
	SchemeOptimal Scheme = iota + 1
	// SchemeUniform sets one common price for every client (benchmark P^u).
	//
	// Deprecated: use SchemeNameUniform with the registry.
	SchemeUniform
	// SchemeWeighted sets prices proportional to client data size
	// (benchmark P^w).
	//
	// Deprecated: use SchemeNameWeighted with the registry.
	SchemeWeighted
)

// String implements fmt.Stringer; for the built-ins it returns the scheme's
// registry name.
func (s Scheme) String() string {
	switch s {
	case SchemeOptimal:
		return SchemeNameProposed
	case SchemeUniform:
		return SchemeNameUniform
	case SchemeWeighted:
		return SchemeNameWeighted
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Outcome is a priced market state: the prices posted by the server and the
// clients' best-response participation levels, with spend diagnostics.
type Outcome struct {
	// Name is the registry name of the scheme that produced this outcome.
	Name string
	// Scheme is the built-in enum identity, zero for third-party schemes.
	//
	// Deprecated: use Name.
	Scheme Scheme
	P      []float64
	Q      []float64
	Spent  float64
	// ServerObj is the Theorem-1 bound term attained by Q; lower is better.
	ServerObj float64
}

// SolveScheme prices the market under the given built-in scheme.
//
// Deprecated: resolve the scheme through the registry instead:
// SchemeByName(name).Price(p). This shim maps the enum to its registry name
// and delegates.
func (p *Params) SolveScheme(s Scheme) (*Outcome, error) {
	ps, err := SchemeByName(s.String())
	if err != nil {
		return nil, fmt.Errorf("game: unknown scheme %v", s)
	}
	return ps.Price(p)
}

// solveProposed prices the market with the paper's mechanism: the
// Stackelberg-equilibrium customized prices from SolveKKT.
func (p *Params) solveProposed() (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	eq, err := p.SolveKKT()
	if err != nil {
		return nil, err
	}
	obj, err := p.ServerObjective(eq.Q)
	if err != nil {
		return nil, err
	}
	return &Outcome{P: eq.P, Q: eq.Q, Spent: eq.Spent, ServerObj: obj}, nil
}

// solveUniformPricing pays every client the same unit price, scaled to
// exhaust the budget (benchmark P^u).
func (p *Params) solveUniformPricing() (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.solveScaled(func(scale float64) []float64 {
		prices := make([]float64, p.N())
		for i := range prices {
			prices[i] = scale
		}
		return prices
	})
}

// solveWeightedPricing pays proportionally to data size, scaled to exhaust
// the budget (benchmark P^w).
func (p *Params) solveWeightedPricing() (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.solveScaled(func(scale float64) []float64 {
		prices := make([]float64, p.N())
		for i := range prices {
			prices[i] = scale * p.A[i] * float64(p.N())
		}
		return prices
	})
}

// solveScaled finds the largest nonnegative price scale whose induced spend
// stays within budget, by bisection. Spend is nondecreasing in the scale:
// higher prices induce (weakly) higher best responses and higher payments.
func (p *Params) solveScaled(priceAt func(scale float64) []float64) (*Outcome, error) {
	spend := func(scale float64) (float64, []float64, []float64, error) {
		prices := priceAt(scale)
		q, err := p.BestResponseAll(prices)
		if err != nil {
			return 0, nil, nil, err
		}
		total, err := TotalPayment(prices, q)
		if err != nil {
			return 0, nil, nil, err
		}
		return total, prices, q, nil
	}

	// At scale 0 the spend is 0 <= B. Expand until over budget or saturated.
	hi := 1.0
	for i := 0; ; i++ {
		total, _, q, err := spend(hi)
		if err != nil {
			return nil, err
		}
		if total > p.B {
			break
		}
		saturated := true
		for n, qn := range q {
			if qn < p.QMax-1e-12 && p.A[n] > 0 {
				saturated = false
				break
			}
		}
		if saturated {
			// Everyone participates fully; no reason to raise prices more.
			return p.outcomeAt(priceAt(hi), q)
		}
		hi *= 4
		if i > 200 {
			return nil, errors.New("game: failed to bracket pricing scale")
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		total, _, _, err := spend(mid)
		if err != nil {
			return nil, err
		}
		if total > p.B {
			hi = mid
		} else {
			lo = mid
		}
	}
	total, prices, q, err := spend(lo)
	if err != nil {
		return nil, err
	}
	if total > p.B+1e-6*math.Max(1, p.B) {
		return nil, errors.New("game: scaled pricing exceeded budget")
	}
	return p.outcomeAt(prices, q)
}

// OutcomeFor evaluates a posted price vector into a full Outcome — the
// clients' best responses, the induced spend, and the Theorem-1 objective —
// labelled with the given scheme name. It is the building block for
// third-party PricingScheme implementations: compute prices however you
// like, then let the game evaluate them.
func (p *Params) OutcomeFor(name string, prices []float64) (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(prices) != p.N() {
		return nil, fmt.Errorf("game: %d prices for %d clients", len(prices), p.N())
	}
	q, err := p.BestResponseAll(prices)
	if err != nil {
		return nil, err
	}
	out, err := p.outcomeAt(prices, q)
	if err != nil {
		return nil, err
	}
	out.Name = name
	return out, nil
}

func (p *Params) outcomeAt(prices, q []float64) (*Outcome, error) {
	total, err := TotalPayment(prices, q)
	if err != nil {
		return nil, err
	}
	// A client priced out entirely (q_n = 0) makes the Theorem-1 bound
	// diverge: the model can never become unbiased without its data.
	obj := math.Inf(1)
	positive := true
	for _, qn := range q {
		if qn <= 0 {
			positive = false
			break
		}
	}
	if positive {
		obj, err = p.ServerObjective(q)
		if err != nil {
			return nil, err
		}
	}
	return &Outcome{P: prices, Q: q, Spent: total, ServerObj: obj}, nil
}
