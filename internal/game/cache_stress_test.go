package game

import (
	"sync"
	"testing"
)

// TestCacheConcurrentStress hammers one Cache from many goroutines with a
// mix of repeated games (hit traffic), per-goroutine unique games (miss +
// eviction traffic), and Price calls on two schemes, and verifies under
// -race that the sharded lock discipline holds and every returned value
// still equals a fresh solve. Capacity is kept small so the FIFO eviction
// path runs constantly while lookups race it.
func TestCacheConcurrentStress(t *testing.T) {
	const (
		workers = 8
		iters   = 60
		hotSize = 4
		// The 4 hot games occupy 12 keys (solve + two schemes each); 32 slots
		// let most hot keys survive while the unique-miss stream keeps the
		// FIFO eviction path constantly busy.
		cap = 32
	)
	c := NewCache(cap)

	hot := make([]*Params, hotSize)
	want := make([]*Equilibrium, hotSize)
	for i := range hot {
		hot[i] = engineGame(t, uint64(900+i), 6)
		eq, err := hot[i].SolveKKT()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = eq
	}
	proposed, err := SchemeByName(SchemeNameProposed)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := SchemeByName(SchemeNameUniform)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Hit traffic: a hot game solved through the cache must match
				// its cold solve bit-for-bit whatever evictions raced it.
				g := hot[(w+i)%hotSize]
				eq, err := c.Solve(g)
				if err != nil {
					errs <- err
					return
				}
				ref := want[(w+i)%hotSize]
				for n := range eq.P {
					if eq.P[n] != ref.P[n] || eq.Q[n] != ref.Q[n] {
						t.Errorf("worker %d iter %d: cached equilibrium drifted from cold solve", w, i)
						return
					}
				}
				// Scheme pricing on the shared games exercises per-scheme keys
				// on the same fingerprints.
				if _, err := c.Price(proposed, g); err != nil {
					errs <- err
					return
				}
				if _, err := c.Price(uniform, g); err != nil {
					errs <- err
					return
				}
				// Miss traffic: a unique game per (worker, iteration) forces
				// inserts and FIFO evictions concurrent with the hits above.
				fresh := engineGame(t, uint64(10_000+w*1000+i), 5)
				if _, err := c.Solve(fresh); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := c.Snapshot()
	if s.Entries > cap {
		t.Fatalf("cache holds %d entries, capacity %d", s.Entries, cap)
	}
	if got := c.Len(); got != s.Entries {
		t.Fatalf("Len() = %d, Snapshot().Entries = %d", got, s.Entries)
	}
	wantOps := uint64(workers * iters * 4)
	if s.Hits+s.Misses != wantOps {
		t.Fatalf("hits+misses = %d, want %d lookups", s.Hits+s.Misses, wantOps)
	}
	if s.Evictions == 0 {
		t.Fatal("expected evictions under a capacity squeeze")
	}
	if s.Hits == 0 {
		t.Fatal("expected hits on the hot games")
	}
	if s.HitRate() <= 0 || s.HitRate() >= 1 {
		t.Fatalf("hit rate %v outside (0,1) for mixed traffic", s.HitRate())
	}
}

// TestCacheSnapshotCounters pins the Snapshot shape on a deterministic
// single-goroutine sequence: miss, hit, eviction.
func TestCacheSnapshotCounters(t *testing.T) {
	c := NewCache(2)
	a := engineGame(t, 801, 5)
	b := engineGame(t, 802, 5)
	d := engineGame(t, 803, 5)
	if _, err := c.Solve(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(d); err != nil { // evicts a (FIFO)
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 3 || s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("snapshot = %+v, want 1 hit / 3 misses / 1 eviction / 2 entries", s)
	}
	if _, err := c.Solve(a); err != nil { // a was evicted: a miss again
		t.Fatal(err)
	}
	if s = c.Snapshot(); s.Misses != 4 {
		t.Fatalf("re-solving the evicted game should miss; snapshot = %+v", s)
	}
}
