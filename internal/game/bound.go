package game

import (
	"errors"
	"fmt"
	"math"
)

// VarianceTerm returns Σ_n (1−q_n) a_n² G_n² / q_n, the participation-induced
// variance sum from Lemma 2 and Theorem 1.
func (p *Params) VarianceTerm(q []float64) (float64, error) {
	if len(q) != p.N() {
		return 0, errors.New("game: q length mismatch")
	}
	var s float64
	for n, qn := range q {
		if qn <= 0 {
			return 0, fmt.Errorf("game: q[%d] must be positive for a finite bound", n)
		}
		if qn > 1 {
			return 0, fmt.Errorf("game: q[%d] = %v exceeds 1", n, qn)
		}
		s += (1 - qn) * p.DataQuality(n) / qn
	}
	return s, nil
}

// Bound evaluates the Theorem-1 optimality-gap bound
// (1/R)(α Σ (1−q_n) a_n²G_n²/q_n + β) for a participation vector q.
func (p *Params) Bound(q []float64) (float64, error) {
	v, err := p.VarianceTerm(q)
	if err != nil {
		return 0, err
	}
	return (p.Alpha*v + p.Beta) / p.R, nil
}

// ServerObjective is the part of the bound the server can influence:
// g(q) = (α/R) Σ (1−q_n) a_n²G_n²/q_n (Problem P1”, constants dropped).
func (p *Params) ServerObjective(q []float64) (float64, error) {
	v, err := p.VarianceTerm(q)
	if err != nil {
		return 0, err
	}
	return p.Alpha * v / p.R, nil
}

// BetaInputs carries the constants needed to evaluate the β term of
// Theorem 1 exactly. All quantities are measurable from the substrate:
// per-client SGD variance bounds σ_n², gradient bounds G_n, the smoothness
// and strong-convexity constants, the local step count E, the heterogeneity
// gap Γ = F* − Σ a_n F*_n, and the initial distance ‖w⁰ − w*‖².
type BetaInputs struct {
	SigmaSq   []float64 // σ_n²
	A         []float64 // a_n
	G         []float64 // G_n
	L, Mu     float64
	E         float64
	Gamma     float64
	InitDist2 float64 // ‖w⁰ − w*‖²
}

// ComputeBeta evaluates β = (2L/(μ²E))·A0 + (12L²/(μ²E))·Γ + (4L²/(μE))‖w⁰−w*‖²
// with A0 = Σ a_n²σ_n² + 8 Σ a_n G_n² (E−1)² as defined under Theorem 1.
func ComputeBeta(in BetaInputs) (float64, error) {
	n := len(in.A)
	if n == 0 || len(in.SigmaSq) != n || len(in.G) != n {
		return 0, errors.New("game: beta input slice lengths differ or empty")
	}
	if in.L <= 0 || in.Mu <= 0 || in.E <= 0 {
		return 0, errors.New("game: beta inputs need positive L, mu, E")
	}
	if in.Gamma < 0 || in.InitDist2 < 0 {
		return 0, errors.New("game: beta inputs need nonnegative gamma and distance")
	}
	var a0 float64
	for i := 0; i < n; i++ {
		if in.SigmaSq[i] < 0 {
			return 0, fmt.Errorf("game: sigma²[%d] negative", i)
		}
		a0 += in.A[i]*in.A[i]*in.SigmaSq[i] + 8*in.A[i]*in.G[i]*in.G[i]*(in.E-1)*(in.E-1)
	}
	mu2 := in.Mu * in.Mu
	return 2*in.L/(mu2*in.E)*a0 +
		12*in.L*in.L/(mu2*in.E)*in.Gamma +
		4*in.L*in.L/(in.Mu*in.E)*in.InitDist2, nil
}

// RoundsToGap inverts the bound: the number of rounds needed to push the
// optimality gap below eps at participation q. Returns +Inf when eps <= 0.
func (p *Params) RoundsToGap(q []float64, eps float64) (float64, error) {
	if eps <= 0 {
		return math.Inf(1), nil
	}
	v, err := p.VarianceTerm(q)
	if err != nil {
		return 0, err
	}
	return (p.Alpha*v + p.Beta) / eps, nil
}
