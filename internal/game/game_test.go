package game

import (
	"math"
	"testing"
	"testing/quick"

	"unbiasedfl/internal/stats"
)

// testParams builds a heterogeneous N-client game mirroring the paper's
// Setup 1 scale (B=200, mean c=50, mean v=4000).
func testParams(t *testing.T, seed uint64, n int, meanC, meanV, budget float64) *Params {
	t.Helper()
	r := stats.NewRNG(seed)
	sizes, err := stats.PowerLawSizes(r, n, 20000, 20, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, n)
	for i, s := range sizes {
		a[i] = float64(s) / 20000
	}
	g, err := stats.UniformRange(r, n, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	c, err := stats.Exponential(r, n, meanC)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		c[i] += 1 // keep costs strictly positive
	}
	v, err := stats.Exponential(r, n, meanV)
	if err != nil {
		t.Fatal(err)
	}
	// Alpha is calibrated so the intrinsic-value term (α/R)·v·a²G² and the
	// cost term 2c q are comparable, as in the paper's estimated setups.
	return &Params{
		A: a, G: g, C: c, V: v,
		Alpha: 1,
		R:     1000,
		B:     budget,
		QMax:  1,
		QMin:  DefaultQMin,
	}
}

func TestParamsValidate(t *testing.T) {
	p := testParams(t, 1, 5, 50, 4000, 200)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Params){
		"no clients":   func(p *Params) { p.A = nil },
		"len mismatch": func(p *Params) { p.G = p.G[:1] },
		"neg a":        func(p *Params) { p.A[0] = -1 },
		"zero g":       func(p *Params) { p.G[0] = 0 },
		"zero c":       func(p *Params) { p.C[0] = 0 },
		"neg v":        func(p *Params) { p.V[0] = -1 },
		"bad alpha":    func(p *Params) { p.Alpha = 0 },
		"neg beta":     func(p *Params) { p.Beta = -1 },
		"bad R":        func(p *Params) { p.R = 0 },
		"bad qmax":     func(p *Params) { p.QMax = 1.5 },
		"bad qmin":     func(p *Params) { p.QMin = 0 },
		"qmin>=qmax":   func(p *Params) { p.QMin = p.QMax },
		"a not normed": func(p *Params) { p.A[0] += 0.5 },
	}
	for name, mutate := range cases {
		bad := p.Clone()
		mutate(bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", name)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := testParams(t, 2, 4, 50, 4000, 200)
	c := p.Clone()
	c.V[0] = 12345
	c.B = 9
	if p.V[0] == 12345 || p.B == 9 {
		t.Fatal("clone shares state")
	}
}

func TestBoundMonotoneDecreasingInQ(t *testing.T) {
	p := testParams(t, 3, 6, 50, 4000, 200)
	q1 := make([]float64, p.N())
	q2 := make([]float64, p.N())
	for i := range q1 {
		q1[i] = 0.3
		q2[i] = 0.6
	}
	b1, err := p.Bound(q1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Bound(q2)
	if err != nil {
		t.Fatal(err)
	}
	if b2 >= b1 {
		t.Fatalf("bound not decreasing in q: %v -> %v", b1, b2)
	}
}

func TestBoundZeroAtFullParticipation(t *testing.T) {
	p := testParams(t, 4, 5, 50, 4000, 200)
	q := make([]float64, p.N())
	for i := range q {
		q[i] = 1
	}
	v, err := p.VarianceTerm(q)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("variance term at q=1 is %v, want 0", v)
	}
	b, err := p.Bound(q)
	if err != nil {
		t.Fatal(err)
	}
	if b != p.Beta/p.R {
		t.Fatalf("bound at q=1 is %v, want beta/R", b)
	}
}

func TestBoundErrors(t *testing.T) {
	p := testParams(t, 5, 3, 50, 4000, 200)
	if _, err := p.Bound([]float64{0.5}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := p.Bound([]float64{0, 0.5, 0.5}); err == nil {
		t.Fatal("expected q=0 error")
	}
	if _, err := p.Bound([]float64{1.5, 0.5, 0.5}); err == nil {
		t.Fatal("expected q>1 error")
	}
}

func TestComputeBeta(t *testing.T) {
	in := BetaInputs{
		SigmaSq:   []float64{1, 2},
		A:         []float64{0.5, 0.5},
		G:         []float64{3, 4},
		L:         10,
		Mu:        0.5,
		E:         5,
		Gamma:     0.2,
		InitDist2: 1.5,
	}
	got, err := ComputeBeta(in)
	if err != nil {
		t.Fatal(err)
	}
	a0 := 0.25*1 + 0.25*2 + 8*(0.5*9+0.5*16)*16
	want := 2*10/(0.25*5)*a0 + 12*100/(0.25*5)*0.2 + 4*100/(0.5*5)*1.5
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("beta %v want %v", got, want)
	}
	bad := in
	bad.SigmaSq = []float64{1}
	if _, err := ComputeBeta(bad); err == nil {
		t.Fatal("expected length error")
	}
	bad = in
	bad.L = 0
	if _, err := ComputeBeta(bad); err == nil {
		t.Fatal("expected L error")
	}
	bad = in
	bad.SigmaSq = []float64{1, -1}
	if _, err := ComputeBeta(bad); err == nil {
		t.Fatal("expected negative sigma error")
	}
}

func TestRoundsToGap(t *testing.T) {
	p := testParams(t, 6, 4, 50, 4000, 200)
	q := []float64{0.5, 0.5, 0.5, 0.5}
	inf, err := p.RoundsToGap(q, 0)
	if err != nil || !math.IsInf(inf, 1) {
		t.Fatalf("RoundsToGap(0) = %v, %v", inf, err)
	}
	r1, err := p.RoundsToGap(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.RoundsToGap(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 <= r2 {
		t.Fatal("tighter gap should need more rounds")
	}
}

func TestBestResponseFirstOrderCondition(t *testing.T) {
	p := testParams(t, 7, 6, 50, 4000, 200)
	for n := 0; n < p.N(); n++ {
		for _, price := range []float64{-20, 0, 10, 100} {
			q, err := p.BestResponse(n, price)
			if err != nil {
				t.Fatal(err)
			}
			if q < 0 || q > p.QMax {
				t.Fatalf("client %d: q=%v outside box", n, q)
			}
			if q > 0 && q < p.QMax {
				// Interior: FOC must hold.
				if f := p.marginalUtility(n, price, q); math.Abs(f) > 1e-6*(1+math.Abs(price)) {
					t.Fatalf("client %d price %v: FOC residual %v at q=%v", n, price, f, q)
				}
			}
		}
	}
}

func TestBestResponseMonotoneInPrice(t *testing.T) {
	p := testParams(t, 8, 5, 50, 4000, 200)
	for n := 0; n < p.N(); n++ {
		prev := -1.0
		for _, price := range []float64{-50, -10, 0, 5, 20, 80, 320} {
			q, err := p.BestResponse(n, price)
			if err != nil {
				t.Fatal(err)
			}
			if q < prev-1e-12 {
				t.Fatalf("client %d: best response not monotone in price", n)
			}
			prev = q
		}
	}
}

func TestBestResponseNoIntrinsicValue(t *testing.T) {
	p := testParams(t, 9, 3, 50, 0, 200)
	for i := range p.V {
		p.V[i] = 0
	}
	q, err := p.BestResponse(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := clamp(10/(2*p.C[0]), 0, 1)
	if math.Abs(q-want) > 1e-12 {
		t.Fatalf("q=%v want %v", q, want)
	}
	qz, err := p.BestResponse(0, -5)
	if err != nil {
		t.Fatal(err)
	}
	if qz != 0 {
		t.Fatalf("negative price with no intrinsic value should give q=0, got %v", qz)
	}
}

func TestPriceForInvertsBestResponse(t *testing.T) {
	p := testParams(t, 10, 6, 50, 4000, 200)
	for n := 0; n < p.N(); n++ {
		for _, q := range []float64{0.05, 0.3, 0.7, 0.99} {
			price, err := p.PriceFor(n, q)
			if err != nil {
				t.Fatal(err)
			}
			back, err := p.BestResponse(n, price)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-q) > 1e-8 {
				t.Fatalf("client %d: PriceFor(%v) -> BestResponse %v", n, q, back)
			}
		}
	}
	if _, err := p.PriceFor(0, 0); err == nil {
		t.Fatal("expected error at q=0")
	}
	if _, err := p.PriceFor(-1, 0.5); err == nil {
		t.Fatal("expected index error")
	}
}

func TestSolveKKTBudgetTight(t *testing.T) {
	p := testParams(t, 11, 20, 50, 4000, 200)
	eq, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if !eq.BudgetTight {
		t.Fatal("expected binding budget at Setup-1 scale")
	}
	if err := p.VerifyLemma3(eq, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckConsistency(eq, 1e-6); err != nil {
		t.Fatal(err)
	}
	for n, q := range eq.Q {
		if q < p.QMin-1e-15 || q > p.QMax+1e-15 {
			t.Fatalf("q[%d]=%v outside box", n, q)
		}
	}
}

func TestSolveKKTBudgetSlack(t *testing.T) {
	p := testParams(t, 12, 5, 1, 4000, 1e12)
	eq, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if eq.BudgetTight {
		t.Fatal("expected slack budget")
	}
	for n, q := range eq.Q {
		if math.Abs(q-p.QMax) > 1e-12 {
			t.Fatalf("client %d: q=%v, want qmax under unlimited budget", n, q)
		}
	}
	if !math.IsInf(eq.Vt(), 1) {
		t.Fatal("slack budget should have infinite threshold")
	}
}

func TestSolveKKTTheorem2(t *testing.T) {
	p := testParams(t, 13, 25, 50, 4000, 200)
	eq, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	interior, err := p.VerifyTheorem2(eq, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if interior < 2 {
		t.Skipf("only %d interior clients; invariant vacuous", interior)
	}
	// The shared invariant must equal 1/lambda.
	inv := p.Theorem2Invariant(eq)
	for n := range inv {
		if !p.Interior(eq, n, 1e-9) {
			continue
		}
		if math.Abs(inv[n]-1/eq.Lambda) > 1e-6/eq.Lambda {
			t.Fatalf("invariant %v != 1/lambda %v", inv[n], 1/eq.Lambda)
		}
	}
}

func TestSolveKKTTheorem3AndEq18(t *testing.T) {
	p := testParams(t, 14, 25, 50, 2000, 40) // spread-out intrinsic values, tight budget
	eq, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyTheorem3(eq); err != nil {
		t.Fatal(err)
	}
	// Interior prices must match the closed form of eq. 18.
	for n := range eq.P {
		if !p.Interior(eq, n, 1e-9) {
			continue
		}
		closed, err := p.PriceEq18(n, eq.Lambda)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed-eq.P[n]) > 1e-6*math.Max(1, math.Abs(eq.P[n])) {
			t.Fatalf("client %d: eq18 price %v vs solver price %v", n, closed, eq.P[n])
		}
	}
}

func TestNegativePaymentsIncreaseWithV(t *testing.T) {
	// Table V's behaviour: more intrinsic value, more clients paying the
	// server.
	base := testParams(t, 15, 30, 50, 0, 200)
	counts := make([]int, 0, 3)
	for _, meanV := range []float64{0, 4000, 80000} {
		p := base.Clone()
		r := stats.NewRNG(77)
		v, err := stats.Exponential(r, p.N(), meanV)
		if err != nil {
			t.Fatal(err)
		}
		p.V = v
		eq, err := p.SolveKKT()
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, eq.NegativePayments())
	}
	if counts[0] != 0 {
		t.Fatalf("v=0 produced %d negative payments", counts[0])
	}
	if counts[2] < counts[1] {
		t.Fatalf("negative payments not increasing with v: %v", counts)
	}
	if counts[2] == 0 {
		t.Fatal("very high v should create at least one negative payment")
	}
}

func TestProposition1MonotoneInBudget(t *testing.T) {
	p := testParams(t, 16, 15, 50, 4000, 100)
	eqLow, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	ph := p.Clone()
	ph.B = 400
	eqHigh, err := ph.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	for n := range eqLow.Q {
		if eqHigh.Q[n] < eqLow.Q[n]-1e-9 {
			t.Fatalf("client %d: q decreased with budget (%v -> %v)",
				n, eqLow.Q[n], eqHigh.Q[n])
		}
	}
	objLow, _ := p.ServerObjective(eqLow.Q)
	objHigh, _ := ph.ServerObjective(eqHigh.Q)
	if objHigh > objLow+1e-12 {
		t.Fatalf("server objective worsened with budget: %v -> %v", objLow, objHigh)
	}
}

func TestTheorem2ComparativeStatics(t *testing.T) {
	// Clients identical except one parameter; check the predicted ordering.
	base := &Params{
		A:     []float64{0.5, 0.5},
		G:     []float64{10, 10},
		C:     []float64{50, 50},
		V:     []float64{1000, 1000},
		Alpha: 0.5, R: 1000, B: 50, QMax: 1, QMin: DefaultQMin,
	}

	t.Run("larger aG participates more", func(t *testing.T) {
		p := base.Clone()
		p.G = []float64{10, 20}
		eq, err := p.SolveKKT()
		if err != nil {
			t.Fatal(err)
		}
		if eq.Q[1] <= eq.Q[0] {
			t.Fatalf("larger G should yield larger q: %v", eq.Q)
		}
	})
	t.Run("larger c participates less", func(t *testing.T) {
		p := base.Clone()
		p.C = []float64{50, 200}
		eq, err := p.SolveKKT()
		if err != nil {
			t.Fatal(err)
		}
		if eq.Q[1] >= eq.Q[0] {
			t.Fatalf("larger c should yield smaller q: %v", eq.Q)
		}
	})
	t.Run("larger v participates less", func(t *testing.T) {
		p := base.Clone()
		p.V = []float64{1000, 3000}
		eq, err := p.SolveKKT()
		if err != nil {
			t.Fatal(err)
		}
		if eq.Q[1] >= eq.Q[0] {
			t.Fatalf("larger v should yield smaller q: %v", eq.Q)
		}
	})
	t.Run("larger c gets higher price", func(t *testing.T) {
		p := base.Clone()
		p.C = []float64{50, 200}
		eq, err := p.SolveKKT()
		if err != nil {
			t.Fatal(err)
		}
		if !p.Interior(eq, 0, 1e-9) || !p.Interior(eq, 1, 1e-9) {
			t.Skip("boundary solution; statics apply to interior clients")
		}
		if eq.P[1] <= eq.P[0] {
			t.Fatalf("larger c should get higher price (Theorem 3): %v", eq.P)
		}
	})
}

func TestSolveMSearchMatchesKKT(t *testing.T) {
	p := testParams(t, 17, 8, 50, 4000, 150)
	kkt, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := p.SolveMSearch(DefaultMSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ms.ServerObj < kkt.ServerObj*(1-1e-9) {
		t.Fatalf("M-search beat the exact KKT optimum: %v < %v", ms.ServerObj, kkt.ServerObj)
	}
	if ms.ServerObj > kkt.ServerObj*1.10 {
		t.Fatalf("M-search objective %v too far above KKT %v", ms.ServerObj, kkt.ServerObj)
	}
	if _, err := p.SolveMSearch(MSearchOptions{}); err == nil {
		t.Fatal("expected error for invalid options")
	}
}

func TestSolveSchemeOrdering(t *testing.T) {
	// The proposed scheme must dominate both baselines on the server
	// objective under the same budget (the headline comparison of Fig. 4).
	p := testParams(t, 18, 30, 50, 4000, 200)
	opt, err := p.SolveScheme(SchemeOptimal)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := p.SolveScheme(SchemeUniform)
	if err != nil {
		t.Fatal(err)
	}
	wtd, err := p.SolveScheme(SchemeWeighted)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ServerObj > uni.ServerObj+1e-9 {
		t.Fatalf("optimal %v worse than uniform %v", opt.ServerObj, uni.ServerObj)
	}
	if opt.ServerObj > wtd.ServerObj+1e-9 {
		t.Fatalf("optimal %v worse than weighted %v", opt.ServerObj, wtd.ServerObj)
	}
	for _, o := range []*Outcome{opt, uni, wtd} {
		if o.Spent > p.B*(1+1e-6) {
			t.Fatalf("%v overspent: %v > %v", o.Scheme, o.Spent, p.B)
		}
	}
	if _, err := p.SolveScheme(Scheme(99)); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeOptimal.String() != "proposed" ||
		SchemeUniform.String() != "uniform" ||
		SchemeWeighted.String() != "weighted" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(42).String() == "" {
		t.Fatal("unknown scheme should still print")
	}
}

func TestClientUtilityHigherUnderOptimal(t *testing.T) {
	// Table IV's behaviour: total client utility under the proposed pricing
	// exceeds the baselines.
	p := testParams(t, 19, 30, 50, 4000, 200)
	opt, err := p.SolveScheme(SchemeOptimal)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := p.SolveScheme(SchemeUniform)
	if err != nil {
		t.Fatal(err)
	}
	uOpt, err := p.TotalClientUtility(opt.P, opt.Q, nil)
	if err != nil {
		t.Fatal(err)
	}
	uUni, err := p.TotalClientUtility(uni.P, uni.Q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if uOpt <= uUni {
		t.Fatalf("optimal total utility %v not above uniform %v", uOpt, uUni)
	}
}

func TestUtilityErrors(t *testing.T) {
	p := testParams(t, 20, 3, 50, 4000, 200)
	q := []float64{0.5, 0.5, 0.5}
	if _, err := p.ClientUtility(9, 1, q, 0); err == nil {
		t.Fatal("expected index error")
	}
	if _, err := p.TotalClientUtility([]float64{1, 1, 1}, q, []float64{1}); err == nil {
		t.Fatal("expected improvements length error")
	}
	if _, err := TotalPayment([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if Payment(2, 3) != 6 {
		t.Fatal("payment arithmetic broken")
	}
	if _, err := p.BestResponseAll([]float64{1}); err == nil {
		t.Fatal("expected price-count error")
	}
	if _, err := p.BestResponse(-1, 0); err == nil {
		t.Fatal("expected index error")
	}
	if _, err := p.PriceEq18(0, 0); err == nil {
		t.Fatal("expected lambda error")
	}
	if _, err := p.PriceEq18(-1, 1); err == nil {
		t.Fatal("expected index error")
	}
}

// TestStackelbergNoDeviation verifies Definition 1 directly: at the solved
// SE, no client can raise its utility by unilaterally deviating from q*_n
// (grid of deviations across the feasible box, all other clients held at
// equilibrium).
func TestStackelbergNoDeviation(t *testing.T) {
	p := testParams(t, 71, 12, 50, 4000, 200)
	eq, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < p.N(); n++ {
		base, err := p.ClientUtility(n, eq.P[n], eq.Q, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, dev := range []float64{p.QMin, 0.1, 0.25, 0.5, 0.75, 0.9, p.QMax} {
			if dev == eq.Q[n] {
				continue
			}
			qDev := append([]float64(nil), eq.Q...)
			qDev[n] = dev
			u, err := p.ClientUtility(n, eq.P[n], qDev, 0)
			if err != nil {
				t.Fatal(err)
			}
			if u > base+1e-7*(1+math.Abs(base)) {
				t.Fatalf("client %d profits by deviating from q*=%v to %v: %v > %v",
					n, eq.Q[n], dev, u, base)
			}
		}
	}
}

func TestCheckConsistencyDetectsTampering(t *testing.T) {
	p := testParams(t, 21, 6, 50, 4000, 200)
	eq, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckConsistency(nil, 1e-9); err == nil {
		t.Fatal("expected nil equilibrium error")
	}
	tampered := *eq
	tampered.Q = append([]float64(nil), eq.Q...)
	tampered.Q[0] = clamp(tampered.Q[0]+0.2, p.QMin, p.QMax-0.01)
	if err := p.CheckConsistency(&tampered, 1e-9); err == nil {
		t.Fatal("expected consistency failure for tampered q")
	}
}

func TestQuickKKTAlwaysConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 3 + int(seed%8)
		a := make([]float64, n)
		var asum float64
		for i := range a {
			a[i] = 0.1 + r.Float64()
			asum += a[i]
		}
		for i := range a {
			a[i] /= asum
		}
		g, _ := stats.UniformRange(r, n, 1, 50)
		c, _ := stats.UniformRange(r, n, 1, 100)
		v, _ := stats.UniformRange(r, n, 0, 5000)
		p := &Params{
			A: a, G: g, C: c, V: v,
			Alpha: 10, R: 1000,
			B:    10 + 500*r.Float64(),
			QMax: 1, QMin: DefaultQMin,
		}
		eq, err := p.SolveKKT()
		if err != nil {
			return false
		}
		if err := p.CheckConsistency(eq, 1e-5); err != nil {
			return false
		}
		return p.VerifyTheorem3(eq) == nil && p.VerifyLemma3(eq, 1e-4) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
