package game

import (
	"errors"
	"math"
)

// MSearchOptions controls the paper's two-step solution of Problem P1″
// (Section V-B): an inner convex solve for each fixed value of the control
// variable M = Σ c_n q_n², and an outer line search over M with a fixed
// step size (the paper's ε₀).
type MSearchOptions struct {
	GridSteps int // outer line-search resolution over [M_lo, M_hi]
	Refine    int // local refinement passes around the best grid point
}

// DefaultMSearchOptions reaches the KKT solution within a fraction of a
// percent on all repository workloads.
func DefaultMSearchOptions() MSearchOptions {
	return MSearchOptions{GridSteps: 64, Refine: 3}
}

// SolveMSearch reproduces the paper's solution method for Problem P1″: for
// each candidate M it solves the inner convex problem
//
//	min_q Σ (1−q_n) a_n²G_n²/q_n
//	s.t.  2M − (α/R) Σ v_n a_n²G_n²/q_n ≤ B,   Σ c_n q_n² = M,   q ∈ box
//
// exactly via its KKT system (nested bisection over the two multipliers),
// then line-searches M and prices the winner via eq. 17. The paper invokes
// CVX for the inner solve; the closed-form KKT structure makes a dedicated
// solver both exact and dependency-free. SolveMSearch exists primarily as an
// independent cross-check of SolveKKT.
func (p *Params) SolveMSearch(opts MSearchOptions) (*Equilibrium, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.GridSteps < 2 || opts.Refine < 0 {
		return nil, errors.New("game: invalid M-search options")
	}

	mLo, mHi := 0.0, 0.0
	for n := 0; n < p.N(); n++ {
		mLo += p.C[n] * p.QMin * p.QMin
		mHi += p.C[n] * p.QMax * p.QMax
	}

	evaluate := func(m float64) ([]float64, float64, bool) {
		q, ok := p.innerSolve(m)
		if !ok {
			return nil, math.Inf(1), false
		}
		spent, err := p.spendAt(q)
		if err != nil || spent > p.B*(1+1e-9)+1e-9 {
			return nil, math.Inf(1), false
		}
		obj, err := p.ServerObjective(q)
		if err != nil {
			return nil, math.Inf(1), false
		}
		return q, obj, true
	}

	lo, hi := mLo, mHi
	var bestQ []float64
	bestObj := math.Inf(1)
	for pass := 0; pass <= opts.Refine; pass++ {
		var bestM float64
		found := false
		for step := 0; step <= opts.GridSteps; step++ {
			m := lo + (hi-lo)*float64(step)/float64(opts.GridSteps)
			q, obj, ok := evaluate(m)
			if ok && obj < bestObj {
				bestObj = obj
				bestQ = q
				bestM = m
				found = true
			}
		}
		if !found {
			break
		}
		// Zoom into the neighbourhood of the winner for the next pass.
		width := (hi - lo) / float64(opts.GridSteps)
		lo = math.Max(mLo, bestM-2*width)
		hi = math.Min(mHi, bestM+2*width)
	}
	if bestQ == nil {
		return nil, errors.New("game: M-search found no feasible point")
	}
	spent, err := p.spendAt(bestQ)
	if err != nil {
		return nil, err
	}
	tight := math.Abs(spent-p.B) < 0.05*math.Max(1, math.Abs(p.B))
	return p.finishEquilibrium(bestQ, 0, tight)
}

// innerSolve solves the fixed-M inner problem exactly through its KKT
// system. Stationarity gives q_i³ = D_i (1 − θ (α/R) v_i) / (2 ψ c_i) with
// θ ≥ 0 the budget multiplier and ψ ≥ 0 the multiplier of the equality
// Σ c q² = M. For fixed θ, Σ c q(θ,ψ)² is strictly decreasing in ψ, so ψ is
// found by bisection; the budget slack is then monotone decreasing in θ, so
// θ is found by an outer bisection. Returns ok=false when no feasible point
// exists for this M.
func (p *Params) innerSolve(m float64) ([]float64, bool) {
	n := p.N()

	qAt := func(theta, psi float64) []float64 {
		q := make([]float64, n)
		for i := 0; i < n; i++ {
			numer := p.DataQuality(i) * (1 - theta*p.Alpha/p.R*p.V[i])
			if numer <= 0 || psi <= 0 {
				if numer <= 0 {
					q[i] = p.QMin
				} else {
					q[i] = p.QMax
				}
				continue
			}
			q[i] = clamp(cbrt(numer/(2*psi*p.C[i])), p.QMin, p.QMax)
		}
		return q
	}
	costAt := func(q []float64) float64 {
		var s float64
		for i, qi := range q {
			s += p.C[i] * qi * qi
		}
		return s
	}
	// solvePsi finds psi achieving Σ c q² = M for the given theta.
	solvePsi := func(theta float64) []float64 {
		if costAt(qAt(theta, 0)) <= m {
			// Even the ceiling cannot reach M (possible after clamping
			// high-v clients to QMin); return the closest achievable point.
			return qAt(theta, 0)
		}
		loPsi, hiPsi := 0.0, 1.0
		for costAt(qAt(theta, hiPsi)) > m {
			hiPsi *= 4
			if hiPsi > 1e18 {
				break
			}
		}
		for it := 0; it < 120; it++ {
			mid := 0.5 * (loPsi + hiPsi)
			if mid == loPsi || mid == hiPsi {
				break
			}
			if costAt(qAt(theta, mid)) > m {
				loPsi = mid
			} else {
				hiPsi = mid
			}
		}
		return qAt(theta, 0.5*(loPsi+hiPsi))
	}
	budgetSlack := func(q []float64) float64 {
		var intr float64
		for i, qi := range q {
			intr += p.V[i] * p.DataQuality(i) / qi
		}
		return p.B - (2*m - p.Alpha/p.R*intr)
	}

	q0 := solvePsi(0)
	if budgetSlack(q0) >= 0 {
		return q0, true
	}
	// Need θ > 0. Raising θ suppresses high-v clients, raising Σ v D / q and
	// restoring feasibility — unless no v is positive, in which case this M
	// is simply unaffordable.
	anyV := false
	for _, v := range p.V {
		if v > 0 {
			anyV = true
			break
		}
	}
	if !anyV {
		return nil, false
	}
	loTh, hiTh := 0.0, 1.0
	for budgetSlack(solvePsi(hiTh)) < 0 {
		hiTh *= 4
		if hiTh > 1e18 {
			return nil, false
		}
	}
	for it := 0; it < 120; it++ {
		mid := 0.5 * (loTh + hiTh)
		if mid == loTh || mid == hiTh {
			break
		}
		if budgetSlack(solvePsi(mid)) < 0 {
			loTh = mid
		} else {
			hiTh = mid
		}
	}
	return solvePsi(hiTh), true
}
