package game

import (
	"errors"
	"math"
)

// MSearchOptions controls the paper's two-step solution of Problem P1″
// (Section V-B): an inner convex solve for each fixed value of the control
// variable M = Σ c_n q_n², and an outer line search over M with a fixed
// step size (the paper's ε₀).
type MSearchOptions struct {
	GridSteps int // outer line-search resolution over [M_lo, M_hi]
	Refine    int // local refinement passes around the best grid point
}

// DefaultMSearchOptions reaches the KKT solution within a fraction of a
// percent on all repository workloads.
func DefaultMSearchOptions() MSearchOptions {
	return MSearchOptions{GridSteps: 64, Refine: 3}
}

// msearchMultiplierCap mirrors the historical 1e18 ceiling on the inner
// multipliers: beyond it the box constraints have long since saturated.
const msearchMultiplierCap = 1e18

// SolveMSearch reproduces the paper's solution method for Problem P1″: for
// each candidate M it solves the inner convex problem
//
//	min_q Σ (1−q_n) a_n²G_n²/q_n
//	s.t.  2M − (α/R) Σ v_n a_n²G_n²/q_n ≤ B,   Σ c_n q_n² = M,   q ∈ box
//
// exactly via its KKT system (nested bisection over the two multipliers),
// then line-searches M and prices the winner via eq. 17. The paper invokes
// CVX for the inner solve; the closed-form KKT structure makes a dedicated
// solver both exact and dependency-free. SolveMSearch exists primarily as
// an independent cross-check of SolveKKT. It delegates to a fresh Solver;
// see Solver.SolveMSearch for the warm-started engine form.
func (p *Params) SolveMSearch(opts MSearchOptions) (*Equilibrium, error) {
	var s Solver
	return s.SolveMSearch(p, opts)
}

// SolveMSearch is the engine form of Params.SolveMSearch: the inner-problem
// participation vectors live in the Solver's scratch arena, and the ψ/θ
// multiplier boundary pairs are warm-started across the line-search grid
// steps (consecutive M values have nearby multipliers, so most inner
// bisections collapse to a handful of probes). Results are bit-identical to
// a cold solve: every bisection pins the bracket-independent boundary pair
// on the float lattice, exactly like SolveInto.
func (s *Solver) SolveMSearch(p *Params, opts MSearchOptions) (*Equilibrium, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.GridSteps < 2 || opts.Refine < 0 {
		return nil, errors.New("game: invalid M-search options")
	}
	n := p.N()
	s.msQ = growFloats(s.msQ, n)
	s.msBest = growFloats(s.msBest, n)

	mLo, mHi := 0.0, 0.0
	for i := 0; i < n; i++ {
		mLo += p.C[i] * p.QMin * p.QMin
		mHi += p.C[i] * p.QMax * p.QMax
	}

	// evaluate scores one M candidate, leaving its q vector in s.msQ.
	evaluate := func(m float64) (float64, bool) {
		if !s.innerSolve(p, m) {
			return math.Inf(1), false
		}
		spent, err := p.spendAt(s.msQ)
		if err != nil || spent > p.B*(1+1e-9)+1e-9 {
			return math.Inf(1), false
		}
		obj, err := p.ServerObjective(s.msQ)
		if err != nil {
			return math.Inf(1), false
		}
		return obj, true
	}

	lo, hi := mLo, mHi
	found := false
	bestObj := math.Inf(1)
	for pass := 0; pass <= opts.Refine; pass++ {
		var bestM float64
		improved := false
		for step := 0; step <= opts.GridSteps; step++ {
			m := lo + (hi-lo)*float64(step)/float64(opts.GridSteps)
			obj, ok := evaluate(m)
			if ok && obj < bestObj {
				bestObj = obj
				copy(s.msBest, s.msQ)
				bestM = m
				improved = true
				found = true
			}
		}
		if !improved {
			break
		}
		// Zoom into the neighbourhood of the winner for the next pass.
		width := (hi - lo) / float64(opts.GridSteps)
		lo = math.Max(mLo, bestM-2*width)
		hi = math.Min(mHi, bestM+2*width)
	}
	if !found {
		return nil, errors.New("game: M-search found no feasible point")
	}
	spent, err := p.spendAt(s.msBest)
	if err != nil {
		return nil, err
	}
	tight := math.Abs(spent-p.B) < 0.05*math.Max(1, math.Abs(p.B))
	return p.finishEquilibrium(append([]float64(nil), s.msBest...), 0, tight)
}

// innerQ writes the inner problem's stationarity point for multipliers
// (θ, ψ) into q and returns its cost Σ c_n q_n² in the same pass:
// q_i³ = D_i (1 − θ (α/R) v_i) / (2 ψ c_i), clamped to the box.
func (p *Params) innerQ(theta, psi float64, q []float64) float64 {
	var cost float64
	for i := range q {
		numer := p.DataQuality(i) * (1 - theta*p.Alpha/p.R*p.V[i])
		var qi float64
		if numer <= 0 || psi <= 0 {
			if numer <= 0 {
				qi = p.QMin
			} else {
				qi = p.QMax
			}
		} else {
			qi = clamp(cbrt(numer/(2*psi*p.C[i])), p.QMin, p.QMax)
		}
		q[i] = qi
		cost += p.C[i] * qi * qi
	}
	return cost
}

// innerSolve solves the fixed-M inner problem exactly through its KKT
// system, leaving the solution in s.msQ. For fixed θ, Σ c q(θ,ψ)² is
// nonincreasing in ψ, so ψ is pinned by a lattice bisection; the budget
// slack is then monotone in θ, so θ is pinned by an outer lattice
// bisection. Both bisections seed their brackets from the previous call's
// boundary pairs. Reports false when no feasible point exists for this M.
func (s *Solver) innerSolve(p *Params, m float64) bool {
	q := s.msQ

	// solvePsi pins ψ achieving Σ c q² = M for the given θ, leaving the
	// participation vector in q.
	solvePsi := func(theta float64) {
		if p.innerQ(theta, 0, q) <= m {
			// Even the ceiling cannot reach M (possible after clamping
			// high-v clients to QMin); keep the closest achievable point.
			return
		}
		f := func(psi float64) float64 { return p.innerQ(theta, psi, q) - m }
		lo, hi, flo, fhi, ok := seekBracket(s.warmPsi, f, msearchMultiplierCap)
		if ok {
			lo, hi = crossingPair(lo, hi, flo, fhi, f)
			s.warmPsi = lambdaBracket{lo: lo, hi: hi, ok: true}
		}
		p.innerQ(theta, hi, q)
	}
	budgetSlack := func() float64 {
		var intr float64
		for i, qi := range q {
			intr += p.V[i] * p.DataQuality(i) / qi
		}
		return p.B - (2*m - p.Alpha/p.R*intr)
	}

	solvePsi(0)
	if budgetSlack() >= 0 {
		return true
	}
	// Need θ > 0. Raising θ suppresses high-v clients, raising Σ v D / q and
	// restoring feasibility — unless no v is positive, in which case this M
	// is simply unaffordable.
	anyV := false
	for _, v := range p.V {
		if v > 0 {
			anyV = true
			break
		}
	}
	if !anyV {
		return false
	}
	fTheta := func(theta float64) float64 {
		solvePsi(theta)
		return -budgetSlack()
	}
	lo, hi, flo, fhi, ok := seekBracket(s.warmTheta, fTheta, msearchMultiplierCap)
	if !ok {
		return false
	}
	lo, hi = crossingPair(lo, hi, flo, fhi, fTheta)
	s.warmTheta = lambdaBracket{lo: lo, hi: hi, ok: true}
	solvePsi(hi)
	return true
}
