package game

import (
	"errors"
	"fmt"
	"math"
)

// Equilibrium is a solved Stackelberg equilibrium of the CPL game.
type Equilibrium struct {
	Q      []float64 // participation levels q*
	P      []float64 // prices P* (eq. 17); negative means the client pays
	Lambda float64   // budget multiplier λ*; 0 when the budget is slack
	Spent  float64   // Σ P*_n q*_n
	// ServerObj is g(q*) = (α/R) Σ (1−q_n) a²G²/q, the bound term the server
	// minimizes; lower is better.
	ServerObj float64
	// BudgetTight reports whether the budget constraint binds (Lemma 3: it
	// does whenever the unconstrained optimum q = qmax is unaffordable).
	BudgetTight bool
}

// Vt returns the payment-direction threshold v_t = 1/(3λ*) from Theorem 3.
// Clients with v_n < v_t receive money (P_n > 0); clients with v_n > v_t pay
// the server. It returns +Inf when the budget is slack (λ* = 0: everyone can
// be paid to the ceiling).
func (e *Equilibrium) Vt() float64 {
	if e.Lambda <= 0 {
		return math.Inf(1)
	}
	return 1 / (3 * e.Lambda)
}

// NegativePayments counts clients with P_n < 0 (they pay the server), the
// quantity reported in the paper's Table V.
func (e *Equilibrium) NegativePayments() int {
	count := 0
	for _, p := range e.P {
		if p < 0 {
			count++
		}
	}
	return count
}

// spendAt computes the total payment Σ P_n(q_n) q_n when every client is
// held at its eq.-17 price for the given q vector.
func (p *Params) spendAt(q []float64) (float64, error) {
	var s float64
	for n, qn := range q {
		price, err := p.PriceFor(n, qn)
		if err != nil {
			return 0, err
		}
		s += price * qn
	}
	return s, nil
}

// SolveKKT computes the Stackelberg equilibrium by bisecting the budget
// multiplier λ in the KKT system of Problem P1′. Client payments
// P_n(q) q = 2 c_n q² − (α/R) v_n a_n²G_n²/q are strictly increasing in q
// and q_n(λ) is nonincreasing in λ, so total spend is monotone in λ and the
// bisection is exact up to floating-point resolution: λ* is the smallest
// representable multiplier whose induced spend fits the budget.
//
// SolveKKT is the cold entry point; it delegates to a fresh Solver. Callers
// solving many games (sweeps, sensitivity probes, Monte-Carlo scenarios)
// should reuse a Solver or use SolveMany, which skip per-solve allocations
// and warm-start the multiplier bracket with bit-identical results.
func (p *Params) SolveKKT() (*Equilibrium, error) {
	var s Solver
	return s.Solve(p)
}

// finishEquilibrium derives prices and diagnostics from a solved q vector.
func (p *Params) finishEquilibrium(q []float64, lambda float64, tight bool) (*Equilibrium, error) {
	prices := make([]float64, p.N())
	for n, qn := range q {
		price, err := p.PriceFor(n, qn)
		if err != nil {
			return nil, err
		}
		prices[n] = price
	}
	spent, err := TotalPayment(prices, q)
	if err != nil {
		return nil, err
	}
	obj, err := p.ServerObjective(q)
	if err != nil {
		return nil, err
	}
	return &Equilibrium{
		Q:           q,
		P:           prices,
		Lambda:      lambda,
		Spent:       spent,
		ServerObj:   obj,
		BudgetTight: tight,
	}, nil
}

// CheckConsistency verifies that an equilibrium is self-consistent: every
// client's best response to its price reproduces q (up to tol), and the
// spend respects the budget (up to tol·max(1,|B|)).
func (p *Params) CheckConsistency(e *Equilibrium, tol float64) error {
	if e == nil {
		return errors.New("game: nil equilibrium")
	}
	for n, qn := range e.Q {
		br, err := p.BestResponse(n, e.P[n])
		if err != nil {
			return err
		}
		// Interior points must match exactly; boundary points match the
		// clamped response.
		if math.Abs(br-qn) > tol {
			return fmt.Errorf("game: client %d best response %v != q %v", n, br, qn)
		}
	}
	if e.Spent > p.B+tol*math.Max(1, math.Abs(p.B)) {
		return fmt.Errorf("game: spend %v exceeds budget %v", e.Spent, p.B)
	}
	return nil
}
