package game

import (
	"errors"
	"fmt"
	"math"
)

// Equilibrium is a solved Stackelberg equilibrium of the CPL game.
type Equilibrium struct {
	Q      []float64 // participation levels q*
	P      []float64 // prices P* (eq. 17); negative means the client pays
	Lambda float64   // budget multiplier λ*; 0 when the budget is slack
	Spent  float64   // Σ P*_n q*_n
	// ServerObj is g(q*) = (α/R) Σ (1−q_n) a²G²/q, the bound term the server
	// minimizes; lower is better.
	ServerObj float64
	// BudgetTight reports whether the budget constraint binds (Lemma 3: it
	// does whenever the unconstrained optimum q = qmax is unaffordable).
	BudgetTight bool
}

// Vt returns the payment-direction threshold v_t = 1/(3λ*) from Theorem 3.
// Clients with v_n < v_t receive money (P_n > 0); clients with v_n > v_t pay
// the server. It returns +Inf when the budget is slack (λ* = 0: everyone can
// be paid to the ceiling).
func (e *Equilibrium) Vt() float64 {
	if e.Lambda <= 0 {
		return math.Inf(1)
	}
	return 1 / (3 * e.Lambda)
}

// NegativePayments counts clients with P_n < 0 (they pay the server), the
// quantity reported in the paper's Table V.
func (e *Equilibrium) NegativePayments() int {
	count := 0
	for _, p := range e.P {
		if p < 0 {
			count++
		}
	}
	return count
}

// qOfLambda evaluates the KKT stationarity condition (eq. 22) for client n:
// interior optima satisfy 1/λ = (4R/α)·c_n q³/(a_n²G_n²) + v_n, i.e.
// q_n(λ) = cbrt( (α a_n²G_n² / (4R c_n)) · (1/λ − v_n) ), clamped to the box.
func (p *Params) qOfLambda(n int, lambda float64) float64 {
	if lambda <= 0 {
		return p.QMax
	}
	slack := 1/lambda - p.V[n]
	if slack <= 0 {
		return p.QMin
	}
	q := cbrt(p.Alpha * p.DataQuality(n) / (4 * p.R * p.C[n]) * slack)
	return clamp(q, p.QMin, p.QMax)
}

// spendAt computes the total payment Σ P_n(q_n) q_n when every client is
// held at its eq.-17 price for the given q vector.
func (p *Params) spendAt(q []float64) (float64, error) {
	var s float64
	for n, qn := range q {
		price, err := p.PriceFor(n, qn)
		if err != nil {
			return 0, err
		}
		s += price * qn
	}
	return s, nil
}

// qVecOfLambda evaluates qOfLambda for all clients.
func (p *Params) qVecOfLambda(lambda float64) []float64 {
	q := make([]float64, p.N())
	for n := range q {
		q[n] = p.qOfLambda(n, lambda)
	}
	return q
}

// SolveKKT computes the Stackelberg equilibrium by bisecting the budget
// multiplier λ in the KKT system of Problem P1′. Client payments
// P_n(q) q = 2 c_n q² − (α/R) v_n a_n²G_n²/q are strictly increasing in q
// and q_n(λ) is nonincreasing in λ, so total spend is monotone in λ and the
// bisection is exact up to floating-point resolution.
func (p *Params) SolveKKT() (*Equilibrium, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Budget slack case: paying everyone to the ceiling is affordable.
	qMaxVec := p.qVecOfLambda(0)
	spentMax, err := p.spendAt(qMaxVec)
	if err != nil {
		return nil, err
	}
	if spentMax <= p.B {
		return p.finishEquilibrium(qMaxVec, 0, false)
	}

	// Bracket λ: spend(λ→0) = spentMax > B; grow λ until spend <= B.
	lo := 0.0
	hi := 1.0
	for i := 0; ; i++ {
		spent, err := p.spendAt(p.qVecOfLambda(hi))
		if err != nil {
			return nil, err
		}
		if spent <= p.B {
			break
		}
		lo = hi
		hi *= 4
		if i > 200 {
			return nil, errors.New("game: failed to bracket budget multiplier")
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		spent, err := p.spendAt(p.qVecOfLambda(mid))
		if err != nil {
			return nil, err
		}
		if spent > p.B {
			lo = mid
		} else {
			hi = mid
		}
	}
	lambda := 0.5 * (lo + hi)
	return p.finishEquilibrium(p.qVecOfLambda(lambda), lambda, true)
}

// finishEquilibrium derives prices and diagnostics from a solved q vector.
func (p *Params) finishEquilibrium(q []float64, lambda float64, tight bool) (*Equilibrium, error) {
	prices := make([]float64, p.N())
	for n, qn := range q {
		price, err := p.PriceFor(n, qn)
		if err != nil {
			return nil, err
		}
		prices[n] = price
	}
	spent, err := TotalPayment(prices, q)
	if err != nil {
		return nil, err
	}
	obj, err := p.ServerObjective(q)
	if err != nil {
		return nil, err
	}
	return &Equilibrium{
		Q:           q,
		P:           prices,
		Lambda:      lambda,
		Spent:       spent,
		ServerObj:   obj,
		BudgetTight: tight,
	}, nil
}

// CheckConsistency verifies that an equilibrium is self-consistent: every
// client's best response to its price reproduces q (up to tol), and the
// spend respects the budget (up to tol·max(1,|B|)).
func (p *Params) CheckConsistency(e *Equilibrium, tol float64) error {
	if e == nil {
		return errors.New("game: nil equilibrium")
	}
	for n, qn := range e.Q {
		br, err := p.BestResponse(n, e.P[n])
		if err != nil {
			return err
		}
		// Interior points must match exactly; boundary points match the
		// clamped response.
		if math.Abs(br-qn) > tol {
			return fmt.Errorf("game: client %d best response %v != q %v", n, br, qn)
		}
	}
	if e.Spent > p.B+tol*math.Max(1, math.Abs(p.B)) {
		return fmt.Errorf("game: spend %v exceeds budget %v", e.Spent, p.B)
	}
	return nil
}
