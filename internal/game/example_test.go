package game_test

import (
	"fmt"

	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
)

// ExampleParams_SolveKKT solves a small CPL game and prints the equilibrium
// structure: clients with identical data quality and cost but different
// intrinsic values receive different prices, with the high-value client
// participating less (Theorem 2).
func ExampleParams_SolveKKT() {
	p := &game.Params{
		A:     []float64{0.5, 0.5},
		G:     []float64{10, 10},
		C:     []float64{50, 50},
		V:     []float64{500, 2500},
		Alpha: 0.5,
		R:     1000,
		B:     40,
		QMax:  1,
		QMin:  game.DefaultQMin,
	}
	eq, err := p.SolveKKT()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("budget tight: %v\n", eq.BudgetTight)
	fmt.Printf("low-v client participates more: %v\n", eq.Q[0] > eq.Q[1])
	fmt.Printf("low-v client is paid more: %v\n", eq.P[0] > eq.P[1])
	// Output:
	// budget tight: true
	// low-v client participates more: true
	// low-v client is paid more: true
}

// ExampleParams_BestResponse shows a client's Stage-II reaction: the best
// response rises with the posted price.
func ExampleParams_BestResponse() {
	p := &game.Params{
		A:     []float64{1.0},
		G:     []float64{5},
		C:     []float64{20},
		V:     []float64{100},
		Alpha: 1,
		R:     1000,
		B:     100,
		QMax:  1,
		QMin:  game.DefaultQMin,
	}
	qLow, _ := p.BestResponse(0, 1)
	qHigh, _ := p.BestResponse(0, 30)
	fmt.Printf("higher price, higher participation: %v\n", qHigh > qLow)
	// Output:
	// higher price, higher participation: true
}

// ExampleParams_SolveBayesian prices a market knowing only the prior over
// private parameters, and confirms the expected spend respects the budget.
func ExampleParams_SolveBayesian() {
	p := &game.Params{
		A:     []float64{0.4, 0.6},
		G:     []float64{8, 12},
		C:     []float64{30, 60},
		V:     []float64{800, 3000}, // true private values, unknown to the server
		Alpha: 0.5,
		R:     1000,
		B:     30,
		QMax:  1,
		QMin:  game.DefaultQMin,
	}
	out, err := p.SolveBayesian(game.Prior{MeanC: 45, MeanV: 1900}, 500, stats.NewRNG(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("expected spend within budget: %v\n", out.ExpectedSpend <= p.B+1e-9)
	// Output:
	// expected spend within budget: true
}
