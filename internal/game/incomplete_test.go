package game

import (
	"math"
	"testing"

	"unbiasedfl/internal/stats"
)

func TestPriorValidate(t *testing.T) {
	if err := (Prior{MeanC: 50, MeanV: 4000}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Prior{MeanC: 0, MeanV: 1}).Validate(); err == nil {
		t.Fatal("expected error for zero mean cost")
	}
	if err := (Prior{MeanC: 1, MeanV: -1}).Validate(); err == nil {
		t.Fatal("expected error for negative mean value")
	}
}

func TestSolveBayesianBudgetAndShape(t *testing.T) {
	p := testParams(t, 41, 20, 50, 4000, 200)
	prior := Prior{MeanC: 50, MeanV: 4000}
	out, err := p.SolveBayesian(prior, 400, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if out.ExpectedSpend > p.B*(1+1e-6) {
		t.Fatalf("expected spend %v exceeds budget %v", out.ExpectedSpend, p.B)
	}
	if len(out.P) != p.N() || len(out.ExpectedQ) != p.N() {
		t.Fatal("output length mismatch")
	}
	for n, q := range out.ExpectedQ {
		if q < p.QMin || q > p.QMax {
			t.Fatalf("expected q[%d]=%v outside box", n, q)
		}
	}
	if out.ExpectedObj <= 0 || math.IsNaN(out.ExpectedObj) {
		t.Fatalf("expected objective %v", out.ExpectedObj)
	}
	// Prices are customized (all heterogeneity in the certainty-equivalent
	// design comes from a_n G_n), not a flat posted price.
	allEqual := true
	for n := 1; n < p.N(); n++ {
		if math.Abs(out.P[n]-out.P[0]) > 1e-9 {
			allEqual = false
			break
		}
	}
	if allEqual {
		t.Fatal("bayesian design degenerated to a uniform price")
	}
	for n, price := range out.P {
		if math.IsNaN(price) || math.IsInf(price, 0) {
			t.Fatalf("price[%d] = %v", n, price)
		}
	}
}

func TestBayesianCostOfIncompleteInformation(t *testing.T) {
	// Complete information weakly dominates Bayesian posted prices on the
	// realized bound (the server can only lose by not knowing c, v).
	p := testParams(t, 43, 25, 50, 4000, 200)
	complete, err := p.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.SolveBayesian(Prior{MeanC: 50, MeanV: 4000}, 400, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	_, _, realizedObj, err := p.EvaluateRealized(out.P)
	if err != nil {
		t.Fatal(err)
	}
	if realizedObj < complete.ServerObj*(1-1e-9) {
		t.Fatalf("bayesian beat complete information: %v < %v",
			realizedObj, complete.ServerObj)
	}
	// But it should not be catastrophically worse than uniform posted
	// pricing, which uses even less structure.
	uni, err := p.SolveScheme(SchemeUniform)
	if err != nil {
		t.Fatal(err)
	}
	if realizedObj > 20*uni.ServerObj {
		t.Fatalf("bayesian %v collapsed versus uniform %v", realizedObj, uni.ServerObj)
	}
}

func TestSolveBayesianValidation(t *testing.T) {
	p := testParams(t, 44, 5, 50, 4000, 200)
	if _, err := p.SolveBayesian(Prior{MeanC: 0, MeanV: 1}, 10, stats.NewRNG(1)); err == nil {
		t.Fatal("expected prior error")
	}
	if _, err := p.SolveBayesian(Prior{MeanC: 1, MeanV: 1}, 0, stats.NewRNG(1)); err == nil {
		t.Fatal("expected scenarios error")
	}
	if _, err := p.SolveBayesian(Prior{MeanC: 1, MeanV: 1}, 10, nil); err == nil {
		t.Fatal("expected rng error")
	}
}

func TestEvaluateRealizedErrors(t *testing.T) {
	p := testParams(t, 45, 4, 50, 4000, 200)
	if _, _, _, err := p.EvaluateRealized([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
	prices := make([]float64, p.N())
	for i := range prices {
		prices[i] = 10
	}
	q, spend, obj, err := p.EvaluateRealized(prices)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != p.N() || math.IsNaN(spend) || obj <= 0 {
		t.Fatalf("realized evaluation degenerate: %v %v %v", q, spend, obj)
	}
}

func TestBestResponseScenarioMatchesStored(t *testing.T) {
	p := testParams(t, 46, 6, 50, 4000, 200)
	for n := 0; n < p.N(); n++ {
		for _, price := range []float64{-5, 0, 25, 200} {
			want, err := p.BestResponse(n, price)
			if err != nil {
				t.Fatal(err)
			}
			got := p.bestResponseScenario(n, price, p.C[n], p.V[n])
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("client %d price %v: scenario %v vs stored %v", n, price, got, want)
			}
		}
	}
}

func TestDecoupledCost(t *testing.T) {
	comp := CostComponents{ComputeSecPrice: 2, CommSecPrice: 10, Opportunity: 1}
	c, err := DecoupledCost(comp, DeviceProfile{ComputeSecPerRound: 3, CommSecPerRound: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-(2*3+10*0.5+1)) > 1e-12 {
		t.Fatalf("decoupled cost %v", c)
	}
	if _, err := DecoupledCost(CostComponents{ComputeSecPrice: -1}, DeviceProfile{}); err == nil {
		t.Fatal("expected negative component error")
	}
	if _, err := DecoupledCost(comp, DeviceProfile{ComputeSecPerRound: -1}); err == nil {
		t.Fatal("expected negative profile error")
	}
	if _, err := DecoupledCost(CostComponents{}, DeviceProfile{}); err == nil {
		t.Fatal("expected zero-cost error")
	}
}

func TestWithDecoupledCosts(t *testing.T) {
	p := testParams(t, 47, 4, 50, 4000, 200)
	profiles := []DeviceProfile{
		{ComputeSecPerRound: 1, CommSecPerRound: 0.3},
		{ComputeSecPerRound: 2, CommSecPerRound: 0.3},
		{ComputeSecPerRound: 4, CommSecPerRound: 0.3},
		{ComputeSecPerRound: 8, CommSecPerRound: 0.3},
	}
	comp := CostComponents{ComputeSecPrice: 10, CommSecPrice: 20, Opportunity: 0.5}
	pd, err := p.WithDecoupledCosts(comp, profiles)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pd.C); i++ {
		if pd.C[i] <= pd.C[i-1] {
			t.Fatal("slower device should cost more")
		}
	}
	// Original untouched.
	if p.C[0] == pd.C[0] && p.C[1] == pd.C[1] && p.C[2] == pd.C[2] {
		t.Fatal("suspicious: original costs identical to derived ones")
	}
	// The re-priced game still solves, and the slowest (most expensive)
	// device participates no more than the cheapest, all else equal.
	eq, err := pd.SolveKKT()
	if err != nil {
		t.Fatal(err)
	}
	if err := pd.CheckConsistency(eq, 1e-6); err != nil {
		t.Fatal(err)
	}
	if _, err := p.WithDecoupledCosts(comp, profiles[:2]); err == nil {
		t.Fatal("expected profile-count error")
	}
	if _, err := DecoupledCosts(comp, nil); err == nil {
		t.Fatal("expected empty fleet error")
	}
}
