package game

import (
	"strings"
	"testing"
)

type fakeScheme struct{ name string }

func (f fakeScheme) Name() string { return f.name }
func (f fakeScheme) Price(p *Params) (*Outcome, error) {
	prices := make([]float64, p.N())
	return p.OutcomeFor(f.name, prices)
}

func TestRegistryBuiltins(t *testing.T) {
	names := SchemeNames()
	if len(names) < 3 {
		t.Fatalf("names %v", names)
	}
	want := []string{SchemeNameProposed, SchemeNameWeighted, SchemeNameUniform}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("canonical order broken: %v", names)
		}
	}
	for _, w := range want {
		if _, err := SchemeByName(w); err != nil {
			t.Fatalf("builtin %q missing: %v", w, err)
		}
	}
}

func TestRegistryRegisterValidation(t *testing.T) {
	if err := RegisterScheme(nil); err == nil {
		t.Fatal("expected nil-scheme error")
	}
	if err := RegisterScheme(fakeScheme{name: ""}); err == nil {
		t.Fatal("expected empty-name error")
	}
	if err := RegisterScheme(fakeScheme{name: SchemeNameProposed}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if err := RegisterScheme(fakeScheme{name: "reg-test"}); err != nil {
		t.Fatal(err)
	}
	defer UnregisterScheme("reg-test")
	if err := RegisterScheme(fakeScheme{name: "reg-test"}); err == nil {
		t.Fatal("expected duplicate error on re-register")
	}
	if _, err := SchemeByName("reg-test"); err != nil {
		t.Fatal(err)
	}
	if got := SchemeNames(); got[len(got)-1] != "reg-test" {
		t.Fatalf("registration order: %v", got)
	}
}

func TestRegistryUnregister(t *testing.T) {
	if UnregisterScheme("never-registered") {
		t.Fatal("unregistered a ghost")
	}
	if err := RegisterScheme(fakeScheme{name: "ephemeral"}); err != nil {
		t.Fatal(err)
	}
	if !UnregisterScheme("ephemeral") {
		t.Fatal("unregister failed")
	}
	if _, err := SchemeByName("ephemeral"); err == nil {
		t.Fatal("scheme survived unregistration")
	}
}

func TestSchemeByNameErrorListsKnown(t *testing.T) {
	_, err := SchemeByName("nope")
	if err == nil || !strings.Contains(err.Error(), SchemeNameProposed) {
		t.Fatalf("error should list registered schemes: %v", err)
	}
}

// TestEnumShimMatchesRegistry pins the deprecated enum path to the
// registry path.
func TestEnumShimMatchesRegistry(t *testing.T) {
	p := testParams(t, 1, 6, 50, 4000, 200)
	for _, s := range []Scheme{SchemeOptimal, SchemeUniform, SchemeWeighted} {
		viaEnum, err := p.SolveScheme(s)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := SchemeByName(s.String())
		if err != nil {
			t.Fatal(err)
		}
		viaRegistry, err := ps.Price(p)
		if err != nil {
			t.Fatal(err)
		}
		if viaEnum.Name != s.String() || viaEnum.Scheme != s {
			t.Fatalf("outcome identity: name=%q scheme=%v", viaEnum.Name, viaEnum.Scheme)
		}
		if viaEnum.Spent != viaRegistry.Spent || viaEnum.ServerObj != viaRegistry.ServerObj {
			t.Fatalf("%v: enum and registry disagree", s)
		}
		for i := range viaEnum.P {
			if viaEnum.P[i] != viaRegistry.P[i] || viaEnum.Q[i] != viaRegistry.Q[i] {
				t.Fatalf("%v: price/response mismatch at %d", s, i)
			}
		}
	}
}

func TestOutcomeFor(t *testing.T) {
	p := testParams(t, 2, 5, 50, 4000, 200)
	prices := make([]float64, p.N())
	for i := range prices {
		prices[i] = 1
	}
	out, err := p.OutcomeFor("custom", prices)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "custom" || out.Scheme != 0 {
		t.Fatalf("identity: %q %v", out.Name, out.Scheme)
	}
	if len(out.Q) != p.N() || out.Spent < 0 {
		t.Fatalf("outcome malformed: %+v", out)
	}
	if _, err := p.OutcomeFor("custom", prices[:2]); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}
