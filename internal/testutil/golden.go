package testutil

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Update is the conventional -update flag: when set, Golden rewrites the
// expected files instead of diffing against them. Importing test packages
// share the single registration; pass *testutil.Update to Golden.
var Update = flag.Bool("update", false, "rewrite golden files instead of diffing against them")

// Golden compares got against the committed file testdata/golden/<name>
// (relative to the calling test's package directory). With update set it
// (re)writes the file and returns. On a mismatch it fails the test with the
// first differing line and writes the actual bytes next to the golden file
// as <name>.got — an artifact CI can upload so a failing trace diff is
// inspectable without rerunning locally. A passing run removes any stale
// .got file.
func Golden(t testing.TB, name string, got []byte, update bool) {
	t.Helper()
	if update {
		t.Logf("golden: updating testdata/golden/%s (%d bytes)", name, len(got))
	}
	if err := golden(name, got, update); err != nil {
		t.Fatal(err)
	}
}

// golden is the testable core of Golden: it returns an error instead of
// failing a test.
func golden(name string, got []byte, update bool) error {
	path := filepath.Join("testdata", "golden", name)
	gotPath := path + ".got"
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("golden: mkdir: %w", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			return fmt.Errorf("golden: write: %w", err)
		}
		_ = os.Remove(gotPath)
		return nil
	}
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden: read %s: %w (run go test with -update to record it)", path, err)
	}
	if bytes.Equal(got, want) {
		_ = os.Remove(gotPath)
		return nil
	}
	if err := os.WriteFile(gotPath, got, 0o644); err != nil {
		return fmt.Errorf("golden: write diff artifact: %w", err)
	}
	line, wantLine, gotLine := firstDiffLine(want, got)
	return fmt.Errorf("golden: %s differs from recorded file at line %d:\n  want: %s\n  got:  %s\nactual bytes written to %s (rerun with -update to accept)",
		name, line, wantLine, gotLine, gotPath)
}

// firstDiffLine locates the first line where want and got diverge. A length
// mismatch after an equal prefix (e.g. only a trailing newline differs)
// reports the divergence at the shorter input's end as <EOF>.
func firstDiffLine(want, got []byte) (line int, wantLine, gotLine string) {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) || i < len(g); i++ {
		if i >= len(w) || i >= len(g) || !bytes.Equal(w[i], g[i]) {
			return i + 1, lineOrEOF(i, w), lineOrEOF(i, g)
		}
	}
	return 0, "", "" // unreachable: equal line splits imply equal inputs
}

func lineOrEOF(i int, lines [][]byte) string {
	if i >= len(lines) {
		return "<EOF>"
	}
	return fmt.Sprintf("%q", lines[i])
}
