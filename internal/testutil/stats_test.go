package testutil

import (
	"math"
	"strings"
	"testing"
)

// TestWelfordAgainstClosedForm: the streaming moments must match the direct
// two-pass formulas on a fixed sample.
func TestWelfordAgainstClosedForm(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
	}{
		{"small ints", []float64{1, 2, 3, 4, 5}},
		{"constant", []float64{7, 7, 7, 7}},
		{"mixed signs", []float64{-3.5, 0, 2.25, -1, 8, 4.5}},
		{"large offset", []float64{1e9 + 1, 1e9 + 2, 1e9 + 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w Welford
			mean := 0.0
			for _, x := range tc.xs {
				w.Add(x)
				mean += x
			}
			mean /= float64(len(tc.xs))
			variance := 0.0
			for _, x := range tc.xs {
				variance += (x - mean) * (x - mean)
			}
			variance /= float64(len(tc.xs) - 1)
			if w.Count() != len(tc.xs) {
				t.Fatalf("count = %d, want %d", w.Count(), len(tc.xs))
			}
			if !AlmostEqual(w.Mean(), mean, 1e-12) {
				t.Fatalf("mean = %v, want %v", w.Mean(), mean)
			}
			if !AlmostEqual(w.Variance(), variance, 1e-9) {
				t.Fatalf("variance = %v, want %v", w.Variance(), variance)
			}
			wantSE := math.Sqrt(variance / float64(len(tc.xs)))
			if !AlmostEqual(w.SE(), wantSE, 1e-9) {
				t.Fatalf("se = %v, want %v", w.SE(), wantSE)
			}
		})
	}
}

// TestWelfordDegenerate: the zero value and single observations must not
// divide by zero.
func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.SE() != 0 {
		t.Fatal("zero-value Welford must report zero moments")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatalf("single observation: mean %v variance %v", w.Mean(), w.Variance())
	}
}

// TestCheckUnbiased is the table over the z-test verdicts — including the
// known-biased estimator that MUST fail, the case that proves the checker has
// teeth.
func TestCheckUnbiased(t *testing.T) {
	// A deterministic linear congruential stream keeps the test seeded and
	// library-free.
	lcg := uint64(0x2545F4914F6CDD1D)
	noise := func() float64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return float64(lcg>>11)/(1<<53) - 0.5
	}
	sample := func(center float64, n int) *Welford {
		var w Welford
		for i := 0; i < n; i++ {
			w.Add(center + noise())
		}
		return &w
	}
	t.Run("unbiased sample passes", func(t *testing.T) {
		if err := CheckUnbiased(sample(2.0, 400), 2.0, 4, 1e-9); err != nil {
			t.Fatalf("unbiased sample flagged: %v", err)
		}
	})
	t.Run("biased estimator must fail", func(t *testing.T) {
		// Mean shifted by ~7 standard errors (std≈0.29, n=400 → se≈0.0145).
		err := CheckUnbiased(sample(2.1, 400), 2.0, 4, 1e-9)
		if err == nil {
			t.Fatal("a mean 0.1 off over 400 reps slipped past the z-test: the checker has no teeth")
		}
		if !strings.Contains(err.Error(), "biased estimator") {
			t.Fatalf("want a biased-estimator verdict, got %v", err)
		}
	})
	t.Run("degenerate exact pass", func(t *testing.T) {
		var w Welford
		w.Add(5)
		w.Add(5)
		if err := CheckUnbiased(&w, 5, 4, 1e-12); err != nil {
			t.Fatalf("exact degenerate sample flagged: %v", err)
		}
	})
	t.Run("degenerate off-target fails", func(t *testing.T) {
		var w Welford
		w.Add(5)
		w.Add(5)
		if err := CheckUnbiased(&w, 6, 4, 1e-12); err == nil {
			t.Fatal("constant sample away from target must fail")
		}
	})
	t.Run("too few observations", func(t *testing.T) {
		var w Welford
		w.Add(1)
		if err := CheckUnbiased(&w, 1, 4, 0); err == nil {
			t.Fatal("one observation is not evidence")
		}
	})
}

// TestZScore pins the statistic itself.
func TestZScore(t *testing.T) {
	var w Welford
	for _, x := range []float64{9, 10, 11} { // mean 10, std 1, se 1/sqrt(3)
		w.Add(x)
	}
	if got, want := ZScore(&w, 10, 0), 0.0; got != want {
		t.Fatalf("z at target = %v, want %v", got, want)
	}
	want := (10.0 - 9.0) / (1 / math.Sqrt(3))
	if got := ZScore(&w, 9, 0); !AlmostEqual(got, want, 1e-12) {
		t.Fatalf("z = %v, want %v", got, want)
	}
}

// TestAlmostEqual covers the relative-tolerance helper's corners.
func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1 + 1e-12, 1e-9, true},
		{1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{1, 2, 1e-9, false},
		{0, 1e-12, 1e-9, true},
		{math.NaN(), 1, 1, false},
		{1, math.NaN(), 1, false},
	}
	for _, tc := range cases {
		if got := AlmostEqual(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}
