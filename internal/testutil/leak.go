// Package testutil holds small helpers shared by the test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// GoroutineBaseline samples the current goroutine count after a settling
// GC, for use with WaitNoLeaks around a cancellation scenario.
func GoroutineBaseline() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// WaitNoLeaks polls (goleak-style) until the goroutine count returns to the
// recorded baseline — allowing a small slack for runtime-internal
// goroutines — and fails the test if it never does within the timeout. Call
// it after cancelling work that spawned pools or watchers: a stuck count
// means a leaked goroutine.
func WaitNoLeaks(t testing.TB, baseline int, timeout time.Duration) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(timeout)
	var last int
	for {
		runtime.GC()
		last = runtime.NumGoroutine()
		if last <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d (+%d slack)\n%s",
				last, baseline, slack, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
