package testutil

import (
	"fmt"
	"math"
)

// Welford is a numerically stable streaming accumulator for mean and
// variance (Welford's online algorithm). It deliberately does not share code
// with internal/stats: the test infrastructure that judges the estimator must
// not be built from the code under test. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// SE returns the standard error of the mean (0 with no observations).
func (w *Welford) SE() float64 {
	if w.n == 0 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// ZScore returns the z statistic of the sample mean against target: the
// number of standard errors separating them. A degenerate sample (zero
// spread) yields 0 when the mean sits within tol of the target and +Inf when
// it does not — a deterministic estimator is either exactly right or plainly
// wrong, there is no sampling noise to hide behind.
func ZScore(w *Welford, target, tol float64) float64 {
	se := w.SE()
	if se == 0 {
		if math.Abs(w.Mean()-target) <= tol {
			return 0
		}
		return math.Inf(1)
	}
	return (w.Mean() - target) / se
}

// CheckUnbiased asserts that the accumulated sample is consistent with having
// mean target: |z| must stay within zmax (tol absorbs float round-off for
// degenerate, zero-variance samples). It returns a descriptive error when the
// estimator looks biased — the metamorphic unbiasedness relation's verdict.
func CheckUnbiased(w *Welford, target, zmax, tol float64) error {
	if w.Count() < 2 {
		return fmt.Errorf("testutil: need at least 2 observations, have %d", w.Count())
	}
	z := ZScore(w, target, tol)
	if math.IsNaN(z) || math.Abs(z) > zmax {
		return fmt.Errorf(
			"testutil: biased estimator: mean %.6g vs target %.6g (z=%.2f over %d reps, se=%.3g, |z|max %.2f)",
			w.Mean(), target, z, w.Count(), w.SE(), zmax)
	}
	return nil
}

// AlmostEqual reports whether a and b agree to within a relative-ish
// tolerance: |a−b| ≤ tol·max(1, |a|, |b|). NaNs never compare equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
