package testutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// chtemp moves the test into a fresh directory so golden's relative
// testdata/golden paths land in scratch space.
func chtemp(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatalf("restore wd: %v", err)
		}
	})
	return dir
}

func TestGoldenUpdateThenMatch(t *testing.T) {
	dir := chtemp(t)
	content := []byte("{\n  \"answer\": 42\n}\n")
	if err := golden("trace.json", content, true); err != nil {
		t.Fatalf("update: %v", err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "testdata", "golden", "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(content) {
		t.Fatalf("recorded %q, want %q", onDisk, content)
	}
	if err := golden("trace.json", content, false); err != nil {
		t.Fatalf("replay of identical bytes should pass, got %v", err)
	}
	// Through the public entry point as well.
	Golden(t, "trace.json", content, false)
}

func TestGoldenMismatchWritesArtifact(t *testing.T) {
	dir := chtemp(t)
	if err := golden("trace.json", []byte("a\nb\nc\n"), true); err != nil {
		t.Fatal(err)
	}
	err := golden("trace.json", []byte("a\nB\nc\n"), false)
	if err == nil {
		t.Fatal("mismatch must error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the first differing line, got: %v", err)
	}
	gotPath := filepath.Join(dir, "testdata", "golden", "trace.json.got")
	artifact, rerr := os.ReadFile(gotPath)
	if rerr != nil {
		t.Fatalf("mismatch must leave a .got artifact: %v", rerr)
	}
	if string(artifact) != "a\nB\nc\n" {
		t.Fatalf("artifact holds %q", artifact)
	}
	// A subsequent passing comparison clears the stale artifact.
	if err := golden("trace.json", []byte("a\nb\nc\n"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gotPath); !os.IsNotExist(err) {
		t.Fatalf("stale .got artifact should be removed, stat err: %v", err)
	}
}

func TestGoldenMissingFileMentionsUpdate(t *testing.T) {
	chtemp(t)
	err := golden("never-recorded.json", []byte("x"), false)
	if err == nil {
		t.Fatal("missing golden must error")
	}
	if !strings.Contains(err.Error(), "-update") {
		t.Fatalf("error should point at the -update workflow, got: %v", err)
	}
}

func TestGoldenTruncationDiff(t *testing.T) {
	chtemp(t)
	if err := golden("g", []byte("one\ntwo\n"), true); err != nil {
		t.Fatal(err)
	}
	err := golden("g", []byte("one"), false)
	if err == nil {
		t.Fatal("shorter file must mismatch")
	}
	if !strings.Contains(err.Error(), "line 1") && !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("truncation should locate the divergence, got: %v", err)
	}
	if !strings.Contains(err.Error(), `"two"`) {
		t.Fatalf("diff should quote the missing golden line, got: %v", err)
	}
}

func TestFirstDiffLine(t *testing.T) {
	line, w, g := firstDiffLine([]byte("a\nb"), []byte("a\nc"))
	if line != 2 || w != `"b"` || g != `"c"` {
		t.Fatalf("got line %d want %s got %s", line, w, g)
	}
	// A trailing-newline-only difference must still be located, not
	// reported as a phantom "line 0" match.
	line, w, g = firstDiffLine([]byte("a"), []byte("a\n"))
	if line != 2 || w != "<EOF>" || g != `""` {
		t.Fatalf("trailing newline diff: got line %d want %s got %s", line, w, g)
	}
}

func TestWaitNoLeaksSettles(t *testing.T) {
	base := GoroutineBaseline()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() { <-done }()
	}
	close(done)
	WaitNoLeaks(t, base, 5*time.Second)
}
