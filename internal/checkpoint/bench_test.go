package checkpoint

import (
	"io"
	"path/filepath"
	"testing"

	"unbiasedfl/internal/engine"
)

// BenchmarkCommit measures one round-boundary commit at large-fleet scale
// (20 clients, a few-thousand-weight model): the WAL append plus, every
// round here (Interval 1, the default), the full snapshot rewrite. This is
// the per-round durability tax a checkpointed run pays on top of training.
func BenchmarkCommit(b *testing.B) {
	const clients, rounds, dim = 20, 1 << 30, 4096
	meta := Meta{Label: "bench", Seed: 1, Clients: clients, Rounds: rounds}
	model := make([]float64, dim)
	for i := range model {
		model[i] = float64(i) * 1e-3
	}
	cursors := make([]engine.ClientCursor, clients)
	for i := range cursors {
		cursors[i] = engine.ClientCursor{
			RNG: [4]uint64{1, 2, 3, uint64(i + 1)}, SqCount: 5, SqMean: 0.5,
		}
	}
	st := &engine.RunState{
		Model:   model,
		Sampler: []uint64{9, 8, 7, 6},
		Clients: cursors,
	}
	mgr, err := Create(filepath.Join(b.TempDir(), "bench.ckpt"), meta, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.NextRound = i + 1
		st.History = append(st.History, engine.RoundMetrics{
			Round: i, Participants: 3, ParticipantIDs: []int{0, 1, 2},
		})
		if err := mgr.Commit(st); err != nil {
			b.Fatal(err)
		}
	}
}

// millionCursorSnapshot builds the fleet-scale snapshot the streaming paths
// exist for: 10^6 client cursors (~50MB of state).
func millionCursorSnapshot() *Snapshot {
	const clients = 1_000_000
	cursors := make([]engine.ClientCursor, clients)
	for i := range cursors {
		cursors[i] = engine.ClientCursor{
			RNG:     [4]uint64{uint64(i), 2, 3, 4},
			SqCount: i % 11, SqMean: float64(i) * 0.5,
		}
	}
	return &Snapshot{
		Meta:      Meta{Label: "fleet", Seed: 7, Clients: clients, Rounds: 8},
		NextRound: 2,
		Model:     make([]float64, 512),
		Sampler:   []uint64{1, 2, 3, 4},
		Clients:   cursors,
	}
}

// discardSeeker satisfies io.WriteSeeker without retaining anything, so the
// benchmark measures the writer's own allocations, not the sink's.
type discardSeeker struct{ pos int64 }

func (d *discardSeeker) Write(p []byte) (int, error) { d.pos += int64(len(p)); return len(p), nil }
func (d *discardSeeker) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		d.pos = off
	case io.SeekCurrent:
		d.pos += off
	}
	return d.pos, nil
}

// BenchmarkEncodeSnapshotMillion vs BenchmarkWriteSnapshotMillion: the
// allocs/op gap is the whole-snapshot copies streaming eliminates at 10^6
// client cursors.
func BenchmarkEncodeSnapshotMillion(b *testing.B) {
	snap := millionCursorSnapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteSnapshotMillion(b *testing.B) {
	snap := millionCursorSnapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteSnapshot(&discardSeeker{}, snap); err != nil {
			b.Fatal(err)
		}
	}
}
