package checkpoint

import (
	"path/filepath"
	"testing"

	"unbiasedfl/internal/engine"
)

// BenchmarkCommit measures one round-boundary commit at large-fleet scale
// (20 clients, a few-thousand-weight model): the WAL append plus, every
// round here (Interval 1, the default), the full snapshot rewrite. This is
// the per-round durability tax a checkpointed run pays on top of training.
func BenchmarkCommit(b *testing.B) {
	const clients, rounds, dim = 20, 1 << 30, 4096
	meta := Meta{Label: "bench", Seed: 1, Clients: clients, Rounds: rounds}
	model := make([]float64, dim)
	for i := range model {
		model[i] = float64(i) * 1e-3
	}
	cursors := make([]engine.ClientCursor, clients)
	for i := range cursors {
		cursors[i] = engine.ClientCursor{
			RNG: [4]uint64{1, 2, 3, uint64(i + 1)}, SqCount: 5, SqMean: 0.5,
		}
	}
	st := &engine.RunState{
		Model:   model,
		Sampler: []uint64{9, 8, 7, 6},
		Clients: cursors,
	}
	mgr, err := Create(filepath.Join(b.TempDir(), "bench.ckpt"), meta, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.NextRound = i + 1
		st.History = append(st.History, engine.RoundMetrics{
			Round: i, Participants: 3, ParticipantIDs: []int{0, 1, 2},
		})
		if err := mgr.Commit(st); err != nil {
			b.Fatal(err)
		}
	}
}
