package checkpoint

import (
	"testing"

	"unbiasedfl/internal/engine"
)

// FuzzDecodeCheckpoint throws arbitrary bytes at both decoders. The
// contract under fuzz: corrupt, truncated, or wrong-version input returns an
// error (or, for a WAL, a clean valid prefix) — and never panics.
func FuzzDecodeCheckpoint(f *testing.F) {
	snap, err := EncodeSnapshot(&Snapshot{
		Meta:      Meta{Label: "fuzz", Seed: 3, Clients: 1, Rounds: 4},
		NextRound: 2,
		Model:     []float64{0.5, -1.5},
		Sampler:   []uint64{9},
		Clients:   []engine.ClientCursor{{RNG: [4]uint64{1, 2, 3, 4}, SqCount: 2, SqMean: 0.25}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)

	wal := EncodeWALHeader()
	for r := 0; r < 3; r++ {
		rec, err := EncodeWALRecord(&engine.RoundMetrics{Round: r, Participants: 1, ParticipantIDs: []int{0}})
		if err != nil {
			f.Fatal(err)
		}
		wal = append(wal, rec...)
	}
	f.Add(wal)
	f.Add([]byte(nil))
	f.Add([]byte(snapshotMagic))
	f.Add(append([]byte(walMagic), FormatVersion, 0, 0, 0, 200))
	f.Add(func() []byte { b := append([]byte(nil), snap...); b[len(b)-1] ^= 0xFF; return b }())

	f.Fuzz(func(t *testing.T, b []byte) {
		if s, err := DecodeSnapshot(b); err == nil {
			// Anything that decodes cleanly must satisfy the invariants the
			// resume path relies on.
			if s == nil || s.NextRound < 1 || s.NextRound > s.Meta.Rounds ||
				len(s.Model) == 0 || len(s.Clients) != s.Meta.Clients {
				t.Fatalf("decoded snapshot violates invariants: %+v", s)
			}
		}
		records, tail, err := DecodeWAL(b)
		if err == nil && tail == nil {
			// Clean decode: re-encoding the records must reproduce the input.
			out := EncodeWALHeader()
			for i := range records {
				rec, err := EncodeWALRecord(&records[i])
				if err != nil {
					t.Fatalf("re-encode record %d: %v", i, err)
				}
				out = append(out, rec...)
			}
			if len(out) != len(b) {
				// gob is not canonical byte-for-byte for arbitrary inputs, so
				// only check that the record count survives a second decode.
				records2, tail2, err2 := DecodeWAL(out)
				if err2 != nil || tail2 != nil || len(records2) != len(records) {
					t.Fatalf("re-encoded WAL does not round-trip: %d vs %d records (%v, %v)",
						len(records2), len(records), err2, tail2)
				}
			}
		}
	})
}
