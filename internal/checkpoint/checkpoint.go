// Package checkpoint makes federated runs durable: it persists the engine's
// canonical run state at round boundaries so a killed process can resume and
// finish the run as if it had never stopped.
//
// The invariant this package exists to uphold is byte-identical resume: a
// run killed after any committed round and resumed from its checkpoint
// produces exactly the trace — every round's participant set, every loss,
// every model coordinate, bit for bit — that the uninterrupted run would
// have produced. This holds because a checkpoint carries everything the
// round loop folds forward and nothing that can be re-derived ambiguously:
// the global model vector, the sampler's RNG stream cursors, every client's
// executor cursor (SGD RNG state and gradient-norm accumulator), and the
// accumulated round history. Determinism of the engine does the rest.
//
// On disk a checkpoint is two files:
//
//   - <path> — the snapshot: magic "UFLK", a version byte, then one
//     length-framed, CRC-32-checked gob payload holding Meta plus the
//     resumable state at the most recent snapshotted boundary. It is
//     replaced atomically (write temp, rename), so a reader never observes
//     a half-written snapshot.
//   - <path>.wal — the trace WAL: magic "UFLW", a version byte, then one
//     length-framed, CRC-checked gob record per committed round, appended
//     before the snapshot is replaced. The WAL is what lets a resumed run
//     reproduce the full history (and therefore the full trace) without
//     recomputing rounds that precede the snapshot.
//
// Commit order is WAL-then-snapshot, so a crash can leave the WAL at most
// ahead of the snapshot, never behind; Resume truncates the WAL back to the
// snapshot's boundary. A torn or corrupt WAL tail (a crash mid-append) is
// likewise truncated; a WAL shorter than the snapshot's boundary is
// corruption and refuses to resume. Snapshots may be thinned with
// Options.Interval — the WAL still gets every round, and resume recomputes
// from the last snapshot, preserving the invariant.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"unbiasedfl/internal/engine"
)

// Format constants. The magic strings keep a snapshot and a WAL from ever
// being confused for each other or for a transport stream.
const (
	snapshotMagic = "UFLK"
	walMagic      = "UFLW"
	// FormatVersion is the on-disk format version; decoding any other
	// version fails with ErrBadVersion. Version 2 added the membership
	// epoch counter to the snapshot.
	FormatVersion byte = 2
	headerLen          = 5 // magic + version byte
	// maxFrame bounds a single frame so corrupt length words cannot drive
	// pathological allocations.
	maxFrame = 1 << 28
)

// Decoding errors. All are wrapped with context; match with errors.Is.
var (
	// ErrBadMagic marks a file that is not a checkpoint artifact at all.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrBadVersion marks a checkpoint from an incompatible format version.
	ErrBadVersion = errors.New("checkpoint: unsupported format version")
	// ErrCorrupt marks structural damage: CRC mismatch, truncated frame,
	// undecodable payload, or a WAL shorter than its snapshot's boundary.
	ErrCorrupt = errors.New("checkpoint: corrupt")
	// ErrMetaMismatch marks a checkpoint written by a different run
	// configuration than the one trying to resume from it.
	ErrMetaMismatch = errors.New("checkpoint: run metadata mismatch")
	// ErrNoCheckpoint marks a resume from a path with no snapshot.
	ErrNoCheckpoint = errors.New("checkpoint: no snapshot")
)

// Meta identifies the run a checkpoint belongs to. Resume refuses to load a
// snapshot whose Meta differs from the caller's — resuming under a different
// seed, fleet size, or horizon would silently produce a trace belonging to
// neither run.
type Meta struct {
	// Label names the run (scenario name, experiment id); free-form but
	// compared exactly.
	Label string
	// Seed is the run seed every stream derives from.
	Seed uint64
	// Clients is the fleet size.
	Clients int
	// Rounds is the training horizon.
	Rounds int
}

// Snapshot is the decoded form of the snapshot file: the run identity plus
// the resumable state at a committed round boundary. History is not part of
// the snapshot — it is replayed from the WAL.
type Snapshot struct {
	Meta      Meta
	NextRound int
	// Epoch is the membership epoch at the boundary (0 for a fixed-roster
	// run). The roster itself is re-derived from the run's MembershipPlan on
	// resume; the counter cross-checks that replay.
	Epoch   int
	Model   []float64
	Sampler []uint64
	Clients []engine.ClientCursor
}

// appendFrame appends one length|payload|CRC frame to dst.
func appendFrame(dst, payload []byte) []byte {
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], uint32(len(payload)))
	dst = append(dst, word[:]...)
	dst = append(dst, payload...)
	binary.BigEndian.PutUint32(word[:], crc32.ChecksumIEEE(payload))
	return append(dst, word[:]...)
}

// errShortFrame distinguishes a truncated tail (tolerated by WAL replay)
// from a CRC failure; both wrap ErrCorrupt for external matching.
var errShortFrame = fmt.Errorf("%w: truncated frame", ErrCorrupt)

// readFrame parses one frame from the front of b, returning the payload and
// the total bytes consumed.
func readFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < 8 {
		return nil, 0, errShortFrame
	}
	ln := binary.BigEndian.Uint32(b)
	if ln > maxFrame {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, ln)
	}
	total := 8 + int(ln)
	if len(b) < total {
		return nil, 0, errShortFrame
	}
	payload = b[4 : 4+ln]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[4+ln:]) {
		return nil, 0, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return payload, total, nil
}

// checkHeader validates magic + version.
func checkHeader(b []byte, magic string) error {
	if len(b) < headerLen {
		return fmt.Errorf("%w: %d-byte file", ErrBadMagic, len(b))
	}
	if string(b[:4]) != magic {
		return fmt.Errorf("%w: %q", ErrBadMagic, b[:4])
	}
	if b[4] != FormatVersion {
		return fmt.Errorf("%w: %d (want %d)", ErrBadVersion, b[4], FormatVersion)
	}
	return nil
}

// EncodeSnapshot serializes a snapshot into its on-disk byte form.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode snapshot: %w", err)
	}
	out := make([]byte, 0, headerLen+8+payload.Len())
	out = append(out, snapshotMagic...)
	out = append(out, FormatVersion)
	return appendFrame(out, payload.Bytes()), nil
}

// crcWriter streams bytes through to w while summing them, so a frame's CRC
// and length can be computed without holding the payload.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	cw.n += int64(len(p))
	return cw.w.Write(p)
}

// crcReader mirrors crcWriter on the read side.
type crcReader struct {
	r   io.Reader
	n   int64
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	cr.n += int64(n)
	return n, err
}

// WriteSnapshot streams s to w in exactly the byte form EncodeSnapshot
// produces — header, frame length (patched back once the payload's size is
// known), gob payload, CRC — without ever materializing the encoded
// snapshot: the gob stream goes straight to w through the CRC summer. The
// client-cursor table dominates a large fleet's snapshot, so this bounds
// commit memory at one encoder buffer instead of the three whole-snapshot
// copies of encode-then-write; at 10^6 cursors that is the difference
// between one ~50MB resident copy and ~150MB per snapshot cadence.
func WriteSnapshot(w io.WriteSeeker, s *Snapshot) error {
	start, err := w.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("checkpoint: snapshot seek: %w", err)
	}
	var hdr [headerLen + 4]byte // length word patched in afterwards
	copy(hdr[:], snapshotMagic)
	hdr[4] = FormatVersion
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write snapshot header: %w", err)
	}
	cw := &crcWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encode snapshot: %w", err)
	}
	if cw.n > maxFrame {
		return fmt.Errorf("checkpoint: snapshot payload %d bytes exceeds frame limit %d", cw.n, maxFrame)
	}
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], cw.crc)
	if _, err := w.Write(word[:]); err != nil {
		return fmt.Errorf("checkpoint: write snapshot CRC: %w", err)
	}
	if _, err := w.Seek(start+headerLen, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: snapshot seek: %w", err)
	}
	binary.BigEndian.PutUint32(word[:], uint32(cw.n))
	if _, err := w.Write(word[:]); err != nil {
		return fmt.Errorf("checkpoint: patch snapshot length: %w", err)
	}
	if _, err := w.Seek(start+headerLen+4+cw.n+4, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: snapshot seek: %w", err)
	}
	return nil
}

// ReadSnapshot is DecodeSnapshot over a stream: the client-cursor table
// decodes directly from r (CRC verified behind the decoder), so resuming a
// million-cursor fleet never holds the raw file alongside the decoded
// state. It accepts exactly the inputs DecodeSnapshot accepts, trailing-byte
// check included, and never panics on hostile input.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var hdr [headerLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: %d-byte file", ErrBadMagic, n)
		}
		return nil, fmt.Errorf("checkpoint: read snapshot header: %w", err)
	}
	if err := checkHeader(hdr[:], snapshotMagic); err != nil {
		return nil, err
	}
	var word [4]byte
	if _, err := io.ReadFull(r, word[:]); err != nil {
		return nil, errShortFrame
	}
	ln := int64(binary.BigEndian.Uint32(word[:]))
	if ln > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, ln)
	}
	cr := &crcReader{r: io.LimitReader(r, ln)}
	var s Snapshot
	if err := gob.NewDecoder(cr).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: snapshot gob: %v", ErrCorrupt, err)
	}
	// Finish the CRC over any payload bytes the decoder left behind, then
	// hold the frame to the same standard the in-memory path does.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, fmt.Errorf("checkpoint: drain snapshot payload: %w", err)
	}
	if cr.n != ln {
		return nil, errShortFrame
	}
	if _, err := io.ReadFull(r, word[:]); err != nil {
		return nil, errShortFrame
	}
	if cr.crc != binary.BigEndian.Uint32(word[:]) {
		return nil, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	if _, err := io.ReadFull(r, word[:1]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after snapshot frame", ErrCorrupt)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// DecodeSnapshot parses and validates snapshot bytes. It never panics on
// hostile input: corrupt, truncated, or wrong-version bytes return an error.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if err := checkHeader(b, snapshotMagic); err != nil {
		return nil, err
	}
	payload, n, err := readFrame(b[headerLen:])
	if err != nil {
		return nil, err
	}
	if headerLen+n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot frame", ErrCorrupt, len(b)-headerLen-n)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: snapshot gob: %v", ErrCorrupt, err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// validate applies the structural invariants every decoded snapshot must
// satisfy, whichever path decoded it.
func (s *Snapshot) validate() error {
	if s.NextRound < 1 || s.NextRound > s.Meta.Rounds {
		return fmt.Errorf("%w: snapshot at round boundary %d of a %d-round run", ErrCorrupt, s.NextRound, s.Meta.Rounds)
	}
	if s.Epoch < 0 {
		return fmt.Errorf("%w: snapshot at negative membership epoch %d", ErrCorrupt, s.Epoch)
	}
	if len(s.Model) == 0 {
		return fmt.Errorf("%w: snapshot with empty model", ErrCorrupt)
	}
	if len(s.Clients) != s.Meta.Clients {
		return fmt.Errorf("%w: %d client cursors for a %d-client run", ErrCorrupt, len(s.Clients), s.Meta.Clients)
	}
	return nil
}

// EncodeWALHeader returns the bytes a fresh (empty) WAL file starts with.
func EncodeWALHeader() []byte {
	return append([]byte(walMagic), FormatVersion)
}

// EncodeWALRecord serializes one committed round's metrics as a WAL frame.
func EncodeWALRecord(m *engine.RoundMetrics) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return nil, fmt.Errorf("checkpoint: encode WAL record: %w", err)
	}
	return appendFrame(make([]byte, 0, 8+payload.Len()), payload.Bytes()), nil
}

// parseWAL decodes WAL bytes with valid-prefix semantics: it returns every
// record up to the first damaged frame, plus offsets where offsets[i] is the
// byte position after record i (offsets[0] is the header length), so a
// resumer can truncate the file at an exact record boundary. tail is nil for
// a clean end, or the error that stopped the scan (always wrapping
// ErrCorrupt); header-level problems fail outright.
func parseWAL(b []byte) (records []engine.RoundMetrics, offsets []int64, tail error, err error) {
	if err := checkHeader(b, walMagic); err != nil {
		return nil, nil, nil, err
	}
	offsets = append(offsets, int64(headerLen))
	pos := headerLen
	for pos < len(b) {
		payload, n, err := readFrame(b[pos:])
		if err != nil {
			return records, offsets, err, nil
		}
		var m engine.RoundMetrics
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
			return records, offsets, fmt.Errorf("%w: WAL gob: %v", ErrCorrupt, err), nil
		}
		pos += n
		records = append(records, m)
		offsets = append(offsets, int64(pos))
	}
	return records, offsets, nil, nil
}

// DecodeWAL parses WAL bytes and returns the valid prefix of round records.
// A torn or corrupt tail is reported in tail (wrapping ErrCorrupt) alongside
// the records that precede it; a file that is not a WAL at all fails with a
// nil record slice. Never panics on hostile input.
func DecodeWAL(b []byte) (records []engine.RoundMetrics, tail error, err error) {
	records, _, tail, err = parseWAL(b)
	return records, tail, err
}
