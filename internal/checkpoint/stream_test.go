package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"unbiasedfl/internal/engine"
)

// streamSnapshot builds a snapshot with n client cursors for the streaming
// tests.
func streamSnapshot(n int) *Snapshot {
	cursors := make([]engine.ClientCursor, n)
	for i := range cursors {
		cursors[i] = engine.ClientCursor{
			RNG:     [4]uint64{uint64(i + 1), 2, 3, 4},
			SqCount: i % 7, SqMean: float64(i) * 0.25, SqM2: float64(i) * 0.125,
		}
	}
	return &Snapshot{
		Meta:      Meta{Label: "stream", Seed: 9, Clients: n, Rounds: 12},
		NextRound: 3,
		Model:     []float64{1.5, -2.25, 0.75},
		Sampler:   []uint64{11, 22, 33, 44},
		Clients:   cursors,
	}
}

// TestWriteSnapshotByteIdentical pins the streaming writer's contract: the
// bytes it lands on disk are exactly EncodeSnapshot's, at small and at
// large cursor counts — no format change rode along with the streaming.
func TestWriteSnapshotByteIdentical(t *testing.T) {
	for _, n := range []int{1, 3, 10_000} {
		snap := streamSnapshot(n)
		want, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "snap")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteSnapshot(f, snap); err != nil {
			t.Fatalf("%d cursors: %v", n, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%d cursors: streamed snapshot differs from EncodeSnapshot (%d vs %d bytes)",
				n, len(got), len(want))
		}
	}
}

// TestReadSnapshotEquivalent: the streaming reader accepts exactly what
// DecodeSnapshot accepts and rejects exactly what it rejects.
func TestReadSnapshotEquivalent(t *testing.T) {
	snap := streamSnapshot(5)
	raw, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed decode differs from DecodeSnapshot")
	}

	damage := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrBadMagic},
		{"bad magic", func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { c := append([]byte(nil), b...); c[4] = 99; return c }, ErrBadVersion},
		{"truncated frame", func(b []byte) []byte { return b[:len(b)-6] }, ErrCorrupt},
		{"flipped payload", func(b []byte) []byte { c := append([]byte(nil), b...); c[20] ^= 0x40; return c }, ErrCorrupt},
		{"trailing byte", func(b []byte) []byte { return append(append([]byte(nil), b...), 0) }, ErrCorrupt},
	}
	for _, tc := range damage {
		mutated := tc.mut(raw)
		if _, err := ReadSnapshot(bytes.NewReader(mutated)); !errors.Is(err, tc.want) {
			t.Errorf("%s: ReadSnapshot err %v, want %v", tc.name, err, tc.want)
		}
		if _, err := DecodeSnapshot(mutated); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeSnapshot err %v, want %v — the two paths disagree", tc.name, err, tc.want)
		}
	}
}
