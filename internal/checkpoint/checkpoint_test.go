package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"unbiasedfl/internal/engine"
)

var testMeta = Meta{Label: "test-run", Seed: 7, Clients: 2, Rounds: 8}

// fakeState builds a distinguishable run state at the given boundary, with
// history for rounds 0..boundary-1.
func fakeState(boundary int) *engine.RunState {
	st := &engine.RunState{
		NextRound: boundary,
		Model:     []float64{1.5 * float64(boundary), -0.25, float64(boundary)},
		Sampler:   []uint64{11, 22, 33, uint64(boundary)},
		Clients: []engine.ClientCursor{
			{RNG: [4]uint64{1, 2, 3, uint64(boundary + 1)}, SqCount: boundary, SqMean: 0.5, SqM2: 0.125},
			{RNG: [4]uint64{5, 6, 7, uint64(boundary + 9)}, SqCount: 2 * boundary, SqMean: 1.5, SqM2: 0.25},
		},
	}
	for r := 0; r < boundary; r++ {
		st.History = append(st.History, engine.RoundMetrics{
			Round: r, Participants: 2, ParticipantIDs: []int{0, 1},
			Evaluated: r%2 == 0, GlobalLoss: 0.5 * float64(r), TestAccuracy: 0.1 * float64(r),
		})
	}
	return st
}

// commitThrough creates a checkpoint and commits boundaries 1..k.
func commitThrough(t *testing.T, path string, k int, opts Options) {
	t.Helper()
	m, err := Create(path, testMeta, opts)
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= k; b++ {
		if err := m.Commit(fakeState(b)); err != nil {
			t.Fatalf("commit %d: %v", b, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitResumeRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 5, Options{})

	m, st, err := Resume(path, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if !reflect.DeepEqual(st, fakeState(5)) {
		t.Fatalf("resumed state differs:\n got %+v\nwant %+v", st, fakeState(5))
	}
	if m.NextRound() != 5 {
		t.Fatalf("manager at boundary %d, want 5", m.NextRound())
	}
}

// TestResumeAfterCrashBetweenWALAndSnapshot simulates the one crash window
// the commit order leaves open: the WAL got round k's record but the
// snapshot still says k-1. Resume must fall back to the snapshot boundary
// and truncate the orphaned record so the next commit lands cleanly.
func TestResumeAfterCrashBetweenWALAndSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 3, Options{})

	orphan := fakeState(4)
	rec, err := EncodeWALRecord(&orphan.History[3])
	if err != nil {
		t.Fatal(err)
	}
	wal, err := os.OpenFile(WALPath(path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write(rec); err != nil {
		t.Fatal(err)
	}
	_ = wal.Close()

	m, st, err := Resume(path, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NextRound != 3 || len(st.History) != 3 {
		t.Fatalf("resumed at boundary %d with %d history rounds, want 3/3", st.NextRound, len(st.History))
	}
	// The orphaned record must be gone: boundary 4 commits fresh.
	if err := m.Commit(fakeState(4)); err != nil {
		t.Fatalf("commit after truncation: %v", err)
	}
	_ = m.Close()
	if _, st, err = Resume(path, testMeta, Options{}); err != nil || st.NextRound != 4 {
		t.Fatalf("re-resume: boundary %d, err %v", st.NextRound, err)
	}
}

// TestResumeTruncatesTornTail: a crash mid-append leaves a half-written
// frame; resume drops it and continues.
func TestResumeTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 3, Options{})
	wal, err := os.OpenFile(WALPath(path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte{0, 0, 0, 99, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_ = wal.Close()

	m, st, err := Resume(path, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NextRound != 3 {
		t.Fatalf("boundary %d, want 3", st.NextRound)
	}
	if err := m.Commit(fakeState(4)); err != nil {
		t.Fatalf("commit after torn tail: %v", err)
	}
	_ = m.Close()
}

// TestResumeRefusesShortWAL: a WAL that lost committed records cannot
// reproduce the trace — resume must refuse rather than fabricate history.
func TestResumeRefusesShortWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 4, Options{})
	raw, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	_, offsets, _, err := parseWAL(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(WALPath(path), offsets[2]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, testMeta, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestResumeRejectsMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 2, Options{})
	for name, other := range map[string]Meta{
		"seed":    {Label: testMeta.Label, Seed: 8, Clients: 2, Rounds: 8},
		"label":   {Label: "other", Seed: 7, Clients: 2, Rounds: 8},
		"clients": {Label: testMeta.Label, Seed: 7, Clients: 3, Rounds: 8},
		"rounds":  {Label: testMeta.Label, Seed: 7, Clients: 2, Rounds: 9},
	} {
		if _, _, err := Resume(path, other, Options{}); !errors.Is(err, ErrMetaMismatch) {
			t.Errorf("%s: got %v, want ErrMetaMismatch", name, err)
		}
	}
}

func TestDecodeSnapshotRejectsDamage(t *testing.T) {
	raw, err := EncodeSnapshot(&Snapshot{Meta: testMeta, NextRound: 3,
		Model: []float64{1, 2}, Sampler: []uint64{1}, Clients: fakeState(3).Clients})
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		mutate func([]byte) []byte
		want   error
	}{
		"bad-magic":     {func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		"bad-version":   {func(b []byte) []byte { b[4] = FormatVersion + 1; return b }, ErrBadVersion},
		"flipped-bit":   {func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }, ErrCorrupt},
		"truncated":     {func(b []byte) []byte { return b[:len(b)-3] }, ErrCorrupt},
		"trailing-junk": {func(b []byte) []byte { return append(b, 0xFF) }, ErrCorrupt},
		"empty":         {func(b []byte) []byte { return nil }, ErrBadMagic},
	} {
		b := tc.mutate(append([]byte(nil), raw...))
		if _, err := DecodeSnapshot(b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", name, err, tc.want)
		}
	}
}

// TestResumeOfResume: kill/resume twice; the final history is still the
// uninterrupted sequence.
func TestResumeOfResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 2, Options{})
	m, _, err := Resume(path, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for b := 3; b <= 5; b++ {
		if err := m.Commit(fakeState(b)); err != nil {
			t.Fatal(err)
		}
	}
	_ = m.Close()
	_, st, err := Resume(path, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, fakeState(5)) {
		t.Fatalf("state after resume-of-resume differs: %+v", st)
	}
}

func TestAttach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, st, err := Attach(path, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("fresh attach returned state %+v", st)
	}
	if err := m.Commit(fakeState(1)); err != nil {
		t.Fatal(err)
	}
	_ = m.Close()
	m, st, err = Attach(path, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if st == nil || st.NextRound != 1 {
		t.Fatalf("re-attach returned %+v", st)
	}
}

// TestSnapshotInterval: with Interval 3 the WAL records every round but the
// snapshot lags to the cadence — resume lands on the last snapshot boundary
// and the orphaned WAL records are truncated for recompute.
func TestSnapshotInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 5, Options{Interval: 3})
	m, st, err := Resume(path, testMeta, Options{Interval: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if st.NextRound != 3 || m.NextRound() != 3 {
		t.Fatalf("resumed at boundary %d (manager %d), want 3", st.NextRound, m.NextRound())
	}
	if !reflect.DeepEqual(st, fakeState(3)) {
		t.Fatalf("interval resume state differs: %+v", st)
	}
	// The final boundary always snapshots, cadence or not.
	for b := 4; b <= testMeta.Rounds; b++ {
		if err := m.Commit(fakeState(b)); err != nil {
			t.Fatal(err)
		}
	}
	_, st, err = Resume(path, testMeta, Options{Interval: 3})
	if err != nil || st.NextRound != testMeta.Rounds {
		t.Fatalf("final boundary not snapshotted: %d, %v", st.NextRound, err)
	}
}

func TestCommitRejectsGaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, err := Create(path, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.Commit(fakeState(2)); err == nil {
		t.Fatal("gap commit accepted")
	}
	if err := m.Commit(fakeState(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(fakeState(1)); err == nil {
		t.Fatal("duplicate commit accepted")
	}
}

func TestSyncOptionCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 2, Options{Sync: true})
	_, st, err := Resume(path, testMeta, Options{})
	if err != nil || st.NextRound != 2 {
		t.Fatalf("sync-mode checkpoint unreadable: %v", err)
	}
}

// TestAttachZeroLengthWAL: a crash inside Create — after the WAL file was
// opened and truncated but before its header reached the disk — leaves a
// zero-length WAL next to no snapshot. Attach must classify that as a fresh
// start and recover cleanly, not error.
func TestAttachZeroLengthWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(WALPath(path), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, st, err := Attach(path, testMeta, Options{})
	if err != nil {
		t.Fatalf("attach over a zero-length WAL: %v", err)
	}
	if st != nil {
		t.Fatalf("zero-length WAL produced state %+v, want fresh start", st)
	}
	if err := m.Commit(fakeState(1)); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	_ = m.Close()
	m, st, err = Attach(path, testMeta, Options{})
	if err != nil || st == nil || st.NextRound != 1 {
		t.Fatalf("re-attach after recovery: state %+v, err %v", st, err)
	}
	_ = m.Close()
}

// TestAttachWALEndingInBareTrailer: a crash can tear a WAL append at any
// byte; the trickiest cut leaves exactly 4 bytes — the size of (and here,
// byte-for-byte equal to) a CRC trailer. Attach must treat it as a torn
// tail, truncate back to the last clean record boundary, and resume.
func TestAttachWALEndingInBareTrailer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	commitThrough(t, path, 3, Options{})
	raw, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	clean := int64(len(raw))
	wal, err := os.OpenFile(WALPath(path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Re-append the file's final 4 bytes: a stray, bare CRC trailer.
	if _, err := wal.Write(raw[len(raw)-4:]); err != nil {
		t.Fatal(err)
	}
	_ = wal.Close()

	m, st, err := Attach(path, testMeta, Options{})
	if err != nil {
		t.Fatalf("attach over a bare-trailer tail: %v", err)
	}
	if st == nil || st.NextRound != 3 || len(st.History) != 3 {
		t.Fatalf("resumed state %+v, want boundary 3 with 3 history rounds", st)
	}
	// The torn bytes are gone; the WAL sits at the clean boundary again.
	fi, err := os.Stat(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != clean {
		t.Fatalf("WAL is %d bytes after attach, want %d", fi.Size(), clean)
	}
	if err := m.Commit(fakeState(4)); err != nil {
		t.Fatalf("commit after truncation: %v", err)
	}
	_ = m.Close()
}
