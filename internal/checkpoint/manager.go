package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"unbiasedfl/internal/engine"
)

// Options tunes checkpoint durability and cost.
type Options struct {
	// Interval snapshots every k-th round boundary (0 or 1 = every round).
	// The WAL still receives every round's record, so a sparse snapshot
	// cadence trades resume recompute for per-round write cost without
	// weakening the byte-identical-resume invariant.
	Interval int
	// Sync fsyncs the WAL append and the snapshot rename at every commit.
	// Off by default: the data reaches the page cache at commit, which a
	// process kill (the failure this package defends against, SIGKILL
	// included) cannot lose — only a machine crash can, and callers who need
	// to survive that pay the fsync.
	Sync bool
}

func (o Options) normalized() Options {
	if o.Interval < 1 {
		o.Interval = 1
	}
	return o
}

// Manager owns one checkpoint (snapshot + WAL) for the duration of a run.
// Its Commit method has the engine's OnRoundCommit hook signature, so wiring
// durability into a run is one assignment. Managers are not safe for
// concurrent use; the round loop is sequential.
type Manager struct {
	path string
	meta Meta
	opts Options
	wal  *os.File
	next int // round boundary durably recorded in the WAL
}

// WALPath returns the WAL file path for a snapshot path.
func WALPath(path string) string { return path + ".wal" }

// Create starts a fresh checkpoint at path, discarding any prior snapshot
// and WAL there.
func Create(path string, meta Meta, opts Options) (*Manager, error) {
	if err := validateMeta(meta); err != nil {
		return nil, err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("checkpoint: clear stale snapshot: %w", err)
	}
	wal, err := os.OpenFile(WALPath(path), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: create WAL: %w", err)
	}
	if _, err := wal.Write(EncodeWALHeader()); err != nil {
		_ = wal.Close()
		return nil, fmt.Errorf("checkpoint: write WAL header: %w", err)
	}
	m := &Manager{path: path, meta: meta, opts: opts.normalized(), wal: wal}
	if err := m.maybeSync(); err != nil {
		_ = wal.Close()
		return nil, err
	}
	return m, nil
}

// Resume loads the checkpoint at path, verifies it belongs to the run
// described by meta, reconciles the WAL with the snapshot (truncating a
// torn tail or records past the snapshot boundary), and returns a manager
// positioned to continue committing plus the state to hand the engine via
// Spec.Resume.
func Resume(path string, meta Meta, opts Options) (*Manager, *engine.RunState, error) {
	if err := validateMeta(meta); err != nil {
		return nil, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("%w at %s", ErrNoCheckpoint, path)
		}
		return nil, nil, fmt.Errorf("checkpoint: read snapshot: %w", err)
	}
	// Stream the decode: a large fleet's cursor table lands directly in the
	// returned state, never alongside a whole-file buffer.
	snap, err := ReadSnapshot(f)
	_ = f.Close()
	if err != nil {
		return nil, nil, err
	}
	if snap.Meta != meta {
		return nil, nil, fmt.Errorf("%w: snapshot %+v, run %+v", ErrMetaMismatch, snap.Meta, meta)
	}

	rawWAL, err := os.ReadFile(WALPath(path))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: snapshot at boundary %d but WAL unreadable: %v", ErrCorrupt, snap.NextRound, err)
	}
	records, offsets, tail, err := parseWAL(rawWAL)
	if err != nil {
		return nil, nil, err
	}
	// The commit order (WAL first, snapshot second) guarantees the WAL is
	// never behind a snapshot that reached disk. A shorter WAL means the
	// history needed to reproduce the trace is gone — refuse.
	if len(records) < snap.NextRound {
		return nil, nil, fmt.Errorf("%w: WAL holds %d rounds, snapshot at boundary %d (tail: %v)",
			ErrCorrupt, len(records), snap.NextRound, tail)
	}
	for i := 0; i < snap.NextRound; i++ {
		if records[i].Round != i {
			return nil, nil, fmt.Errorf("%w: WAL record %d is for round %d", ErrCorrupt, i, records[i].Round)
		}
	}

	wal, err := os.OpenFile(WALPath(path), os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: reopen WAL: %w", err)
	}
	// Drop records past the snapshot (a crash between WAL append and
	// snapshot rename) and any torn tail, so appends resume at a clean
	// record boundary.
	if err := wal.Truncate(offsets[snap.NextRound]); err != nil {
		_ = wal.Close()
		return nil, nil, fmt.Errorf("checkpoint: truncate WAL: %w", err)
	}
	if _, err := wal.Seek(0, 2); err != nil {
		_ = wal.Close()
		return nil, nil, fmt.Errorf("checkpoint: seek WAL: %w", err)
	}

	st := &engine.RunState{
		NextRound: snap.NextRound,
		Epoch:     snap.Epoch,
		Model:     snap.Model,
		Sampler:   snap.Sampler,
		Clients:   snap.Clients,
		History:   records[:snap.NextRound],
	}
	m := &Manager{path: path, meta: meta, opts: opts.normalized(), wal: wal, next: snap.NextRound}
	return m, st, nil
}

// Attach resumes the checkpoint at path if a snapshot exists there and
// creates a fresh one otherwise. A nil returned state means a fresh start.
func Attach(path string, meta Meta, opts Options) (*Manager, *engine.RunState, error) {
	m, st, err := Resume(path, meta, opts)
	if errors.Is(err, ErrNoCheckpoint) {
		m, err := Create(path, meta, opts)
		return m, nil, err
	}
	return m, st, err
}

// Commit makes the round boundary in st durable: it appends the just-
// finished round's metrics to the WAL, then (on the snapshot cadence)
// atomically replaces the snapshot. It has the signature of
// engine.Spec.OnRoundCommit and is safe to assign there directly; the
// engine hands it reused state buffers, and everything is serialized before
// returning, so nothing is retained.
func (m *Manager) Commit(st *engine.RunState) error {
	if m.wal == nil {
		return errors.New("checkpoint: commit on closed manager")
	}
	if st.NextRound != m.next+1 {
		return fmt.Errorf("checkpoint: commit for boundary %d, WAL at %d", st.NextRound, m.next)
	}
	if len(st.History) != st.NextRound {
		return fmt.Errorf("checkpoint: %d history rounds at boundary %d", len(st.History), st.NextRound)
	}
	rec, err := EncodeWALRecord(&st.History[st.NextRound-1])
	if err != nil {
		return err
	}
	if _, err := m.wal.Write(rec); err != nil {
		return fmt.Errorf("checkpoint: append WAL: %w", err)
	}
	if m.opts.Sync {
		if err := m.wal.Sync(); err != nil {
			return fmt.Errorf("checkpoint: sync WAL: %w", err)
		}
	}
	m.next = st.NextRound
	if st.NextRound%m.opts.Interval != 0 && st.NextRound != m.meta.Rounds {
		return nil
	}
	return m.writeSnapshot(st)
}

// writeSnapshot atomically replaces the snapshot file: stream-encode to a
// temp file in the same directory, rename over the target. Streaming keeps
// the commit's memory at one encoder buffer even when the client-cursor
// table runs to millions of entries.
func (m *Manager) writeSnapshot(st *engine.RunState) error {
	tmp := m.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create snapshot temp: %w", err)
	}
	if err := WriteSnapshot(f, &Snapshot{
		Meta:      m.meta,
		NextRound: st.NextRound,
		Epoch:     st.Epoch,
		Model:     st.Model,
		Sampler:   st.Sampler,
		Clients:   st.Clients,
	}); err != nil {
		_ = f.Close()
		return err
	}
	if m.opts.Sync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("checkpoint: sync snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, m.path); err != nil {
		return fmt.Errorf("checkpoint: publish snapshot: %w", err)
	}
	return m.maybeSync()
}

// maybeSync fsyncs the checkpoint's directory when Sync is on, making the
// rename itself durable against machine crashes.
func (m *Manager) maybeSync() error {
	if !m.opts.Sync {
		return nil
	}
	dir, err := os.Open(filepath.Dir(m.path))
	if err != nil {
		return fmt.Errorf("checkpoint: open dir for sync: %w", err)
	}
	defer func() { _ = dir.Close() }()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// NextRound reports the round boundary recorded in the WAL so far.
func (m *Manager) NextRound() int { return m.next }

// Close releases the WAL handle. The snapshot on disk stays valid.
func (m *Manager) Close() error {
	if m.wal == nil {
		return nil
	}
	err := m.wal.Close()
	m.wal = nil
	if err != nil {
		return fmt.Errorf("checkpoint: close WAL: %w", err)
	}
	return nil
}

func validateMeta(meta Meta) error {
	if meta.Clients < 1 || meta.Rounds < 1 {
		return fmt.Errorf("checkpoint: invalid run metadata %+v", meta)
	}
	return nil
}
