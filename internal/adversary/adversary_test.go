package adversary

import (
	"math"
	"strings"
	"testing"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/tensor"
)

func truthParams() *game.Params {
	return &game.Params{
		A:     []float64{0.25, 0.25, 0.5},
		G:     []float64{10, 10, 10},
		C:     []float64{50, 60, 70},
		V:     []float64{500, 800, 1200},
		Alpha: 0.5,
		R:     1000,
		B:     40,
		QMax:  1,
		QMin:  game.DefaultQMin,
	}
}

func TestReportedParamsHonestPathIsTruth(t *testing.T) {
	truth := truthParams()
	got, err := ReportedParams(truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != truth {
		t.Fatal("no misreports must return the truth itself, not a clone")
	}
}

func TestReportedParamsDistortsOnlyTheLiar(t *testing.T) {
	truth := truthParams()
	got, err := ReportedParams(truth, []Misreport{{Client: 1, Factor: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got == truth {
		t.Fatal("a misreport must clone, never mutate the truth")
	}
	if truth.C[1] != 60 {
		t.Fatalf("truth mutated: C[1] = %v", truth.C[1])
	}
	want := []float64{50, 180, 70}
	for n, c := range got.C {
		if c != want[n] {
			t.Errorf("reported C[%d] = %v, want %v", n, c, want[n])
		}
	}
}

func TestReportedParamsErrors(t *testing.T) {
	cases := []struct {
		name string
		rep  Misreport
		want string
	}{
		{"client out of range", Misreport{Client: 3, Factor: 2}, "out of range"},
		{"negative client", Misreport{Client: -1, Factor: 2}, "out of range"},
		{"zero factor", Misreport{Client: 0, Factor: 0}, "positive and finite"},
		{"negative factor", Misreport{Client: 0, Factor: -2}, "positive and finite"},
		{"NaN factor", Misreport{Client: 0, Factor: math.NaN()}, "positive and finite"},
		{"Inf factor", Misreport{Client: 0, Factor: math.Inf(1)}, "positive and finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReportedParams(truthParams(), []Misreport{tc.rep})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestQFactors(t *testing.T) {
	if out, err := QFactors(4, nil); out != nil || err != nil {
		t.Fatalf("obedient fleet must compile to (nil, nil), got (%v, %v)", out, err)
	}
	out, err := QFactors(4, []Deviation{{Client: 2, Factor: 0.5}, {Client: 3, Factor: 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0.5, 0}
	for n, f := range out {
		if f != want[n] {
			t.Errorf("QFactor[%d] = %v, want %v", n, f, want[n])
		}
	}
	for _, bad := range []Deviation{
		{Client: 4, Factor: 1},
		{Client: 0, Factor: -0.1},
		{Client: 0, Factor: math.NaN()},
		{Client: 0, Factor: math.Inf(1)},
	} {
		if _, err := QFactors(4, []Deviation{bad}); err == nil {
			t.Errorf("QFactors accepted %+v", bad)
		}
	}
}

func TestTamperScalesOnlyThePoisonerFromItsRound(t *testing.T) {
	hook, err := Tamper(3, []Poison{{Client: 1, Factor: -2, FromRound: 4}})
	if err != nil {
		t.Fatal(err)
	}
	upd := func(client int) *engine.ClientUpdate {
		return &engine.ClientUpdate{Client: client, Delta: tensor.Vec{1, 2}}
	}
	if u := upd(1); true {
		hook(3, u)
		if u.Delta[0] != 1 || u.Delta[1] != 2 {
			t.Fatalf("poison fired before FromRound: %v", u.Delta)
		}
	}
	for _, round := range []int{4, 9} {
		u := upd(1)
		hook(round, u)
		if u.Delta[0] != -2 || u.Delta[1] != -4 {
			t.Fatalf("round %d: delta = %v, want [-2 -4]", round, u.Delta)
		}
	}
	u := upd(0)
	hook(7, u)
	if u.Delta[0] != 1 || u.Delta[1] != 2 {
		t.Fatalf("honest client tampered: %v", u.Delta)
	}
}

func TestTamperErrors(t *testing.T) {
	if hook, err := Tamper(3, nil); hook != nil || err != nil {
		t.Fatalf("honest fleet must compile to a nil hook and nil error, got err %v", err)
	}
	for _, bad := range []Poison{
		{Client: 3, Factor: 1},
		{Client: -1, Factor: 1},
		{Client: 0, Factor: math.NaN()},
		{Client: 0, Factor: math.Inf(-1)},
		{Client: 0, Factor: 1, FromRound: -1},
	} {
		if _, err := Tamper(3, []Poison{bad}); err == nil {
			t.Errorf("Tamper accepted %+v", bad)
		}
	}
}
