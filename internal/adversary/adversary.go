// Package adversary models strategic and malicious client behaviours — the
// attack surface of the paper's mechanism. The pricing game of Section III
// assumes clients report their true marginal costs, follow the priced
// participation probabilities q, and send honest local updates; this package
// provides the three canonical violations, each compiled onto the seam of
// the pipeline stage it attacks:
//
//   - Misreport (Stage-I): a client inflates or deflates the cost c_n it
//     reports, so the server prices — and budgets — a market that does not
//     exist. Compiled via ReportedParams into the game the pricing scheme
//     solves, while the true Params keep scoring utilities.
//   - Deviation (Stage-II): a client participates with Factor·q_n instead of
//     the q_n its price induced. Compiled via QFactors into
//     engine.FaultSchedule.QFactor, where the sampler realizes it without
//     disturbing any other client's coin stream.
//   - Poison (training): a client scales (e.g. sign-flips) the model delta
//     it returns from FromRound onward. Compiled via Tamper into
//     engine.Spec.Tamper, orchestrator-side, so the attack is identical on
//     every execution backend.
//
// The scenario layer composes these from FaultMisreport / FaultDeviate /
// FaultPoison schedule entries and records the resulting equilibrium and
// accuracy degradation in the trace's adversary section.
package adversary

import (
	"fmt"
	"math"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/game"
)

// Misreport is a Stage-I cost misreport: the client reports Factor× its true
// marginal cost c_n to the pricing mechanism.
type Misreport struct {
	Client int
	Factor float64 // > 0 and finite; 1 is truthful
}

// Deviation is a Stage-II strategic deviation: the client participates with
// probability Factor·q_n instead of the priced q_n.
type Deviation struct {
	Client int
	Factor float64 // >= 0 and finite; 1 is obedient, 0 is full defection
}

// Poison is a gradient-poisoning behaviour: from round FromRound onward the
// client's model delta is scaled by Factor before aggregation. Negative
// factors flip the update's direction; magnitudes above one amplify it; zero
// suppresses it entirely.
type Poison struct {
	Client    int
	Factor    float64 // finite; 1 is honest
	FromRound int
}

// ReportedParams returns the game the server actually sees: a clone of truth
// whose cost entries carry the misreports. truth is never mutated — it keeps
// scoring true utilities and clamping q. With no misreports it returns truth
// itself, so the honest path costs nothing.
func ReportedParams(truth *game.Params, reps []Misreport) (*game.Params, error) {
	if len(reps) == 0 {
		return truth, nil
	}
	p := truth.Clone()
	for _, m := range reps {
		if m.Client < 0 || m.Client >= p.N() {
			return nil, fmt.Errorf("adversary: misreporting client %d out of range [0,%d)", m.Client, p.N())
		}
		if !(m.Factor > 0) || math.IsInf(m.Factor, 0) {
			return nil, fmt.Errorf("adversary: client %d misreport factor %v must be positive and finite", m.Client, m.Factor)
		}
		p.C[m.Client] *= m.Factor
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: misreported game invalid: %w", err)
	}
	return p, nil
}

// QFactors compiles deviations into the engine's per-client willingness
// multiplier vector (nil when every client is obedient, the zero-cost honest
// path).
func QFactors(n int, devs []Deviation) ([]float64, error) {
	if len(devs) == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	for _, d := range devs {
		if d.Client < 0 || d.Client >= n {
			return nil, fmt.Errorf("adversary: deviating client %d out of range [0,%d)", d.Client, n)
		}
		if d.Factor < 0 || math.IsNaN(d.Factor) || math.IsInf(d.Factor, 0) {
			return nil, fmt.Errorf("adversary: client %d deviation factor %v must be finite and non-negative", d.Client, d.Factor)
		}
		out[d.Client] = d.Factor
	}
	return out, nil
}

// Tamper compiles poisons into the orchestrator's update-tampering hook (nil
// when there are no poisoners). The hook scales a poisoner's delta in place
// from its FromRound onward; honest participants pass through untouched.
func Tamper(n int, poisons []Poison) (func(round int, u *engine.ClientUpdate), error) {
	if len(poisons) == 0 {
		return nil, nil
	}
	byClient := make(map[int]Poison, len(poisons))
	for _, p := range poisons {
		if p.Client < 0 || p.Client >= n {
			return nil, fmt.Errorf("adversary: poisoning client %d out of range [0,%d)", p.Client, n)
		}
		if math.IsNaN(p.Factor) || math.IsInf(p.Factor, 0) {
			return nil, fmt.Errorf("adversary: client %d poison factor %v must be finite", p.Client, p.Factor)
		}
		if p.FromRound < 0 {
			return nil, fmt.Errorf("adversary: client %d poison round %d must be non-negative", p.Client, p.FromRound)
		}
		byClient[p.Client] = p
	}
	return func(round int, u *engine.ClientUpdate) {
		p, ok := byClient[u.Client]
		if !ok || round < p.FromRound {
			return
		}
		u.Delta.Scale(p.Factor)
	}, nil
}
