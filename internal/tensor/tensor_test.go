package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestVecZeroFill(t *testing.T) {
	v := NewVec(4)
	v.Fill(2.5)
	for _, x := range v {
		if x != 2.5 {
			t.Fatalf("fill failed: %v", v)
		}
	}
	v.Zero()
	for _, x := range v {
		if x != 0 {
			t.Fatalf("zero failed: %v", v)
		}
	}
}

func TestAddScaled(t *testing.T) {
	v := Vec{1, 2, 3}
	if err := v.AddScaled(2, Vec{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	want := Vec{3, 4, 5}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("got %v", v)
		}
	}
	if err := v.AddScaled(1, Vec{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestDotNormSub(t *testing.T) {
	d, err := Dot(Vec{1, 2, 3}, Vec{4, 5, 6})
	if err != nil || d != 32 {
		t.Fatalf("dot %v err %v", d, err)
	}
	if _, err := Dot(Vec{1}, Vec{1, 2}); err == nil {
		t.Fatal("expected mismatch error")
	}
	v := Vec{3, 4}
	if v.Norm2() != 5 {
		t.Fatalf("norm %v", v.Norm2())
	}
	if v.SqNorm() != 25 {
		t.Fatalf("sqnorm %v", v.SqNorm())
	}
	s, err := Sub(Vec{5, 5}, Vec{2, 3})
	if err != nil || s[0] != 3 || s[1] != 2 {
		t.Fatalf("sub %v err %v", s, err)
	}
	a, err := Add(Vec{1, 2}, Vec{3, 4})
	if err != nil || a[0] != 4 || a[1] != 6 {
		t.Fatalf("add %v err %v", a, err)
	}
}

func TestCopyFrom(t *testing.T) {
	v := NewVec(3)
	if err := v.CopyFrom(Vec{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if v[2] != 3 {
		t.Fatalf("copy failed: %v", v)
	}
	if err := v.CopyFrom(Vec{1}); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestWeightedSum(t *testing.T) {
	out, err := WeightedSum([]float64{0.5, 2}, []Vec{{2, 4}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 4 {
		t.Fatalf("weighted sum %v", out)
	}
	if _, err := WeightedSum([]float64{1}, []Vec{{1}, {2}}); err == nil {
		t.Fatal("expected count mismatch error")
	}
	if _, err := WeightedSum(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := WeightedSum([]float64{1, 1}, []Vec{{1, 2}, {1}}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestMaxAbsIsFinite(t *testing.T) {
	v := Vec{-7, 3}
	if v.MaxAbs() != 7 {
		t.Fatalf("maxabs %v", v.MaxAbs())
	}
	if !v.IsFinite() {
		t.Fatal("finite vector misreported")
	}
	if (Vec{1, math.NaN()}).IsFinite() {
		t.Fatal("NaN not caught")
	}
	if (Vec{math.Inf(1)}).IsFinite() {
		t.Fatal("Inf not caught")
	}
}

func TestMatBasics(t *testing.T) {
	m, err := NewMat(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("set/at mismatch")
	}
	if got := m.Row(1); got[2] != 5 {
		t.Fatalf("row view %v", got)
	}
	if _, err := NewMat(-1, 2); err == nil {
		t.Fatal("expected error for negative dims")
	}
}

func TestMatMulVec(t *testing.T) {
	m, _ := NewMat(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	out := NewVec(2)
	if err := m.MulVec(Vec{1, 1}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 7 {
		t.Fatalf("mulvec %v", out)
	}
	if err := m.MulVec(Vec{1}, out); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMatAddOuterScaledAndClone(t *testing.T) {
	m, _ := NewMat(2, 2)
	if err := m.AddOuterScaled(2, Vec{1, 0}, Vec{3, 4}); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 6 || m.At(0, 1) != 8 || m.At(1, 0) != 0 {
		t.Fatalf("outer %v", m.Data)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 6 {
		t.Fatal("clone shares storage")
	}
	if err := m.AddOuterScaled(1, Vec{1}, Vec{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSoftmaxLogSumExp(t *testing.T) {
	v := Vec{1000, 1000, 1000}
	lse, err := LogSumExp(v)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 + math.Log(3)
	if math.Abs(lse-want) > 1e-9 {
		t.Fatalf("lse %v want %v", lse, want)
	}
	if err := SoftmaxInPlace(v); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range v {
		if math.Abs(x-1.0/3) > 1e-9 {
			t.Fatalf("softmax %v", v)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sum %v", sum)
	}
	if _, err := LogSumExp(nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestArgMaxClamp(t *testing.T) {
	i, err := ArgMax(Vec{1, 5, 5, 2})
	if err != nil || i != 1 {
		t.Fatalf("argmax %d err %v", i, err)
	}
	if _, err := ArgMax(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
}

func TestQuickSoftmaxSumsToOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, x := range []float64{a, b, c} {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 500 {
				return true // skip degenerate quick inputs
			}
		}
		v := Vec{a, b, c}
		if err := SoftmaxInPlace(v); err != nil {
			return false
		}
		var sum float64
		for _, x := range v {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWeightedSumLinearity(t *testing.T) {
	f := func(w1, w2 float64) bool {
		if math.IsNaN(w1) || math.IsNaN(w2) || math.Abs(w1) > 1e6 || math.Abs(w2) > 1e6 {
			return true
		}
		v1, v2 := Vec{1, 2}, Vec{3, -1}
		out, err := WeightedSum([]float64{w1, w2}, []Vec{v1, v2})
		if err != nil {
			return false
		}
		return math.Abs(out[0]-(w1+3*w2)) < 1e-6 && math.Abs(out[1]-(2*w1-w2)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
