package tensor

import (
	"errors"
	"math"
)

// This file implements the blocked, unrolled kernels behind the batched
// gradient path: X·Wᵀ products over row-sliced inputs, row-wise softmax, and
// the Pᵀ·X gradient accumulation. The micro-kernels process four matrix rows
// per pass and keep four independent accumulators per output, which breaks
// the floating-point add latency chain that limits a naive dot-product loop
// and reuses each loaded input element across four rows. All kernels are
// allocation-free: callers provide every buffer.

// dotUnrolled returns the inner product of a and b (equal lengths) using four
// independent accumulators.
func dotUnrolled(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot4Rows computes four inner products against a shared right-hand side,
// loading each x element once.
func dot4Rows(w0, w1, w2, w3, x []float64) (s0, s1, s2, s3 float64) {
	n := len(x)
	w0, w1, w2, w3 = w0[:n], w1[:n], w2[:n], w3[:n]
	for j := 0; j < n; j++ {
		xv := x[j]
		s0 += w0[j] * xv
		s1 += w1[j] * xv
		s2 += w2[j] * xv
		s3 += w3[j] * xv
	}
	return
}

// dot4Rows2 is the 2×4 micro-kernel: four matrix rows against two shared
// right-hand sides. Each w element is loaded once for two outputs, halving
// the load traffic per flop relative to two dot4Rows passes.
func dot4Rows2(w0, w1, w2, w3, x, y []float64) (s0, s1, s2, s3, t0, t1, t2, t3 float64) {
	n := len(x)
	w0, w1, w2, w3, y = w0[:n], w1[:n], w2[:n], w3[:n], y[:n]
	for j := 0; j < n; j++ {
		xv, yv := x[j], y[j]
		r0, r1, r2, r3 := w0[j], w1[j], w2[j], w3[j]
		s0 += r0 * xv
		s1 += r1 * xv
		s2 += r2 * xv
		s3 += r3 * xv
		t0 += r0 * yv
		t1 += r1 * yv
		t2 += r2 * yv
		t3 += r3 * yv
	}
	return
}

// mulRowsT computes out[c] = dot(w[c*k:(c+1)*k], x) (+ bias[c] when bias is
// non-nil) for c in [0, rows), four rows at a time.
func mulRowsT(w, bias Vec, k, rows int, x, out []float64) {
	c := 0
	for ; c+3 < rows; c += 4 {
		base := c * k
		s0, s1, s2, s3 := dot4Rows(
			w[base:base+k], w[base+k:base+2*k],
			w[base+2*k:base+3*k], w[base+3*k:base+4*k], x)
		if bias != nil {
			s0 += bias[c]
			s1 += bias[c+1]
			s2 += bias[c+2]
			s3 += bias[c+3]
		}
		out[c], out[c+1], out[c+2], out[c+3] = s0, s1, s2, s3
	}
	for ; c < rows; c++ {
		s := dotUnrolled(w[c*k:(c+1)*k], x)
		if bias != nil {
			s += bias[c]
		}
		out[c] = s
	}
}

// MatMulT computes out = a·bᵀ, where a is m×k, b is n×k, and out is m×n.
func MatMulT(a, b, out *Mat) error {
	if a == nil || b == nil || out == nil {
		return errors.New("tensor: nil matrix in MatMulT")
	}
	if a.Cols != b.Cols {
		return errors.New("tensor: inner dimension mismatch in MatMulT")
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		return errors.New("tensor: output shape mismatch in MatMulT")
	}
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		mulRowsT(b.Data, nil, k, b.Rows, a.Data[i*k:(i+1)*k], out.Data[i*out.Cols:(i+1)*out.Cols])
	}
	return nil
}

// LogitsBatch computes the batched affine scores Z = X·Wᵀ + 1·biasᵀ:
// out[i*classes+c] = dot(w[c*dim:(c+1)*dim], xs[i]) + bias[c]. The rows of X
// are the (possibly non-contiguous) slices xs, which lets datasets keep
// per-sample feature vectors without a packing copy. bias may be nil.
func LogitsBatch(xs [][]float64, w, bias Vec, dim, classes int, out Vec) error {
	if dim <= 0 || classes <= 0 {
		return errors.New("tensor: non-positive shape in LogitsBatch")
	}
	if len(w) != classes*dim {
		return errors.New("tensor: weight length mismatch in LogitsBatch")
	}
	if bias != nil && len(bias) != classes {
		return errors.New("tensor: bias length mismatch in LogitsBatch")
	}
	if len(out) != len(xs)*classes {
		return errors.New("tensor: output length mismatch in LogitsBatch")
	}
	for _, x := range xs {
		if len(x) != dim {
			return errors.New("tensor: input row length mismatch in LogitsBatch")
		}
	}
	i := 0
	for ; i+1 < len(xs); i += 2 {
		mulRows2T(w, bias, dim, classes, xs[i], xs[i+1],
			out[i*classes:(i+1)*classes], out[(i+1)*classes:(i+2)*classes])
	}
	if i < len(xs) {
		mulRowsT(w, bias, dim, classes, xs[i], out[i*classes:(i+1)*classes])
	}
	return nil
}

// mulRows2T scores two samples per pass through the weight rows.
func mulRows2T(w, bias Vec, k, rows int, x, y, outX, outY []float64) {
	c := 0
	for ; c+3 < rows; c += 4 {
		base := c * k
		s0, s1, s2, s3, t0, t1, t2, t3 := dot4Rows2(
			w[base:base+k], w[base+k:base+2*k],
			w[base+2*k:base+3*k], w[base+3*k:base+4*k], x, y)
		if bias != nil {
			b0, b1, b2, b3 := bias[c], bias[c+1], bias[c+2], bias[c+3]
			s0 += b0
			s1 += b1
			s2 += b2
			s3 += b3
			t0 += b0
			t1 += b1
			t2 += b2
			t3 += b3
		}
		outX[c], outX[c+1], outX[c+2], outX[c+3] = s0, s1, s2, s3
		outY[c], outY[c+1], outY[c+2], outY[c+3] = t0, t1, t2, t3
	}
	for ; c+1 < rows; c += 2 {
		base := c * k
		s0, s1, t0, t1 := dot2Rows2(w[base:base+k], w[base+k:base+2*k], x, y)
		if bias != nil {
			b0, b1 := bias[c], bias[c+1]
			s0 += b0
			s1 += b1
			t0 += b0
			t1 += b1
		}
		outX[c], outX[c+1] = s0, s1
		outY[c], outY[c+1] = t0, t1
	}
	if c < rows {
		row := w[c*k : (c+1)*k]
		s := dotUnrolled(row, x)
		t := dotUnrolled(row, y)
		if bias != nil {
			s += bias[c]
			t += bias[c]
		}
		outX[c], outY[c] = s, t
	}
}

// dot2Rows2 is the 2×2 tail micro-kernel of mulRows2T.
func dot2Rows2(w0, w1, x, y []float64) (s0, s1, t0, t1 float64) {
	n := len(x)
	w0, w1, y = w0[:n], w1[:n], y[:n]
	for j := 0; j < n; j++ {
		xv, yv := x[j], y[j]
		r0, r1 := w0[j], w1[j]
		s0 += r0 * xv
		s1 += r1 * xv
		t0 += r0 * yv
		t1 += r1 * yv
	}
	return
}

// SoftmaxRows applies a stable softmax to each row of the rows×cols matrix
// stored row-major in p, in place.
func SoftmaxRows(p Vec, rows, cols int) error {
	if rows < 0 || cols <= 0 {
		return errors.New("tensor: non-positive shape in SoftmaxRows")
	}
	if len(p) != rows*cols {
		return errors.New("tensor: length mismatch in SoftmaxRows")
	}
	for i := 0; i < rows; i++ {
		row := p[i*cols : (i+1)*cols]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - m)
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
	return nil
}

// AddScaledTMul accumulates the batched outer-product gradient G += s·Pᵀ·X:
// g[c*dim:(c+1)*dim] += s · Σ_i p[i*classes+c] · xs[i]. Classes are blocked
// four at a time so each sample row is loaded once per block, and samples
// two (or four) at a time to halve the read-modify-write traffic on g. For
// every class the samples accumulate in ascending i order with a fixed
// grouping, so results are fully deterministic (the pairwise grouping can
// differ from a naive per-sample loop by ~1 ulp per term).
func AddScaledTMul(s float64, xs [][]float64, p Vec, classes, dim int, g Vec) error {
	if dim <= 0 || classes <= 0 {
		return errors.New("tensor: non-positive shape in AddScaledTMul")
	}
	if len(p) != len(xs)*classes {
		return errors.New("tensor: probability length mismatch in AddScaledTMul")
	}
	if len(g) != classes*dim {
		return errors.New("tensor: gradient length mismatch in AddScaledTMul")
	}
	for _, x := range xs {
		if len(x) != dim {
			return errors.New("tensor: input row length mismatch in AddScaledTMul")
		}
	}
	c := 0
	for ; c+3 < classes; c += 4 {
		g0 := g[c*dim : (c+1)*dim]
		g1 := g[(c+1)*dim : (c+2)*dim]
		g2 := g[(c+2)*dim : (c+3)*dim]
		g3 := g[(c+3)*dim : (c+4)*dim]
		i := 0
		for ; i+1 < len(xs); i += 2 {
			off, off2 := i*classes+c, (i+1)*classes+c
			axpy4x2(
				s*p[off], s*p[off+1], s*p[off+2], s*p[off+3],
				s*p[off2], s*p[off2+1], s*p[off2+2], s*p[off2+3],
				xs[i], xs[i+1], g0, g1, g2, g3)
		}
		if i < len(xs) {
			off := i*classes + c
			axpy4(s*p[off], s*p[off+1], s*p[off+2], s*p[off+3], xs[i], g0, g1, g2, g3)
		}
	}
	for ; c+1 < classes; c += 2 {
		g0 := g[c*dim : (c+1)*dim]
		g1 := g[(c+1)*dim : (c+2)*dim]
		i := 0
		for ; i+1 < len(xs); i += 2 {
			off, off2 := i*classes+c, (i+1)*classes+c
			axpy2x2(s*p[off], s*p[off+1], s*p[off2], s*p[off2+1],
				xs[i], xs[i+1], g0, g1)
		}
		if i < len(xs) {
			off := i*classes + c
			p0, p1 := s*p[off], s*p[off+1]
			x := xs[i]
			for j, xv := range x {
				g0[j] += p0 * xv
				g1[j] += p1 * xv
			}
		}
	}
	if c < classes {
		gr := g[c*dim : (c+1)*dim]
		i := 0
		for ; i+3 < len(xs); i += 4 {
			base := i * classes
			axpy1x4(
				s*p[base+c], s*p[base+classes+c],
				s*p[base+2*classes+c], s*p[base+3*classes+c],
				xs[i], xs[i+1], xs[i+2], xs[i+3], gr)
		}
		for ; i < len(xs); i++ {
			pc := s * p[i*classes+c]
			for j, xv := range xs[i] {
				gr[j] += pc * xv
			}
		}
	}
	return nil
}

// axpy4 performs four simultaneous axpy updates sharing one x load stream.
func axpy4(p0, p1, p2, p3 float64, x, g0, g1, g2, g3 []float64) {
	n := len(x)
	g0, g1, g2, g3 = g0[:n], g1[:n], g2[:n], g3[:n]
	for j := 0; j < n; j++ {
		xv := x[j]
		g0[j] += p0 * xv
		g1[j] += p1 * xv
		g2[j] += p2 * xv
		g3[j] += p3 * xv
	}
}

// axpy4x2 is the 2×4 accumulation micro-kernel: two samples folded into four
// gradient rows per pass, halving the read-modify-write traffic on g per
// accumulated sample.
func axpy4x2(p0, p1, p2, p3, q0, q1, q2, q3 float64, x, y, g0, g1, g2, g3 []float64) {
	n := len(x)
	y, g0, g1, g2, g3 = y[:n], g0[:n], g1[:n], g2[:n], g3[:n]
	for j := 0; j < n; j++ {
		xv, yv := x[j], y[j]
		g0[j] += p0*xv + q0*yv
		g1[j] += p1*xv + q1*yv
		g2[j] += p2*xv + q2*yv
		g3[j] += p3*xv + q3*yv
	}
}

// axpy2x2 is the 2×2 tail micro-kernel of AddScaledTMul.
func axpy2x2(p0, p1, q0, q1 float64, x, y, g0, g1 []float64) {
	n := len(x)
	y, g0, g1 = y[:n], g0[:n], g1[:n]
	for j := 0; j < n; j++ {
		xv, yv := x[j], y[j]
		g0[j] += p0*xv + q0*yv
		g1[j] += p1*xv + q1*yv
	}
}

// axpy1x4 folds four samples into one gradient row per pass.
func axpy1x4(p0, p1, p2, p3 float64, x0, x1, x2, x3, g []float64) {
	n := len(g)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for j := 0; j < n; j++ {
		g[j] += ((p0*x0[j] + p1*x1[j]) + p2*x2[j]) + p3*x3[j]
	}
}
