// Package tensor provides the dense linear-algebra substrate for the
// reproduction: float64 vectors and row-major matrices with the operations
// the logistic-regression model and the federated averaging steps need.
// It is deliberately small, allocation-conscious, and stdlib-only.
package tensor

import (
	"errors"
	"math"
)

// Vec is a dense float64 vector. Model parameters, gradients, and model
// deltas all flow through this type.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Zero sets every element to 0 in place.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element to x in place.
func (v Vec) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// CopyFrom copies src into v; the lengths must match.
func (v Vec) CopyFrom(src Vec) error {
	if len(v) != len(src) {
		return errors.New("tensor: length mismatch in CopyFrom")
	}
	copy(v, src)
	return nil
}

// AddScaled performs v += s*u in place (axpy); the lengths must match.
func (v Vec) AddScaled(s float64, u Vec) error {
	if len(v) != len(u) {
		return errors.New("tensor: length mismatch in AddScaled")
	}
	for i := range v {
		v[i] += s * u[i]
	}
	return nil
}

// Scale performs v *= s in place.
func (v Vec) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and u; the lengths must match.
func Dot(v, u Vec) (float64, error) {
	if len(v) != len(u) {
		return 0, errors.New("tensor: length mismatch in Dot")
	}
	var s float64
	for i := range v {
		s += v[i] * u[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SqNorm returns the squared Euclidean norm of v.
func (v Vec) SqNorm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Sub returns v - u as a new vector; the lengths must match.
func Sub(v, u Vec) (Vec, error) {
	if len(v) != len(u) {
		return nil, errors.New("tensor: length mismatch in Sub")
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - u[i]
	}
	return out, nil
}

// Add returns v + u as a new vector; the lengths must match.
func Add(v, u Vec) (Vec, error) {
	if len(v) != len(u) {
		return nil, errors.New("tensor: length mismatch in Add")
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + u[i]
	}
	return out, nil
}

// WeightedSum returns sum_i weights[i]*vecs[i]; all vectors must share one
// length and len(weights) must equal len(vecs). It is the kernel of every
// aggregation rule in the FL engine.
func WeightedSum(weights []float64, vecs []Vec) (Vec, error) {
	if len(weights) != len(vecs) {
		return nil, errors.New("tensor: weights/vectors count mismatch")
	}
	if len(vecs) == 0 {
		return nil, errors.New("tensor: empty weighted sum")
	}
	n := len(vecs[0])
	out := make(Vec, n)
	for i, v := range vecs {
		if len(v) != n {
			return nil, errors.New("tensor: ragged vectors in WeightedSum")
		}
		w := weights[i]
		for j := range v {
			out[j] += w * v[j]
		}
	}
	return out, nil
}

// MaxAbs returns the largest absolute element of v (0 for an empty vector).
func (v Vec) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// IsFinite reports whether every element is finite (no NaN/Inf). Training
// loops use it as a cheap divergence guard.
func (v Vec) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
