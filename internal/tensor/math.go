package tensor

import (
	"errors"
	"math"
)

// LogSumExp returns log(sum(exp(xs))) computed stably.
func LogSumExp(xs Vec) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("tensor: LogSumExp of empty vector")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s), nil
}

// SoftmaxInPlace converts logits into probabilities in place, stably.
func SoftmaxInPlace(xs Vec) error {
	lse, err := LogSumExp(xs)
	if err != nil {
		return err
	}
	for i, x := range xs {
		xs[i] = math.Exp(x - lse)
	}
	return nil
}

// ArgMax returns the index of the maximum element (first on ties).
func ArgMax(xs Vec) (int, error) {
	if len(xs) == 0 {
		return 0, errors.New("tensor: ArgMax of empty vector")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best, nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
