package tensor

import (
	"math"
	"testing"
)

// kernelRNG is a tiny deterministic generator for kernel equivalence tests
// (kept local to avoid an import cycle with package stats).
type kernelRNG struct{ s uint64 }

func (r *kernelRNG) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11)/(1<<53)*2 - 1
}

func (r *kernelRNG) fill(v []float64) {
	for i := range v {
		v[i] = r.next()
	}
}

// kernelShapes exercises every blocking path: class counts around the 4- and
// 2-row blocks, sample counts around the 2- and 4-sample blocks, and both
// even and odd (unroll-tail) dims.
var kernelShapes = []struct{ batch, classes, dim int }{
	{1, 2, 3}, {2, 2, 4}, {3, 3, 5}, {4, 4, 8}, {5, 5, 7},
	{6, 6, 16}, {7, 9, 11}, {8, 10, 12}, {16, 10, 33}, {17, 13, 21},
}

const kernelTol = 1e-12

func TestMatMulTMatchesNaive(t *testing.T) {
	r := &kernelRNG{s: 1}
	for _, shape := range kernelShapes {
		m, k, n := shape.batch, shape.dim, shape.classes
		a, err := NewMat(m, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewMat(n, k)
		if err != nil {
			t.Fatal(err)
		}
		r.fill(a.Data)
		r.fill(b.Data)
		out, _ := NewMat(m, n)
		if err := MatMulT(a, b, out); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float64
				for l := 0; l < k; l++ {
					want += a.At(i, l) * b.At(j, l)
				}
				if math.Abs(out.At(i, j)-want) > kernelTol {
					t.Fatalf("%v: out[%d][%d] = %v, want %v", shape, i, j, out.At(i, j), want)
				}
			}
		}
	}
}

func TestMatMulTShapeErrors(t *testing.T) {
	a, _ := NewMat(2, 3)
	b, _ := NewMat(4, 5) // inner mismatch
	out, _ := NewMat(2, 4)
	if err := MatMulT(a, b, out); err == nil {
		t.Fatal("expected inner dimension error")
	}
	b2, _ := NewMat(4, 3)
	bad, _ := NewMat(3, 4) // wrong output rows
	if err := MatMulT(a, b2, bad); err == nil {
		t.Fatal("expected output shape error")
	}
	if err := MatMulT(nil, b2, out); err == nil {
		t.Fatal("expected nil matrix error")
	}
}

func TestLogitsBatchMatchesPerSample(t *testing.T) {
	r := &kernelRNG{s: 2}
	for _, shape := range kernelShapes {
		b, c, d := shape.batch, shape.classes, shape.dim
		w := NewVec(c * d)
		bias := NewVec(c)
		r.fill(w)
		r.fill(bias)
		xs := make([][]float64, b)
		for i := range xs {
			xs[i] = make([]float64, d)
			r.fill(xs[i])
		}
		out := NewVec(b * c)
		if err := LogitsBatch(xs, w, bias, d, c, out); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b; i++ {
			for cc := 0; cc < c; cc++ {
				var want float64
				for j := 0; j < d; j++ {
					want += w[cc*d+j] * xs[i][j]
				}
				want += bias[cc]
				if math.Abs(out[i*c+cc]-want) > kernelTol {
					t.Fatalf("%v: logits[%d][%d] = %v, want %v", shape, i, cc, out[i*c+cc], want)
				}
			}
		}
		// nil bias omits the offset.
		if err := LogitsBatch(xs, w, nil, d, c, out); err != nil {
			t.Fatal(err)
		}
		var want0 float64
		for j := 0; j < d; j++ {
			want0 += w[j] * xs[0][j]
		}
		if math.Abs(out[0]-want0) > kernelTol {
			t.Fatalf("nil bias: got %v want %v", out[0], want0)
		}
	}
}

func TestLogitsBatchErrors(t *testing.T) {
	xs := [][]float64{{1, 2}}
	if err := LogitsBatch(xs, NewVec(4), nil, 2, 2, NewVec(2)); err != nil {
		t.Fatal(err)
	}
	if err := LogitsBatch(xs, NewVec(3), nil, 2, 2, NewVec(2)); err == nil {
		t.Fatal("expected weight length error")
	}
	if err := LogitsBatch(xs, NewVec(4), NewVec(3), 2, 2, NewVec(2)); err == nil {
		t.Fatal("expected bias length error")
	}
	if err := LogitsBatch(xs, NewVec(4), nil, 2, 2, NewVec(3)); err == nil {
		t.Fatal("expected output length error")
	}
	if err := LogitsBatch([][]float64{{1}}, NewVec(4), nil, 2, 2, NewVec(2)); err == nil {
		t.Fatal("expected row length error")
	}
	if err := LogitsBatch(xs, NewVec(0), nil, 0, 2, NewVec(2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSoftmaxRowsMatchesSoftmaxInPlace(t *testing.T) {
	r := &kernelRNG{s: 3}
	for _, shape := range kernelShapes {
		b, c := shape.batch, shape.classes
		batched := NewVec(b * c)
		r.fill(batched)
		for i := range batched {
			batched[i] *= 30 // exercise the stability shift
		}
		reference := batched.Clone()
		if err := SoftmaxRows(batched, b, c); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b; i++ {
			row := reference[i*c : (i+1)*c]
			if err := SoftmaxInPlace(row); err != nil {
				t.Fatal(err)
			}
			var sum float64
			for j := 0; j < c; j++ {
				got := batched[i*c+j]
				if math.Abs(got-row[j]) > kernelTol {
					t.Fatalf("%v: softmax[%d][%d] = %v, want %v", shape, i, j, got, row[j])
				}
				sum += got
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row %d sums to %v", i, sum)
			}
		}
	}
	if err := SoftmaxRows(NewVec(3), 2, 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := SoftmaxRows(NewVec(0), 1, 0); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAddScaledTMulMatchesNaive(t *testing.T) {
	r := &kernelRNG{s: 4}
	for _, shape := range kernelShapes {
		b, c, d := shape.batch, shape.classes, shape.dim
		p := NewVec(b * c)
		r.fill(p)
		xs := make([][]float64, b)
		for i := range xs {
			xs[i] = make([]float64, d)
			r.fill(xs[i])
		}
		g := NewVec(c * d)
		r.fill(g)
		want := g.Clone()
		const scale = 0.37
		if err := AddScaledTMul(scale, xs, p, c, d, g); err != nil {
			t.Fatal(err)
		}
		for cc := 0; cc < c; cc++ {
			for i := 0; i < b; i++ {
				pc := scale * p[i*c+cc]
				for j := 0; j < d; j++ {
					want[cc*d+j] += pc * xs[i][j]
				}
			}
		}
		for j := range g {
			if math.Abs(g[j]-want[j]) > kernelTol {
				t.Fatalf("%v: g[%d] = %v, want %v", shape, j, g[j], want[j])
			}
		}
	}
}

func TestAddScaledTMulErrors(t *testing.T) {
	xs := [][]float64{{1, 2}}
	if err := AddScaledTMul(1, xs, NewVec(2), 2, 2, NewVec(4)); err != nil {
		t.Fatal(err)
	}
	if err := AddScaledTMul(1, xs, NewVec(3), 2, 2, NewVec(4)); err == nil {
		t.Fatal("expected probability length error")
	}
	if err := AddScaledTMul(1, xs, NewVec(2), 2, 2, NewVec(3)); err == nil {
		t.Fatal("expected gradient length error")
	}
	if err := AddScaledTMul(1, [][]float64{{1}}, NewVec(2), 2, 2, NewVec(4)); err == nil {
		t.Fatal("expected row length error")
	}
	if err := AddScaledTMul(1, xs, NewVec(0), 0, 2, NewVec(0)); err == nil {
		t.Fatal("expected shape error")
	}
}
