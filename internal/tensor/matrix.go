package tensor

import "errors"

// Mat is a dense row-major matrix with Rows x Cols elements stored in Data.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zero matrix of the given shape.
func NewMat(rows, cols int) (*Mat, error) {
	if rows < 0 || cols < 0 {
		return nil, errors.New("tensor: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// At returns the element at (i, j). Callers are responsible for bounds; the
// slice access panics on violation as with any Go indexing.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Mat) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vec sharing the underlying storage.
func (m *Mat) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MulVec computes out = M*x. out must have length Rows and x length Cols.
func (m *Mat) MulVec(x, out Vec) error {
	if len(x) != m.Cols || len(out) != m.Rows {
		return errors.New("tensor: shape mismatch in MulVec")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, rj := range row {
			s += rj * x[j]
		}
		out[i] = s
	}
	return nil
}

// AddOuterScaled accumulates M += s * a * bᵀ; a must have length Rows and b
// length Cols. This is the gradient accumulation kernel for the softmax
// weight matrix.
func (m *Mat) AddOuterScaled(s float64, a, b Vec) error {
	if len(a) != m.Rows || len(b) != m.Cols {
		return errors.New("tensor: shape mismatch in AddOuterScaled")
	}
	for i := 0; i < m.Rows; i++ {
		sa := s * a[i]
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += sa * b[j]
		}
	}
	return nil
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	data := make([]float64, len(m.Data))
	copy(data, m.Data)
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: data}
}
