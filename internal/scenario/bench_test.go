package scenario

import (
	"context"
	"path/filepath"
	"testing"
)

// benchScenarioRun measures full large-fleet scenario runs (20 clients, 10
// rounds, the library's biggest world) through RunWith under the given
// config. Comparing the checkpointed variant against the plain one yields
// the end-to-end durability overhead — the BENCH_PR6 <5% round-time gate.
func benchScenarioRun(b *testing.B, cfg func(i int) RunConfig) {
	sc, err := ByName("large-fleet")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWith(ctx, sc, cfg(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLargeFleetRun(b *testing.B) {
	benchScenarioRun(b, func(int) RunConfig { return RunConfig{} })
}

// BenchmarkLargeFleetRunCheckpointed is the worst-case durability config: a
// full atomic snapshot rewrite at EVERY round boundary (Interval 1, the
// default — finest resume granularity).
func BenchmarkLargeFleetRunCheckpointed(b *testing.B) {
	dir := b.TempDir()
	benchScenarioRun(b, func(i int) RunConfig {
		return RunConfig{Checkpoint: CheckpointConfig{
			Path: filepath.Join(dir, "bench.ckpt"),
		}}
	})
}

// BenchmarkLargeFleetRunCheckpointedThinned amortizes snapshots over every
// 10th boundary while the WAL still captures every round — the config the
// <5% round-time regression gate is measured on. Resume recomputes at most
// Interval-1 rounds and stays byte-identical.
func BenchmarkLargeFleetRunCheckpointedThinned(b *testing.B) {
	dir := b.TempDir()
	benchScenarioRun(b, func(i int) RunConfig {
		return RunConfig{Checkpoint: CheckpointConfig{
			Path:     filepath.Join(dir, "bench.ckpt"),
			Interval: 10,
		}}
	})
}
