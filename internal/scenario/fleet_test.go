package scenario

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/testutil"
)

// TestGroupSizeExecutionOnly pins RunConfig.GroupSize's contract: it is an
// execution knob, not a scenario knob — the trace a hierarchical run emits is
// byte-identical to the flat run's, at any group size, on either backend.
func TestGroupSizeExecutionOnly(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	sc := Scenario{
		Name:        "group-size-invariance",
		Description: "small fleet for the hierarchical execution-knob test",
		Setup:       experiment.Setup1,
		Clients:     7, TotalSamples: 280,
		Rounds: 5, LocalSteps: 2, BatchSize: 6,
		Seed: 91,
	}
	flat, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := flat.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []RunConfig{
		{Backend: BackendLocal, GroupSize: 2},
		{Backend: BackendLocal, GroupSize: 7},
		{Backend: BackendCluster, GroupSize: 3, Cluster: ClusterConfig{Timeout: 20 * time.Second}},
	} {
		trace, err := RunWith(context.Background(), sc, cfg)
		if err != nil {
			t.Fatalf("%v K=%d: %v", cfg.Backend, cfg.GroupSize, err)
		}
		got, err := trace.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%v K=%d trace differs from the flat run — GroupSize leaked into the arithmetic",
				cfg.Backend, cfg.GroupSize)
		}
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestFleetShardsScenario runs a synthesized fleet — more clients than data
// shards — through the whole scenario pipeline and checks the world stays one
// world: every backend and group size replays the identical trace, and the
// trace prices the full synthesized fleet.
func TestFleetShardsScenario(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	sc := Scenario{
		Name:        "fleet-shards",
		Description: "24 clients synthesized from 4 data shards",
		Setup:       experiment.Setup1,
		Clients:     24, FleetShards: 4, TotalSamples: 200,
		Rounds: 4, LocalSteps: 2, BatchSize: 6,
		Seed: 133,
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	flat, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Clients != 24 || len(flat.Equilibrium.Q) != 24 {
		t.Fatalf("trace covers %d clients (q: %d), want the full 24-client fleet",
			flat.Clients, len(flat.Equilibrium.Q))
	}
	want, err := flat.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []RunConfig{
		{Backend: BackendLocal, GroupSize: 5},
		{Backend: BackendCluster, GroupSize: 6, Cluster: ClusterConfig{Timeout: 20 * time.Second}},
	} {
		trace, err := RunWith(context.Background(), sc, cfg)
		if err != nil {
			t.Fatalf("%v K=%d: %v", cfg.Backend, cfg.GroupSize, err)
		}
		got, err := trace.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%v K=%d diverged on the synthesized fleet", cfg.Backend, cfg.GroupSize)
		}
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestHierarchicalFlatProperty is the property-based form of the tentpole
// invariant: across 50 generated worlds — faults, churn, and adversaries
// included — the two-level group reduce is bit-for-bit identical to the flat
// fold at group sizes {1, 2, 7, fleet}, at GOMAXPROCS 1 and 4, and on both
// execution backends. The proc and backend axes rotate deterministically with
// the world index so every combination is exercised without running the full
// 50×4×2×2 cross product; a failure reproduces from the subtest name alone.
func TestHierarchicalFlatProperty(t *testing.T) {
	worlds := 50
	if testing.Short() {
		worlds = 8 // cluster legs are skipped below, too
	}
	ctx := context.Background()
	for i := 0; i < worlds; i++ {
		t.Run(fmt.Sprintf("world-%03d", i), func(t *testing.T) {
			sc := GenerateWith(genSeed(5000+i), GenOptions{MaxClients: 9, MaxRounds: 12})
			flat, err := Run(ctx, sc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := flat.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			for j, k := range []int{1, 2, 7, sc.Clients} {
				cfg := RunConfig{GroupSize: k}
				if (i+j)%4 == 3 {
					if testing.Short() {
						continue
					}
					cfg.Backend = BackendCluster
					cfg.Cluster = ClusterConfig{Timeout: 30 * time.Second}
				}
				procs := 1
				if (i+j)%2 == 1 {
					procs = 4
				}
				prev := runtime.GOMAXPROCS(procs)
				trace, err := RunWith(ctx, sc, cfg)
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatalf("%v K=%d GOMAXPROCS=%d: %v", cfg.Backend, k, procs, err)
				}
				got, err := trace.Canonical()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s: %v K=%d GOMAXPROCS=%d diverged from the flat fold",
						sc.Name, cfg.Backend, k, procs)
				}
			}
		})
	}
}

// TestFleetShardsValidation rejects incoherent shard counts at declaration
// time.
func TestFleetShardsValidation(t *testing.T) {
	base := Scenario{
		Name: "x", Setup: experiment.Setup1,
		Clients: 6, Rounds: 2, LocalSteps: 1, BatchSize: 4, Seed: 1,
	}
	for _, tc := range []struct {
		shards int
		ok     bool
	}{{0, true}, {2, true}, {6, true}, {1, false}, {-2, false}, {7, false}} {
		sc := base
		sc.FleetShards = tc.shards
		if err := sc.Validate(); (err == nil) != tc.ok {
			t.Fatalf("FleetShards=%d: err=%v, want ok=%v", tc.shards, err, tc.ok)
		}
	}
}
