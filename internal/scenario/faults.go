package scenario

import (
	"unbiasedfl/internal/engine"
)

// compileSchedule lowers the declarative fault list into the engine's
// per-client schedule: O(1) lookups in the sampler hot loop instead of
// scanning the slice each round. The willingness/availability sampling that
// consumes it lives in engine.FaultSampler, shared by every execution
// backend.
func compileSchedule(numClients int, faults []ClientFault) engine.FaultSchedule {
	sch := engine.NewFaultSchedule(numClients)
	for _, f := range faults {
		switch f.Kind {
		case FaultStraggler:
			sch.Delay[f.Client] = f.DelayFactor
		case FaultDropout:
			sch.DropRound[f.Client] = f.Round
		case FaultFlaky:
			sch.Availability[f.Client] = f.Availability
		}
	}
	return sch
}
