package scenario

import (
	"sort"

	"unbiasedfl/internal/adversary"
	"unbiasedfl/internal/engine"
)

// compileSchedule lowers the declarative fault list into the engine's
// per-client schedule: O(1) lookups in the sampler hot loop instead of
// scanning the slice each round. The willingness/availability sampling that
// consumes it lives in engine.FaultSampler, shared by every execution
// backend.
func compileSchedule(numClients int, faults []ClientFault) engine.FaultSchedule {
	sch := engine.NewFaultSchedule(numClients)
	for _, f := range faults {
		switch f.Kind {
		case FaultStraggler:
			sch.Delay[f.Client] = f.DelayFactor
		case FaultDropout:
			sch.DropRound[f.Client] = f.Round
		case FaultFlaky:
			sch.Availability[f.Client] = f.Availability
		case FaultDeviate:
			sch.QFactor[f.Client] = f.Factor
		}
	}
	return sch
}

// adversarySpec is the compiled adversarial slice of a fault schedule: the
// Stage-I misreports, Stage-II deviations, and training-time poisons that the
// driver threads through the pricing, sampling, and tampering seams.
type adversarySpec struct {
	misreports []adversary.Misreport
	deviations []adversary.Deviation
	poisons    []adversary.Poison
}

// compileAdversary extracts the adversarial faults (entries stay in fault-list
// order, which Validate has already deduplicated per (client, kind)).
func compileAdversary(faults []ClientFault) adversarySpec {
	var adv adversarySpec
	for _, f := range faults {
		switch f.Kind {
		case FaultMisreport:
			adv.misreports = append(adv.misreports, adversary.Misreport{Client: f.Client, Factor: f.Factor})
		case FaultDeviate:
			adv.deviations = append(adv.deviations, adversary.Deviation{Client: f.Client, Factor: f.Factor})
		case FaultPoison:
			adv.poisons = append(adv.poisons, adversary.Poison{Client: f.Client, Factor: f.Factor, FromRound: f.Round})
		}
	}
	return adv
}

// present reports whether any adversarial behaviour is scheduled.
func (a adversarySpec) present() bool {
	return len(a.misreports) > 0 || len(a.deviations) > 0 || len(a.poisons) > 0
}

// clients returns the sorted, deduplicated client sets per behaviour — the
// trace's adversary roster.
func (a adversarySpec) clients() (misreporting, deviating, poisoning []int) {
	collect := func(ns []int) []int {
		if len(ns) == 0 {
			return nil
		}
		out := append([]int(nil), ns...)
		sort.Ints(out)
		return out
	}
	for _, m := range a.misreports {
		misreporting = append(misreporting, m.Client)
	}
	for _, d := range a.deviations {
		deviating = append(deviating, d.Client)
	}
	for _, p := range a.poisons {
		poisoning = append(poisoning, p.Client)
	}
	return collect(misreporting), collect(deviating), collect(poisoning)
}

// honestFaults strips the adversarial kinds from a fault list, keeping the
// exogenous faults and membership churn — the schedule of the scenario's
// honest twin, against which adversarial degradation is measured.
func honestFaults(faults []ClientFault) []ClientFault {
	out := make([]ClientFault, 0, len(faults))
	for _, f := range faults {
		switch f.Kind {
		case FaultMisreport, FaultDeviate, FaultPoison:
			continue
		}
		out = append(out, f)
	}
	return out
}

// compileMembership lowers the join/leave faults into the engine's
// round-boundary membership plan: the initial roster is the fleet minus the
// joiners, and one epoch event per distinct round carries that round's joins
// and leaves (clients in ascending order, so the plan — and everything
// downstream of it — is deterministic in the fault list's order). Returns
// nil when the schedule has no membership faults, so a fixed-roster scenario
// pays nothing for the elasticity machinery and its trace is unchanged.
func compileMembership(numClients int, faults []ClientFault) *engine.MembershipPlan {
	joins := map[int][]int{}
	leaves := map[int][]int{}
	joiner := make([]bool, numClients)
	for _, f := range faults {
		if f.Client < 0 || f.Client >= numClients {
			continue // Validate reports the range error with context
		}
		switch f.Kind {
		case FaultJoin:
			joins[f.Round] = append(joins[f.Round], f.Client)
			joiner[f.Client] = true
		case FaultLeave:
			leaves[f.Round] = append(leaves[f.Round], f.Client)
		}
	}
	if len(joins) == 0 && len(leaves) == 0 {
		return nil
	}
	roundSet := make(map[int]bool, len(joins)+len(leaves))
	for r := range joins {
		roundSet[r] = true
	}
	for r := range leaves {
		roundSet[r] = true
	}
	rounds := make([]int, 0, len(roundSet))
	for r := range roundSet {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	plan := &engine.MembershipPlan{}
	for n := 0; n < numClients; n++ {
		if !joiner[n] {
			plan.Initial = append(plan.Initial, n)
		}
	}
	for _, r := range rounds {
		ev := engine.MembershipEvent{Round: r, Join: joins[r], Leave: leaves[r]}
		sort.Ints(ev.Join)
		sort.Ints(ev.Leave)
		plan.Events = append(plan.Events, ev)
	}
	return plan
}
