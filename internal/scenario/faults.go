package scenario

import (
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/stats"
)

// schedule is the per-client compiled form of a fault list: O(1) lookups in
// the sampler hot loop instead of scanning the declarative slice each round.
type schedule struct {
	// dropRound[n] is the round client n leaves for good, or -1.
	dropRound []int
	// availability[n] is the exogenous per-round reachability (1 = always).
	availability []float64
	// delay[n] is the straggler latency multiplier (1 = nominal).
	delay []float64
}

func compileSchedule(numClients int, faults []ClientFault) schedule {
	sch := schedule{
		dropRound:    make([]int, numClients),
		availability: make([]float64, numClients),
		delay:        make([]float64, numClients),
	}
	for n := 0; n < numClients; n++ {
		sch.dropRound[n] = -1
		sch.availability[n] = 1
		sch.delay[n] = 1
	}
	for _, f := range faults {
		switch f.Kind {
		case FaultStraggler:
			sch.delay[f.Client] = f.DelayFactor
		case FaultDropout:
			sch.dropRound[f.Client] = f.Round
		case FaultFlaky:
			sch.availability[f.Client] = f.Availability
		}
	}
	return sch
}

// dropped reports whether client n has permanently left by round.
func (s schedule) dropped(n, round int) bool {
	return s.dropRound[n] >= 0 && round >= s.dropRound[n]
}

// hasFaults reports whether any client deviates from the clean fleet.
func (s schedule) hasFaults() bool {
	for n := range s.delay {
		if s.dropRound[n] >= 0 || s.availability[n] != 1 || s.delay[n] != 1 {
			return true
		}
	}
	return false
}

// faultSampler composes the priced strategic participation (Bernoulli q_n)
// with the scenario's exogenous faults: a client joins a round only if it is
// willing AND not yet dropped AND currently available. EffectiveQ still
// reports the priced q — the server's belief — because the server does not
// observe the fault process; this is exactly the regime in which the
// unbiasedness claim is being stress-tested rather than assumed.
type faultSampler struct {
	q   []float64
	sch schedule
	// will carries the strategic willingness coins; avail carries the
	// exogenous availability coins. Keeping them on separate streams — and
	// drawing a willingness coin for every client every round, dropped or
	// not — makes the willingness pattern identical across fault schedules:
	// the difference between a faulted trace and its fault-free twin is
	// attributable to the faults alone, never to stream displacement.
	will  *stats.RNG
	avail *stats.RNG
}

func newFaultSampler(q []float64, sch schedule, will, avail *stats.RNG) *faultSampler {
	return &faultSampler{q: q, sch: sch, will: will, avail: avail}
}

// Sample implements fl.Sampler.
func (s *faultSampler) Sample(round int) []int {
	var out []int
	for n, qn := range s.q {
		willing := s.will.Bernoulli(qn)
		if s.sch.dropped(n, round) {
			continue
		}
		if av := s.sch.availability[n]; av < 1 && !s.avail.Bernoulli(av) {
			continue
		}
		if willing {
			out = append(out, n)
		}
	}
	return out
}

// NumClients implements fl.Sampler.
func (s *faultSampler) NumClients() int { return len(s.q) }

// EffectiveQ implements the runner's levelsSampler seam with the server's
// belief (the priced q), not the fault-adjusted truth.
func (s *faultSampler) EffectiveQ() []float64 {
	return append([]float64(nil), s.q...)
}

var _ fl.Sampler = (*faultSampler)(nil)
