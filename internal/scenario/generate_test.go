package scenario

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/testutil"
)

// genSeed derives a deterministic, varied byte seed for table-driven
// generation: a few words of splitmix output plus a variable-length tail, so
// the generator sees short, long, and oddly sized inputs.
func genSeed(i int) []byte {
	n := 8 + (i*7)%25 // 8..32 bytes
	out := make([]byte, n)
	x := uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for off := 0; off < n; off += 8 {
		x = splitmix(x)
		var word [8]byte
		binary.LittleEndian.PutUint64(word[:], x)
		copy(out[off:], word[:])
	}
	return out
}

// TestGenerateAlwaysValid is the generator's core property: every seed —
// empty, short, long, degenerate — yields a scenario that passes Validate,
// and the same seed always yields the same scenario.
func TestGenerateAlwaysValid(t *testing.T) {
	seeds := [][]byte{nil, {}, {0}, {0xFF}, []byte("a"), make([]byte, 1024)}
	for i := 0; i < 300; i++ {
		seeds = append(seeds, genSeed(i))
	}
	kinds := map[FaultKind]int{}
	for i, seed := range seeds {
		sc := Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d (%x): generated invalid scenario: %v\n%+v", i, seed, err, sc)
		}
		if again := Generate(seed); !reflect.DeepEqual(sc, again) {
			t.Fatalf("seed %d: generation is not deterministic", i)
		}
		for _, f := range sc.Faults {
			kinds[f.Kind]++
		}
	}
	// The pool must actually exercise every fault kind, adversaries included —
	// a generator that never draws a poisoner is not fuzzing the theorem.
	for _, k := range []FaultKind{
		FaultStraggler, FaultDropout, FaultFlaky, FaultJoin, FaultLeave,
		FaultMisreport, FaultDeviate, FaultPoison,
	} {
		if kinds[k] == 0 {
			t.Errorf("300+ generated scenarios never drew a %v fault", k)
		}
	}
}

// TestGenerateRespectsOptions: the restriction knobs metamorphic relations
// rely on must actually restrict.
func TestGenerateRespectsOptions(t *testing.T) {
	opts := GenOptions{MaxClients: 5, MaxRounds: 8, NoMembership: true, NoAdversaries: true}
	for i := 0; i < 200; i++ {
		sc := GenerateWith(genSeed(i), opts)
		if sc.Clients > 5 || sc.Rounds > 8 {
			t.Fatalf("seed %d: %d clients / %d rounds exceed the caps", i, sc.Clients, sc.Rounds)
		}
		for _, f := range sc.Faults {
			switch f.Kind {
			case FaultJoin, FaultLeave:
				t.Fatalf("seed %d: membership fault despite NoMembership", i)
			case FaultMisreport, FaultDeviate, FaultPoison:
				t.Fatalf("seed %d: adversarial fault despite NoAdversaries", i)
			}
		}
	}
}

// checkReplayUnbiased funnels one replay's evidence through the z-test: per
// probe, the sample mean of the projected aggregates must be statistically
// consistent with the analytic expectation from Lemma 1. The z statistic
// divides by the ANALYTIC standard error (VarProj is exact — the coins'
// probabilities and the deltas are all known), not the sample's own spread:
// a finite sample in which a near-clamp client happened never to flip its
// coin underestimates its variance badly enough to manufacture z ≈ 10 from a
// perfectly unbiased estimator, a false positive the fuzzer actually found
// (corpus entry f304f090aba4eabe). With the exact spread in the denominator
// the test is immune to that, and a genuinely mis-weighted rule still drifts
// z → ∞ as reps grow.
func checkReplayUnbiased(t *testing.T, rep *Replay, zmax float64) {
	t.Helper()
	for k, xs := range rep.Samples {
		var w testutil.Welford
		for _, x := range xs {
			w.Add(x)
		}
		tol := 1e-9 * math.Max(1, math.Abs(rep.TargetProj[k]))
		se := math.Sqrt(rep.VarProj[k] / float64(w.Count()))
		diff := math.Abs(w.Mean() - rep.TargetProj[k])
		if se == 0 {
			// Every coin is clamped (p ∈ {0,1}): the aggregate is
			// deterministic and must hit the target exactly.
			if diff > tol {
				t.Errorf("%s round %d probe %d: deterministic aggregate %.7g != target %.7g",
					rep.Scenario, rep.Round, k, w.Mean(), rep.TargetProj[k])
			}
			continue
		}
		if diff > tol && diff/se > zmax {
			t.Errorf("%s round %d probe %d: biased estimator: mean %.7g vs target %.7g (z=%.2f over %d reps, analytic se=%.3g, |z|max %.2f)",
				rep.Scenario, rep.Round, k, w.Mean(), rep.TargetProj[k], diff/se, w.Count(), se, zmax)
		}
	}
}

// TestGeneratedScenariosUnbiased is the tentpole property: for 110 generated
// worlds — random fleets, economics skew, fault schedules, membership churn,
// strategic deviation, any registered scheme — the engine's sampling/weighting
// estimator stays an unbiased estimator of Lemma 1's analytic expectation.
// Everything is seeded; a failure reproduces from the subtest name alone.
func TestGeneratedScenariosUnbiased(t *testing.T) {
	const worlds = 110
	ctx := context.Background()
	for i := 0; i < worlds; i++ {
		i := i
		t.Run(fmt.Sprintf("world-%03d", i), func(t *testing.T) {
			t.Parallel()
			sc := GenerateWith(genSeed(i), GenOptions{MaxClients: 8, MaxRounds: 12})
			// Replay a mid-run round too, not just round 0: dropouts and
			// membership events only bite after they fire.
			for _, round := range []int{0, sc.Rounds / 2} {
				rep, err := ReplayAggregate(ctx, sc, ReplayConfig{Reps: 200, Round: round, Probes: 3})
				if err != nil {
					t.Fatalf("replay round %d: %v", round, err)
				}
				checkReplayUnbiased(t, rep, 4.5)
			}
		})
	}
}

// TestNaiveInverseAggregatorFailsZTest proves the checker has teeth: the
// deliberately biased aggregation rule (which divides by the participant
// count) must be flagged on a scenario where participation is genuinely
// random. A checker that passes both the unbiased and the naive rule measures
// nothing.
func TestNaiveInverseAggregatorFailsZTest(t *testing.T) {
	ctx := context.Background()
	// Generated worlds occasionally price every q to 1 (no randomness, both
	// rules coincide), so scan a few seeds for one with interior q and assert
	// the naive rule fails there.
	for i := 0; i < 40; i++ {
		sc := GenerateWith(genSeed(1000+i), GenOptions{MaxClients: 8, MaxRounds: 12, NoAdversaries: true, NoMembership: true})
		rep, err := ReplayAggregate(ctx, sc, ReplayConfig{Reps: 300, Aggregator: engine.NaiveInverseAggregator{}})
		if err != nil {
			t.Fatal(err)
		}
		interior := false
		for n, qn := range rep.PricedQ {
			if rep.Active[n] && qn > 0.05 && qn < 0.95 {
				interior = true
			}
		}
		if !interior {
			continue
		}
		biased := false
		for k, xs := range rep.Samples {
			var w testutil.Welford
			for _, x := range xs {
				w.Add(x)
			}
			tol := 1e-9 * math.Max(1, math.Abs(rep.TargetProj[k]))
			if testutil.CheckUnbiased(&w, rep.TargetProj[k], 4.5, tol) != nil {
				biased = true
			}
		}
		if !biased {
			t.Fatalf("world %d: NaiveInverseAggregator slipped past the z-test (q=%v): the checker has no teeth",
				i, rep.PricedQ)
		}
		return // one genuine detection is the proof
	}
	t.Fatal("no generated world had interior participation probabilities to test against")
}

// TestDeviationShiftsTarget pins the metamorphic split the adversary
// introduces: with a strategic deviator the estimator's expectation moves away
// from the full-participation gradient (TargetProj ≠ FullProj) — and the
// z-test must still accept the sampled aggregates against the *shifted*
// target, because Lemma 1's expectation formula holds for any true p.
func TestDeviationShiftsTarget(t *testing.T) {
	ctx := context.Background()
	base := Scenario{
		Name:    "deviation-split",
		Setup:   experiment.Setup2,
		Clients: 5, TotalSamples: 500,
		Rounds: 8, LocalSteps: 2, BatchSize: 8,
		EvalEvery: 8, Calibration: 1,
		Seed: 424242,
		Faults: []ClientFault{
			{Client: 1, Kind: FaultDeviate, Factor: 0.4},
		},
	}
	rep, err := ReplayAggregate(ctx, base, ReplayConfig{Reps: 250})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrueP[1] >= rep.PricedQ[1] {
		t.Fatalf("deviator's true p %v not depressed below priced q %v", rep.TrueP[1], rep.PricedQ[1])
	}
	shifted := false
	for k := range rep.TargetProj {
		if !testutil.AlmostEqual(rep.TargetProj[k], rep.FullProj[k], 1e-6) {
			shifted = true
		}
	}
	if !shifted {
		t.Fatal("deviation left the analytic target equal to the full-participation step on every probe")
	}
	checkReplayUnbiased(t, rep, 4.5)
}

// TestGeneratedFaultFreeTwinRelation is the fault-free-twin metamorphic
// relation on generated worlds: strip the fault schedule and the healthy
// clients' participation pattern must not move — the stream-discipline
// invariant the sampler promises, now under generated economics and fleets.
func TestGeneratedFaultFreeTwinRelation(t *testing.T) {
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		i := i
		t.Run(fmt.Sprintf("world-%d", i), func(t *testing.T) {
			t.Parallel()
			sc := GenerateWith(genSeed(2000+i), GenOptions{MaxClients: 6, MaxRounds: 10, NoMembership: true, NoAdversaries: true})
			faulted := map[int]bool{}
			for _, f := range sc.Faults {
				faulted[f.Client] = true
			}
			twin := sc
			twin.Faults = nil
			got, err := Run(ctx, sc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(ctx, twin)
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n < sc.Clients; n++ {
				if faulted[n] {
					continue
				}
				if got.Participation[n] != want.Participation[n] {
					t.Errorf("healthy client %d participation %d != fault-free twin's %d: fault coins displaced the willingness stream",
						n, got.Participation[n], want.Participation[n])
				}
			}
		})
	}
}

// traceAtParallelism runs the scenario with GOMAXPROCS pinned and returns the
// canonical trace bytes.
func traceAtParallelism(t *testing.T, ctx context.Context, sc Scenario, procs int) []byte {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	trace, err := Run(ctx, sc)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
	}
	b, err := trace.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGeneratedGOMAXPROCSEquality replays generated worlds at parallelism 1
// and 4: the canonical trace must be byte-identical — the determinism
// guarantee, extended from the curated library to arbitrary generated worlds
// (adversaries included).
func TestGeneratedGOMAXPROCSEquality(t *testing.T) {
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		sc := GenerateWith(genSeed(3000+i), GenOptions{MaxClients: 6, MaxRounds: 10})
		a := traceAtParallelism(t, ctx, sc, 1)
		b := traceAtParallelism(t, ctx, sc, 4)
		if string(a) != string(b) {
			t.Fatalf("world %d (%s): GOMAXPROCS 1 and 4 traces differ", i, sc.Name)
		}
	}
}

// TestGeneratedBackendEquality runs generated worlds — adversaries included —
// on the in-process backend and on a real loopback TCP cluster: the canonical
// traces must be byte-identical, extending the backend-equivalence matrix
// from the curated library to arbitrary generated worlds.
func TestGeneratedBackendEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster boot in -short mode")
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		sc := GenerateWith(genSeed(4000+i), GenOptions{MaxClients: 5, MaxRounds: 8})
		local, err := Run(ctx, sc)
		if err != nil {
			t.Fatalf("world %d local: %v", i, err)
		}
		cluster, err := RunWith(ctx, sc, RunConfig{
			Backend: BackendCluster, Cluster: ClusterConfig{Timeout: 30 * time.Second},
		})
		if err != nil {
			t.Fatalf("world %d cluster: %v", i, err)
		}
		a, err := local.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		b, err := cluster.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("world %d (%s): local and cluster traces differ", i, sc.Name)
		}
	}
}
