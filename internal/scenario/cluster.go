package scenario

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/transport"
)

// ClusterConfig tunes the in-process multi-node harness around a Scenario.
type ClusterConfig struct {
	// Timeout bounds every socket operation (default 30s).
	Timeout time.Duration
	// StragglerUnit is the real wall-clock stall injected per unit of a
	// straggler's DelayFactor each round (default 1ms — enough to reorder
	// replies without slowing the suite).
	StragglerUnit time.Duration
}

// ClusterResult is the harness's view of a finished multi-node run.
type ClusterResult struct {
	// Server is the coordinator's result: final model, participation
	// counts, drop marks.
	Server *transport.ServerResult
	// ClientRounds[n] is how many rounds client n reports participating in.
	ClientRounds []int
	// ClientErrs[n] is client n's terminal error: nil for a clean protocol
	// exit, transport.ErrInjectedCrash for a scheduled dropout.
	ClientErrs []error
	// Q is the priced participation vector the server handed out.
	Q []float64
}

// RunCluster executes the scenario as a real multi-node federation: it
// builds the environment and prices the market exactly like Run, then boots
// a transport.Server on a loopback TCP port and one flnode-style client
// goroutine per device, injecting the scenario's fault schedule at the
// socket layer — scheduled dropouts sever their connections mid-round,
// flaky clients report exogenous skips, stragglers stall before replying.
// The server runs with fault tolerance whenever the schedule is non-empty.
// All goroutines and sockets are torn down before RunCluster returns.
func RunCluster(ctx context.Context, sc Scenario, cfg ClusterConfig) (*ClusterResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc = sc.withDefaults()
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.StragglerUnit <= 0 {
		cfg.StragglerUnit = time.Millisecond
	}
	env, _, q, sch, err := prepare(ctx, sc)
	if err != nil {
		return nil, err
	}

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:           "127.0.0.1:0",
		NumClients:     sc.Clients,
		Q:              q,
		Weights:        env.Fed.Weights,
		Rounds:         sc.Rounds,
		LocalSteps:     sc.LocalSteps,
		BatchSize:      sc.BatchSize,
		Schedule:       fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
		Timeout:        cfg.Timeout,
		TolerateFaults: sch.hasFaults(),
	}, env.Model)
	if err != nil {
		return nil, err
	}
	defer func() { _ = srv.Close() }()

	// Construct every client before the first byte moves: a construction
	// failure here aborts cleanly instead of stranding the server's hello
	// phase waiting (until its timeout) for a node that will never dial.
	nodes := make([]*transport.Client, sc.Clients)
	for n := 0; n < sc.Clients; n++ {
		node, err := transport.NewClient(transport.ClientConfig{
			Addr:      srv.Addr(),
			ID:        n,
			Seed:      sc.Seed + uint64(n)*1009 + 17,
			Timeout:   cfg.Timeout,
			FaultFunc: clientFaultFunc(n, sch, cfg.StragglerUnit, stats.NewRNG(sc.Seed^(uint64(n)<<20|0xFA))),
		}, env.Model, env.Fed.Clients[n])
		if err != nil {
			return nil, fmt.Errorf("scenario %q client %d: %w", sc.Name, n, err)
		}
		nodes[n] = node
	}

	type serverDone struct {
		res *transport.ServerResult
		err error
	}
	srvCh := make(chan serverDone, 1)
	go func() {
		res, err := srv.Run(ctx)
		srvCh <- serverDone{res, err}
	}()

	out := &ClusterResult{
		ClientRounds: make([]int, sc.Clients),
		ClientErrs:   make([]error, sc.Clients),
		Q:            q,
	}
	var wg sync.WaitGroup
	for n, node := range nodes {
		wg.Add(1)
		go func(n int, node *transport.Client) {
			defer wg.Done()
			rounds, err := node.Run(ctx)
			out.ClientRounds[n] = rounds
			out.ClientErrs[n] = err
		}(n, node)
	}
	wg.Wait()
	srvRes := <-srvCh
	if srvRes.err != nil {
		return nil, srvRes.err
	}
	out.Server = srvRes.res

	// A scheduled dropout surfaces as ErrInjectedCrash — the expected
	// outcome, not a failure. Anything else is a real protocol error.
	var unexpected []error
	for n, cerr := range out.ClientErrs {
		if cerr != nil && !errors.Is(cerr, transport.ErrInjectedCrash) {
			unexpected = append(unexpected, fmt.Errorf("client %d: %w", n, cerr))
		}
	}
	if len(unexpected) > 0 {
		return out, errors.Join(unexpected...)
	}
	return out, nil
}

// clientFaultFunc compiles one client's slice of the schedule into the
// transport layer's per-round fault hook. The flaky coin stream is private
// to the client and derived from the scenario seed, so a cluster run's
// fault pattern is replayable.
func clientFaultFunc(n int, sch schedule, unit time.Duration, frng *stats.RNG) func(int) transport.RoundFault {
	drop := sch.dropRound[n]
	avail := sch.availability[n]
	delay := time.Duration(0)
	if f := sch.delay[n]; f > 1 {
		delay = time.Duration(float64(unit) * f)
	}
	if drop < 0 && avail >= 1 && delay == 0 {
		return nil
	}
	return func(round int) transport.RoundFault {
		var f transport.RoundFault
		if drop >= 0 && round >= drop {
			f.Crash = true
			return f
		}
		f.Delay = delay
		if avail < 1 && !frng.Bernoulli(avail) {
			f.Skip = true
		}
		return f
	}
}
