package scenario

import (
	"context"
	"time"

	"unbiasedfl/internal/engine"
)

// ClusterConfig tunes the multi-node harness around a Scenario.
type ClusterConfig struct {
	// Timeout bounds every coordinator-side socket operation (default 30s,
	// applied by the engine's cluster backend).
	Timeout time.Duration
	// StragglerUnit is the real wall-clock stall injected per unit of a
	// straggler's DelayFactor each round (default 1ms — enough to reorder
	// replies without slowing the suite). It shifts wall time and reply
	// order only; the trace is unaffected.
	StragglerUnit time.Duration
	// RoundTimeout, when positive, switches the cluster backend into
	// self-healing mode: every round runs under this deadline, and a node
	// that crashes, disconnects, or misses it forfeits the round (recorded
	// as unavailable, which the unbiased estimator already prices) while a
	// background dialer revives it. Zero keeps the strict behaviour where
	// any node failure fails the run.
	RoundTimeout time.Duration
}

// nodeDelay compiles the schedule's straggler factors into the engine
// backend's per-node stall hook (nil when the fleet has no stragglers).
func (cfg ClusterConfig) nodeDelay(sch engine.FaultSchedule) func(int) time.Duration {
	unit := cfg.StragglerUnit
	if unit <= 0 {
		unit = time.Millisecond
	}
	hasStragglers := false
	for _, f := range sch.Delay {
		if f > 1 {
			hasStragglers = true
			break
		}
	}
	if !hasStragglers {
		return nil
	}
	return func(client int) time.Duration {
		if f := sch.Delay[client]; f > 1 {
			return time.Duration(float64(unit) * f)
		}
		return 0
	}
}

// RunCluster executes the scenario as a real multi-node federation — the
// engine's cluster backend boots a TCP coordinator plus one socket node per
// device on loopback — and returns the same canonical Trace as Run,
// byte-identical to the in-process result. Participation (including
// dropouts and flaky availability) is decided by the orchestrator's
// fault-composed sampler exactly as in-process; straggler factors
// additionally stall the affected nodes for real wall-clock time at the
// socket layer. All goroutines and sockets are torn down before RunCluster
// returns.
func RunCluster(ctx context.Context, sc Scenario, cfg ClusterConfig) (*Trace, error) {
	return RunWith(ctx, sc, RunConfig{Backend: BackendCluster, Cluster: cfg})
}
