package scenario

import (
	"context"
	"testing"
)

// FuzzScenario is the unbiasedness theorem as a fuzz target: the fuzzer
// mutates raw bytes, the generator compiles every mutation into a valid world
// (random fleet, economics skew, fault schedule, membership churn,
// adversaries, scheme), and each world's one-round aggregate is replayed on
// fresh participation streams and z-tested against Lemma 1's analytic
// expectation. Any byte string whose world prices, validates, or aggregates
// inconsistently is a counterexample to the reproduction's core claim.
//
// Seeds live in testdata/fuzz/FuzzScenario; CI runs a 30s smoke alongside the
// transport and checkpoint fuzz targets.
func FuzzScenario(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("unbiased"))
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55, 0x13, 0x37, 0xC0, 0xDE})
	for i := 0; i < 8; i++ {
		f.Add(genSeed(50 + i))
	}
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("oversized seed adds bytes, not structure")
		}
		sc := GenerateWith(data, GenOptions{MaxClients: 6, MaxRounds: 10})
		if err := sc.Validate(); err != nil {
			t.Fatalf("generator emitted an invalid scenario: %v\n%+v", err, sc)
		}
		if again := GenerateWith(data, GenOptions{MaxClients: 6, MaxRounds: 10}); again.Name != sc.Name || again.Seed != sc.Seed {
			t.Fatal("generation is not deterministic")
		}
		rep, err := ReplayAggregate(ctx, sc, ReplayConfig{Reps: 64})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		// 64 reps is a smoke-depth sample: the z gate is loose (6 standard
		// errors) so the target survives fuzz-length runs without false
		// alarms, while a genuinely biased estimator (wrong weighting, stream
		// displacement) still trips it almost surely.
		checkReplayUnbiased(t, rep, 6)
	})
}
