package scenario

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// goldenBytes loads a committed golden trace — the resume tests compare
// against the repository's own ground truth, not a freshly computed run.
func goldenBytes(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
	if err != nil {
		t.Fatalf("missing golden trace: %v", err)
	}
	return b
}

// killAt runs the scenario with a checkpoint and cancels the run the moment
// round k's commit is durable — the in-process stand-in for a process kill
// at an exact round boundary (the CI job delivers a real SIGKILL).
func killAt(t *testing.T, sc Scenario, cfg RunConfig, k int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Checkpoint.AfterCommit = func(rounds int) {
		if rounds == k {
			cancel()
		}
	}
	if _, err := RunWith(ctx, sc, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("kill at round %d: got %v, want context.Canceled", k, err)
	}
}

// resumeToGolden resumes the checkpointed run to completion and requires the
// finished trace to be byte-identical to the committed golden file.
func resumeToGolden(t *testing.T, sc Scenario, cfg RunConfig, k int) {
	t.Helper()
	cfg.Checkpoint.Resume = true
	cfg.Checkpoint.AfterCommit = nil
	trace, err := RunWith(context.Background(), sc, cfg)
	if err != nil {
		t.Fatalf("resume after kill at %d: %v", k, err)
	}
	got, err := trace.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, goldenBytes(t, sc.Name)) {
		t.Fatalf("trace resumed from round %d differs from the committed golden — the byte-identical-resume invariant is broken", k)
	}
}

// TestResumeSweepMatchesGolden is the tentpole invariant, exhaustively: kill
// a checkpointed run at EVERY round boundary and resume it; the finished
// trace must match the committed golden byte-for-byte every time. Swept on
// the clean baseline and on the mixed storm (stragglers + dropouts + churn
// at once), whose fault streams make the cursor bookkeeping earn its keep.
func TestResumeSweepMatchesGolden(t *testing.T) {
	for _, name := range []string{"baseline", "mixed"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k < sc.Rounds; k++ {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				cfg := RunConfig{Checkpoint: CheckpointConfig{Path: path}}
				killAt(t, sc, cfg, k)
				resumeToGolden(t, sc, cfg, k)
			}
		})
	}
}

// TestResumeEveryScenarioBothBackends kills every library scenario at a
// mid-run boundary and resumes it on both execution substrates: the
// in-process pool and the real TCP cluster. Each resumed trace must equal
// the committed golden. Two legs additionally cross backends (kill local,
// resume cluster, and vice versa) — a checkpoint is backend-portable.
func TestResumeEveryScenarioBothBackends(t *testing.T) {
	cluster := ClusterConfig{Timeout: 30 * time.Second}
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			k := sc.Rounds / 2
			killBackend, resumeBackend := BackendLocal, BackendLocal
			switch sc.Name {
			case "baseline":
				killBackend, resumeBackend = BackendLocal, BackendCluster
			case "mixed":
				killBackend, resumeBackend = BackendCluster, BackendLocal
			}

			path := filepath.Join(t.TempDir(), "run.ckpt")
			cfg := RunConfig{Backend: killBackend, Cluster: cluster, Checkpoint: CheckpointConfig{Path: path}}
			killAt(t, sc, cfg, k)
			cfg.Backend = resumeBackend
			resumeToGolden(t, sc, cfg, k)

			// Second leg: the same kill carried entirely by the cluster.
			path2 := filepath.Join(t.TempDir(), "run2.ckpt")
			cfg2 := RunConfig{Backend: BackendCluster, Cluster: cluster, Checkpoint: CheckpointConfig{Path: path2}}
			killAt(t, sc, cfg2, k)
			resumeToGolden(t, sc, cfg2, k)
		})
	}
}

// TestCheckpointRejectsForeignScenario: a checkpoint written by one scenario
// must refuse to resume another.
func TestCheckpointRejectsForeignScenario(t *testing.T) {
	baseline, err := ByName("baseline")
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := ByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := RunConfig{Checkpoint: CheckpointConfig{Path: path}}
	killAt(t, baseline, cfg, 3)
	cfg.Checkpoint.Resume = true
	if _, err := RunWith(context.Background(), mixed, cfg); err == nil {
		t.Fatal("mixed resumed from a baseline checkpoint")
	}
}

// TestCheckpointedRunMatchesPlainRun: checkpointing must be observation-free
// — a run that commits every round produces the same trace as one that
// never checkpoints.
func TestCheckpointedRunMatchesPlainRun(t *testing.T) {
	sc, err := ByName("baseline")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	trace, err := RunWith(context.Background(), sc, RunConfig{Checkpoint: CheckpointConfig{Path: path}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, goldenBytes(t, sc.Name)) {
		t.Fatal("checkpointing perturbed the trace")
	}
}
