// Package scenario turns the reproduction into a workload generator: a
// declarative Scenario describes a whole experimental world — fleet size,
// heterogeneous cost/valuation distributions, non-IID data skew, and a
// per-client fault schedule (stragglers, mid-run dropouts, flaky
// availability) — and a deterministic seeded driver compiles it into one run
// of the full data → calibration → game → pricing → fl.Runner pipeline,
// emitting a canonical Trace.
//
// Two execution substrates share every Scenario:
//
//   - Run executes in-process through fl.Runner and the sim timing model,
//     producing a bit-reproducible Trace for the golden-trace regression
//     suite (testdata/golden). Replays are bit-identical for any
//     GOMAXPROCS because every layer underneath (kernels, runner pool,
//     equilibrium engine) is order-fixed by construction.
//   - RunCluster boots a real transport.Server plus N flnode-style TCP
//     clients over loopback and injects the same fault schedule at the
//     socket layer — the standing multi-node integration harness.
//
// The named library (Names, ByName) covers the regimes the paper's claims
// must survive: clean baselines, straggler-heavy fleets, churn, adversarial
// dropouts, cost skew, budget scarcity, larger fleets, and a mixed storm.
package scenario

import (
	"errors"
	"fmt"
	"math"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/game"
)

// FaultKind discriminates the per-client fault behaviours a schedule can
// inject.
type FaultKind int

const (
	// FaultStraggler multiplies the client's compute and communication
	// times by DelayFactor (in-process: the sim timing model; cluster: a
	// real pre-reply delay).
	FaultStraggler FaultKind = iota + 1
	// FaultDropout removes the client permanently from round Round onward —
	// in-process it silently stops participating; in the cluster it severs
	// its TCP connection mid-round.
	FaultDropout
	// FaultFlaky makes the client exogenously available only with
	// probability Availability each round, independent of its strategic
	// participation coin.
	FaultFlaky
	// FaultJoin admits the client at the Round epoch boundary: it is absent
	// from the initial roster and becomes a member when round Round begins.
	// Unlike the exogenous faults, membership changes are visible to the
	// server, which re-prices the sub-game over the active fleet at every
	// epoch (see engine.MembershipPlan).
	FaultJoin
	// FaultLeave retires the client permanently and gracefully at the Round
	// epoch boundary — an announced, acknowledged departure, as opposed to
	// FaultDropout's silent crash. The server re-prices without it.
	FaultLeave
	// FaultMisreport makes the client strategic at Stage-I: it reports
	// Factor× its true marginal cost to the pricing mechanism, so the whole
	// market is priced against a lie. Utilities and the trace's adversary
	// section are still scored at true costs.
	FaultMisreport
	// FaultDeviate makes the client strategic at Stage-II: it participates
	// with probability Factor·q_n instead of the priced q_n, while the
	// server keeps aggregating under its priced belief.
	FaultDeviate
	// FaultPoison makes the client malicious during training: from round
	// Round onward its model delta is scaled by Factor (negative = sign
	// flip) before aggregation.
	FaultPoison
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultStraggler:
		return "straggler"
	case FaultDropout:
		return "dropout"
	case FaultFlaky:
		return "flaky"
	case FaultJoin:
		return "join"
	case FaultLeave:
		return "leave"
	case FaultMisreport:
		return "misreport"
	case FaultDeviate:
		return "deviate"
	case FaultPoison:
		return "poison"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ClientFault is one entry of a scenario's fault schedule.
type ClientFault struct {
	// Client is the index of the afflicted device.
	Client int
	Kind   FaultKind
	// Round is the dropout round (FaultDropout), the epoch boundary at
	// which the membership change takes effect (FaultJoin, FaultLeave), or
	// the first poisoned round (FaultPoison).
	Round int
	// DelayFactor multiplies the client's latency (FaultStraggler, > 1 for
	// a straggler).
	DelayFactor float64
	// Availability is the per-round probability the client is reachable at
	// all (FaultFlaky, in (0,1)).
	Availability float64
	// Factor parameterizes the adversarial kinds: the cost-misreport
	// multiplier (FaultMisreport, > 0), the willingness multiplier
	// (FaultDeviate, >= 0), or the delta scale (FaultPoison, any finite
	// value — negative flips the update).
	Factor float64
}

func (f ClientFault) validate(numClients, rounds int) error {
	if f.Client < 0 || f.Client >= numClients {
		return fmt.Errorf("scenario: fault client %d out of range [0,%d)", f.Client, numClients)
	}
	switch f.Kind {
	case FaultStraggler:
		if !(f.DelayFactor > 0) || math.IsInf(f.DelayFactor, 0) {
			return fmt.Errorf("scenario: straggler client %d needs a positive finite delay factor", f.Client)
		}
	case FaultDropout:
		if f.Round < 0 {
			return fmt.Errorf("scenario: dropout client %d needs a non-negative round", f.Client)
		}
		if f.Round >= rounds {
			return fmt.Errorf("scenario: dropout client %d at round %d is past the %d-round horizon", f.Client, f.Round, rounds)
		}
	case FaultFlaky:
		if !(f.Availability > 0) || f.Availability >= 1 {
			return fmt.Errorf("scenario: flaky client %d needs availability in (0,1)", f.Client)
		}
	case FaultJoin, FaultLeave:
		if f.Round < 1 {
			return fmt.Errorf("scenario: %v for client %d needs a round >= 1 (membership only changes at interior epoch boundaries)", f.Kind, f.Client)
		}
	case FaultMisreport:
		if !(f.Factor > 0) || math.IsInf(f.Factor, 0) {
			return fmt.Errorf("scenario: misreporting client %d needs a positive finite cost factor", f.Client)
		}
	case FaultDeviate:
		if !(f.Factor >= 0) || math.IsInf(f.Factor, 0) {
			return fmt.Errorf("scenario: deviating client %d needs a finite non-negative willingness factor", f.Client)
		}
	case FaultPoison:
		if math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) {
			return fmt.Errorf("scenario: poisoning client %d needs a finite delta factor", f.Client)
		}
		if f.Round < 0 || f.Round >= rounds {
			return fmt.Errorf("scenario: poisoning client %d needs a start round in [0,%d)", f.Client, rounds)
		}
	default:
		return fmt.Errorf("scenario: client %d has unknown fault kind %d", f.Client, int(f.Kind))
	}
	return nil
}

// Scenario declaratively describes one experimental world. The zero value is
// invalid; start from a library entry (ByName) or fill the fields and let
// Validate check them. All randomness derives from Seed, so a Scenario is a
// complete, replayable description of its run.
type Scenario struct {
	// Name identifies the scenario in traces and golden files.
	Name string
	// Description says what regime the scenario exercises.
	Description string

	// Setup selects the paper setup whose data/economics shape the world.
	Setup experiment.SetupID
	// Scheme is the registry name of the pricing scheme driving
	// participation ("" = the paper's proposed mechanism).
	Scheme string

	// Fleet and training scale.
	Clients      int
	TotalSamples int // 0 = setup default scaled by fleet size
	// FleetShards, when positive, synthesizes the Clients-strong fleet from
	// this many distinct data shards shared by pointer (each client keeps a
	// private RNG cursor, so trajectories differ): the knob that scales a
	// scenario to 10^5–10^6 clients without materializing per-client
	// training sets. 0 materializes every client's shard individually.
	FleetShards int
	Rounds      int
	LocalSteps   int
	BatchSize    int
	EvalEvery    int
	Calibration  int
	Seed         uint64

	// CostScale multiplies every client's cost parameter c_n (0 = 1).
	CostScale float64
	// CostSpread adds deterministic multiplicative skew on top: client n's
	// cost is scaled by exp(CostSpread·(2n/(N−1) − 1)), so the fleet spans
	// a e^(2·CostSpread) cost ratio end to end (0 = homogeneous).
	CostSpread float64
	// ValueScale multiplies every client's intrinsic valuation v_n (0 = 1).
	ValueScale float64
	// BudgetScale multiplies the server budget B (0 = 1); < 1 models a
	// budget crunch.
	BudgetScale float64
	// MaxClientClasses caps labels per client in the image-like setups,
	// sharpening non-IID skew (0 = setup default).
	MaxClientClasses int

	// Faults is the per-client fault schedule.
	Faults []ClientFault
}

// withDefaults fills zero-valued scale knobs with their neutral defaults.
func (s Scenario) withDefaults() Scenario {
	if s.Scheme == "" {
		s.Scheme = game.SchemeNameProposed
	}
	if s.CostScale == 0 {
		s.CostScale = 1
	}
	if s.ValueScale == 0 {
		s.ValueScale = 1
	}
	if s.BudgetScale == 0 {
		s.BudgetScale = 1
	}
	if s.EvalEvery == 0 {
		s.EvalEvery = 4
	}
	if s.Calibration == 0 {
		s.Calibration = 2
	}
	return s
}

// Validate checks the scenario after defaulting. It resolves the pricing
// scheme through the registry, so a third-party scheme registered via
// game.RegisterScheme is as runnable as the built-ins.
func (s Scenario) Validate() error {
	s = s.withDefaults()
	switch {
	case s.Name == "":
		return errors.New("scenario: empty name")
	case s.Clients <= 1:
		return errors.New("scenario: need at least two clients")
	case s.FleetShards < 0:
		return errors.New("scenario: negative fleet shard count")
	case s.FleetShards == 1:
		return errors.New("scenario: need at least two fleet shards")
	case s.FleetShards > s.Clients:
		return errors.New("scenario: more fleet shards than clients")
	case s.Rounds <= 0 || s.LocalSteps <= 0 || s.BatchSize <= 0:
		return errors.New("scenario: invalid training scale")
	case s.CostScale <= 0 || s.ValueScale < 0 || s.BudgetScale <= 0:
		return errors.New("scenario: non-positive economics scale")
	case s.CostSpread < 0:
		return errors.New("scenario: negative cost spread")
	case math.IsNaN(s.CostScale) || math.IsInf(s.CostScale, 0) ||
		math.IsNaN(s.CostSpread) || math.IsInf(s.CostSpread, 0) ||
		math.IsNaN(s.ValueScale) || math.IsInf(s.ValueScale, 0) ||
		math.IsNaN(s.BudgetScale) || math.IsInf(s.BudgetScale, 0):
		return errors.New("scenario: non-finite economics scale")
	}
	if _, err := game.SchemeByName(s.Scheme); err != nil {
		return err
	}
	type faultKey struct {
		client int
		kind   FaultKind
	}
	seen := make(map[faultKey]bool, len(s.Faults))
	for _, f := range s.Faults {
		if err := f.validate(s.Clients, s.Rounds); err != nil {
			return err
		}
		key := faultKey{f.Client, f.Kind}
		if seen[key] {
			return fmt.Errorf("scenario: client %d has duplicate %v faults", f.Client, f.Kind)
		}
		seen[key] = true
	}
	// Membership churn gets the engine's full coherence check (rounds in
	// range, joins before leaves, fleet never empty) at declaration time
	// rather than at run time.
	if plan := compileMembership(s.Clients, s.Faults); plan != nil {
		if err := plan.Validate(s.Clients, s.Rounds); err != nil {
			return err
		}
	}
	return nil
}

// options compiles the scenario's scale knobs into experiment Options.
func (s Scenario) options() experiment.Options {
	return experiment.Options{
		NumClients:       s.Clients,
		TotalSamples:     s.TotalSamples,
		FleetShards:      s.FleetShards,
		Rounds:           s.Rounds,
		LocalSteps:       s.LocalSteps,
		BatchSize:        s.BatchSize,
		EvalEvery:        s.EvalEvery,
		Calibration:      s.Calibration,
		Seed:             s.Seed,
		Runs:             1,
		MaxClientClasses: s.MaxClientClasses,
	}
}
