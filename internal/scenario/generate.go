package scenario

import (
	"fmt"
	"hash/fnv"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/game"
)

// GenOptions bounds the worlds Generate draws. The zero value asks for the
// defaults.
type GenOptions struct {
	// MaxClients caps the fleet size (default 10, floor 2).
	MaxClients int
	// MaxRounds caps the training horizon (default 16, floor 4).
	MaxRounds int
	// Schemes is the pricing-scheme pool drawn from (default: the three
	// built-ins). Any name registered via game.RegisterScheme is usable.
	Schemes []string
	// NoMembership suppresses join/leave faults — for metamorphic relations
	// that need a fixed roster.
	NoMembership bool
	// NoAdversaries suppresses misreport/deviate/poison faults — for
	// relations that compare against an honest control.
	NoAdversaries bool
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxClients < 2 {
		o.MaxClients = 10
	}
	if o.MaxRounds < 4 {
		o.MaxRounds = 16
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []string{game.SchemeNameProposed, game.SchemeNameWeighted, game.SchemeNameUniform}
	}
	return o
}

// byteStream turns an arbitrary seed byte slice into a deterministic decision
// stream: the seed is consumed eight bytes at a time (zero-padded past its
// end) and folded through a splitmix64 chain. Early seed bytes steer early
// structural decisions, so a fuzzer's byte-level mutations translate into
// meaningfully different — but always valid — worlds.
type byteStream struct {
	seed  []byte
	pos   int
	state uint64
}

func newByteStream(seed []byte) *byteStream {
	return &byteStream{seed: seed, state: 0x6C62272E07BB0142}
}

// next folds the next eight seed bytes into the chain and returns the mixed
// state.
func (g *byteStream) next() uint64 {
	var word uint64
	for i := 0; i < 8; i++ {
		var b byte
		if g.pos < len(g.seed) {
			b = g.seed[g.pos]
			g.pos++
		}
		word = word<<8 | uint64(b)
	}
	g.state = splitmix(g.state ^ word)
	return g.state
}

// intn draws an integer in [0, n).
func (g *byteStream) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(g.next() % uint64(n))
}

// rangeInt draws an integer in [lo, hi] inclusive.
func (g *byteStream) rangeInt(lo, hi int) int {
	return lo + g.intn(hi-lo+1)
}

// f64 draws a float in [lo, hi).
func (g *byteStream) f64(lo, hi float64) float64 {
	u := g.next() >> 11 // 53 bits
	return lo + (hi-lo)*(float64(u)/(1<<53))
}

// coin draws a Bernoulli(p) decision.
func (g *byteStream) coin(p float64) bool {
	return g.f64(0, 1) < p
}

// Generate derives a valid Scenario from an arbitrary byte seed with the
// default bounds — the property-based entry point: for every seed, including
// adversarial fuzzer-mutated ones, the result passes Validate and runs.
func Generate(seed []byte) Scenario {
	return GenerateWith(seed, GenOptions{})
}

// GenerateWith is Generate under explicit bounds. The same seed and options
// always produce the same Scenario, so generated worlds are as replayable as
// library ones: record the seed, regenerate the world.
func GenerateWith(seed []byte, opts GenOptions) Scenario {
	opts = opts.withDefaults()
	g := newByteStream(seed)

	digest := fnv.New64a()
	_, _ = digest.Write(seed)
	clients := g.rangeInt(2, opts.MaxClients)
	rounds := g.rangeInt(4, opts.MaxRounds)
	setups := []experiment.SetupID{experiment.Setup1, experiment.Setup2, experiment.Setup3}

	sc := Scenario{
		Name:         fmt.Sprintf("gen-%016x", digest.Sum64()),
		Description:  "property-generated world",
		Setup:        setups[g.intn(len(setups))],
		Scheme:       opts.Schemes[g.intn(len(opts.Schemes))],
		Clients:      clients,
		TotalSamples: clients * g.rangeInt(60, 120),
		Rounds:       rounds,
		LocalSteps:   g.rangeInt(1, 3),
		BatchSize:    g.rangeInt(4, 16),
		EvalEvery:    rounds, // evaluate once at the end: replays stay cheap
		Calibration:  1,
		Seed:         g.next(),
		CostScale:    g.f64(0.5, 2),
		CostSpread:   g.f64(0, 1.2),
		ValueScale:   g.f64(0.5, 2),
		BudgetScale:  g.f64(0.4, 2),
	}
	if sc.Setup != experiment.Setup1 {
		sc.MaxClientClasses = g.intn(4) // 0 keeps the setup default
	}

	// Fault schedule. Membership roles are drawn first and exclusively — a
	// joiner or leaver takes no other fault, and at least two clients always
	// stay plain members so the roster can never empty (the engine's plan
	// validation would reject it otherwise). Every remaining client draws
	// independent fault coins.
	churnBudget := clients - 2
	canChurn := !opts.NoMembership && clients >= 3 && rounds >= 3
	for n := 0; n < clients; n++ {
		if canChurn && churnBudget > 0 && g.coin(0.24) {
			churnBudget--
			kind := FaultJoin
			if g.coin(0.5) {
				kind = FaultLeave
			}
			sc.Faults = append(sc.Faults, ClientFault{
				Client: n, Kind: kind, Round: g.rangeInt(1, rounds-1),
			})
			continue
		}
		if g.coin(0.25) {
			sc.Faults = append(sc.Faults, ClientFault{
				Client: n, Kind: FaultStraggler, DelayFactor: g.f64(1.5, 8),
			})
		}
		if g.coin(0.15) {
			sc.Faults = append(sc.Faults, ClientFault{
				Client: n, Kind: FaultDropout, Round: g.rangeInt(1, rounds-1),
			})
		}
		if g.coin(0.2) {
			sc.Faults = append(sc.Faults, ClientFault{
				Client: n, Kind: FaultFlaky, Availability: g.f64(0.3, 0.9),
			})
		}
		if opts.NoAdversaries {
			continue
		}
		if g.coin(0.15) {
			sc.Faults = append(sc.Faults, ClientFault{
				Client: n, Kind: FaultMisreport, Factor: g.f64(0.3, 3.5),
			})
		}
		if g.coin(0.15) {
			sc.Faults = append(sc.Faults, ClientFault{
				Client: n, Kind: FaultDeviate, Factor: g.f64(0.2, 1.4),
			})
		}
		if g.coin(0.1) {
			sc.Faults = append(sc.Faults, ClientFault{
				Client: n, Kind: FaultPoison, Factor: g.f64(-4, 2), Round: g.intn(rounds),
			})
		}
	}
	return sc
}
