package scenario

import (
	"bytes"
	"context"
	"math"
	"runtime"
	"strings"
	"testing"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/testutil"
)

// TestGoldenTraces is the standing regression suite: every library scenario
// replays through the full pipeline at GOMAXPROCS 1 and GOMAXPROCS 4, the
// two traces must be byte-identical to each other, and the result must match
// the committed golden file byte-for-byte. Regenerate with
//
//	go test ./internal/scenario/ -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			traces := make(map[int][]byte, 2)
			for _, procs := range []int{1, 4} {
				prev := runtime.GOMAXPROCS(procs)
				trace, err := Run(context.Background(), sc)
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
				}
				b, err := trace.Canonical()
				if err != nil {
					t.Fatal(err)
				}
				traces[procs] = b
			}
			if !bytes.Equal(traces[1], traces[4]) {
				t.Fatal("trace differs between GOMAXPROCS 1 and 4: the pipeline lost bit-determinism")
			}
			testutil.Golden(t, sc.Name+".json", traces[4], *testutil.Update)
		})
	}
}

// TestTraceRoundTripsThroughJSON pins that a committed golden file decodes
// back into the trace that produced it.
func TestTraceRoundTripsThroughJSON(t *testing.T) {
	sc, err := ByName("baseline")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := back.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("trace does not round-trip through its canonical JSON")
	}
}

// TestStragglersStretchTimeNotParticipation compares a faulted scenario with
// its fault-free twin at the same seed: straggler delays must stretch the
// simulated wall clock while leaving the participation pattern — whose coin
// streams are drawn identically either way — untouched.
func TestStragglersStretchTimeNotParticipation(t *testing.T) {
	faulted, err := ByName("straggler-heavy")
	if err != nil {
		t.Fatal(err)
	}
	clean := faulted
	clean.Faults = nil

	ft, err := Run(context.Background(), faulted)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Run(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	if ft.SimTimeS <= ct.SimTimeS {
		t.Fatalf("straggler run simulated %.3fs, clean run %.3fs: stragglers must stretch the clock",
			ft.SimTimeS, ct.SimTimeS)
	}
	for n := range ft.Participation {
		if ft.Participation[n] != ct.Participation[n] {
			t.Fatalf("client %d participation changed %d -> %d: stragglers must not perturb sampling",
				n, ct.Participation[n], ft.Participation[n])
		}
	}
	if ft.FinalLoss != ct.FinalLoss {
		t.Fatal("straggler delays changed the trained model: timing must stay out of the training path")
	}
}

// TestDropoutSilencesClient verifies the dropout fault: the scheduled client
// participates in no round at or after its dropout round, and the trace
// records the schedule.
func TestDropoutSilencesClient(t *testing.T) {
	sc, err := ByName("adversarial-dropout")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	drops := map[int]int{}
	for _, f := range sc.Faults {
		if f.Kind == FaultDropout {
			drops[f.Client] = f.Round
		}
	}
	if len(drops) == 0 {
		t.Fatal("scenario lost its dropout schedule")
	}
	for n, round := range drops {
		if trace.DroppedAt[n] != round {
			t.Fatalf("trace.DroppedAt[%d] = %d, want %d", n, trace.DroppedAt[n], round)
		}
		if max := trace.Participation[n]; max > round {
			t.Fatalf("client %d joined %d rounds but dropped at round %d", n, max, round)
		}
	}
	// The fault-free twin must see strictly more participation from the
	// dropped clients (they had q near qmax in this scenario).
	clean := sc
	clean.Faults = nil
	ct, err := Run(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	for n := range drops {
		if ct.Participation[n] <= trace.Participation[n] {
			t.Fatalf("client %d: clean run joined %d rounds, faulted %d — dropout had no bite",
				n, ct.Participation[n], trace.Participation[n])
		}
	}
}

// TestChurnDepressesEmpiricalQ checks the flaky fault: intermittent
// availability must pull the empirical participation rate below the priced
// belief for afflicted clients.
func TestChurnDepressesEmpiricalQ(t *testing.T) {
	sc, err := ByName("churn")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	clean := sc
	clean.Faults = nil
	ct, err := Run(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	flaky := map[int]bool{}
	var faultedJoins, cleanJoins int
	for _, f := range sc.Faults {
		flaky[f.Client] = true
		faultedJoins += trace.Participation[f.Client]
		cleanJoins += ct.Participation[f.Client]
	}
	if faultedJoins >= cleanJoins {
		t.Fatalf("flaky clients joined %d rounds vs %d clean: churn had no bite", faultedJoins, cleanJoins)
	}
	// Healthy clients draw their willingness coins from a stream the fault
	// process never touches: their participation must be identical.
	for n := range trace.Participation {
		if flaky[n] {
			continue
		}
		if trace.Participation[n] != ct.Participation[n] {
			t.Fatalf("healthy client %d participation changed %d -> %d under churn: fault coins leaked into the willingness stream",
				n, ct.Participation[n], trace.Participation[n])
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	base := Scenario{
		Name:    "v",
		Setup:   experiment.Setup2,
		Clients: 4, Rounds: 4, LocalSteps: 2, BatchSize: 4,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }, "empty name"},
		{"one client", func(s *Scenario) { s.Clients = 1 }, "two clients"},
		{"no rounds", func(s *Scenario) { s.Rounds = 0 }, "training scale"},
		{"negative spread", func(s *Scenario) { s.CostSpread = -1 }, "spread"},
		{"bad scheme", func(s *Scenario) { s.Scheme = "no-such-scheme" }, "no-such-scheme"},
		{"fault out of range", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 9, Kind: FaultDropout, Round: 1}}
		}, "out of range"},
		{"straggler needs factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultStraggler}}
		}, "delay factor"},
		{"flaky needs availability", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultFlaky, Availability: 1.5}}
		}, "availability"},
		{"duplicate fault", func(s *Scenario) {
			s.Faults = []ClientFault{
				{Client: 0, Kind: FaultDropout, Round: 1},
				{Client: 0, Kind: FaultDropout, Round: 2},
			}
		}, "duplicate"},
		{"unknown kind", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultKind(99)}}
		}, "unknown fault kind"},
		{"negative delay factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultStraggler, DelayFactor: -2}}
		}, "delay factor"},
		{"NaN delay factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultStraggler, DelayFactor: math.NaN()}}
		}, "delay factor"},
		{"infinite delay factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultStraggler, DelayFactor: math.Inf(1)}}
		}, "delay factor"},
		{"NaN availability", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultFlaky, Availability: math.NaN()}}
		}, "availability"},
		{"dropout past horizon", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultDropout, Round: 4}}
		}, "past the 4-round horizon"},
		{"misreport needs positive factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultMisreport, Factor: 0}}
		}, "cost factor"},
		{"misreport NaN factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultMisreport, Factor: math.NaN()}}
		}, "cost factor"},
		{"deviate negative factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultDeviate, Factor: -0.5}}
		}, "willingness factor"},
		{"deviate infinite factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultDeviate, Factor: math.Inf(1)}}
		}, "willingness factor"},
		{"poison NaN factor", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultPoison, Factor: math.NaN()}}
		}, "delta factor"},
		{"poison round past horizon", func(s *Scenario) {
			s.Faults = []ClientFault{{Client: 0, Kind: FaultPoison, Factor: 2, Round: 4}}
		}, "start round"},
		{"NaN cost scale", func(s *Scenario) {
			s.CostScale = math.NaN()
		}, "non-finite economics"},
		{"infinite budget scale", func(s *Scenario) {
			s.BudgetScale = math.Inf(1)
		}, "non-finite economics"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base
			tc.mutate(&sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestLibraryWellFormed(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("library has %d scenarios, want at least 8", len(names))
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate scenario name %q", name)
		}
		seen[name] = true
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("library scenario %q invalid: %v", name, err)
		}
		if sc.Description == "" {
			t.Fatalf("library scenario %q has no description", name)
		}
	}
	if _, err := ByName("definitely-not-a-scenario"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestFaultSamplerEffectiveQIsPricedBelief(t *testing.T) {
	q := []float64{0.5, 0.8}
	sch := compileSchedule(2, []ClientFault{{Client: 1, Kind: FaultFlaky, Availability: 0.1}})
	s := engine.NewFaultSampler(q, sch, stats.NewRNG(1), stats.NewRNG(2))
	eff := s.EffectiveQ()
	for i := range q {
		if eff[i] != q[i] {
			t.Fatalf("EffectiveQ[%d] = %v, want the priced %v: the server must not observe the fault process",
				i, eff[i], q[i])
		}
	}
}
