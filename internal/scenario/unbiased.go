package scenario

import (
	"context"
	"fmt"
	"math"

	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// ReplayConfig tunes the metamorphic unbiasedness replay. The zero value asks
// for the defaults.
type ReplayConfig struct {
	// Reps is the number of independent participation draws (default 160).
	Reps int
	// Round is the training round whose aggregate is replayed (default 0).
	// The model is held at w^0 for every rep, so the only randomness under
	// test is the participation sampling itself.
	Round int
	// Probes is the number of deterministic Gaussian probe directions the
	// aggregates are projected onto (default 3): a scalar z-test per probe
	// instead of a d-dimensional one, without privileging any coordinate.
	Probes int
	// Aggregator overrides the aggregation rule under test (default
	// engine.UnbiasedAggregator — swap in a biased rule to verify the checker
	// has teeth).
	Aggregator engine.Aggregator
	// Seed perturbs the replay's own sampling streams so independent checks
	// of one scenario draw independent participation sequences.
	Seed uint64
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Reps == 0 {
		c.Reps = 160
	}
	if c.Probes == 0 {
		c.Probes = 3
	}
	if c.Aggregator == nil {
		c.Aggregator = engine.UnbiasedAggregator{}
	}
	return c
}

// Replay is the evidence ReplayAggregate collects: per-probe projections of
// Reps independently sampled one-round aggregates, next to the analytic
// expectation of the estimator and of the full-participation gradient step.
//
// The unbiasedness theorem (Lemma 1) says E[aggregate] = Σ_n p_n (a_n/q_n) Δ_n
// where p_n is each client's true marginal participation probability and q_n
// the server's priced belief. TargetProj is that expectation; FullProj is the
// full-participation step Σ_n a_n Δ_n. For an honest fleet p_n = q_n·avail_n
// makes the two differ only by exogenous faults; for a deviating fleet they
// split — the checker asserts the estimator tracks TargetProj, whatever the
// schedule did.
type Replay struct {
	// Scenario and Round identify what was replayed.
	Scenario string
	Round    int
	// Clients is the fleet size; Active the roster in effect at the round.
	Clients int
	Active  []bool
	// TrueP[n] is the analytic marginal participation probability of client n
	// at the round (drop × willingness × availability); PricedQ[n] is the
	// server's belief the aggregator divides by.
	TrueP   []float64
	PricedQ []float64
	// TargetProj[k] is the analytic expectation of the aggregate projected on
	// probe k; FullProj[k] the full-participation gradient step's projection.
	TargetProj []float64
	FullProj   []float64
	// VarProj[k] is the exact variance of a single draw's probe-k projection
	// under the round's independent participation coins:
	// Σ_n (a_n Δ_n·v_k / q_n)² p_n(1−p_n). A checker should divide by this
	// analytic spread, not the sample's own: in a finite replay a near-clamp
	// client may never flip its coin, and the sample variance then
	// underestimates the estimator's true spread badly enough to manufacture
	// an enormous z from a perfectly unbiased rule (fuzzer-found).
	VarProj []float64
	// ModalProj[k] projects the single most likely aggregate (every client in
	// iff trueP >= 1/2) on probe k, and ConstProb is the probability that all
	// Reps draws produce exactly that pattern — diagnostic context for a
	// sample that never varied: when ConstProb is non-negligible a constant
	// draw is expected behaviour, not a degenerate estimator — a fleet priced
	// at q = 0.98 simply may never flip its coin in a finite replay.
	ModalProj []float64
	ConstProb float64
	// Samples[k] holds the Reps projected aggregates for probe k.
	Samples [][]float64
}

// ReplayAggregate compiles the scenario's world once, computes every active
// client's round-Round model delta exactly once, and then replays the round's
// participation sampling Reps times on fresh coin streams, aggregating the
// fixed deltas under the rule under test. Because the deltas are fixed, the
// sample mean of each probe projection converges on the estimator's true
// expectation — which the unbiasedness theorem pins at TargetProj — and a
// z-test against it becomes a direct falsification attempt on Lemma 1 for
// this scenario's exact fault and membership schedule.
func ReplayAggregate(ctx context.Context, sc Scenario, cfg ReplayConfig) (*Replay, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	sc = sc.withDefaults()
	if cfg.Round < 0 || cfg.Round >= sc.Rounds {
		return nil, fmt.Errorf("scenario: replay round %d outside [0,%d)", cfg.Round, sc.Rounds)
	}
	w, err := prepare(ctx, sc)
	if err != nil {
		return nil, err
	}

	// Roster and priced q in effect at the round: events at rounds <= Round
	// have fired (the orchestrator fires a boundary event before the round
	// executes), and each epoch re-priced the sub-game over its roster.
	plan := compileMembership(sc.Clients, sc.Faults)
	active := plan.ActiveAt(cfg.Round+1, sc.Clients)
	q := append([]float64(nil), w.q...)
	if plan != nil {
		ps, err := game.SchemeByName(sc.Scheme)
		if err != nil {
			return nil, err
		}
		rp, err := game.NewRepricer(w.pricing, ps)
		if err != nil {
			return nil, err
		}
		roster := plan.ActiveAt(0, sc.Clients)
		if _, err := rp.Reprice(roster, q, nil); err != nil {
			return nil, err
		}
		for _, ev := range plan.Events {
			if ev.Round > cfg.Round {
				break
			}
			for _, n := range ev.Join {
				roster[n] = true
			}
			for _, n := range ev.Leave {
				roster[n] = false
			}
			if _, err := rp.Reprice(roster, q, nil); err != nil {
				return nil, err
			}
		}
	}

	// Data weights renormalized over the active roster, exactly as the
	// orchestrator aggregates them.
	weights := append([]float64(nil), w.env.Fed.Weights...)
	if plan != nil {
		sum := 0.0
		for n, a := range active {
			if a {
				sum += weights[n]
			}
		}
		for n := range weights {
			if active[n] {
				weights[n] /= sum
			} else {
				weights[n] = 0
			}
		}
	}

	// Every active client's delta at the round, computed exactly once from
	// the fixed model w^0 — the same executors (the n-th Split of the run
	// seed) every real backend derives.
	root := stats.NewRNG(sc.Seed ^ 0x9E3779B97F4A7C15)
	root.Split() // will stream, unused here
	root.Split() // avail stream, unused here
	spec := engine.Spec{
		Model:      w.env.Model,
		Fed:        w.env.Fed,
		Rounds:     sc.Rounds,
		LocalSteps: sc.LocalSteps,
		BatchSize:  sc.BatchSize,
		Schedule:   expDecaySchedule(),
		EvalEvery:  sc.EvalEvery,
		Seed:       root.Uint64(),
	}
	backend := engine.NewLocalBackend(engine.LocalOptions{Parallel: true})
	if err := backend.Open(ctx, &spec); err != nil {
		return nil, err
	}
	defer func() { _ = backend.Close() }()
	global := w.env.Model.ZeroParams()
	lr := spec.Schedule.LR(cfg.Round)
	var tasks []engine.ClientTask
	for n := 0; n < sc.Clients; n++ {
		if active[n] {
			tasks = append(tasks, engine.ClientTask{Client: n, LR: lr})
		}
	}
	raw, err := backend.Dispatch(ctx, cfg.Round, global, tasks)
	if err != nil {
		return nil, fmt.Errorf("scenario: replay dispatch: %w", err)
	}
	deltas := make(map[int]tensor.Vec, len(raw))
	for _, u := range raw {
		deltas[u.Client] = u.Delta.Clone()
	}

	// Analytic truth: trueP from the fault schedule's exact coin probabilities
	// (including strategic deviation), target = Σ a_n (p_n/q_n) Δ_n, full
	// step = Σ a_n Δ_n.
	dim := len(global)
	trueP := make([]float64, sc.Clients)
	target := tensor.NewVec(dim)
	full := tensor.NewVec(dim)
	modal := tensor.NewVec(dim)
	patternProb := 1.0
	for n := 0; n < sc.Clients; n++ {
		if !active[n] {
			continue
		}
		trueP[n] = w.sch.ParticipationProb(n, cfg.Round, q[n])
		if qn := q[n]; qn > 0 {
			_ = target.AddScaled(weights[n]*trueP[n]/qn, deltas[n])
		}
		_ = full.AddScaled(weights[n], deltas[n])
		if trueP[n] >= 0.5 {
			patternProb *= trueP[n]
			if q[n] > 0 {
				_ = modal.AddScaled(weights[n]/q[n], deltas[n])
			}
		} else {
			patternProb *= 1 - trueP[n]
		}
	}

	// Deterministic Gaussian probe directions, unit-normalized.
	probeRNG := stats.NewRNG(sc.Seed ^ cfg.Seed ^ 0xC2B2AE3D27D4EB4F)
	probes := make([]tensor.Vec, cfg.Probes)
	for k := range probes {
		v := tensor.NewVec(dim)
		for i := range v {
			v[i] = probeRNG.NormFloat64()
		}
		if norm := v.Norm2(); norm > 0 {
			v.Scale(1 / norm)
		}
		probes[k] = v
	}
	rep := &Replay{
		Scenario:   sc.Name,
		Round:      cfg.Round,
		Clients:    sc.Clients,
		Active:     active,
		TrueP:      trueP,
		PricedQ:    q,
		TargetProj: make([]float64, cfg.Probes),
		FullProj:   make([]float64, cfg.Probes),
		VarProj:    make([]float64, cfg.Probes),
		ModalProj:  make([]float64, cfg.Probes),
		ConstProb:  math.Pow(patternProb, float64(cfg.Reps)),
		Samples:    make([][]float64, cfg.Probes),
	}
	for k, v := range probes {
		rep.TargetProj[k] = mustDot(v, target)
		rep.FullProj[k] = mustDot(v, full)
		rep.ModalProj[k] = mustDot(v, modal)
		rep.Samples[k] = make([]float64, 0, cfg.Reps)
	}
	for n := 0; n < sc.Clients; n++ {
		if !active[n] || q[n] <= 0 {
			continue
		}
		if pv := trueP[n] * (1 - trueP[n]); pv > 0 {
			for k, v := range probes {
				d := mustDot(v, deltas[n]) * weights[n] / q[n]
				rep.VarProj[k] += d * d * pv
			}
		}
	}

	// The replay loop: fresh willingness/availability streams per rep, the
	// exact sampler and aggregation path the engine runs, fixed deltas.
	agg := tensor.NewVec(dim)
	var updates []engine.ClientUpdate
	for r := 0; r < cfg.Reps; r++ {
		rroot := stats.NewRNG(splitmix(sc.Seed ^ cfg.Seed ^ uint64(r)*0x9E3779B97F4A7C15))
		sampler := engine.NewFaultSampler(q, w.sch, rroot.Split(), rroot.Split())
		participants := sampler.Sample(cfg.Round)
		updates = updates[:0]
		for _, n := range participants {
			if !active[n] {
				continue
			}
			updates = append(updates, engine.ClientUpdate{Client: n, Delta: deltas[n]})
		}
		agg.Zero()
		if err := cfg.Aggregator.Aggregate(agg, updates, weights, q); err != nil {
			return nil, fmt.Errorf("scenario: replay rep %d aggregate: %w", r, err)
		}
		for k, v := range probes {
			rep.Samples[k] = append(rep.Samples[k], mustDot(v, agg))
		}
	}
	return rep, nil
}

// mustDot is Dot over vectors whose lengths match by construction.
func mustDot(v, u tensor.Vec) float64 {
	s, _ := tensor.Dot(v, u)
	return s
}

// splitmix is one splitmix64 scramble step — the same finalizer the stats
// package seeds with, reused to derive well-separated per-rep stream seeds.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
