package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"

	"unbiasedfl/internal/adversary"
	"unbiasedfl/internal/checkpoint"
	"unbiasedfl/internal/engine"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
)

// Backend selects the execution substrate a scenario runs on — the same
// seam every experiment run uses. Every backend executes the same
// orchestrated round protocol (engine.Orchestrator), so the produced Trace
// is byte-identical across backends — the property the backend-equivalence
// matrix test pins for the whole golden library.
type Backend = experiment.Backend

// The backends a scenario can run on.
const (
	BackendLocal   = experiment.BackendLocal
	BackendCluster = experiment.BackendCluster
)

// RunConfig tunes a scenario run beyond the scenario itself: which execution
// backend carries the local updates, the cluster harness knobs when it is
// BackendCluster, and the durability configuration.
type RunConfig struct {
	Backend    Backend
	Cluster    ClusterConfig
	Checkpoint CheckpointConfig
	// GroupSize, when above one, aggregates hierarchically: clients fold
	// their weighted deltas in groups of this size and only group partials
	// reach the coordinator (on the cluster backend each group also
	// multiplexes onto one socket node). Purely an execution knob: the
	// produced Trace is byte-identical to a flat run — the fixed-point fold
	// (internal/fixpoint) is grouping-invariant — which the hierarchical
	// axis of the backend-equivalence matrix pins.
	GroupSize int
	// Events, when non-nil, receives the run's typed progress stream:
	// SchemeSolved once the market is priced, then RoundStart/RoundEnd per
	// training round (Run is always 0 — a scenario is a single repetition).
	// Events are delivered serially on the orchestration goroutine in an
	// order that is deterministic for a fixed scenario — the same contract
	// Session observers carry — and attaching an observer never perturbs the
	// trace. This is the seam the serving daemon's SSE streams tap.
	Events experiment.Observer
}

// CheckpointConfig makes a scenario run durable: with a non-empty Path the
// run commits a checkpoint at every round boundary, and a resumed run
// replays to a Trace byte-identical to the uninterrupted one (the invariant
// internal/checkpoint states and the resume sweep tests pin) — on either
// backend, and even across backends.
type CheckpointConfig struct {
	// Path is the snapshot file location ("" disables checkpointing); the
	// trace WAL lives beside it at Path+".wal".
	Path string
	// Resume continues from an existing checkpoint at Path when one exists
	// (and starts fresh when none does). False discards any prior
	// checkpoint there.
	Resume bool
	// Sync fsyncs every commit — machine-crash durability at real per-round
	// I/O cost. Off, commits still survive a process kill (SIGKILL
	// included); see checkpoint.Options.
	Sync bool
	// Interval snapshots every k-th boundary (0 = every round). The WAL
	// gets every round regardless.
	Interval int
	// AfterCommit, when non-nil, runs after each boundary becomes durable
	// with the number of committed rounds — the seam the crash/resume
	// harness uses to kill the process at an exact boundary.
	AfterCommit func(rounds int)
}

// Run compiles the scenario and executes it in-process through the full
// pipeline — data generation, bound calibration, game assembly, pricing via
// the scheme registry, fault-composed participation sampling, the engine's
// local backend, and the sim timing model — returning the canonical Trace.
// Everything derives from Scenario.Seed: two Runs of the same scenario are
// bit-identical, for any GOMAXPROCS. Cancelling ctx aborts promptly with
// ctx.Err().
func Run(ctx context.Context, sc Scenario) (*Trace, error) {
	return RunWith(ctx, sc, RunConfig{})
}

// RunWith is the single scenario entry point behind Run and RunCluster: it
// compiles the scenario into an engine spec, points the orchestrator at the
// selected execution backend, and folds the run into the canonical Trace.
// The trace is byte-identical for every backend.
func RunWith(ctx context.Context, sc Scenario, cfg RunConfig) (*Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc = sc.withDefaults()
	w, err := prepare(ctx, sc)
	if err != nil {
		return nil, err
	}
	env, outcome, q, sch := w.env, w.outcome, w.q, w.sch
	for n, factor := range sch.Delay {
		if factor == 1 {
			continue
		}
		if err := env.Timing.Scale(n, factor); err != nil {
			return nil, err
		}
	}

	// One root stream feeds the sampler and the per-client executors so the
	// whole run is a pure function of the scenario seed, whatever the
	// backend.
	root := stats.NewRNG(sc.Seed ^ 0x9E3779B97F4A7C15)
	sampler := engine.NewFaultSampler(q, sch, root.Split(), root.Split())
	if cfg.Events != nil {
		cfg.Events.OnEvent(experiment.SchemeSolved{Scheme: sc.Scheme, Outcome: outcome})
	}
	spec := engine.Spec{
		Model:      env.Model,
		Fed:        env.Fed,
		Rounds:     sc.Rounds,
		LocalSteps: sc.LocalSteps,
		BatchSize:  sc.BatchSize,
		Schedule:   expDecaySchedule(),
		EvalEvery:  sc.EvalEvery,
		Seed:       root.Uint64(),
		Sampler:    sampler,
		Aggregator: engine.UnbiasedAggregator{},
		GroupSize:  cfg.GroupSize,
	}
	// Gradient poisoning rides the orchestrator's tamper seam, so it is
	// byte-identical on every execution backend and replays exactly on
	// resume.
	spec.Tamper, err = adversary.Tamper(sc.Clients, w.adv.poisons)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}

	// Elastic membership: compile the join/leave faults into a round-boundary
	// plan and hang the re-pricing hook on it. At every epoch (including the
	// initial roster, and including epochs replayed on resume) the hook
	// re-solves the sub-game over the active clients — through one persistent
	// warm solver whose results are bit-identical to cold solves — pushes the
	// new participation levels into the sampler's thresholds, and appends a
	// ledger row. The headline Equilibrium stays the full-fleet pricing; the
	// ledger carries the per-epoch economics.
	var ledger []TraceEpoch
	if plan := compileMembership(sc.Clients, sc.Faults); plan != nil {
		ps, err := game.SchemeByName(sc.Scheme)
		if err != nil {
			return nil, err
		}
		// The repricer works from the market the server believes in — the
		// reported params when someone misreports — so a Stage-I lie keeps
		// distorting every epoch's sub-game, exactly as it would in the field.
		rp, err := game.NewRepricer(w.pricing, ps)
		if err != nil {
			return nil, fmt.Errorf("scenario %q repricer: %w", sc.Name, err)
		}
		liveQ := append([]float64(nil), q...)
		spec.Membership = plan
		spec.OnEpoch = func(r engine.Roster) error {
			ep, err := rp.Reprice(r.Active, liveQ, nil)
			if err != nil {
				return fmt.Errorf("epoch %d re-pricing: %w", r.Epoch, err)
			}
			if err := sampler.SetQ(liveQ); err != nil {
				return err
			}
			ledger = append(ledger, TraceEpoch{
				Epoch:     r.Epoch,
				Round:     r.Round,
				Joined:    append([]int(nil), r.Joined...),
				Left:      append([]int(nil), r.Left...),
				Active:    r.NumActive(),
				Spent:     ep.Spent,
				ServerObj: ep.ServerObj,
			})
			return nil
		}
	}
	if obs := cfg.Events; obs != nil {
		scheme := sc.Scheme
		spec.OnRoundStart = func(round int) {
			obs.OnEvent(experiment.RoundStart{Scheme: scheme, Round: round})
		}
		spec.OnRound = func(m engine.RoundMetrics) {
			obs.OnEvent(experiment.RoundEnd{
				Scheme:       scheme,
				Round:        m.Round,
				Participants: m.Participants,
				Evaluated:    m.Evaluated,
				Loss:         m.GlobalLoss,
				Accuracy:     m.TestAccuracy,
			})
		}
	}
	if cfg.Checkpoint.Path != "" {
		mgr, st, err := openCheckpoint(sc, cfg.Checkpoint)
		if err != nil {
			return nil, err
		}
		defer func() { _ = mgr.Close() }()
		spec.Resume = st
		after := cfg.Checkpoint.AfterCommit
		spec.OnRoundCommit = func(st *engine.RunState) error {
			if err := mgr.Commit(st); err != nil {
				return err
			}
			if after != nil {
				after(st.NextRound)
			}
			return nil
		}
	}
	backend, err := newBackend(cfg, sch)
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(ctx, spec, backend)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}

	trace, err := assembleTrace(sc, env, outcome, q, sch, res, ledger)
	if err != nil {
		return nil, err
	}
	if w.adv.present() {
		if trace.Adversary, err = adversaryImpact(ctx, sc, w, trace); err != nil {
			return nil, fmt.Errorf("scenario %q adversary metrics: %w", sc.Name, err)
		}
	}
	return trace, nil
}

// adversaryImpact scores the realized (adversarial) run against its truthful
// counterfactuals: the market priced on true costs, and an honest training
// twin replayed with the same seed, exogenous faults, and membership churn
// but none of the adversarial behaviours.
func adversaryImpact(ctx context.Context, sc Scenario, w *world, realized *Trace) (*TraceAdversary, error) {
	truthQ := w.env.Params.ClampQ(w.truthful.Q)
	truthUtil, err := w.env.Params.TotalClientUtility(w.truthful.P, truthQ, nil)
	if err != nil {
		return nil, err
	}
	honestLoss, honestAcc, err := runHonestTwin(ctx, sc, w, truthQ)
	if err != nil {
		return nil, err
	}
	adv := &TraceAdversary{
		TruthfulSpent:       w.truthful.Spent,
		TruthfulServerObj:   w.truthful.ServerObj,
		ServerObjInflation:  w.outcome.ServerObj - w.truthful.ServerObj,
		UtilityShift:        realized.TotalClientUtility - truthUtil,
		HonestFinalLoss:     honestLoss,
		HonestFinalAccuracy: honestAcc,
		LossInflation:       realized.FinalLoss - honestLoss,
		AccuracyDrop:        honestAcc - realized.FinalAccuracy,
	}
	adv.Misreporting, adv.Deviating, adv.Poisoning = w.adv.clients()
	return adv, nil
}

// runHonestTwin replays the scenario with every adversarial behaviour
// stripped — truthful pricing, obedient participation, clean updates — on the
// already-built environment. The twin re-derives the root stream exactly as
// the realized run did, so the two runs differ only by the adversary, never
// by stream displacement.
func runHonestTwin(ctx context.Context, sc Scenario, w *world, truthQ []float64) (loss, acc float64, err error) {
	faults := honestFaults(sc.Faults)
	sch := compileSchedule(sc.Clients, faults)
	root := stats.NewRNG(sc.Seed ^ 0x9E3779B97F4A7C15)
	sampler := engine.NewFaultSampler(append([]float64(nil), truthQ...), sch, root.Split(), root.Split())
	spec := engine.Spec{
		Model:      w.env.Model,
		Fed:        w.env.Fed,
		Rounds:     sc.Rounds,
		LocalSteps: sc.LocalSteps,
		BatchSize:  sc.BatchSize,
		Schedule:   expDecaySchedule(),
		EvalEvery:  sc.EvalEvery,
		Seed:       root.Uint64(),
		Sampler:    sampler,
		Aggregator: engine.UnbiasedAggregator{},
	}
	if plan := compileMembership(sc.Clients, faults); plan != nil {
		ps, err := game.SchemeByName(sc.Scheme)
		if err != nil {
			return 0, 0, err
		}
		rp, err := game.NewRepricer(w.env.Params, ps)
		if err != nil {
			return 0, 0, err
		}
		liveQ := append([]float64(nil), truthQ...)
		spec.Membership = plan
		spec.OnEpoch = func(r engine.Roster) error {
			if _, err := rp.Reprice(r.Active, liveQ, nil); err != nil {
				return fmt.Errorf("honest twin epoch %d re-pricing: %w", r.Epoch, err)
			}
			return sampler.SetQ(liveQ)
		}
	}
	res, err := engine.Run(ctx, spec, engine.NewLocalBackend(engine.LocalOptions{Parallel: true}))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, 0, ctxErr
		}
		return 0, 0, fmt.Errorf("honest twin: %w", err)
	}
	return res.FinalLoss, res.FinalAcc, nil
}

// openCheckpoint attaches or creates the run's checkpoint. The scenario's
// identity (name, seed, fleet, horizon) guards against resuming a
// checkpoint into a different world.
func openCheckpoint(sc Scenario, cc CheckpointConfig) (*checkpoint.Manager, *engine.RunState, error) {
	meta := checkpoint.Meta{Label: sc.Name, Seed: sc.Seed, Clients: sc.Clients, Rounds: sc.Rounds}
	opts := checkpoint.Options{Interval: cc.Interval, Sync: cc.Sync}
	if cc.Resume {
		return checkpoint.Attach(cc.Path, meta, opts)
	}
	mgr, err := checkpoint.Create(cc.Path, meta, opts)
	return mgr, nil, err
}

// newBackend compiles the run configuration into an execution backend.
func newBackend(cfg RunConfig, sch engine.FaultSchedule) (engine.ExecutionBackend, error) {
	switch cfg.Backend {
	case BackendLocal:
		return engine.NewLocalBackend(engine.LocalOptions{Parallel: true}), nil
	case BackendCluster:
		return engine.NewClusterBackend(engine.ClusterOptions{
			Timeout:      cfg.Cluster.Timeout,
			NodeDelay:    cfg.Cluster.nodeDelay(sch),
			RoundTimeout: cfg.Cluster.RoundTimeout,
		}), nil
	default:
		return nil, fmt.Errorf("scenario: unknown backend %v", cfg.Backend)
	}
}

// expDecaySchedule is the training schedule every scenario runs under.
func expDecaySchedule() engine.Schedule {
	return engine.ExpDecay{Eta0: 0.1, Decay: 0.996}
}

// world is a scenario compiled to its priced market: the built environment
// (with economics skew applied), the pricing the server actually computed —
// on reported costs when anyone misreports — alongside the truthful
// counterfactual, the clamped participation vector, the compiled fault
// schedule, and the adversarial roster. Every execution backend goes through
// this single path, so all backends price the same market for the same
// Scenario.
type world struct {
	env *experiment.Environment
	// outcome is the pricing the server posted; truthful is the pricing a
	// fully honest Stage-I would have produced. They are the same object when
	// nobody misreports.
	outcome  *game.Outcome
	truthful *game.Outcome
	// pricing is the game the server believes in — reported params under
	// misreporting, env.Params otherwise. Epoch re-pricing works from it;
	// utility scoring always works from env.Params (true costs).
	pricing *game.Params
	q       []float64
	sch     engine.FaultSchedule
	adv     adversarySpec
}

// prepare compiles a defaulted scenario into its world.
func prepare(ctx context.Context, sc Scenario) (*world, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	ps, err := game.SchemeByName(sc.Scheme)
	if err != nil {
		return nil, err
	}
	env, err := experiment.BuildSetup(ctx, sc.Setup, sc.options())
	if err != nil {
		return nil, err
	}
	if err := applyEconomics(env.Params, sc); err != nil {
		return nil, err
	}
	adv := compileAdversary(sc.Faults)
	pricing, err := adversary.ReportedParams(env.Params, adv.misreports)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	truthful, err := priceThrough(env, ps, env.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario %q pricing: %w", sc.Name, err)
	}
	outcome := truthful
	if pricing != env.Params {
		if outcome, err = priceThrough(env, ps, pricing); err != nil {
			return nil, fmt.Errorf("scenario %q misreported pricing: %w", sc.Name, err)
		}
	}
	return &world{
		env:      env,
		outcome:  outcome,
		truthful: truthful,
		pricing:  pricing,
		q:        env.Params.ClampQ(outcome.Q),
		sch:      compileSchedule(sc.Clients, sc.Faults),
		adv:      adv,
	}, nil
}

// priceThrough resolves the outcome through the environment's memo-cache
// when one is attached.
func priceThrough(env *experiment.Environment, ps game.PricingScheme, params *game.Params) (*game.Outcome, error) {
	if env.Cache != nil {
		return env.Cache.Price(ps, params)
	}
	return ps.Price(params)
}

// applyEconomics rescales the generated cost/valuation draws and the budget
// per the scenario's skew knobs, then re-validates the game.
func applyEconomics(p *game.Params, sc Scenario) error {
	n := p.N()
	if n != sc.Clients {
		return errors.New("scenario: game size does not match fleet size")
	}
	for i := 0; i < n; i++ {
		ramp := 1.0
		if sc.CostSpread > 0 && n > 1 {
			ramp = math.Exp(sc.CostSpread * (2*float64(i)/float64(n-1) - 1))
		}
		p.C[i] *= sc.CostScale * ramp
		p.V[i] *= sc.ValueScale
	}
	p.B *= sc.BudgetScale
	return p.Validate()
}

// assembleTrace folds the run into the canonical trace shape.
func assembleTrace(
	sc Scenario, env *experiment.Environment, outcome *game.Outcome,
	q []float64, sch engine.FaultSchedule, res *engine.RunResult,
	ledger []TraceEpoch,
) (*Trace, error) {
	counts := make([]int, sc.Clients)
	roundTrace := make([]TraceRound, 0, len(res.History))
	var clock float64
	for _, m := range res.History {
		d, err := env.Timing.RoundDuration(m.ParticipantIDs, sc.LocalSteps)
		if err != nil {
			return nil, err
		}
		clock += d.Seconds()
		for _, n := range m.ParticipantIDs {
			counts[n]++
		}
		roundTrace = append(roundTrace, TraceRound{
			Round:        m.Round,
			Participants: m.Participants,
			TimeS:        clock,
			Evaluated:    m.Evaluated,
			Loss:         m.GlobalLoss,
			Accuracy:     m.TestAccuracy,
		})
	}
	empirical := make([]float64, sc.Clients)
	for n, c := range counts {
		empirical[n] = float64(c) / float64(sc.Rounds)
	}
	utility, err := env.Params.TotalClientUtility(outcome.P, q, nil)
	if err != nil {
		return nil, err
	}
	negative := 0
	for _, p := range outcome.P {
		if p < 0 {
			negative++
		}
	}
	return &Trace{
		Scenario:    sc.Name,
		Description: sc.Description,
		Setup:       env.ID.String(),
		Scheme:      sc.Scheme,
		Clients:     sc.Clients,
		Rounds:      sc.Rounds,
		Seed:        sc.Seed,
		Equilibrium: TraceEquilibrium{
			P:         append([]float64(nil), outcome.P...),
			Q:         q,
			Spent:     outcome.Spent,
			ServerObj: outcome.ServerObj,
		},
		Participation:      counts,
		EmpiricalQ:         empirical,
		DroppedAt:          append([]int(nil), sch.DropRound...),
		Membership:         ledger,
		RoundTrace:         roundTrace,
		FinalLoss:          res.FinalLoss,
		FinalAccuracy:      res.FinalAcc,
		TotalClientUtility: utility,
		NegativePayments:   negative,
		SimTimeS:           clock,
	}, nil
}
