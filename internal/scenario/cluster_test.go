package scenario

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/testutil"
)

// TestBackendEquivalenceMatrix is the payoff of the unified engine: every
// golden-library scenario replays through BOTH execution backends — the
// in-process LocalBackend and the real-TCP ClusterBackend — at GOMAXPROCS 1
// and 4, flat and hierarchical (GroupSize 3), and every trace must be
// byte-for-byte identical (and, via the golden files, identical to the
// committed record). The golden traces are one backend-equivalence matrix,
// not disjoint suites.
func TestBackendEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster boots; skipped with -short")
	}
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			baseline := testutil.GoroutineBaseline()
			var reference []byte
			for _, procs := range []int{1, 4} {
				for _, cfg := range []RunConfig{
					{Backend: BackendLocal},
					{Backend: BackendLocal, GroupSize: 3},
					{Backend: BackendCluster, Cluster: ClusterConfig{Timeout: 30 * time.Second}},
					{Backend: BackendCluster, GroupSize: 3, Cluster: ClusterConfig{Timeout: 30 * time.Second}},
				} {
					prev := runtime.GOMAXPROCS(procs)
					trace, err := RunWith(context.Background(), sc, cfg)
					runtime.GOMAXPROCS(prev)
					if err != nil {
						t.Fatalf("%v K=%d GOMAXPROCS=%d: %v", cfg.Backend, cfg.GroupSize, procs, err)
					}
					b, err := trace.Canonical()
					if err != nil {
						t.Fatal(err)
					}
					if reference == nil {
						reference = b
						continue
					}
					if !bytes.Equal(reference, b) {
						t.Fatalf("%v K=%d GOMAXPROCS=%d trace diverges from the flat local GOMAXPROCS=1 reference: the backends are not equivalent",
							cfg.Backend, cfg.GroupSize, procs)
					}
				}
			}
			// The reference is also pinned against the committed golden, so a
			// matrix-wide drift cannot silently self-agree.
			testutil.Golden(t, sc.Name+".json", reference, false)
			testutil.WaitNoLeaks(t, baseline, 10*time.Second)
		})
	}
}

// clusterScenario is a 3-node fleet small enough for a TCP round-trip suite
// under -race.
func clusterScenario(faults []ClientFault) Scenario {
	return Scenario{
		Name:        "cluster-smoke",
		Description: "3-node loopback federation for the cluster harness tests",
		Setup:       experiment.Setup2,
		Clients:     3, TotalSamples: 240,
		Rounds: 6, LocalSteps: 2, BatchSize: 6,
		Seed:   77,
		Faults: faults,
	}
}

// TestClusterFaultedThreeNode boots a real TCP federation with a scheduled
// mid-run dropout, a straggler, and a flaky device, and verifies the trace
// matches the in-process run byte-for-byte — faults and all — with nothing
// leaked.
func TestClusterFaultedThreeNode(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	sc := clusterScenario([]ClientFault{
		{Client: 0, Kind: FaultStraggler, DelayFactor: 3},
		{Client: 1, Kind: FaultFlaky, Availability: 0.5},
		{Client: 2, Kind: FaultDropout, Round: 2},
	})
	cluster, err := RunCluster(context.Background(), sc, ClusterConfig{
		Timeout:       20 * time.Second,
		StragglerUnit: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := cluster.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	lb, err := local.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, lb) {
		t.Fatal("faulted cluster trace differs from the in-process trace")
	}
	if cluster.DroppedAt[2] != 2 {
		t.Fatalf("trace lost the dropout schedule: DroppedAt = %v", cluster.DroppedAt)
	}
	// The dropped client can contribute only to rounds before its crash.
	if cluster.Participation[2] > 2 {
		t.Fatalf("dropped client counted in %d rounds, dropped at round 2", cluster.Participation[2])
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestClusterHonorsCancellation cancels mid-run and requires prompt unwind
// with no leaked goroutines or sockets.
func TestClusterHonorsCancellation(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	ctx, cancel := context.WithCancel(context.Background())
	// A real 40ms-per-round straggler stall keeps the 50-round run alive for
	// seconds, guaranteeing the cancellation lands mid-run.
	sc := clusterScenario([]ClientFault{
		{Client: 0, Kind: FaultStraggler, DelayFactor: 2},
	})
	sc.Rounds = 50
	done := make(chan error, 1)
	go func() {
		_, err := RunCluster(ctx, sc, ClusterConfig{
			Timeout:       20 * time.Second,
			StragglerUnit: 20 * time.Millisecond,
		})
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled cluster returned %v, want context.Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cluster did not unwind after cancellation")
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}
