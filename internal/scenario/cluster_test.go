package scenario

import (
	"context"
	"errors"
	"testing"
	"time"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/testutil"
	"unbiasedfl/internal/transport"
)

// clusterScenario is a 3-node fleet small enough for a TCP round trip suite
// under -race.
func clusterScenario(faults []ClientFault) Scenario {
	return Scenario{
		Name:        "cluster-smoke",
		Description: "3-node loopback federation for the cluster harness tests",
		Setup:       experiment.Setup2,
		Clients:     3, TotalSamples: 240,
		Rounds: 6, LocalSteps: 2, BatchSize: 6,
		Seed:   77,
		Faults: faults,
	}
}

// TestClusterFaultedThreeNode boots a real TCP server plus three clients
// with a scheduled mid-run dropout, a straggler, and a flaky device, and
// verifies the federation finishes, marks the dropout, and leaks nothing.
func TestClusterFaultedThreeNode(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	sc := clusterScenario([]ClientFault{
		{Client: 0, Kind: FaultStraggler, DelayFactor: 3},
		{Client: 1, Kind: FaultFlaky, Availability: 0.5},
		{Client: 2, Kind: FaultDropout, Round: 2},
	})
	res, err := RunCluster(context.Background(), sc, ClusterConfig{
		Timeout:       20 * time.Second,
		StragglerUnit: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Server == nil {
		t.Fatal("no server result")
	}
	if !res.Server.Dropped[2] {
		t.Fatal("scheduled dropout client not marked dropped by the coordinator")
	}
	if !errors.Is(res.ClientErrs[2], transport.ErrInjectedCrash) {
		t.Fatalf("dropout client error = %v, want ErrInjectedCrash", res.ClientErrs[2])
	}
	for _, n := range []int{0, 1} {
		if res.ClientErrs[n] != nil {
			t.Fatalf("surviving client %d errored: %v", n, res.ClientErrs[n])
		}
		if res.Server.Dropped[n] {
			t.Fatalf("surviving client %d marked dropped", n)
		}
	}
	if len(res.Server.FinalModel) == 0 || !res.Server.FinalModel.IsFinite() {
		t.Fatal("faulted federation produced no usable model")
	}
	// The dropped client can contribute only to rounds before its crash.
	if res.Server.ParticipationCounts[2] > 2 {
		t.Fatalf("dropped client counted in %d rounds, crashed at round 2",
			res.Server.ParticipationCounts[2])
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestClusterCleanAgreesWithClients runs a fault-free 3-node federation and
// cross-checks the coordinator's participation ledger against each client's
// own count — the two sides of the wire must agree exactly.
func TestClusterCleanAgreesWithClients(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	res, err := RunCluster(context.Background(), clusterScenario(nil), ClusterConfig{
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := range res.ClientRounds {
		if res.ClientErrs[n] != nil {
			t.Fatalf("client %d: %v", n, res.ClientErrs[n])
		}
		if res.ClientRounds[n] != res.Server.ParticipationCounts[n] {
			t.Fatalf("client %d reports %d rounds, server counted %d",
				n, res.ClientRounds[n], res.Server.ParticipationCounts[n])
		}
		if res.Server.Dropped[n] {
			t.Fatalf("clean run marked client %d dropped", n)
		}
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestClusterHonorsCancellation cancels mid-run and requires prompt unwind
// with no leaked goroutines or sockets.
func TestClusterHonorsCancellation(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	ctx, cancel := context.WithCancel(context.Background())
	// A real 40ms-per-round straggler stall keeps the 50-round run alive for
	// seconds, guaranteeing the cancellation lands mid-run.
	sc := clusterScenario([]ClientFault{
		{Client: 0, Kind: FaultStraggler, DelayFactor: 2},
	})
	sc.Rounds = 50
	done := make(chan error, 1)
	go func() {
		_, err := RunCluster(ctx, sc, ClusterConfig{
			Timeout:       20 * time.Second,
			StragglerUnit: 20 * time.Millisecond,
		})
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled cluster returned %v, want context.Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cluster did not unwind after cancellation")
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}
