package scenario

import (
	"fmt"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/game"
)

// The named scenario library. Scales are deliberately small — each entry
// replays in well under a second — because the library doubles as the
// golden-trace regression corpus: every future PR replays all of it
// bit-for-bit. The regimes, not the magnitudes, are what each entry pins.
func library() []Scenario {
	return []Scenario{
		{
			Name:        "baseline",
			Description: "clean homogeneous fleet, no faults: the control every other scenario is read against",
			Setup:       experiment.Setup2,
			Clients:     6, TotalSamples: 600,
			Rounds: 16, LocalSteps: 4, BatchSize: 8,
			Seed: 11,
		},
		{
			Name:        "straggler-heavy",
			Description: "half the fleet is 4-8x slower; economics unchanged, wall-clock stretched",
			Setup:       experiment.Setup2,
			Clients:     6, TotalSamples: 600,
			Rounds: 16, LocalSteps: 4, BatchSize: 8,
			Seed: 12,
			Faults: []ClientFault{
				{Client: 1, Kind: FaultStraggler, DelayFactor: 6},
				{Client: 3, Kind: FaultStraggler, DelayFactor: 4},
				{Client: 5, Kind: FaultStraggler, DelayFactor: 8},
			},
		},
		{
			Name:        "churn",
			Description: "most of the fleet is only intermittently reachable (availability 0.45-0.7)",
			Setup:       experiment.Setup2,
			Clients:     6, TotalSamples: 600,
			Rounds: 20, LocalSteps: 4, BatchSize: 8,
			Seed: 13,
			Faults: []ClientFault{
				{Client: 0, Kind: FaultFlaky, Availability: 0.6},
				{Client: 2, Kind: FaultFlaky, Availability: 0.45},
				{Client: 3, Kind: FaultFlaky, Availability: 0.7},
				{Client: 5, Kind: FaultFlaky, Availability: 0.5},
			},
		},
		{
			Name:        "adversarial-dropout",
			Description: "the largest-weight clients leave permanently mid-run, the worst case for the server's priced belief",
			Setup:       experiment.Setup1,
			Clients:     6, TotalSamples: 600,
			Rounds: 16, LocalSteps: 4, BatchSize: 8,
			Seed: 14,
			Faults: []ClientFault{
				{Client: 0, Kind: FaultDropout, Round: 5},
				{Client: 1, Kind: FaultDropout, Round: 9},
			},
		},
		{
			Name:        "cost-skew",
			Description: "deterministic 11x end-to-end cost ratio across the fleet on top of the exponential draws",
			Setup:       experiment.Setup1,
			Clients:     6, TotalSamples: 600,
			Rounds: 16, LocalSteps: 4, BatchSize: 8,
			Seed:       15,
			CostSpread: 1.2,
		},
		{
			Name:        "budget-crunch",
			Description: "server budget cut to a quarter: scarcity regime where pricing schemes separate hardest",
			Setup:       experiment.Setup2,
			Clients:     6, TotalSamples: 600,
			Rounds: 16, LocalSteps: 4, BatchSize: 8,
			Seed:        16,
			BudgetScale: 0.25,
		},
		{
			Name:        "large-fleet",
			Description: "20-client EMNIST-like fleet, the scale stressor for the batched pipeline",
			Setup:       experiment.Setup3,
			Clients:     20, TotalSamples: 1600,
			Rounds: 10, LocalSteps: 3, BatchSize: 8,
			EvalEvery: 5,
			Seed:      17,
		},
		{
			Name:        "elastic",
			Description: "mid-run membership churn: client 5 joins at round 3, client 2 leaves gracefully at round 6, the market re-priced at every epoch",
			Setup:       experiment.Setup2,
			Clients:     6, TotalSamples: 600,
			Rounds: 12, LocalSteps: 4, BatchSize: 8,
			Seed: 19,
			Faults: []ClientFault{
				{Client: 5, Kind: FaultJoin, Round: 3},
				{Client: 2, Kind: FaultLeave, Round: 6},
			},
		},
		{
			Name:        "mixed",
			Description: "the storm: stragglers, a mid-run dropout, churn, sharpened label skew, and a squeezed budget under weighted pricing",
			Setup:       experiment.Setup2,
			Scheme:      game.SchemeNameWeighted,
			Clients:     6, TotalSamples: 600,
			Rounds: 20, LocalSteps: 4, BatchSize: 8,
			Seed:             18,
			BudgetScale:      0.6,
			MaxClientClasses: 2,
			Faults: []ClientFault{
				{Client: 1, Kind: FaultStraggler, DelayFactor: 5},
				{Client: 2, Kind: FaultDropout, Round: 8},
				{Client: 4, Kind: FaultFlaky, Availability: 0.55},
				{Client: 5, Kind: FaultStraggler, DelayFactor: 3},
				{Client: 5, Kind: FaultFlaky, Availability: 0.7},
			},
		},
		{
			Name:        "strategic",
			Description: "strategic clients: client 2 reports 3x its true cost at Stage-I, client 4 shows up at half its priced q at Stage-II; the adversary section scores both lies against the truthful market",
			Setup:       experiment.Setup2,
			Clients:     6, TotalSamples: 600,
			Rounds: 16, LocalSteps: 4, BatchSize: 8,
			Seed: 20,
			Faults: []ClientFault{
				{Client: 2, Kind: FaultMisreport, Factor: 3},
				{Client: 4, Kind: FaultDeviate, Factor: 0.5},
			},
		},
		{
			Name:        "poisoned",
			Description: "gradient poisoning: client 1 sign-flips and doubles its model delta from round 4 onward; the adversary section measures the accuracy lost against an honest twin",
			Setup:       experiment.Setup2,
			Clients:     6, TotalSamples: 600,
			Rounds: 16, LocalSteps: 4, BatchSize: 8,
			Seed: 21,
			Faults: []ClientFault{
				{Client: 1, Kind: FaultPoison, Factor: -2, Round: 4},
			},
		},
	}
}

// Names lists the library scenarios in canonical order.
func Names() []string {
	lib := library()
	names := make([]string, len(lib))
	for i, sc := range lib {
		names[i] = sc.Name
	}
	return names
}

// All returns a fresh copy of every library scenario.
func All() []Scenario { return library() }

// ByName returns the named library scenario.
func ByName(name string) (Scenario, error) {
	for _, sc := range library() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (known: %v)", name, Names())
}
