package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// TraceEquilibrium is the priced market state a scenario ran under.
type TraceEquilibrium struct {
	// P and Q are the posted prices and induced participation levels, after
	// the runner's [QMin, QMax] clamp.
	P []float64 `json:"p"`
	Q []float64 `json:"q"`
	// Spent is Σ P_n q_n; ServerObj is the Theorem-1 bound term attained.
	Spent     float64 `json:"spent"`
	ServerObj float64 `json:"server_obj"`
}

// TraceEpoch is one membership epoch of an elastic run: who joined or left
// at its boundary, the resulting roster size, and the economics of the
// re-priced sub-game over the active fleet. Epoch 0 is the initial roster
// (no joins or leaves). The ledger is rebuilt identically on resume — the
// orchestrator replays past epochs through the re-pricing hook — so it is
// part of the byte-identity contract like every other trace field.
type TraceEpoch struct {
	Epoch  int   `json:"epoch"`
	Round  int   `json:"round"`
	Joined []int `json:"joined,omitempty"`
	Left   []int `json:"left,omitempty"`
	Active int   `json:"active"`
	// Spent and ServerObj are the re-priced sub-game's Σ P_n q_n and
	// Theorem-1 objective over the epoch's active clients.
	Spent     float64 `json:"spent"`
	ServerObj float64 `json:"server_obj"`
}

// TraceAdversary quantifies what a scenario's adversarial clients cost the
// mechanism. Every metric compares the realized (adversarial) run against its
// truthful counterfactual: the equilibrium metrics against the market priced
// on true costs, and the training metrics against an honest twin replayed
// with the same seed, exogenous faults, and membership churn but no
// misreports, deviations, or poisoning.
type TraceAdversary struct {
	// Misreporting, Deviating, and Poisoning list the adversarial clients by
	// behaviour, ascending.
	Misreporting []int `json:"misreporting,omitempty"`
	Deviating    []int `json:"deviating,omitempty"`
	Poisoning    []int `json:"poisoning,omitempty"`

	// TruthfulSpent and TruthfulServerObj are the Σ P_n q_n and Theorem-1
	// objective of the market priced on true costs; ServerObjInflation is how
	// much the realized (misreported) market's objective exceeds it — the
	// equilibrium-degradation metric.
	TruthfulSpent      float64 `json:"truthful_spent"`
	TruthfulServerObj  float64 `json:"truthful_server_obj"`
	ServerObjInflation float64 `json:"server_obj_inflation"`
	// UtilityShift is the fleet's total utility (scored at true costs) under
	// the realized market minus under the truthful one: what the lie moved.
	UtilityShift float64 `json:"utility_shift"`

	// HonestFinalLoss/Accuracy are the honest twin's end-of-run metrics;
	// LossInflation and AccuracyDrop are the realized run's degradation
	// relative to them — the accuracy-degradation metrics.
	HonestFinalLoss     float64 `json:"honest_final_loss"`
	HonestFinalAccuracy float64 `json:"honest_final_accuracy"`
	LossInflation       float64 `json:"loss_inflation"`
	AccuracyDrop        float64 `json:"accuracy_drop"`
}

// TraceRound is one training round of the trace. Loss and Accuracy are
// meaningful only when Evaluated.
type TraceRound struct {
	Round        int     `json:"round"`
	Participants int     `json:"participants"`
	TimeS        float64 `json:"time_s"`
	Evaluated    bool    `json:"evaluated,omitempty"`
	Loss         float64 `json:"loss,omitempty"`
	Accuracy     float64 `json:"accuracy,omitempty"`
}

// Trace is the canonical record of one scenario run: the priced equilibrium,
// the per-round trajectory, and the participation accounting that exposes
// how far the fault process pushed the realized participation away from the
// server's priced belief. Its Canonical JSON form is what the golden-trace
// regression suite pins: every field is filled deterministically from the
// scenario seed, so a byte-level diff against a committed golden file is a
// meaningful regression signal.
type Trace struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Setup       string `json:"setup"`
	Scheme      string `json:"scheme"`
	Clients     int    `json:"clients"`
	Rounds      int    `json:"rounds"`
	Seed        uint64 `json:"seed"`

	Equilibrium TraceEquilibrium `json:"equilibrium"`

	// Participation[n] counts the rounds client n actually joined;
	// EmpiricalQ[n] = Participation[n] / Rounds. Under faults EmpiricalQ
	// drifts below Equilibrium.Q — the bias pressure the unbiased
	// aggregation rule has to survive.
	Participation []int     `json:"participation"`
	EmpiricalQ    []float64 `json:"empirical_q"`
	// DroppedAt[n] is the round client n permanently left, or -1.
	DroppedAt []int `json:"dropped_at"`

	// Membership is the epoch ledger of an elastic run: one row per
	// membership epoch, in order. Empty for a fixed-roster scenario.
	Membership []TraceEpoch `json:"membership,omitempty"`

	// Adversary records the adversarial roster and degradation metrics. Nil
	// for a scenario with no adversarial faults, so honest traces — including
	// every pre-existing golden — are byte-identical to before the field
	// existed.
	Adversary *TraceAdversary `json:"adversary,omitempty"`

	RoundTrace []TraceRound `json:"round_trace"`

	FinalLoss          float64 `json:"final_loss"`
	FinalAccuracy      float64 `json:"final_accuracy"`
	TotalClientUtility float64 `json:"total_client_utility"`
	NegativePayments   int     `json:"negative_payments"`
	// SimTimeS is the simulated wall-clock length of the whole run, the
	// quantity the straggler schedule stretches.
	SimTimeS float64 `json:"sim_time_s"`
}

// Canonical renders the trace in its golden on-disk form: two-space
// indented JSON with a trailing newline, fields in struct order, floats in
// Go's shortest round-trip representation — byte-stable as long as the run
// itself is bit-reproducible.
func (t *Trace) Canonical() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return nil, fmt.Errorf("scenario: encode trace: %w", err)
	}
	return buf.Bytes(), nil
}

// ParseTrace decodes a canonical trace, e.g. a committed golden file.
func ParseTrace(b []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("scenario: decode trace: %w", err)
	}
	return &t, nil
}
