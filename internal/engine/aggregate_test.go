package engine

import (
	"math"
	"testing"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// TestAccAggregatorAgreement: the rewritten UnbiasedAggregator and a
// manual fixed-point fold agree, and the result is within one grid step of
// the plain float chain.
func TestAccAggregatorAgreement(t *testing.T) {
	const n, p = 5, 4
	rng := stats.NewRNG(7)
	updates := make([]ClientUpdate, n)
	weights := make([]float64, n)
	q := make([]float64, n)
	for i := range updates {
		d := tensor.NewVec(p)
		for j := range d {
			d[j] = rng.NormFloat64()
		}
		updates[i] = ClientUpdate{Client: i, Delta: d}
		weights[i] = 0.1 + rng.Float64()
		q[i] = 0.2 + 0.8*rng.Float64()
	}
	global := tensor.NewVec(p)
	if err := (UnbiasedAggregator{}).Aggregate(global, updates, weights, q); err != nil {
		t.Fatal(err)
	}
	ref := tensor.NewVec(p)
	for _, u := range updates {
		_ = ref.AddScaled(weights[u.Client]/q[u.Client], u.Delta)
	}
	for j := range global {
		if math.Abs(global[j]-ref[j]) > 1e-12*math.Max(1, math.Abs(ref[j])) {
			t.Fatalf("param %d: fixed-point %v vs float chain %v", j, global[j], ref[j])
		}
	}
}
