package engine

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/tensor"
)

func checkUpdateShapes(global tensor.Vec, updates []ClientUpdate, weights, q []float64) error {
	if len(weights) != len(q) {
		return errors.New("fl: weights/q length mismatch")
	}
	for _, u := range updates {
		if u.Client < 0 || u.Client >= len(weights) {
			return fmt.Errorf("fl: update from unknown client %d", u.Client)
		}
		if len(u.Delta) != len(global) {
			return fmt.Errorf("fl: client %d delta length %d, want %d",
				u.Client, len(u.Delta), len(global))
		}
	}
	return nil
}

// UnbiasedAggregator implements Lemma 1:
//
//	w^{r+1} = w^r + Σ_{n∈S_r} (a_n / q_n) (w_n^{r+1} − w^r).
//
// The inverse-probability reweighting makes the aggregated model an unbiased
// estimator of the full-participation aggregate for arbitrary independent
// participation levels q. Clients with q_n = 0 can never appear in S_r, so
// the division is always well defined for actual participants.
//
// The sum runs through the engine's canonical fixed-point accumulator (see
// fixacc.go), so the result is independent of summation order and grouping —
// the property that makes hierarchical group partials bit-identical to this
// flat fold.
type UnbiasedAggregator struct{}

// Aggregate implements Aggregator.
func (UnbiasedAggregator) Aggregate(global tensor.Vec, updates []ClientUpdate, weights, q []float64) error {
	if err := checkUpdateShapes(global, updates, weights, q); err != nil {
		return err
	}
	acc := NewFixAcc(len(global))
	for _, u := range updates {
		qn := q[u.Client]
		if qn <= 0 {
			return fmt.Errorf("fl: participant %d has non-positive q", u.Client)
		}
		if err := acc.AddScaled(weights[u.Client]/qn, u.Delta); err != nil {
			return err
		}
	}
	return acc.AddTo(global)
}

// ProportionalAggregator is the biased baseline: participants' deltas are
// weighted by a_n renormalized over the participant set only. This is what a
// mechanism that ignores participation probabilities would do, and the
// resulting model drifts toward frequently-participating clients' data.
type ProportionalAggregator struct{}

// Aggregate implements Aggregator.
func (ProportionalAggregator) Aggregate(global tensor.Vec, updates []ClientUpdate, weights, q []float64) error {
	if err := checkUpdateShapes(global, updates, weights, q); err != nil {
		return err
	}
	if len(updates) == 0 {
		return nil
	}
	var total float64
	for _, u := range updates {
		total += weights[u.Client]
	}
	if total <= 0 {
		return errors.New("fl: zero total weight among participants")
	}
	for _, u := range updates {
		if err := global.AddScaled(weights[u.Client]/total, u.Delta); err != nil {
			return err
		}
	}
	return nil
}

// NaiveInverseAggregator implements the scheme the paper's Lemma 1 remark
// warns about: inverse weighting combined with renormalization by the
// participant count, p_i/(K q_i). It is unbiased only under uniform
// dependent sampling and serves as an ablation baseline.
type NaiveInverseAggregator struct{}

// Aggregate implements Aggregator.
func (NaiveInverseAggregator) Aggregate(global tensor.Vec, updates []ClientUpdate, weights, q []float64) error {
	if err := checkUpdateShapes(global, updates, weights, q); err != nil {
		return err
	}
	k := float64(len(updates))
	if k == 0 {
		return nil
	}
	for _, u := range updates {
		qn := q[u.Client]
		if qn <= 0 {
			return fmt.Errorf("fl: participant %d has non-positive q", u.Client)
		}
		if err := global.AddScaled(weights[u.Client]/(k*qn), u.Delta); err != nil {
			return err
		}
	}
	return nil
}

var (
	_ Aggregator = UnbiasedAggregator{}
	_ Aggregator = ProportionalAggregator{}
	_ Aggregator = NaiveInverseAggregator{}
)
