package engine

import (
	"context"
	"fmt"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// clientExec holds one client's per-run mutable state: the private RNG and
// the gradient-norm statistics. It deliberately owns no model-sized buffers —
// those live in an execArena owned by whichever worker (or socket node) runs
// the update — so a fleet of 10^6 virtual clients costs O(fleet) scalars,
// not O(fleet·model) vectors.
//
// Both backends execute local updates through this type — LocalBackend in
// its worker pool, ClusterBackend inside each socket node — which is what
// makes a round's arithmetic identical no matter where it runs.
type clientExec struct {
	rng     *stats.RNG
	sqNorms stats.Welford
}

// execArena is the reusable model-sized scratch a worker lends to whichever
// client it is currently running: the parameter clone, the gradient buffer,
// and the model's batch buffers. One arena serves any number of clients
// sequentially; the hot path stays allocation-free once the arena is warm.
type execArena struct {
	w       tensor.Vec // working copy of the global model
	grad    tensor.Vec // gradient buffer
	scratch model.Scratch
}

// ensure sizes the arena for a model with p parameters.
func (ar *execArena) ensure(p int) {
	if len(ar.w) != p {
		ar.w = tensor.NewVec(p)
		ar.grad = tensor.NewVec(p)
	}
}

// localUpdate copies the global model into the arena and performs steps
// mini-batch SGD steps on the client's shard, recording squared gradient
// norms for G_n estimation. Models implementing model.LocalStepper run the
// fused step; otherwise the generic StochasticGradient + axpy path applies.
// The delta w − global is written into the caller-provided buffer (sized
// like global). In steady state (arena warm) the update performs no heap
// allocations.
func (st *clientExec) localUpdate(
	ctx context.Context, m model.Model, shard *data.Dataset, n int,
	global tensor.Vec, steps, batch int, lr float64,
	ar *execArena, delta tensor.Vec,
) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ar.ensure(len(global))
	w := ar.w
	copy(w, global)
	stepper, hasStep := m.(model.LocalStepper)
	for e := 0; e < steps; e++ {
		// Re-check cancellation every few steps so paper-scale E (100 local
		// steps) still cancels mid-update, without putting the ctx mutex on
		// every step of the hot path.
		if e&7 == 7 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if hasStep {
			sq, err := stepper.SGDStep(w, shard, batch, lr, st.rng, &ar.scratch)
			if err != nil {
				return fmt.Errorf("client %d: %w", n, err)
			}
			st.sqNorms.Add(sq)
			continue
		}
		grad := ar.grad
		if err := m.StochasticGradient(w, shard, batch, st.rng, grad); err != nil {
			return fmt.Errorf("client %d: %w", n, err)
		}
		st.sqNorms.Add(grad.SqNorm())
		if err := w.AddScaled(-lr, grad); err != nil {
			return err
		}
	}
	if len(delta) != len(global) {
		return fmt.Errorf("client %d: delta buffer length %d, want %d", n, len(delta), len(global))
	}
	for j := range delta {
		delta[j] = w[j] - global[j]
	}
	return nil
}

// newClientExecs derives one executor per client from the spec seed,
// client n's RNG being the n-th Split — the stream discipline every
// backend must share for cross-backend bit-identity.
func newClientExecs(seed uint64, nClients int) []*clientExec {
	cursors := initialCursors(seed, nClients)
	states := make([]*clientExec, nClients)
	for n := range states {
		st, err := newClientExecAt(cursors[n])
		if err != nil {
			// initialCursors never produces an invalid cursor; a failure here
			// is a programming error, not an input error.
			panic(err)
		}
		states[n] = st
	}
	return states
}

// initialCursors is the cursor form of newClientExecs' stream derivation:
// client n's fresh cursor is the state of the n-th Split of the spec seed.
// Both backends — and the resume path — share this single definition, so a
// round-zero cursor table is indistinguishable from a fresh boot.
func initialCursors(seed uint64, nClients int) []ClientCursor {
	root := stats.NewRNG(seed)
	cursors := make([]ClientCursor, nClients)
	for n := range cursors {
		cursors[n] = ClientCursor{RNG: root.Split().State()}
	}
	return cursors
}

// cursor captures the executor's resumable state. Valid only at a round
// boundary, when no update is in flight on this executor.
func (st *clientExec) cursor() ClientCursor {
	count, mean, m2 := st.sqNorms.State()
	return ClientCursor{RNG: st.rng.State(), SqCount: count, SqMean: mean, SqM2: m2}
}

// newClientExecAt builds an executor positioned at a captured cursor.
func newClientExecAt(c ClientCursor) (*clientExec, error) {
	rng, err := stats.RestoreRNG(c.RNG)
	if err != nil {
		return nil, err
	}
	sq, err := stats.RestoreWelford(c.SqCount, c.SqMean, c.SqM2)
	if err != nil {
		return nil, err
	}
	return &clientExec{rng: rng, sqNorms: sq}, nil
}
