package engine

import (
	"context"
	"fmt"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// clientExec holds one client's per-run mutable state: the private RNG, the
// gradient-norm statistics, and the scratch arena (parameter clone,
// gradient, delta, and the model's batch buffers) that makes the local-SGD
// hot path allocation-free in steady state.
//
// Both backends execute local updates through this type — LocalBackend in
// its worker pool, ClusterBackend inside each socket node — which is what
// makes a round's arithmetic identical no matter where it runs.
type clientExec struct {
	rng     *stats.RNG
	sqNorms stats.Welford
	w       tensor.Vec // working copy of the global model
	grad    tensor.Vec // gradient buffer
	delta   tensor.Vec // w − global, handed to the aggregator
	scratch model.Scratch
}

// ensure sizes the state's vectors for a model with p parameters.
func (st *clientExec) ensure(p int) {
	if len(st.w) != p {
		st.w = tensor.NewVec(p)
		st.grad = tensor.NewVec(p)
		st.delta = tensor.NewVec(p)
	}
}

// localUpdate copies the global model into the client's scratch arena and
// performs steps mini-batch SGD steps on the client's shard, recording
// squared gradient norms for G_n estimation. Models implementing
// model.LocalStepper run the fused step; otherwise the generic
// StochasticGradient + axpy path applies. In steady state (buffers warm) the
// update performs no heap allocations. The returned delta aliases the
// client's buffer and is valid until its next localUpdate.
func (st *clientExec) localUpdate(
	ctx context.Context, m model.Model, shard *data.Dataset, n int,
	global tensor.Vec, steps, batch int, lr float64,
) (tensor.Vec, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st.ensure(len(global))
	w := st.w
	copy(w, global)
	stepper, hasStep := m.(model.LocalStepper)
	for e := 0; e < steps; e++ {
		// Re-check cancellation every few steps so paper-scale E (100 local
		// steps) still cancels mid-update, without putting the ctx mutex on
		// every step of the hot path.
		if e&7 == 7 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if hasStep {
			sq, err := stepper.SGDStep(w, shard, batch, lr, st.rng, &st.scratch)
			if err != nil {
				return nil, fmt.Errorf("client %d: %w", n, err)
			}
			st.sqNorms.Add(sq)
			continue
		}
		grad := st.grad
		if err := m.StochasticGradient(w, shard, batch, st.rng, grad); err != nil {
			return nil, fmt.Errorf("client %d: %w", n, err)
		}
		st.sqNorms.Add(grad.SqNorm())
		if err := w.AddScaled(-lr, grad); err != nil {
			return nil, err
		}
	}
	delta := st.delta
	for j := range delta {
		delta[j] = w[j] - global[j]
	}
	return delta, nil
}

// newClientExecs derives one executor per client from the spec seed,
// client n's RNG being the n-th Split — the stream discipline every
// backend must share for cross-backend bit-identity.
func newClientExecs(seed uint64, nClients int) []*clientExec {
	cursors := initialCursors(seed, nClients)
	states := make([]*clientExec, nClients)
	for n := range states {
		st, err := newClientExecAt(cursors[n])
		if err != nil {
			// initialCursors never produces an invalid cursor; a failure here
			// is a programming error, not an input error.
			panic(err)
		}
		states[n] = st
	}
	return states
}

// initialCursors is the cursor form of newClientExecs' stream derivation:
// client n's fresh cursor is the state of the n-th Split of the spec seed.
// Both backends — and the resume path — share this single definition, so a
// round-zero cursor table is indistinguishable from a fresh boot.
func initialCursors(seed uint64, nClients int) []ClientCursor {
	root := stats.NewRNG(seed)
	cursors := make([]ClientCursor, nClients)
	for n := range cursors {
		cursors[n] = ClientCursor{RNG: root.Split().State()}
	}
	return cursors
}

// cursor captures the executor's resumable state. Valid only at a round
// boundary, when no update is in flight on this executor.
func (st *clientExec) cursor() ClientCursor {
	count, mean, m2 := st.sqNorms.State()
	return ClientCursor{RNG: st.rng.State(), SqCount: count, SqMean: mean, SqM2: m2}
}

// newClientExecAt builds an executor positioned at a captured cursor. The
// scratch arena is rebuilt lazily on first use; only the streams matter for
// bit-identity.
func newClientExecAt(c ClientCursor) (*clientExec, error) {
	rng, err := stats.RestoreRNG(c.RNG)
	if err != nil {
		return nil, err
	}
	sq, err := stats.RestoreWelford(c.SqCount, c.SqMean, c.SqM2)
	if err != nil {
		return nil, err
	}
	return &clientExec{rng: rng, sqNorms: sq}, nil
}
