package engine

import "unbiasedfl/internal/fixpoint"

// FixAcc is the engine's canonical aggregation accumulator: the 128-bit
// signed fixed-point vector sum of internal/fixpoint, which makes Lemma 1's
// weighted fold independent of summation order and grouping — the property
// that keeps hierarchical group partials bit-identical to the flat fold. The
// type lives in its own package so the wire-level prototype server (which
// transport-layering forbids from importing the engine) aggregates with the
// exact same arithmetic.
type FixAcc = fixpoint.Acc

// NewFixAcc returns a zeroed accumulator for n parameters.
func NewFixAcc(n int) *FixAcc { return fixpoint.New(n) }
