package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"unbiasedfl/internal/tensor"
)

// LocalOptions tunes the in-process backend.
type LocalOptions struct {
	// Parallel enables concurrent local updates across participants via a
	// persistent worker pool sized to GOMAXPROCS. Results are identical
	// either way: every client owns a private RNG and its own scratch arena,
	// and the summation order inside a client's update never depends on the
	// worker count.
	Parallel bool
	// Workers overrides the pool size (0 = GOMAXPROCS, capped to the fleet).
	Workers int
}

// LocalBackend executes local updates in-process: per-client scratch arenas
// keep the steady-state dispatch allocation-free, and the optional
// persistent worker pool spreads participants across CPUs without touching
// the result. It is the execution half of the historical fl.Runner.
type LocalBackend struct {
	opts   LocalOptions
	spec   *Spec
	states []*clientExec
	pool   *updatePool
	// resume, when set before Open, positions every client executor at the
	// given cursor instead of deriving fresh streams from the spec seed.
	resume []ClientCursor

	// Per-round buffers, reused so steady-state dispatch does not allocate.
	updates []ClientUpdate
	errs    []error
}

// NewLocalBackend constructs an unopened in-process backend.
func NewLocalBackend(opts LocalOptions) *LocalBackend {
	return &LocalBackend{opts: opts}
}

// Open implements ExecutionBackend: it derives the per-client executors from
// the spec seed and starts the worker pool.
func (b *LocalBackend) Open(_ context.Context, spec *Spec) error {
	if b.spec != nil {
		return errors.New("engine: local backend already open")
	}
	b.spec = spec
	nClients := spec.Fed.NumClients()
	if b.resume != nil {
		if len(b.resume) != nClients {
			return fmt.Errorf("engine: %d resume cursors for a %d-client fleet", len(b.resume), nClients)
		}
		b.states = make([]*clientExec, nClients)
		for n := range b.states {
			st, err := newClientExecAt(b.resume[n])
			if err != nil {
				return fmt.Errorf("engine: client %d cursor: %w", n, err)
			}
			b.states[n] = st
		}
	} else {
		b.states = newClientExecs(spec.Seed, nClients)
	}
	if b.opts.Parallel {
		workers := b.opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > nClients {
			workers = nClients
		}
		b.pool = newUpdatePool(b, workers)
	}
	return nil
}

// Dispatch implements ExecutionBackend. Updates are filled in task order, so
// aggregation order — and thus the aggregated model — is independent of
// worker scheduling.
func (b *LocalBackend) Dispatch(
	ctx context.Context, _ int, global tensor.Vec, tasks []ClientTask,
) ([]ClientUpdate, error) {
	if b.spec == nil {
		return nil, errors.New("engine: local backend not open")
	}
	if cap(b.updates) < len(tasks) {
		b.updates = make([]ClientUpdate, len(tasks))
		b.errs = make([]error, len(tasks))
	}
	updates := b.updates[:len(tasks)]
	errs := b.errs[:len(tasks)]
	for i := range errs {
		errs[i] = nil
	}

	if b.pool == nil || len(tasks) < 2 {
		for i, task := range tasks {
			if err := b.runTask(ctx, global, task, &updates[i]); err != nil {
				return nil, err
			}
		}
		return updates, nil
	}
	if err := b.pool.round(ctx, global, tasks, updates, errs); err != nil {
		return nil, err
	}
	return updates, nil
}

// runTask executes one client's local update into out.
func (b *LocalBackend) runTask(ctx context.Context, global tensor.Vec, task ClientTask, out *ClientUpdate) error {
	st := b.states[task.Client]
	delta, err := st.localUpdate(
		ctx, b.spec.Model, b.spec.Fed.Clients[task.Client], task.Client,
		global, b.spec.LocalSteps, b.spec.BatchSize, task.LR,
	)
	if err != nil {
		return err
	}
	out.Client = task.Client
	out.Delta = delta
	out.GradSqNorm = st.sqNorms.Mean()
	return nil
}

// Close implements ExecutionBackend: it shuts down the worker pool.
func (b *LocalBackend) Close() error {
	if b.pool != nil {
		b.pool.close()
		b.pool = nil
	}
	b.spec = nil
	return nil
}

// RestoreClientCursors implements StatefulBackend: Open will build every
// executor at the given cursor.
func (b *LocalBackend) RestoreClientCursors(cursors []ClientCursor) error {
	if b.spec != nil {
		return errors.New("engine: restore on an open backend")
	}
	b.resume = append([]ClientCursor(nil), cursors...)
	return nil
}

// ClientCursors implements StatefulBackend. Only valid between Dispatch
// calls, when no worker touches the executors.
func (b *LocalBackend) ClientCursors(dst []ClientCursor) error {
	if b.spec == nil {
		return errors.New("engine: local backend not open")
	}
	if len(dst) != len(b.states) {
		return fmt.Errorf("engine: cursor buffer of %d for a %d-client fleet", len(dst), len(b.states))
	}
	for n, st := range b.states {
		dst[n] = st.cursor()
	}
	return nil
}

var _ StatefulBackend = (*LocalBackend)(nil)

// updatePool is the persistent worker pool behind parallel local dispatch.
// Its goroutines live for the whole run — one per available CPU — instead of
// spawning a goroutine per participant per round. Round context is published
// before the task indices are sent on the channel (the send is the
// happens-before edge), and the WaitGroup barrier ends the round.
type updatePool struct {
	b       *LocalBackend
	taskIdx chan int
	wg      sync.WaitGroup

	// Per-round context: written by the orchestration goroutine before
	// dispatch, read-only while workers run.
	ctx     context.Context
	global  tensor.Vec
	tasks   []ClientTask
	updates []ClientUpdate
	errs    []error
}

func newUpdatePool(b *LocalBackend, workers int) *updatePool {
	if workers < 1 {
		workers = 1
	}
	p := &updatePool{b: b, taskIdx: make(chan int, workers)}
	for k := 0; k < workers; k++ {
		go p.worker()
	}
	return p
}

func (p *updatePool) worker() {
	for i := range p.taskIdx {
		if err := p.b.runTask(p.ctx, p.global, p.tasks[i], &p.updates[i]); err != nil {
			p.errs[i] = err
		}
		p.wg.Done()
	}
}

func (p *updatePool) close() { close(p.taskIdx) }

// round runs one round's tasks through the pool, filling updates[i] for
// task i.
func (p *updatePool) round(
	ctx context.Context, global tensor.Vec, tasks []ClientTask,
	updates []ClientUpdate, errs []error,
) error {
	p.ctx = ctx
	p.global = global
	p.tasks = tasks
	p.updates, p.errs = updates, errs
	p.wg.Add(len(tasks))
	for i := range tasks {
		p.taskIdx <- i
	}
	p.wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

var _ ExecutionBackend = (*LocalBackend)(nil)
