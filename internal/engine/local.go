package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"unbiasedfl/internal/tensor"
)

// LocalOptions tunes the in-process backend.
type LocalOptions struct {
	// Parallel enables concurrent local updates across participants via a
	// persistent worker pool sized to GOMAXPROCS. Results are identical
	// either way: every client owns a private RNG, each worker owns a
	// private scratch arena, and the fixed-point aggregation makes the sum
	// independent of scheduling.
	Parallel bool
	// Workers overrides the pool size (0 = GOMAXPROCS, capped to the fleet).
	Workers int
}

// LocalBackend executes local updates in-process. Per-client state is two
// RNG/statistics streams — O(fleet) scalars — while all model-sized scratch
// belongs to the workers (O(workers·model)), so fleets of 10^6 virtual
// clients fit in memory. Flat dispatch additionally buffers one delta per
// participant for the coordinator-side aggregator; hierarchical dispatch
// (DispatchPartials) folds each group's deltas in place and keeps memory at
// O(workers·model) regardless of fleet size.
type LocalBackend struct {
	opts   LocalOptions
	spec   *Spec
	states []*clientExec
	pool   *updatePool
	// serial is the scratch worker for the no-pool (or tiny-round) path.
	serial poolWorker
	// resume, when set before Open, positions every client executor at the
	// given cursor instead of deriving fresh streams from the spec seed.
	resume []ClientCursor

	// Per-round buffers, reused so steady-state dispatch does not allocate.
	updates  []ClientUpdate
	errs     []error
	deltaBuf tensor.Vec
	groups   []taskGroup
}

// taskGroup is one sub-aggregator group's slice of the round's task list:
// tasks[lo:hi], all belonging to group id.
type taskGroup struct{ id, lo, hi int }

// poolWorker is one worker's private execution state: the scratch arena, a
// reusable delta buffer for group folding, the group accumulator, and the
// participant bookkeeping of the group it is currently folding.
type poolWorker struct {
	arena   execArena
	delta   tensor.Vec
	acc     *FixAcc
	clients []int
	gradSq  []float64
}

// NewLocalBackend constructs an unopened in-process backend.
func NewLocalBackend(opts LocalOptions) *LocalBackend {
	return &LocalBackend{opts: opts}
}

// Open implements ExecutionBackend: it derives the per-client executors from
// the spec seed and starts the worker pool.
func (b *LocalBackend) Open(_ context.Context, spec *Spec) error {
	if b.spec != nil {
		return errors.New("engine: local backend already open")
	}
	b.spec = spec
	nClients := spec.Fed.NumClients()
	if b.resume != nil {
		if len(b.resume) != nClients {
			return fmt.Errorf("engine: %d resume cursors for a %d-client fleet", len(b.resume), nClients)
		}
		b.states = make([]*clientExec, nClients)
		for n := range b.states {
			st, err := newClientExecAt(b.resume[n])
			if err != nil {
				return fmt.Errorf("engine: client %d cursor: %w", n, err)
			}
			b.states[n] = st
		}
	} else {
		b.states = newClientExecs(spec.Seed, nClients)
	}
	if b.opts.Parallel {
		workers := b.opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > nClients {
			workers = nClients
		}
		b.pool = newUpdatePool(b, workers)
	}
	return nil
}

// Dispatch implements ExecutionBackend (flat mode). Updates are filled in
// task order; each participant's delta occupies its own slice of a
// per-round buffer so it stays valid until the next Dispatch.
func (b *LocalBackend) Dispatch(
	ctx context.Context, _ int, global tensor.Vec, tasks []ClientTask,
) ([]ClientUpdate, error) {
	if b.spec == nil {
		return nil, errors.New("engine: local backend not open")
	}
	if cap(b.updates) < len(tasks) {
		b.updates = make([]ClientUpdate, len(tasks))
		b.errs = make([]error, len(tasks))
	}
	p := len(global)
	if need := len(tasks) * p; cap(b.deltaBuf) < need {
		b.deltaBuf = tensor.NewVec(need)
	}
	updates := b.updates[:len(tasks)]
	errs := b.errs[:len(tasks)]
	for i := range errs {
		errs[i] = nil
	}

	if b.pool == nil || len(tasks) < 2 {
		for i, task := range tasks {
			if err := b.runTask(ctx, &b.serial.arena, global, task, b.taskDelta(i, p), &updates[i]); err != nil {
				return nil, err
			}
		}
		return updates, nil
	}
	if err := b.pool.round(ctx, global, tasks, updates, errs); err != nil {
		return nil, err
	}
	return updates, nil
}

// taskDelta returns task i's slot in the per-round delta buffer.
func (b *LocalBackend) taskDelta(i, p int) tensor.Vec {
	return b.deltaBuf[i*p : (i+1)*p]
}

// runTask executes one client's local update into out, writing the delta
// into the provided buffer.
func (b *LocalBackend) runTask(
	ctx context.Context, ar *execArena, global tensor.Vec,
	task ClientTask, delta tensor.Vec, out *ClientUpdate,
) error {
	st := b.states[task.Client]
	if err := st.localUpdate(
		ctx, b.spec.Model, b.spec.Fed.Clients[task.Client], task.Client,
		global, b.spec.LocalSteps, b.spec.BatchSize, task.LR, ar, delta,
	); err != nil {
		return err
	}
	out.Client = task.Client
	out.Delta = delta
	out.GradSqNorm = st.sqNorms.Mean()
	return nil
}

// DispatchPartials implements PartialBackend: tasks are partitioned into
// contiguous client-index groups, each group's weighted deltas are folded
// into a fixed-point partial where they execute (tampering applied per
// update, exactly as the flat path does), and one Partial per group is
// delivered to sink. Workers reuse one delta buffer each, so round memory is
// O(workers·model) independent of fleet size.
func (b *LocalBackend) DispatchPartials(
	ctx context.Context, round int, global tensor.Vec, tasks []ClientTask,
	groupSize int, sink func(Partial) error,
) error {
	if b.spec == nil {
		return errors.New("engine: local backend not open")
	}
	if groupSize < 1 {
		return fmt.Errorf("engine: invalid group size %d", groupSize)
	}
	b.groups = splitGroups(b.groups[:0], tasks, groupSize)
	if b.pool == nil || len(b.groups) < 2 {
		for _, g := range b.groups {
			part, err := b.foldGroup(ctx, round, global, tasks[g.lo:g.hi], g.id, &b.serial)
			if err != nil {
				return err
			}
			if err := sink(part); err != nil {
				return err
			}
		}
		return nil
	}
	return b.pool.roundPartials(ctx, round, global, tasks, sink)
}

// splitGroups splits the (ascending-by-client) task list into contiguous
// groups of client indices [g·K, (g+1)·K), appending to dst. Both backends
// partition a round's tasks through this single definition.
func splitGroups(dst []taskGroup, tasks []ClientTask, groupSize int) []taskGroup {
	for i := 0; i < len(tasks); {
		gid := tasks[i].Client / groupSize
		j := i + 1
		for j < len(tasks) && tasks[j].Client/groupSize == gid {
			j++
		}
		dst = append(dst, taskGroup{id: gid, lo: i, hi: j})
		i = j
	}
	return dst
}

// foldGroup runs one group's tasks through the worker's arena and folds the
// weighted deltas into the worker's accumulator. The returned Partial's
// slices alias the worker's buffers: consume before the worker's next group.
func (b *LocalBackend) foldGroup(
	ctx context.Context, round int, global tensor.Vec,
	gtasks []ClientTask, groupID int, w *poolWorker,
) (Partial, error) {
	p := len(global)
	if w.acc == nil || w.acc.Len() != p {
		w.acc = NewFixAcc(p)
	} else {
		w.acc.Reset()
	}
	if len(w.delta) != p {
		w.delta = tensor.NewVec(p)
	}
	w.clients = w.clients[:0]
	w.gradSq = w.gradSq[:0]
	spec := b.spec
	for _, task := range gtasks {
		st := b.states[task.Client]
		if err := st.localUpdate(
			ctx, spec.Model, spec.Fed.Clients[task.Client], task.Client,
			global, spec.LocalSteps, spec.BatchSize, task.LR, &w.arena, w.delta,
		); err != nil {
			return Partial{}, err
		}
		u := ClientUpdate{Client: task.Client, Delta: w.delta, GradSqNorm: st.sqNorms.Mean()}
		if spec.Tamper != nil {
			spec.Tamper(round, &u)
		}
		if err := w.acc.AddScaled(task.Scale, u.Delta); err != nil {
			return Partial{}, err
		}
		w.clients = append(w.clients, u.Client)
		w.gradSq = append(w.gradSq, u.GradSqNorm)
	}
	lo, hi, sat := w.acc.Limbs()
	return Partial{Group: groupID, Clients: w.clients, Lo: lo, Hi: hi, Sat: sat, GradSq: w.gradSq}, nil
}

// Close implements ExecutionBackend: it shuts down the worker pool.
func (b *LocalBackend) Close() error {
	if b.pool != nil {
		b.pool.close()
		b.pool = nil
	}
	b.spec = nil
	return nil
}

// RestoreClientCursors implements StatefulBackend: Open will build every
// executor at the given cursor.
func (b *LocalBackend) RestoreClientCursors(cursors []ClientCursor) error {
	if b.spec != nil {
		return errors.New("engine: restore on an open backend")
	}
	b.resume = append([]ClientCursor(nil), cursors...)
	return nil
}

// ClientCursors implements StatefulBackend. Only valid between Dispatch
// calls, when no worker touches the executors.
func (b *LocalBackend) ClientCursors(dst []ClientCursor) error {
	if b.spec == nil {
		return errors.New("engine: local backend not open")
	}
	if len(dst) != len(b.states) {
		return fmt.Errorf("engine: cursor buffer of %d for a %d-client fleet", len(dst), len(b.states))
	}
	for n, st := range b.states {
		dst[n] = st.cursor()
	}
	return nil
}

var _ StatefulBackend = (*LocalBackend)(nil)

// updatePool is the persistent worker pool behind parallel local dispatch.
// Its goroutines live for the whole run — one per available CPU — instead of
// spawning a goroutine per participant per round: at fleet scale that is the
// difference between GOMAXPROCS workers and a million goroutines. Round
// context is published before the job indices are sent on the channel (the
// send is the happens-before edge), and the WaitGroup barrier ends the
// round. Jobs are task indices in flat rounds and group indices in
// hierarchical rounds.
type updatePool struct {
	b    *LocalBackend
	jobs chan int
	wg   sync.WaitGroup

	// Per-round context: written by the orchestration goroutine before
	// dispatch, read-only while workers run.
	ctx      context.Context
	roundNum int
	global   tensor.Vec
	tasks   []ClientTask
	updates []ClientUpdate
	errs    []error

	// Hierarchical-round context.
	hier    bool
	sink    func(Partial) error
	sinkMu  sync.Mutex
	sinkErr error
}

func newUpdatePool(b *LocalBackend, workers int) *updatePool {
	if workers < 1 {
		workers = 1
	}
	p := &updatePool{b: b, jobs: make(chan int, workers)}
	for k := 0; k < workers; k++ {
		go p.worker()
	}
	return p
}

func (p *updatePool) worker() {
	// Worker-private state persists across rounds for the life of the pool:
	// the arena, delta buffer, and accumulator warm up once.
	w := &poolWorker{}
	for i := range p.jobs {
		if p.hier {
			p.runGroupJob(w, i)
		} else {
			pn := len(p.global)
			delta := p.b.taskDelta(i, pn)
			if err := p.b.runTask(p.ctx, &w.arena, p.global, p.tasks[i], delta, &p.updates[i]); err != nil {
				p.errs[i] = err
			}
		}
		p.wg.Done()
	}
}

// runGroupJob folds group i and delivers its partial under the sink lock.
func (p *updatePool) runGroupJob(w *poolWorker, i int) {
	g := p.b.groups[i]
	part, err := p.b.foldGroup(p.ctx, p.roundNum, p.global, p.tasks[g.lo:g.hi], g.id, w)
	p.sinkMu.Lock()
	defer p.sinkMu.Unlock()
	if p.sinkErr != nil {
		return
	}
	if err != nil {
		p.sinkErr = err
		return
	}
	p.sinkErr = p.sink(part)
}

func (p *updatePool) close() { close(p.jobs) }

// round runs one flat round's tasks through the pool, filling updates[i]
// for task i.
func (p *updatePool) round(
	ctx context.Context, global tensor.Vec, tasks []ClientTask,
	updates []ClientUpdate, errs []error,
) error {
	p.ctx = ctx
	p.global = global
	p.tasks = tasks
	p.updates, p.errs = updates, errs
	p.hier = false
	p.wg.Add(len(tasks))
	for i := range tasks {
		p.jobs <- i
	}
	p.wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// roundPartials runs one hierarchical round: each job is one group from
// b.groups, folded by a worker and streamed to sink under the pool's lock.
func (p *updatePool) roundPartials(
	ctx context.Context, round int, global tensor.Vec, tasks []ClientTask,
	sink func(Partial) error,
) error {
	p.ctx = ctx
	p.roundNum = round
	p.global = global
	p.tasks = tasks
	p.hier = true
	p.sink = sink
	p.sinkErr = nil
	p.wg.Add(len(p.b.groups))
	for i := range p.b.groups {
		p.jobs <- i
	}
	p.wg.Wait()
	p.hier = false
	p.sink = nil
	return p.sinkErr
}

var (
	_ ExecutionBackend = (*LocalBackend)(nil)
	_ PartialBackend   = (*LocalBackend)(nil)
)
