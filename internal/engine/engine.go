// Package engine is the unified federation engine: one backend-agnostic
// round orchestrator behind pluggable execution backends.
//
// The paper's unbiasedness guarantee is a property of the round protocol —
// sample participants by priced q, run E local SGD steps on each, aggregate
// with inverse-probability weights — not of any particular execution
// substrate. This package owns that protocol exactly once:
//
//	spec (what to train) ──► Orchestrator (the canonical round loop)
//	                              │
//	                              ▼ Dispatch(ctx, round, global, tasks)
//	                    ExecutionBackend (where updates run)
//	                    ├── LocalBackend    in-process worker pool,
//	                    │                   zero-alloc scratch arenas
//	                    └── ClusterBackend  real TCP coordinator + one
//	                                        socket node per client
//
// The Orchestrator owns everything that determines the result: willingness
// and availability sampling on separate RNG streams, per-round learning
// rates, deterministic index-ordered aggregation, divergence checks, and
// evaluation. A backend owns only the execution of local updates. Both
// built-in backends derive client n's private SGD stream as the n-th Split
// of the spec seed and run the same fused local-update code, so a run is
// bit-identical across backends and for any GOMAXPROCS — the property the
// golden-trace backend-equivalence matrix in internal/scenario pins.
//
// Layers above compile into a Spec and pick a backend: internal/fl.Runner
// is a thin compatibility shim over Orchestrator+LocalBackend, and
// internal/experiment and internal/scenario select backends through the
// same seam.
package engine

import (
	"context"
	"errors"
	"fmt"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/tensor"
)

// Schedule produces the learning rate for a given round.
type Schedule interface {
	LR(round int) float64
}

// Sampler decides which clients take part in a round. Implementations must
// return indices in ascending order without duplicates; the orchestrator
// aggregates in the returned order, so this is what makes the global model
// independent of backend scheduling.
type Sampler interface {
	// Sample returns the indices of participating clients for the round.
	Sample(round int) []int
	// NumClients reports the total client population.
	NumClients() int
}

// LevelsSampler is implemented by samplers that expose per-client marginal
// participation probabilities for the unbiased aggregation rule.
type LevelsSampler interface {
	EffectiveQ() []float64
}

// ClientTask is one unit of dispatched work: run LocalSteps mini-batch SGD
// steps for Client starting from the round's global model at learning rate
// LR.
type ClientTask struct {
	Client int
	LR     float64
	// Scale is the Lemma-1 coefficient a_n/q_n the executor folds its delta
	// with in hierarchical (grouped) dispatch, where the weighted sum is
	// computed where the update runs. Zero in flat dispatch, where the
	// coordinator-side aggregator applies the coefficient itself.
	Scale float64
}

// ClientUpdate is one participant's contribution to a round.
type ClientUpdate struct {
	Client int
	// Delta is the model delta w_n^{r+1} − w^r produced by the client's
	// local SGD steps. Backends may reuse the backing array across rounds;
	// the orchestrator consumes it before the next Dispatch.
	Delta tensor.Vec
	// GradSqNorm is the client's running mean squared stochastic gradient
	// norm after this update — the paper's G_n estimation channel.
	GradSqNorm float64
}

// Aggregator folds participant updates into the global model in place.
type Aggregator interface {
	// Aggregate applies the participants' deltas to global. weights are the
	// data weights a_n and q the participation levels q_n, both indexed by
	// client over the full population.
	Aggregate(global tensor.Vec, updates []ClientUpdate, weights, q []float64) error
}

// ExecutionBackend executes one round's local updates. The orchestrator
// calls Open once before the first round, Dispatch once per round, and
// Close exactly once when the run ends (normally or not).
//
// Dispatch must fill one ClientUpdate per task, in task order — the
// orchestrator's aggregation order — and must produce updates that depend
// only on the spec and the task sequence, never on scheduling. The returned
// slice is valid until the next Dispatch call.
type ExecutionBackend interface {
	Open(ctx context.Context, spec *Spec) error
	Dispatch(ctx context.Context, round int, global tensor.Vec, tasks []ClientTask) ([]ClientUpdate, error)
	Close() error
}

// Partial is one sub-aggregator group's folded contribution to a round: the
// fixed-point limbs of Σ_{n∈group∩S_r} (a_n/q_n)·delta_n together with the
// members that actually contributed. Shipping partials instead of K full
// updates is what cuts coordinator ingress from O(fleet·model) to
// O(groups·model).
type Partial struct {
	// Group is the group index (clients [Group·K, (Group+1)·K)).
	Group int
	// Clients lists the members whose updates landed, in ascending order.
	Clients []int
	// Lo and Hi are the 128-bit fixed-point limbs of the group sum, one pair
	// per model parameter (see FixAcc).
	Lo, Hi []uint64
	// Sat reports fixed-point saturation anywhere in the group fold.
	Sat bool
	// GradSq holds each contributing member's running mean squared gradient
	// norm, aligned with Clients.
	GradSq []float64
}

// PartialBackend is the hierarchical-dispatch seam: backends that can fold
// group partials where the updates run implement it alongside
// ExecutionBackend. DispatchPartials executes every task, folds each group's
// weighted deltas (applying Spec.Tamper per update before folding, exactly
// as the flat path does), and delivers one Partial per non-empty group via
// sink. The backend must serialize sink calls; the sink must not retain a
// partial's slices after returning (they may alias backend buffers). Partial
// delivery order is unspecified — the fixed-point merge is commutative, so
// order cannot affect the result.
type PartialBackend interface {
	DispatchPartials(ctx context.Context, round int, global tensor.Vec,
		tasks []ClientTask, groupSize int, sink func(Partial) error) error
}

// RoundMetrics records the state of one training round. Loss and accuracy
// are populated only when Evaluated is true (evaluation is throttled via
// Spec.EvalEvery because a full-train-set evaluation dominates runtime).
type RoundMetrics struct {
	Round        int
	Participants int
	// ParticipantIDs lists the clients that joined this round; the timing
	// model consumes it to compute per-round wall-clock durations.
	ParticipantIDs []int
	Evaluated      bool
	GlobalLoss     float64
	TestAccuracy   float64
}

// RunResult bundles the full training trajectory with the final model and
// the per-client mean squared stochastic gradient norms observed along the
// way (the empirical basis for the G_n estimates of Section IV-A).
type RunResult struct {
	History    []RoundMetrics
	FinalModel tensor.Vec
	GradSqNorm []float64 // mean ||stochastic gradient||² per client
	FinalLoss  float64
	FinalAcc   float64
}

// Spec describes one federated run: the model and data, the training scale,
// and the sampling/aggregation policy. It is what every layer above
// compiles its configuration down to.
type Spec struct {
	Model model.Model
	Fed   *data.Federated

	Rounds     int      // R
	LocalSteps int      // E local SGD iterations per round
	BatchSize  int      // SGD mini-batch size
	Schedule   Schedule // learning-rate schedule
	EvalEvery  int      // evaluate global loss/accuracy every this many rounds
	Seed       uint64   // run seed; every client derives a private stream (the n-th Split)

	Sampler    Sampler
	Aggregator Aggregator

	// GroupSize, when > 1, turns on hierarchical aggregation: participants
	// are partitioned into sub-aggregator groups of this many consecutive
	// clients (group g owns clients [g·K, (g+1)·K)), each group folds its
	// members' weighted deltas where they execute, and the coordinator merges
	// only the group partials. Requires a backend implementing
	// PartialBackend and the UnbiasedAggregator's Lemma-1 weighting (the
	// Scale each task carries). The result is bit-identical to the flat path
	// for every group size — the fixed-point accumulator makes the sum
	// independent of grouping — so GroupSize is purely an execution/memory
	// knob. 0 or 1 keeps classic flat dispatch.
	GroupSize int

	// Tamper, when non-nil, is applied to every participant update as soon
	// as the backend returns it and before aggregation — the
	// gradient-poisoning seam. It may mutate the update in place (backends
	// rebuild deltas on every dispatch, so in-place scaling is safe). It runs
	// on the orchestration goroutine, after the backend's work: a tampered
	// run is therefore byte-identical across execution backends, and —
	// being a pure function of (round, update) — replays identically on
	// resume.
	Tamper func(round int, u *ClientUpdate)

	// Membership, when non-nil, makes the roster elastic: clients join and
	// permanently leave at the plan's round boundaries. The sampler still
	// draws coins for the whole population every round (stream discipline);
	// inactive clients are filtered from the participant set, and the data
	// weights are renormalized over the active subset so the aggregate stays
	// an unbiased estimator of the active fleet's gradient. Nil keeps the
	// classic fixed roster.
	Membership *MembershipPlan
	// OnEpoch, when non-nil, fires once per membership epoch — at the start
	// of the run with the initial roster, then at every event boundary —
	// before the epoch's first round executes. It is the re-pricing seam:
	// layers above re-solve the equilibrium for the new fleet here and feed
	// the sampler its new q. On resume the hook is replayed for every epoch
	// up to the boundary, so deterministic hooks reconstruct their state
	// exactly. A non-nil error aborts the run. Ignored when Membership is
	// nil.
	OnEpoch func(Roster) error

	// OnRoundStart, when non-nil, is invoked before every round's local
	// updates begin — the streaming-observer entry hook. It runs on the
	// orchestration goroutine; keep it fast.
	OnRoundStart func(round int)
	// OnRound, when non-nil, is invoked after every round with that round's
	// metrics — a progress hook for long paper-scale runs. It runs on the
	// orchestration goroutine; keep it fast.
	OnRound func(RoundMetrics)
	// OnRoundCommit, when non-nil, is invoked after every round with the
	// full resumable RunState at the new round boundary — the checkpoint
	// seam. The state's slices are reused between rounds: a hook that needs
	// the state beyond its own call must Clone (or encode) it before
	// returning. A non-nil error aborts the run.
	OnRoundCommit func(*RunState) error
	// Resume, when non-nil, starts the run at a previously committed round
	// boundary instead of round zero: the global model, history, sampler
	// streams, and per-client cursors are restored so the remaining rounds
	// are bit-identical to the uninterrupted run's.
	Resume *RunState
}

// Validate checks the spec before a run.
func (s Spec) Validate() error {
	switch {
	case s.Model == nil:
		return errors.New("engine: nil model")
	case s.Fed == nil || s.Fed.NumClients() == 0:
		return errors.New("engine: nil or empty federation")
	case s.Sampler == nil:
		return errors.New("engine: nil sampler")
	case s.Aggregator == nil:
		return errors.New("engine: nil aggregator")
	case s.Sampler.NumClients() != s.Fed.NumClients():
		return fmt.Errorf("engine: sampler covers %d clients, federation has %d",
			s.Sampler.NumClients(), s.Fed.NumClients())
	case s.Rounds <= 0:
		return errors.New("engine: rounds must be positive")
	case s.LocalSteps <= 0:
		return errors.New("engine: local steps must be positive")
	case s.BatchSize <= 0:
		return errors.New("engine: batch size must be positive")
	case s.Schedule == nil:
		return errors.New("engine: nil schedule")
	case s.EvalEvery <= 0:
		return errors.New("engine: eval interval must be positive")
	case s.GroupSize < 0:
		return errors.New("engine: group size must be non-negative")
	}
	if s.Membership != nil {
		if err := s.Membership.Validate(s.Fed.NumClients(), s.Rounds); err != nil {
			return err
		}
	}
	return nil
}

// participationLevels exposes q to the aggregator. Samplers without explicit
// levels (full or fixed-subset participation) report q = 1 for every client,
// under which the unbiased rule reduces to plain weighted averaging.
func (s *Spec) participationLevels() []float64 {
	if ls, ok := s.Sampler.(LevelsSampler); ok {
		return ls.EffectiveQ()
	}
	q := make([]float64, s.Fed.NumClients())
	for i := range q {
		q[i] = 1
	}
	return q
}
