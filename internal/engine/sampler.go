package engine

import (
	"fmt"

	"unbiasedfl/internal/stats"
)

// FaultSchedule is the per-client compiled form of a scenario fault list:
// O(1) lookups in the sampler hot loop. Construct with NewFaultSchedule and
// fill per client.
type FaultSchedule struct {
	// DropRound[n] is the round client n leaves for good, or -1.
	DropRound []int
	// Availability[n] is the exogenous per-round reachability (1 = always).
	Availability []float64
	// Delay[n] is the straggler latency multiplier (1 = nominal).
	Delay []float64
}

// NewFaultSchedule returns a fault-free schedule for numClients clients.
func NewFaultSchedule(numClients int) FaultSchedule {
	sch := FaultSchedule{
		DropRound:    make([]int, numClients),
		Availability: make([]float64, numClients),
		Delay:        make([]float64, numClients),
	}
	for n := 0; n < numClients; n++ {
		sch.DropRound[n] = -1
		sch.Availability[n] = 1
		sch.Delay[n] = 1
	}
	return sch
}

// Dropped reports whether client n has permanently left by round.
func (s FaultSchedule) Dropped(n, round int) bool {
	return s.DropRound[n] >= 0 && round >= s.DropRound[n]
}

// HasFaults reports whether any client deviates from the clean fleet.
func (s FaultSchedule) HasFaults() bool {
	for n := range s.Delay {
		if s.DropRound[n] >= 0 || s.Availability[n] != 1 || s.Delay[n] != 1 {
			return true
		}
	}
	return false
}

// FaultSampler composes the priced strategic participation (Bernoulli q_n)
// with a scenario's exogenous faults: a client joins a round only if it is
// willing AND not yet dropped AND currently available. EffectiveQ still
// reports the priced q — the server's belief — because the server does not
// observe the fault process; this is exactly the regime in which the
// unbiasedness claim is being stress-tested rather than assumed.
type FaultSampler struct {
	q   []float64
	sch FaultSchedule
	// will carries the strategic willingness coins; avail carries the
	// exogenous availability coins. Keeping them on separate streams — and
	// drawing a willingness coin for every client every round, dropped or
	// not — makes the willingness pattern identical across fault schedules:
	// the difference between a faulted trace and its fault-free twin is
	// attributable to the faults alone, never to stream displacement.
	will  *stats.RNG
	avail *stats.RNG
}

// NewFaultSampler builds the fault-composed sampler. will and avail must be
// independent streams (e.g. successive Splits of a scenario root).
func NewFaultSampler(q []float64, sch FaultSchedule, will, avail *stats.RNG) *FaultSampler {
	return &FaultSampler{q: q, sch: sch, will: will, avail: avail}
}

// Sample implements Sampler.
func (s *FaultSampler) Sample(round int) []int {
	var out []int
	for n, qn := range s.q {
		willing := s.will.Bernoulli(qn)
		if s.sch.Dropped(n, round) {
			continue
		}
		if av := s.sch.Availability[n]; av < 1 && !s.avail.Bernoulli(av) {
			continue
		}
		if willing {
			out = append(out, n)
		}
	}
	return out
}

// NumClients implements Sampler.
func (s *FaultSampler) NumClients() int { return len(s.q) }

// SetQ replaces the priced participation levels — the membership-epoch
// re-pricing seam. The sampler keeps its own copy, so later mutation of the
// argument cannot skew the coin stream. The coin streams themselves are
// untouched: only the thresholds move.
func (s *FaultSampler) SetQ(q []float64) error {
	if len(q) != len(s.q) {
		return fmt.Errorf("engine: SetQ with %d levels for a %d-client fleet", len(q), len(s.q))
	}
	s.q = append(s.q[:0:0], q...)
	return nil
}

// EffectiveQ implements the LevelsSampler seam with the server's belief
// (the priced q), not the fault-adjusted truth.
func (s *FaultSampler) EffectiveQ() []float64 {
	return append([]float64(nil), s.q...)
}

var _ Sampler = (*FaultSampler)(nil)
var _ LevelsSampler = (*FaultSampler)(nil)
