package engine

import (
	"fmt"

	"unbiasedfl/internal/stats"
)

// FaultSchedule is the per-client compiled form of a scenario fault list:
// O(1) lookups in the sampler hot loop. Construct with NewFaultSchedule and
// fill per client.
type FaultSchedule struct {
	// DropRound[n] is the round client n leaves for good, or -1.
	DropRound []int
	// Availability[n] is the exogenous per-round reachability (1 = always).
	Availability []float64
	// Delay[n] is the straggler latency multiplier (1 = nominal).
	Delay []float64
	// QFactor[n] multiplies client n's actual willingness probability
	// (1 = honest): a strategic deviation from the priced participation
	// level. The server's belief — EffectiveQ, and with it the aggregation
	// weights — stays the priced q, which is exactly what makes deviation an
	// attack on the unbiasedness guarantee rather than a re-pricing. Nil
	// means every client is honest (schedules predating the field).
	QFactor []float64
}

// NewFaultSchedule returns a fault-free schedule for numClients clients.
func NewFaultSchedule(numClients int) FaultSchedule {
	sch := FaultSchedule{
		DropRound:    make([]int, numClients),
		Availability: make([]float64, numClients),
		Delay:        make([]float64, numClients),
		QFactor:      make([]float64, numClients),
	}
	for n := 0; n < numClients; n++ {
		sch.DropRound[n] = -1
		sch.Availability[n] = 1
		sch.Delay[n] = 1
		sch.QFactor[n] = 1
	}
	return sch
}

// qFactor returns client n's willingness multiplier (1 = honest).
func (s FaultSchedule) qFactor(n int) float64 {
	if s.QFactor == nil {
		return 1
	}
	return s.QFactor[n]
}

// Dropped reports whether client n has permanently left by round.
func (s FaultSchedule) Dropped(n, round int) bool {
	return s.DropRound[n] >= 0 && round >= s.DropRound[n]
}

// HasFaults reports whether any client deviates from the clean fleet.
func (s FaultSchedule) HasFaults() bool {
	for n := range s.Delay {
		if s.DropRound[n] >= 0 || s.Availability[n] != 1 || s.Delay[n] != 1 || s.qFactor(n) != 1 {
			return true
		}
	}
	return false
}

// WillingProb returns the exact acceptance probability of client n's
// willingness coin when priced at qn — including any strategic deviation
// factor. It mirrors FaultSampler's draw rules, so it is the analytic truth
// the unbiasedness checker measures sampled aggregates against.
func (s FaultSchedule) WillingProb(n int, qn float64) float64 {
	eff := qn * s.qFactor(n)
	if qn <= 0 || qn >= 1 {
		// No coin exists at the clamps (Bernoulli is deterministic there), so
		// a deviator cannot randomize: it participates iff its effective
		// probability still saturates.
		if eff >= 1 {
			return 1
		}
		return 0
	}
	switch {
	case eff <= 0:
		return 0
	case eff >= 1:
		return 1
	}
	return eff
}

// ParticipationProb returns client n's true marginal probability of joining
// the given round when priced at qn: willingness × availability, zero once
// dropped. This is the p_n of Lemma 1's E[aggregate] = Σ_n p_n (a_n/q_n) Δ_n.
func (s FaultSchedule) ParticipationProb(n, round int, qn float64) float64 {
	if s.Dropped(n, round) {
		return 0
	}
	return s.WillingProb(n, qn) * s.Availability[n]
}

// FaultSampler composes the priced strategic participation (Bernoulli q_n)
// with a scenario's exogenous faults: a client joins a round only if it is
// willing AND not yet dropped AND currently available. EffectiveQ still
// reports the priced q — the server's belief — because the server does not
// observe the fault process; this is exactly the regime in which the
// unbiasedness claim is being stress-tested rather than assumed.
type FaultSampler struct {
	q   []float64
	sch FaultSchedule
	// will carries the strategic willingness coins; avail carries the
	// exogenous availability coins. Keeping them on separate streams — and
	// drawing a willingness coin for every client every round, dropped or
	// not — makes the willingness pattern identical across fault schedules:
	// the difference between a faulted trace and its fault-free twin is
	// attributable to the faults alone, never to stream displacement.
	will  *stats.RNG
	avail *stats.RNG
}

// NewFaultSampler builds the fault-composed sampler. will and avail must be
// independent streams (e.g. successive Splits of a scenario root).
func NewFaultSampler(q []float64, sch FaultSchedule, will, avail *stats.RNG) *FaultSampler {
	return &FaultSampler{q: q, sch: sch, will: will, avail: avail}
}

// Sample implements Sampler.
func (s *FaultSampler) Sample(round int) []int {
	var out []int
	for n, qn := range s.q {
		willing := s.willing(n, qn)
		if s.sch.Dropped(n, round) {
			continue
		}
		if av := s.sch.Availability[n]; av < 1 && !s.avail.Bernoulli(av) {
			continue
		}
		if willing {
			out = append(out, n)
		}
	}
	return out
}

// willing draws client n's strategic participation coin. A deviating client
// (QFactor ≠ 1) shows up with probability QFactor·q_n instead of the priced
// q_n, but consumes exactly the coins its honest self would — one Float64
// draw iff q_n ∈ (0,1), none at the clamps, matching Bernoulli — so every
// other client sees an unchanged willingness stream whether or not anyone
// deviates. That is the same discipline that makes a faulted trace
// attributable to its faults alone (see the stream comment above); its
// acceptance probability is FaultSchedule.WillingProb exactly.
func (s *FaultSampler) willing(n int, qn float64) bool {
	f := s.sch.qFactor(n)
	if f == 1 {
		return s.will.Bernoulli(qn)
	}
	eff := qn * f
	if qn <= 0 || qn >= 1 {
		return eff >= 1
	}
	return s.will.Float64() < eff
}

// NumClients implements Sampler.
func (s *FaultSampler) NumClients() int { return len(s.q) }

// SetQ replaces the priced participation levels — the membership-epoch
// re-pricing seam. The sampler keeps its own copy, so later mutation of the
// argument cannot skew the coin stream. The coin streams themselves are
// untouched: only the thresholds move.
func (s *FaultSampler) SetQ(q []float64) error {
	if len(q) != len(s.q) {
		return fmt.Errorf("engine: SetQ with %d levels for a %d-client fleet", len(q), len(s.q))
	}
	s.q = append(s.q[:0:0], q...)
	return nil
}

// EffectiveQ implements the LevelsSampler seam with the server's belief
// (the priced q), not the fault-adjusted truth.
func (s *FaultSampler) EffectiveQ() []float64 {
	return append([]float64(nil), s.q...)
}

var _ Sampler = (*FaultSampler)(nil)
var _ LevelsSampler = (*FaultSampler)(nil)
