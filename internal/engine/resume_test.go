package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"unbiasedfl/internal/stats"
)

// faultFreeSampler builds a stateful FaultSampler over a clean schedule —
// the engine's own stateful sampler, so resume tests exercise the
// SamplerState/RestoreSamplerState path.
func faultFreeSampler(q []float64, seed uint64) *FaultSampler {
	root := stats.NewRNG(seed)
	return NewFaultSampler(q, NewFaultSchedule(len(q)), root.Split(), root.Split())
}

// captureAt runs the spec to completion, cloning the committed RunState at
// the given round boundary along the way, and returns both the full result
// and the captured state.
func captureAt(t *testing.T, spec Spec, backend ExecutionBackend, boundary int) (*RunResult, *RunState) {
	t.Helper()
	var captured *RunState
	spec.OnRoundCommit = func(st *RunState) error {
		if st.NextRound == boundary {
			captured = st.Clone()
		}
		return nil
	}
	res, err := Run(context.Background(), spec, backend)
	if err != nil {
		t.Fatal(err)
	}
	if boundary > 0 && captured == nil {
		t.Fatalf("no commit at boundary %d", boundary)
	}
	return res, captured
}

// mustMatch compares two run results bit-for-bit.
func mustMatch(t *testing.T, want, got *RunResult) {
	t.Helper()
	if len(want.FinalModel) != len(got.FinalModel) {
		t.Fatalf("model length %d vs %d", len(want.FinalModel), len(got.FinalModel))
	}
	for j := range want.FinalModel {
		if math.Float64bits(want.FinalModel[j]) != math.Float64bits(got.FinalModel[j]) {
			t.Fatalf("model[%d]: %v vs %v", j, want.FinalModel[j], got.FinalModel[j])
		}
	}
	for n := range want.GradSqNorm {
		if math.Float64bits(want.GradSqNorm[n]) != math.Float64bits(got.GradSqNorm[n]) {
			t.Fatalf("gradSq[%d]: %v vs %v", n, want.GradSqNorm[n], got.GradSqNorm[n])
		}
	}
	if len(want.History) != len(got.History) {
		t.Fatalf("history length %d vs %d", len(want.History), len(got.History))
	}
	for i := range want.History {
		w, g := want.History[i], got.History[i]
		if w.Round != g.Round || w.Participants != g.Participants || w.Evaluated != g.Evaluated ||
			math.Float64bits(w.GlobalLoss) != math.Float64bits(g.GlobalLoss) ||
			math.Float64bits(w.TestAccuracy) != math.Float64bits(g.TestAccuracy) {
			t.Fatalf("round %d metrics differ: %+v vs %+v", i, w, g)
		}
		if len(w.ParticipantIDs) != len(g.ParticipantIDs) {
			t.Fatalf("round %d participants %v vs %v", i, w.ParticipantIDs, g.ParticipantIDs)
		}
		for k := range w.ParticipantIDs {
			if w.ParticipantIDs[k] != g.ParticipantIDs[k] {
				t.Fatalf("round %d participants %v vs %v", i, w.ParticipantIDs, g.ParticipantIDs)
			}
		}
	}
}

// TestResumeBitIdenticalLocal is the core durability invariant at engine
// level: kill a run at every round boundary, resume from the committed
// state, and the remainder must be bit-identical to the uninterrupted run.
func TestResumeBitIdenticalLocal(t *testing.T) {
	const rounds = 10
	fed := testFederation(t, 29, 5)
	m := testModel(t, fed)
	q := []float64{0.9, 0.6, 0.8, 0.7, 0.5}
	mkSpec := func() Spec {
		spec := testSpec(t, fed, m, rounds, faultFreeSampler(q, 13))
		spec.EvalEvery = 3
		return spec
	}
	full, _ := captureAt(t, mkSpec(), NewLocalBackend(LocalOptions{Parallel: true}), 0)

	for k := 1; k <= rounds; k++ {
		_, st := captureAt(t, mkSpec(), NewLocalBackend(LocalOptions{Parallel: true}), k)
		spec := mkSpec()
		spec.Resume = st
		res, err := Run(context.Background(), spec, NewLocalBackend(LocalOptions{Parallel: true}))
		if err != nil {
			t.Fatalf("resume at %d: %v", k, err)
		}
		mustMatch(t, full, res)
	}
}

// TestResumeBitIdenticalCluster kills at a mid-run boundary and resumes on
// a real TCP cluster — and cross-resumes a locally captured state on the
// cluster backend, pinning that checkpoints are backend-agnostic.
func TestResumeBitIdenticalCluster(t *testing.T) {
	const rounds, boundary = 8, 3
	fed := testFederation(t, 31, 4)
	m := testModel(t, fed)
	q := []float64{0.9, 0.7, 0.8, 0.6}
	mkSpec := func() Spec {
		spec := testSpec(t, fed, m, rounds, faultFreeSampler(q, 17))
		spec.EvalEvery = 2
		return spec
	}
	mkCluster := func() *ClusterBackend {
		return NewClusterBackend(ClusterOptions{Timeout: 20 * time.Second})
	}
	full, _ := captureAt(t, mkSpec(), mkCluster(), 0)

	_, clusterState := captureAt(t, mkSpec(), mkCluster(), boundary)
	_, localState := captureAt(t, mkSpec(), NewLocalBackend(LocalOptions{}), boundary)

	for name, tc := range map[string]struct {
		st      *RunState
		backend ExecutionBackend
	}{
		"cluster-to-cluster": {clusterState, mkCluster()},
		"local-to-cluster":   {localState, mkCluster()},
		"cluster-to-local":   {clusterState, NewLocalBackend(LocalOptions{Parallel: true})},
	} {
		spec := mkSpec()
		spec.Resume = tc.st
		res, err := Run(context.Background(), spec, tc.backend)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mustMatch(t, full, res)
	}
}

// TestResumeAtHorizonReturnsCompletedRun: resuming a state committed at the
// final boundary executes zero rounds and reproduces the finished result.
func TestResumeAtHorizonReturnsCompletedRun(t *testing.T) {
	const rounds = 6
	fed := testFederation(t, 37, 3)
	m := testModel(t, fed)
	q := []float64{0.9, 0.8, 0.7}
	mkSpec := func() Spec {
		return testSpec(t, fed, m, rounds, faultFreeSampler(q, 23))
	}
	full, st := captureAt(t, mkSpec(), NewLocalBackend(LocalOptions{}), rounds)
	spec := mkSpec()
	spec.Resume = st
	res, err := Run(context.Background(), spec, NewLocalBackend(LocalOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, full, res)
}

// TestResumeValidation pins the guard rails on malformed resume states.
func TestResumeValidation(t *testing.T) {
	fed := testFederation(t, 41, 3)
	m := testModel(t, fed)
	q := []float64{0.9, 0.8, 0.7}
	mkSpec := func() Spec {
		return testSpec(t, fed, m, 4, faultFreeSampler(q, 29))
	}
	_, st := captureAt(t, mkSpec(), NewLocalBackend(LocalOptions{}), 2)

	for name, corrupt := range map[string]func(*RunState){
		"round-beyond-horizon": func(r *RunState) { r.NextRound = 99 },
		"negative-round":       func(r *RunState) { r.NextRound = -1 },
		"model-length":         func(r *RunState) { r.Model = r.Model[:len(r.Model)-1] },
		"history-mismatch":     func(r *RunState) { r.History = r.History[:1] },
		"cursor-count":         func(r *RunState) { r.Clients = r.Clients[:1] },
		"non-finite-model":     func(r *RunState) { r.Model[0] = math.NaN() },
		"sampler-words":        func(r *RunState) { r.Sampler = r.Sampler[:3] },
		"missing-cursors":      func(r *RunState) { r.Clients = nil },
	} {
		bad := st.Clone()
		corrupt(bad)
		spec := mkSpec()
		spec.Resume = bad
		if _, err := Run(context.Background(), spec, NewLocalBackend(LocalOptions{})); err == nil {
			t.Errorf("%s: corrupted resume state accepted", name)
		}
	}
}
