package engine

import (
	"context"
	"fmt"
)

// MembershipEvent is one round-boundary churn event: the listed clients join
// and leave the federation immediately before round Round executes. Joins
// and leaves only ever take effect at round commits — mid-round churn does
// not exist in this model, which is what keeps an elastic run bit-exactly
// replayable from a checkpoint.
type MembershipEvent struct {
	// Round is the first round the new roster is in effect for.
	Round int
	// Join lists clients entering the federation, ascending.
	Join []int
	// Leave lists clients permanently departing, ascending.
	Leave []int
}

// MembershipPlan is a run's full membership schedule: which clients are
// present at round zero and every join/leave event after that. The plan is
// static configuration — part of the spec, not of the checkpointed state —
// so a resumed run re-derives the roster at its boundary by replaying the
// plan, and the recorded epoch counter cross-checks that replay.
type MembershipPlan struct {
	// Initial lists the clients active at round zero, ascending. Nil means
	// the whole fleet starts active (the classic fixed-roster run).
	Initial []int
	// Events holds the churn schedule in strictly increasing Round order.
	Events []MembershipEvent
}

// Roster is the fleet's composition during one membership epoch, as handed
// to the OnEpoch hook and to EpochBackend.ApplyEpoch. Active is indexed by
// client id over the full population; Joined and Left list the clients that
// changed state at this epoch's boundary (both nil for epoch zero). The
// slices are reused by the orchestrator between epochs — a hook that needs
// them beyond its own call must copy.
type Roster struct {
	Epoch  int
	Round  int // first round this roster is in effect for
	Active []bool
	Joined []int
	Left   []int
}

// NumActive counts the active clients.
func (r Roster) NumActive() int {
	n := 0
	for _, a := range r.Active {
		if a {
			n++
		}
	}
	return n
}

// EpochBackend is implemented by execution backends that hold per-client
// resources worth churning at epoch boundaries — the cluster backend admits
// joining nodes (welcoming any parked join handshake) and gracefully
// retires leaving ones. ApplyEpoch is called on the orchestration
// goroutine, between rounds, before the OnEpoch hook. Backends without
// per-client lifecycle (the local backend keeps every executor resident)
// simply do not implement it.
type EpochBackend interface {
	ApplyEpoch(ctx context.Context, r Roster) error
}

// Validate checks the plan against the fleet size and round horizon.
func (p *MembershipPlan) Validate(nClients, rounds int) error {
	state := make([]int8, nClients) // 0 never-joined, 1 active, 2 left
	active := 0
	if p.Initial == nil {
		for n := range state {
			state[n] = 1
		}
		active = nClients
	} else {
		if len(p.Initial) == 0 {
			return fmt.Errorf("engine: membership plan starts with an empty fleet")
		}
		prev := -1
		for _, n := range p.Initial {
			if n < 0 || n >= nClients {
				return fmt.Errorf("engine: membership plan: initial client %d out of range [0, %d)", n, nClients)
			}
			if n <= prev {
				return fmt.Errorf("engine: membership plan: initial roster not strictly ascending at client %d", n)
			}
			prev = n
			state[n] = 1
			active++
		}
	}
	lastRound := 0
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Round < 1 || ev.Round >= rounds {
			return fmt.Errorf("engine: membership event at round %d outside (0, %d)", ev.Round, rounds)
		}
		if ev.Round <= lastRound {
			return fmt.Errorf("engine: membership events not strictly increasing at round %d", ev.Round)
		}
		lastRound = ev.Round
		if len(ev.Join) == 0 && len(ev.Leave) == 0 {
			return fmt.Errorf("engine: empty membership event at round %d", ev.Round)
		}
		prev := -1
		for _, n := range ev.Join {
			if n < 0 || n >= nClients {
				return fmt.Errorf("engine: membership join of client %d out of range [0, %d)", n, nClients)
			}
			if n <= prev {
				return fmt.Errorf("engine: membership join list not strictly ascending at client %d", n)
			}
			prev = n
			switch state[n] {
			case 1:
				return fmt.Errorf("engine: client %d joins at round %d but is already active", n, ev.Round)
			case 2:
				return fmt.Errorf("engine: client %d rejoins at round %d after leaving (leaves are permanent)", n, ev.Round)
			}
			state[n] = 1
			active++
		}
		prev = -1
		for _, n := range ev.Leave {
			if n < 0 || n >= nClients {
				return fmt.Errorf("engine: membership leave of client %d out of range [0, %d)", n, nClients)
			}
			if n <= prev {
				return fmt.Errorf("engine: membership leave list not strictly ascending at client %d", n)
			}
			prev = n
			if state[n] != 1 {
				return fmt.Errorf("engine: client %d leaves at round %d but is not active", n, ev.Round)
			}
			state[n] = 2
			active--
		}
		if active == 0 {
			return fmt.Errorf("engine: membership event at round %d empties the fleet", ev.Round)
		}
	}
	return nil
}

// EpochAt reports the epoch in effect at a committed round boundary: the
// number of events that have fired before round `boundary` runs. An event
// at round r fires after the commit of round r-1, so it is not yet counted
// at the boundary NextRound == r.
func (p *MembershipPlan) EpochAt(boundary int) int {
	if p == nil {
		return 0
	}
	e := 0
	for i := range p.Events {
		if p.Events[i].Round >= boundary {
			break
		}
		e++
	}
	return e
}

// ActiveAt returns the active-client mask in effect at a committed round
// boundary (same fencepost convention as EpochAt). This is what a backend
// opening at that boundary — a fresh boot or a checkpoint resume — uses to
// decide which nodes exist yet.
func (p *MembershipPlan) ActiveAt(boundary, nClients int) []bool {
	active := make([]bool, nClients)
	if p == nil || p.Initial == nil {
		for n := range active {
			active[n] = true
		}
	} else {
		for _, n := range p.Initial {
			active[n] = true
		}
	}
	if p == nil {
		return active
	}
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Round >= boundary {
			break
		}
		for _, n := range ev.Join {
			active[n] = true
		}
		for _, n := range ev.Leave {
			active[n] = false
		}
	}
	return active
}

// joinsAfter reports whether any client joins at or after the boundary —
// the cluster backend uses it to know whether prospective members will be
// dialing in (and parking) during the run.
func (p *MembershipPlan) joinsAfter(boundary int) []int {
	if p == nil {
		return nil
	}
	var out []int
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Round < boundary {
			continue
		}
		out = append(out, ev.Join...)
	}
	return out
}

// renormWeights fills dst with the data weights renormalized over the
// active subset (inactive clients get weight zero, and never participate
// anyway). The unbiased aggregation rule then estimates the active fleet's
// full-participation gradient — the natural generalization of Lemma 1 to an
// elastic federation.
func renormWeights(dst, weights []float64, active []bool) []float64 {
	sum := 0.0
	for n, a := range active {
		if a {
			sum += weights[n]
		}
	}
	for n := range weights {
		if active[n] {
			dst[n] = weights[n] / sum
		} else {
			dst[n] = 0
		}
	}
	return dst
}

// filterActive compacts participants in place, dropping inactive clients.
// The sampler keeps drawing coins for every client every round (stream
// discipline — see FaultSampler), so membership filtering happens here, not
// in the sampler.
func filterActive(participants []int, active []bool) []int {
	k := 0
	for _, n := range participants {
		if active[n] {
			participants[k] = n
			k++
		}
	}
	return participants[:k]
}
