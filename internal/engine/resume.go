package engine

import (
	"errors"
	"fmt"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// ClientCursor is one client's resumable execution state at a round
// boundary: the xoshiro cursor of its private SGD stream plus the Welford
// accumulator behind its G_n estimate. A client's stream after k rounds
// depends on its whole participation history, so cursors — not a re-derived
// seed Split — are what a checkpoint must carry for bit-exact resume.
type ClientCursor struct {
	RNG     [4]uint64
	SqCount int
	SqMean  float64
	SqM2    float64
}

// RunState is the canonical resumable state of a run at a round boundary:
// everything the orchestrator needs to continue producing the exact rounds
// the uninterrupted run would have. It is the payload the checkpoint layer
// persists.
type RunState struct {
	// NextRound is the first round the resumed run will execute; rounds
	// 0..NextRound-1 are already reflected in Model and History.
	NextRound int
	// Epoch is the membership epoch in effect at the boundary (0 for a
	// fixed-roster run). The roster itself is re-derived from the spec's
	// MembershipPlan on resume; the recorded counter cross-checks that the
	// resuming spec carries the same plan the checkpoint was written under.
	Epoch int
	// Model is the global parameter vector after round NextRound-1.
	Model tensor.Vec
	// Sampler is the sampler's opaque stream state (see StatefulSampler).
	// Nil means the sampler is a pure function of the round index and needs
	// no restoration.
	Sampler []uint64
	// Clients holds one cursor per client, indexed by client id. Nil means
	// the backend keeps no per-client stream state worth restoring.
	Clients []ClientCursor
	// History is the accumulated per-round record, rounds 0..NextRound-1.
	History []RoundMetrics
}

// Clone deep-copies the state, detaching it from any buffers the
// orchestrator reuses between OnRoundCommit calls.
func (st *RunState) Clone() *RunState {
	if st == nil {
		return nil
	}
	out := &RunState{NextRound: st.NextRound, Epoch: st.Epoch}
	out.Model = append(tensor.Vec(nil), st.Model...)
	out.Sampler = append([]uint64(nil), st.Sampler...)
	out.Clients = append([]ClientCursor(nil), st.Clients...)
	out.History = append([]RoundMetrics(nil), st.History...)
	for i := range out.History {
		out.History[i].ParticipantIDs = append([]int(nil), st.History[i].ParticipantIDs...)
	}
	return out
}

// StatefulSampler is implemented by samplers whose draws consume private
// RNG streams (Bernoulli willingness coins, availability coins). The
// orchestrator captures the state at every committed round boundary and
// restores it on resume, so the resumed coin sequence continues exactly
// where the interrupted run stopped.
type StatefulSampler interface {
	// SamplerState returns the sampler's stream cursors as opaque words.
	SamplerState() []uint64
	// RestoreSamplerState rewinds the sampler to a captured state.
	RestoreSamplerState(state []uint64) error
}

// StatefulBackend is implemented by execution backends whose clients hold
// resumable stream state (both built-in backends do). RestoreClientCursors
// is called before Open; ClientCursors is called only at round boundaries,
// between Dispatch calls.
type StatefulBackend interface {
	// RestoreClientCursors primes the backend so that Open builds every
	// client executor at the given cursor instead of deriving fresh streams
	// from the spec seed.
	RestoreClientCursors(cursors []ClientCursor) error
	// ClientCursors fills dst (len == fleet size, indexed by client id)
	// with the current cursor of every client.
	ClientCursors(dst []ClientCursor) error
}

// SamplerState captures a FaultSampler's two coin streams (willingness,
// availability) as eight opaque words.
func (s *FaultSampler) SamplerState() []uint64 {
	w, a := s.will.State(), s.avail.State()
	return []uint64{w[0], w[1], w[2], w[3], a[0], a[1], a[2], a[3]}
}

// RestoreSamplerState rewinds both coin streams.
func (s *FaultSampler) RestoreSamplerState(state []uint64) error {
	if len(state) != 8 {
		return fmt.Errorf("engine: fault sampler state has %d words, want 8", len(state))
	}
	will, err := stats.RestoreRNG([4]uint64{state[0], state[1], state[2], state[3]})
	if err != nil {
		return err
	}
	avail, err := stats.RestoreRNG([4]uint64{state[4], state[5], state[6], state[7]})
	if err != nil {
		return err
	}
	s.will, s.avail = will, avail
	return nil
}

var _ StatefulSampler = (*FaultSampler)(nil)

// validateResume checks a RunState against the spec and model dimensions
// before the orchestrator trusts it.
func validateResume(r *RunState, s *Spec, modelLen, nClients int) error {
	switch {
	case r.NextRound < 0 || r.NextRound > s.Rounds:
		return fmt.Errorf("engine: resume round %d outside horizon [0, %d]", r.NextRound, s.Rounds)
	case len(r.Model) != modelLen:
		return fmt.Errorf("engine: resume model has %d parameters, spec model has %d", len(r.Model), modelLen)
	case len(r.History) != r.NextRound:
		return fmt.Errorf("engine: resume history has %d rounds, want %d", len(r.History), r.NextRound)
	case len(r.Clients) != 0 && len(r.Clients) != nClients:
		return fmt.Errorf("engine: resume carries %d client cursors, fleet has %d", len(r.Clients), nClients)
	}
	if want := s.Membership.EpochAt(r.NextRound); r.Epoch != want {
		return fmt.Errorf("engine: resume at epoch %d, but the spec's membership plan puts boundary %d in epoch %d",
			r.Epoch, r.NextRound, want)
	}
	if !r.Model.IsFinite() {
		return errors.New("engine: resume model is not finite")
	}
	for i := range r.History {
		if r.History[i].Round != i {
			return fmt.Errorf("engine: resume history entry %d records round %d", i, r.History[i].Round)
		}
	}
	return nil
}
