package engine

import "math"

// ExpDecay is the experimental schedule from Section VI: η_r = Eta0·Decay^r.
type ExpDecay struct {
	Eta0  float64
	Decay float64
}

// LR implements Schedule.
func (s ExpDecay) LR(round int) float64 {
	return s.Eta0 * math.Pow(s.Decay, float64(round))
}

// TheoremDecay is the analytical schedule from Theorem 1:
// η_r = 2 / (max{8L, μE} + μr).
type TheoremDecay struct {
	L, Mu float64
	E     int
}

// LR implements Schedule.
func (s TheoremDecay) LR(round int) float64 {
	return 2 / (math.Max(8*s.L, s.Mu*float64(s.E)) + s.Mu*float64(round))
}

var (
	_ Schedule = ExpDecay{}
	_ Schedule = TheoremDecay{}
)
