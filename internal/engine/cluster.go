package engine

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"unbiasedfl/internal/tensor"
	"unbiasedfl/internal/transport"
)

// ClusterOptions tunes the multi-node TCP backend.
type ClusterOptions struct {
	// Addr is the coordinator's listen address (default "127.0.0.1:0").
	Addr string
	// Timeout bounds every coordinator-side socket operation (default 30s).
	Timeout time.Duration
	// HandshakeTimeout bounds each node's version handshake + hello on the
	// accept path (0 = transport.DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// NodeDelay, when non-nil, returns a real wall-clock stall a node
	// applies before computing each dispatched update — straggler realism
	// at the socket layer. It changes reply arrival order and wall time,
	// never the result: aggregation order is fixed by the orchestrator.
	NodeDelay func(client int) time.Duration
}

// ClusterBackend executes local updates as a real multi-node federation: a
// TCP coordinator plus one socket node per client on loopback, speaking the
// versioned framed protocol of internal/transport. It absorbs the round
// dispatch previously split between transport.Server and
// scenario.RunCluster.
//
// Participation is decided centrally by the orchestrator (the session is
// marked Coordinated in the welcome): a round start is itself the
// invitation, so a node never draws willingness coins. Each node owns the
// same clientExec — fused local steps, private RNG as the n-th Split of the
// spec seed — that LocalBackend uses in-process, and gob transports float64
// slices bit-exactly, so a cluster run's trace is byte-identical to the
// local backend's.
type ClusterBackend struct {
	opts ClusterOptions

	spec     *Spec
	listener net.Listener
	codecs   []*transport.Codec
	conns    []net.Conn
	connMu   sync.Mutex

	nodeWG   sync.WaitGroup
	nodeErrs []error
	lnOnce   sync.Once

	watchDone chan struct{}

	// Per-round buffers, reused across dispatches.
	updates []ClientUpdate
	errs    []error
}

// NewClusterBackend constructs an unopened cluster backend.
func NewClusterBackend(opts ClusterOptions) *ClusterBackend {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = transport.DefaultHandshakeTimeout
	}
	return &ClusterBackend{opts: opts}
}

// Open implements ExecutionBackend: it binds the coordinator's listener,
// boots one node goroutine per client, and completes the handshake/hello
// phase for the whole fleet.
func (b *ClusterBackend) Open(ctx context.Context, spec *Spec) error {
	if b.spec != nil {
		return errors.New("engine: cluster backend already open")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	nClients := spec.Fed.NumClients()
	ln, err := net.Listen("tcp", b.opts.Addr)
	if err != nil {
		return fmt.Errorf("engine: cluster listen: %w", err)
	}
	b.spec = spec
	b.listener = ln
	b.codecs = make([]*transport.Codec, nClients)
	b.nodeErrs = make([]error, nClients)

	// On cancellation, close the listener and every connection: reads fail
	// immediately and stay failed, which both the dispatch path and the node
	// loops translate into a prompt unwind.
	if ctx.Done() != nil {
		b.watchDone = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				b.closeConns()
			case <-b.watchDone:
			}
		}()
	}

	// Boot the fleet. Executors are derived exactly like LocalBackend's —
	// client n's RNG is the n-th Split of the spec seed.
	states := newClientExecs(spec.Seed, nClients)
	for n := 0; n < nClients; n++ {
		b.nodeWG.Add(1)
		go func(n int) {
			defer b.nodeWG.Done()
			if err := b.runNode(ctx, n, states[n]); err != nil {
				b.nodeErrs[n] = err
				// A node that dies while Open is still accepting would
				// otherwise strand the accept loop waiting for a connection
				// that will never arrive; closing the listener (unused after
				// Open) unblocks it.
				b.lnOnce.Do(func() { _ = b.listener.Close() })
			}
		}(n)
	}

	// Accept and identify every node.
	for i := 0; i < nClients; i++ {
		conn, err := ln.Accept()
		if err != nil {
			b.teardown()
			if nodeErr := errors.Join(nonNil(b.nodeErrs)...); nodeErr != nil {
				return ctxErrOr(ctx, fmt.Errorf("engine: cluster boot: %w", nodeErr))
			}
			return ctxErrOr(ctx, fmt.Errorf("engine: cluster accept: %w", err))
		}
		b.connMu.Lock()
		b.conns = append(b.conns, conn)
		if ctx.Err() != nil {
			_ = conn.Close() // raced past the watcher's sweep
		}
		b.connMu.Unlock()
		hsDeadline := time.Now().Add(b.opts.HandshakeTimeout)
		_ = conn.SetDeadline(hsDeadline)
		if err := transport.Handshake(conn); err != nil {
			b.teardown()
			return ctxErrOr(ctx, err)
		}
		codec, err := transport.NewCodec(conn, b.opts.Timeout)
		if err != nil {
			b.teardown()
			return err
		}
		hello, err := codec.RecvDeadline(hsDeadline)
		if err != nil {
			b.teardown()
			return ctxErrOr(ctx, fmt.Errorf("engine: cluster hello: %w", err))
		}
		_ = conn.SetDeadline(time.Time{})
		if hello.Type != transport.MsgHello || hello.ClientID < 0 ||
			hello.ClientID >= nClients || b.codecs[hello.ClientID] != nil {
			b.teardown()
			return fmt.Errorf("engine: cluster got invalid hello (type %v, id %d)", hello.Type, hello.ClientID)
		}
		id := hello.ClientID
		b.codecs[id] = codec
		if err := codec.Send(&transport.Message{
			Type:        transport.MsgWelcome,
			ClientID:    id,
			Q:           1, // participation is decided centrally
			Coordinated: true,
			LocalSteps:  spec.LocalSteps,
			BatchSize:   spec.BatchSize,
			Rounds:      spec.Rounds,
		}); err != nil {
			b.teardown()
			return ctxErrOr(ctx, err)
		}
	}
	return nil
}

// Dispatch implements ExecutionBackend: it ships each task's round start to
// its node concurrently, collects the replies, and fills updates in task
// order so aggregation matches the local backend exactly.
func (b *ClusterBackend) Dispatch(
	ctx context.Context, round int, global tensor.Vec, tasks []ClientTask,
) ([]ClientUpdate, error) {
	if b.spec == nil {
		return nil, errors.New("engine: cluster backend not open")
	}
	if cap(b.updates) < len(tasks) {
		b.updates = make([]ClientUpdate, len(tasks))
		b.errs = make([]error, len(tasks))
	}
	updates := b.updates[:len(tasks)]
	errs := b.errs[:len(tasks)]
	var wg sync.WaitGroup
	for i, task := range tasks {
		i, task := i, task
		errs[i] = nil
		wg.Add(1)
		go func() {
			defer wg.Done()
			codec := b.codecs[task.Client]
			if err := codec.Send(&transport.Message{
				Type: transport.MsgRoundStart, Round: round, Model: global, LR: task.LR,
			}); err != nil {
				errs[i] = fmt.Errorf("node %d: %w", task.Client, err)
				return
			}
			reply, err := codec.Recv()
			if err != nil {
				errs[i] = fmt.Errorf("node %d: %w", task.Client, err)
				return
			}
			if reply.Type != transport.MsgUpdate || reply.ClientID != task.Client || reply.Round != round {
				errs[i] = fmt.Errorf("node %d: unexpected reply (type %v, id %d, round %d)",
					task.Client, reply.Type, reply.ClientID, reply.Round)
				return
			}
			updates[i] = ClientUpdate{
				Client:     task.Client,
				Delta:      tensor.Vec(reply.Model),
				GradSqNorm: reply.GradSqNorm,
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, ctxErrOr(ctx, err)
		}
	}
	return updates, nil
}

// Close implements ExecutionBackend: it ends the session (MsgDone to every
// node), waits for the fleet to exit, tears down every socket, and reports
// any node that died for a reason other than the shutdown itself.
func (b *ClusterBackend) Close() error {
	if b.spec == nil {
		return nil
	}
	for _, codec := range b.codecs {
		if codec != nil {
			_ = codec.Send(&transport.Message{Type: transport.MsgDone})
		}
	}
	b.teardown()
	var errs []error
	for n, err := range b.nodeErrs {
		if err != nil {
			errs = append(errs, fmt.Errorf("engine: cluster node %d: %w", n, err))
		}
	}
	return errors.Join(errs...)
}

// teardown closes every socket, stops the watcher, and waits for the node
// goroutines. Safe to call more than once.
func (b *ClusterBackend) teardown() {
	b.closeConns()
	if b.watchDone != nil {
		close(b.watchDone)
		b.watchDone = nil
	}
	b.nodeWG.Wait()
	b.spec = nil
}

func (b *ClusterBackend) closeConns() {
	if b.listener != nil {
		_ = b.listener.Close()
	}
	b.connMu.Lock()
	for _, c := range b.conns {
		_ = c.Close()
	}
	b.connMu.Unlock()
}

// runNode is one device of the cluster: it dials the coordinator, completes
// the handshake, and serves coordinated round starts with the shared
// client executor until MsgDone.
func (b *ClusterBackend) runNode(ctx context.Context, n int, st *clientExec) error {
	spec := b.spec
	conn, err := net.DialTimeout("tcp", b.listener.Addr().String(), b.opts.Timeout)
	if err != nil {
		return ctxErrOr(ctx, fmt.Errorf("dial: %w", err))
	}
	// The node's reads are unbounded by design — an unselected node simply
	// waits for its next invitation — so shutdown runs through connection
	// closes: the coordinator's teardown (or the ctx watcher) severs the
	// socket and the pending read fails immediately.
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(b.opts.HandshakeTimeout))
	if err := transport.Handshake(conn); err != nil {
		return ctxErrOr(ctx, err)
	}
	_ = conn.SetDeadline(time.Time{})
	codec, err := transport.NewCodec(conn, 0)
	if err != nil {
		return err
	}
	if err := codec.Send(&transport.Message{Type: transport.MsgHello, ClientID: n}); err != nil {
		return ctxErrOr(ctx, err)
	}
	welcome, err := codec.Recv()
	if err != nil {
		return ctxErrOr(ctx, err)
	}
	if welcome.Type != transport.MsgWelcome || !welcome.Coordinated {
		return fmt.Errorf("expected coordinated welcome, got %v", welcome.Type)
	}

	var delay time.Duration
	if b.opts.NodeDelay != nil {
		delay = b.opts.NodeDelay(n)
	}
	for {
		msg, err := codec.Recv()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			// A severed socket after Close started is the normal end of an
			// errored run; report it so Close can surface real failures.
			return err
		}
		switch msg.Type {
		case transport.MsgDone:
			return nil
		case transport.MsgRoundStart:
			if delay > 0 {
				timer := time.NewTimer(delay)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return ctx.Err()
				}
			}
			delta, err := st.localUpdate(
				ctx, spec.Model, spec.Fed.Clients[n], n,
				tensor.Vec(msg.Model), spec.LocalSteps, spec.BatchSize, msg.LR,
			)
			if err != nil {
				return err
			}
			if err := codec.Send(&transport.Message{
				Type: transport.MsgUpdate, ClientID: n, Round: msg.Round,
				Model: delta, GradSqNorm: st.sqNorms.Mean(),
			}); err != nil {
				return ctxErrOr(ctx, err)
			}
		default:
			return fmt.Errorf("unexpected message %v", msg.Type)
		}
	}
}

// nonNil filters the non-nil entries of an error slice.
func nonNil(errs []error) []error {
	var out []error
	for _, err := range errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// ctxErrOr maps an error surfaced by a cancellation-severed socket back to
// the context's error.
func ctxErrOr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

var _ ExecutionBackend = (*ClusterBackend)(nil)
